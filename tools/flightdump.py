#!/usr/bin/env python3
"""Pretty-printer for flight-recorder post-mortems (flight_*.json).

The recorder dumps generic scalars (a, b, x) per event; this tool knows
what each common event kind uses them for and renders a readable
timeline. Usage:

    tools/flightdump.py build/flight-dumps/flight_slo_lb.view_age_0.json
    tools/flightdump.py --ring fault --last 20 dump.json
    tools/flightdump.py dump.json dump2.json     # several, in order

Unknown kinds still print (raw a/b/x), so new instrumentation never
breaks the tool — it just reads less nicely until a decoder is added.
"""

import argparse
import json
import sys

# AlarmState / BackendHealth enum orders mirror the C++ definitions.
ALARM_STATES = {0: "ok", 1: "breach-warn", 2: "breach"}
HEALTH_STATES = {0: "healthy", 1: "degraded", 2: "dead"}


def us(ns):
    return f"{ns / 1000.0:9.1f}us"


def ms(ns):
    return f"{ns / 1e6:.3f}ms"


# kind -> callable(a, b, x) -> human string. a/b are ints, x is a float;
# all default to 0 (the dump omits zero fields to stay small).
DECODERS = {
    # net ring (per-NIC one-sided verbs)
    "read.post": lambda a, b, x: f"RDMA READ posted -> node{a} wr={b} len={int(x)}B",
    "read.comp": lambda a, b, x: f"RDMA READ completion status={a} wr={b} rtt={us(x)}",
    "write.post": lambda a, b, x: f"RDMA WRITE posted -> node{a} wr={b} len={int(x)}B",
    "write.comp": lambda a, b, x: f"RDMA WRITE completion status={a} wr={b} rtt={us(x)}",
    # monitor ring (push-inbox seqlock scans)
    "scan.fresh": lambda a, b, x: f"slot{a} fresh image seq={b} age={us(x)}",
    "scan.heartbeat": lambda a, b, x: f"slot{a} heartbeat seq={b} age={us(x)}",
    "scan.torn": lambda a, b, x: f"slot{a} torn image seq={b} (skipped)",
    "scan.regressed": lambda a, b, x: f"slot{a} regressed seq={b} (dropped)",
    # lb ring (health ladder + adaptive mode switches)
    "health": lambda a, b, x: f"backend{a} -> {HEALTH_STATES.get(b, b)}",
    "mode": lambda a, b, x: f"backend{a} -> {'push' if b else 'pull'}",
    # slo ring (alarm edges; a = SLO registration index)
    "alarm": lambda a, b, x: f"slo#{a} -> {ALARM_STATES.get(b, b)} consumed={x:.2f}",
    # fault ring (a = node, b = FaultKind; kind strings from fault.cpp)
    "crash": lambda a, b, x: f"node{a} CRASHED",
    "recover": lambda a, b, x: f"node{a} recovered",
    "freeze": lambda a, b, x: f"node{a} frozen (alive, not scheduling)",
    "unfreeze": lambda a, b, x: f"node{a} unfrozen",
    "link-degrade": lambda a, b, x: f"node{a} link degraded",
    "link-restore": lambda a, b, x: f"node{a} link restored",
    # cluster ring (scale-out membership)
    "rejoin": lambda a, b, x: f"frontend{a} rejoined membership",
    "evict": lambda a, b, x: f"peer{a} evicted ({'stale view' if b else 'unreachable'})",
    "stale-mark": lambda a, b, x: f"backend{a} staleness strike (unmonitored past bound)",
}


def render(doc, only_ring=None, last=None, out=sys.stdout):
    print(f"post-mortem: {doc.get('reason', '?')}  "
          f"at t={ms(doc.get('at_ns', 0))}", file=out)
    for ring in doc.get("rings", []):
        lost = ring.get("dropped", 0)
        note = f"  (lost {lost} oldest)" if lost else ""
        print(f"  ring {ring['name']:<10} recorded={ring.get('recorded', 0)}"
              f" cap={ring.get('capacity', 0)}{note}", file=out)
    events = doc.get("events", [])
    if only_ring is not None:
        events = [e for e in events if e.get("ring") == only_ring]
    shown = events[-last:] if last else events
    if len(shown) < len(events):
        print(f"  ... {len(events) - len(shown)} earlier events elided "
              "(--last)", file=out)
    for e in shown:
        kind = e.get("kind", "?")
        a, b, x = e.get("a", 0), e.get("b", 0), e.get("x", 0.0)
        dec = DECODERS.get(kind)
        text = (dec(a, b, x) if dec
                else f"{kind} a={a} b={b} x={x}")
        print(f"  {ms(e.get('t_ns', 0)):>12}  [{e.get('ring', '?'):<8}] "
              f"{text}", file=out)
    print(f"  {len(shown)} events shown", file=out)


def main(argv=None):
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("files", nargs="+", help="flight_*.json dumps")
    p.add_argument("--ring", help="show only this ring's events")
    p.add_argument("--last", type=int,
                   help="show only the last N events (after --ring filter)")
    args = p.parse_args(argv)
    for i, path in enumerate(args.files):
        if i:
            print()
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"{path}: {err}", file=sys.stderr)
            return 1
        render(doc, only_ring=args.ring, last=args.last)
    return 0


if __name__ == "__main__":
    sys.exit(main())
