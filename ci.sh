#!/usr/bin/env bash
# Local CI entry point — the same steps .github/workflows/ci.yml runs, for
# machines without a GitHub runner. Usage:
#   ./ci.sh            # tier-1 verify (build + ctest)
#   ./ci.sh sanitize   # ASan/UBSan build + ctest (slower)
set -euo pipefail
cd "$(dirname "$0")"

jobs=$(nproc 2>/dev/null || echo 2)

if [[ "${1:-}" == "sanitize" ]]; then
  cmake -B build-asan -S . -DRDMAMON_SANITIZE=address,undefined
  cmake --build build-asan -j "$jobs"
  ctest --test-dir build-asan --output-on-failure -j "$jobs"
else
  cmake -B build -S .
  cmake --build build -j "$jobs"
  ctest --test-dir build --output-on-failure -j "$jobs"
fi
