#!/usr/bin/env bash
# Local CI entry point — the same steps .github/workflows/ci.yml runs, for
# machines without a GitHub runner. Usage:
#   ./ci.sh            # tier-1 verify (build + ctest)
#   ./ci.sh sanitize   # ASan/UBSan build + ctest (slower)
#   ./ci.sh bench      # smoke-run quick benches, validate BENCH_*.json
set -euo pipefail
cd "$(dirname "$0")"

jobs=$(nproc 2>/dev/null || echo 2)

if [[ "${1:-}" == "sanitize" ]]; then
  cmake -B build-asan -S . -DRDMAMON_SANITIZE=address,undefined
  cmake --build build-asan -j "$jobs"
  ctest --test-dir build-asan --output-on-failure -j "$jobs"
elif [[ "${1:-}" == "bench" ]]; then
  cmake -B build -S .
  cmake --build build -j "$jobs" --target \
    bench_fig3_latency bench_scale_poll bench_fault_resilience
  mkdir -p bench-results
  for b in fig3_latency scale_poll fault_resilience; do
    RDMAMON_BENCH_DIR=bench-results ./build/bench/bench_$b --quick
    python3 -m json.tool "bench-results/BENCH_$b.json" > /dev/null
    echo "BENCH_$b.json: valid"
  done
else
  cmake -B build -S .
  cmake --build build -j "$jobs"
  ctest --test-dir build --output-on-failure -j "$jobs"
fi
