#!/usr/bin/env bash
# Local CI entry point — the same steps .github/workflows/ci.yml runs, for
# machines without a GitHub runner. Usage:
#   ./ci.sh            # tier-1 verify (build + ctest, minus LABELS slow)
#   ./ci.sh sanitize   # ASan/UBSan build + FULL ctest incl. slow (slower)
#   ./ci.sh bench      # quick benches + BENCH_*.json checks + golden traces
#   ./ci.sh perf       # Release build, DES-kernel perf smoke (bench_engine)
#   ./ci.sh slo        # freshness plane only: ctest -L slo + bench_freshness
#
# Tests carrying ctest LABELS slow (golden-trace bench replays) are kept
# out of tier-1 to hold its wall-clock; they run in the sanitize and
# bench lanes.
set -euo pipefail
cd "$(dirname "$0")"

jobs=$(nproc 2>/dev/null || echo 2)

if [[ "${1:-}" == "sanitize" ]]; then
  cmake -B build-asan -S . -DRDMAMON_SANITIZE=address,undefined
  cmake --build build-asan -j "$jobs"
  ctest --test-dir build-asan --output-on-failure -j "$jobs"
  # Cross-scheme conformance contract, named so a sanitizer hit in the
  # push/adaptive paths is attributed to the suite that guards them.
  ctest --test-dir build-asan -L conformance --output-on-failure -j "$jobs"
  # Multi-tenant QoS surface (arbiter properties + TenantFault storms),
  # named for the same reason.
  ctest --test-dir build-asan -L qos --output-on-failure -j "$jobs"
elif [[ "${1:-}" == "bench" ]]; then
  cmake -B build -S .
  cmake --build build -j "$jobs" --target \
    bench_fig3_latency bench_fig5_accuracy bench_scale_poll \
    bench_fault_resilience bench_scale_frontends bench_engine bench_verbs \
    bench_qos
  mkdir -p bench-results
  for b in fig3_latency scale_poll fault_resilience scale_frontends engine \
           verbs qos; do
    RDMAMON_BENCH_DIR=bench-results ./build/bench/bench_$b --quick
    python3 -m json.tool "bench-results/BENCH_$b.json" > /dev/null
    echo "BENCH_$b.json: valid"
  done
  # Scale-out acceptance: per-backend probe load flat (+-10%) as the
  # front-end count grows 1 -> 8.
  python3 - <<'EOF'
import json
doc = json.load(open("bench-results/BENCH_scale_frontends.json"))
ratio = doc["headline"]["flatness_ratio"]
print(f"scale-frontends flatness M=1->8: {ratio:.3f}x (acceptance 0.9..1.1)")
assert 0.9 <= ratio <= 1.1, "per-backend probe load not flat in M"
EOF
  # Monitoring-strategy acceptance: at the largest quick-mode N, push must
  # beat pull on freshness-per-fabric-byte at the low change rate, and
  # adaptive must stay within 10% of the better scheme everywhere.
  python3 - <<'EOF'
import json
doc = json.load(open("bench-results/BENCH_scale_poll.json"))
h = doc["push_headline"]
print(f"push vs pull at N={h['n']} low rate: "
      f"{h['push_cost_low_rate']:.1f} vs {h['pull_cost_low_rate']:.1f}")
assert h["push_beats_pull"], "push did not beat pull at low change rate"
print(f"adaptive worst ratio vs better scheme: "
      f"{h['adaptive_worst_ratio']:.3f}x (acceptance <= 1.1)")
assert h["adaptive_worst_ratio"] <= 1.1, "adaptive strayed from better scheme"
EOF
  # Verbs-layer acceptance: per-slot overhead must drop monotonically as
  # the signaling period k grows 1 -> 16 at fixed queue depth, and the
  # shared-context pool must erase the bounded-cache thrash penalty.
  python3 - <<'EOF'
import json
doc = json.load(open("bench-results/BENCH_verbs.json"))
h = doc["headline"]
print(f"cq_mod per-slot overhead at depth {h['depth']}: "
      f"k=1 {h['per_slot_overhead_k1_ns']:.0f}ns -> "
      f"k=16 {h['per_slot_overhead_k16_ns']:.0f}ns "
      f"({h['overhead_drop_factor']:.3f}x)")
assert h["overhead_monotone"], "per-slot overhead not monotone in k"
assert h["per_slot_overhead_k16_ns"] < h["per_slot_overhead_k1_ns"], \
    "k=16 did not beat k=1"
q = doc["qpc_headline"]
print(f"qpc cache at n={q['n']}: unbounded {q['round_unbounded_us']:.1f}us, "
      f"thrash {q['thrash_ratio']:.2f}x, shared {q['shared_ratio']:.3f}x")
assert q["thrash_ratio"] > 1.5, "dedicated contexts did not thrash the cache"
assert q["shared_ratio"] <= 1.15, "shared contexts did not stay near unbounded"
EOF
  # Scale acceptance: the RDMA scatter round on the fast path stays flat
  # (<= 1.25x the N=256 round) out to N=2048 over a bounded NIC cache.
  python3 - <<'EOF'
import json
doc = json.load(open("bench-results/BENCH_scale_poll.json"))
s = doc["scale_headline"]
print(f"scatter round N={s['n_small']} -> N={s['n_large']}: "
      f"{s['round_small_us']:.1f}us -> {s['round_large_us']:.1f}us "
      f"({s['flatness_ratio']:.3f}x, acceptance <= 1.25; dedicated contrast "
      f"{s['round_dedicated_large_us']:.1f}us)")
assert s["flatness_ratio"] <= 1.25, "scatter round cost grew with N"
v = json.load(open("bench-results/BENCH_scale_frontends.json"))
b = v["verbs_2048_headline"]
print(f"verbs fast path at N={b['n']}: polls/backend/s M=1 "
      f"{b['polls_per_backend_sec_m1']:.1f} -> M=4 "
      f"{b['polls_per_backend_sec_m4']:.1f} ({b['flatness_ratio']:.3f}x)")
assert 0.85 <= b["flatness_ratio"] <= 1.15, \
    "per-backend probe load not flat at N=2048 on the fast path"
EOF
  # Multi-tenant acceptance, BOTH directions: the unthrottled hog must
  # breach the view-age SLO (proving the storm bites), and with QoS on
  # the victim must meet it while the hog is pinned to its rate cap.
  python3 - <<'EOF'
import json
doc = json.load(open("bench-results/BENCH_qos.json"))
rows = {r["arm"]: r for r in doc["results"]}
off, on = rows["qos-off"], rows["qos-on"]
slo = doc["slo_target_ms"]
cap = doc["hog_rate_cap_mbps"]
print(f"view-age p99: qos-off {off['view_age_p99_ms']:.1f}ms "
      f"(SLO {slo:.0f}ms, breaches {off['breach_edges']}) -> "
      f"qos-on {on['view_age_p99_ms']:.1f}ms")
assert off["view_age_p99_ms"] > slo, "unthrottled storm did not breach SLO"
assert off["breach_edges"] >= 1, "SLO engine never alarmed under the storm"
assert on["view_age_p99_ms"] <= slo, "QoS failed to protect the view age"
assert on["breach_edges"] == 0, "QoS arm still alarmed"
print(f"hog goodput: {off['hog_goodput_mbps']:.0f} -> "
      f"{on['hog_goodput_mbps']:.0f} MB/s (cap {cap:.0f}, "
      f"throttle {doc['hog_throttle_ratio']:.1f}x)")
assert on["hog_goodput_mbps"] <= cap * 1.2, "hog exceeded its rate cap"
assert doc["hog_throttle_ratio"] >= 5.0, "hog barely throttled"
dropped = sum(t["dropped"] for t in on["tenants"] if t["tenant"] == 9)
assert dropped > 0, "queue cap never dropped the flood"
EOF
  # Golden-trace replays (ctest LABELS slow): quick fig3/fig5/scale_poll/
  # verbs/qos pinned against tests/golden/*.json.
  ctest --test-dir build -L slow --output-on-failure -j "$jobs"
elif [[ "${1:-}" == "slo" ]]; then
  # Freshness-plane smoke: the staleness SLO / flight recorder / alarm-MR
  # surface (ctest LABELS slo) plus the information-age bench. Fast enough
  # to run on every edit of src/telemetry/ or src/monitor/alarm*.
  cmake -B build -S .
  cmake --build build -j "$jobs" --target test_slo bench_freshness
  mkdir -p build/flight-dumps bench-results
  RDMAMON_FLIGHT_DIR=build/flight-dumps \
    ctest --test-dir build -L slo --output-on-failure -j "$jobs"
  RDMAMON_BENCH_DIR=bench-results ./build/bench/bench_freshness --quick
  python3 - <<'EOF'
import json
doc = json.load(open("bench-results/BENCH_freshness.json"))
oh = doc["recorder_overhead"]
print(f"recorder overhead: {oh['recorder_delta_pct']:.2f}% "
      "(budget <= 1% of wall)")
assert oh["ages_match"], "recorder toggle changed the simulated ages"
for row in doc["results"]:
    assert row["age_p99_us"] >= row["age_p50_us"] > 0, row
print("BENCH_freshness.json: valid")
EOF
elif [[ "${1:-}" == "perf" ]]; then
  # DES-kernel perf smoke: Release build, quick bench_engine run. The
  # binary itself exits non-zero if the timer-wheel kernel heap-allocates
  # during a steady-state recycling workload; the JSON check below keeps
  # the report parseable for the artifact consumers.
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release -j "$jobs" --target bench_engine
  mkdir -p bench-results
  RDMAMON_BENCH_DIR=bench-results ./build-release/bench/bench_engine --quick
  python3 - <<'EOF'
import json
doc = json.load(open("bench-results/BENCH_engine.json"))
assert doc["zero_steady_state_alloc"], "steady-state allocation detected"
for row in doc["results"]:
    assert row["events_per_sec"] > 0, row
# The scatter-shaped workload (N=4096 standing completion+deadline pairs,
# pop/cancel/re-arm) must hold ~10^7 events/s on the wheel kernel.
fabric = [r for r in doc["results"]
          if r["workload"] == "fabric_round" and r["kernel"] == "timer-wheel"]
assert fabric and fabric[0]["events_per_sec"] >= 1e7, fabric
print("BENCH_engine.json: valid, zero steady-state allocations, "
      f"schedule_cancel speedup {doc['speedup_schedule_cancel']:.2f}x, "
      f"fabric_round {fabric[0]['events_per_sec'] / 1e6:.1f} Mops/s "
      f"({doc['speedup_fabric_round']:.2f}x vs seed heap)")
EOF
else
  cmake -B build -S .
  cmake --build build -j "$jobs"
  # Flight-recorder post-mortems (crash dumps, SLO breach dumps) land here;
  # on a red run the dumps are the first thing to read (tools/flightdump.py).
  mkdir -p build/flight-dumps
  RDMAMON_FLIGHT_DIR=build/flight-dumps \
    ctest --test-dir build --output-on-failure -j "$jobs" -LE slow
  # Cross-scheme conformance contract, named for an explicit pass line.
  ctest --test-dir build -L conformance --output-on-failure -j "$jobs"
fi
