// Table 1: RUBiS average and maximum response time per query class, under
// WebSphere-style least-loaded balancing driven by each monitoring scheme.
// Paper shape: all schemes have similar small averages; RDMA-Sync and
// e-RDMA-Sync cut the *maximum* response times dramatically (up to ~90% on
// Browse-class queries) because the balancer never acts on stale data, and
// e-RDMA-Sync is consistently the best of all.
#include "args.hpp"
#include "common.hpp"
#include "report.hpp"
#include "web/cluster.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace rdmamon;
using monitor::Scheme;

struct ClassTimes {
  double avg_ms = 0;
  double max_ms = 0;
};

std::array<ClassTimes, workload::kRubisQueryCount> run_scheme(
    Scheme scheme, sim::Duration run, sim::Duration warmup,
    std::uint64_t seed) {
  sim::Simulation simu;
  web::ClusterConfig cfg;
  cfg.backends = 8;
  cfg.scheme = scheme;
  cfg.seed = seed;
  web::ClusterTestbed bed(simu, cfg);
  web::ClientGroupConfig ccfg;
  ccfg.threads_per_node = 8;
  ccfg.think = sim::msec(15);
  web::ClientGroup& g =
      bed.add_clients(8, web::make_rubis_generator(), ccfg);
  // Shared enterprise environment: transient co-hosted bursts (compute +
  // network chatter with the storage node) hit random back ends; the
  // balancer must route around them.
  os::Node infra(simu, {.name = "storage"});
  bed.fabric().attach(infra);
  workload::DisturbanceGenerator disturb(bed.fabric(), bed.backend_ptrs(),
                                         infra, {}, sim::Rng(seed ^ 0x5eed));
  simu.after(warmup, [&g] { g.stats().reset(); });
  simu.run_for(warmup + run);

  std::array<ClassTimes, workload::kRubisQueryCount> out;
  for (int q = 0; q < workload::kRubisQueryCount; ++q) {
    const auto& st = g.stats().by_class(q);
    out[static_cast<std::size_t>(q)] =
        ClassTimes{st.mean() / 1e6, st.max() / 1e6};
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = rdmamon::bench::parse_args(argc, argv);
  using rdmamon::bench::num;
  rdmamon::bench::banner(
      "Table 1", "RUBiS response times per query class, per scheme",
      "similar averages; maxima drop sharply for RDMA-Sync/e-RDMA-Sync");

  const sim::Duration run = opts.quick ? sim::seconds(6) : sim::seconds(30);
  const sim::Duration warmup =
      opts.quick ? sim::seconds(2) : sim::seconds(4);

  std::array<std::array<ClassTimes, workload::kRubisQueryCount>, 5> results;
  for (std::size_t i = 0; i < monitor::kAllSchemes.size(); ++i) {
    results[i] =
        run_scheme(monitor::kAllSchemes[i], run, warmup, opts.seed);
  }

  auto print_table = [&](const char* title, bool use_max) {
    rdmamon::util::Table t;
    std::vector<std::string> header = {"Query"};
    for (monitor::Scheme s : monitor::kAllSchemes) {
      header.push_back(monitor::to_string(s));
    }
    t.set_header(header);
    t.set_align(0, rdmamon::util::Align::Left);
    for (int q = 0; q < workload::kRubisQueryCount; ++q) {
      std::vector<std::string> row = {
          workload::to_string(static_cast<workload::RubisQuery>(q))};
      for (std::size_t i = 0; i < monitor::kAllSchemes.size(); ++i) {
        const ClassTimes& ct = results[i][static_cast<std::size_t>(q)];
        row.push_back(num(use_max ? ct.max_ms : ct.avg_ms, 1));
      }
      t.add_row(row);
    }
    std::cout << '\n' << title << " (ms):\n";
    rdmamon::bench::show(t);
  };

  print_table("Average response time", false);
  print_table("Maximum response time", true);

  rdmamon::bench::JsonReport report("table1_rubis");
  report.stamp(opts.quick, opts.seed);
  for (std::size_t i = 0; i < monitor::kAllSchemes.size(); ++i) {
    for (int q = 0; q < workload::kRubisQueryCount; ++q) {
      const ClassTimes& ct = results[i][static_cast<std::size_t>(q)];
      auto& r = report.add_result();
      r["scheme"] = monitor::to_string(monitor::kAllSchemes[i]);
      r["query"] =
          workload::to_string(static_cast<workload::RubisQuery>(q));
      r["avg_ms"] = ct.avg_ms;
      r["max_ms"] = ct.max_ms;
    }
  }

  // Headline: max-response improvement of RDMA-Sync vs Socket-Async on the
  // Browse-class queries the paper calls out.
  const int browse = static_cast<int>(workload::RubisQuery::Browse);
  const double sock = results[0][static_cast<std::size_t>(browse)].max_ms;
  const double rdma = results[3][static_cast<std::size_t>(browse)].max_ms;
  if (sock > 0) {
    std::cout << "\nBrowse max response: Socket-Async " << num(sock, 1)
              << "ms vs RDMA-Sync " << num(rdma, 1) << "ms ("
              << num((1.0 - rdma / sock) * 100.0, 0)
              << "% reduction; paper reports ~90%/77% on Browse-class)\n";
    auto& h = report.root()["headline"];
    h = rdmamon::util::JsonValue::object();
    h["browse_max_socket_async_ms"] = sock;
    h["browse_max_rdma_sync_ms"] = rdma;
    h["reduction_pct"] = (1.0 - rdma / sock) * 100.0;
  }
  report.write();
  return 0;
}
