// Figure 3: monitoring latency of the four schemes as background
// computation + communication threads are added to the back-end server.
// Paper shape: Socket-Async and Socket-Sync grow roughly linearly with
// load; RDMA-Async and RDMA-Sync stay flat.
//
// Also the telemetry plane's overhead proof: the same configuration is
// run with and without an installed telemetry::Registry; instruments
// never charge simulated time, so the mean-latency delta must be ~0
// (acceptance: < 2%).
#include <cmath>
#include <memory>

#include "args.hpp"
#include "common.hpp"
#include "monitor/monitor.hpp"
#include "net/fabric.hpp"
#include "os/node.hpp"
#include "report.hpp"
#include "sim/simulation.hpp"
#include "telemetry/registry.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace rdmamon;
using monitor::Scheme;

struct LatStats {
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t samples = 0;
};

LatStats run_latency(Scheme scheme, int bg_threads, sim::Duration run,
                     bool with_telemetry = false) {
  sim::Simulation simu;
  telemetry::Registry reg;
  if (with_telemetry) reg.install(simu);
  net::Fabric fabric(simu, {});
  os::NodeConfig ncfg;
  ncfg.name = "backend";
  os::Node frontend(simu, {.name = "frontend"});
  os::Node backend(simu, ncfg);
  os::Node peer(simu, {.name = "peer"});
  fabric.attach(frontend);
  fabric.attach(backend);
  fabric.attach(peer);

  std::unique_ptr<workload::BackgroundLoad> bg;
  if (bg_threads > 0) {
    workload::BackgroundLoadConfig bcfg;
    bcfg.threads = bg_threads;
    bg = std::make_unique<workload::BackgroundLoad>(fabric, backend, peer,
                                                    bcfg);
  }

  monitor::MonitorConfig mcfg;
  mcfg.scheme = scheme;
  monitor::MonitorChannel chan(fabric, frontend, backend, mcfg);

  sim::Histogram lat_us;
  frontend.spawn("mon", [&](os::SimThread& self) -> os::Program {
    co_await os::SleepFor{sim::msec(200)};  // warm-up
    for (;;) {
      monitor::MonitorSample s;
      co_await chan.frontend().fetch(self, s);
      if (s.ok) lat_us.add(s.latency().micros());
      co_await os::SleepFor{sim::msec(50)};  // the paper's T = 50 ms
    }
  });
  simu.run_for(run);
  LatStats out;
  out.mean_us = lat_us.mean();
  out.p50_us = lat_us.percentile(0.50);
  out.p99_us = lat_us.percentile(0.99);
  out.samples = lat_us.count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = rdmamon::bench::parse_args(argc, argv);
  using rdmamon::bench::num;
  rdmamon::bench::banner(
      "Figure 3", "Monitoring latency vs back-end background threads",
      "socket schemes grow ~linearly with load; RDMA schemes stay flat");

  const std::vector<int> thread_counts = opts.quick
                                             ? std::vector<int>{0, 4, 8}
                                             : std::vector<int>{0, 2, 4, 8,
                                                                12, 16};
  const sim::Duration run =
      opts.quick ? sim::seconds(3) : sim::seconds(8);

  rdmamon::bench::JsonReport report("fig3_latency");
  report.stamp(opts.quick, opts.seed);
  report.set("run_seconds", run.seconds());

  rdmamon::util::Table table;
  std::vector<std::string> header = {"background threads"};
  for (int n : thread_counts) header.push_back(std::to_string(n));
  table.set_header(header);
  table.set_align(0, rdmamon::util::Align::Left);

  std::vector<std::string> labels;
  for (int n : thread_counts) labels.push_back(std::to_string(n));
  rdmamon::util::AsciiChart chart("monitoring latency (us, log-ish scale)",
                                  labels);

  for (monitor::Scheme s : monitor::kTransportSchemes) {
    std::vector<std::string> row = {monitor::to_string(s)};
    std::vector<double> ys;
    for (int n : thread_counts) {
      const LatStats st = run_latency(s, n, run);
      row.push_back(num(st.mean_us, 1));
      ys.push_back(st.mean_us);
      auto& r = report.add_result();
      r["scheme"] = monitor::to_string(s);
      r["bg_threads"] = n;
      r["mean_us"] = st.mean_us;
      r["p50_us"] = st.p50_us;
      r["p99_us"] = st.p99_us;
      r["samples"] = st.samples;
    }
    table.add_row(row);
    chart.add_series({monitor::to_string(s), ys});
  }
  std::cout << "\nMean monitoring latency (microseconds), T = 50 ms:\n";
  rdmamon::bench::show(table);
  rdmamon::bench::show(chart);

  // --- telemetry overhead proof -------------------------------------------
  // Same configuration, registry off vs on. Instruments are wall-clock-
  // only bookkeeping, so the simulated latency figures must not move.
  std::cout << "\nTelemetry overhead (registry off vs on, same seed):\n";
  auto& overhead = report.root()["telemetry_overhead"];
  overhead = rdmamon::util::JsonValue::array();
  double worst_delta_pct = 0.0;
  for (monitor::Scheme s : {Scheme::SocketAsync, Scheme::RdmaSync}) {
    const int n = thread_counts.back();
    const LatStats off = run_latency(s, n, run, /*with_telemetry=*/false);
    const LatStats on = run_latency(s, n, run, /*with_telemetry=*/true);
    const double delta_pct =
        off.mean_us > 0.0
            ? (on.mean_us / off.mean_us - 1.0) * 100.0
            : 0.0;
    if (std::abs(delta_pct) > std::abs(worst_delta_pct)) {
      worst_delta_pct = delta_pct;
    }
    std::cout << "  " << monitor::to_string(s) << ", " << n
              << " bg threads: " << num(off.mean_us, 3) << "us -> "
              << num(on.mean_us, 3) << "us (delta " << num(delta_pct, 3)
              << "%)\n";
    auto& o = overhead.push_back(rdmamon::util::JsonValue::object());
    o["scheme"] = monitor::to_string(s);
    o["bg_threads"] = n;
    o["mean_us_off"] = off.mean_us;
    o["mean_us_on"] = on.mean_us;
    o["delta_pct"] = delta_pct;
  }
  report.set("telemetry_worst_delta_pct", worst_delta_pct);
  std::cout << "  acceptance: |delta| < 2% (instruments charge no simulated "
               "time, so this is ~0 by construction)\n";

  report.write();
  return 0;
}
