// Figure 3: monitoring latency of the four schemes as background
// computation + communication threads are added to the back-end server.
// Paper shape: Socket-Async and Socket-Sync grow roughly linearly with
// load; RDMA-Async and RDMA-Sync stay flat.
#include <memory>

#include "args.hpp"
#include "common.hpp"
#include "monitor/monitor.hpp"
#include "net/fabric.hpp"
#include "os/node.hpp"
#include "sim/simulation.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace rdmamon;
using monitor::Scheme;

double mean_latency_us(Scheme scheme, int bg_threads, sim::Duration run) {
  sim::Simulation simu;
  net::Fabric fabric(simu, {});
  os::NodeConfig ncfg;
  ncfg.name = "backend";
  os::Node frontend(simu, {.name = "frontend"});
  os::Node backend(simu, ncfg);
  os::Node peer(simu, {.name = "peer"});
  fabric.attach(frontend);
  fabric.attach(backend);
  fabric.attach(peer);

  std::unique_ptr<workload::BackgroundLoad> bg;
  if (bg_threads > 0) {
    workload::BackgroundLoadConfig bcfg;
    bcfg.threads = bg_threads;
    bg = std::make_unique<workload::BackgroundLoad>(fabric, backend, peer,
                                                    bcfg);
  }

  monitor::MonitorConfig mcfg;
  mcfg.scheme = scheme;
  monitor::MonitorChannel chan(fabric, frontend, backend, mcfg);

  sim::OnlineStats lat_us;
  frontend.spawn("mon", [&](os::SimThread& self) -> os::Program {
    co_await os::SleepFor{sim::msec(200)};  // warm-up
    for (;;) {
      monitor::MonitorSample s;
      co_await chan.frontend().fetch(self, s);
      if (s.ok) lat_us.add(s.latency().micros());
      co_await os::SleepFor{sim::msec(50)};  // the paper's T = 50 ms
    }
  });
  simu.run_for(run);
  return lat_us.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = rdmamon::bench::parse_args(argc, argv);
  using rdmamon::bench::num;
  rdmamon::bench::banner(
      "Figure 3", "Monitoring latency vs back-end background threads",
      "socket schemes grow ~linearly with load; RDMA schemes stay flat");

  const std::vector<int> thread_counts = opts.quick
                                             ? std::vector<int>{0, 4, 8}
                                             : std::vector<int>{0, 2, 4, 8,
                                                                12, 16};
  const sim::Duration run =
      opts.quick ? sim::seconds(3) : sim::seconds(8);

  rdmamon::util::Table table;
  std::vector<std::string> header = {"background threads"};
  for (int n : thread_counts) header.push_back(std::to_string(n));
  table.set_header(header);
  table.set_align(0, rdmamon::util::Align::Left);

  std::vector<std::string> labels;
  for (int n : thread_counts) labels.push_back(std::to_string(n));
  rdmamon::util::AsciiChart chart("monitoring latency (us, log-ish scale)",
                                  labels);

  for (monitor::Scheme s : monitor::kTransportSchemes) {
    std::vector<std::string> row = {monitor::to_string(s)};
    std::vector<double> ys;
    for (int n : thread_counts) {
      const double us = mean_latency_us(s, n, run);
      row.push_back(num(us, 1));
      ys.push_back(us);
    }
    table.add_row(row);
    chart.add_series({monitor::to_string(s), ys});
  }
  std::cout << "\nMean monitoring latency (microseconds), T = 50 ms:\n";
  rdmamon::bench::show(table);
  rdmamon::bench::show(chart);
  return 0;
}
