// Multi-tenant noisy neighbor vs fabric QoS: a bandwidth-hog tenant
// floods huge READs from the front-end node at the back ends' NICs while
// the monitoring plane (its own tenant) tries to keep the balancer's
// view fresh. Two arms, identical except FabricConfig::qos:
//
//  - qos-off: the hog builds standing DMA/link queues at every back end;
//    monitor fetches blow their 200 ms timeout, the balancer's view ages
//    past the 250 ms staleness SLO and the alarm stream records a Breach
//    edge. The victim's staleness p99 breaches — CI asserts it does.
//  - qos-on: the same hog behind a per-tenant token bucket (100 MB/s) and
//    an 8:1 WFQ weight for the monitoring tenant. The hog is throttled to
//    its cap, the victim's staleness p99 stays inside the SLO, and the
//    per-tenant admit/defer/drop counters tell the story. CI asserts
//    both the protection and the throttle ratio.
#include <any>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "args.hpp"
#include "common.hpp"
#include "report.hpp"
#include "fault/fault.hpp"
#include "net/fabric.hpp"
#include "net/nic.hpp"
#include "net/qos.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/slo.hpp"
#include "web/cluster.hpp"
#include "workload/tenantstorm.hpp"

namespace {

using namespace rdmamon;

constexpr net::TenantId kMonitorTenant = 1;
constexpr net::TenantId kHogTenant = 9;
constexpr double kSloTargetNs = 250e6;  // p99 view age <= 250 ms
constexpr double kHogRateBps = 100e6;   // token-bucket cap, wire bytes/s

struct TenantRow {
  net::TenantId tenant = 0;
  net::TenantArbiter::Stats stats;
};

struct ArmResult {
  double p99_ms = 0.0;
  double max_ms = 0.0;
  std::uint64_t samples = 0;
  std::uint64_t breach_edges = 0;
  std::string final_state;
  std::uint64_t fetch_failures = 0;
  std::uint64_t hog_posted = 0;
  std::uint64_t hog_completed = 0;
  std::uint64_t hog_failed = 0;
  double hog_goodput_mbps = 0.0;
  std::vector<TenantRow> tenants;  ///< qos-on arm only
};

ArmResult run_arm(bool qos_on, bool quick, std::uint64_t seed) {
  sim::Simulation simu;
  telemetry::Registry reg;
  reg.install(simu);
  // The staleness SLO must exist before the balancer starts: it finds
  // the "lb.view_age" stream by name and feeds it a worst-view-age probe.
  telemetry::SloEngine slo;
  slo.install(reg);
  telemetry::SloSpec spec;
  spec.name = "lb.view_age";
  spec.metric = "worst backend view age (ns)";
  spec.target = kSloTargetNs;
  spec.window = sim::msec(500);
  spec.error_budget = 0.01;
  spec.min_count = 8;
  telemetry::SloEngine::Stream* stream = slo.add(spec);
  slo.arm_timer(simu, sim::msec(10));

  web::ClusterConfig cfg;
  cfg.backends = quick ? 6 : 8;
  cfg.scheme = monitor::Scheme::RdmaSync;
  cfg.monitor_period = sim::msec(50);
  cfg.lb_granularity = sim::msec(50);
  cfg.fetch_timeout = sim::msec(200);
  cfg.seed = seed;
  cfg.monitor_tenant = kMonitorTenant;
  if (qos_on) {
    cfg.fabric.qos.enabled = true;
    net::TenantQosSpec mon;
    mon.tenant = kMonitorTenant;
    mon.weight = 8.0;
    cfg.fabric.qos.tenants.push_back(mon);
    net::TenantQosSpec hog;
    hog.tenant = kHogTenant;
    hog.weight = 1.0;
    hog.rate_bps = kHogRateBps;
    hog.burst_bytes = 1 << 20;
    // Below the hog's outstanding window: some of its flood queues, the
    // rest is refused at the cap (the drop path under a real aggressor).
    hog.queue_cap = 1800;
    cfg.fabric.qos.tenants.push_back(hog);
  }
  web::ClusterTestbed bed(simu, cfg);

  // The hog reads its own scratch regions on every back-end NIC — the
  // damage is purely the shared fabric/DMA resources it occupies there.
  workload::TenantStormConfig scfg = workload::TenantStormConfig::bandwidth_hog();
  scfg.tenant = kHogTenant;
  scfg.max_outstanding = quick ? 2048 : 2560;
  scfg.post_period = sim::usec(1);
  std::vector<workload::StormTarget> targets;
  for (int i = 0; i < cfg.backends; ++i) {
    net::Nic& bn = bed.fabric().nic(bed.backend(i).id);
    targets.push_back({bed.backend(i).id,
                       bn.register_mr(scfg.op_bytes, [] { return std::any{}; },
                                      false, nullptr, kHogTenant)});
  }
  workload::TenantStorm storm(bed.fabric(), bed.frontend(), targets, scfg);

  // Storm window via the fault plane, like any other injected fault.
  const sim::TimePoint storm_start{sim::seconds(1).ns};
  const sim::Duration storm_len = quick ? sim::msec(1500) : sim::seconds(3);
  const sim::TimePoint storm_end = storm_start + storm_len;
  fault::FaultInjector inj(bed.fabric());
  workload::drive_storms(inj, {&storm});
  inj.arm(fault::FaultPlan().storm_for(0, storm_start, storm_len));

  // Victim staleness: sample the balancer's worst view age every 10 ms
  // inside the storm window (100 ms in, past the onset ramp).
  sim::Histogram age_hist;
  auto sample_age = [&] {
    double worst = 0.0;
    for (int i = 0; i < cfg.backends; ++i) {
      const sim::Duration a = bed.balancer().view_age(static_cast<std::size_t>(i));
      if (a.ns > 0 && static_cast<double>(a.ns) > worst) {
        worst = static_cast<double>(a.ns);
      }
    }
    if (worst > 0) age_hist.add(worst);
  };
  for (sim::TimePoint t = storm_start + sim::msec(100); t.ns <= storm_end.ns;
       t = t + sim::msec(10)) {
    simu.at(t, sample_age);
  }

  // Hog goodput over the storm window.
  std::uint64_t hog_bytes_start = 0, hog_bytes_end = 0;
  simu.at(storm_start, [&] { hog_bytes_start = storm.bytes_completed(); });
  simu.at(storm_end, [&] { hog_bytes_end = storm.bytes_completed(); });

  simu.run_for(storm_len + sim::seconds(2));

  ArmResult r;
  r.p99_ms = age_hist.percentile(0.99) / 1e6;
  r.max_ms = age_hist.max() / 1e6;
  r.samples = age_hist.count();
  for (const telemetry::AlarmRecord& rec : slo.log()) {
    if (rec.slo == "lb.view_age" && rec.to == telemetry::AlarmState::Breach) {
      ++r.breach_edges;
    }
  }
  r.final_state = telemetry::to_string(slo.state(stream));
  r.fetch_failures = bed.balancer().fetch_failures();
  r.hog_posted = storm.posted();
  r.hog_completed = storm.completed();
  r.hog_failed = storm.failed();
  r.hog_goodput_mbps = static_cast<double>(hog_bytes_end - hog_bytes_start) /
                       storm_len.seconds() / 1e6;
  const net::TenantArbiter* arb = bed.fabric().nic(bed.frontend().id).arbiter();
  if (arb != nullptr) {
    for (net::TenantId t : arb->tenants()) {
      r.tenants.push_back({t, arb->stats(t)});
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = rdmamon::bench::parse_args(argc, argv);
  using rdmamon::bench::num;
  rdmamon::bench::banner(
      "Fabric QoS", "Noisy-neighbor tenant vs monitoring staleness SLO",
      "an unthrottled co-tenant flood ages the balancer's view past its "
      "SLO; per-tenant token buckets + WFQ keep the view fresh while "
      "capping the aggressor at its contracted rate");

  rdmamon::bench::JsonReport report("qos");
  report.stamp(opts.quick, opts.seed);
  report.set("slo_target_ms", kSloTargetNs / 1e6);
  report.set("hog_rate_cap_mbps", kHogRateBps / 1e6);

  util::Table table;
  table.set_header({"arm", "view p99 ms", "view max ms", "breach edges",
                    "final state", "fetch fails", "hog MB/s", "hog drops"});
  table.set_align(0, util::Align::Left);

  ArmResult arms[2];
  const char* arm_names[2] = {"qos-off", "qos-on"};
  for (int a = 0; a < 2; ++a) {
    arms[a] = run_arm(a == 1, opts.quick, opts.seed);
    const ArmResult& r = arms[a];
    table.add_row({arm_names[a], num(r.p99_ms, 1), num(r.max_ms, 1),
                   std::to_string(r.breach_edges), r.final_state,
                   std::to_string(r.fetch_failures),
                   num(r.hog_goodput_mbps, 1), std::to_string(r.hog_failed)});
    auto& j = report.add_result();
    j["arm"] = arm_names[a];
    j["view_age_p99_ms"] = r.p99_ms;
    j["view_age_max_ms"] = r.max_ms;
    j["age_samples"] = r.samples;
    j["breach_edges"] = r.breach_edges;
    j["final_state"] = r.final_state;
    j["fetch_failures"] = r.fetch_failures;
    j["hog_posted"] = r.hog_posted;
    j["hog_completed"] = r.hog_completed;
    j["hog_failed"] = r.hog_failed;
    j["hog_goodput_mbps"] = r.hog_goodput_mbps;
    auto& tenants = j["tenants"];
    tenants = util::JsonValue::array();
    for (const TenantRow& t : r.tenants) {
      auto& row = tenants.push_back(util::JsonValue::object());
      row["tenant"] = static_cast<std::uint64_t>(t.tenant);
      row["submitted"] = t.stats.submitted;
      row["admitted"] = t.stats.admitted;
      row["deferred"] = t.stats.deferred;
      row["dropped"] = t.stats.dropped;
      row["admitted_mbytes"] =
          static_cast<double>(t.stats.admitted_bytes) / 1e6;
    }
  }
  const double throttle_ratio =
      arms[1].hog_goodput_mbps > 0
          ? arms[0].hog_goodput_mbps / arms[1].hog_goodput_mbps
          : 0.0;
  report.set("hog_throttle_ratio", throttle_ratio);

  std::cout << "\nVictim = balancer view freshness (SLO: p99 view age <= "
            << num(kSloTargetNs / 1e6, 0) << " ms). Hog = tenant "
            << kHogTenant << " flooding " << "1 MB READs at every back end:\n";
  rdmamon::bench::show(table);
  std::cout << "qos-off: standing DMA/link queues defeat the 200 ms fetch "
               "deadline; the view ages unboundedly and the SLO stream "
               "records the breach.\n"
               "qos-on: the token bucket caps the hog near "
            << num(kHogRateBps / 1e6, 0)
            << " MB/s (throttle ratio " << num(throttle_ratio, 1)
            << "x) and the weighted arbiter keeps monitoring READs "
               "flowing — the view never leaves its SLO.\n";
  report.write();
  return 0;
}
