// Figure 9: fine-grained vs coarse-grained monitoring — total throughput
// of the co-hosted RUBiS + Zipf(alpha=0.5) workload as the balancer's
// load-fetching granularity shrinks from 4096 ms to 64 ms.
// Paper shape: at coarse granularity (~1024 ms+) all schemes are
// comparable; as granularity becomes fine, RDMA-Sync improves (~25% over
// the rest at 64 ms) while the socket schemes cannot exploit it.
#include "args.hpp"
#include "common.hpp"
#include "mixed_workload.hpp"
#include "report.hpp"

int main(int argc, char** argv) {
  using namespace rdmamon;
  const auto opts = bench::parse_args(argc, argv);
  bench::banner(
      "Figure 9", "Throughput vs load-fetching granularity",
      "comparable at 1024 ms+; RDMA-Sync gains ~25% at 64 ms where socket "
      "schemes cannot follow");

  const std::vector<int> grans_ms =
      opts.quick ? std::vector<int>{64, 1024}
                 : std::vector<int>{64, 256, 1024, 4096};
  bench::MixedRunConfig base;
  base.seed = opts.seed;
  base.alpha = 0.5;
  base.run = opts.quick ? sim::seconds(6) : sim::seconds(20);
  base.warmup = opts.quick ? sim::seconds(2) : sim::seconds(4);

  bench::JsonReport report("fig9_finegrain");
  report.stamp(opts.quick, opts.seed);

  util::Table table;
  std::vector<std::string> header = {"scheme \\ granularity (ms)"};
  std::vector<std::string> labels;
  for (int g : grans_ms) {
    header.push_back(std::to_string(g));
    labels.push_back(std::to_string(g));
  }
  table.set_header(header);
  table.set_align(0, util::Align::Left);

  util::AsciiChart chart("total throughput (req/s)", labels);
  double rdma_at_fine = 0, best_other_at_fine = 0;
  for (monitor::Scheme s : monitor::kTransportSchemes) {
    std::vector<std::string> row = {monitor::to_string(s)};
    std::vector<double> ys;
    for (std::size_t i = 0; i < grans_ms.size(); ++i) {
      bench::MixedRunConfig mc = base;
      mc.scheme = s;
      mc.lb_granularity = sim::msec(grans_ms[i]);
      const double t = bench::run_mixed_workload(mc).total_throughput;
      row.push_back(bench::num(t, 0));
      ys.push_back(t);
      auto& r = report.add_result();
      r["scheme"] = monitor::to_string(s);
      r["granularity_ms"] = grans_ms[i];
      r["throughput_rps"] = t;
      if (i == 0) {  // finest granularity
        if (s == monitor::Scheme::RdmaSync) {
          rdma_at_fine = t;
        } else {
          best_other_at_fine = std::max(best_other_at_fine, t);
        }
      }
    }
    table.add_row(row);
    chart.add_series({monitor::to_string(s), ys});
  }
  std::cout << "\nTotal throughput (RUBiS + Zipf alpha=0.5, req/s):\n";
  bench::show(table);
  bench::show(chart);
  if (best_other_at_fine > 0) {
    std::cout << "At " << grans_ms[0] << " ms: RDMA-Sync vs best other = "
              << bench::num((rdma_at_fine / best_other_at_fine - 1.0) * 100,
                            1)
              << "% (paper: ~25% at 64 ms)\n";
    auto& h = report.root()["headline"];
    h = util::JsonValue::object();
    h["granularity_ms"] = grans_ms[0];
    h["rdma_sync_rps"] = rdma_at_fine;
    h["best_other_rps"] = best_other_at_fine;
    h["gain_pct"] = (rdma_at_fine / best_other_at_fine - 1.0) * 100.0;
  }
  report.write();
  return 0;
}
