// Poll-plane scaling: how one monitoring round over N back ends costs as
// N grows, per scheme, sequential sweep vs scatter-gather. The scatter
// engine issues a round's fetches concurrently (RDMA: one batched
// multi-READ post against per-target NIC DMA engines; sockets: one
// in-flight request per connection), so the RDMA round time is roughly
// flat in N while the sequential sweep grows linearly — and with it the
// age of the oldest sample a dispatch decision is based on.
#include <chrono>
#include <string>
#include <vector>

#include "args.hpp"
#include "common.hpp"
#include "report.hpp"
#include "lb/balancer.hpp"
#include "monitor/adaptive.hpp"
#include "monitor/inbox.hpp"
#include "monitor/monitor.hpp"
#include "monitor/scatter.hpp"
#include "net/fabric.hpp"
#include "os/node.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"

namespace {

using namespace rdmamon;
using monitor::Scheme;

struct RoundStats {
  sim::OnlineStats round_us;  ///< poll-round wall time
  sim::OnlineStats skew_us;   ///< round end minus the round's oldest fetch
};

/// Runs `rounds` poll rounds over N healthy back ends and reports round
/// time and max per-backend sample age at round end.
RoundStats run_rounds(Scheme scheme, int n, bool scatter_mode, int rounds) {
  sim::Simulation simu;
  net::Fabric fabric(simu, {});
  os::Node frontend(simu, {.name = "frontend"});
  fabric.attach(frontend);

  monitor::MonitorConfig mcfg;
  mcfg.scheme = scheme;
  std::vector<std::unique_ptr<os::Node>> backends;
  std::vector<std::unique_ptr<monitor::MonitorChannel>> channels;
  monitor::ScatterFetcher scatter;
  for (int i = 0; i < n; ++i) {
    os::NodeConfig cfg;
    cfg.name = "backend" + std::to_string(i);
    backends.push_back(std::make_unique<os::Node>(simu, cfg));
    fabric.attach(*backends.back());
    channels.push_back(std::make_unique<monitor::MonitorChannel>(
        fabric, frontend, *backends.back(), mcfg));
  }
  if (scatter_mode) {
    for (auto& ch : channels) scatter.add(ch->frontend());
  }

  RoundStats stats;
  frontend.spawn("poller", [&](os::SimThread& self) -> os::Program {
    co_await os::SleepFor{sim::msec(60)};  // async daemons publish once
    std::vector<monitor::MonitorSample> samples(channels.size());
    for (int r = 0; r < rounds; ++r) {
      const sim::TimePoint t0 = simu.now();
      if (scatter_mode) {
        co_await scatter.round_all(self, samples);
      } else {
        for (std::size_t i = 0; i < channels.size(); ++i) {
          co_await channels[i]->frontend().fetch(self, samples[i]);
        }
      }
      const sim::TimePoint t1 = simu.now();
      stats.round_us.add(static_cast<double>((t1 - t0).ns) / 1e3);
      std::int64_t max_age = 0;
      for (const monitor::MonitorSample& s : samples) {
        if (s.ok) max_age = std::max(max_age, (t1 - s.retrieved_at).ns);
      }
      stats.skew_us.add(static_cast<double>(max_age) / 1e3);
      co_await os::SleepFor{sim::msec(10)};
    }
  });
  simu.run_for(sim::seconds(60));
  return stats;
}

// --- thousands of back ends: the verbs fast path -----------------------------
//
// The sweep above stops where dedicated per-channel NIC state is still
// plausible. This one runs the RDMA-Sync scatter round out to N=2048 with
// the verbs fast path on — signal-every-8, DCT-style 16-context pool, CQ
// notification moderation, and a 64-entry bounded NIC context cache — and
// asserts the per-round cost stays ~flat: the round retires N READs with
// ~N/8 CQEs, one doorbell, a handful of consumer wakeups, and a context
// working set that FITS the cache however large N grows.

struct ScaleCell {
  sim::OnlineStats round_us;
  std::uint64_t qpc_misses = 0;
  std::uint64_t qpc_evictions = 0;
  std::uint64_t unsignaled = 0;
  std::uint64_t notifies = 0;
  std::uint64_t coalesced = 0;
};

ScaleCell run_scale_round(int n, bool shared_ctx, int rounds) {
  sim::Simulation simu;
  net::FabricConfig fc;
  fc.nic_ctx_cache_entries = 64;  // bounded: << N back ends
  net::Fabric fabric(simu, fc);
  os::Node frontend(simu, {.name = "frontend"});
  fabric.attach(frontend);

  net::VerbsTuning vt;
  vt.signal_every = 8;
  vt.shared_contexts = shared_ctx ? 16 : 0;
  vt.cq_mod_count = 8;

  monitor::MonitorConfig mcfg;
  mcfg.scheme = Scheme::RdmaSync;
  const std::vector<std::shared_ptr<net::QpContext>> pool =
      net::make_context_pool(fabric.nic(frontend.id), vt);
  std::vector<std::unique_ptr<os::Node>> backends;
  std::vector<std::unique_ptr<monitor::MonitorChannel>> channels;
  monitor::ScatterFetcher scatter;
  for (int i = 0; i < n; ++i) {
    os::NodeConfig cfg;
    cfg.name = "backend" + std::to_string(i);
    backends.push_back(std::make_unique<os::Node>(simu, cfg));
    fabric.attach(*backends.back());
    std::shared_ptr<net::QpContext> ctx =
        pool.empty() ? nullptr
                     : pool[static_cast<std::size_t>(i) % pool.size()];
    channels.push_back(std::make_unique<monitor::MonitorChannel>(
        fabric, frontend, *backends.back(), mcfg, std::move(ctx)));
  }
  for (auto& ch : channels) scatter.add(ch->frontend());
  scatter.cq().bind_moderation(simu, vt.cq_mod_count, vt.cq_mod_period);

  ScaleCell cell;
  frontend.spawn("poller", [&](os::SimThread& self) -> os::Program {
    std::vector<monitor::MonitorSample> samples(channels.size());
    for (int r = 0; r < rounds; ++r) {
      const sim::TimePoint t0 = simu.now();
      co_await scatter.round_all(self, samples);
      cell.round_us.add(static_cast<double>((simu.now() - t0).ns) / 1e3);
      co_await os::SleepFor{sim::msec(10)};
    }
  });
  simu.run_for(sim::seconds(5));

  const net::Nic& nic = fabric.nic(frontend.id);
  cell.qpc_misses = nic.qpc_misses();
  cell.qpc_evictions = nic.qpc_evictions();
  cell.unsignaled = nic.unsignaled_posted();
  cell.notifies = scatter.cq().notifies();
  cell.coalesced = scatter.cq().coalesced_polls();
  return cell;
}

// --- push vs pull vs adaptive: freshness per fabric byte ---------------------
//
// The pull rows above measure round cost; this sweep measures the trade
// the push scheme exists for. Each back end toggles between busy and idle
// phases (deterministic, seeded offsets), and the dispatcher's view is
// scored by VALUE error — the time-averaged |view load index - true load
// index| — against the fabric bytes the monitoring consumed. The headline
// metric cost = mean_error x bytes/sec rewards a scheme for being right
// cheaply: event-driven push wins at low change rates (it sends only when
// the load moves, and immediately), polling wins at high rates (its byte
// budget is flat while push pays per change); adaptive must land near the
// better of the two everywhere.

struct StrategyCell {
  double mean_err = 0.0;
  double bytes_per_sec = 0.0;
  double cost = 0.0;  ///< mean_err * bytes_per_sec (lower is better)
  std::uint64_t pushes = 0;
  std::uint64_t verifications = 0;
  std::uint64_t switches = 0;
};

StrategyCell run_strategy(monitor::MonitorStrategy strat, int n,
                          bool high_rate, std::uint64_t seed,
                          sim::Duration horizon) {
  sim::Simulation simu;
  net::Fabric fabric(simu, {});
  os::Node frontend(simu, {.name = "fe"});
  fabric.attach(frontend);

  const lb::WeightConfig weights =
      lb::WeightConfig::for_scheme(Scheme::RdmaSync);
  lb::LoadBalancer lb(weights);
  monitor::MonitorConfig mcfg;
  mcfg.scheme = Scheme::RdmaSync;
  std::vector<std::unique_ptr<os::Node>> backends;
  sim::Rng rng(seed);
  // Busy/idle phase length: "low" change rate flips well under the poll
  // rate (1/granularity), "high" well above the push scheme's
  // min_interval damping.
  const sim::Duration phase = high_rate ? sim::msec(20) : sim::seconds(2);
  for (int i = 0; i < n; ++i) {
    os::NodeConfig cfg;
    cfg.name = "be" + std::to_string(i);
    backends.push_back(std::make_unique<os::Node>(simu, cfg));
    fabric.attach(*backends.back());
    lb.add_backend(std::make_unique<monitor::MonitorChannel>(
        fabric, frontend, *backends.back(), mcfg));
    // The load driver: alternate runnable and asleep, desynchronised by a
    // seeded offset so the cluster's changes spread over time.
    const sim::Duration offset{rng.uniform_int(0, 2 * phase.ns)};
    backends.back()->spawn(
        "toggler", [phase, offset](os::SimThread&) -> os::Program {
          co_await os::SleepFor{offset};
          for (;;) {
            co_await os::Compute{phase};
            co_await os::SleepFor{phase};
          }
        });
  }

  monitor::PushConfig pushcfg;  // defaults: 5ms check, 100ms heartbeat
  std::unique_ptr<monitor::PushInbox> inbox;
  std::vector<std::unique_ptr<monitor::PushPublisher>> pubs;
  if (strat != monitor::MonitorStrategy::Pull) {
    inbox = std::make_unique<monitor::PushInbox>(fabric, frontend, n,
                                                 pushcfg.slot_bytes);
    lb::PushPollConfig pcfg;
    pcfg.strategy = strat;
    pcfg.adaptive.push_heartbeat = pushcfg.max_interval;
    pcfg.adaptive.change_threshold = pushcfg.change_threshold;
    lb.enable_push(*inbox, pcfg);
    for (int i = 0; i < n; ++i) {
      pubs.push_back(std::make_unique<monitor::PushPublisher>(
          fabric, *backends[static_cast<std::size_t>(i)], pushcfg));
      pubs.back()->target(frontend.id, inbox->mr_key(), i);
    }
    lb.on_mode_change([&pubs](std::size_t b, monitor::FetchMode m) {
      if (m == monitor::FetchMode::Pull) {
        pubs[b]->pause();
      } else {
        pubs[b]->resume();
      }
    });
    for (auto& p : pubs) p->start();
  }
  lb.start(frontend, sim::msec(50));
  // Sync publisher pause state with the initial per-backend mode (the
  // mode-change callback only fires on SWITCHES; adaptive starts in Pull).
  for (std::size_t b = 0; b < pubs.size(); ++b) {
    if (lb.fetch_mode(b) == monitor::FetchMode::Pull) pubs[b]->pause();
  }

  // Steady-state measurement: the first second (publisher ramp-up,
  // adaptive convergence) is excluded from both error and byte totals.
  const sim::Duration warmup = sim::seconds(1);
  auto total_bytes = [&] {
    std::uint64_t b = fabric.nic(frontend.id).rdma_wire_bytes();
    for (auto& be : backends) b += fabric.nic(be->id).rdma_wire_bytes();
    return b;
  };
  std::uint64_t base_bytes = 0;
  simu.at(sim::TimePoint{} + warmup, [&] { base_bytes = total_bytes(); });
  sim::OnlineStats err;
  const sim::Duration probe_every = sim::msec(10);
  for (sim::Duration t = warmup; t < warmup + horizon; t += probe_every) {
    simu.at(sim::TimePoint{} + t, [&] {
      for (int i = 0; i < n; ++i) {
        const double truth = lb::load_index(
            backends[static_cast<std::size_t>(i)]->procfs().snapshot(),
            weights);
        const monitor::MonitorSample& s = lb.last_sample(i);
        const double seen = s.ok ? lb::load_index(s.info, weights) : 0.0;
        err.add(std::abs(truth - seen));
      }
    });
  }
  simu.run_for(warmup + horizon);

  StrategyCell cell;
  cell.mean_err = err.mean();
  cell.bytes_per_sec =
      static_cast<double>(total_bytes() - base_bytes) / horizon.seconds();
  cell.cost = cell.mean_err * cell.bytes_per_sec;
  for (auto& p : pubs) cell.pushes += p->pushes();
  cell.verifications = lb.push_verifications();
  if (lb.adaptive() != nullptr) cell.switches = lb.adaptive()->total_switches();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = rdmamon::bench::parse_args(argc, argv);
  const std::vector<int> ns =
      opt.quick ? std::vector<int>{4, 8, 16} : std::vector<int>{4, 8, 16, 32, 64};
  // One-sided schemes scale far enough that the interesting sizes are an
  // order of magnitude past the socket sweep; only the RDMA rows pay for
  // them (full mode — the sizes the timer-wheel kernel was built for).
  const std::vector<int> rdma_extra_ns =
      opt.quick ? std::vector<int>{} : std::vector<int>{128, 256};
  const int rounds = opt.quick ? 10 : 30;

  rdmamon::bench::banner(
      "scale-poll", "Poll-round cost vs cluster size (sequential vs scatter)",
      "one-sided monitoring makes per-round cost ~O(1) in N when scattered; "
      "a sequential sweep (and any two-sided scheme) pays per back end");

  rdmamon::bench::JsonReport report("scale_poll");
  report.stamp(opt.quick, opt.seed);
  report.set("rounds", rounds);

  for (const bool scatter_mode : {false, true}) {
    std::cout << "\n--- " << (scatter_mode ? "scatter" : "sequential")
              << " polling: mean round time (us) / max sample age at round "
                 "end (us) ---\n";
    rdmamon::util::Table table;
    std::vector<std::string> header = {"scheme"};
    for (int n : ns) header.push_back("N=" + std::to_string(n));
    for (int n : rdma_extra_ns) header.push_back("N=" + std::to_string(n));
    table.set_header(header);
    table.set_align(0, rdmamon::util::Align::Left);
    for (const Scheme scheme : rdmamon::monitor::kTransportSchemes) {
      const bool rdma = scheme == Scheme::RdmaAsync || scheme == Scheme::RdmaSync;
      std::vector<int> scheme_ns = ns;
      if (rdma) {
        scheme_ns.insert(scheme_ns.end(), rdma_extra_ns.begin(),
                         rdma_extra_ns.end());
      }
      std::vector<std::string> row = {rdmamon::monitor::to_string(scheme)};
      for (int n : scheme_ns) {
        const auto wall0 = std::chrono::steady_clock::now();
        const RoundStats s = run_rounds(scheme, n, scatter_mode, rounds);
        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - wall0)
                .count();
        row.push_back(rdmamon::bench::num(s.round_us.mean(), 1) + " / " +
                      rdmamon::bench::num(s.skew_us.mean(), 1));
        auto& r = report.add_result();
        r["scheme"] = rdmamon::monitor::to_string(scheme);
        r["mode"] = scatter_mode ? "scatter" : "sequential";
        r["n"] = n;
        r["round_mean_us"] = s.round_us.mean();
        r["skew_mean_us"] = s.skew_us.mean();
        // Host-side cost of simulating this cell: the DES-kernel perf
        // metric (simulated means above are kernel-independent).
        r["wall_ms"] = wall_ms;
      }
      while (row.size() < header.size()) row.push_back("-");
      table.add_row(row);
    }
    rdmamon::bench::show(table);
  }

  // The acceptance headline: RDMA-Sync scatter round time stays ~flat.
  const RoundStats small = run_rounds(Scheme::RdmaSync, ns.front(), true, rounds);
  const RoundStats large = run_rounds(Scheme::RdmaSync, ns.back(), true, rounds);
  std::cout << "\nRDMA-Sync scatter round, N=" << ns.front() << " -> N="
            << ns.back() << ": " << rdmamon::bench::num(small.round_us.mean(), 1)
            << "us -> " << rdmamon::bench::num(large.round_us.mean(), 1)
            << "us (" << rdmamon::bench::num(
                   large.round_us.mean() / small.round_us.mean(), 2)
            << "x; acceptance: <= 2x)\n";
  auto& headline = report.root()["headline"];
  headline = rdmamon::util::JsonValue::object();
  headline["scheme"] = "RDMA-Sync";
  headline["n_small"] = ns.front();
  headline["n_large"] = ns.back();
  headline["round_small_us"] = small.round_us.mean();
  headline["round_large_us"] = large.round_us.mean();
  headline["growth_factor"] =
      small.round_us.mean() > 0.0
          ? large.round_us.mean() / small.round_us.mean()
          : 0.0;

  // --- verbs fast path at thousands of back ends -----------------------------
  const std::vector<int> scale_ns =
      opt.quick ? std::vector<int>{256, 2048}
                : std::vector<int>{256, 1024, 2048};
  const int scale_rounds = opt.quick ? 5 : 10;
  std::cout << "\n--- RDMA-Sync scatter with the verbs fast path (k=8, 16 "
               "shared contexts, cq_mod=8, 64-entry NIC cache) ---\n";
  rdmamon::util::Table stable;
  stable.set_header({"contexts", "N", "round us", "qpc miss", "evict",
                     "unsignaled", "coalesced"});
  stable.set_align(0, rdmamon::util::Align::Left);
  auto& scale_results = report.root()["scale_results"];
  scale_results = rdmamon::util::JsonValue::array();
  double round_small = 0.0, round_large = 0.0, round_dedicated_large = 0.0;
  for (const bool shared_ctx : {true, false}) {
    // The dedicated-context contrast row runs only at the largest N: with
    // a bounded cache, N dedicated contexts are the thrash regime the
    // shared pool exists to avoid.
    const std::vector<int> row_ns =
        shared_ctx ? scale_ns : std::vector<int>{scale_ns.back()};
    for (int n : row_ns) {
      const auto wall0 = std::chrono::steady_clock::now();
      const ScaleCell c = run_scale_round(n, shared_ctx, scale_rounds);
      const double wall_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - wall0)
                                 .count();
      stable.add_row({shared_ctx ? "shared(16)" : "dedicated",
                      std::to_string(n), rdmamon::bench::num(c.round_us.mean(), 1),
                      std::to_string(c.qpc_misses),
                      std::to_string(c.qpc_evictions),
                      std::to_string(c.unsignaled),
                      std::to_string(c.coalesced)});
      auto& r = scale_results.push_back(rdmamon::util::JsonValue::object());
      r["contexts"] = shared_ctx ? "shared" : "dedicated";
      r["n"] = n;
      r["round_mean_us"] = c.round_us.mean();
      r["qpc_misses"] = static_cast<double>(c.qpc_misses);
      r["qpc_evictions"] = static_cast<double>(c.qpc_evictions);
      r["unsignaled_posted"] = static_cast<double>(c.unsignaled);
      r["cq_notifies"] = static_cast<double>(c.notifies);
      r["cq_coalesced_polls"] = static_cast<double>(c.coalesced);
      r["wall_ms"] = wall_ms;
      if (shared_ctx && n == scale_ns.front()) round_small = c.round_us.mean();
      if (shared_ctx && n == scale_ns.back()) round_large = c.round_us.mean();
      if (!shared_ctx && n == scale_ns.back()) {
        round_dedicated_large = c.round_us.mean();
      }
    }
  }
  rdmamon::bench::show(stable);

  const double scale_flatness =
      round_small > 0.0 ? round_large / round_small : 0.0;
  std::cout << "\nverbs fast path, shared contexts: N=" << scale_ns.front()
            << " round " << rdmamon::bench::num(round_small, 1) << "us -> N="
            << scale_ns.back() << " round "
            << rdmamon::bench::num(round_large, 1) << "us ("
            << rdmamon::bench::num(scale_flatness, 3)
            << "x; acceptance: <= 1.25x); dedicated contexts at N="
            << scale_ns.back() << ": "
            << rdmamon::bench::num(round_dedicated_large, 1) << "us\n";
  auto& sh = report.root()["scale_headline"];
  sh = rdmamon::util::JsonValue::object();
  sh["n_small"] = scale_ns.front();
  sh["n_large"] = scale_ns.back();
  sh["round_small_us"] = round_small;
  sh["round_large_us"] = round_large;
  sh["round_dedicated_large_us"] = round_dedicated_large;
  sh["flatness_ratio"] = scale_flatness;

  // --- push / pull / adaptive freshness-per-byte sweep -----------------------
  const std::vector<int> push_ns =
      opt.quick ? std::vector<int>{16, 32} : std::vector<int>{64, 128, 256};
  const sim::Duration push_horizon =
      opt.quick ? sim::seconds(3) : sim::seconds(6);
  const std::vector<monitor::MonitorStrategy> strategies = {
      monitor::MonitorStrategy::Pull, monitor::MonitorStrategy::Push,
      monitor::MonitorStrategy::Adaptive};

  std::cout << "\n--- monitoring strategy: freshness x fabric cost "
               "(cost = mean view error * bytes/s; lower is better) ---\n";
  auto& push_results = report.root()["push_results"];
  push_results = rdmamon::util::JsonValue::array();
  // cost[rate][n][strategy], for the table and the headline assertion.
  std::vector<std::vector<std::vector<double>>> costs(
      2, std::vector<std::vector<double>>(
             push_ns.size(), std::vector<double>(strategies.size(), 0.0)));
  for (int rate = 0; rate < 2; ++rate) {
    const bool high_rate = rate == 1;
    rdmamon::util::Table table;
    std::vector<std::string> header = {
        std::string(high_rate ? "high" : "low") + "-rate strategy"};
    for (int n : push_ns) header.push_back("N=" + std::to_string(n));
    table.set_header(header);
    table.set_align(0, rdmamon::util::Align::Left);
    for (std::size_t si = 0; si < strategies.size(); ++si) {
      const monitor::MonitorStrategy strat = strategies[si];
      std::vector<std::string> row = {monitor::to_string(strat)};
      for (std::size_t ni = 0; ni < push_ns.size(); ++ni) {
        const int n = push_ns[ni];
        const StrategyCell c =
            run_strategy(strat, n, high_rate, opt.seed, push_horizon);
        costs[static_cast<std::size_t>(rate)][ni][si] = c.cost;
        row.push_back(rdmamon::bench::num(c.cost, 1) + " (" +
                      rdmamon::bench::num(c.mean_err, 3) + " x " +
                      rdmamon::bench::num(c.bytes_per_sec / 1e3, 1) + "KB/s)");
        auto& r = push_results.push_back(rdmamon::util::JsonValue::object());
        r["strategy"] = monitor::to_string(strat);
        r["rate"] = high_rate ? "high" : "low";
        r["n"] = n;
        r["mean_err"] = c.mean_err;
        r["bytes_per_sec"] = c.bytes_per_sec;
        r["cost"] = c.cost;
        r["pushes"] = static_cast<double>(c.pushes);
        r["verifications"] = static_cast<double>(c.verifications);
        r["switches"] = static_cast<double>(c.switches);
      }
      table.add_row(row);
    }
    rdmamon::bench::show(table);
  }

  // Push headline: at the largest N and low change rate, event-driven push
  // beats polling on freshness-per-byte, and adaptive tracks the better of
  // the two at every point of the sweep (CI asserts <= 1.1x).
  const std::size_t last_n = push_ns.size() - 1;
  double worst_ratio = 0.0;
  for (int rate = 0; rate < 2; ++rate) {
    for (std::size_t ni = 0; ni < push_ns.size(); ++ni) {
      const auto& cell = costs[static_cast<std::size_t>(rate)][ni];
      const double best = std::min(cell[0], cell[1]);
      if (best > 0.0) worst_ratio = std::max(worst_ratio, cell[2] / best);
    }
  }
  const double pull_low = costs[0][last_n][0];
  const double push_low = costs[0][last_n][1];
  std::cout << "\nPush vs pull at N=" << push_ns[last_n]
            << " low rate: " << rdmamon::bench::num(push_low, 1) << " vs "
            << rdmamon::bench::num(pull_low, 1)
            << " (acceptance: push < pull); adaptive worst ratio vs better "
               "scheme: "
            << rdmamon::bench::num(worst_ratio, 3)
            << "x (acceptance: <= 1.1x)\n";
  auto& ph = report.root()["push_headline"];
  ph = rdmamon::util::JsonValue::object();
  ph["n"] = push_ns[last_n];
  ph["pull_cost_low_rate"] = pull_low;
  ph["push_cost_low_rate"] = push_low;
  ph["push_beats_pull"] = push_low < pull_low;
  ph["adaptive_worst_ratio"] = worst_ratio;

  report.write();
  return 0;
}
