// Poll-plane scaling: how one monitoring round over N back ends costs as
// N grows, per scheme, sequential sweep vs scatter-gather. The scatter
// engine issues a round's fetches concurrently (RDMA: one batched
// multi-READ post against per-target NIC DMA engines; sockets: one
// in-flight request per connection), so the RDMA round time is roughly
// flat in N while the sequential sweep grows linearly — and with it the
// age of the oldest sample a dispatch decision is based on.
#include <chrono>
#include <string>
#include <vector>

#include "args.hpp"
#include "common.hpp"
#include "report.hpp"
#include "monitor/monitor.hpp"
#include "monitor/scatter.hpp"
#include "net/fabric.hpp"
#include "os/node.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"

namespace {

using namespace rdmamon;
using monitor::Scheme;

struct RoundStats {
  sim::OnlineStats round_us;  ///< poll-round wall time
  sim::OnlineStats skew_us;   ///< round end minus the round's oldest fetch
};

/// Runs `rounds` poll rounds over N healthy back ends and reports round
/// time and max per-backend sample age at round end.
RoundStats run_rounds(Scheme scheme, int n, bool scatter_mode, int rounds) {
  sim::Simulation simu;
  net::Fabric fabric(simu, {});
  os::Node frontend(simu, {.name = "frontend"});
  fabric.attach(frontend);

  monitor::MonitorConfig mcfg;
  mcfg.scheme = scheme;
  std::vector<std::unique_ptr<os::Node>> backends;
  std::vector<std::unique_ptr<monitor::MonitorChannel>> channels;
  monitor::ScatterFetcher scatter;
  for (int i = 0; i < n; ++i) {
    os::NodeConfig cfg;
    cfg.name = "backend" + std::to_string(i);
    backends.push_back(std::make_unique<os::Node>(simu, cfg));
    fabric.attach(*backends.back());
    channels.push_back(std::make_unique<monitor::MonitorChannel>(
        fabric, frontend, *backends.back(), mcfg));
  }
  if (scatter_mode) {
    for (auto& ch : channels) scatter.add(ch->frontend());
  }

  RoundStats stats;
  frontend.spawn("poller", [&](os::SimThread& self) -> os::Program {
    co_await os::SleepFor{sim::msec(60)};  // async daemons publish once
    std::vector<monitor::MonitorSample> samples(channels.size());
    for (int r = 0; r < rounds; ++r) {
      const sim::TimePoint t0 = simu.now();
      if (scatter_mode) {
        co_await scatter.round_all(self, samples);
      } else {
        for (std::size_t i = 0; i < channels.size(); ++i) {
          co_await channels[i]->frontend().fetch(self, samples[i]);
        }
      }
      const sim::TimePoint t1 = simu.now();
      stats.round_us.add(static_cast<double>((t1 - t0).ns) / 1e3);
      std::int64_t max_age = 0;
      for (const monitor::MonitorSample& s : samples) {
        if (s.ok) max_age = std::max(max_age, (t1 - s.retrieved_at).ns);
      }
      stats.skew_us.add(static_cast<double>(max_age) / 1e3);
      co_await os::SleepFor{sim::msec(10)};
    }
  });
  simu.run_for(sim::seconds(60));
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = rdmamon::bench::parse_args(argc, argv);
  const std::vector<int> ns =
      opt.quick ? std::vector<int>{4, 8, 16} : std::vector<int>{4, 8, 16, 32, 64};
  // One-sided schemes scale far enough that the interesting sizes are an
  // order of magnitude past the socket sweep; only the RDMA rows pay for
  // them (full mode — the sizes the timer-wheel kernel was built for).
  const std::vector<int> rdma_extra_ns =
      opt.quick ? std::vector<int>{} : std::vector<int>{128, 256};
  const int rounds = opt.quick ? 10 : 30;

  rdmamon::bench::banner(
      "scale-poll", "Poll-round cost vs cluster size (sequential vs scatter)",
      "one-sided monitoring makes per-round cost ~O(1) in N when scattered; "
      "a sequential sweep (and any two-sided scheme) pays per back end");

  rdmamon::bench::JsonReport report("scale_poll");
  report.set("quick", opt.quick);
  report.set("rounds", rounds);

  for (const bool scatter_mode : {false, true}) {
    std::cout << "\n--- " << (scatter_mode ? "scatter" : "sequential")
              << " polling: mean round time (us) / max sample age at round "
                 "end (us) ---\n";
    rdmamon::util::Table table;
    std::vector<std::string> header = {"scheme"};
    for (int n : ns) header.push_back("N=" + std::to_string(n));
    for (int n : rdma_extra_ns) header.push_back("N=" + std::to_string(n));
    table.set_header(header);
    table.set_align(0, rdmamon::util::Align::Left);
    for (const Scheme scheme : rdmamon::monitor::kTransportSchemes) {
      const bool rdma = scheme == Scheme::RdmaAsync || scheme == Scheme::RdmaSync;
      std::vector<int> scheme_ns = ns;
      if (rdma) {
        scheme_ns.insert(scheme_ns.end(), rdma_extra_ns.begin(),
                         rdma_extra_ns.end());
      }
      std::vector<std::string> row = {rdmamon::monitor::to_string(scheme)};
      for (int n : scheme_ns) {
        const auto wall0 = std::chrono::steady_clock::now();
        const RoundStats s = run_rounds(scheme, n, scatter_mode, rounds);
        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - wall0)
                .count();
        row.push_back(rdmamon::bench::num(s.round_us.mean(), 1) + " / " +
                      rdmamon::bench::num(s.skew_us.mean(), 1));
        auto& r = report.add_result();
        r["scheme"] = rdmamon::monitor::to_string(scheme);
        r["mode"] = scatter_mode ? "scatter" : "sequential";
        r["n"] = n;
        r["round_mean_us"] = s.round_us.mean();
        r["skew_mean_us"] = s.skew_us.mean();
        // Host-side cost of simulating this cell: the DES-kernel perf
        // metric (simulated means above are kernel-independent).
        r["wall_ms"] = wall_ms;
      }
      while (row.size() < header.size()) row.push_back("-");
      table.add_row(row);
    }
    rdmamon::bench::show(table);
  }

  // The acceptance headline: RDMA-Sync scatter round time stays ~flat.
  const RoundStats small = run_rounds(Scheme::RdmaSync, ns.front(), true, rounds);
  const RoundStats large = run_rounds(Scheme::RdmaSync, ns.back(), true, rounds);
  std::cout << "\nRDMA-Sync scatter round, N=" << ns.front() << " -> N="
            << ns.back() << ": " << rdmamon::bench::num(small.round_us.mean(), 1)
            << "us -> " << rdmamon::bench::num(large.round_us.mean(), 1)
            << "us (" << rdmamon::bench::num(
                   large.round_us.mean() / small.round_us.mean(), 2)
            << "x; acceptance: <= 2x)\n";
  auto& headline = report.root()["headline"];
  headline = rdmamon::util::JsonValue::object();
  headline["scheme"] = "RDMA-Sync";
  headline["n_small"] = ns.front();
  headline["n_large"] = ns.back();
  headline["round_small_us"] = small.round_us.mean();
  headline["round_large_us"] = large.round_us.mean();
  headline["growth_factor"] =
      small.round_us.mean() > 0.0
          ? large.round_us.mean() / small.round_us.mean()
          : 0.0;
  report.write();
  return 0;
}
