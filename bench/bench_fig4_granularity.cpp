// Figure 4: impact of monitoring granularity on a co-located
// floating-point application. Paper shape: Socket-Async worst (two
// back-end threads), then Socket-Sync, then RDMA-Async; RDMA-Sync shows
// no degradation at any granularity because nothing runs on the back end.
#include "args.hpp"
#include "common.hpp"
#include "report.hpp"
#include "monitor/monitor.hpp"
#include "net/fabric.hpp"
#include "os/node.hpp"
#include "sim/simulation.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace rdmamon;
using monitor::Scheme;

/// Mean normalised app delay (%) with `scheme` monitoring at granularity g.
double app_delay_pct(Scheme scheme, sim::Duration g, sim::Duration run) {
  sim::Simulation simu;
  net::Fabric fabric(simu, {});
  os::Node frontend(simu, {.name = "frontend"});
  os::Node backend(simu, {.name = "backend"});
  fabric.attach(frontend);
  fabric.attach(backend);

  monitor::MonitorConfig mcfg;
  mcfg.scheme = scheme;
  mcfg.period = g;  // async schemes recompute every g
  monitor::MonitorChannel chan(fabric, frontend, backend, mcfg);

  // The measured application: one compute thread per CPU.
  workload::FloatingPointApp app(backend, sim::msec(10));

  // Front-end fetches at the same granularity.
  frontend.spawn("mon", [&](os::SimThread& self) -> os::Program {
    for (;;) {
      monitor::MonitorSample s;
      co_await chan.frontend().fetch(self, s);
      co_await os::SleepFor{g};
    }
  });
  simu.run_for(run);
  return app.normalized_delay() * 100.0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = rdmamon::bench::parse_args(argc, argv);
  using rdmamon::bench::num;
  rdmamon::bench::banner(
      "Figure 4", "Application perturbation vs monitoring granularity",
      "at 1-4 ms granularity Socket-Async degrades the app most; "
      "RDMA-Sync not at all");

  const std::vector<int> grans_ms =
      opts.quick ? std::vector<int>{1, 16, 256}
                 : std::vector<int>{1, 4, 16, 64, 256, 1024};
  const sim::Duration run = opts.quick ? sim::seconds(4) : sim::seconds(10);

  rdmamon::bench::JsonReport report("fig4_granularity");
  report.stamp(opts.quick, opts.seed);

  rdmamon::util::Table table;
  std::vector<std::string> header = {"granularity (ms)"};
  for (int gm : grans_ms) header.push_back(std::to_string(gm));
  table.set_header(header);
  table.set_align(0, rdmamon::util::Align::Left);

  std::vector<std::string> labels;
  for (int gm : grans_ms) labels.push_back(std::to_string(gm));
  rdmamon::util::AsciiChart chart("normalised app delay (%)", labels);

  for (monitor::Scheme s : monitor::kTransportSchemes) {
    std::vector<std::string> row = {monitor::to_string(s)};
    std::vector<double> ys;
    for (int gm : grans_ms) {
      const double pct = app_delay_pct(s, sim::msec(gm), run);
      row.push_back(num(pct, 2));
      ys.push_back(pct);
      auto& r = report.add_result();
      r["scheme"] = monitor::to_string(s);
      r["granularity_ms"] = gm;
      r["app_delay_pct"] = pct;
    }
    table.add_row(row);
    chart.add_series({monitor::to_string(s), ys});
  }
  std::cout << "\nNormalised application delay (%, lower is better):\n";
  rdmamon::bench::show(table);
  rdmamon::bench::show(chart);
  report.write();
  return 0;
}
