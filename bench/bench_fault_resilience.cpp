// Fault resilience: availability of the monitoring path per scheme while
// the back end is healthy, frozen (hung kernel, NIC alive), crashed, and
// behind a lossy degraded link — plus a whole-cluster failover run.
// Paper shape: a frozen host stops answering socket probes but its NIC
// keeps serving one-sided RDMA READs; a crashed host answers nothing, and
// the front end's bounded fetch turns that into fast failure detection
// instead of a hang.
#include <string>
#include <vector>

#include "args.hpp"
#include "common.hpp"
#include "report.hpp"
#include "fault/fault.hpp"
#include "monitor/monitor.hpp"
#include "net/fabric.hpp"
#include "os/node.hpp"
#include "sim/simulation.hpp"
#include "web/cluster.hpp"

namespace {

using namespace rdmamon;
using monitor::Scheme;

constexpr int kPhases = 4;
const char* kPhaseNames[kPhases] = {"healthy", "frozen", "crashed",
                                    "lossy link"};

struct PhaseStats {
  int issued = 0;
  int okay = 0;
  double availability() const {
    return issued > 0 ? 100.0 * okay / issued : 0.0;
  }
};

/// One scheme through the four phases; every phase lasts `phase_len` with
/// a small guard gap so recovery from one fault never bleeds into the
/// next phase's numbers.
std::vector<PhaseStats> run_phases(Scheme scheme, sim::Duration phase_len) {
  sim::Simulation simu;
  net::Fabric fabric(simu, {});
  os::Node frontend(simu, {.name = "frontend"});
  os::Node backend(simu, {.name = "backend"});
  fabric.attach(frontend);
  fabric.attach(backend);

  monitor::MonitorConfig mcfg;
  mcfg.scheme = scheme;
  mcfg.fetch_timeout = sim::msec(5);
  mcfg.fetch_retries = 2;
  mcfg.retry_backoff = sim::msec(2);
  monitor::MonitorChannel chan(fabric, frontend, backend, mcfg);

  const sim::Duration guard = sim::msec(50);
  const sim::Duration window = phase_len - guard - guard;
  fault::FaultPlan plan;
  plan.freeze_for(backend.id, sim::TimePoint{(phase_len + guard).ns}, window);
  plan.crash_for(backend.id, sim::TimePoint{(phase_len * 2 + guard).ns},
                 window);
  plan.degrade_link_for(backend.id,
                        sim::TimePoint{(phase_len * 3 + guard).ns}, window,
                        sim::usec(300), /*loss=*/0.3);
  fault::FaultInjector inj(fabric);
  inj.arm(plan);

  std::vector<PhaseStats> phases(kPhases);
  frontend.spawn("mon", [&](os::SimThread& self) -> os::Program {
    for (;;) {
      co_await os::SleepFor{sim::msec(10)};
      // Classify by issue instant, and only count fetches issued while
      // the phase's fault is actually active (or, for phase 0, before any
      // fault has ever been injected).
      const std::int64_t phase = simu.now().ns / phase_len.ns;
      const std::int64_t offset = simu.now().ns % phase_len.ns;
      monitor::MonitorSample s;
      co_await chan.frontend().fetch(self, s);
      if (phase < kPhases && offset >= guard.ns &&
          offset < (phase_len - guard).ns) {
        auto& p = phases[static_cast<std::size_t>(phase)];
        ++p.issued;
        if (s.ok) ++p.okay;
      }
    }
  });
  simu.run_for(phase_len * kPhases);
  return phases;
}

/// Whole-cluster failover: one back end crashes and recovers mid-run.
struct ClusterResult {
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed_over = 0;
  std::uint64_t fetch_failures = 0;
  std::string final_health;
};

ClusterResult run_cluster(Scheme scheme, sim::Duration run) {
  sim::Simulation simu;
  web::ClusterConfig cfg;
  cfg.backends = 4;
  cfg.scheme = scheme;
  cfg.lb_granularity = sim::msec(10);
  cfg.fetch_timeout = sim::msec(5);
  cfg.fetch_retries = 1;
  cfg.retry_backoff = sim::msec(1);
  cfg.seed = 7;
  web::ClusterTestbed bed(simu, cfg);
  web::ClientGroupConfig ccfg;
  ccfg.threads_per_node = 8;
  ccfg.think = sim::msec(5);
  web::ClientGroup& g = bed.add_clients(2, web::make_rubis_generator(), ccfg);

  fault::FaultInjector inj(bed.fabric());
  fault::FaultPlan plan;
  plan.crash_for(bed.backend(0).id, sim::TimePoint{(run / 4).ns}, run / 4);
  inj.arm(plan);
  simu.run_for(run);

  ClusterResult r;
  r.completed = g.stats().completed();
  r.rejected = g.stats().rejected();
  r.failed_over = bed.dispatcher().failed_over();
  r.fetch_failures = bed.balancer().fetch_failures();
  for (int b = 0; b < cfg.backends; ++b) {
    if (b) r.final_health += '/';
    r.final_health += lb::to_string(bed.balancer().health_of(b));
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = rdmamon::bench::parse_args(argc, argv);
  using rdmamon::bench::num;
  rdmamon::bench::banner(
      "Fault resilience", "Monitoring availability under injected faults",
      "one-sided RDMA monitoring survives a hung kernel; bounded fetches "
      "turn dead peers into fast, clean failures");

  const sim::Duration phase_len =
      opts.quick ? sim::msec(500) : sim::seconds(2);

  rdmamon::bench::JsonReport report("fault_resilience");
  report.stamp(opts.quick, opts.seed);
  report.set("phase_seconds", phase_len.seconds());

  util::Table table;
  std::vector<std::string> header = {"scheme"};
  for (const char* p : kPhaseNames) {
    header.push_back(std::string(p) + " avail%");
  }
  table.set_header(header);
  table.set_align(0, util::Align::Left);
  for (Scheme s : monitor::kTransportSchemes) {
    const auto phases = run_phases(s, phase_len);
    std::vector<std::string> row = {monitor::to_string(s)};
    for (const auto& p : phases) row.push_back(num(p.availability(), 1));
    table.add_row(row);
    for (int ph = 0; ph < kPhases; ++ph) {
      auto& r = report.add_result();
      r["scheme"] = monitor::to_string(s);
      r["phase"] = kPhaseNames[ph];
      r["issued"] = phases[static_cast<std::size_t>(ph)].issued;
      r["okay"] = phases[static_cast<std::size_t>(ph)].okay;
      r["availability_pct"] =
          phases[static_cast<std::size_t>(ph)].availability();
    }
  }
  std::cout << "\nFetch availability per fault phase (timeout 5 ms, "
               "2 retries):\n";
  rdmamon::bench::show(table);
  std::cout << "frozen: socket probes need the hung host's kernel; the "
               "RDMA READ is served by the NIC's DMA engine.\n"
               "crashed: nobody answers — what matters is that every "
               "fetch still resolves (timeout/error), never hangs.\n";

  const sim::Duration cluster_run =
      opts.quick ? sim::seconds(2) : sim::seconds(6);
  util::Table ctable;
  ctable.set_header({"scheme", "completed", "rejected", "failed over",
                     "fetch failures", "final health"});
  ctable.set_align(0, util::Align::Left);
  auto& failover = report.root()["cluster_failover"];
  failover = util::JsonValue::array();
  for (Scheme s : monitor::kTransportSchemes) {
    const ClusterResult r = run_cluster(s, cluster_run);
    ctable.add_row({monitor::to_string(s), std::to_string(r.completed),
                    std::to_string(r.rejected), std::to_string(r.failed_over),
                    std::to_string(r.fetch_failures), r.final_health});
    auto& j = failover.push_back(util::JsonValue::object());
    j["scheme"] = monitor::to_string(s);
    j["completed"] = r.completed;
    j["rejected"] = r.rejected;
    j["failed_over"] = r.failed_over;
    j["fetch_failures"] = r.fetch_failures;
    j["final_health"] = r.final_health;
  }
  std::cout << "\nWhole-cluster failover (4 back ends, backend0 crashes for "
               "a quarter of the run, then recovers):\n";
  rdmamon::bench::show(ctable);
  std::cout << "pending requests on the dead back end are rejected so "
               "clients re-traffic the survivors; the back end is "
               "re-admitted after recovery.\n";
  report.write();
  return 0;
}
