// Micro-benchmarks (google-benchmark) of the simulator's primitives and
// of the modelled operations' simulated costs. These are the ablation
// hooks for DESIGN.md's modelling decisions: RDMA READ vs socket RTT,
// scheduler dispatch cost, event-queue throughput, Zipf sampling.
#include <benchmark/benchmark.h>

#include "monitor/monitor.hpp"
#include "net/fabric.hpp"
#include "net/nic.hpp"
#include "net/socket.hpp"
#include "net/verbs.hpp"
#include "os/node.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "workload/rubis.hpp"
#include "workload/zipf.hpp"

namespace {

using namespace rdmamon;

// --- DES kernel ---------------------------------------------------------------

void BM_EventQueueScheduleRun(benchmark::State& state) {
  sim::Simulation simu;
  std::int64_t t = 1;
  for (auto _ : state) {
    simu.at(sim::TimePoint{t}, [] {});
    simu.run_until(sim::TimePoint{t});
    ++t;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_EventQueueBurst(benchmark::State& state) {
  const int burst = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation simu;
    for (int i = 0; i < burst; ++i) {
      simu.after(sim::nsec(i), [] {});
    }
    simu.run();
    benchmark::DoNotOptimize(simu.events_executed());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * burst);
}
BENCHMARK(BM_EventQueueBurst)->Arg(1000)->Arg(10000);

// --- RNG / workload sampling ----------------------------------------------------

void BM_ZipfSample(benchmark::State& state) {
  sim::ZipfDistribution z(static_cast<std::size_t>(state.range(0)), 0.8);
  sim::Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(100000);

void BM_RubisInstance(benchmark::State& state) {
  workload::RubisWorkload wl;
  sim::Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wl.sample_instance(rng));
  }
}
BENCHMARK(BM_RubisInstance);

// --- OS model -------------------------------------------------------------------

void BM_SchedulerContextSwitches(benchmark::State& state) {
  // Wall-clock cost of simulating round-robin among N compute threads.
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulation simu;
    os::NodeConfig cfg;
    cfg.cpus = 2;
    os::Node node(simu, cfg);
    for (int i = 0; i < threads; ++i) {
      node.spawn("t" + std::to_string(i), [](os::SimThread&) -> os::Program {
        for (;;) co_await os::Compute{sim::msec(5)};
      });
    }
    state.ResumeTiming();
    simu.run_for(sim::seconds(1));
    benchmark::DoNotOptimize(node.sched().context_switches());
  }
}
BENCHMARK(BM_SchedulerContextSwitches)->Arg(4)->Arg(16);

// --- transports: simulated cost AND wall cost -------------------------------------

void BM_SimulatedRdmaRead(benchmark::State& state) {
  sim::Simulation simu;
  net::Fabric fabric(simu, {});
  os::Node a(simu, {.name = "a"}), b(simu, {.name = "b"});
  fabric.attach(a);
  fabric.attach(b);
  net::MrKey key =
      fabric.nic(1).register_mr(256, [] { return std::any(1); });
  net::CompletionQueue cq;
  net::QueuePair qp(fabric.nic(0), 1, cq);
  double last_us = 0;
  for (auto _ : state) {
    const sim::TimePoint t0 = simu.now();
    bool done = false;
    fabric.nic(0).rdma_read(1, key, 256, 0,
                            [&](net::Completion) { done = true; });
    while (!done) simu.run_for(sim::usec(1));
    last_us = (simu.now() - t0).micros();
    benchmark::DoNotOptimize(done);
  }
  state.counters["sim_latency_us"] = last_us;
}
BENCHMARK(BM_SimulatedRdmaRead);

void BM_SimulatedMonitorFetch(benchmark::State& state) {
  // One full RDMA-Sync monitoring fetch through the coroutine stack.
  const auto scheme = static_cast<monitor::Scheme>(state.range(0));
  sim::Simulation simu;
  net::Fabric fabric(simu, {});
  os::Node fe(simu, {.name = "fe"}), be(simu, {.name = "be"});
  fabric.attach(fe);
  fabric.attach(be);
  monitor::MonitorConfig mcfg;
  mcfg.scheme = scheme;
  monitor::MonitorChannel chan(fabric, fe, be, mcfg);
  std::uint64_t fetches = 0;
  monitor::MonitorSample sample;
  fe.spawn("mon", [&](os::SimThread& self) -> os::Program {
    for (;;) {
      co_await chan.frontend().fetch(self, sample);
      ++fetches;
      co_await os::SleepFor{sim::msec(1)};
    }
  });
  simu.run_for(sim::msec(100));  // warm-up
  for (auto _ : state) {
    const std::uint64_t before = fetches;
    while (fetches == before) simu.run_for(sim::msec(1));
  }
  state.counters["sim_latency_us"] = sample.latency().micros();
}
BENCHMARK(BM_SimulatedMonitorFetch)
    ->Arg(static_cast<int>(monitor::Scheme::SocketSync))
    ->Arg(static_cast<int>(monitor::Scheme::RdmaSync));

}  // namespace

BENCHMARK_MAIN();
