// Information-age at dispatch: how old is the load view a dispatch
// decision is actually made on, per refresh strategy, as the cluster
// grows. Pull ages are bounded by the poll granularity (plus fetch
// latency); push ages by the publisher's change/heartbeat cadence and
// the inbox scan period; adaptive must land near the better of the two.
//
// Also the flight-recorder/lineage overhead proof: the same scenario is
// run with the telemetry plane (registry + flight recorder + lineage
// histograms) off and on, and the host wall-clock delta is reported.
// Both planes are wall-clock-only bookkeeping, so the simulated age
// figures must be identical; the wall delta is reported (not asserted —
// host timing is noisy) with a <= 1% budget note.
#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "args.hpp"
#include "common.hpp"
#include "report.hpp"
#include "lb/balancer.hpp"
#include "monitor/adaptive.hpp"
#include "monitor/inbox.hpp"
#include "monitor/monitor.hpp"
#include "net/fabric.hpp"
#include "os/node.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "telemetry/registry.hpp"

namespace {

using namespace rdmamon;
using monitor::Scheme;

struct FreshCell {
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t dispatches = 0;
  double wall_ms = 0.0;  ///< host cost of simulating the cell
};

/// Telemetry-plane variants of one cell (overhead isolation).
enum class Plane {
  Off,          ///< no registry installed at all
  RecorderOff,  ///< registry + lineage on, flight recorder disabled
  On,           ///< the always-on default: everything recording
};

/// One cluster under one refresh strategy: N toggling back ends, a
/// balancer polling at the paper's T = 50 ms, and a dispatcher picking
/// every 2 ms. Records the view age behind every pick.
FreshCell run_freshness(monitor::MonitorStrategy strat, int n,
                        std::uint64_t seed, sim::Duration horizon,
                        Plane plane) {
  const auto wall0 = std::chrono::steady_clock::now();
  sim::Simulation simu;
  telemetry::Registry reg;
  if (plane != Plane::Off) {
    reg.install(simu);
    reg.recorder().set_enabled(plane == Plane::On);
  }
  net::Fabric fabric(simu, {});
  os::Node frontend(simu, {.name = "fe"});
  fabric.attach(frontend);

  const lb::WeightConfig weights =
      lb::WeightConfig::for_scheme(Scheme::RdmaSync);
  lb::LoadBalancer lb(weights);
  monitor::MonitorConfig mcfg;
  mcfg.scheme = Scheme::RdmaSync;
  std::vector<std::unique_ptr<os::Node>> backends;
  sim::Rng rng(seed);
  const sim::Duration phase = sim::msec(40);  // load flips ~12x per second
  for (int i = 0; i < n; ++i) {
    os::NodeConfig cfg;
    cfg.name = "be" + std::to_string(i);
    backends.push_back(std::make_unique<os::Node>(simu, cfg));
    fabric.attach(*backends.back());
    lb.add_backend(std::make_unique<monitor::MonitorChannel>(
        fabric, frontend, *backends.back(), mcfg));
    const sim::Duration offset{rng.uniform_int(0, 2 * phase.ns)};
    backends.back()->spawn(
        "toggler", [phase, offset](os::SimThread&) -> os::Program {
          co_await os::SleepFor{offset};
          for (;;) {
            co_await os::Compute{phase};
            co_await os::SleepFor{phase};
          }
        });
  }

  monitor::PushConfig pushcfg;  // defaults: 5ms check, 100ms heartbeat
  std::unique_ptr<monitor::PushInbox> inbox;
  std::vector<std::unique_ptr<monitor::PushPublisher>> pubs;
  if (strat != monitor::MonitorStrategy::Pull) {
    inbox = std::make_unique<monitor::PushInbox>(fabric, frontend, n,
                                                 pushcfg.slot_bytes);
    lb::PushPollConfig pcfg;
    pcfg.strategy = strat;
    pcfg.adaptive.push_heartbeat = pushcfg.max_interval;
    pcfg.adaptive.change_threshold = pushcfg.change_threshold;
    lb.enable_push(*inbox, pcfg);
    for (int i = 0; i < n; ++i) {
      pubs.push_back(std::make_unique<monitor::PushPublisher>(
          fabric, *backends[static_cast<std::size_t>(i)], pushcfg));
      pubs.back()->target(frontend.id, inbox->mr_key(), i);
    }
    lb.on_mode_change([&pubs](std::size_t b, monitor::FetchMode m) {
      if (m == monitor::FetchMode::Pull) {
        pubs[b]->pause();
      } else {
        pubs[b]->resume();
      }
    });
    for (auto& p : pubs) p->start();
  }
  lb.start(frontend, sim::msec(50));
  for (std::size_t b = 0; b < pubs.size(); ++b) {
    if (lb.fetch_mode(b) == monitor::FetchMode::Pull) pubs[b]->pause();
  }

  // The dispatcher: every pick() appends a DispatchRecord with the view
  // age the decision used; reading the ring's tail right after the pick
  // gives the exact per-dispatch lineage without unbounded buffering.
  const sim::Duration warmup = sim::seconds(1);
  sim::Histogram age_us;
  frontend.spawn("dispatcher", [&](os::SimThread&) -> os::Program {
    co_await os::SleepFor{warmup};
    for (;;) {
      (void)lb.pick();
      if (!lb.dispatch_log().empty()) {
        const lb::DispatchRecord& r = lb.dispatch_log().back();
        if (r.view_age.ns >= 0) {
          age_us.add(static_cast<double>(r.view_age.ns) / 1e3);
        }
      }
      co_await os::SleepFor{sim::msec(2)};
    }
  });
  simu.run_for(warmup + horizon);

  FreshCell cell;
  cell.mean_us = age_us.mean();
  cell.p50_us = age_us.percentile(0.50);
  cell.p99_us = age_us.percentile(0.99);
  cell.dispatches = age_us.count();
  cell.wall_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - wall0)
                     .count();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = rdmamon::bench::parse_args(argc, argv);
  using rdmamon::bench::num;
  rdmamon::bench::banner(
      "freshness", "Information age at dispatch per refresh strategy",
      "how stale is the view a dispatch decision is actually made on; "
      "push/adaptive buy freshness that polling granularity cannot");

  const std::vector<int> ns =
      opts.quick ? std::vector<int>{16, 64} : std::vector<int>{64, 256};
  const sim::Duration horizon =
      opts.quick ? sim::seconds(3) : sim::seconds(6);
  const std::vector<monitor::MonitorStrategy> strategies = {
      monitor::MonitorStrategy::Pull, monitor::MonitorStrategy::Push,
      monitor::MonitorStrategy::Adaptive};

  rdmamon::bench::JsonReport report("freshness");
  report.stamp(opts.quick, opts.seed);
  report.set("horizon_seconds", horizon.seconds());

  std::cout << "\n--- information age at dispatch: p50 / p99 (us) ---\n";
  rdmamon::util::Table table;
  std::vector<std::string> header = {"strategy"};
  for (int n : ns) header.push_back("N=" + std::to_string(n));
  table.set_header(header);
  table.set_align(0, rdmamon::util::Align::Left);
  for (const monitor::MonitorStrategy strat : strategies) {
    std::vector<std::string> row = {monitor::to_string(strat)};
    for (int n : ns) {
      const FreshCell c =
          run_freshness(strat, n, opts.seed, horizon, Plane::On);
      row.push_back(num(c.p50_us, 1) + " / " + num(c.p99_us, 1));
      auto& r = report.add_result();
      r["strategy"] = monitor::to_string(strat);
      r["n"] = n;
      r["age_mean_us"] = c.mean_us;
      r["age_p50_us"] = c.p50_us;
      r["age_p99_us"] = c.p99_us;
      r["dispatches"] = static_cast<double>(c.dispatches);
      r["wall_ms"] = c.wall_ms;
    }
    table.add_row(row);
  }
  rdmamon::bench::show(table);

  // --- recorder + lineage overhead ----------------------------------------
  // Same scenario, three telemetry-plane variants: no registry at all,
  // registry with the flight recorder disabled, and the always-on
  // default. Both planes are host-side bookkeeping only, so the simulated
  // age figures must match exactly; the wall deltas price them. The
  // recorder's own delta (recorder-off -> on) carries the <= 1% budget.
  // Best-of-3 wall per variant tames scheduler noise; reported, not
  // asserted — host timing is not a CI-stable signal.
  std::cout << "\nRecorder + lineage overhead (best-of-3 wall clock):\n";
  const int on = ns.back();
  const monitor::MonitorStrategy ostrat = monitor::MonitorStrategy::Adaptive;
  double wall[3] = {1e300, 1e300, 1e300};
  double age[3] = {0.0, 0.0, 0.0};
  const Plane planes[3] = {Plane::Off, Plane::RecorderOff, Plane::On};
  const int reps = 3;
  for (int r = 0; r < reps; ++r) {
    for (int p = 0; p < 3; ++p) {
      const FreshCell c = run_freshness(ostrat, on, opts.seed, horizon,
                                        planes[p]);
      wall[p] = std::min(wall[p], c.wall_ms);
      age[p] = c.mean_us;
    }
  }
  const double recorder_pct =
      wall[1] > 0.0 ? (wall[2] / wall[1] - 1.0) * 100.0 : 0.0;
  const double plane_pct =
      wall[0] > 0.0 ? (wall[2] / wall[0] - 1.0) * 100.0 : 0.0;
  std::cout << "  adaptive, N=" << on << ": no-registry " << num(wall[0], 1)
            << "ms, recorder-off " << num(wall[1], 1) << "ms, recorder-on "
            << num(wall[2], 1) << "ms\n  recorder delta "
            << num(recorder_pct, 2) << "% (budget <= 1%); whole telemetry "
            << "plane " << num(plane_pct, 2)
            << "%\n  simulated mean age across variants: " << num(age[0], 2)
            << " / " << num(age[1], 2) << " / " << num(age[2], 2)
            << "us (must be identical: recording charges no simulated "
               "time)\n";
  auto& o = report.root()["recorder_overhead"];
  o = rdmamon::util::JsonValue::object();
  o["strategy"] = monitor::to_string(ostrat);
  o["n"] = on;
  o["wall_ms_no_registry"] = wall[0];
  o["wall_ms_recorder_off"] = wall[1];
  o["wall_ms_recorder_on"] = wall[2];
  o["recorder_delta_pct"] = recorder_pct;
  o["telemetry_plane_delta_pct"] = plane_pct;
  o["ages_match"] = age[0] == age[1] && age[1] == age[2];

  report.write();
  return 0;
}
