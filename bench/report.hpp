// Machine-readable bench reports: every bench binary emits a
// BENCH_<name>.json next to its stdout tables, so CI (and humans
// diffing runs) can parse results without scraping ASCII tables.
//
// Layout (per result row, fields as each bench fills them):
//   { "name": "...", "quick": true, "seed": 42,
//     "results": [ {"scheme": "...", "n": 8, "mean_us": ..,
//                   "p50_us": .., "p99_us": ..}, ... ],
//     ... bench-specific extras ... }
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>

#include "util/json.hpp"

namespace rdmamon::bench {

/// Builder + writer for one bench's BENCH_<name>.json. The document root
/// is an insertion-ordered JSON object; `results` is the conventional
/// per-configuration array. write() targets the current directory unless
/// RDMAMON_BENCH_DIR is set.
class JsonReport {
 public:
  /// Bump when the report layout changes shape (new top-level metadata,
  /// renamed conventional fields) so trajectory tooling can dispatch.
  static constexpr int kSchemaVersion = 2;

  explicit JsonReport(std::string name)
      : name_(std::move(name)),
        started_(std::chrono::steady_clock::now()) {
    root_ = util::JsonValue::object();
    root_["name"] = name_;
    root_["schema_version"] = kSchemaVersion;
    root_["results"] = util::JsonValue::array();
  }

  /// Run provenance (every bench calls this right after parse_args):
  /// which mode and seed produced these numbers — without it the perf
  /// trajectory across PRs is guesswork.
  void stamp(bool quick, std::uint64_t seed) {
    root_["quick"] = quick;
    root_["seed"] = seed;
  }

  util::JsonValue& root() { return root_; }

  /// Sets a top-level field (insertion-ordered).
  void set(const std::string& key, util::JsonValue v) {
    root_[key] = std::move(v);
  }

  /// Appends and returns a fresh row of the `results` array.
  util::JsonValue& add_result() {
    return root_["results"].push_back(util::JsonValue::object());
  }

  std::string filename() const {
    const char* dir = std::getenv("RDMAMON_BENCH_DIR");
    const std::string base = "BENCH_" + name_ + ".json";
    return dir != nullptr && dir[0] != '\0' ? std::string(dir) + "/" + base
                                            : base;
  }

  /// Writes the document; prints where it went (or why it could not).
  /// Adds the wall-clock metadata at the last moment so it covers the
  /// whole run (golden-trace checks treat these keys as volatile).
  bool write() {
    using namespace std::chrono;
    root_["wall_ms"] = static_cast<double>(
        duration_cast<microseconds>(steady_clock::now() - started_).count()) /
        1000.0;
    root_["generated_unix_ms"] = static_cast<std::int64_t>(
        duration_cast<milliseconds>(system_clock::now().time_since_epoch())
            .count());
    const std::string path = filename();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::cerr << "warning: cannot write " << path << "\n";
      return false;
    }
    const std::string text = root_.dump(2) + "\n";
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::cout << "\n[report] wrote " << path << "\n";
    return true;
  }

 private:
  std::string name_;
  std::chrono::steady_clock::time_point started_;
  util::JsonValue root_;
};

}  // namespace rdmamon::bench
