// Machine-readable bench reports: every bench binary emits a
// BENCH_<name>.json next to its stdout tables, so CI (and humans
// diffing runs) can parse results without scraping ASCII tables.
//
// Layout (per result row, fields as each bench fills them):
//   { "name": "...", "quick": true, "seed": 42,
//     "results": [ {"scheme": "...", "n": 8, "mean_us": ..,
//                   "p50_us": .., "p99_us": ..}, ... ],
//     ... bench-specific extras ... }
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>

#include "util/json.hpp"

namespace rdmamon::bench {

/// Builder + writer for one bench's BENCH_<name>.json. The document root
/// is an insertion-ordered JSON object; `results` is the conventional
/// per-configuration array. write() targets the current directory unless
/// RDMAMON_BENCH_DIR is set.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {
    root_ = util::JsonValue::object();
    root_["name"] = name_;
    root_["results"] = util::JsonValue::array();
  }

  util::JsonValue& root() { return root_; }

  /// Sets a top-level field (insertion-ordered).
  void set(const std::string& key, util::JsonValue v) {
    root_[key] = std::move(v);
  }

  /// Appends and returns a fresh row of the `results` array.
  util::JsonValue& add_result() {
    return root_["results"].push_back(util::JsonValue::object());
  }

  std::string filename() const {
    const char* dir = std::getenv("RDMAMON_BENCH_DIR");
    const std::string base = "BENCH_" + name_ + ".json";
    return dir != nullptr && dir[0] != '\0' ? std::string(dir) + "/" + base
                                            : base;
  }

  /// Writes the document; prints where it went (or why it could not).
  bool write() const {
    const std::string path = filename();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::cerr << "warning: cannot write " << path << "\n";
      return false;
    }
    const std::string text = root_.dump(2) + "\n";
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::cout << "\n[report] wrote " << path << "\n";
    return true;
  }

 private:
  std::string name_;
  util::JsonValue root_;
};

}  // namespace rdmamon::bench
