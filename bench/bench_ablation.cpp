// Ablations of the design choices DESIGN.md calls out:
//  A. Pull (RDMA-Sync) vs hardware-multicast push (Section 6 discussion):
//     push needs a back-end daemon and ages up to a full period; pull is
//     fresh at every fetch with zero back-end footprint.
//  B. The run-queue term in the WebSphere load index: without it the
//     balancer sees only the smoothed CPU EMA and reacts late.
//  C. Monitoring granularity vs accuracy for RDMA-Sync: accuracy at
//     retrieval is granularity-independent (it is fresh per fetch) —
//     the property that makes fine-grained control loops possible.
#include "args.hpp"
#include "common.hpp"
#include "mixed_workload.hpp"
#include "report.hpp"
#include "monitor/accuracy.hpp"
#include "monitor/push.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace rdmamon;

void ablation_push_vs_pull(bool quick, bench::JsonReport& report) {
  std::cout << "\n[A] Pull (RDMA-Sync) vs multicast push @ T=50ms, loaded "
               "back end:\n";
  const sim::Duration run = quick ? sim::seconds(3) : sim::seconds(8);

  util::Table t;
  t.set_header({"mechanism", "staleness mean (ms)", "staleness max (ms)",
                "backend daemons", "thread-count error"});
  t.set_align(0, util::Align::Left);

  // --- pull: RDMA-Sync fetched every 50 ms --------------------------------
  {
    sim::Simulation simu;
    net::Fabric fabric(simu, {});
    os::Node fe(simu, {.name = "fe"}), be(simu, {.name = "be"}),
        peer(simu, {.name = "peer"});
    fabric.attach(fe);
    fabric.attach(be);
    fabric.attach(peer);
    workload::BackgroundLoadConfig bl;
    bl.threads = 6;
    workload::BackgroundLoad bg(fabric, be, peer, bl);
    monitor::MonitorConfig mcfg;
    mcfg.scheme = monitor::Scheme::RdmaSync;
    monitor::MonitorChannel chan(fabric, fe, be, mcfg);
    monitor::AccuracyTracker acc;
    fe.spawn("mon", [&](os::SimThread& self) -> os::Program {
      for (;;) {
        monitor::MonitorSample s;
        co_await chan.frontend().fetch(self, s);
        acc.record(s, chan.frontend().ground_truth());
        co_await os::SleepFor{sim::msec(50)};
      }
    });
    simu.run_for(run);
    t.add_row({"pull RDMA-Sync",
               rdmamon::bench::num(acc.staleness_ms().mean(), 3),
               rdmamon::bench::num(acc.staleness_ms().max(), 3),
               "0",
               rdmamon::bench::num(acc.nr_running_deviation().mean(), 2)});
    auto& r = report.add_result();
    r["ablation"] = "push_vs_pull";
    r["mechanism"] = "pull RDMA-Sync";
    r["staleness_mean_ms"] = acc.staleness_ms().mean();
    r["staleness_max_ms"] = acc.staleness_ms().max();
    r["backend_daemons"] = 0;
    r["nr_running_dev"] = acc.nr_running_deviation().mean();
  }

  // --- push: multicast every 50 ms -----------------------------------------
  {
    sim::Simulation simu;
    net::Fabric fabric(simu, {});
    os::Node fe(simu, {.name = "fe"}), be(simu, {.name = "be"}),
        peer(simu, {.name = "peer"});
    fabric.attach(fe);
    fabric.attach(be);
    fabric.attach(peer);
    workload::BackgroundLoadConfig bl;
    bl.threads = 6;
    workload::BackgroundLoad bg(fabric, be, peer, bl);
    monitor::MulticastConfig pcfg;
    pcfg.period = sim::msec(50);
    monitor::MulticastPublisher pub(fabric, be, pcfg);
    monitor::MulticastSubscriber& sub = pub.subscribe(fe);
    pub.start();
    sim::OnlineStats staleness_ms, nr_dev;
    fe.spawn("sampler", [&](os::SimThread&) -> os::Program {
      for (;;) {
        co_await os::SleepFor{sim::msec(50)};
        if (sub.has_data()) {
          const monitor::MonitorSample s = sub.last(simu.now());
          staleness_ms.add(s.staleness().millis());
          nr_dev.add(std::abs(s.info.nr_running - be.stats().nr_running()));
        }
      }
    });
    simu.run_for(run);
    const int daemons = be.stats().nr_threads() - bl.threads;
    t.add_row({"push multicast",
               rdmamon::bench::num(staleness_ms.mean(), 3),
               rdmamon::bench::num(staleness_ms.max(), 3), std::to_string(daemons),
               rdmamon::bench::num(nr_dev.mean(), 2)});
    auto& r = report.add_result();
    r["ablation"] = "push_vs_pull";
    r["mechanism"] = "push multicast";
    r["staleness_mean_ms"] = staleness_ms.mean();
    r["staleness_max_ms"] = staleness_ms.max();
    r["backend_daemons"] = daemons;
    r["nr_running_dev"] = nr_dev.mean();
  }
  rdmamon::bench::show(t);
}

void ablation_runq_weight(bool quick, bench::JsonReport& report) {
  std::cout << "\n[B] Run-queue term in the load index "
               "(RUBiS+Zipf, RDMA-Sync @ 50ms):\n";
  // Re-run the mixed workload with the index's run-queue weight zeroed by
  // pretending the scheme cannot see nr_running... the cleanest ablation
  // hook we have is granularity: an index without its fast-moving term is
  // equivalent to reading it very rarely. So compare normal vs a 4096ms
  // refresh, which freezes every term.
  rdmamon::bench::MixedRunConfig fine;
  fine.scheme = monitor::Scheme::RdmaSync;
  fine.run = quick ? sim::seconds(5) : sim::seconds(15);
  fine.warmup = sim::seconds(2);
  rdmamon::bench::MixedRunConfig coarse = fine;
  coarse.lb_granularity = sim::msec(4096);
  const auto fine_r = rdmamon::bench::run_mixed_workload(fine);
  const auto coarse_r = rdmamon::bench::run_mixed_workload(coarse);
  util::Table t;
  t.set_header({"index freshness", "throughput (req/s)",
                "mean response (ms)"});
  t.set_align(0, util::Align::Left);
  t.add_row({"fresh (50ms)",
             rdmamon::bench::num(fine_r.total_throughput, 0),
             rdmamon::bench::num(fine_r.mean_response_ms, 2)});
  t.add_row({"frozen (4096ms)",
             rdmamon::bench::num(coarse_r.total_throughput, 0),
             rdmamon::bench::num(coarse_r.mean_response_ms, 2)});
  for (const bool frozen : {false, true}) {
    const auto& res = frozen ? coarse_r : fine_r;
    auto& r = report.add_result();
    r["ablation"] = "index_freshness";
    r["freshness"] = frozen ? "frozen (4096ms)" : "fresh (50ms)";
    r["throughput_rps"] = res.total_throughput;
    r["mean_response_ms"] = res.mean_response_ms;
  }
  rdmamon::bench::show(t);
}

void ablation_granularity_accuracy(bool quick, bench::JsonReport& report) {
  std::cout << "\n[C] RDMA-Sync accuracy vs fetch granularity (fresh at "
               "every fetch, by construction):\n";
  const sim::Duration run = quick ? sim::seconds(3) : sim::seconds(8);
  util::Table t;
  t.set_header({"granularity (ms)", "staleness mean (us)",
                "thread-count error"});
  for (int g : {1, 16, 256}) {
    sim::Simulation simu;
    net::Fabric fabric(simu, {});
    os::Node fe(simu, {.name = "fe"}), be(simu, {.name = "be"});
    fabric.attach(fe);
    fabric.attach(be);
    for (int i = 0; i < 3; ++i) {
      be.spawn("w", [](os::SimThread&) -> os::Program {
        for (;;) {
          co_await os::Compute{sim::msec(3)};
          co_await os::SleepFor{sim::msec(2)};
        }
      });
    }
    monitor::MonitorConfig mcfg;
    mcfg.scheme = monitor::Scheme::RdmaSync;
    monitor::MonitorChannel chan(fabric, fe, be, mcfg);
    monitor::AccuracyTracker acc;
    fe.spawn("mon", [&, g](os::SimThread& self) -> os::Program {
      for (;;) {
        monitor::MonitorSample s;
        co_await chan.frontend().fetch(self, s);
        acc.record(s, chan.frontend().ground_truth());
        co_await os::SleepFor{sim::msec(g)};
      }
    });
    simu.run_for(run);
    t.add_row({std::to_string(g),
               rdmamon::bench::num(acc.staleness_ms().mean() * 1e3, 2),
               rdmamon::bench::num(acc.nr_running_deviation().mean(), 3)});
    auto& r = report.add_result();
    r["ablation"] = "granularity_accuracy";
    r["granularity_ms"] = g;
    r["staleness_mean_us"] = acc.staleness_ms().mean() * 1e3;
    r["nr_running_dev"] = acc.nr_running_deviation().mean();
  }
  rdmamon::bench::show(t);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = rdmamon::bench::parse_args(argc, argv);
  rdmamon::bench::banner(
      "Ablations", "Design-choice ablations from DESIGN.md",
      "push-vs-pull (Section 6), index freshness, granularity vs accuracy");
  rdmamon::bench::JsonReport report("ablation");
  report.stamp(opts.quick, opts.seed);
  ablation_push_vs_pull(opts.quick, report);
  ablation_runq_weight(opts.quick, report);
  ablation_granularity_accuracy(opts.quick, report);
  report.write();
  return 0;
}
