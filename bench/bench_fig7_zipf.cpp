// Figure 7: throughput improvement over Socket-Async for the co-hosted
// RUBiS + Zipf workload, sweeping the Zipf alpha.
// Paper shape: large gains at low alpha (diverse per-request cost, cache
// misses) — up to ~28% for RDMA-Sync and ~35% for e-RDMA-Sync at
// alpha 0.25 — shrinking as alpha rises and the working set caches.
#include "args.hpp"
#include "common.hpp"
#include "mixed_workload.hpp"
#include "report.hpp"

int main(int argc, char** argv) {
  using namespace rdmamon;
  const auto opts = bench::parse_args(argc, argv);
  bench::banner(
      "Figure 7", "Throughput improvement vs Socket-Async, Zipf alpha sweep",
      "RDMA-Sync up to ~28%, e-RDMA-Sync up to ~35% at alpha 0.25; gains "
      "shrink as alpha (temporal locality) rises");

  const std::vector<double> alphas =
      opts.quick ? std::vector<double>{0.25, 0.9}
                 : std::vector<double>{0.25, 0.5, 0.75, 0.9};
  bench::MixedRunConfig base;
  base.seed = opts.seed;
  base.run = opts.quick ? sim::seconds(6) : sim::seconds(20);
  base.warmup = opts.quick ? sim::seconds(2) : sim::seconds(4);

  bench::JsonReport report("fig7_zipf");
  report.stamp(opts.quick, opts.seed);

  util::Table table;
  std::vector<std::string> header = {"scheme \\ alpha"};
  std::vector<std::string> labels;
  for (double a : alphas) {
    header.push_back(bench::num(a, 2));
    labels.push_back(bench::num(a, 2));
  }
  table.set_header(header);
  table.set_align(0, util::Align::Left);

  // Baseline: Socket-Async throughput per alpha.
  std::vector<double> baseline;
  for (double a : alphas) {
    bench::MixedRunConfig mc = base;
    mc.scheme = monitor::Scheme::SocketAsync;
    mc.alpha = a;
    baseline.push_back(bench::run_mixed_workload(mc).total_throughput);
    auto& r = report.add_result();
    r["scheme"] = monitor::to_string(monitor::Scheme::SocketAsync);
    r["alpha"] = a;
    r["throughput_rps"] = baseline.back();
    r["improvement_pct"] = 0.0;
  }
  {
    std::vector<std::string> row = {"Socket-Async (req/s)"};
    for (double t : baseline) row.push_back(bench::num(t, 0));
    table.add_row(row);
  }

  util::AsciiChart chart("throughput improvement over Socket-Async (%)",
                         labels);
  for (monitor::Scheme s :
       {monitor::Scheme::SocketSync, monitor::Scheme::RdmaAsync,
        monitor::Scheme::RdmaSync, monitor::Scheme::ERdmaSync}) {
    std::vector<std::string> row = {monitor::to_string(s)};
    std::vector<double> ys;
    for (std::size_t i = 0; i < alphas.size(); ++i) {
      bench::MixedRunConfig mc = base;
      mc.scheme = s;
      mc.alpha = alphas[i];
      const double t = bench::run_mixed_workload(mc).total_throughput;
      const double imp = (t / baseline[i] - 1.0) * 100.0;
      row.push_back(bench::num(imp, 1) + "%");
      ys.push_back(imp);
      auto& r = report.add_result();
      r["scheme"] = monitor::to_string(s);
      r["alpha"] = alphas[i];
      r["throughput_rps"] = t;
      r["improvement_pct"] = imp;
    }
    table.add_row(row);
    chart.add_series({monitor::to_string(s), ys});
  }
  std::cout << "\nThroughput improvement relative to Socket-Async:\n";
  bench::show(table);
  bench::show(chart);
  report.write();
  return 0;
}
