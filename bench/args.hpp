// Minimal CLI handling shared by all bench binaries: `--quick` shrinks
// sweeps for smoke runs; `--seed N` changes the experiment seed.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>

namespace rdmamon::bench {

struct Options {
  bool quick = false;
  std::uint64_t seed = 42;
};

inline Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      o.quick = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      o.seed = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  return o;
}

}  // namespace rdmamon::bench
