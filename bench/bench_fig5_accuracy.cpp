// Figure 5: accuracy of the reported load information vs the kernel's
// ground truth while client-request load on the back end ramps up.
//  (a) deviation of the reported runnable-thread count
//  (b) deviation of the reported CPU load
// Paper shape: RDMA-Sync tracks the kernel exactly; RDMA-Async deviates on
// the fast-moving CPU signal; both socket schemes deviate most, and worse
// as the server gets busier.
#include <any>

#include "args.hpp"
#include "common.hpp"
#include "report.hpp"
#include "monitor/accuracy.hpp"
#include "monitor/monitor.hpp"
#include "net/fabric.hpp"
#include "os/node.hpp"
#include "sim/simulation.hpp"
#include "web/request.hpp"
#include "web/server.hpp"
#include "workload/rubis.hpp"

namespace {

using namespace rdmamon;
using monitor::Scheme;

struct Deviation {
  double nr_running;
  double cpu_load;
};

/// Runs `scheme` against a back end serving `active_clients` closed-loop
/// request streams; returns the mean absolute deviations.
Deviation measure(Scheme scheme, int active_clients, sim::Duration run,
                  std::uint64_t seed) {
  sim::Simulation simu;
  net::Fabric fabric(simu, {});
  os::Node frontend(simu, {.name = "frontend"});
  // A short utilisation window makes the kernel's CPU-load signal as
  // volatile as the paper describes ("CPU load fluctuates more rapidly
  // ... than the number of threads"); staleness then shows up as error.
  os::NodeConfig bcfg;
  bcfg.name = "backend";
  bcfg.load_window = sim::msec(20);
  os::Node backend(simu, bcfg);
  os::Node client(simu, {.name = "client"});
  fabric.attach(frontend);
  fabric.attach(backend);
  fabric.attach(client);

  // Back-end web server fed directly by client threads.
  web::ServerConfig scfg;
  web::WebServer server(fabric, backend, scfg);
  workload::RubisWorkload wl;
  sim::Rng rng(seed);
  for (int i = 0; i < active_clients; ++i) {
    net::Connection& conn = fabric.connect(client, backend);
    server.listen(conn.end_b());
    auto crng = std::make_shared<sim::Rng>(rng.split());
    client.spawn("client" + std::to_string(i),
                 [&wl, sock = &conn.end_a(), crng](os::SimThread& self)
                     -> os::Program {
                   std::uint64_t id = 1;
                   for (;;) {
                     // Bursty arrivals: a run of back-to-back requests,
                     // then an idle gap — the on/off pattern that makes
                     // the CPU load swing.
                     const int burst =
                         1 + static_cast<int>(crng->uniform_int(0, 4));
                     for (int b = 0; b < burst; ++b) {
                       const auto inst = wl.sample_instance(*crng);
                       web::Request req;
                       req.id = id++;
                       req.demand.cpu_php = inst.php_cpu;
                       req.demand.cpu_db = inst.db_cpu;
                       req.demand.io_wait = inst.db_io;
                       req.demand.reply_bytes = inst.reply_bytes;
                       co_await sock->send(self, 512, req);
                       net::Message m;
                       co_await sock->recv(self, m);
                     }
                     co_await os::SleepFor{sim::nsec(
                         static_cast<std::int64_t>(crng->exponential(
                             static_cast<double>(sim::msec(40).ns))))};
                   }
                 });
  }

  monitor::MonitorConfig mcfg;
  mcfg.scheme = scheme;
  monitor::MonitorChannel chan(fabric, frontend, backend, mcfg);

  monitor::AccuracyTracker acc;
  frontend.spawn("mon", [&](os::SimThread& self) -> os::Program {
    co_await os::SleepFor{sim::msec(500)};  // warm-up
    for (;;) {
      monitor::MonitorSample s;
      co_await chan.frontend().fetch(self, s);
      // Ground truth is the fine-grained kernel module's view at the
      // instant the sample arrives.
      acc.record(s, chan.frontend().ground_truth());
      co_await os::SleepFor{sim::msec(23)};  // out of phase with T
    }
  });
  simu.run_for(run);
  return Deviation{acc.nr_running_deviation().mean(),
                   acc.cpu_load_deviation().mean()};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = rdmamon::bench::parse_args(argc, argv);
  using rdmamon::bench::num;
  rdmamon::bench::banner(
      "Figure 5", "Accuracy of reported load vs kernel ground truth",
      "(a) thread-count deviation ~0 only for RDMA-Sync; (b) CPU-load "
      "deviation grows with server load for the other schemes");

  const std::vector<int> clients = opts.quick ? std::vector<int>{0, 16}
                                              : std::vector<int>{0, 4, 8,
                                                                 16, 32};
  const sim::Duration run = opts.quick ? sim::seconds(4) : sim::seconds(10);

  rdmamon::bench::JsonReport report("fig5_accuracy");
  report.stamp(opts.quick, opts.seed);

  std::vector<std::string> labels;
  for (int c : clients) labels.push_back(std::to_string(c));

  rdmamon::util::Table ta;
  std::vector<std::string> header = {"clients ->"};
  for (int c : clients) header.push_back(std::to_string(c));
  ta.set_header(header);
  ta.set_align(0, rdmamon::util::Align::Left);
  rdmamon::util::Table tb = ta;

  rdmamon::util::AsciiChart chart_a("(a) |reported - actual| threads",
                                    labels);
  rdmamon::util::AsciiChart chart_b("(b) |reported - actual| CPU load",
                                    labels);

  for (monitor::Scheme s : monitor::kTransportSchemes) {
    std::vector<std::string> row_a = {monitor::to_string(s)};
    std::vector<std::string> row_b = {monitor::to_string(s)};
    std::vector<double> ya, yb;
    for (int c : clients) {
      const Deviation d = measure(s, c, run, opts.seed);
      row_a.push_back(num(d.nr_running, 2));
      row_b.push_back(num(d.cpu_load, 3));
      ya.push_back(d.nr_running);
      yb.push_back(d.cpu_load);
      auto& r = report.add_result();
      r["scheme"] = monitor::to_string(s);
      r["clients"] = c;
      r["nr_running_dev"] = d.nr_running;
      r["cpu_load_dev"] = d.cpu_load;
    }
    ta.add_row(row_a);
    tb.add_row(row_b);
    chart_a.add_series({monitor::to_string(s), ya});
    chart_b.add_series({monitor::to_string(s), yb});
  }

  std::cout << "\n(a) Mean |deviation| of reported runnable threads:\n";
  rdmamon::bench::show(ta);
  rdmamon::bench::show(chart_a);
  std::cout << "(b) Mean |deviation| of reported CPU load (0..1):\n";
  rdmamon::bench::show(tb);
  rdmamon::bench::show(chart_b);
  report.write();
  return 0;
}
