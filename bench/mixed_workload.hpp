// Shared runner for the co-hosted RUBiS + Zipf experiments (Figs 7 and 9):
// the paper's "cluster-based server hosting two web services" setup, in a
// shared enterprise environment (transient co-hosted disturbances).
#pragma once

#include <memory>

#include "web/cluster.hpp"
#include "workload/synthetic.hpp"

namespace rdmamon::bench {

struct MixedRunConfig {
  monitor::Scheme scheme = monitor::Scheme::RdmaSync;
  double alpha = 0.5;
  sim::Duration lb_granularity = sim::msec(50);
  sim::Duration run = sim::seconds(20);
  sim::Duration warmup = sim::seconds(4);
  sim::Duration think = sim::msec(3);
  int rubis_client_nodes = 4;
  int zipf_client_nodes = 4;
  int server_workers = 16;
  bool disturbances = true;
  std::uint64_t seed = 42;
};

struct MixedRunResult {
  double total_throughput = 0;  ///< completed requests / second
  double rubis_throughput = 0;
  double zipf_throughput = 0;
  double mean_response_ms = 0;
};

inline MixedRunResult run_mixed_workload(const MixedRunConfig& mc) {
  sim::Simulation simu;
  web::ClusterConfig cfg;
  cfg.backends = 8;
  cfg.scheme = mc.scheme;
  cfg.lb_granularity = mc.lb_granularity;
  cfg.server.workers = mc.server_workers;
  cfg.seed = mc.seed;
  web::ClusterTestbed bed(simu, cfg);

  web::ClientGroupConfig ccfg;
  ccfg.threads_per_node = 16;
  ccfg.think = mc.think;
  web::ClientGroup& rubis = bed.add_clients(
      mc.rubis_client_nodes, web::make_rubis_generator(), ccfg);

  workload::ZipfTraceConfig zcfg;
  zcfg.alpha = mc.alpha;
  auto trace = std::make_shared<workload::ZipfTrace>(zcfg, mc.seed + 1);
  web::ClientGroup& zipf = bed.add_clients(
      mc.zipf_client_nodes, web::make_zipf_generator(trace), ccfg);

  std::unique_ptr<os::Node> infra;
  std::unique_ptr<workload::DisturbanceGenerator> disturb;
  if (mc.disturbances) {
    os::NodeConfig icfg;
    icfg.name = "storage";
    infra = std::make_unique<os::Node>(simu, icfg);
    bed.fabric().attach(*infra);
    disturb = std::make_unique<workload::DisturbanceGenerator>(
        bed.fabric(), bed.backend_ptrs(), *infra,
        workload::DisturbanceConfig{}, sim::Rng(mc.seed ^ 0x5eed));
  }

  simu.after(mc.warmup, [&] {
    rubis.stats().reset();
    zipf.stats().reset();
  });
  simu.run_for(mc.warmup + mc.run);

  MixedRunResult out;
  out.rubis_throughput = rubis.stats().throughput(mc.run);
  out.zipf_throughput = zipf.stats().throughput(mc.run);
  out.total_throughput = out.rubis_throughput + out.zipf_throughput;
  const auto total_n =
      rubis.stats().completed() + zipf.stats().completed();
  if (total_n > 0) {
    out.mean_response_ms =
        (rubis.stats().overall().sum() + zipf.stats().overall().sum()) /
        static_cast<double>(total_n) / 1e6;
  }
  return out;
}

}  // namespace rdmamon::bench
