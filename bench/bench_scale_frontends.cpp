// Front-end scale-out: M cooperating front ends over one set of N back
// ends, polling partitioned by the consistent-hash ring and shard views
// exchanged through one-sided gossip READs. The claim under test: the
// monitoring work each BACK END sees is constant in M (each is polled by
// exactly one owner per round — scaling the control plane out does not
// multiply the probe load), the per-front-end share drops ~1/M, and the
// price of everyone-still-sees-everything is a few kilobyte-sized READs
// per gossip period whose staleness stays bounded.
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "args.hpp"
#include "cluster/scaleout.hpp"
#include "common.hpp"
#include "monitor/monitor.hpp"
#include "net/fabric.hpp"
#include "os/node.hpp"
#include "report.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace rdmamon;

struct Cell {
  double polls_per_backend_sec;  ///< successful owner polls per back end
  double gossip_reads_sec;       ///< total peer-view READs issued
  double mean_view_age_us;       ///< mean over FEs of max peer-view age
  double mean_fetch_us;          ///< mean monitoring fetch latency
  int min_shard;                 ///< ring spread across the M owners
  int max_shard;
  std::uint64_t stale_marks;     ///< staleness strikes (0 in healthy runs)
};

/// `verbs_fast` turns on the verbs fast path sized for thousands of back
/// ends: signal-every-8 over a 16-context DCT-style pool, CQ moderation,
/// and a 64-entry bounded NIC context cache (see net::VerbsTuning).
Cell run_cell(int frontends, int backends, sim::Duration run,
              bool verbs_fast = false) {
  sim::Simulation simu;
  net::FabricConfig fc;
  if (verbs_fast) fc.nic_ctx_cache_entries = 64;
  net::Fabric fabric(simu, fc);

  // Front ends attach first (fabric ids 0..M-1), matching the testbed.
  std::vector<std::unique_ptr<os::Node>> fe_nodes;
  for (int m = 0; m < frontends; ++m) {
    fe_nodes.push_back(std::make_unique<os::Node>(
        simu, os::NodeConfig{.name = "frontend" + std::to_string(m)}));
    fabric.attach(*fe_nodes.back());
  }
  std::vector<std::unique_ptr<os::Node>> be_nodes;
  for (int b = 0; b < backends; ++b) {
    be_nodes.push_back(std::make_unique<os::Node>(
        simu, os::NodeConfig{.name = "backend" + std::to_string(b)}));
    fabric.attach(*be_nodes.back());
  }

  monitor::MonitorConfig mcfg;
  mcfg.scheme = monitor::Scheme::RdmaSync;
  mcfg.period = sim::msec(10);
  cluster::ScaleOutConfig scfg;  // 25 ms gossip, 200 ms staleness bound
  if (verbs_fast) {
    scfg.verbs.signal_every = 8;
    scfg.verbs.shared_contexts = 16;
    scfg.verbs.cq_mod_count = 8;
  }
  cluster::ScaleOutPlane plane(fabric, scfg, mcfg);
  for (auto& fe : fe_nodes) plane.add_frontend(*fe, {});
  for (auto& be : be_nodes) plane.add_backend(*be);
  plane.start(sim::msec(10));

  simu.run_for(run);

  Cell cell{};
  std::uint64_t total_polls = 0, total_reads = 0;
  double age_sum = 0.0, fetch_sum = 0.0;
  int fetch_cells = 0;
  cell.min_shard = backends;
  cell.max_shard = 0;
  for (int m = 0; m < frontends; ++m) {
    cluster::FrontendPlane& fp = plane.frontend(m);
    for (std::uint64_t p : fp.poll_counts()) total_polls += p;
    total_reads += fp.gossip_reads_ok() + fp.gossip_reads_failed();
    age_sum += static_cast<double>(fp.max_peer_view_age().ns) / 1e3;
    if (fp.balancer().fetch_latency_ns().count() > 0) {
      fetch_sum += fp.balancer().fetch_latency_ns().mean() / 1e3;
      ++fetch_cells;
    }
    cell.stale_marks += fp.stale_marks();
    const int owned = fp.owned_count();
    cell.min_shard = std::min(cell.min_shard, owned);
    cell.max_shard = std::max(cell.max_shard, owned);
  }
  const double secs = static_cast<double>(run.ns) / 1e9;
  cell.polls_per_backend_sec =
      static_cast<double>(total_polls) / backends / secs;
  cell.gossip_reads_sec = static_cast<double>(total_reads) / secs;
  cell.mean_view_age_us = frontends > 1 ? age_sum / frontends : 0.0;
  cell.mean_fetch_us = fetch_cells > 0 ? fetch_sum / fetch_cells : 0.0;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = rdmamon::bench::parse_args(argc, argv);
  using rdmamon::bench::num;
  const std::vector<int> ms = {1, 2, 4, 8};
  const std::vector<int> ns =
      opt.quick ? std::vector<int>{16} : std::vector<int>{16, 64, 256};
  const sim::Duration run = opt.quick ? sim::seconds(2) : sim::seconds(5);

  rdmamon::bench::banner(
      "scale-frontends",
      "Cooperative polling: M front ends sharing one N-back-end cluster",
      "per-backend probe load stays flat as M grows (ownership partitions "
      "the rounds); gossip READ traffic is the only cost of scale-out");

  rdmamon::bench::JsonReport report("scale_frontends");
  report.stamp(opt.quick, opt.seed);
  report.set("run_seconds", static_cast<double>(run.ns) / 1e9);

  double rate_m1_largest = 0.0, rate_m8_largest = 0.0;
  for (int n : ns) {
    std::cout << "\n--- N=" << n
              << " back ends: polls/backend/s | gossip READs/s | mean max "
                 "peer-view age (us) | shard spread ---\n";
    rdmamon::util::Table table;
    table.set_header({"frontends", "polls/be/s", "gossip rd/s",
                      "view age us", "shards", "stale"});
    table.set_align(0, rdmamon::util::Align::Left);
    for (int m : ms) {
      const auto wall0 = std::chrono::steady_clock::now();
      const Cell c = run_cell(m, n, run);
      const double wall_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - wall0)
                                 .count();
      table.add_row({"M=" + std::to_string(m),
                     num(c.polls_per_backend_sec, 1),
                     num(c.gossip_reads_sec, 1), num(c.mean_view_age_us, 1),
                     std::to_string(c.min_shard) + ".." +
                         std::to_string(c.max_shard),
                     std::to_string(c.stale_marks)});
      auto& r = report.add_result();
      r["frontends"] = m;
      r["backends"] = n;
      r["polls_per_backend_sec"] = c.polls_per_backend_sec;
      r["gossip_reads_sec"] = c.gossip_reads_sec;
      r["mean_view_age_us"] = c.mean_view_age_us;
      r["mean_fetch_us"] = c.mean_fetch_us;
      r["min_shard"] = c.min_shard;
      r["max_shard"] = c.max_shard;
      r["stale_marks"] = static_cast<double>(c.stale_marks);
      r["wall_ms"] = wall_ms;
      if (n == ns.back() && m == 1) rate_m1_largest = c.polls_per_backend_sec;
      if (n == ns.back() && m == 8) rate_m8_largest = c.polls_per_backend_sec;
    }
    rdmamon::bench::show(table);
  }

  // The acceptance headline: scaling front ends 1 -> 8 leaves the probe
  // load each back end serves flat (the rounds are partitioned, never
  // duplicated) — within 10% at the largest N.
  const double ratio =
      rate_m1_largest > 0.0 ? rate_m8_largest / rate_m1_largest : 0.0;
  std::cout << "\nper-backend polls/s at N=" << ns.back()
            << ": M=1 " << num(rate_m1_largest, 1) << " -> M=8 "
            << num(rate_m8_largest, 1) << " (" << num(ratio, 3)
            << "x; acceptance: 0.9..1.1)\n";
  auto& headline = report.root()["headline"];
  headline = rdmamon::util::JsonValue::object();
  headline["n"] = ns.back();
  headline["polls_per_backend_sec_m1"] = rate_m1_largest;
  headline["polls_per_backend_sec_m8"] = rate_m8_largest;
  headline["flatness_ratio"] = ratio;

  // --- N=2048 with the verbs fast path --------------------------------------
  // The sweep above keeps dedicated per-channel NIC contexts; at N in the
  // thousands that footprint is exactly what a real NIC's context cache
  // cannot hold, so this cell turns on the shared-context/selective-
  // signaling path and shows the per-backend probe load still partitions
  // flat as front ends are added.
  const int big_n = 2048;
  const sim::Duration big_run = opt.quick ? sim::seconds(1) : sim::seconds(2);
  std::cout << "\n--- N=" << big_n
            << " back ends, verbs fast path (k=8, 16 shared contexts, "
               "cq_mod=8, 64-entry NIC cache) ---\n";
  rdmamon::util::Table vt;
  vt.set_header({"frontends", "polls/be/s", "view age us", "shards", "stale"});
  vt.set_align(0, rdmamon::util::Align::Left);
  auto& big_results = report.root()["verbs_2048_results"];
  big_results = rdmamon::util::JsonValue::array();
  double big_m1 = 0.0, big_m4 = 0.0;
  for (int m : {1, 4}) {
    const auto wall0 = std::chrono::steady_clock::now();
    const Cell c = run_cell(m, big_n, big_run, /*verbs_fast=*/true);
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - wall0)
                               .count();
    vt.add_row({"M=" + std::to_string(m), num(c.polls_per_backend_sec, 1),
                num(c.mean_view_age_us, 1),
                std::to_string(c.min_shard) + ".." +
                    std::to_string(c.max_shard),
                std::to_string(c.stale_marks)});
    auto& r = big_results.push_back(rdmamon::util::JsonValue::object());
    r["frontends"] = m;
    r["backends"] = big_n;
    r["polls_per_backend_sec"] = c.polls_per_backend_sec;
    r["mean_view_age_us"] = c.mean_view_age_us;
    r["stale_marks"] = static_cast<double>(c.stale_marks);
    r["wall_ms"] = wall_ms;
    if (m == 1) big_m1 = c.polls_per_backend_sec;
    if (m == 4) big_m4 = c.polls_per_backend_sec;
  }
  rdmamon::bench::show(vt);
  const double big_ratio = big_m1 > 0.0 ? big_m4 / big_m1 : 0.0;
  std::cout << "\nper-backend polls/s at N=" << big_n << " (verbs fast "
            << "path): M=1 " << num(big_m1, 1) << " -> M=4 " << num(big_m4, 1)
            << " (" << num(big_ratio, 3) << "x; acceptance: 0.85..1.15)\n";
  auto& bh = report.root()["verbs_2048_headline"];
  bh = rdmamon::util::JsonValue::object();
  bh["n"] = big_n;
  bh["polls_per_backend_sec_m1"] = big_m1;
  bh["polls_per_backend_sec_m4"] = big_m4;
  bh["flatness_ratio"] = big_ratio;

  report.write();
  return 0;
}
