// Figure 6: ability of each scheme to observe pending interrupts (the
// irq_stat kernel structure) on both CPUs of a loaded back end.
// Paper shape: the user-space paths (Socket-Async/Sync, RDMA-Async) report
// few and infrequent pending interrupts — their sampling instant is a
// moment when the OS has already drained interrupt work. RDMA-Sync samples
// at DMA instants uncorrelated with host state and reports far more,
// especially on the CPU that takes the NIC's interrupts (CPU 1).
#include <memory>

#include "args.hpp"
#include "common.hpp"
#include "report.hpp"
#include "monitor/monitor.hpp"
#include "net/fabric.hpp"
#include "os/node.hpp"
#include "sim/simulation.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace rdmamon;
using monitor::Scheme;

struct IrqObservation {
  int samples = 0;
  int nonzero_cpu0 = 0;
  int nonzero_cpu1 = 0;
  long total_cpu0 = 0;
  long total_cpu1 = 0;
};

IrqObservation observe(Scheme scheme, sim::Duration run) {
  sim::Simulation simu;
  net::Fabric fabric(simu, {});
  os::Node frontend(simu, {.name = "frontend"});
  os::NodeConfig bcfg;
  bcfg.name = "backend";
  bcfg.timer_irq = true;  // timer interrupts land on CPU 0
  os::Node backend(simu, bcfg);
  os::Node peer(simu, {.name = "peer"});
  fabric.attach(frontend);
  fabric.attach(backend);
  fabric.attach(peer);

  // Bursty network load: NIC interrupts land on CPU 1 (HCA affinity).
  workload::BackgroundLoadConfig bl;
  bl.threads = 8;
  bl.burst = 32;
  bl.compute_slice = sim::msec(2);
  bl.message_bytes = 2048;
  workload::BackgroundLoad bg(fabric, backend, peer, bl);

  monitor::MonitorConfig mcfg;
  mcfg.scheme = scheme;
  monitor::MonitorChannel chan(fabric, frontend, backend, mcfg);

  IrqObservation obs;
  frontend.spawn("mon", [&](os::SimThread& self) -> os::Program {
    co_await os::SleepFor{sim::msec(200)};
    for (;;) {
      monitor::MonitorSample s;
      co_await chan.frontend().fetch(self, s);
      if (s.ok && s.info.irq_pending.size() >= 2) {
        ++obs.samples;
        if (s.info.irq_pending[0] > 0) ++obs.nonzero_cpu0;
        if (s.info.irq_pending[1] > 0) ++obs.nonzero_cpu1;
        obs.total_cpu0 += s.info.irq_pending[0];
        obs.total_cpu1 += s.info.irq_pending[1];
      }
      co_await os::SleepFor{sim::msec(10)};
    }
  });
  simu.run_for(run);
  return obs;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = rdmamon::bench::parse_args(argc, argv);
  rdmamon::bench::banner(
      "Figure 6", "Pending interrupts reported on both CPUs, per scheme",
      "RDMA-Sync reports many more pending interrupts than the user-space "
      "paths, most of them on CPU 1 (the NIC's interrupt CPU)");

  const sim::Duration run = opts.quick ? sim::seconds(4) : sim::seconds(15);

  rdmamon::bench::JsonReport report("fig6_interrupts");
  report.stamp(opts.quick, opts.seed);

  rdmamon::util::Table table;
  table.set_header({"scheme", "samples", "CPU0 nonzero", "CPU1 nonzero",
                    "CPU0 total", "CPU1 total"});
  table.set_align(0, rdmamon::util::Align::Left);

  std::vector<std::string> labels;
  std::vector<double> cpu0_series, cpu1_series;
  for (monitor::Scheme s : monitor::kTransportSchemes) {
    const IrqObservation o = observe(s, run);
    table.add_row({monitor::to_string(s), std::to_string(o.samples),
                   std::to_string(o.nonzero_cpu0),
                   std::to_string(o.nonzero_cpu1),
                   std::to_string(o.total_cpu0),
                   std::to_string(o.total_cpu1)});
    labels.push_back(monitor::to_string(s));
    cpu0_series.push_back(static_cast<double>(o.total_cpu0));
    cpu1_series.push_back(static_cast<double>(o.total_cpu1));
    auto& r = report.add_result();
    r["scheme"] = monitor::to_string(s);
    r["samples"] = o.samples;
    r["nonzero_cpu0"] = o.nonzero_cpu0;
    r["nonzero_cpu1"] = o.nonzero_cpu1;
    r["total_cpu0"] = static_cast<std::int64_t>(o.total_cpu0);
    r["total_cpu1"] = static_cast<std::int64_t>(o.total_cpu1);
  }
  std::cout << "\nInterrupts observed via irq_stat (bursty NIC load):\n";
  rdmamon::bench::show(table);
  rdmamon::util::AsciiChart chart("total pending interrupts observed",
                                  labels);
  chart.add_series({"CPU0", cpu0_series});
  chart.add_series({"CPU1", cpu1_series});
  rdmamon::bench::show(chart);
  report.write();
  return 0;
}
