// DES kernel wall-clock microbenchmark: the timer-wheel/pooled kernel
// vs the seed kernel (shared_ptr handles + std::function callbacks +
// one binary heap), reimplemented verbatim below so one binary measures
// both sides. Three workloads modelled on what the monitoring plane
// actually does:
//
//   steady_timers    periodic self-rescheduling events (poll loops,
//                    scheduler quanta): pure schedule->fire->recycle
//   schedule_cancel  the timeout pattern: arm a guard, cancel it when
//                    the guarded work completes (headline mix)
//   multi_horizon    deltas spread across every wheel level plus the
//                    far-future overflow heap
//
// Reported per (workload, kernel): ops/sec, ns/op, heap allocations in
// the timed (steady-state) phase, and peak RSS. The timer-wheel kernel
// must execute the recycling workloads with ZERO steady-state heap
// allocations — the binary exits non-zero otherwise, which is what CI's
// perf-smoke job asserts. Results land in BENCH_engine.json.
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <new>
#include <queue>
#include <string>
#include <vector>

#include "common.hpp"
#include "report.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"
#include "util/table.hpp"

// Counting operator new: the zero-steady-state-allocation proof.
namespace {
std::uint64_t g_allocs = 0;
}
void* operator new(std::size_t n) {
  ++g_allocs;
  void* p = std::malloc(n);
  if (!p) throw std::bad_alloc{};
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace rdmamon::bench {
namespace {

// --- seed kernel, reimplemented ---------------------------------------------
// Byte-for-byte the pre-overhaul src/sim/event_queue.*: one
// std::priority_queue of entries carrying a std::function and a
// shared_ptr cancellation state; cancelled entries discarded lazily when
// they surface at the top.
class LegacyHandle {
 public:
  LegacyHandle() = default;
  void cancel() {
    if (state_ && !state_->fired) state_->cancelled = true;
  }

  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit LegacyHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}

 private:
  std::shared_ptr<State> state_;
};

class LegacyQueue {
 public:
  LegacyHandle schedule(sim::TimePoint when, std::function<void()> fn) {
    auto state = std::make_shared<LegacyHandle::State>();
    heap_.push(Entry{when, next_seq_++, std::move(fn), state});
    ++live_;
    return LegacyHandle{std::move(state)};
  }

  bool empty() const {
    drop_dead();
    return heap_.empty();
  }

  sim::TimePoint pop_and_run() {
    drop_dead();
    Entry e = heap_.top();
    heap_.pop();
    --live_;
    e.state->fired = true;
    ++executed_;
    e.fn();
    return e.when;
  }

  std::size_t size() const { return live_; }

 private:
  struct Entry {
    sim::TimePoint when;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<LegacyHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void drop_dead() const {
    while (!heap_.empty() && heap_.top().state->cancelled) {
      heap_.pop();
      --live_;
    }
  }

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  mutable std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

// --- kernel adapters ---------------------------------------------------------
struct WheelKernel {
  static constexpr const char* kName = "timer-wheel";
  using Handle = sim::EventHandle;
  sim::EventQueue q;
  template <class F>
  Handle schedule(std::int64_t when, F&& fn) {
    return q.schedule(sim::TimePoint{when}, std::forward<F>(fn));
  }
  std::int64_t pop() { return q.pop_and_run().ns; }
  bool empty() const { return q.empty(); }
};

struct LegacyKernel {
  static constexpr const char* kName = "seed-heap";
  using Handle = LegacyHandle;
  LegacyQueue q;
  template <class F>
  Handle schedule(std::int64_t when, F&& fn) {
    return q.schedule(sim::TimePoint{when}, std::forward<F>(fn));
  }
  std::int64_t pop() { return q.pop_and_run().ns; }
  bool empty() const { return q.empty(); }
};

// --- workloads ---------------------------------------------------------------
struct RunResult {
  std::uint64_t ops = 0;     ///< schedules + cancels + pops
  double secs = 0.0;         ///< timed (post-warm-up) phase only
  std::uint64_t allocs = 0;  ///< operator new calls in the timed phase
};

using Clock = std::chrono::steady_clock;

double elapsed(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Periodic self-rescheduling timers: 256 streams with co-prime-ish
/// periods so wheel slots stay spread out. One op = one fired event
/// (which schedules its successor).
template <class K>
RunResult run_steady_timers(std::uint64_t events) {
  K k;
  struct Timer {
    K* k;
    std::int64_t period;
    std::int64_t at;
    void operator()() {
      at += period;
      k->schedule(at, Timer{*this});
    }
  };
  for (int i = 0; i < 256; ++i) {
    k.schedule(1'000 + i * 37, Timer{&k, 900 + i * 13, 1'000 + i * 37});
  }
  for (std::uint64_t i = 0; i < events / 10; ++i) k.pop();  // warm-up
  const std::uint64_t a0 = g_allocs;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < events; ++i) k.pop();
  return RunResult{events, elapsed(t0), g_allocs - a0};
}

/// The monitoring plane's timeout pattern: each unit of work arms a
/// completion timeout and a retry guard, both cancelled when the work
/// completes — the fetch path does exactly this per RDMA read. One
/// iteration = 3 schedules + 1 pop + 2 cancels = 6 ops.
template <class K>
RunResult run_schedule_cancel(std::uint64_t iters) {
  K k;
  std::uint64_t done = 0;
  std::int64_t now = 0;
  auto iteration = [&] {
    auto work = k.schedule(now + 793, [&done] { ++done; });
    auto timeout = k.schedule(now + 150'000, [] {});
    auto retry = k.schedule(now + 1'500'000, [] {});
    now = k.pop();
    timeout.cancel();
    retry.cancel();
    (void)work;
  };
  for (std::uint64_t i = 0; i < iters / 10; ++i) iteration();  // warm-up
  const std::uint64_t a0 = g_allocs;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) iteration();
  return RunResult{iters * 6, elapsed(t0), g_allocs - a0};
}

/// Deltas drawn across every residence class: sub-tick, each wheel
/// level, and the overflow heap. Same seed for both kernels, so both
/// execute the identical schedule. One iteration = 1 schedule + 1 pop.
template <class K>
RunResult run_multi_horizon(std::uint64_t iters) {
  K k;
  sim::Rng rng(7);
  std::int64_t now = 0;
  std::uint64_t done = 0;
  auto iteration = [&] {
    std::int64_t delta;
    switch (rng.uniform_int(0, 4)) {
      case 0: delta = rng.uniform_int(1, 1'000); break;            // sub-tick
      case 1: delta = rng.uniform_int(1, 260'000); break;          // L0
      case 2: delta = rng.uniform_int(1, 60'000'000); break;       // L1
      case 3: delta = rng.uniform_int(1, 15'000'000'000); break;   // L2
      default: delta = rng.uniform_int(1, 60'000'000'000); break;  // heap
    }
    k.schedule(now + delta, [&done] { ++done; });
    now = k.pop();
  };
  // Build a standing population first so pops interleave all classes.
  for (int i = 0; i < 4'096; ++i) {
    k.schedule(now + 1 + (i * 7'919) % 40'000'000'000ll, [&done] { ++done; });
  }
  for (std::uint64_t i = 0; i < iters / 10; ++i) iteration();  // warm-up
  const std::uint64_t a0 = g_allocs;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) iteration();
  return RunResult{iters * 2, elapsed(t0), g_allocs - a0};
}

/// The scatter plane's event shape at N=4096 back ends: a standing
/// population of in-flight fetch attempts, each carrying one completion
/// event (wire latency away) and one deadline guard at the monitoring
/// fetch_timeout (200 ms), cancelled when the completion wins the race —
/// which, fault-free, it always does. The guards live on the wheel's
/// upper levels, so this exercises the O(1) eager-unlink cancel path at
/// scatter-round scale. One iteration = 1 pop + 1 cancel + 2 schedules
/// = 4 ops.
template <class K>
RunResult run_fabric_round(std::uint64_t iters) {
  K k;
  constexpr int kSlots = 4096;
  std::vector<typename K::Handle> guard(kSlots);
  std::int64_t now = 0;
  int fired_slot = -1;
  auto arm = [&](int slot) {
    // Completion ~4-8 us out, spread per slot like per-target DMA skew.
    k.schedule(now + 4'000 + (slot % 257) * 16,
               [&fired_slot, slot] { fired_slot = slot; });
    guard[slot] = k.schedule(now + 200'000'000, [] {});
  };
  for (int s = 0; s < kSlots; ++s) arm(s);
  auto iteration = [&] {
    now = k.pop();
    const int slot = fired_slot;
    guard[slot].cancel();
    arm(slot);
  };
  for (std::uint64_t i = 0; i < iters / 10; ++i) iteration();  // warm-up
  const std::uint64_t a0 = g_allocs;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) iteration();
  return RunResult{iters * 4, elapsed(t0), g_allocs - a0};
}

long peak_rss_kb() {
  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;
}

struct Row {
  std::string workload;
  std::string kernel;
  RunResult r;
  bool alloc_checked = false;  ///< recycling mix: allocs must be zero
};

}  // namespace
}  // namespace rdmamon::bench

int main(int argc, char** argv) {
  using namespace rdmamon;
  using namespace rdmamon::bench;

  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::uint64_t kTimerEvents = quick ? 500'000 : 5'000'000;
  const std::uint64_t kCancelIters = quick ? 400'000 : 4'000'000;
  const std::uint64_t kHorizonIters = quick ? 400'000 : 4'000'000;
  const std::uint64_t kFabricIters = quick ? 400'000 : 4'000'000;

  banner("ENGINE", "DES kernel: pooled timer-wheel vs seed binary heap",
         "infrastructure bench - wall-clock only, no simulated figures");

  std::vector<Row> rows;
  // Wheel kernel first so its RSS reading is not inflated by the legacy
  // kernel's allocations (ru_maxrss is a process-wide high-water mark).
  rows.push_back({"steady_timers", WheelKernel::kName,
                  run_steady_timers<WheelKernel>(kTimerEvents), true});
  rows.push_back({"schedule_cancel", WheelKernel::kName,
                  run_schedule_cancel<WheelKernel>(kCancelIters), true});
  rows.push_back({"multi_horizon", WheelKernel::kName,
                  run_multi_horizon<WheelKernel>(kHorizonIters), false});
  rows.push_back({"fabric_round", WheelKernel::kName,
                  run_fabric_round<WheelKernel>(kFabricIters), true});
  const long wheel_rss_kb = peak_rss_kb();
  rows.push_back({"steady_timers", LegacyKernel::kName,
                  run_steady_timers<LegacyKernel>(kTimerEvents), false});
  rows.push_back({"schedule_cancel", LegacyKernel::kName,
                  run_schedule_cancel<LegacyKernel>(kCancelIters), false});
  rows.push_back({"multi_horizon", LegacyKernel::kName,
                  run_multi_horizon<LegacyKernel>(kHorizonIters), false});
  rows.push_back({"fabric_round", LegacyKernel::kName,
                  run_fabric_round<LegacyKernel>(kFabricIters), false});
  const long total_rss_kb = peak_rss_kb();

  util::Table table;
  table.set_header({"workload", "kernel", "Mops/s", "ns/op", "allocs",
                    "allocs/op"});
  for (const Row& row : rows) {
    const double mops = row.r.ops / row.r.secs / 1e6;
    const double ns_per_op = row.r.secs * 1e9 / row.r.ops;
    table.add_row({row.workload, row.kernel, num(mops, 2), num(ns_per_op, 1),
                   std::to_string(row.r.allocs),
                   num(static_cast<double>(row.r.allocs) / row.r.ops, 3)});
  }
  show(table);

  auto ops_per_sec = [&rows](const std::string& workload,
                             const std::string& kernel) {
    for (const Row& row : rows) {
      if (row.workload == workload && row.kernel == kernel) {
        return row.r.ops / row.r.secs;
      }
    }
    return 0.0;
  };

  JsonReport report("engine");
  report.stamp(quick, /*seed=*/0);  // wall-clock bench: no simulated RNG
  for (const Row& row : rows) {
    auto& j = report.add_result();
    j["workload"] = row.workload;
    j["kernel"] = row.kernel;
    j["ops"] = static_cast<double>(row.r.ops);
    j["secs"] = row.r.secs;
    j["events_per_sec"] = row.r.ops / row.r.secs;
    j["ns_per_op"] = row.r.secs * 1e9 / row.r.ops;
    j["steady_allocs"] = static_cast<double>(row.r.allocs);
  }
  bool alloc_ok = true;
  for (const Row& row : rows) {
    if (row.alloc_checked && row.r.allocs != 0) alloc_ok = false;
  }
  double min_speedup = 1e300;
  std::cout << "\nspeedup vs seed kernel:\n";
  for (const char* w :
       {"steady_timers", "schedule_cancel", "multi_horizon", "fabric_round"}) {
    const double s = ops_per_sec(w, WheelKernel::kName) /
                     ops_per_sec(w, LegacyKernel::kName);
    if (s < min_speedup) min_speedup = s;
    report.set(std::string("speedup_") + w, util::JsonValue(s));
    std::cout << "  " << w << ": " << num(s, 2) << "x\n";
  }
  report.set("zero_steady_state_alloc", util::JsonValue(alloc_ok));
  report.set("peak_rss_wheel_kb", util::JsonValue(double(wheel_rss_kb)));
  report.set("peak_rss_total_kb", util::JsonValue(double(total_rss_kb)));
  report.write();

  std::cout << "peak RSS: " << wheel_rss_kb << " KB after wheel-kernel runs, "
            << total_rss_kb << " KB total\n";
  if (!alloc_ok) {
    std::cerr << "FAIL: timer-wheel kernel allocated during a steady-state "
                 "recycling workload\n";
    return 1;
  }
  std::cout << "zero-steady-state-allocation: OK\n";
  return 0;
}
