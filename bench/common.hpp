// Shared helpers for the reproduction bench binaries.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "util/chart.hpp"
#include "util/table.hpp"

namespace rdmamon::bench {

/// Prints the standard experiment banner.
inline void banner(const std::string& id, const std::string& title,
                   const std::string& paper_claim) {
  std::cout << "==========================================================\n"
            << id << ": " << title << "\n"
            << "Paper: " << paper_claim << "\n"
            << "==========================================================\n";
}

/// Prints a table followed by a chart.
inline void show(const util::Table& table) { table.print(std::cout); }

inline void show(const util::AsciiChart& chart) {
  std::cout << chart.render() << '\n';
}

/// Formats a double with the given decimals (fixed).
inline std::string num(double v, int decimals = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

/// Formats a percentage improvement relative to a baseline.
inline std::string pct(double value, double baseline) {
  if (baseline <= 0) return "n/a";
  return num((value / baseline - 1.0) * 100.0, 1) + "%";
}

}  // namespace rdmamon::bench
