// Verbs fast-path microbenchmark, shaped like rdmaperf's m-to-1 sweeps:
//
//  leg 1 (cq_mod): M client nodes hammer one server MR with READs while
//    sweeping the selective-signaling factor k (signal every k-th WR) and
//    the per-context inflight window. Selective signaling retires N posts
//    with ~N/k CQEs, and because unsignaled successes surface in bursts
//    when their chain closer lands, the consumer wakes ~1/k as often —
//    per-slot CPU overhead (doorbells + wakeup context switches) drops
//    monotonically as k grows.
//
//  leg 2 (qpc): one front end posts scatter rounds over N remote MRs
//    through either N dedicated QpContexts or a small DCT-style shared
//    pool, against a NIC whose QP-context cache is bounded. Dedicated
//    contexts >> cache entries thrash: every post misses, and misses
//    serialise on the single context-fetch engine, so the round time
//    collapses. The shared pool fits the cache and stays indistinguishable
//    from an unbounded one — the RDMAvisor argument for multiplexed
//    connections at thousands of back ends.
//
// Results land in BENCH_verbs.json; ci.sh bench asserts the monotone
// per-slot overhead drop (leg 1) and the thrash-vs-flat split (leg 2).
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "args.hpp"
#include "common.hpp"
#include "net/fabric.hpp"
#include "net/nic.hpp"
#include "net/verbs.hpp"
#include "os/node.hpp"
#include "report.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace rdmamon;

/// Wakeup cost charged by the scheduler when a parked consumer resumes.
const sim::Duration kSwitchCost = os::NodeConfig{}.context_switch_cost;

// --- leg 1: selective signaling / CQ moderation ------------------------------

struct CqModCell {
  int k = 0;
  std::size_t depth = 0;
  std::uint64_t ops = 0;        ///< READs per client
  std::uint64_t wakeups = 0;    ///< consumer parks resumed (all clients)
  std::uint64_t doorbells = 0;  ///< one per post in this leg
  std::uint64_t signaled = 0;   ///< CQEs carrying a signal
  std::uint64_t unsignaled_retired = 0;
  std::uint64_t deferred = 0;   ///< posts that waited for a window slot
  double elapsed_us = 0.0;      ///< first post -> last retirement
  /// The headline metric: issue+reap CPU overhead per slot.
  double per_slot_overhead_ns() const {
    const double total = static_cast<double>(doorbells) *
                             static_cast<double>(net::kDoorbellCost.ns) +
                         static_cast<double>(wakeups) *
                             static_cast<double>(kSwitchCost.ns);
    return total / static_cast<double>(ops * 4);  // 4 clients
  }
};

CqModCell run_cq_mod(int k, std::size_t depth, std::uint64_t ops) {
  constexpr int kClients = 4;
  constexpr std::size_t kLen = 256;

  sim::Simulation simu;
  net::Fabric fabric(simu, {});
  os::Node server(simu, {.name = "server"});
  fabric.attach(server);
  const net::MrKey mr =
      fabric.nic(server.id).register_mr(kLen, [] { return std::any(42); });

  CqModCell cell;
  cell.k = k;
  cell.depth = depth;
  cell.ops = ops;

  struct Client {
    std::unique_ptr<os::Node> node;
    std::unique_ptr<net::CompletionQueue> cq;
    std::shared_ptr<net::QpContext> ctx;
    std::unique_ptr<net::QueuePair> qp;
    std::uint64_t wakeups = 0;
    sim::TimePoint done_at{};
  };
  std::vector<Client> clients(kClients);
  for (int c = 0; c < kClients; ++c) {
    Client& cl = clients[c];
    cl.node = std::make_unique<os::Node>(
        simu, os::NodeConfig{.name = "client" + std::to_string(c)});
    fabric.attach(*cl.node);
    cl.cq = std::make_unique<net::CompletionQueue>();
    cl.ctx = std::make_shared<net::QpContext>(fabric.nic(cl.node->id), k,
                                              depth);
    cl.qp = std::make_unique<net::QueuePair>(fabric.nic(cl.node->id),
                                             server.id, *cl.cq, cl.ctx);
    cl.node->spawn("driver", [&cl, mr, ops](os::SimThread& self)
                                -> os::Program {
      // rdmaperf-style sender: post every READ (the context's window
      // defers past-depth posts internally), then reap until all retire.
      for (std::uint64_t op = 0; op < ops; ++op) {
        co_await os::Compute{net::kDoorbellCost};
        cl.qp->post_read(mr, kLen, cl.cq->alloc_wr_id(),
                         /*force_signal=*/false);
      }
      std::uint64_t retired = 0;
      while (retired < ops) {
        while (!cl.cq->empty()) {
          cl.cq->pop();
          ++retired;
        }
        if (retired < ops) {
          co_await os::WaitOn{&cl.cq->wait_queue()};
          ++cl.wakeups;
        }
      }
      cl.done_at = self.node().simu().now();
    });
  }
  simu.run_for(sim::seconds(30));

  sim::TimePoint last{};
  for (Client& cl : clients) {
    cell.wakeups += cl.wakeups;
    cell.doorbells += ops;
    cell.signaled += cl.cq->cqes_signaled();
    cell.unsignaled_retired += cl.cq->unsignaled_retired();
    cell.deferred += cl.ctx->deferred_total();
    if (cl.done_at.ns > last.ns) last = cl.done_at;
  }
  cell.elapsed_us = static_cast<double>(last.ns) / 1e3;
  return cell;
}

// --- leg 2: bounded NIC context cache ----------------------------------------

struct QpcCell {
  std::string contexts;  ///< "dedicated" | "shared"
  int pool = 0;          ///< shared contexts (0 = dedicated, one per QP)
  std::size_t cache = 0; ///< nic_ctx_cache_entries (0 = unbounded)
  double round_mean_us = 0.0;
  std::uint64_t qpc_hits = 0;
  std::uint64_t qpc_misses = 0;
  std::uint64_t qpc_evictions = 0;
};

QpcCell run_qpc(int n, int pool, std::size_t cache_entries, int rounds) {
  sim::Simulation simu;
  net::FabricConfig fc;
  fc.nic_ctx_cache_entries = cache_entries;
  net::Fabric fabric(simu, fc);
  os::Node frontend(simu, {.name = "fe"});
  fabric.attach(frontend);

  std::vector<std::unique_ptr<os::Node>> targets;
  std::vector<net::MrKey> mrs;
  for (int i = 0; i < n; ++i) {
    targets.push_back(std::make_unique<os::Node>(
        simu, os::NodeConfig{.name = "be" + std::to_string(i)}));
    fabric.attach(*targets.back());
    mrs.push_back(fabric.nic(targets.back()->id)
                      .register_mr(64, [] { return std::any(1); }));
  }

  net::VerbsTuning vt;
  vt.shared_contexts = pool;
  const std::vector<std::shared_ptr<net::QpContext>> ctx_pool =
      net::make_context_pool(fabric.nic(frontend.id), vt);
  net::CompletionQueue cq;
  std::vector<std::unique_ptr<net::QueuePair>> qps;
  for (int i = 0; i < n; ++i) {
    std::shared_ptr<net::QpContext> ctx =
        ctx_pool.empty()
            ? nullptr
            : ctx_pool[static_cast<std::size_t>(i) % ctx_pool.size()];
    qps.push_back(std::make_unique<net::QueuePair>(
        fabric.nic(frontend.id), targets[static_cast<std::size_t>(i)]->id, cq,
        std::move(ctx)));
  }

  sim::OnlineStats round_us;
  frontend.spawn("poller", [&](os::SimThread& self) -> os::Program {
    std::vector<net::ReadBatchEntry> batch;
    for (int r = 0; r < rounds; ++r) {
      batch.clear();
      for (int i = 0; i < n; ++i) {
        batch.push_back({qps[static_cast<std::size_t>(i)].get(),
                         mrs[static_cast<std::size_t>(i)], 64,
                         cq.alloc_wr_id()});
      }
      const sim::TimePoint t0 = simu.now();
      co_await net::post_read_batch(self, batch);
      std::size_t retired = 0;
      while (retired < static_cast<std::size_t>(n)) {
        while (!cq.empty()) {
          cq.pop();
          ++retired;
        }
        if (retired < static_cast<std::size_t>(n)) {
          co_await os::WaitOn{&cq.wait_queue()};
        }
      }
      round_us.add(static_cast<double>((simu.now() - t0).ns) / 1e3);
      co_await os::SleepFor{sim::msec(1)};
    }
  });
  simu.run_for(sim::seconds(30));

  QpcCell cell;
  cell.contexts = pool > 0 ? "shared" : "dedicated";
  cell.pool = pool;
  cell.cache = cache_entries;
  cell.round_mean_us = round_us.mean();
  const net::Nic& nic = fabric.nic(frontend.id);
  cell.qpc_hits = nic.qpc_hits();
  cell.qpc_misses = nic.qpc_misses();
  cell.qpc_evictions = nic.qpc_evictions();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = rdmamon::bench::parse_args(argc, argv);
  using rdmamon::bench::num;

  rdmamon::bench::banner(
      "verbs", "Selective signaling, CQ moderation, bounded QP-context cache",
      "rdmaperf's cq_mod: k-fold fewer CQEs and wakeups per posted WR; "
      "RDMAvisor: shared contexts keep a bounded NIC cache from thrashing");

  rdmamon::bench::JsonReport report("verbs");
  report.stamp(opt.quick, opt.seed);

  // --- leg 1: k x depth sweep ----------------------------------------------
  const std::vector<int> ks = {1, 2, 4, 8, 16};
  const std::vector<std::size_t> depths =
      opt.quick ? std::vector<std::size_t>{16} : std::vector<std::size_t>{4, 16, 64};
  const std::uint64_t ops = opt.quick ? 480 : 960;  // divisible by every k
  report.set("ops_per_client", static_cast<double>(ops));

  std::cout << "\n--- m-to-1 (4 clients -> 1 server): per-slot overhead (ns) "
               "= (doorbells + wakeup switches) / READs ---\n";
  rdmamon::util::Table table;
  std::vector<std::string> header = {"depth"};
  for (int k : ks) header.push_back("k=" + std::to_string(k));
  table.set_header(header);
  table.set_align(0, rdmamon::util::Align::Left);
  // overhead[depth index][k index] for the headline.
  std::vector<std::vector<double>> overhead(
      depths.size(), std::vector<double>(ks.size(), 0.0));
  for (std::size_t di = 0; di < depths.size(); ++di) {
    std::vector<std::string> row = {"tx=" + std::to_string(depths[di])};
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
      const auto wall0 = std::chrono::steady_clock::now();
      const CqModCell c = run_cq_mod(ks[ki], depths[di], ops);
      const double wall_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - wall0)
                                 .count();
      overhead[di][ki] = c.per_slot_overhead_ns();
      row.push_back(num(c.per_slot_overhead_ns(), 0));
      auto& r = report.add_result();
      r["leg"] = "cq_mod";
      r["k"] = c.k;
      r["depth"] = static_cast<int>(c.depth);
      r["wakeups"] = static_cast<double>(c.wakeups);
      r["doorbells"] = static_cast<double>(c.doorbells);
      r["cqes_signaled"] = static_cast<double>(c.signaled);
      r["unsignaled_retired"] = static_cast<double>(c.unsignaled_retired);
      r["deferred_posts"] = static_cast<double>(c.deferred);
      r["per_slot_overhead_ns"] = c.per_slot_overhead_ns();
      r["elapsed_us"] = c.elapsed_us;
      r["wall_ms"] = wall_ms;
    }
    table.add_row(row);
  }
  rdmamon::bench::show(table);

  // Headline: at the middle queue depth, overhead must drop monotonically
  // (within a 2% slack for wakeup-alignment noise) as k grows, and k=16
  // must beat k=1 outright.
  const std::size_t mid = depths.size() / 2;
  bool monotone = true;
  for (std::size_t ki = 1; ki < ks.size(); ++ki) {
    if (overhead[mid][ki] > overhead[mid][ki - 1] * 1.02) monotone = false;
  }
  const double drop = overhead[mid][0] > 0.0
                          ? overhead[mid][ks.size() - 1] / overhead[mid][0]
                          : 1.0;
  std::cout << "\nper-slot overhead at tx=" << depths[mid] << ": k=1 "
            << num(overhead[mid][0], 0) << "ns -> k=16 "
            << num(overhead[mid][ks.size() - 1], 0) << "ns ("
            << num(drop, 3) << "x; acceptance: monotone drop, k16 < k1)\n";
  auto& h = report.root()["headline"];
  h = rdmamon::util::JsonValue::object();
  h["depth"] = static_cast<int>(depths[mid]);
  h["per_slot_overhead_k1_ns"] = overhead[mid][0];
  h["per_slot_overhead_k16_ns"] = overhead[mid][ks.size() - 1];
  h["overhead_monotone"] = monotone;
  h["overhead_drop_factor"] = drop;

  // --- leg 2: context-cache thrash vs shared pool ---------------------------
  const int n = opt.quick ? 128 : 256;
  const int pool = 16;
  const std::size_t cache = 32;
  const int rounds = opt.quick ? 10 : 20;
  report.set("qpc_backends", n);

  std::cout << "\n--- 1-to-" << n << " scatter rounds: NIC QP-context cache "
            << "(pool=" << pool << ", cache=" << cache << " entries) ---\n";
  rdmamon::util::Table qt;
  qt.set_header({"contexts", "cache", "round us", "hits", "misses", "evict"});
  qt.set_align(0, rdmamon::util::Align::Left);
  std::vector<QpcCell> qcells;
  // (pool, cache): dedicated/unbounded is the historical baseline;
  // dedicated/bounded thrashes; shared/bounded must match the baseline.
  for (const auto& [p, cch] : std::vector<std::pair<int, std::size_t>>{
           {0, 0}, {0, cache}, {pool, cache}}) {
    const QpcCell c = run_qpc(n, p, cch, rounds);
    qcells.push_back(c);
    qt.add_row({c.contexts + (c.pool > 0 ? "(" + std::to_string(c.pool) + ")"
                                         : ""),
                c.cache == 0 ? "unbounded" : std::to_string(c.cache),
                num(c.round_mean_us, 1), std::to_string(c.qpc_hits),
                std::to_string(c.qpc_misses),
                std::to_string(c.qpc_evictions)});
    auto& r = report.add_result();
    r["leg"] = "qpc";
    r["contexts"] = c.contexts;
    r["pool"] = c.pool;
    r["cache_entries"] = static_cast<int>(c.cache);
    r["round_mean_us"] = c.round_mean_us;
    r["qpc_hits"] = static_cast<double>(c.qpc_hits);
    r["qpc_misses"] = static_cast<double>(c.qpc_misses);
    r["qpc_evictions"] = static_cast<double>(c.qpc_evictions);
  }
  rdmamon::bench::show(qt);

  const double base = qcells[0].round_mean_us;
  const double thrash = qcells[1].round_mean_us;
  const double shared = qcells[2].round_mean_us;
  const double thrash_ratio = base > 0.0 ? thrash / base : 0.0;
  const double shared_ratio = base > 0.0 ? shared / base : 0.0;
  std::cout << "\nbounded cache, dedicated contexts: " << num(thrash_ratio, 2)
            << "x the unbounded round (thrash); shared pool: "
            << num(shared_ratio, 3)
            << "x (acceptance: thrash > 1.5x, shared <= 1.15x)\n";
  auto& qh = report.root()["qpc_headline"];
  qh = rdmamon::util::JsonValue::object();
  qh["n"] = n;
  qh["round_unbounded_us"] = base;
  qh["round_thrash_us"] = thrash;
  qh["round_shared_us"] = shared;
  qh["thrash_ratio"] = thrash_ratio;
  qh["shared_ratio"] = shared_ratio;

  report.write();
  return 0;
}
