// Figure 8: RUBiS running with Ganglia, while gmetric performs
// fine-grained monitoring of every back end through one of the four
// schemes at thresholds from 1 ms to 4096 ms. Reported: mean and maximum
// response time of the two queries the paper shows (SearchItemsInRegion
// and Browse).
// Paper shape: with socket-based gmetric at 1-4 ms thresholds the
// responses inflate (the paper's testbed saw ~250 ms maxima); with
// RDMA-based gmetric they are flat at every threshold, because one-sided
// monitoring never perturbs the servers. Our substrate reproduces the
// inflation direction in the means (the paper's extreme maxima depended
// on 2.4-kernel locking pathologies; see EXPERIMENTS.md).
#include <memory>

#include "args.hpp"
#include "common.hpp"
#include "report.hpp"
#include "ganglia/ganglia.hpp"
#include "web/cluster.hpp"

namespace {

using namespace rdmamon;
using monitor::Scheme;

struct QueryTimes {
  double search_mean_ms = 0;
  double search_max_ms = 0;
  double browse_mean_ms = 0;
  double browse_max_ms = 0;
};

QueryTimes run_one(Scheme scheme, sim::Duration threshold, sim::Duration run,
                   sim::Duration warmup, std::uint64_t seed) {
  sim::Simulation simu;
  web::ClusterConfig cfg;
  cfg.backends = 8;
  // The cluster's own balancer uses the best scheme (the paper fixes
  // e-RDMA-Sync for serving and varies only gmetric's scheme).
  cfg.scheme = Scheme::ERdmaSync;
  cfg.seed = seed;
  web::ClusterTestbed bed(simu, cfg);

  web::ClientGroupConfig ccfg;
  ccfg.threads_per_node = 8;
  ccfg.think = sim::msec(15);
  web::ClientGroup& g =
      bed.add_clients(8, web::make_rubis_generator(), ccfg);

  // Ganglia daemons on the front end and every back end.
  std::vector<os::Node*> gnodes = bed.backend_ptrs();
  gnodes.insert(gnodes.begin(), &bed.frontend());
  ganglia::GangliaConfig gcfg;
  gcfg.collect_period = sim::seconds(5);
  ganglia::GangliaCluster gang(bed.fabric(), gnodes, gcfg);

  // gmetric agents on the front end: fine-grained monitoring of each back
  // end through the scheme under test.
  monitor::MonitorConfig mcfg;
  mcfg.scheme = scheme;
  mcfg.period = threshold;  // async back-end updates at the same threshold
  std::vector<std::unique_ptr<ganglia::GmetricAgent>> agents;
  for (int b = 0; b < bed.backend_count(); ++b) {
    agents.push_back(std::make_unique<ganglia::GmetricAgent>(
        bed.fabric(), gang.daemon(0), bed.frontend(), bed.backend(b), mcfg,
        threshold));
  }

  simu.after(warmup, [&g] { g.stats().reset(); });
  simu.run_for(warmup + run);

  QueryTimes out;
  const auto& search = g.stats().by_class(
      static_cast<int>(workload::RubisQuery::SearchItemsInRegion));
  const auto& browse =
      g.stats().by_class(static_cast<int>(workload::RubisQuery::Browse));
  out.search_mean_ms = search.mean() / 1e6;
  out.search_max_ms = search.max() / 1e6;
  out.browse_mean_ms = browse.mean() / 1e6;
  out.browse_max_ms = browse.max() / 1e6;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = rdmamon::bench::parse_args(argc, argv);
  using rdmamon::bench::num;
  rdmamon::bench::banner(
      "Figure 8", "RUBiS max response with Ganglia + gmetric fine-grained "
                  "monitoring",
      "socket-based gmetric at 1-4 ms thresholds inflates query response "
      "times; RDMA-based gmetric leaves them untouched");

  const std::vector<int> thresholds_ms =
      opts.quick ? std::vector<int>{1, 64}
                 : std::vector<int>{1, 4, 16, 64, 256, 1024, 4096};
  const sim::Duration run = opts.quick ? sim::seconds(5) : sim::seconds(15);
  const sim::Duration warmup =
      opts.quick ? sim::seconds(2) : sim::seconds(3);

  std::vector<std::string> labels;
  for (int t : thresholds_ms) labels.push_back(std::to_string(t));

  rdmamon::bench::JsonReport report("fig8_ganglia");
  report.stamp(opts.quick, opts.seed);

  rdmamon::util::Table ta, tb, ma, mb;
  std::vector<std::string> header = {"scheme \\ threshold (ms)"};
  for (int t : thresholds_ms) header.push_back(std::to_string(t));
  ta.set_header(header);
  ta.set_align(0, rdmamon::util::Align::Left);
  tb = ta;
  ma = ta;
  mb = ta;
  rdmamon::util::AsciiChart ca("(a) SearchItemsReg mean response (ms)",
                               labels);
  rdmamon::util::AsciiChart cb("(b) Browse mean response (ms)", labels);

  for (monitor::Scheme s : monitor::kTransportSchemes) {
    std::vector<std::string> mean_a = {monitor::to_string(s)};
    std::vector<std::string> mean_b = {monitor::to_string(s)};
    std::vector<std::string> max_a = {monitor::to_string(s)};
    std::vector<std::string> max_b = {monitor::to_string(s)};
    std::vector<double> ya, yb;
    for (int t : thresholds_ms) {
      const QueryTimes m = run_one(s, sim::msec(t), run, warmup, opts.seed);
      mean_a.push_back(num(m.search_mean_ms, 2));
      mean_b.push_back(num(m.browse_mean_ms, 2));
      max_a.push_back(num(m.search_max_ms, 1));
      max_b.push_back(num(m.browse_max_ms, 1));
      ya.push_back(m.search_mean_ms);
      yb.push_back(m.browse_mean_ms);
      auto& r = report.add_result();
      r["scheme"] = monitor::to_string(s);
      r["threshold_ms"] = t;
      r["search_mean_ms"] = m.search_mean_ms;
      r["search_max_ms"] = m.search_max_ms;
      r["browse_mean_ms"] = m.browse_mean_ms;
      r["browse_max_ms"] = m.browse_max_ms;
    }
    ma.add_row(mean_a);
    mb.add_row(mean_b);
    ta.add_row(max_a);
    tb.add_row(max_b);
    ca.add_series({monitor::to_string(s), ya});
    cb.add_series({monitor::to_string(s), yb});
  }
  std::cout << "\n(a) SearchItemsInRegion mean response time (ms):\n";
  rdmamon::bench::show(ma);
  rdmamon::bench::show(ca);
  std::cout << "(a) SearchItemsInRegion maximum response time (ms):\n";
  rdmamon::bench::show(ta);
  std::cout << "\n(b) Browse mean response time (ms):\n";
  rdmamon::bench::show(mb);
  rdmamon::bench::show(cb);
  std::cout << "(b) Browse maximum response time (ms):\n";
  rdmamon::bench::show(tb);
  report.write();
  return 0;
}
