file(REMOVE_RECURSE
  "librdmamon_net.a"
)
