file(REMOVE_RECURSE
  "CMakeFiles/rdmamon_net.dir/fabric.cpp.o"
  "CMakeFiles/rdmamon_net.dir/fabric.cpp.o.d"
  "CMakeFiles/rdmamon_net.dir/nic.cpp.o"
  "CMakeFiles/rdmamon_net.dir/nic.cpp.o.d"
  "CMakeFiles/rdmamon_net.dir/socket.cpp.o"
  "CMakeFiles/rdmamon_net.dir/socket.cpp.o.d"
  "CMakeFiles/rdmamon_net.dir/verbs.cpp.o"
  "CMakeFiles/rdmamon_net.dir/verbs.cpp.o.d"
  "librdmamon_net.a"
  "librdmamon_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmamon_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
