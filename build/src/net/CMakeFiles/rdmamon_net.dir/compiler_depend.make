# Empty compiler generated dependencies file for rdmamon_net.
# This may be replaced when dependencies are built.
