# Empty compiler generated dependencies file for rdmamon_workload.
# This may be replaced when dependencies are built.
