file(REMOVE_RECURSE
  "librdmamon_workload.a"
)
