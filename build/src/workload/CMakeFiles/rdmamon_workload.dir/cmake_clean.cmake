file(REMOVE_RECURSE
  "CMakeFiles/rdmamon_workload.dir/rubis.cpp.o"
  "CMakeFiles/rdmamon_workload.dir/rubis.cpp.o.d"
  "CMakeFiles/rdmamon_workload.dir/synthetic.cpp.o"
  "CMakeFiles/rdmamon_workload.dir/synthetic.cpp.o.d"
  "CMakeFiles/rdmamon_workload.dir/zipf.cpp.o"
  "CMakeFiles/rdmamon_workload.dir/zipf.cpp.o.d"
  "librdmamon_workload.a"
  "librdmamon_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmamon_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
