# Empty compiler generated dependencies file for rdmamon_os.
# This may be replaced when dependencies are built.
