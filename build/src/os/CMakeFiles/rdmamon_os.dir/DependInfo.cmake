
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/interrupts.cpp" "src/os/CMakeFiles/rdmamon_os.dir/interrupts.cpp.o" "gcc" "src/os/CMakeFiles/rdmamon_os.dir/interrupts.cpp.o.d"
  "/root/repo/src/os/kernel_stats.cpp" "src/os/CMakeFiles/rdmamon_os.dir/kernel_stats.cpp.o" "gcc" "src/os/CMakeFiles/rdmamon_os.dir/kernel_stats.cpp.o.d"
  "/root/repo/src/os/node.cpp" "src/os/CMakeFiles/rdmamon_os.dir/node.cpp.o" "gcc" "src/os/CMakeFiles/rdmamon_os.dir/node.cpp.o.d"
  "/root/repo/src/os/procfs.cpp" "src/os/CMakeFiles/rdmamon_os.dir/procfs.cpp.o" "gcc" "src/os/CMakeFiles/rdmamon_os.dir/procfs.cpp.o.d"
  "/root/repo/src/os/scheduler.cpp" "src/os/CMakeFiles/rdmamon_os.dir/scheduler.cpp.o" "gcc" "src/os/CMakeFiles/rdmamon_os.dir/scheduler.cpp.o.d"
  "/root/repo/src/os/thread.cpp" "src/os/CMakeFiles/rdmamon_os.dir/thread.cpp.o" "gcc" "src/os/CMakeFiles/rdmamon_os.dir/thread.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rdmamon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rdmamon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
