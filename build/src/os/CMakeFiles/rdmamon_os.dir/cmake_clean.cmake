file(REMOVE_RECURSE
  "CMakeFiles/rdmamon_os.dir/interrupts.cpp.o"
  "CMakeFiles/rdmamon_os.dir/interrupts.cpp.o.d"
  "CMakeFiles/rdmamon_os.dir/kernel_stats.cpp.o"
  "CMakeFiles/rdmamon_os.dir/kernel_stats.cpp.o.d"
  "CMakeFiles/rdmamon_os.dir/node.cpp.o"
  "CMakeFiles/rdmamon_os.dir/node.cpp.o.d"
  "CMakeFiles/rdmamon_os.dir/procfs.cpp.o"
  "CMakeFiles/rdmamon_os.dir/procfs.cpp.o.d"
  "CMakeFiles/rdmamon_os.dir/scheduler.cpp.o"
  "CMakeFiles/rdmamon_os.dir/scheduler.cpp.o.d"
  "CMakeFiles/rdmamon_os.dir/thread.cpp.o"
  "CMakeFiles/rdmamon_os.dir/thread.cpp.o.d"
  "librdmamon_os.a"
  "librdmamon_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmamon_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
