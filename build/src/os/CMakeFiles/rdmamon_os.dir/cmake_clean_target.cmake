file(REMOVE_RECURSE
  "librdmamon_os.a"
)
