file(REMOVE_RECURSE
  "CMakeFiles/rdmamon_monitor.dir/monitor.cpp.o"
  "CMakeFiles/rdmamon_monitor.dir/monitor.cpp.o.d"
  "CMakeFiles/rdmamon_monitor.dir/push.cpp.o"
  "CMakeFiles/rdmamon_monitor.dir/push.cpp.o.d"
  "librdmamon_monitor.a"
  "librdmamon_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmamon_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
