file(REMOVE_RECURSE
  "librdmamon_monitor.a"
)
