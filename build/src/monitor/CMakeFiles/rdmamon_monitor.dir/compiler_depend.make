# Empty compiler generated dependencies file for rdmamon_monitor.
# This may be replaced when dependencies are built.
