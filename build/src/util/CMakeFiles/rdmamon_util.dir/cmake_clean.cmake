file(REMOVE_RECURSE
  "CMakeFiles/rdmamon_util.dir/chart.cpp.o"
  "CMakeFiles/rdmamon_util.dir/chart.cpp.o.d"
  "CMakeFiles/rdmamon_util.dir/csv.cpp.o"
  "CMakeFiles/rdmamon_util.dir/csv.cpp.o.d"
  "CMakeFiles/rdmamon_util.dir/format.cpp.o"
  "CMakeFiles/rdmamon_util.dir/format.cpp.o.d"
  "CMakeFiles/rdmamon_util.dir/table.cpp.o"
  "CMakeFiles/rdmamon_util.dir/table.cpp.o.d"
  "librdmamon_util.a"
  "librdmamon_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmamon_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
