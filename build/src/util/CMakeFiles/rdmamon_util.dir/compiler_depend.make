# Empty compiler generated dependencies file for rdmamon_util.
# This may be replaced when dependencies are built.
