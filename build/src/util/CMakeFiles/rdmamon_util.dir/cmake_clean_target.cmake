file(REMOVE_RECURSE
  "librdmamon_util.a"
)
