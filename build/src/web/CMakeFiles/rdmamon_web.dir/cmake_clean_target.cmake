file(REMOVE_RECURSE
  "librdmamon_web.a"
)
