file(REMOVE_RECURSE
  "CMakeFiles/rdmamon_web.dir/client.cpp.o"
  "CMakeFiles/rdmamon_web.dir/client.cpp.o.d"
  "CMakeFiles/rdmamon_web.dir/cluster.cpp.o"
  "CMakeFiles/rdmamon_web.dir/cluster.cpp.o.d"
  "CMakeFiles/rdmamon_web.dir/server.cpp.o"
  "CMakeFiles/rdmamon_web.dir/server.cpp.o.d"
  "librdmamon_web.a"
  "librdmamon_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmamon_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
