# Empty compiler generated dependencies file for rdmamon_web.
# This may be replaced when dependencies are built.
