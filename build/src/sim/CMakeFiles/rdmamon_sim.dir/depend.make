# Empty dependencies file for rdmamon_sim.
# This may be replaced when dependencies are built.
