file(REMOVE_RECURSE
  "CMakeFiles/rdmamon_sim.dir/event_queue.cpp.o"
  "CMakeFiles/rdmamon_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/rdmamon_sim.dir/random.cpp.o"
  "CMakeFiles/rdmamon_sim.dir/random.cpp.o.d"
  "CMakeFiles/rdmamon_sim.dir/simulation.cpp.o"
  "CMakeFiles/rdmamon_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/rdmamon_sim.dir/stats.cpp.o"
  "CMakeFiles/rdmamon_sim.dir/stats.cpp.o.d"
  "CMakeFiles/rdmamon_sim.dir/time.cpp.o"
  "CMakeFiles/rdmamon_sim.dir/time.cpp.o.d"
  "CMakeFiles/rdmamon_sim.dir/trace.cpp.o"
  "CMakeFiles/rdmamon_sim.dir/trace.cpp.o.d"
  "librdmamon_sim.a"
  "librdmamon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmamon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
