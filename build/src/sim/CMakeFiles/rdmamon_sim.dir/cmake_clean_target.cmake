file(REMOVE_RECURSE
  "librdmamon_sim.a"
)
