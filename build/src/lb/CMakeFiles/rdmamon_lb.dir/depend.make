# Empty dependencies file for rdmamon_lb.
# This may be replaced when dependencies are built.
