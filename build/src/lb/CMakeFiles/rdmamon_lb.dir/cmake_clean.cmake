file(REMOVE_RECURSE
  "CMakeFiles/rdmamon_lb.dir/balancer.cpp.o"
  "CMakeFiles/rdmamon_lb.dir/balancer.cpp.o.d"
  "CMakeFiles/rdmamon_lb.dir/dispatcher.cpp.o"
  "CMakeFiles/rdmamon_lb.dir/dispatcher.cpp.o.d"
  "librdmamon_lb.a"
  "librdmamon_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmamon_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
