file(REMOVE_RECURSE
  "librdmamon_lb.a"
)
