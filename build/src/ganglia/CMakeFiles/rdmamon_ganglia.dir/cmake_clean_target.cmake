file(REMOVE_RECURSE
  "librdmamon_ganglia.a"
)
