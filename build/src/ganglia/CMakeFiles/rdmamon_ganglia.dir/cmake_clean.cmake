file(REMOVE_RECURSE
  "CMakeFiles/rdmamon_ganglia.dir/ganglia.cpp.o"
  "CMakeFiles/rdmamon_ganglia.dir/ganglia.cpp.o.d"
  "librdmamon_ganglia.a"
  "librdmamon_ganglia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmamon_ganglia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
