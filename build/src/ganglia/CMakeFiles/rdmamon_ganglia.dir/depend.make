# Empty dependencies file for rdmamon_ganglia.
# This may be replaced when dependencies are built.
