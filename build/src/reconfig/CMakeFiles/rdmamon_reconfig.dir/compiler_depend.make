# Empty compiler generated dependencies file for rdmamon_reconfig.
# This may be replaced when dependencies are built.
