file(REMOVE_RECURSE
  "librdmamon_reconfig.a"
)
