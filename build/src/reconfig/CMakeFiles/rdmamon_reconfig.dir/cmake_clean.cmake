file(REMOVE_RECURSE
  "CMakeFiles/rdmamon_reconfig.dir/reconfig.cpp.o"
  "CMakeFiles/rdmamon_reconfig.dir/reconfig.cpp.o.d"
  "librdmamon_reconfig.a"
  "librdmamon_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmamon_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
