# Empty compiler generated dependencies file for monitor_comparison.
# This may be replaced when dependencies are built.
