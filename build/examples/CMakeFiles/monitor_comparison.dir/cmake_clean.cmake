file(REMOVE_RECURSE
  "CMakeFiles/monitor_comparison.dir/monitor_comparison.cpp.o"
  "CMakeFiles/monitor_comparison.dir/monitor_comparison.cpp.o.d"
  "monitor_comparison"
  "monitor_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
