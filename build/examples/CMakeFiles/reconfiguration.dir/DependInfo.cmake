
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/reconfiguration.cpp" "examples/CMakeFiles/reconfiguration.dir/reconfiguration.cpp.o" "gcc" "examples/CMakeFiles/reconfiguration.dir/reconfiguration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rdmamon_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rdmamon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/rdmamon_os.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rdmamon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/rdmamon_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rdmamon_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/web/CMakeFiles/rdmamon_web.dir/DependInfo.cmake"
  "/root/repo/build/src/lb/CMakeFiles/rdmamon_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/ganglia/CMakeFiles/rdmamon_ganglia.dir/DependInfo.cmake"
  "/root/repo/build/src/reconfig/CMakeFiles/rdmamon_reconfig.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
