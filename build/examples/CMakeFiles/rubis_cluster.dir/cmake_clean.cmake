file(REMOVE_RECURSE
  "CMakeFiles/rubis_cluster.dir/rubis_cluster.cpp.o"
  "CMakeFiles/rubis_cluster.dir/rubis_cluster.cpp.o.d"
  "rubis_cluster"
  "rubis_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rubis_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
