# Empty compiler generated dependencies file for rubis_cluster.
# This may be replaced when dependencies are built.
