file(REMOVE_RECURSE
  "CMakeFiles/ganglia_dashboard.dir/ganglia_dashboard.cpp.o"
  "CMakeFiles/ganglia_dashboard.dir/ganglia_dashboard.cpp.o.d"
  "ganglia_dashboard"
  "ganglia_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ganglia_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
