# Empty compiler generated dependencies file for ganglia_dashboard.
# This may be replaced when dependencies are built.
