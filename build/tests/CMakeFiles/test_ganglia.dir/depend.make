# Empty dependencies file for test_ganglia.
# This may be replaced when dependencies are built.
