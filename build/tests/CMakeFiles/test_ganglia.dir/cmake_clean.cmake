file(REMOVE_RECURSE
  "CMakeFiles/test_ganglia.dir/ganglia_test.cpp.o"
  "CMakeFiles/test_ganglia.dir/ganglia_test.cpp.o.d"
  "test_ganglia"
  "test_ganglia.pdb"
  "test_ganglia[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ganglia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
