# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_os[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_monitor[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_web[1]_include.cmake")
include("/root/repo/build/tests/test_ganglia[1]_include.cmake")
include("/root/repo/build/tests/test_lb[1]_include.cmake")
include("/root/repo/build/tests/test_synthetic[1]_include.cmake")
include("/root/repo/build/tests/test_reconfig[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_os_edge[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
