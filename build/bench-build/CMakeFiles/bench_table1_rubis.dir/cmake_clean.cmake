file(REMOVE_RECURSE
  "../bench/bench_table1_rubis"
  "../bench/bench_table1_rubis.pdb"
  "CMakeFiles/bench_table1_rubis.dir/bench_table1_rubis.cpp.o"
  "CMakeFiles/bench_table1_rubis.dir/bench_table1_rubis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_rubis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
