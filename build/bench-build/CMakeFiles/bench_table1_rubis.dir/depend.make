# Empty dependencies file for bench_table1_rubis.
# This may be replaced when dependencies are built.
