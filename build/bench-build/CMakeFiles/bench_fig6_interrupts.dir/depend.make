# Empty dependencies file for bench_fig6_interrupts.
# This may be replaced when dependencies are built.
