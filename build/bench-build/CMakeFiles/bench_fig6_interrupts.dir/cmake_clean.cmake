file(REMOVE_RECURSE
  "../bench/bench_fig6_interrupts"
  "../bench/bench_fig6_interrupts.pdb"
  "CMakeFiles/bench_fig6_interrupts.dir/bench_fig6_interrupts.cpp.o"
  "CMakeFiles/bench_fig6_interrupts.dir/bench_fig6_interrupts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_interrupts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
