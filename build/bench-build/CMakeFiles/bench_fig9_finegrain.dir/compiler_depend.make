# Empty compiler generated dependencies file for bench_fig9_finegrain.
# This may be replaced when dependencies are built.
