file(REMOVE_RECURSE
  "../bench/bench_fig9_finegrain"
  "../bench/bench_fig9_finegrain.pdb"
  "CMakeFiles/bench_fig9_finegrain.dir/bench_fig9_finegrain.cpp.o"
  "CMakeFiles/bench_fig9_finegrain.dir/bench_fig9_finegrain.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_finegrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
