file(REMOVE_RECURSE
  "../bench/bench_fig8_ganglia"
  "../bench/bench_fig8_ganglia.pdb"
  "CMakeFiles/bench_fig8_ganglia.dir/bench_fig8_ganglia.cpp.o"
  "CMakeFiles/bench_fig8_ganglia.dir/bench_fig8_ganglia.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_ganglia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
