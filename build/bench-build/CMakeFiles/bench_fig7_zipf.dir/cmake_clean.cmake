file(REMOVE_RECURSE
  "../bench/bench_fig7_zipf"
  "../bench/bench_fig7_zipf.pdb"
  "CMakeFiles/bench_fig7_zipf.dir/bench_fig7_zipf.cpp.o"
  "CMakeFiles/bench_fig7_zipf.dir/bench_fig7_zipf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_zipf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
