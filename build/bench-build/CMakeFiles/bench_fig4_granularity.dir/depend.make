# Empty dependencies file for bench_fig4_granularity.
# This may be replaced when dependencies are built.
