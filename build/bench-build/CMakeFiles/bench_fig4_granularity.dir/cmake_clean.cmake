file(REMOVE_RECURSE
  "../bench/bench_fig4_granularity"
  "../bench/bench_fig4_granularity.pdb"
  "CMakeFiles/bench_fig4_granularity.dir/bench_fig4_granularity.cpp.o"
  "CMakeFiles/bench_fig4_granularity.dir/bench_fig4_granularity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
