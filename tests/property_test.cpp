// Property-style tests: invariants that must hold across parameter sweeps
// (conservation of CPU time, scheduler fairness, message conservation,
// determinism of whole-cluster runs, monotonicity properties).
#include <gtest/gtest.h>

#include <numeric>

#include "fault/fault.hpp"
#include "monitor/monitor.hpp"
#include "net/fabric.hpp"
#include "net/nic.hpp"
#include "net/socket.hpp"
#include "net/verbs.hpp"
#include "os/node.hpp"
#include "sim/simulation.hpp"
#include "web/cluster.hpp"

namespace rdmamon {
namespace {

using os::Program;
using os::SimThread;
using sim::msec;
using sim::seconds;
using sim::usec;

// --- scheduler conservation & fairness ---------------------------------------

class ThreadCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThreadCountSweep, CpuTimeIsConservedAndSharedFairly) {
  const int n = GetParam();
  sim::Simulation simu;
  os::NodeConfig cfg;
  cfg.cpus = 2;
  cfg.context_switch_cost = {};  // exact accounting
  os::Node node(simu, cfg);
  std::vector<os::SimThread*> threads;
  for (int i = 0; i < n; ++i) {
    // Small chunks so CPU time is accounted at segment boundaries even
    // for a thread that is never preempted.
    threads.push_back(
        node.spawn("t" + std::to_string(i), [](SimThread&) -> Program {
          for (;;) co_await os::Compute{msec(2)};
        }));
  }
  const sim::Duration span = seconds(5);
  simu.run_for(span);

  double total = 0;
  double lo = 1e18, hi = 0;
  for (auto* t : threads) {
    const double user = static_cast<double>(t->user_time.ns);
    total += user;
    lo = std::min(lo, user);
    hi = std::max(hi, user);
  }
  // Conservation: total user time == busy CPU capacity (2 CPUs, always
  // runnable threads when n >= 2).
  const double capacity =
      static_cast<double>(span.ns) * std::min(n, cfg.cpus);
  EXPECT_NEAR(total, capacity, capacity * 0.01);
  // Fairness: round-robin shares within one quantum of each other.
  if (n >= 2) {
    EXPECT_LE(hi - lo, static_cast<double>(cfg.quantum.ns) * 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, ThreadCountSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

// --- run-queue counter invariant under churn -----------------------------------

TEST(SchedulerInvariants, NrRunningStaysInBoundsUnderChurn) {
  sim::Simulation simu;
  os::Node node(simu, {.name = "churn"});
  sim::Rng rng(99);
  std::vector<os::SimThread*> live;
  for (int round = 0; round < 50; ++round) {
    // Spawn a few short-lived mixed-behaviour threads.
    const int spawns = static_cast<int>(rng.uniform_int(1, 4));
    for (int i = 0; i < spawns; ++i) {
      const auto behaviour = rng.uniform_int(0, 2);
      live.push_back(node.spawn(
          "w", [behaviour](SimThread&) -> Program {
            for (int k = 0; k < 20; ++k) {
              if (behaviour == 0) {
                co_await os::Compute{usec(500)};
              } else if (behaviour == 1) {
                co_await os::SleepFor{msec(2)};
              } else {
                co_await os::Compute{usec(100)};
                co_await os::YieldCpu{};
              }
            }
          }));
    }
    // Kill a random live thread sometimes.
    if (!live.empty() && rng.chance(0.3)) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      node.sched().kill(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    simu.run_for(msec(5));
    EXPECT_GE(node.stats().nr_running(), 0);
    EXPECT_LE(node.stats().nr_running(), node.stats().nr_threads());
    EXPECT_GE(node.stats().nr_threads(), 0);
  }
  simu.run_for(seconds(2));
  EXPECT_EQ(node.stats().nr_running(), 0);
}

// --- message conservation --------------------------------------------------------

class MessageSweep
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(MessageSweep, EveryMessageSentIsReceivedExactlyOnce) {
  const int count = std::get<0>(GetParam());
  const std::size_t bytes = std::get<1>(GetParam());
  sim::Simulation simu;
  net::Fabric fabric(simu, {});
  os::Node a(simu, {.name = "a"}), b(simu, {.name = "b"});
  fabric.attach(a);
  fabric.attach(b);
  net::Connection& conn = fabric.connect(a, b);
  long long received_sum = 0;
  int received = 0;
  b.spawn("rx", [&](SimThread& self) -> Program {
    for (;;) {
      net::Message m;
      co_await conn.end_b().recv(self, m);
      received_sum += std::any_cast<int>(m.payload);
      ++received;
    }
  });
  a.spawn("tx", [&](SimThread& self) -> Program {
    for (int i = 0; i < count; ++i) {
      co_await conn.end_a().send(self, bytes, i);
    }
  });
  simu.run_for(seconds(30));
  EXPECT_EQ(received, count);
  EXPECT_EQ(received_sum, static_cast<long long>(count) * (count - 1) / 2);
  EXPECT_EQ(fabric.nic(0).tx_packets(), static_cast<std::uint64_t>(count));
  EXPECT_EQ(fabric.nic(1).rx_packets(), static_cast<std::uint64_t>(count));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MessageSweep,
    ::testing::Combine(::testing::Values(1, 10, 200),
                       ::testing::Values(std::size_t{64},
                                         std::size_t{8192},
                                         std::size_t{1'000'000})));

// --- RDMA latency model -----------------------------------------------------------

TEST(RdmaProperties, ReadLatencyGrowsMonotonicallyWithSize) {
  sim::Simulation simu;
  net::Fabric fabric(simu, {});
  os::Node a(simu, {.name = "a"}), b(simu, {.name = "b"});
  fabric.attach(a);
  fabric.attach(b);
  net::MrKey key = fabric.nic(1).register_mr(1 << 20, [] { return std::any(0); });
  net::CompletionQueue cq;
  net::QueuePair qp(fabric.nic(0), 1, cq);
  std::vector<double> latencies;
  a.spawn("reader", [&](SimThread& self) -> Program {
    for (std::size_t len : {64u, 1024u, 16384u, 262144u}) {
      net::Completion c;
      const sim::TimePoint t0 = simu.now();
      co_await net::rdma_read_sync(self, qp, key, len, c);
      latencies.push_back((simu.now() - t0).micros());
    }
  });
  simu.run_for(seconds(1));
  ASSERT_EQ(latencies.size(), 4u);
  for (std::size_t i = 1; i < latencies.size(); ++i) {
    EXPECT_GT(latencies[i], latencies[i - 1]);
  }
  // Small reads are microseconds; even 256KB stays sub-millisecond at
  // 1.25 GB/s wire + DMA rates.
  EXPECT_LT(latencies[0], 30.0);
  EXPECT_LT(latencies[3], 1000.0);
}

// --- determinism of whole-cluster runs ---------------------------------------------

class SchemeSweep : public ::testing::TestWithParam<monitor::Scheme> {};

TEST_P(SchemeSweep, ClusterRunsAreBitwiseDeterministic) {
  auto run = [&]() -> std::pair<std::uint64_t, double> {
    sim::Simulation simu;
    web::ClusterConfig cfg;
    cfg.backends = 3;
    cfg.scheme = GetParam();
    cfg.seed = 1234;
    web::ClusterTestbed bed(simu, cfg);
    web::ClientGroupConfig ccfg;
    ccfg.threads_per_node = 4;
    web::ClientGroup& g =
        bed.add_clients(1, web::make_rubis_generator(), ccfg);
    simu.run_for(seconds(3));
    return {g.stats().completed(), g.stats().overall().mean()};
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.first, second.first);
  EXPECT_DOUBLE_EQ(first.second, second.second);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeSweep,
                         ::testing::ValuesIn(monitor::kAllSchemes),
                         [](const auto& info) {
                           std::string n = monitor::to_string(info.param);
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

// --- fault-plan liveness: no fetch ever hangs ----------------------------------------

class FaultPlanSweep
    : public ::testing::TestWithParam<std::tuple<monitor::Scheme, int>> {};

TEST_P(FaultPlanSweep, EveryFetchResolvesUnderAnyRandomFaultPlan) {
  // Whatever a random plan does to the fabric — crashes, hung kernels,
  // lossy links, overlapping windows, faults on the *frontend* — the run
  // terminates and every issued fetch resolves to exactly one of
  // success / timeout / transport-error. (At most the final fetch may
  // still be in flight when the horizon cuts the run off.)
  const auto [scheme, seed] = GetParam();
  const sim::Duration horizon = seconds(2);
  sim::Simulation simu;
  net::Fabric fabric(simu, {});
  os::Node frontend(simu, {.name = "frontend"});
  os::Node backend(simu, {.name = "backend"});
  fabric.attach(frontend);
  fabric.attach(backend);
  monitor::MonitorConfig mcfg;
  mcfg.scheme = scheme;
  mcfg.fetch_timeout = msec(5);
  mcfg.fetch_retries = 2;
  mcfg.retry_backoff = msec(1);
  monitor::MonitorChannel chan(fabric, frontend, backend, mcfg);

  sim::Rng rng(static_cast<std::uint64_t>(seed));
  const fault::FaultPlan plan =
      fault::FaultPlan::random(rng, fabric.num_nodes(), horizon);
  fault::FaultInjector inj(fabric);
  inj.arm(plan);

  int issued = 0, resolved = 0, okay = 0, timeout = 0, transport = 0;
  frontend.spawn("mon", [&](os::SimThread& self) -> Program {
    for (;;) {
      co_await os::SleepFor{msec(7)};
      monitor::MonitorSample s;
      ++issued;
      co_await chan.frontend().fetch(self, s);
      ++resolved;
      if (s.ok) {
        ++okay;
        EXPECT_EQ(s.error, monitor::FetchError::None);
      } else if (s.error == monitor::FetchError::Timeout) {
        ++timeout;
      } else {
        EXPECT_EQ(s.error, monitor::FetchError::Transport);
        ++transport;
      }
      EXPECT_GE(s.attempts, 1);
      EXPECT_LE(s.attempts, mcfg.fetch_retries + 1);
    }
  });
  simu.run_for(horizon);

  EXPECT_GE(issued, 50) << plan.describe();
  EXPECT_GE(resolved, issued - 1);  // only the horizon-cut fetch may dangle
  EXPECT_EQ(okay + timeout + transport, resolved);
  EXPECT_EQ(inj.injected(), plan.size());
  // Every plan recovers all faults before 95% of the horizon, so the last
  // fetches run against a healthy fabric again.
  EXPECT_GT(okay, 0) << plan.describe();
}

INSTANTIATE_TEST_SUITE_P(
    SchemesBySeeds, FaultPlanSweep,
    ::testing::Combine(::testing::ValuesIn(monitor::kTransportSchemes),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      std::string n = monitor::to_string(std::get<0>(info.param));
      for (auto& ch : n)
        if (ch == '-') ch = '_';
      return n + "_seed" + std::to_string(std::get<1>(info.param));
    });

// --- utilisation signal properties ---------------------------------------------------

TEST(UtilizationProperties, EmaBoundedAndTracksDuty) {
  for (double duty : {0.25, 0.5, 0.75}) {
    sim::Simulation simu;
    os::NodeConfig cfg;
    cfg.cpus = 1;
    // Zero context-switch cost: otherwise the 3us dispatch overhead pushes
    // each wakeup past the next timer tick and stretches the cycle.
    cfg.context_switch_cost = {};
    os::Node node(simu, cfg);
    const auto on = sim::nsec(static_cast<std::int64_t>(4e6 * duty));
    const auto off = sim::nsec(static_cast<std::int64_t>(4e6 * (1 - duty)));
    node.spawn("duty", [=](SimThread&) -> Program {
      for (;;) {
        co_await os::Compute{on};
        co_await os::SleepFor{off};
      }
    });
    simu.run_for(seconds(3));
    const double util = node.stats().cpu_load(simu.now());
    EXPECT_GE(util, 0.0);
    EXPECT_LE(util, 1.0);
    EXPECT_NEAR(util, duty, 0.15) << "duty " << duty;
  }
}

}  // namespace
}  // namespace rdmamon
