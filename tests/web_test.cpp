#include <gtest/gtest.h>

#include "lb/balancer.hpp"
#include "web/cluster.hpp"
#include "web/metrics.hpp"
#include "sim/simulation.hpp"

namespace rdmamon::web {
namespace {

using monitor::Scheme;
using sim::msec;
using sim::seconds;

TEST(LoadIndex, WeightsCombineAndClamp) {
  lb::WeightConfig w;
  os::LoadSnapshot s;
  s.cpu_load = 1.0;
  s.mem_load = 1.0;
  s.net_rate = 1e12;      // way over capacity: clamps to 1
  s.connections = 10'000; // clamps to 1
  EXPECT_NEAR(lb::load_index(s, w), w.w_cpu + w.w_mem + w.w_net + w.w_conn,
              1e-9);
  os::LoadSnapshot idle;
  EXPECT_NEAR(lb::load_index(idle, w), 0.0, 1e-9);
}

TEST(LoadIndex, IrqPenaltyOnlyForERdmaSync) {
  os::LoadSnapshot s;
  s.irq_pending = {3, 2};
  const auto plain = lb::WeightConfig::for_scheme(Scheme::RdmaSync);
  const auto extended = lb::WeightConfig::for_scheme(Scheme::ERdmaSync);
  EXPECT_DOUBLE_EQ(lb::load_index(s, plain), 0.0);
  // 5 pending, 2 allowed for free: 3 x 0.15 penalty.
  EXPECT_NEAR(lb::load_index(s, extended), 0.45, 1e-9);
}

TEST(ResponseStats, RecordsPerClassAndOverall) {
  ResponseStats st;
  st.record(0, msec(2));
  st.record(0, msec(4));
  st.record(1, msec(10));
  st.record_rejected();
  EXPECT_EQ(st.completed(), 3u);
  EXPECT_EQ(st.rejected(), 1u);
  EXPECT_DOUBLE_EQ(st.by_class(0).mean(), static_cast<double>(msec(3).ns));
  EXPECT_DOUBLE_EQ(st.by_class(1).max(), static_cast<double>(msec(10).ns));
  EXPECT_EQ(st.by_class(42).count(), 0u);
  EXPECT_NEAR(st.throughput(seconds(3)), 1.0, 1e-9);
  st.reset();
  EXPECT_EQ(st.completed(), 0u);
}

ClusterConfig small_cluster(Scheme scheme) {
  ClusterConfig cfg;
  cfg.backends = 4;
  cfg.scheme = scheme;
  return cfg;
}

TEST(Cluster, ServesRubisRequestsEndToEnd) {
  sim::Simulation simu;
  ClusterTestbed bed(simu, small_cluster(Scheme::RdmaSync));
  ClientGroupConfig ccfg;
  ccfg.threads_per_node = 4;
  ClientGroup& g = bed.add_clients(2, make_rubis_generator(), ccfg);
  simu.run_for(seconds(5));
  EXPECT_GT(g.stats().completed(), 500u);
  // Unloaded-ish cluster: mean response in the low milliseconds.
  EXPECT_LT(g.stats().overall().mean(),
            static_cast<double>(msec(50).ns));
  // All backends participated.
  for (auto n : bed.dispatcher().per_backend()) EXPECT_GT(n, 0u);
}

TEST(Cluster, EveryQueryClassGetsResponses) {
  sim::Simulation simu;
  ClusterTestbed bed(simu, small_cluster(Scheme::RdmaSync));
  ClientGroupConfig ccfg;
  ccfg.threads_per_node = 8;
  ClientGroup& g = bed.add_clients(2, make_rubis_generator(), ccfg);
  simu.run_for(seconds(10));
  for (auto q : workload::kAllRubisQueries) {
    EXPECT_GT(g.stats().by_class(static_cast<int>(q)).count(), 0u)
        << workload::to_string(q);
  }
  // Heavier classes respond slower on average.
  EXPECT_GT(
      g.stats()
          .by_class(static_cast<int>(
              workload::RubisQuery::BrowseCategoriesInRegion))
          .mean(),
      g.stats().by_class(static_cast<int>(workload::RubisQuery::Home)).mean());
}

TEST(Cluster, ZipfStaticWorkloadRuns) {
  sim::Simulation simu;
  ClusterTestbed bed(simu, small_cluster(Scheme::RdmaSync));
  auto trace = std::make_shared<workload::ZipfTrace>(
      workload::ZipfTraceConfig{}, 77);
  ClientGroupConfig ccfg;
  ccfg.threads_per_node = 4;
  ClientGroup& g = bed.add_clients(2, make_zipf_generator(trace), ccfg);
  simu.run_for(seconds(5));
  EXPECT_GT(g.stats().completed(), 200u);
  EXPECT_GT(g.stats().by_class(kStaticClass).count(), 0u);
}

TEST(Cluster, AdmissionControlRejectsUnderThresholdZero) {
  sim::Simulation simu;
  ClusterConfig cfg = small_cluster(Scheme::RdmaSync);
  cfg.admission_threshold = 0.0;  // reject everything
  ClusterTestbed bed(simu, cfg);
  ClientGroupConfig ccfg;
  ccfg.threads_per_node = 2;
  ClientGroup& g = bed.add_clients(1, make_rubis_generator(), ccfg);
  simu.run_for(seconds(2));
  EXPECT_EQ(g.stats().completed(), 0u);
  EXPECT_GT(g.stats().rejected(), 0u);
  EXPECT_GT(bed.admission()->rejected(), 0u);
  EXPECT_EQ(bed.admission()->admitted(), 0u);
}

TEST(Cluster, BalancerSpreadsLoadAcrossEqualBackends) {
  sim::Simulation simu;
  ClusterTestbed bed(simu, small_cluster(Scheme::RdmaSync));
  ClientGroupConfig ccfg;
  ccfg.threads_per_node = 8;
  bed.add_clients(2, make_rubis_generator(), ccfg);
  simu.run_for(seconds(10));
  const auto& per = bed.dispatcher().per_backend();
  std::uint64_t lo = ~0ull, hi = 0;
  for (auto n : per) {
    lo = std::min(lo, n);
    hi = std::max(hi, n);
  }
  ASSERT_GT(lo, 0u);
  // No severe skew on identical back ends.
  EXPECT_LT(static_cast<double>(hi) / static_cast<double>(lo), 2.0);
}

TEST(Cluster, FineGrainedRdmaBeatsStaleSocketUnderHeterogeneousLoad) {
  // Mini Fig 9: co-hosted Zipf traffic plus RUBiS, fine granularity.
  // RDMA-Sync's fresh data should not do worse than Socket-Async's stale
  // view; we only assert the direction weakly here (full sweep in bench).
  auto run = [](Scheme scheme) {
    sim::Simulation simu;
    ClusterConfig cfg;
    cfg.backends = 4;
    cfg.scheme = scheme;
    cfg.lb_granularity = msec(64);
    ClusterTestbed bed(simu, cfg);
    ClientGroupConfig rc;
    rc.threads_per_node = 8;
    rc.think = msec(10);
    ClientGroup& rubis = bed.add_clients(2, make_rubis_generator(), rc);
    auto trace = std::make_shared<workload::ZipfTrace>(
        workload::ZipfTraceConfig{}, 13);
    ClientGroupConfig zc;
    zc.threads_per_node = 8;
    zc.think = msec(10);
    ClientGroup& zipf = bed.add_clients(2, make_zipf_generator(trace), zc);
    simu.run_for(seconds(10));
    return rubis.stats().completed() + zipf.stats().completed();
  };
  const auto rdma = run(Scheme::RdmaSync);
  const auto sock = run(Scheme::SocketAsync);
  EXPECT_GT(static_cast<double>(rdma), static_cast<double>(sock) * 0.95);
}

}  // namespace
}  // namespace rdmamon::web
