#include <gtest/gtest.h>

#include "net/fabric.hpp"
#include "net/nic.hpp"
#include "os/node.hpp"
#include "sim/simulation.hpp"
#include "workload/synthetic.hpp"

namespace rdmamon::workload {
namespace {

using sim::msec;
using sim::seconds;

struct Env {
  sim::Simulation simu;
  net::Fabric fabric{simu, {}};
  os::Node node{simu, {.name = "node"}};
  os::Node peer{simu, {.name = "peer"}};

  Env() {
    fabric.attach(node);
    fabric.attach(peer);
  }
};

TEST(BackgroundLoad, GeneratesCpuAndNetworkLoad) {
  Env env;
  BackgroundLoadConfig cfg;
  cfg.threads = 4;
  BackgroundLoad bg(env.fabric, env.node, env.peer, cfg);
  env.simu.run_for(seconds(1));
  EXPECT_GT(env.node.stats().cpu_load(env.simu.now()), 0.5);
  EXPECT_GT(env.fabric.nic(0).tx_packets(), 100u);
  EXPECT_GT(env.fabric.nic(0).rx_packets(), 100u);  // echo replies
}

TEST(BackgroundLoad, StopRemovesAllThreads) {
  Env env;
  BackgroundLoadConfig cfg;
  cfg.threads = 4;
  BackgroundLoad bg(env.fabric, env.node, env.peer, cfg);
  env.simu.run_for(msec(200));
  EXPECT_EQ(env.node.stats().nr_threads(), 4);
  bg.stop();
  EXPECT_EQ(env.node.stats().nr_threads(), 0);
  EXPECT_EQ(env.peer.stats().nr_threads(), 0);
  env.simu.run_for(msec(500));
  EXPECT_LT(env.node.stats().cpu_load(env.simu.now()), 0.05);
}

TEST(BackgroundLoad, ZeroBurstMeansPureCompute) {
  Env env;
  BackgroundLoadConfig cfg;
  cfg.threads = 2;
  cfg.burst = 0;
  const auto tx_before = env.fabric.nic(0).tx_packets();
  BackgroundLoad bg(env.fabric, env.node, env.peer, cfg);
  env.simu.run_for(seconds(1));
  EXPECT_EQ(env.fabric.nic(0).tx_packets(), tx_before);  // no traffic
  EXPECT_GT(env.node.stats().cpu_load(env.simu.now()), 0.5);
  EXPECT_EQ(env.peer.stats().nr_threads(), 0);  // no echo threads
}

TEST(FloatingPointApp, UndisturbedAppHasZeroDelay) {
  Env env;
  FloatingPointApp app(env.node, msec(10));
  env.simu.run_for(seconds(2));
  EXPECT_GT(app.batches(), 100u);
  EXPECT_NEAR(app.normalized_delay(), 0.0, 1e-6);
}

TEST(FloatingPointApp, CompetingWorkInflatesDelay) {
  Env env;
  FloatingPointApp app(env.node, msec(10));  // one thread per CPU
  // A competitor stealing CPU time.
  env.node.spawn("competitor", [](os::SimThread&) -> os::Program {
    for (;;) {
      co_await os::Compute{msec(2)};
      co_await os::SleepFor{msec(5)};
    }
  });
  env.simu.run_for(seconds(2));
  EXPECT_GT(app.normalized_delay(), 0.05);
}

TEST(FloatingPointApp, StopHaltsProgress) {
  Env env;
  FloatingPointApp app(env.node, msec(5));
  env.simu.run_for(seconds(1));
  app.stop();
  const auto batches = app.batches();
  env.simu.run_for(seconds(1));
  EXPECT_EQ(app.batches(), batches);
}

TEST(Disturbance, FiresAndRampsOnTargets) {
  Env env;
  os::Node infra(env.simu, {.name = "infra"});
  env.fabric.attach(infra);
  DisturbanceConfig cfg;
  cfg.mean_interval = msec(300);
  cfg.duration = msec(200);
  DisturbanceGenerator gen(env.fabric, {&env.node}, infra, cfg,
                           sim::Rng(3));
  env.simu.run_for(seconds(3));
  EXPECT_GE(gen.events(), 3u);
  // Between events everything is torn down again eventually.
  EXPECT_LE(env.node.stats().nr_threads(),
            cfg.stages * cfg.stage.threads);
}

TEST(Disturbance, VictimLoadRisesDuringEvent) {
  Env env;
  os::Node infra(env.simu, {.name = "infra"});
  env.fabric.attach(infra);
  DisturbanceConfig cfg;
  cfg.mean_interval = msec(50);  // an event starts almost immediately...
  cfg.duration = seconds(10);    // ...and stays active for the whole test
  DisturbanceGenerator gen(env.fabric, {&env.node}, infra, cfg,
                           sim::Rng(4));
  env.simu.run_for(sim::from_millis(1500));
  EXPECT_GE(gen.events(), 1u);
  // Mid-event, fully ramped: the victim is visibly loaded.
  EXPECT_GT(env.node.stats().cpu_load(env.simu.now()), 0.5);
  EXPECT_GE(env.node.stats().nr_running(), 2);
}

}  // namespace
}  // namespace rdmamon::workload
