// Whole-system integration: long mixed-workload runs with disturbances,
// Ganglia and reconfiguration all active at once, checking end-state
// consistency (queues drained, counters balanced, memory returned).
#include <gtest/gtest.h>

#include "ganglia/ganglia.hpp"
#include "monitor/push.hpp"
#include "reconfig/reconfig.hpp"
#include "web/cluster.hpp"
#include "workload/synthetic.hpp"

namespace rdmamon {
namespace {

using monitor::Scheme;
using sim::msec;
using sim::seconds;

TEST(Integration, MixedWorkloadSoakStaysConsistent) {
  sim::Simulation simu;
  web::ClusterConfig cfg;
  cfg.backends = 6;
  cfg.scheme = Scheme::ERdmaSync;
  web::ClusterTestbed bed(simu, cfg);

  web::ClientGroupConfig ccfg;
  ccfg.threads_per_node = 8;
  ccfg.think = msec(10);
  web::ClientGroup& rubis =
      bed.add_clients(3, web::make_rubis_generator(), ccfg);
  auto trace = std::make_shared<workload::ZipfTrace>(
      workload::ZipfTraceConfig{}, 5);
  web::ClientGroup& zipf =
      bed.add_clients(3, web::make_zipf_generator(trace), ccfg);

  os::Node storage(simu, {.name = "storage"});
  bed.fabric().attach(storage);
  workload::DisturbanceGenerator disturb(bed.fabric(), bed.backend_ptrs(),
                                         storage, {}, sim::Rng(21));

  // Ganglia across the whole cluster at the same time.
  std::vector<os::Node*> gnodes = bed.backend_ptrs();
  gnodes.push_back(&bed.frontend());
  ganglia::GangliaConfig gcfg;
  gcfg.collect_period = seconds(2);
  ganglia::GangliaCluster gang(bed.fabric(), gnodes, gcfg);

  simu.run_for(seconds(30));

  // Liveness: sustained throughput, every class served.
  EXPECT_GT(rubis.stats().completed(), 10'000u);
  EXPECT_GT(zipf.stats().completed(), 10'000u);
  EXPECT_GE(disturb.events(), 10u);
  for (auto q : workload::kAllRubisQueries) {
    EXPECT_GT(rubis.stats().by_class(static_cast<int>(q)).count(), 100u);
  }

  // Consistency on every node at an arbitrary cut point.
  for (int i = 0; i < bed.backend_count(); ++i) {
    const os::KernelStats& st = bed.backend(i).stats();
    EXPECT_GE(st.nr_running(), 0);
    EXPECT_LE(st.nr_running(), st.nr_threads());
    EXPECT_LE(st.memory_used(), st.memory_total());
    EXPECT_GE(st.connections(), 0);
  }

  // Balance: no back end was starved or mobbed beyond 2.5x.
  std::uint64_t lo = ~0ull, hi = 0;
  for (auto n : bed.dispatcher().per_backend()) {
    lo = std::min(lo, n);
    hi = std::max(hi, n);
  }
  EXPECT_GT(lo, 0u);
  EXPECT_LT(static_cast<double>(hi) / static_cast<double>(lo), 2.5);

  // Ganglia learned about every back end.
  int known = 0;
  for (int i = 0; i < bed.backend_count(); ++i) {
    if (gang.daemon(static_cast<int>(gnodes.size()) - 1)
            .lookup(bed.backend(i).config().name, "cpu_load") != nullptr) {
      ++known;
    }
  }
  EXPECT_EQ(known, bed.backend_count());
}

TEST(Integration, QuiescenceAfterLoadStops) {
  // Once clients stop issuing (closed loop drains), backend queues empty
  // and transient request memory is returned.
  sim::Simulation simu;
  web::ClusterConfig cfg;
  cfg.backends = 3;
  cfg.scheme = Scheme::RdmaSync;
  web::ClusterTestbed bed(simu, cfg);
  web::ClientGroupConfig ccfg;
  ccfg.threads_per_node = 4;
  ccfg.think = seconds(3600);  // effectively: one request per client
  web::ClientGroup& g = bed.add_clients(2, web::make_rubis_generator(), ccfg);
  simu.run_for(seconds(5));
  EXPECT_EQ(g.stats().completed(), 8u);  // 2 nodes x 4 threads, one each
  for (int i = 0; i < bed.backend_count(); ++i) {
    EXPECT_EQ(bed.server(i).queue_depth(), 0u);
    EXPECT_EQ(bed.backend(i).stats().memory_used(), 0u);
    EXPECT_EQ(bed.backend(i).stats().nr_running(), 0);
  }
}

TEST(Integration, ReconfigurationAndMonitoringCoexist) {
  // A reconfiguration manager and a load balancer watching the same nodes
  // through independent channels must not interfere.
  sim::Simulation simu;
  net::Fabric fabric(simu, {});
  os::Node frontend(simu, {.name = "fe"});
  fabric.attach(frontend);
  std::vector<std::unique_ptr<os::Node>> nodes;
  std::vector<std::unique_ptr<reconfig::RoleRegion>> roles;
  reconfig::ReconfigConfig rcfg;
  rcfg.monitor.scheme = Scheme::RdmaSync;
  reconfig::ReconfigManager mgr(fabric, frontend, rcfg);
  lb::LoadBalancer balancer(lb::WeightConfig::for_scheme(Scheme::RdmaSync));
  for (int i = 0; i < 4; ++i) {
    os::NodeConfig ncfg;
    ncfg.name = "be" + std::to_string(i);
    nodes.push_back(std::make_unique<os::Node>(simu, ncfg));
    fabric.attach(*nodes.back());
    roles.push_back(std::make_unique<reconfig::RoleRegion>(
        fabric, *nodes.back(),
        i < 2 ? reconfig::Role::ServiceA : reconfig::Role::ServiceB));
    mgr.add_backend(*roles.back());
    monitor::MonitorConfig mcfg;
    mcfg.scheme = Scheme::RdmaSync;
    balancer.add_backend(std::make_unique<monitor::MonitorChannel>(
        fabric, frontend, *nodes.back(), mcfg));
  }
  mgr.start();
  balancer.start(frontend, msec(50));
  // Load service A's nodes.
  for (int i = 0; i < 2; ++i) {
    for (int k = 0; k < 6; ++k) {
      nodes[static_cast<std::size_t>(i)]->spawn(
          "hog", [](os::SimThread&) -> os::Program {
            for (;;) co_await os::Compute{seconds(100)};
          });
    }
  }
  simu.run_for(seconds(3));
  EXPECT_GE(mgr.reconfigurations(), 1u);
  // Both observers see the hogs on node 0.
  EXPECT_GT(balancer.index_of(0), 0.5);
  EXPECT_GT(mgr.pool_load(reconfig::Role::ServiceA), 0.3);
}

}  // namespace
}  // namespace rdmamon
