// Property suite for the per-tenant fabric arbiter (net::TenantArbiter),
// exercised directly — no NIC, no cluster — so each property isolates
// one line of the QoS contract:
//
//  - work conservation: with no rate caps, a backlogged engine never
//    idles (the last grant lands exactly sum(bytes)/engine_bps in);
//  - weighted fairness: backlogged tenants split admissions in weight
//    proportion over a window;
//  - intra-tenant FIFO: arbitration never reorders one tenant's ops;
//  - determinism: the same seeded submission schedule yields a
//    byte-identical decision trace, a different seed does not;
//  - token-bucket cap: admitted bytes by time T never exceed
//    burst + rate*T (+ one op of slack);
//  - queue cap: floods beyond the cap drop, and the counters reconcile
//    (submitted == admitted + dropped + still-queued).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/qos.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace rdmamon {
namespace {

using sim::msec;
using sim::usec;

net::QosConfig enabled_config() {
  net::QosConfig cfg;
  cfg.enabled = true;
  return cfg;
}

TEST(QosProperty, WorkConservingWithoutRateCaps) {
  // 50 x 1000 B ops across two uncapped tenants on a 1 GB/s engine:
  // serialization is 1 us per op, and with the backlog never empty the
  // last grant must land at exactly 49 us (first grant is at t=0).
  sim::Simulation simu;
  net::TenantArbiter arb(simu, enabled_config(), 1e9);
  std::vector<std::int64_t> grant_ns;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(arb.submit(static_cast<net::TenantId>(i % 2), 1000,
                           [&grant_ns, &simu] {
                             grant_ns.push_back(simu.now().ns);
                           }));
  }
  simu.run_for(msec(1));
  ASSERT_EQ(grant_ns.size(), 50u);
  EXPECT_EQ(grant_ns.front(), 0);
  EXPECT_EQ(grant_ns.back(), 49 * 1000);
  for (std::size_t k = 1; k < grant_ns.size(); ++k) {
    EXPECT_EQ(grant_ns[k] - grant_ns[k - 1], 1000) << "idle gap before " << k;
  }
}

TEST(QosProperty, WeightedFairShareOverWindow) {
  // Tenants weighted 3:1, both continuously backlogged with equal-size
  // ops: over any window the admission ratio must track the weights.
  net::QosConfig cfg = enabled_config();
  net::TenantQosSpec heavy;
  heavy.tenant = 1;
  heavy.weight = 3.0;
  cfg.tenants.push_back(heavy);
  net::TenantQosSpec light;
  light.tenant = 2;
  light.weight = 1.0;
  cfg.tenants.push_back(light);

  sim::Simulation simu;
  net::TenantArbiter arb(simu, cfg, 1e8);  // 1000 B -> 10 us service
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(arb.submit(1, 1000, [] {}));
    ASSERT_TRUE(arb.submit(2, 1000, [] {}));
  }
  simu.run_for(msec(1));  // ~100 service slots
  const auto h = arb.stats(1);
  const auto l = arb.stats(2);
  ASSERT_GT(l.admitted, 0u);
  const double ratio = static_cast<double>(h.admitted) /
                       static_cast<double>(l.admitted);
  EXPECT_GE(ratio, 2.5) << h.admitted << " vs " << l.admitted;
  EXPECT_LE(ratio, 3.5) << h.admitted << " vs " << l.admitted;
  // Work conservation still holds with weights: ~100 slots served.
  EXPECT_NEAR(static_cast<double>(h.admitted + l.admitted), 100.0, 2.0);
}

TEST(QosProperty, NoIntraTenantReordering) {
  // Random interleaved submissions from three tenants with random sizes:
  // each tenant's grants must replay its submissions in order, whatever
  // the cross-tenant schedule does.
  sim::Simulation simu;
  net::TenantArbiter arb(simu, enabled_config(), 1e8);
  sim::Rng rng(77);
  std::map<net::TenantId, std::vector<int>> submitted, granted;
  for (int k = 0; k < 200; ++k) {
    const auto t = static_cast<net::TenantId>(rng.uniform_int(1, 3));
    const std::size_t bytes =
        64 * static_cast<std::size_t>(1 + rng.uniform_int(0, 31));
    submitted[t].push_back(k);
    ASSERT_TRUE(
        arb.submit(t, bytes, [&granted, t, k] { granted[t].push_back(k); }));
  }
  simu.run_for(msec(100));
  for (const auto& [t, order] : submitted) {
    EXPECT_EQ(granted[t], order) << "tenant " << t << " reordered";
  }
}

/// One seeded submission schedule against a rate-capped tenant (so the
/// trace contains defers, not just back-to-back admits); returns the
/// arbiter's decision trace.
std::string run_trace_scenario(std::uint64_t seed) {
  net::QosConfig cfg = enabled_config();
  net::TenantQosSpec capped;
  capped.tenant = 2;
  capped.rate_bps = 1e6;
  capped.burst_bytes = 4096;
  cfg.tenants.push_back(capped);

  sim::Simulation simu;
  net::TenantArbiter arb(simu, cfg, 1e8);
  sim::Rng rng(seed);
  for (int k = 0; k < 60; ++k) {
    const auto at = sim::TimePoint{} + usec(rng.uniform_int(0, 5000));
    const auto t = static_cast<net::TenantId>(rng.uniform_int(1, 2));
    const std::size_t bytes =
        256 * static_cast<std::size_t>(1 + rng.uniform_int(0, 7));
    simu.at(at, [&arb, t, bytes] { arb.submit(t, bytes, [] {}); });
  }
  simu.run_for(msec(100));
  return arb.trace();
}

TEST(QosProperty, DecisionTraceIsSeedDeterministic) {
  const std::string a = run_trace_scenario(5);
  const std::string b = run_trace_scenario(5);
  const std::string c = run_trace_scenario(6);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "same seed, different decisions";
  EXPECT_NE(a, c) << "different seeds, identical decisions (suspicious)";
}

TEST(QosProperty, TokenBucketBoundsAdmittedBytes) {
  // A 1 MB/s tenant with a 10 kB bucket floods 40 x 1000 B ops at t=0.
  // By T the admitted bytes may never exceed burst + rate*T + one op of
  // slack; and the burst must clearly have been usable.
  net::QosConfig cfg = enabled_config();
  net::TenantQosSpec spec;
  spec.tenant = 7;
  spec.rate_bps = 1e6;
  spec.burst_bytes = 10'000;
  cfg.tenants.push_back(spec);

  sim::Simulation simu;
  net::TenantArbiter arb(simu, cfg, 1e9);
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(arb.submit(7, 1000, [] {}));
  simu.run_for(msec(20));
  const auto s = arb.stats(7);
  EXPECT_LE(s.admitted_bytes, 10'000 + 20'000 + 1000u);
  EXPECT_GE(s.admitted_bytes, 10'000u) << "burst not honoured";
  EXPECT_GT(s.deferred, 0u) << "rate cap never bound";
  EXPECT_EQ(s.submitted, 40u);
}

TEST(QosProperty, QueueCapDropsFloods) {
  // A 1 kB/s engine makes the first op occupy the engine for a full
  // second; a 100-op flood behind it can queue at most queue_cap ops and
  // must drop the rest, with the counters reconciling exactly.
  net::QosConfig cfg = enabled_config();
  net::TenantQosSpec spec;
  spec.tenant = 5;
  spec.queue_cap = 8;
  cfg.tenants.push_back(spec);

  sim::Simulation simu;
  net::TenantArbiter arb(simu, cfg, 1e3);
  std::uint64_t refused = 0;
  for (int i = 0; i < 101; ++i) {
    if (!arb.submit(5, 1000, [] {})) ++refused;
  }
  const auto s = arb.stats(5);
  EXPECT_EQ(s.submitted, 101u);
  EXPECT_EQ(s.admitted, 1u);  // the op that grabbed the idle engine
  EXPECT_EQ(s.queue_depth, 8u);
  EXPECT_EQ(s.dropped, 92u);
  EXPECT_EQ(s.dropped, refused);
  EXPECT_EQ(s.submitted, s.admitted + s.dropped + s.queue_depth);
}

}  // namespace
}  // namespace rdmamon
