#include <gtest/gtest.h>

#include "lb/admission.hpp"
#include "lb/balancer.hpp"
#include "monitor/monitor.hpp"
#include "net/fabric.hpp"
#include "os/node.hpp"
#include "sim/simulation.hpp"

namespace rdmamon::lb {
namespace {

using monitor::Scheme;
using sim::msec;
using sim::seconds;

struct LbEnv {
  sim::Simulation simu;
  net::Fabric fabric{simu, {}};
  os::Node frontend{simu, {.name = "fe"}};
  std::vector<std::unique_ptr<os::Node>> backends;
  std::unique_ptr<LoadBalancer> lb;

  explicit LbEnv(int n, Scheme scheme = Scheme::RdmaSync) {
    fabric.attach(frontend);
    lb = std::make_unique<LoadBalancer>(WeightConfig::for_scheme(scheme));
    for (int i = 0; i < n; ++i) {
      os::NodeConfig cfg;
      cfg.name = "be" + std::to_string(i);
      backends.push_back(std::make_unique<os::Node>(simu, cfg));
      fabric.attach(*backends.back());
      monitor::MonitorConfig mcfg;
      mcfg.scheme = scheme;
      lb->add_backend(std::make_unique<monitor::MonitorChannel>(
          fabric, frontend, *backends.back(), mcfg));
    }
  }

  void hog(int backend, int count) {
    for (int i = 0; i < count; ++i) {
      backends[static_cast<std::size_t>(backend)]->spawn(
          "hog", [](os::SimThread&) -> os::Program {
            for (;;) co_await os::Compute{seconds(100)};
          });
    }
  }
};

TEST(LoadIndexFn, RunqueueTermDominates) {
  WeightConfig w;
  os::LoadSnapshot a, b;
  a.nr_running = 0;
  b.nr_running = 8;  // saturated run queue
  EXPECT_GT(load_index(b, w) - load_index(a, w), 0.45);
}

TEST(LoadBalancer, SpreadsEvenlyWhenBackendsEqual) {
  LbEnv env(4);
  env.lb->start(env.frontend, msec(50));
  env.simu.run_for(msec(200));
  std::array<int, 4> picks{};
  for (int i = 0; i < 400; ++i) ++picks[static_cast<std::size_t>(env.lb->pick())];
  for (int n : picks) EXPECT_NEAR(n, 100, 10);
}

TEST(LoadBalancer, LoadedBackendGetsFewerPicks) {
  LbEnv env(4);
  env.hog(2, 4);  // backend 2 saturated: runq 4, cpu 100%
  env.lb->start(env.frontend, msec(50));
  env.simu.run_for(seconds(1));
  std::array<int, 4> picks{};
  for (int i = 0; i < 400; ++i) ++picks[static_cast<std::size_t>(env.lb->pick())];
  EXPECT_LT(picks[2], picks[0] / 2);
  EXPECT_GT(picks[0], 0);
}

TEST(LoadBalancer, OverloadedBackendLeavesRotation) {
  LbEnv env(4);
  env.hog(1, 12);  // far beyond the overload cutoff
  env.lb->start(env.frontend, msec(50));
  env.simu.run_for(seconds(1));
  EXPECT_GE(env.lb->index_of(1), env.lb->weights().overload_cutoff);
  std::array<int, 4> picks{};
  for (int i = 0; i < 300; ++i) ++picks[static_cast<std::size_t>(env.lb->pick())];
  EXPECT_EQ(picks[1], 0);  // completely out of rotation
}

TEST(LoadBalancer, AllOverloadedStillPicksSomeone) {
  LbEnv env(2);
  env.hog(0, 12);
  env.hog(1, 12);
  env.lb->start(env.frontend, msec(50));
  env.simu.run_for(seconds(1));
  // No healthy server: picks must still return valid indices.
  for (int i = 0; i < 10; ++i) {
    const int p = env.lb->pick();
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 2);
  }
}

TEST(LoadBalancer, PollerRefreshesSamples) {
  LbEnv env(2);
  env.lb->start(env.frontend, msec(20));
  env.simu.run_for(msec(500));
  EXPECT_TRUE(env.lb->last_sample(0).ok);
  EXPECT_TRUE(env.lb->last_sample(1).ok);
  EXPECT_GT(env.lb->fetch_latency_ns().count(), 10u);
  // Samples keep refreshing: retrieved_at advances.
  const auto t1 = env.lb->last_sample(0).retrieved_at;
  env.simu.run_for(msec(200));
  EXPECT_GT(env.lb->last_sample(0).retrieved_at.ns, t1.ns);
}

TEST(LoadBalancer, ERdmaSyncPenalisesIrqPressure) {
  WeightConfig w = WeightConfig::for_scheme(Scheme::ERdmaSync);
  os::LoadSnapshot calm, stormy;
  calm.irq_pending = {1, 1};   // within the normal-traffic allowance
  stormy.irq_pending = {4, 6};  // interrupt storm / deferred backlog
  EXPECT_DOUBLE_EQ(load_index(calm, w), 0.0);
  EXPECT_GT(load_index(stormy, w), 0.5);
}

TEST(Admission, ThresholdSeparatesAdmitReject) {
  AdmissionController adm(0.5);
  EXPECT_TRUE(adm.admit(0.2));
  EXPECT_FALSE(adm.admit(0.7));
  EXPECT_TRUE(adm.admit(0.499));
  EXPECT_EQ(adm.admitted(), 2u);
  EXPECT_EQ(adm.rejected(), 1u);
  EXPECT_DOUBLE_EQ(adm.threshold(), 0.5);
}

class WeightSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(WeightSweepTest, IndexMonotoneInCpuLoad) {
  // Property: for any runq level, the index is monotone in CPU load.
  WeightConfig w;
  os::LoadSnapshot lo, hi;
  lo.nr_running = hi.nr_running = static_cast<int>(GetParam() * 8);
  lo.cpu_load = 0.2;
  hi.cpu_load = 0.9;
  EXPECT_LT(load_index(lo, w), load_index(hi, w));
}

TEST_P(WeightSweepTest, IndexMonotoneInRunq) {
  WeightConfig w;
  os::LoadSnapshot lo, hi;
  lo.cpu_load = hi.cpu_load = GetParam();
  lo.nr_running = 1;
  hi.nr_running = 6;
  EXPECT_LT(load_index(lo, w), load_index(hi, w));
}

INSTANTIATE_TEST_SUITE_P(Levels, WeightSweepTest,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace rdmamon::lb
