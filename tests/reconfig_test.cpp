#include <gtest/gtest.h>

#include "monitor/push.hpp"
#include "net/fabric.hpp"
#include "os/node.hpp"
#include "reconfig/reconfig.hpp"
#include "sim/simulation.hpp"

namespace rdmamon::reconfig {
namespace {

using sim::msec;
using sim::seconds;

struct Env {
  sim::Simulation simu;
  net::Fabric fabric{simu, {}};
  os::Node frontend{simu, {.name = "fe"}};
  std::vector<std::unique_ptr<os::Node>> backends;

  explicit Env(int n) {
    fabric.attach(frontend);
    for (int i = 0; i < n; ++i) {
      os::NodeConfig cfg;
      cfg.name = "be" + std::to_string(i);
      backends.push_back(std::make_unique<os::Node>(simu, cfg));
      fabric.attach(*backends.back());
    }
  }

  void hog(int backend, int count) {
    for (int i = 0; i < count; ++i) {
      backends[static_cast<std::size_t>(backend)]->spawn(
          "hog", [](os::SimThread&) -> os::Program {
            for (;;) co_await os::Compute{seconds(100)};
          });
    }
  }
};

TEST(RoleRegion, RemoteWriteFlipsRoleAndNotifies) {
  Env env(1);
  RoleRegion region(env.fabric, *env.backends[0], Role::ServiceA);
  EXPECT_EQ(region.role(), Role::ServiceA);
  Role seen = Role::ServiceA;
  region.on_change([&](Role r) { seen = r; });

  net::CompletionQueue cq;
  net::QueuePair qp(env.fabric.nic(env.frontend.id), env.backends[0]->id,
                    cq);
  net::Completion out;
  env.frontend.spawn("writer", [&](os::SimThread& self) -> os::Program {
    co_await net::rdma_write_sync(
        self, qp, region.mr_key(),
        std::any(static_cast<int>(Role::ServiceB)), sizeof(int), out);
  });
  env.simu.run_for(msec(10));
  EXPECT_EQ(out.status, net::WcStatus::Success);
  EXPECT_EQ(region.role(), Role::ServiceB);
  EXPECT_EQ(seen, Role::ServiceB);
  // Zero back-end threads were needed for the flip.
  EXPECT_EQ(env.backends[0]->stats().nr_threads(), 0);
}

TEST(ReconfigManager, MovesNodeTowardsTheHotService) {
  Env env(4);
  std::vector<std::unique_ptr<RoleRegion>> regions;
  ReconfigConfig cfg;
  cfg.monitor.scheme = monitor::Scheme::RdmaSync;
  cfg.check_period = msec(50);
  cfg.cooldown = msec(200);
  ReconfigManager mgr(env.fabric, env.frontend, cfg);
  for (int i = 0; i < 4; ++i) {
    regions.push_back(std::make_unique<RoleRegion>(
        env.fabric, *env.backends[static_cast<std::size_t>(i)],
        i < 2 ? Role::ServiceA : Role::ServiceB));
    mgr.add_backend(*regions.back());
  }
  // Service A's nodes (0, 1) are saturated; B's (2, 3) idle.
  env.hog(0, 6);
  env.hog(1, 6);
  mgr.start();
  env.simu.run_for(seconds(3));
  EXPECT_GE(mgr.reconfigurations(), 1u);
  EXPECT_GT(mgr.nodes_in(Role::ServiceA), 2);
  EXPECT_GE(mgr.nodes_in(Role::ServiceB), cfg.min_nodes_per_service);
}

TEST(ReconfigManager, RespectsMinimumPoolSize) {
  Env env(2);
  std::vector<std::unique_ptr<RoleRegion>> regions;
  ReconfigConfig cfg;
  cfg.monitor.scheme = monitor::Scheme::RdmaSync;
  cfg.min_nodes_per_service = 1;
  ReconfigManager mgr(env.fabric, env.frontend, cfg);
  for (int i = 0; i < 2; ++i) {
    regions.push_back(std::make_unique<RoleRegion>(
        env.fabric, *env.backends[static_cast<std::size_t>(i)],
        static_cast<Role>(i)));
    mgr.add_backend(*regions.back());
  }
  env.hog(0, 8);  // A's only node overloaded, but B may not give up its last
  mgr.start();
  env.simu.run_for(seconds(3));
  EXPECT_GE(mgr.nodes_in(Role::ServiceA), 1);
  EXPECT_GE(mgr.nodes_in(Role::ServiceB), 1);
  EXPECT_EQ(mgr.reconfigurations(), 0u);
}

TEST(ReconfigManager, CooldownLimitsChurn) {
  Env env(4);
  std::vector<std::unique_ptr<RoleRegion>> regions;
  ReconfigConfig cfg;
  cfg.monitor.scheme = monitor::Scheme::RdmaSync;
  cfg.check_period = msec(20);
  cfg.cooldown = seconds(10);  // at most one reconfiguration in this test
  ReconfigManager mgr(env.fabric, env.frontend, cfg);
  for (int i = 0; i < 4; ++i) {
    regions.push_back(std::make_unique<RoleRegion>(
        env.fabric, *env.backends[static_cast<std::size_t>(i)],
        i < 2 ? Role::ServiceA : Role::ServiceB));
    mgr.add_backend(*regions.back());
  }
  env.hog(0, 6);
  env.hog(1, 6);
  mgr.start();
  env.simu.run_for(seconds(3));
  EXPECT_LE(mgr.reconfigurations(), 1u);
}

}  // namespace
}  // namespace rdmamon::reconfig

namespace rdmamon::monitor {
namespace {

using sim::msec;
using sim::seconds;

TEST(Push, SubscribersReceivePeriodicUpdates) {
  sim::Simulation simu;
  net::Fabric fabric(simu, {});
  os::Node backend(simu, {.name = "be"});
  os::Node fe1(simu, {.name = "fe1"}), fe2(simu, {.name = "fe2"});
  fabric.attach(backend);
  fabric.attach(fe1);
  fabric.attach(fe2);

  MulticastConfig cfg;
  cfg.period = msec(50);
  MulticastPublisher pub(fabric, backend, cfg);
  MulticastSubscriber& s1 = pub.subscribe(fe1);
  MulticastSubscriber& s2 = pub.subscribe(fe2);
  pub.start();

  simu.run_for(seconds(1));
  EXPECT_GT(pub.pushes(), 15u);
  EXPECT_GT(s1.updates(), 15u);
  EXPECT_EQ(s1.updates(), s2.updates());
  ASSERT_TRUE(s1.has_data());
  const MonitorSample sample = s1.last(simu.now());
  EXPECT_TRUE(sample.ok);
  // Local read: zero fetch latency...
  EXPECT_EQ(sample.latency().ns, 0);
  // ...but the data ages up to a full period between pushes.
  EXPECT_LE(sample.staleness().ns, (msec(60)).ns);
}

TEST(Push, RequiresABackendDaemonUnlikeRdmaSync) {
  sim::Simulation simu;
  net::Fabric fabric(simu, {});
  os::Node backend(simu, {.name = "be"});
  os::Node fe(simu, {.name = "fe"});
  fabric.attach(backend);
  fabric.attach(fe);
  MulticastPublisher pub(fabric, backend, {});
  pub.subscribe(fe);
  pub.start();
  simu.run_for(msec(100));
  // The publisher daemon is the cost the paper's Section 6 warns about.
  EXPECT_EQ(backend.stats().nr_threads(), 1);
}

}  // namespace
}  // namespace rdmamon::monitor
