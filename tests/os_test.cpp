#include <gtest/gtest.h>

#include <vector>

#include "os/node.hpp"
#include "os/program.hpp"
#include "os/wait.hpp"
#include "sim/simulation.hpp"

namespace rdmamon::os {
namespace {

using sim::msec;
using sim::seconds;
using sim::usec;

NodeConfig test_config() {
  NodeConfig cfg;
  cfg.name = "test";
  cfg.cpus = 2;
  cfg.hz = 1000;
  cfg.quantum = msec(10);
  cfg.context_switch_cost = usec(3);
  return cfg;
}

TEST(Program, RunsToCompletionThroughActions) {
  sim::Simulation s;
  Node node(s, test_config());
  std::vector<int> marks;
  node.spawn("t", [&](SimThread&) -> Program {
    marks.push_back(1);
    co_await Compute{usec(100)};
    marks.push_back(2);
    co_await SleepFor{msec(5)};
    marks.push_back(3);
  });
  s.run_for(seconds(1));
  EXPECT_EQ(marks, (std::vector<int>{1, 2, 3}));
}

TEST(Program, NestedSubprogramsComposeInOrder) {
  sim::Simulation s;
  Node node(s, test_config());
  std::vector<int> marks;

  auto inner = [&marks](int tag) -> Program {
    marks.push_back(tag);
    co_await Compute{usec(10)};
    marks.push_back(tag + 1);
  };
  node.spawn("t", [&](SimThread&) -> Program {
    marks.push_back(0);
    co_await inner(10);
    marks.push_back(1);
    co_await inner(20);
    marks.push_back(2);
  });
  s.run_for(msec(10));
  EXPECT_EQ(marks, (std::vector<int>{0, 10, 11, 1, 20, 21, 2}));
}

TEST(Scheduler, ComputeTakesSimulatedTime) {
  sim::Simulation s;
  Node node(s, test_config());
  sim::TimePoint done{};
  node.spawn("t", [&](SimThread&) -> Program {
    co_await Compute{msec(7)};
    done = s.now();
  });
  s.run_for(seconds(1));
  // 7ms of compute plus a few context switches (the exact count depends on
  // ksoftirqd startup order).
  EXPECT_GE(done.ns, (msec(7) + usec(3)).ns);
  EXPECT_LE(done.ns, (msec(7) + usec(15)).ns);
}

TEST(Scheduler, SleepRoundsUpToTimerTick) {
  NodeConfig cfg = test_config();
  cfg.hz = 100;  // 10ms resolution, like a 2.4 kernel at HZ=100
  cfg.context_switch_cost = {};
  sim::Simulation s;
  Node node(s, cfg);
  std::vector<std::int64_t> wake_times;
  node.spawn("t", [&](SimThread&) -> Program {
    co_await SleepFor{msec(1)};  // asks for 1ms...
    wake_times.push_back(s.now().ns);
    co_await SleepFor{msec(1)};
    wake_times.push_back(s.now().ns);
  });
  s.run_for(seconds(1));
  ASSERT_EQ(wake_times.size(), 2u);
  EXPECT_EQ(wake_times[0], msec(10).ns);  // ...wakes on the 10ms boundary
  EXPECT_EQ(wake_times[1], msec(20).ns);
}

TEST(Scheduler, TwoCpusRunTwoThreadsInParallel) {
  NodeConfig cfg = test_config();
  cfg.context_switch_cost = {};
  sim::Simulation s;
  Node node(s, cfg);
  std::vector<std::int64_t> done;
  for (int i = 0; i < 2; ++i) {
    node.spawn("t" + std::to_string(i), [&](SimThread&) -> Program {
      co_await Compute{msec(10)};
      done.push_back(s.now().ns);
    });
  }
  s.run_for(seconds(1));
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], msec(10).ns);
  EXPECT_EQ(done[1], msec(10).ns);  // truly parallel on 2 CPUs
}

TEST(Scheduler, RoundRobinSharesCpuFairly) {
  NodeConfig cfg = test_config();
  cfg.cpus = 1;
  cfg.context_switch_cost = {};
  sim::Simulation s;
  Node node(s, cfg);
  std::vector<int> finish_order;
  for (int i = 0; i < 3; ++i) {
    node.spawn("t" + std::to_string(i), [&, i](SimThread&) -> Program {
      co_await Compute{msec(30)};
      finish_order.push_back(i);
    });
  }
  s.run_for(seconds(1));
  ASSERT_EQ(finish_order.size(), 3u);
  // With RR at 10ms quantum over 30ms jobs, all finish near 90ms and in
  // spawn order.
  EXPECT_EQ(finish_order, (std::vector<int>{0, 1, 2}));
  // Each consumed its full compute.
  EXPECT_GE(s.now().ns, msec(90).ns - 1);
}

TEST(Scheduler, WaitQueueBlocksAndWakes) {
  sim::Simulation s;
  Node node(s, test_config());
  WaitQueue wq;
  bool data_ready = false;
  std::int64_t consumed_at = -1;
  node.spawn("consumer", [&](SimThread&) -> Program {
    while (!data_ready) co_await WaitOn{&wq};
    consumed_at = s.now().ns;
  });
  node.spawn("producer", [&](SimThread&) -> Program {
    co_await SleepFor{msec(20)};
    data_ready = true;
    wq.notify_one();
  });
  s.run_for(seconds(1));
  // Producer wakes on the tick after 20ms and hands off within ~one tick.
  EXPECT_GE(consumed_at, msec(20).ns);
  EXPECT_LT(consumed_at, msec(22).ns);
}

TEST(Scheduler, NotifyAllWakesEveryWaiter) {
  sim::Simulation s;
  Node node(s, test_config());
  WaitQueue wq;
  bool go = false;
  int woken = 0;
  for (int i = 0; i < 5; ++i) {
    node.spawn("w" + std::to_string(i), [&](SimThread&) -> Program {
      while (!go) co_await WaitOn{&wq};
      ++woken;
    });
  }
  node.spawn("p", [&](SimThread&) -> Program {
    co_await SleepFor{msec(1)};
    go = true;
    wq.notify_all();
  });
  s.run_for(seconds(1));
  EXPECT_EQ(woken, 5);
}

TEST(Scheduler, InteractiveWakerPreemptsCpuHog) {
  NodeConfig cfg = test_config();
  cfg.cpus = 1;
  cfg.context_switch_cost = {};
  sim::Simulation s;
  Node node(s, cfg);
  // A hog occupies the single CPU indefinitely.
  node.spawn("hog", [&](SimThread&) -> Program {
    for (;;) co_await Compute{msec(100)};
  });
  std::vector<std::int64_t> wakes;
  node.spawn("interactive", [&](SimThread&) -> Program {
    for (int i = 0; i < 3; ++i) {
      co_await SleepFor{msec(5)};
      wakes.push_back(s.now().ns);
    }
  });
  s.run_for(msec(100));
  ASSERT_EQ(wakes.size(), 3u);
  // The sleeper first runs at the hog's quantum expiry (10ms), then its
  // wakes preempt the (now non-interactive) hog immediately: successive
  // wakes land exactly one rounded sleep apart, not one 100ms burst apart.
  EXPECT_LE(wakes[0], msec(16).ns);
  EXPECT_EQ(wakes[1] - wakes[0], msec(5).ns);
  EXPECT_EQ(wakes[2] - wakes[1], msec(5).ns);
}

TEST(Scheduler, QuantumExpiryMarksHogNonInteractive) {
  NodeConfig cfg = test_config();
  cfg.cpus = 1;
  cfg.context_switch_cost = {};
  sim::Simulation s;
  Node node(s, cfg);
  SimThread* hog = node.spawn("hog", [&](SimThread&) -> Program {
    for (;;) co_await Compute{seconds(1)};
  });
  node.spawn("other", [&](SimThread&) -> Program {
    for (;;) co_await Compute{seconds(1)};
  });
  s.run_for(msec(50));
  EXPECT_FALSE(hog->interactive);
}

TEST(Scheduler, AffinityPinsThreadToCpu) {
  NodeConfig cfg = test_config();
  cfg.context_switch_cost = {};
  sim::Simulation s;
  Node node(s, cfg);
  SpawnOptions pin1;
  pin1.affinity = 1;
  SimThread* t = node.spawn(
      "pinned",
      [&](SimThread&) -> Program {
        for (;;) co_await Compute{msec(1)};
      },
      pin1);
  s.run_for(msec(5));
  EXPECT_EQ(t->cpu, 1);
}

TEST(Scheduler, KillStopsThreadEverywhere) {
  NodeConfig cfg = test_config();
  cfg.cpus = 1;
  sim::Simulation s;
  Node node(s, cfg);
  int progress = 0;
  SimThread* t = node.spawn("victim", [&](SimThread&) -> Program {
    for (;;) {
      co_await Compute{msec(1)};
      ++progress;
    }
  });
  s.run_for(msec(10));
  const int at_kill = progress;
  EXPECT_GT(at_kill, 0);
  node.sched().kill(t);
  EXPECT_EQ(t->state, ThreadState::Finished);
  s.run_for(msec(10));
  EXPECT_EQ(progress, at_kill);
}

TEST(KernelStats, NrRunningTracksRunnableUserThreads) {
  NodeConfig cfg = test_config();
  cfg.cpus = 1;
  sim::Simulation s;
  Node node(s, cfg);
  EXPECT_EQ(node.stats().nr_running(), 0);
  for (int i = 0; i < 4; ++i) {
    node.spawn("t" + std::to_string(i), [&](SimThread&) -> Program {
      co_await Compute{msec(100)};
    });
  }
  s.run_for(msec(1));
  EXPECT_EQ(node.stats().nr_running(), 4);
  EXPECT_EQ(node.stats().nr_threads(), 4);
  s.run_for(seconds(2));
  EXPECT_EQ(node.stats().nr_running(), 0);
  EXPECT_EQ(node.stats().nr_threads(), 0);
}

TEST(KernelStats, CpuUtilizationApproachesLoad) {
  NodeConfig cfg = test_config();
  cfg.cpus = 2;
  sim::Simulation s;
  Node node(s, cfg);
  // One always-busy thread on 2 CPUs -> ~50% node load.
  node.spawn("busy", [&](SimThread&) -> Program {
    for (;;) co_await Compute{seconds(10)};
  });
  s.run_for(seconds(2));
  EXPECT_NEAR(node.stats().cpu_load(s.now()), 0.5, 0.05);
}

TEST(KernelStats, MemoryAccounting) {
  sim::Simulation s;
  Node node(s, test_config());
  node.stats().alloc_memory(512 << 20);
  EXPECT_NEAR(node.stats().memory_load(), 0.5, 1e-9);
  node.stats().free_memory(1ull << 40);  // over-free clamps to zero
  EXPECT_DOUBLE_EQ(node.stats().memory_load(), 0.0);
}

TEST(Irq, HandlerStealsCpuFromThread) {
  NodeConfig cfg = test_config();
  cfg.cpus = 1;
  cfg.context_switch_cost = {};
  cfg.irq_handler_cost = usec(100);
  sim::Simulation s;
  Node node(s, cfg);
  sim::TimePoint done{};
  node.spawn("t", [&](SimThread&) -> Program {
    co_await Compute{msec(1)};
    done = s.now();
  });
  s.after(usec(200), [&] {
    node.irq().raise(0, IrqType::NetRx, nullptr);
  });
  s.run_for(msec(10));
  // 1ms of compute stretched by the 100us handler.
  EXPECT_EQ(done.ns, (msec(1) + usec(100)).ns);
}

TEST(Irq, PendingCountVisibleDuringService) {
  NodeConfig cfg = test_config();
  cfg.cpus = 1;
  cfg.irq_handler_cost = usec(50);
  sim::Simulation s;
  Node node(s, cfg);
  s.after(usec(10), [&] {
    node.irq().raise(0, IrqType::NetRx, nullptr);
    node.irq().raise(0, IrqType::NetRx, nullptr);
    EXPECT_EQ(node.irq().pending_hard(0, IrqType::NetRx), 2);
  });
  s.after(usec(40), [&] {
    EXPECT_EQ(node.irq().pending_hard_total(0), 2);  // first still in service
  });
  s.after(usec(70), [&] {
    EXPECT_EQ(node.irq().pending_hard_total(0), 1);  // second in service
  });
  s.after(usec(200), [&] {
    EXPECT_EQ(node.irq().pending_hard_total(0), 0);
  });
  s.run_for(msec(1));
  EXPECT_EQ(node.irq().raised_count(0, IrqType::NetRx), 2u);
}

TEST(Irq, SoftirqRunsThroughKsoftirqd) {
  NodeConfig cfg = test_config();
  cfg.cpus = 1;
  sim::Simulation s;
  Node node(s, cfg);
  int processed = 0;
  s.after(usec(10), [&] {
    for (int i = 0; i < 3; ++i) {
      node.irq().raise_softirq(
          0, SoftirqItem{usec(5), [&] { ++processed; }});
    }
  });
  s.run_for(msec(5));
  EXPECT_EQ(processed, 3);
  EXPECT_EQ(node.irq().softirq_backlog(0), 0u);
}

TEST(Irq, KsoftirqdWaitsBehindCpuHogs) {
  // The receive-livelock effect: with CPU hogs on every CPU, deferred
  // packet work is delayed by run-queue waiting, so softirq completion
  // takes much longer than the work itself.
  NodeConfig cfg = test_config();
  cfg.cpus = 1;
  cfg.quantum = msec(10);
  sim::Simulation s;
  Node node(s, cfg);
  node.spawn("hog", [&](SimThread&) -> Program {
    for (;;) co_await Compute{seconds(10)};
  });
  std::int64_t done_at = -1;
  s.after(msec(1), [&] {
    node.irq().raise_softirq(
        0, SoftirqItem{usec(5), [&] { done_at = s.now().ns; }});
  });
  s.run_for(seconds(1));
  ASSERT_GE(done_at, 0);
  // Must wait for at least the rest of the hog's quantum.
  EXPECT_GT(done_at, msec(8).ns);
}

TEST(ProcFs, SnapshotReflectsKernelState) {
  NodeConfig cfg = test_config();
  cfg.cpus = 2;
  sim::Simulation s;
  Node node(s, cfg);
  for (int i = 0; i < 3; ++i) {
    node.spawn("busy" + std::to_string(i), [&](SimThread&) -> Program {
      for (;;) co_await Compute{seconds(10)};
    });
  }
  node.stats().alloc_memory(256 << 20);
  s.run_for(seconds(1));
  const LoadSnapshot snap = node.procfs().snapshot();
  EXPECT_EQ(snap.nr_running, 3);
  EXPECT_EQ(snap.nr_threads, 3);
  EXPECT_GT(snap.cpu_load, 0.9);  // 3 hogs on 2 CPUs
  EXPECT_NEAR(snap.mem_load, 0.25, 0.01);
  EXPECT_EQ(snap.computed_at.ns, s.now().ns);
  EXPECT_EQ(snap.irq_pending.size(), 2u);
  EXPECT_GT(node.procfs().read_cost().ns, 0);
}

TEST(Scheduler, RunqueueWaitGrowsWithThreadCount) {
  // Foundation of Fig 3: the more runnable peers, the longer a woken
  // normal-priority, non-interactive task waits for the CPU.
  auto measure = [](int nthreads) {
    NodeConfig cfg = test_config();
    cfg.cpus = 1;
    sim::Simulation s;
    Node node(s, cfg);
    for (int i = 0; i < nthreads; ++i) {
      node.spawn("bg" + std::to_string(i), [&](SimThread&) -> Program {
        for (;;) co_await Compute{seconds(10)};
      });
    }
    double total_wait = 0;
    int samples = 0;
    // Softirq items measure queueing of ksoftirqd (non-interactive).
    for (int k = 1; k <= 5; ++k) {
      s.after(sim::msec(50 * k), [&, k] {
        const sim::TimePoint issued = s.now();
        node.irq().raise_softirq(
            0, os::SoftirqItem{usec(5), [&, issued] {
                 total_wait += (s.now() - issued).seconds();
                 ++samples;
               }});
      });
    }
    s.run_for(seconds(5));
    return samples ? total_wait / samples : 0.0;
  };
  const double wait_small = measure(1);
  const double wait_big = measure(8);
  EXPECT_GT(wait_big, wait_small * 2);
}

}  // namespace
}  // namespace rdmamon::os
