// Property/stress tests for the timer-wheel event queue: random
// interleavings of schedule / cancel / pop against a naive
// std::multimap reference model. The model is the seed kernel's
// contract: events fire in (time, insertion-sequence) order, ties at one
// timestamp fire FIFO, cancellation is exact and idempotent. Runs under
// ASan/UBSan in ci.sh sanitize.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <new>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

// Global allocation counter for the zero-steady-state-allocation proof
// (same trick as telemetry_test: gtest itself allocates, so tests bracket
// exactly the code under test).
namespace {
std::uint64_t g_allocs = 0;
}
void* operator new(std::size_t n) {
  ++g_allocs;
  void* p = std::malloc(n);
  if (!p) throw std::bad_alloc{};
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace rdmamon::sim {
namespace {

/// Reference model: the exact contract of the seed binary-heap kernel.
class ModelQueue {
 public:
  int schedule(std::int64_t when) {
    const int id = next_id_++;
    events_.emplace(std::make_pair(when, seq_++), id);
    return id;
  }

  bool cancel(int id) {  // true if the event was live
    for (auto it = events_.begin(); it != events_.end(); ++it) {
      if (it->second == id) {
        events_.erase(it);
        return true;
      }
    }
    return false;
  }

  bool empty() const { return events_.empty(); }
  std::int64_t next_time() const { return events_.begin()->first.first; }

  int pop() {
    const int id = events_.begin()->second;
    events_.erase(events_.begin());
    return id;
  }

 private:
  std::multimap<std::pair<std::int64_t, std::uint64_t>, int> events_;
  std::uint64_t seq_ = 0;
  int next_id_ = 0;
};

/// Delta distribution exercising every residence class: same-instant,
/// sub-tick, every wheel level, and the far-future overflow heap.
std::int64_t random_delta(Rng& rng) {
  switch (rng.uniform_int(0, 6)) {
    case 0: return 0;                                  // same timestamp
    case 1: return rng.uniform_int(1, 1'000);          // sub-tick
    case 2: return rng.uniform_int(1, 260'000);        // level 0
    case 3: return rng.uniform_int(1, 60'000'000);     // level 1
    case 4: return rng.uniform_int(1, 15'000'000'000); // level 2
    case 5: return rng.uniform_int(1, 60'000'000'000); // often -> heap
    default: return rng.uniform_int(1, 4'000);         // near, dense
  }
}

struct LiveEvent {
  EventHandle handle;
  int id;
};

TEST(EventQueueStress, MatchesMultimapModelUnderRandomInterleaving) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull}) {
    EventQueue q;
    ModelQueue model;
    Rng rng(seed);
    std::vector<LiveEvent> live;
    std::vector<EventHandle> dead;  // fired or cancelled: must stay inert
    std::vector<int> fired, fired_model;
    std::int64_t now = 0;

    for (int step = 0; step < 20'000; ++step) {
      const std::int64_t op = rng.uniform_int(0, 9);
      if (op < 5) {  // schedule
        const std::int64_t when = now + random_delta(rng);
        const int id = model.schedule(when);
        EventHandle h =
            q.schedule(TimePoint{when}, [id, &fired] { fired.push_back(id); });
        EXPECT_TRUE(h.pending());
        live.push_back({h, id});
      } else if (op < 7) {  // cancel a random live handle
        if (!live.empty()) {
          const std::size_t pick = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
          LiveEvent ev = live[pick];
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
          EXPECT_TRUE(ev.handle.pending());
          ev.handle.cancel();
          EXPECT_FALSE(ev.handle.pending());
          ev.handle.cancel();  // idempotent
          EXPECT_TRUE(model.cancel(ev.id));
          dead.push_back(ev.handle);
        }
      } else if (op < 9) {  // pop a few events
        const int burst = static_cast<int>(rng.uniform_int(1, 4));
        for (int i = 0; i < burst && !model.empty(); ++i) {
          ASSERT_FALSE(q.empty());
          const std::int64_t want = model.next_time();
          ASSERT_EQ(q.next_time().ns, want) << "step " << step;
          const int want_id = model.pop();
          fired_model.push_back(want_id);
          const std::int64_t t = q.pop_and_run().ns;
          ASSERT_EQ(t, want);
          ASSERT_GE(t, now) << "time went backwards at step " << step;
          now = t;
          // Drop the fired event from the live set; its handle is dead.
          for (std::size_t j = 0; j < live.size(); ++j) {
            if (live[j].id == want_id) {
              EXPECT_FALSE(live[j].handle.pending());
              dead.push_back(live[j].handle);
              live.erase(live.begin() + static_cast<std::ptrdiff_t>(j));
              break;
            }
          }
          ASSERT_EQ(fired.size(), fired_model.size());
          ASSERT_EQ(fired.back(), want_id) << "wrong order at step " << step;
        }
        EXPECT_EQ(q.empty(), model.empty());
      } else {  // poke dead handles: cancel-after-fire must stay a no-op
        for (EventHandle& h : dead) {
          EXPECT_FALSE(h.pending());
          h.cancel();
        }
        dead.clear();
      }
      ASSERT_EQ(q.size(), live.size());
    }

    // Drain to the end: the full execution sequences must match exactly.
    while (!model.empty()) {
      ASSERT_FALSE(q.empty());
      ASSERT_EQ(q.next_time().ns, model.next_time());
      fired_model.push_back(model.pop());
      q.pop_and_run();
    }
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(fired, fired_model) << "seed " << seed;
    EXPECT_EQ(q.executed(), fired.size());
  }
}

TEST(EventQueueStress, SameTimestampBurstsFireFifoAcrossResidenceClasses) {
  // Schedule bursts at the same instant from different horizons so ties
  // span ready-list inserts, wheel slots and heap drains.
  EventQueue q;
  std::vector<int> order;
  int next = 0;
  for (std::int64_t t : {0ll, 500ll, 1'000'000ll, 20'000'000'000ll}) {
    for (int i = 0; i < 8; ++i) {
      q.schedule(TimePoint{t}, [&order, id = next++] { order.push_back(id); });
    }
  }
  while (!q.empty()) q.pop_and_run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(next));
  for (int i = 0; i < next; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueStress, CancelHeavyTimeoutPatternSweepsTombstones) {
  // The monitoring plane's hottest pattern: arm a timeout, cancel it on
  // completion. Wheel-resident cancels unlink eagerly; far-future
  // (heap-resident) cancels tombstone until the lazy sweep.
  EventQueue q;
  int fired = 0;
  for (int round = 0; round < 1'000; ++round) {
    EventHandle near = q.schedule(TimePoint{round * 10 + 5}, [&] { ++fired; });
    EventHandle far =
        q.schedule(TimePoint{round * 10 + 30'000'000'000ll}, [&] { ++fired; });
    near.cancel();
    far.cancel();
    q.schedule(TimePoint{round * 10 + 7}, [&] { ++fired; });
  }
  EXPECT_EQ(q.size(), 1'000u);
  EXPECT_EQ(q.cancelled_total(), 2'000u);
  // Far-future cancels are lazily swept, so they stay pool-resident —
  // except round 0's: its two cancels momentarily left the queue with no
  // live event at all, which reaps every outstanding tombstone on the spot.
  EXPECT_EQ(q.cancelled_pending(), 999u);
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(fired, 1'000);
  EXPECT_EQ(q.cancelled_pending(), 0u) << "drain must reap every tombstone";
  EXPECT_EQ(q.executed(), 1'000u);
}

TEST(EventQueueStress, SteadyStateSchedulingDoesNotAllocate) {
  // Warm the pool and internal vectors, then verify the schedule ->
  // fire -> recycle loop never touches the heap: the zero-allocation
  // invariant bench_engine's perf figures rest on.
  Simulation simu;
  std::uint64_t ticks = 0;
  // Self-rescheduling events with InlineFn-sized captures, plus a
  // cancel-heavy timeout pattern.
  for (int i = 0; i < 64; ++i) {
    struct Periodic {
      Simulation* simu;
      std::uint64_t* ticks;
      std::int64_t period;
      void operator()() {
        ++*ticks;
        simu->after(Duration{period}, Periodic{*this});
      }
    };
    simu.after(Duration{1'000 + i * 37},
               Periodic{&simu, &ticks, 900 + i * 13});
  }
  simu.run_until(TimePoint{2'000'000});  // warm-up: pools + vectors grow
  const std::uint64_t before = g_allocs;
  const std::size_t pool_before = simu.events_pending();
  simu.run_until(TimePoint{20'000'000});
  EXPECT_EQ(g_allocs, before) << "steady-state run allocated";
  EXPECT_EQ(simu.events_pending(), pool_before);
  EXPECT_GT(ticks, 10'000u);

  // Timeout pattern on the warm queue: schedule+cancel must not allocate.
  const std::uint64_t before2 = g_allocs;
  for (int i = 0; i < 1'000; ++i) {
    EventHandle h = simu.after(Duration{5'000}, [] {});
    h.cancel();
  }
  EXPECT_EQ(g_allocs, before2) << "schedule/cancel pair allocated";
}

TEST(EventQueueStress, HandlesSurviveSlotReuseAcrossGenerations) {
  EventQueue q;
  // Fire an event, then recycle its pool slot many times; the stale
  // handle must stay inert through every generation.
  int fired = 0;
  EventHandle stale = q.schedule(TimePoint{1}, [&] { ++fired; });
  q.pop_and_run();
  EXPECT_FALSE(stale.pending());
  for (int i = 0; i < 100; ++i) {
    EventHandle h = q.schedule(TimePoint{10 + i}, [&] { ++fired; });
    EXPECT_TRUE(h.pending());
    EXPECT_FALSE(stale.pending());
    stale.cancel();  // must never touch the new occupant
    EXPECT_TRUE(h.pending());
    q.pop_and_run();
  }
  EXPECT_EQ(fired, 101);
}

}  // namespace
}  // namespace rdmamon::sim
