#include <gtest/gtest.h>

#include "ganglia/ganglia.hpp"
#include "net/fabric.hpp"
#include "os/node.hpp"
#include "sim/simulation.hpp"

namespace rdmamon::ganglia {
namespace {

using sim::msec;
using sim::seconds;

struct Env {
  sim::Simulation simu;
  net::Fabric fabric{simu, {}};
  std::vector<std::unique_ptr<os::Node>> nodes;

  explicit Env(int n) {
    for (int i = 0; i < n; ++i) {
      os::NodeConfig cfg;
      cfg.name = "n" + std::to_string(i);
      nodes.push_back(std::make_unique<os::Node>(simu, cfg));
      fabric.attach(*nodes.back());
    }
  }
  std::vector<os::Node*> node_ptrs() {
    std::vector<os::Node*> out;
    for (auto& n : nodes) out.push_back(n.get());
    return out;
  }
};

TEST(Gmond, CollectsDefaultMetricsLocally) {
  Env env(1);
  GangliaConfig cfg;
  cfg.collect_period = msec(100);
  GangliaCluster ganglia(env.fabric, env.node_ptrs(), cfg);
  env.simu.run_for(seconds(1));
  const MetricValue* cpu = ganglia.daemon(0).lookup("n0", "cpu_load");
  ASSERT_NE(cpu, nullptr);
  EXPECT_GE(cpu->value, 0.0);
  EXPECT_NE(ganglia.daemon(0).lookup("n0", "mem_load"), nullptr);
  EXPECT_NE(ganglia.daemon(0).lookup("n0", "proc_run"), nullptr);
}

TEST(Gmond, GossipPropagatesMetricsToAllPeers) {
  Env env(4);
  GangliaConfig cfg;
  cfg.collect_period = msec(100);
  GangliaCluster ganglia(env.fabric, env.node_ptrs(), cfg);
  env.simu.run_for(seconds(1));
  // Every daemon should know n2's cpu metric.
  for (int i = 0; i < ganglia.size(); ++i) {
    const MetricValue* v = ganglia.daemon(i).lookup("n2", "cpu_load");
    ASSERT_NE(v, nullptr) << "daemon " << i;
  }
}

TEST(Gmond, PublishedCustomMetricReachesPeers) {
  Env env(3);
  GangliaConfig cfg;
  cfg.collect_period = seconds(100);  // keep default traffic out of the way
  GangliaCluster ganglia(env.fabric, env.node_ptrs(), cfg);
  env.simu.after(msec(10), [&] { ganglia.daemon(0).publish("custom", 42.0); });
  env.simu.run_for(seconds(1));
  for (int i = 0; i < 3; ++i) {
    const MetricValue* v = ganglia.daemon(i).lookup("n0", "custom");
    ASSERT_NE(v, nullptr) << "daemon " << i;
    EXPECT_DOUBLE_EQ(v->value, 42.0);
  }
}

TEST(Gmetric, AgentPublishesFineGrainedLoadViaScheme) {
  Env env(3);  // n0 = frontend, n1 = backend, n2 = observer
  GangliaConfig cfg;
  cfg.collect_period = seconds(100);
  GangliaCluster ganglia(env.fabric, env.node_ptrs(), cfg);
  monitor::MonitorConfig mcfg;
  mcfg.scheme = monitor::Scheme::RdmaSync;
  GmetricAgent agent(env.fabric, ganglia.daemon(0), *env.nodes[0],
                     *env.nodes[1], mcfg, msec(4), msec(100));
  env.simu.run_for(seconds(2));
  // Fetches at 4ms threshold: hundreds of them.
  EXPECT_GT(agent.fetches(), 300u);
  // The observer node learned the fine-grained metric via gossip.
  const MetricValue* v = ganglia.daemon(2).lookup("n0", agent.metric_name());
  ASSERT_NE(v, nullptr);
}

TEST(Gmetric, RdmaSyncAgentAddsNoBackendThreads) {
  Env env(2);
  GangliaConfig cfg;
  cfg.collect_period = seconds(100);
  // No ganglia on the backend node: isolate the agent's footprint.
  std::vector<os::Node*> front_only = {env.nodes[0].get()};
  GangliaCluster ganglia(env.fabric, front_only, cfg);
  monitor::MonitorConfig mcfg;
  mcfg.scheme = monitor::Scheme::RdmaSync;
  GmetricAgent agent(env.fabric, ganglia.daemon(0), *env.nodes[0],
                     *env.nodes[1], mcfg, msec(1), msec(100));
  env.simu.run_for(seconds(1));
  EXPECT_EQ(env.nodes[1]->stats().nr_threads(), 0);
  // The 1ms sleep rounds up to the next tick after each fetch, so the
  // effective cycle is ~2ms.
  EXPECT_GE(agent.fetches(), 450u);
}

}  // namespace
}  // namespace rdmamon::ganglia
