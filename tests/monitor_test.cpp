#include <gtest/gtest.h>

#include "monitor/accuracy.hpp"
#include "monitor/monitor.hpp"
#include "monitor/scheme.hpp"
#include "net/fabric.hpp"
#include "os/node.hpp"
#include "sim/simulation.hpp"
#include "workload/synthetic.hpp"

namespace rdmamon::monitor {
namespace {

using os::Compute;
using os::Program;
using os::SimThread;
using os::SleepFor;
using sim::msec;
using sim::seconds;
using sim::usec;

struct Env {
  sim::Simulation simu;
  net::Fabric fabric{simu, {}};
  os::Node frontend{simu, frontend_cfg()};
  os::Node backend{simu, backend_cfg()};
  os::Node peer{simu, peer_cfg()};  ///< echo peer for background traffic
  std::unique_ptr<workload::BackgroundLoad> bg;

  static os::NodeConfig frontend_cfg() {
    os::NodeConfig c;
    c.name = "frontend";
    return c;
  }
  static os::NodeConfig backend_cfg() {
    os::NodeConfig c;
    c.name = "backend";
    return c;
  }
  static os::NodeConfig peer_cfg() {
    os::NodeConfig c;
    c.name = "peer";
    return c;
  }

  Env() {
    fabric.attach(frontend);
    fabric.attach(backend);
    fabric.attach(peer);
  }

  /// The paper's Fig 3 background: computation + communication threads.
  void add_background(int n) {
    workload::BackgroundLoadConfig cfg;
    cfg.threads = n;
    bg = std::make_unique<workload::BackgroundLoad>(fabric, backend, peer,
                                                    cfg);
  }

  void add_hogs(int n) {
    for (int i = 0; i < n; ++i) {
      backend.spawn("hog" + std::to_string(i), [](SimThread&) -> Program {
        for (;;) co_await Compute{seconds(100)};
      });
    }
  }
};

TEST(SchemeTraits, Classification) {
  EXPECT_TRUE(is_rdma(Scheme::RdmaSync));
  EXPECT_TRUE(is_rdma(Scheme::ERdmaSync));
  EXPECT_FALSE(is_rdma(Scheme::SocketSync));
  EXPECT_TRUE(has_calc_thread(Scheme::SocketAsync));
  EXPECT_TRUE(has_calc_thread(Scheme::RdmaAsync));
  EXPECT_FALSE(has_calc_thread(Scheme::RdmaSync));
  EXPECT_TRUE(has_report_thread(Scheme::SocketSync));
  EXPECT_FALSE(has_report_thread(Scheme::RdmaAsync));
  EXPECT_TRUE(is_kernel_direct(Scheme::ERdmaSync));
  EXPECT_STREQ(to_string(Scheme::RdmaSync), "RDMA-Sync");
}

class EverySchemeTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(EverySchemeTest, FetchDeliversASample) {
  Env env;
  MonitorConfig cfg;
  cfg.scheme = GetParam();
  MonitorChannel chan(env.fabric, env.frontend, env.backend, cfg);
  MonitorSample sample;
  env.frontend.spawn("mon", [&](SimThread& self) -> Program {
    co_await SleepFor{msec(100)};  // let async calc threads run once
    co_await chan.frontend().fetch(self, sample);
  });
  env.simu.run_for(seconds(1));
  ASSERT_TRUE(sample.ok);
  EXPECT_GT(sample.latency().ns, 0);
  EXPECT_GE(sample.staleness().ns, 0);
  EXPECT_GE(sample.info.cpu_load, 0.0);
}

TEST_P(EverySchemeTest, FetchLatencyIsBoundedUnloaded) {
  Env env;
  MonitorConfig cfg;
  cfg.scheme = GetParam();
  MonitorChannel chan(env.fabric, env.frontend, env.backend, cfg);
  MonitorSample sample;
  env.frontend.spawn("mon", [&](SimThread& self) -> Program {
    co_await SleepFor{msec(100)};
    co_await chan.frontend().fetch(self, sample);
  });
  env.simu.run_for(seconds(1));
  ASSERT_TRUE(sample.ok);
  // Unloaded, every scheme completes within 1ms.
  EXPECT_LT(sample.latency().ns, msec(1).ns);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, EverySchemeTest,
                         ::testing::ValuesIn(kAllSchemes),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

TEST(BackendThreads, RdmaSyncNeedsNoBackendThread) {
  Env env;
  MonitorConfig cfg;
  cfg.scheme = Scheme::RdmaSync;
  MonitorChannel chan(env.fabric, env.frontend, env.backend, cfg);
  env.simu.run_for(msec(10));
  EXPECT_EQ(env.backend.stats().nr_threads(), 0);
}

TEST(BackendThreads, SocketAsyncNeedsTwoBackendThreads) {
  Env env;
  MonitorConfig cfg;
  cfg.scheme = Scheme::SocketAsync;
  MonitorChannel chan(env.fabric, env.frontend, env.backend, cfg);
  env.simu.run_for(msec(10));
  EXPECT_EQ(env.backend.stats().nr_threads(), 2);
}

TEST(BackendThreads, SocketSyncAndRdmaAsyncNeedOneThread) {
  {
    Env env;
    MonitorConfig cfg;
    cfg.scheme = Scheme::SocketSync;
    MonitorChannel chan(env.fabric, env.frontend, env.backend, cfg);
    env.simu.run_for(msec(10));
    EXPECT_EQ(env.backend.stats().nr_threads(), 1);
  }
  {
    Env env;
    MonitorConfig cfg;
    cfg.scheme = Scheme::RdmaAsync;
    MonitorChannel chan(env.fabric, env.frontend, env.backend, cfg);
    env.simu.run_for(msec(10));
    EXPECT_EQ(env.backend.stats().nr_threads(), 1);
  }
}

TEST(BackendThreads, StopKillsDaemons) {
  Env env;
  MonitorConfig cfg;
  cfg.scheme = Scheme::SocketAsync;
  MonitorChannel chan(env.fabric, env.frontend, env.backend, cfg);
  env.simu.run_for(msec(10));
  chan.backend().stop();
  EXPECT_EQ(env.backend.stats().nr_threads(), 0);
}

TEST(Staleness, AsyncSchemesAreStaleByUpToT) {
  // RDMA-Async data is written every T=50ms; a fetch in between returns
  // data computed at the last update.
  Env env;
  MonitorConfig cfg;
  cfg.scheme = Scheme::RdmaAsync;
  cfg.period = msec(50);
  MonitorChannel chan(env.fabric, env.frontend, env.backend, cfg);
  sim::OnlineStats staleness_ms;
  env.frontend.spawn("mon", [&](SimThread& self) -> Program {
    for (int i = 0; i < 40; ++i) {
      co_await SleepFor{msec(13)};  // deliberately out of phase with T
      MonitorSample s;
      co_await chan.frontend().fetch(self, s);
      if (s.ok) staleness_ms.add(s.staleness().millis());
    }
  });
  env.simu.run_for(seconds(2));
  ASSERT_GT(staleness_ms.count(), 10u);
  EXPECT_GT(staleness_ms.mean(), 5.0);   // typically ~T/2
  EXPECT_LT(staleness_ms.max(), 60.0);   // never older than ~T
}

TEST(Staleness, RdmaSyncIsFreshAtDmaInstant) {
  Env env;
  MonitorConfig cfg;
  cfg.scheme = Scheme::RdmaSync;
  MonitorChannel chan(env.fabric, env.frontend, env.backend, cfg);
  sim::OnlineStats staleness_us;
  env.frontend.spawn("mon", [&](SimThread& self) -> Program {
    for (int i = 0; i < 20; ++i) {
      co_await SleepFor{msec(13)};
      MonitorSample s;
      co_await chan.frontend().fetch(self, s);
      if (s.ok) staleness_us.add(s.staleness().micros());
    }
  });
  env.simu.run_for(seconds(2));
  ASSERT_GT(staleness_us.count(), 10u);
  // Staleness is only the response flight time: microseconds.
  EXPECT_LT(staleness_us.max(), 100.0);
}

TEST(Latency, SocketDegradesUnderLoadRdmaDoesNot) {
  // Fig 3 in miniature, through the real monitoring stack.
  auto mean_latency_ms = [](Scheme scheme, int bg_threads) {
    Env env;
    if (bg_threads > 0) env.add_background(bg_threads);
    MonitorConfig cfg;
    cfg.scheme = scheme;
    MonitorChannel chan(env.fabric, env.frontend, env.backend, cfg);
    sim::OnlineStats lat_ms;
    env.frontend.spawn("mon", [&](SimThread& self) -> Program {
      for (int i = 0; i < 30; ++i) {
        co_await SleepFor{msec(50)};
        MonitorSample s;
        co_await chan.frontend().fetch(self, s);
        if (s.ok) lat_ms.add(s.latency().millis());
      }
    });
    env.simu.run_for(seconds(3));
    return lat_ms.mean();
  };
  const double sock_idle = mean_latency_ms(Scheme::SocketSync, 0);
  const double sock_loaded = mean_latency_ms(Scheme::SocketSync, 8);
  const double rdma_idle = mean_latency_ms(Scheme::RdmaSync, 0);
  const double rdma_loaded = mean_latency_ms(Scheme::RdmaSync, 8);
  EXPECT_GT(sock_loaded, sock_idle * 3);
  EXPECT_NEAR(rdma_loaded, rdma_idle, rdma_idle * 0.1);
}

TEST(Accuracy, RdmaSyncTracksThreadCountExactly) {
  // Fig 5a in miniature: a load ramp on the back end; RDMA-Sync reports
  // the kernel's nr_running exactly (modulo the microsecond DMA flight),
  // while Socket-Async reports values up to T stale.
  auto mean_dev = [](Scheme scheme) {
    Env env;
    MonitorConfig cfg;
    cfg.scheme = scheme;
    cfg.period = msec(50);
    MonitorChannel chan(env.fabric, env.frontend, env.backend, cfg);
    // Load ramp: add a hog every 100ms.
    for (int i = 0; i < 10; ++i) {
      env.simu.after(msec(100 * (i + 1)), [&env] { env.add_hogs(1); });
    }
    AccuracyTracker acc;
    env.frontend.spawn("mon", [&](SimThread& self) -> Program {
      for (int i = 0; i < 50; ++i) {
        co_await SleepFor{msec(23)};
        MonitorSample s;
        co_await chan.frontend().fetch(self, s);
        acc.record(s, chan.frontend().ground_truth());
      }
    });
    env.simu.run_for(seconds(2));
    return acc.nr_running_deviation().mean();
  };
  const double rdma_sync_dev = mean_dev(Scheme::RdmaSync);
  const double socket_async_dev = mean_dev(Scheme::SocketAsync);
  EXPECT_LT(rdma_sync_dev, 0.05);
  EXPECT_GT(socket_async_dev, rdma_sync_dev);
}

TEST(Accuracy, TrackerIgnoresFailedSamples) {
  AccuracyTracker acc;
  MonitorSample bad;  // ok == false
  acc.record(bad, os::LoadSnapshot{});
  EXPECT_EQ(acc.nr_running_deviation().count(), 0u);
}

}  // namespace
}  // namespace rdmamon::monitor
