// The scatter-gather monitoring plane: shared-CQ demux + centralized
// stale-completion handling, batched multi-READ posting, the
// issue/complete split on FrontendMonitor, and the ScatterFetcher round
// engine. The load-bearing property is PARITY: a scatter round must reach
// the same per-backend verdicts (ok/error/attempts, health transitions)
// as the sequential sweep — only the calendar time may differ.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "lb/balancer.hpp"
#include "monitor/monitor.hpp"
#include "monitor/scatter.hpp"
#include "net/fabric.hpp"
#include "net/nic.hpp"
#include "net/verbs.hpp"
#include "os/node.hpp"
#include "sim/simulation.hpp"
#include "web/cluster.hpp"

namespace rdmamon {
namespace {

using monitor::FetchError;
using monitor::FrontendMonitor;
using monitor::MonitorConfig;
using monitor::MonitorSample;
using monitor::Scheme;
using os::Program;
using os::SimThread;
using sim::msec;
using sim::seconds;
using sim::usec;

MonitorConfig fast_cfg(Scheme scheme, sim::Duration timeout = msec(5)) {
  MonitorConfig cfg;
  cfg.scheme = scheme;
  cfg.fetch_timeout = timeout;
  cfg.fetch_retries = 2;
  cfg.retry_backoff = msec(2);
  return cfg;
}

// --- CompletionQueue: demux + centralized stale handling ---------------------

TEST(CompletionQueue, AllocWrIdIsUniqueAndMonotonic) {
  net::CompletionQueue cq;
  const std::uint64_t a = cq.alloc_wr_id();
  const std::uint64_t b = cq.alloc_wr_id();
  EXPECT_NE(a, b);
  EXPECT_GT(b, a);
}

TEST(CompletionQueue, TryPopFiltersByWrIdLeavingOthersQueued) {
  net::CompletionQueue cq;
  cq.push({.wr_id = 1});
  cq.push({.wr_id = 2});
  cq.push({.wr_id = 3});
  net::Completion c;
  ASSERT_TRUE(cq.try_pop(2, c));
  EXPECT_EQ(c.wr_id, 2u);
  EXPECT_EQ(cq.size(), 2u);
  EXPECT_NE(cq.find(1), nullptr);
  EXPECT_NE(cq.find(3), nullptr);
  EXPECT_EQ(cq.find(2), nullptr);
  EXPECT_FALSE(cq.try_pop(2, c));
}

TEST(CompletionQueue, ForgetDropsQueuedCompletionImmediately) {
  net::CompletionQueue cq;
  cq.push({.wr_id = 7});
  cq.forget(7);
  EXPECT_TRUE(cq.empty());
  net::Completion c;
  EXPECT_FALSE(cq.try_pop(7, c));
}

TEST(CompletionQueue, ForgetDropsInFlightCompletionOnArrival) {
  net::CompletionQueue cq;
  cq.forget(9);
  cq.push({.wr_id = 9});  // the late completion of an abandoned WR
  EXPECT_TRUE(cq.empty());
  // The filter is one-shot: a later WR reusing nothing — a fresh id —
  // still lands, and so would a (never-issued) reuse of 9.
  cq.push({.wr_id = 9});
  EXPECT_EQ(cq.size(), 1u);
}

// --- batched posting ---------------------------------------------------------

struct RdmaEnv {
  sim::Simulation simu;
  net::Fabric fabric{simu, {}};
  os::Node frontend{simu, {.name = "frontend"}};
  std::vector<std::unique_ptr<os::Node>> backends;
  std::vector<net::MrKey> keys;

  explicit RdmaEnv(int n) {
    fabric.attach(frontend);
    for (int i = 0; i < n; ++i) {
      os::NodeConfig cfg;
      cfg.name = "backend" + std::to_string(i);
      backends.push_back(std::make_unique<os::Node>(simu, cfg));
      fabric.attach(*backends.back());
      keys.push_back(fabric.nic(backends.back()->id)
                         .register_mr(256, [node = backends.back().get()] {
                           return std::any(node->procfs().snapshot_dma());
                         }));
    }
  }
};

TEST(PostReadBatch, OneQpChainCompletesEveryWr) {
  RdmaEnv env(1);
  net::CompletionQueue cq;
  net::QueuePair qp(env.fabric.nic(env.frontend.id), env.backends[0]->id, cq);
  std::vector<net::ReadWr> wrs;
  for (std::uint64_t i = 0; i < 4; ++i) {
    wrs.push_back({env.keys[0], 256, cq.alloc_wr_id()});
  }
  env.frontend.spawn("poster", [&](SimThread& self) -> Program {
    co_await os::Compute{net::kDoorbellCost};
    qp.post_read_batch(wrs);
  });
  env.simu.run_for(msec(10));
  ASSERT_EQ(cq.size(), 4u);
  for (const net::ReadWr& wr : wrs) {
    const net::Completion* c = cq.find(wr.wr_id);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->status, net::WcStatus::Success);
  }
}

TEST(PostReadBatch, CrossQpBatchSharesOneCqAndOneDoorbell) {
  RdmaEnv env(3);
  net::CompletionQueue cq;
  std::vector<std::unique_ptr<net::QueuePair>> qps;
  std::vector<net::ReadBatchEntry> batch;
  for (int i = 0; i < 3; ++i) {
    qps.push_back(std::make_unique<net::QueuePair>(
        env.fabric.nic(env.frontend.id), env.backends[i]->id, cq));
    batch.push_back({qps.back().get(), env.keys[i], 256, cq.alloc_wr_id()});
  }
  sim::Duration issue_time{};
  env.frontend.spawn("poster", [&](SimThread& self) -> Program {
    const sim::TimePoint t0 = env.simu.now();
    co_await net::post_read_batch(self, batch);
    issue_time = env.simu.now() - t0;
  });
  env.simu.run_for(msec(10));
  // One doorbell for the whole cross-QP chain (plus tick rounding slop).
  EXPECT_LT(issue_time.ns, 3 * net::kDoorbellCost.ns);
  ASSERT_EQ(cq.size(), 3u);
  for (const net::ReadBatchEntry& e : batch) {
    ASSERT_NE(cq.find(e.wr_id), nullptr);
    EXPECT_EQ(cq.find(e.wr_id)->status, net::WcStatus::Success);
  }
}

// --- ScatterFetcher rounds ---------------------------------------------------

struct ChannelEnv {
  sim::Simulation simu;
  net::Fabric fabric{simu, {}};
  os::Node frontend{simu, {.name = "frontend"}};
  std::vector<std::unique_ptr<os::Node>> backends;
  std::vector<std::unique_ptr<monitor::MonitorChannel>> channels;

  ChannelEnv(const std::vector<MonitorConfig>& cfgs) {
    fabric.attach(frontend);
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
      os::NodeConfig cfg;
      cfg.name = "backend" + std::to_string(i);
      backends.push_back(std::make_unique<os::Node>(simu, cfg));
      fabric.attach(*backends.back());
      channels.push_back(std::make_unique<monitor::MonitorChannel>(
          fabric, frontend, *backends.back(), cfgs[i]));
    }
  }
};

class SchemeRoundTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(SchemeRoundTest, AllOkRoundFetchesEveryBackendInOneAttempt) {
  ChannelEnv env(std::vector<MonitorConfig>(4, fast_cfg(GetParam())));
  monitor::ScatterFetcher scatter;
  for (auto& ch : env.channels) scatter.add(ch->frontend());
  std::vector<MonitorSample> samples;
  sim::Duration round_time{};
  env.frontend.spawn("poller", [&](SimThread& self) -> Program {
    co_await os::SleepFor{msec(60)};  // let async daemons publish once
    const sim::TimePoint t0 = env.simu.now();
    co_await scatter.round_all(self, samples);
    round_time = env.simu.now() - t0;
  });
  env.simu.run_for(seconds(1));
  ASSERT_EQ(samples.size(), 4u);
  for (const MonitorSample& s : samples) {
    EXPECT_TRUE(s.ok) << monitor::to_string(GetParam());
    EXPECT_EQ(s.error, FetchError::None);
    EXPECT_EQ(s.attempts, 1);
    EXPECT_GE(s.retrieved_at.ns, s.requested_at.ns);
  }
  // Concurrency: the round is far below 4x a single fetch (sub-ms for
  // RDMA, sub-200us-per-target overlap for sockets).
  EXPECT_LT(round_time.ns, msec(1).ns) << monitor::to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllTransports, SchemeRoundTest,
                         ::testing::ValuesIn(monitor::kTransportSchemes),
                         [](const auto& info) {
                           std::string n = monitor::to_string(info.param);
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

TEST(ScatterRound, FailuresOverlapInsteadOfSerializing) {
  // Three crashed back ends, one alive: the round costs ~one bounded
  // fetch (~21ms), not three of them back to back.
  std::vector<MonitorConfig> cfgs(4, fast_cfg(Scheme::SocketSync));
  ChannelEnv env(cfgs);
  for (int i = 1; i < 4; ++i) env.fabric.inject_crash(env.backends[i]->id);
  monitor::ScatterFetcher scatter;
  for (auto& ch : env.channels) scatter.add(ch->frontend());
  std::vector<MonitorSample> samples;
  sim::Duration round_time{};
  env.frontend.spawn("poller", [&](SimThread& self) -> Program {
    const sim::TimePoint t0 = env.simu.now();
    co_await scatter.round_all(self, samples);
    round_time = env.simu.now() - t0;
  });
  env.simu.run_for(seconds(1));
  EXPECT_TRUE(samples[0].ok);
  for (int i = 1; i < 4; ++i) {
    EXPECT_FALSE(samples[static_cast<std::size_t>(i)].ok);
    EXPECT_EQ(samples[static_cast<std::size_t>(i)].attempts, 3);
  }
  // Sequential would need ~3 x 21ms; concurrent resolution stays near one.
  EXPECT_LT(round_time.ns, msec(30).ns);
}

TEST(ScatterRound, MixedOutcomesMatchSequentialVerdictsExactly) {
  // The ISSUE's parity scenario: one back end whose short fetch_timeout
  // expires before the RC retry budget (Timeout), one whose longer
  // timeout lets the transport error-complete first (Transport), the
  // rest healthy. Scatter and sequential must reach identical
  // (ok, error, attempts) per back end.
  auto build_cfgs = [] {
    std::vector<MonitorConfig> cfgs(5, fast_cfg(Scheme::RdmaSync));
    // RC retry budget (fail_after_retries) error-completes at ~4ms.
    cfgs[1] = fast_cfg(Scheme::RdmaSync, msec(2));  // gives up first: Timeout
    cfgs[3] = fast_cfg(Scheme::RdmaSync, msec(6));  // hears the NIC: Transport
    return cfgs;
  };
  auto run = [&](bool scatter_mode) {
    ChannelEnv env(build_cfgs());
    env.fabric.inject_crash(env.backends[1]->id);
    env.fabric.inject_crash(env.backends[3]->id);
    monitor::ScatterFetcher scatter;
    for (auto& ch : env.channels) scatter.add(ch->frontend());
    std::vector<MonitorSample> samples(env.channels.size());
    env.frontend.spawn("poller", [&](SimThread& self) -> Program {
      if (scatter_mode) {
        co_await scatter.round_all(self, samples);
      } else {
        for (std::size_t i = 0; i < env.channels.size(); ++i) {
          co_await env.channels[i]->frontend().fetch(self, samples[i]);
        }
      }
    });
    env.simu.run_for(seconds(1));
    return samples;
  };
  const std::vector<MonitorSample> scat = run(true);
  const std::vector<MonitorSample> seq = run(false);
  ASSERT_EQ(scat.size(), seq.size());
  for (std::size_t i = 0; i < scat.size(); ++i) {
    EXPECT_EQ(scat[i].ok, seq[i].ok) << i;
    EXPECT_EQ(scat[i].error, seq[i].error) << i;
    EXPECT_EQ(scat[i].attempts, seq[i].attempts) << i;
  }
  EXPECT_EQ(scat[1].error, FetchError::Timeout);
  EXPECT_EQ(scat[1].attempts, 3);
  EXPECT_EQ(scat[3].error, FetchError::Transport);
  EXPECT_EQ(scat[3].attempts, 3);
  for (const std::size_t i : {0u, 2u, 4u}) {
    EXPECT_TRUE(scat[i].ok);
    EXPECT_EQ(scat[i].attempts, 1);
  }
}

TEST(ScatterRound, FastPathVerdictsMatchDedicatedUnderCrash) {
  // The verbs fast path (shared contexts + signal-every-k + CQ
  // moderation) may only change what a round COSTS, never what it
  // REPORTS: crash two of six targets and require per-backend verdicts
  // identical to the dedicated-context engine, and the fast path
  // deterministic against itself.
  auto run = [](bool fast) {
    sim::Simulation simu;
    net::Fabric fabric(simu, {});
    os::Node frontend(simu, {.name = "frontend"});
    fabric.attach(frontend);
    net::VerbsTuning vt;
    if (fast) {
      vt.signal_every = 4;
      vt.shared_contexts = 2;
      vt.cq_mod_count = 4;
    }
    const auto pool = net::make_context_pool(fabric.nic(frontend.id), vt);
    std::vector<std::unique_ptr<os::Node>> backends;
    std::vector<std::unique_ptr<monitor::MonitorChannel>> channels;
    for (int i = 0; i < 6; ++i) {
      os::NodeConfig cfg;
      cfg.name = "backend" + std::to_string(i);
      backends.push_back(std::make_unique<os::Node>(simu, cfg));
      fabric.attach(*backends.back());
      channels.push_back(std::make_unique<monitor::MonitorChannel>(
          fabric, frontend, *backends.back(), fast_cfg(Scheme::RdmaSync),
          pool.empty() ? nullptr
                       : pool[static_cast<std::size_t>(i) % pool.size()]));
    }
    monitor::ScatterFetcher scatter;
    for (auto& ch : channels) scatter.add(ch->frontend());
    if (fast) {
      scatter.cq().bind_moderation(simu, vt.cq_mod_count, vt.cq_mod_period);
    }
    fabric.inject_crash(backends[1]->id);
    fabric.inject_crash(backends[4]->id);
    std::vector<MonitorSample> samples;
    frontend.spawn("poller", [&](SimThread& self) -> Program {
      co_await scatter.round_all(self, samples);
    });
    simu.run_for(seconds(1));
    std::string out;
    for (const MonitorSample& s : samples) {
      out += s.ok ? "ok:" : "fail:";
      out += std::to_string(s.attempts);
      out += ' ';
    }
    return out;
  };
  const std::string fast_verdicts = run(true);
  EXPECT_EQ(fast_verdicts, run(true));   // deterministic replay
  EXPECT_EQ(fast_verdicts, run(false));  // parity with the plain engine
  EXPECT_NE(fast_verdicts.find("fail"), std::string::npos);
}

// --- LoadBalancer on the engine ----------------------------------------------

struct LbEnv {
  static constexpr int kBackends = 3;
  sim::Simulation simu;
  net::Fabric fabric{simu, {}};
  os::Node frontend{simu, {.name = "frontend"}};
  std::vector<std::unique_ptr<os::Node>> backends;
  lb::LoadBalancer lb{lb::WeightConfig::for_scheme(Scheme::RdmaSync)};

  LbEnv(Scheme scheme, lb::PollMode mode, lb::HealthConfig hc = {}) {
    fabric.attach(frontend);
    lb.set_health_config(hc);
    lb.set_poll_mode(mode);
    for (int i = 0; i < kBackends; ++i) {
      os::NodeConfig cfg;
      cfg.name = "backend" + std::to_string(i);
      backends.push_back(std::make_unique<os::Node>(simu, cfg));
      fabric.attach(*backends.back());
      lb.add_backend(std::make_unique<monitor::MonitorChannel>(
          fabric, frontend, *backends.back(), fast_cfg(scheme)));
    }
    lb.start(frontend, msec(10));
  }
};

TEST(PollModeParity, HealthTransitionsMatchAcrossModes) {
  // Crash -> recover one back end; both poll modes must walk the same
  // health transition sequence for every back end.
  auto run = [](lb::PollMode mode) {
    LbEnv env(Scheme::RdmaSync, mode);
    std::vector<std::string> trace;
    env.lb.on_health_change([&](int b, lb::BackendHealth h) {
      trace.push_back(std::to_string(b) + ":" + lb::to_string(h));
    });
    const int victim_node = env.backends[1]->id;
    env.simu.at(sim::TimePoint{msec(50).ns},
                [&] { env.fabric.inject_crash(victim_node); });
    env.simu.at(sim::TimePoint{msec(400).ns},
                [&] { env.fabric.inject_recover(victim_node); });
    env.simu.run_for(seconds(1));
    trace.push_back("final:" +
                    std::string(lb::to_string(env.lb.health_of(1))));
    return trace;
  };
  const auto scatter = run(lb::PollMode::Scatter);
  const auto sequential = run(lb::PollMode::Sequential);
  EXPECT_EQ(scatter, sequential);
  ASSERT_GE(scatter.size(), 4u);
  EXPECT_EQ(scatter[0], "1:suspect");
  EXPECT_EQ(scatter[1], "1:dead");
  EXPECT_EQ(scatter[2], "1:healthy");
  EXPECT_EQ(scatter.back(), "final:healthy");
}

TEST(DeadProbeCadence, DeadBackendIsProbedEveryNthRoundOnly) {
  // Once Dead, the victim is fetched only every dead_probe_every rounds,
  // so failures accrue ~8x slower than with per-round probing.
  auto failures_in_window = [](int dead_probe_every) {
    lb::HealthConfig hc;
    hc.dead_probe_every = dead_probe_every;
    LbEnv env(Scheme::RdmaSync, lb::PollMode::Scatter, hc);
    env.fabric.inject_crash(env.backends[1]->id);
    env.simu.run_for(msec(200));  // long past detection
    const std::uint64_t at_dead = env.lb.fetch_failures();
    EXPECT_EQ(env.lb.health_of(1), lb::BackendHealth::Dead);
    env.simu.run_for(msec(400));
    return env.lb.fetch_failures() - at_dead;
  };
  const std::uint64_t slow = failures_in_window(8);
  const std::uint64_t fast = failures_in_window(1);
  // ~40 rounds fit the window at 10ms granularity; cadence 8 probes ~5x.
  EXPECT_GE(slow, 2u);
  EXPECT_LE(slow, 8u);
  EXPECT_GE(fast, 3 * slow);
}

TEST(Determinism, ScatterClusterRunWithRandomFaultPlanReplaysExactly) {
  // The engine's event interleavings (batched posts, shared-CQ wakeups,
  // per-slot timers) must replay bit-for-bit under a random fault plan.
  auto run = [](Scheme scheme) {
    sim::Simulation simu;
    web::ClusterConfig cfg;
    cfg.backends = 3;
    cfg.scheme = scheme;
    cfg.lb_poll_mode = lb::PollMode::Scatter;
    cfg.fetch_timeout = msec(10);
    cfg.fetch_retries = 1;
    cfg.retry_backoff = msec(2);
    cfg.seed = 777;
    web::ClusterTestbed bed(simu, cfg);
    web::ClientGroupConfig ccfg;
    ccfg.threads_per_node = 4;
    web::ClientGroup& g =
        bed.add_clients(1, web::make_rubis_generator(), ccfg);

    sim::Rng fault_rng(55);
    fault::FaultPlan plan =
        fault::FaultPlan::random(fault_rng, bed.fabric().num_nodes(),
                                 seconds(2), /*pairs=*/4);
    fault::FaultInjector inj(bed.fabric());
    inj.arm(plan);
    simu.run_for(seconds(2));

    std::string out = plan.describe();
    out += "completed=" + std::to_string(g.stats().completed());
    out += " rejected=" + std::to_string(g.stats().rejected());
    out += " forwarded=" + std::to_string(bed.dispatcher().forwarded());
    out += " fetch_failures=" + std::to_string(bed.balancer().fetch_failures());
    for (int b = 0; b < cfg.backends; ++b) {
      out += ' ';
      out += lb::to_string(bed.balancer().health_of(b));
    }
    return out;
  };
  for (const Scheme scheme : {Scheme::RdmaSync, Scheme::SocketSync}) {
    EXPECT_EQ(run(scheme), run(scheme)) << monitor::to_string(scheme);
  }
}

}  // namespace
}  // namespace rdmamon
