// Fault-injection scenarios: the failure semantics of every monitoring
// transport (crash / freeze / link degradation), the front end's bounded
// fetch (timeout + retry/backoff), the balancer's failure detector, and
// the dispatcher's failover path. The headline case is the paper's: a
// back end whose kernel hangs stops answering socket probes, but its NIC
// keeps serving one-sided RDMA READs.
#include <gtest/gtest.h>

#include <algorithm>
#include <any>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/scaleout.hpp"
#include "fault/fault.hpp"
#include "lb/balancer.hpp"
#include "monitor/monitor.hpp"
#include "net/fabric.hpp"
#include "net/nic.hpp"
#include "net/verbs.hpp"
#include "os/node.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "web/cluster.hpp"
#include "workload/tenantstorm.hpp"

namespace rdmamon {
namespace {

using monitor::FetchError;
using monitor::MonitorConfig;
using monitor::MonitorSample;
using monitor::Scheme;
using os::Program;
using os::SimThread;
using sim::msec;
using sim::seconds;
using sim::usec;

/// Fast-failing monitor tuning so fault tests stay short: a full fetch
/// (1 try + 2 retries with 2/4 ms backoff) resolves within ~21 ms.
MonitorConfig fast_cfg(Scheme scheme) {
  MonitorConfig cfg;
  cfg.scheme = scheme;
  cfg.fetch_timeout = msec(5);
  cfg.fetch_retries = 2;
  cfg.retry_backoff = msec(2);
  return cfg;
}

struct Env {
  sim::Simulation simu;
  net::Fabric fabric{simu, {}};
  os::Node frontend{simu, {.name = "frontend"}};
  os::Node backend{simu, {.name = "backend"}};

  Env() {
    fabric.attach(frontend);  // id 0
    fabric.attach(backend);   // id 1
  }
};

// --- crash: every scheme fails fast, nothing hangs ---------------------------

class CrashSchemeTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(CrashSchemeTest, FetchAgainstCrashedBackendResolvesQuickly) {
  Env env;
  monitor::MonitorChannel chan(env.fabric, env.frontend, env.backend,
                               fast_cfg(GetParam()));
  env.simu.at(sim::TimePoint{msec(49).ns},
              [&] { env.fabric.inject_crash(env.backend.id); });
  MonitorSample sample;
  sim::Duration resolve_time{};
  bool resolved = false;
  env.frontend.spawn("mon", [&](SimThread& self) -> Program {
    co_await os::SleepFor{msec(50)};
    const sim::TimePoint t0 = env.simu.now();
    co_await chan.frontend().fetch(self, sample);
    resolve_time = env.simu.now() - t0;
    resolved = true;
  });
  env.simu.run_for(seconds(2));
  ASSERT_TRUE(resolved);
  EXPECT_FALSE(sample.ok);
  EXPECT_NE(sample.error, FetchError::None);
  EXPECT_EQ(sample.attempts, 3);  // 1 try + fetch_retries
  // Bound: 3 attempts x 5ms timeout + 2ms + 4ms backoff, plus stack costs.
  EXPECT_LT(resolve_time.ns, msec(30).ns);
  EXPECT_EQ(sample.latency(), resolve_time);
}

INSTANTIATE_TEST_SUITE_P(AllTransports, CrashSchemeTest,
                         ::testing::ValuesIn(monitor::kTransportSchemes),
                         [](const auto& info) {
                           std::string n = monitor::to_string(info.param);
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

TEST(Crash, RdmaErrorCompletesAsTransportSocketAsTimeout) {
  // The RC transport error-completes a READ against a dead peer after the
  // retry budget (a signal!), while the socket path just hears silence.
  for (const Scheme scheme : {Scheme::RdmaSync, Scheme::SocketSync}) {
    Env env;
    monitor::MonitorChannel chan(env.fabric, env.frontend, env.backend,
                                 fast_cfg(scheme));
    env.fabric.inject_crash(env.backend.id);
    MonitorSample sample;
    env.frontend.spawn("mon", [&](SimThread& self) -> Program {
      co_await os::SleepFor{msec(10)};
      co_await chan.frontend().fetch(self, sample);
    });
    env.simu.run_for(seconds(1));
    ASSERT_FALSE(sample.ok) << monitor::to_string(scheme);
    EXPECT_EQ(sample.error, scheme == Scheme::RdmaSync
                                ? FetchError::Transport
                                : FetchError::Timeout);
  }
}

TEST(Crash, RecoveredBackendAnswersAgain) {
  Env env;
  monitor::MonitorChannel chan(env.fabric, env.frontend, env.backend,
                               fast_cfg(Scheme::RdmaSync));
  fault::FaultInjector inj(env.fabric);
  fault::FaultPlan plan;
  plan.crash_for(env.backend.id, sim::TimePoint{msec(40).ns}, msec(100));
  inj.arm(plan);
  MonitorSample during, after;
  env.frontend.spawn("mon", [&](SimThread& self) -> Program {
    co_await os::SleepFor{msec(50)};
    co_await chan.frontend().fetch(self, during);
    co_await os::SleepFor{msec(150)};  // past the recovery at t=140ms
    co_await chan.frontend().fetch(self, after);
  });
  env.simu.run_for(seconds(1));
  EXPECT_FALSE(during.ok);
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.error, FetchError::None);
  EXPECT_EQ(after.attempts, 1);
  EXPECT_EQ(inj.injected(), 2u);
}

// --- freeze: the paper's one-sided-monitoring claim --------------------------

TEST(Freeze, RdmaSyncAnswersWhileSocketSyncTimesOut) {
  // Hung kernel, NIC alive: socket probes need the host to schedule the
  // reporting thread (it can't — no interrupt servicing), the one-sided
  // READ is served entirely by the NIC's DMA engine.
  Env env;
  monitor::MonitorChannel rdma(env.fabric, env.frontend, env.backend,
                               fast_cfg(Scheme::RdmaSync));
  monitor::MonitorChannel sock(env.fabric, env.frontend, env.backend,
                               fast_cfg(Scheme::SocketSync));
  env.simu.at(sim::TimePoint{msec(40).ns},
              [&] { env.fabric.inject_freeze(env.backend.id); });
  env.simu.at(sim::TimePoint{msec(300).ns},
              [&] { env.fabric.inject_unfreeze(env.backend.id); });
  MonitorSample rdma_frozen, sock_frozen, sock_thawed;
  env.frontend.spawn("mon", [&](SimThread& self) -> Program {
    co_await os::SleepFor{msec(50)};
    co_await rdma.frontend().fetch(self, rdma_frozen);
    co_await sock.frontend().fetch(self, sock_frozen);
    co_await os::SleepFor{msec(300)};  // well past the unfreeze
    co_await sock.frontend().fetch(self, sock_thawed);
  });
  env.simu.run_for(seconds(1));
  ASSERT_TRUE(rdma_frozen.ok);
  EXPECT_EQ(rdma_frozen.attempts, 1);
  EXPECT_LT(rdma_frozen.latency().ns, msec(1).ns);
  ASSERT_FALSE(sock_frozen.ok);
  EXPECT_EQ(sock_frozen.error, FetchError::Timeout);
  EXPECT_EQ(sock_frozen.attempts, 3);
  // Un-hung host drains the held requests and serves new ones again.
  ASSERT_TRUE(sock_thawed.ok);
  EXPECT_EQ(sock_thawed.attempts, 1);
}

// --- link degradation: retries win through loss ------------------------------

TEST(LinkFault, RetriesSurviveALossyDegradedLink) {
  Env env;
  MonitorConfig cfg = fast_cfg(Scheme::SocketSync);
  cfg.fetch_retries = 6;  // generous budget against 40% loss
  monitor::MonitorChannel chan(env.fabric, env.frontend, env.backend, cfg);
  env.fabric.inject_link_fault(env.backend.id, usec(200), 0.4);
  int okay = 0, total = 0;
  sim::OnlineStats attempts;
  env.frontend.spawn("mon", [&](SimThread& self) -> Program {
    for (int i = 0; i < 25; ++i) {
      co_await os::SleepFor{msec(10)};
      MonitorSample s;
      co_await chan.frontend().fetch(self, s);
      ++total;
      if (s.ok) ++okay;
      attempts.add(s.attempts);
    }
  });
  env.simu.run_for(seconds(5));
  EXPECT_EQ(total, 25);
  // P(all 7 attempts lose a packet) is tiny; the vast majority succeed.
  EXPECT_GE(okay, 20);
  // The loss actually bit: some fetches needed more than one attempt.
  EXPECT_GT(attempts.max(), 1.0);
}

// --- selective signaling under faults ----------------------------------------
//
// An unsignaled WR relies on a LATER completion to prove it retired; these
// scenarios kill the peer at every point of that dependency and check the
// chain still resolves deterministically — error-complete or forget, never
// a leaked shadow slot, never a hang.

TEST(VerbsFault, CrashBeforeUnsignaledWrsErrorCompletesEveryOne) {
  // Peer dead before anything lands: all four unsignaled WRs must
  // individually error-complete (RC generates error CQEs regardless of
  // the signal flag) — none may sit in the shadow buffer waiting for a
  // closer that cannot come.
  Env env;
  net::MrKey key =
      env.fabric.nic(1).register_mr(64, [] { return std::any(1); });
  net::CompletionQueue cq;
  auto ctx = std::make_shared<net::QpContext>(env.fabric.nic(0),
                                              /*signal_every=*/8);
  net::QueuePair qp(env.fabric.nic(0), env.backend.id, cq, ctx);
  env.fabric.inject_crash(env.backend.id);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(cq.alloc_wr_id());
  for (const std::uint64_t id : ids) {
    qp.post_read(key, 64, id, /*force_signal=*/false);
  }
  env.simu.run_for(seconds(1));
  net::Completion c;
  for (const std::uint64_t id : ids) {
    ASSERT_TRUE(cq.try_pop(id, c));
    EXPECT_EQ(c.status, net::WcStatus::RetryExceeded);
  }
  EXPECT_EQ(cq.shadowed(), 0u);
}

TEST(VerbsFault, CrashBetweenUnsignaledWrAndCloserStillReleasesIt) {
  // The nasty interleaving: WR A lands (success, unsignaled, shadowed),
  // THEN the peer dies, THEN the signaled closer B is posted into the
  // void. B's error completion must still prove A retired — A surfaces
  // as the success it was, B carries the transport error.
  Env env;
  net::MrKey key =
      env.fabric.nic(1).register_mr(64, [] { return std::any(7); });
  net::CompletionQueue cq;
  auto ctx = std::make_shared<net::QpContext>(env.fabric.nic(0),
                                              /*signal_every=*/16);
  net::QueuePair qp(env.fabric.nic(0), env.backend.id, cq, ctx);
  const std::uint64_t a = cq.alloc_wr_id();
  qp.post_read(key, 64, a, /*force_signal=*/false);
  env.simu.run_for(msec(5));
  ASSERT_EQ(cq.shadowed(), 1u);  // A is held awaiting a closer
  env.fabric.inject_crash(env.backend.id);
  const std::uint64_t b = cq.alloc_wr_id();
  qp.post_read(key, 64, b, /*force_signal=*/true);
  env.simu.run_for(seconds(1));
  net::Completion c;
  ASSERT_TRUE(cq.try_pop(a, c));
  EXPECT_EQ(c.status, net::WcStatus::Success);
  EXPECT_EQ(std::any_cast<int>(c.data), 7);
  ASSERT_TRUE(cq.try_pop(b, c));
  EXPECT_EQ(c.status, net::WcStatus::RetryExceeded);
  EXPECT_EQ(cq.shadowed(), 0u);
}

TEST(VerbsFault, ForgottenUnsignaledWrsNeverSurfaceAfterCrash) {
  // Consumer gives up mid-chain: one WR already shadowed (reclaimed on
  // the spot), one still in flight against the dead peer (dropped when
  // its error completion lands). Exactly one reclaim each, no ghosts.
  Env env;
  net::MrKey key =
      env.fabric.nic(1).register_mr(64, [] { return std::any(1); });
  net::CompletionQueue cq;
  auto ctx = std::make_shared<net::QpContext>(env.fabric.nic(0),
                                              /*signal_every=*/16);
  net::QueuePair qp(env.fabric.nic(0), env.backend.id, cq, ctx);
  const std::uint64_t a = cq.alloc_wr_id();
  qp.post_read(key, 64, a, /*force_signal=*/false);
  env.simu.run_for(msec(5));
  ASSERT_EQ(cq.shadowed(), 1u);
  env.fabric.inject_crash(env.backend.id);
  const std::uint64_t b = cq.alloc_wr_id();
  qp.post_read(key, 64, b, /*force_signal=*/false);
  cq.forget(a);  // shadowed: reclaimed immediately
  cq.forget(b);  // in flight: dropped on arrival
  EXPECT_EQ(cq.shadowed(), 0u);
  env.simu.run_for(seconds(1));
  EXPECT_TRUE(cq.empty());
  EXPECT_EQ(cq.stale_dropped(), 2u);
  net::Completion c;
  EXPECT_FALSE(cq.try_pop(a, c));
  EXPECT_FALSE(cq.try_pop(b, c));
}

// --- balancer failure detector ----------------------------------------------

struct LbEnv {
  static constexpr int kBackends = 3;
  sim::Simulation simu;
  net::Fabric fabric{simu, {}};
  os::Node frontend{simu, {.name = "frontend"}};
  std::vector<std::unique_ptr<os::Node>> backends;
  lb::LoadBalancer lb{lb::WeightConfig::for_scheme(Scheme::RdmaSync)};

  explicit LbEnv(Scheme scheme) {
    fabric.attach(frontend);
    for (int i = 0; i < kBackends; ++i) {
      os::NodeConfig cfg;
      cfg.name = "backend" + std::to_string(i);
      backends.push_back(std::make_unique<os::Node>(simu, cfg));
      fabric.attach(*backends.back());
      lb.add_backend(std::make_unique<monitor::MonitorChannel>(
          fabric, frontend, *backends.back(), fast_cfg(scheme)));
    }
    lb.start(frontend, msec(10));
  }
};

TEST(HealthDetector, DeadBackendLeavesRotationAndReturns) {
  LbEnv env(Scheme::RdmaSync);
  const int victim = 1;
  const int victim_node = env.backends[victim]->id;
  std::vector<std::pair<int, lb::BackendHealth>> transitions;
  env.lb.on_health_change([&](int b, lb::BackendHealth h) {
    transitions.emplace_back(b, h);
  });
  env.fabric.simu().at(sim::TimePoint{msec(50).ns},
                       [&] { env.fabric.inject_crash(victim_node); });

  env.simu.run_for(msec(400));
  EXPECT_EQ(env.lb.health_of(victim), lb::BackendHealth::Dead);
  EXPECT_EQ(env.lb.alive_backends(), LbEnv::kBackends - 1);
  EXPECT_GE(env.lb.fetch_failures(),
            static_cast<std::uint64_t>(env.lb.health_config().dead_after));
  for (int i = 0; i < 100; ++i) EXPECT_NE(env.lb.pick(), victim);

  env.fabric.inject_recover(victim_node);
  env.simu.run_for(msec(400));
  EXPECT_EQ(env.lb.health_of(victim), lb::BackendHealth::Healthy);
  EXPECT_EQ(env.lb.alive_backends(), LbEnv::kBackends);
  bool picked_again = false;
  for (int i = 0; i < 100 && !picked_again; ++i) {
    picked_again = env.lb.pick() == victim;
  }
  EXPECT_TRUE(picked_again);

  // Transition order: Suspect, then Dead, then (post-recovery) Healthy.
  std::vector<lb::BackendHealth> victim_states;
  for (const auto& [b, h] : transitions) {
    if (b == victim) victim_states.push_back(h);
  }
  ASSERT_EQ(victim_states.size(), 3u);
  EXPECT_EQ(victim_states[0], lb::BackendHealth::Suspect);
  EXPECT_EQ(victim_states[1], lb::BackendHealth::Dead);
  EXPECT_EQ(victim_states[2], lb::BackendHealth::Healthy);
}

TEST(HealthDetector, FrozenBackendStaysHealthyUnderRdmaSync) {
  // The detector sees only fetch outcomes — and under RDMA-Sync a frozen
  // back end still answers, so it (correctly) stays in rotation while a
  // socket-monitored cluster declares it dead.
  for (const Scheme scheme : {Scheme::RdmaSync, Scheme::SocketSync}) {
    LbEnv env(scheme);
    const int victim_node = env.backends[1]->id;
    env.fabric.simu().at(sim::TimePoint{msec(50).ns},
                         [&] { env.fabric.inject_freeze(victim_node); });
    env.simu.run_for(msec(400));
    if (scheme == Scheme::RdmaSync) {
      EXPECT_EQ(env.lb.health_of(1), lb::BackendHealth::Healthy);
      EXPECT_EQ(env.lb.fetch_failures(), 0u);
    } else {
      EXPECT_EQ(env.lb.health_of(1), lb::BackendHealth::Dead);
      EXPECT_GT(env.lb.fetch_failures(), 0u);
    }
  }
}

// --- dispatcher failover (whole-cluster) -------------------------------------

TEST(Failover, PendingRequestsAreRejectedAndRoutingResumesAfterRecovery) {
  sim::Simulation simu;
  web::ClusterConfig cfg;
  cfg.backends = 3;
  cfg.scheme = Scheme::RdmaSync;
  cfg.lb_granularity = msec(10);
  cfg.fetch_timeout = msec(5);
  cfg.fetch_retries = 1;
  cfg.retry_backoff = msec(1);
  cfg.seed = 7;
  web::ClusterTestbed bed(simu, cfg);
  web::ClientGroupConfig ccfg;
  ccfg.threads_per_node = 8;
  ccfg.think = msec(1);  // keep requests in flight at the crash instant
  web::ClientGroup& g = bed.add_clients(1, web::make_rubis_generator(), ccfg);

  fault::FaultInjector inj(bed.fabric());
  fault::FaultPlan plan;
  plan.crash_for(bed.backend(0).id, sim::TimePoint{msec(300).ns}, msec(400));
  inj.arm(plan);

  std::uint64_t fwd_at_500 = 0, fwd_at_700 = 0, fwd_at_900 = 0;
  lb::BackendHealth health_at_500 = lb::BackendHealth::Healthy;
  simu.at(sim::TimePoint{msec(500).ns}, [&] {
    fwd_at_500 = bed.dispatcher().per_backend()[0];
    health_at_500 = bed.balancer().health_of(0);
  });
  simu.at(sim::TimePoint{msec(700).ns},
          [&] { fwd_at_700 = bed.dispatcher().per_backend()[0]; });
  simu.at(sim::TimePoint{msec(900).ns},
          [&] { fwd_at_900 = bed.dispatcher().per_backend()[0]; });

  simu.run_for(seconds(2));

  // Detector fired and the dead window saw no new traffic to backend 0.
  EXPECT_EQ(health_at_500, lb::BackendHealth::Dead);
  EXPECT_EQ(fwd_at_500, fwd_at_700);
  // Pending requests were failed over as rejections the clients saw.
  EXPECT_GT(bed.dispatcher().failed_over(), 0u);
  EXPECT_EQ(g.stats().rejected(), bed.dispatcher().failed_over());
  // After recovery (t=700ms) backend 0 is re-admitted and serves again.
  EXPECT_EQ(bed.balancer().health_of(0), lb::BackendHealth::Healthy);
  EXPECT_GT(fwd_at_900, fwd_at_700);
  EXPECT_GT(g.stats().completed(), 0u);
}

// --- multi-front-end scale-out under faults ----------------------------------
//
// The owner of a shard dies mid-round: peers must notice (failed or
// stale view READs), evict it from the ring, take its shard over, and
// keep every back end's monitoring gap bounded. Front ends are fabric
// nodes 0..M-1 (they attach before the back ends).

/// Fast scale-out cadences mirroring scaleout_test.cpp: 10 ms polling
/// and gossip, so eviction (3 failed reads) matures in ~45 ms.
web::ClusterConfig scaleout_cfg(int frontends, int backends,
                                sim::Duration staleness) {
  web::ClusterConfig cfg;
  cfg.frontends = frontends;
  cfg.backends = backends;
  cfg.scheme = Scheme::RdmaSync;
  cfg.monitor_period = msec(10);
  cfg.lb_granularity = msec(10);
  cfg.fetch_timeout = msec(5);
  cfg.fetch_retries = 2;
  cfg.retry_backoff = msec(2);
  cfg.scaleout.gossip_period = msec(10);
  cfg.scaleout.read_timeout = msec(5);
  cfg.scaleout.staleness_bound = staleness;
  return cfg;
}

TEST(ScaleOutFault, OwnerCrashEvictsAndSurvivorTakesOver) {
  sim::Simulation simu;
  web::ClusterTestbed bed(simu, scaleout_cfg(2, 8, msec(60)));
  cluster::ScaleOutPlane& plane = *bed.plane();
  simu.at(sim::TimePoint{msec(200).ns},
          [&] { bed.fabric().inject_crash(plane.frontend(0).node().id); });
  simu.run_for(msec(700));

  // The survivor evicted the dead owner and owns the whole cluster.
  EXPECT_FALSE(plane.membership().is_member(0));
  EXPECT_TRUE(plane.membership().is_member(1));
  EXPECT_GE(plane.frontend(1).evictions(), 1u);
  EXPECT_GE(plane.frontend(1).takeovers(), 1u);
  for (int b = 0; b < 8; ++b) {
    EXPECT_EQ(plane.owner_of(b), 1);
    EXPECT_GT(plane.frontend(1).poll_counts()[static_cast<std::size_t>(b)],
              0u);
    EXPECT_EQ(plane.frontend(1).balancer().health_of(b),
              lb::BackendHealth::Healthy);
  }
  // The crashed front end may NOT counter-evict the survivor: its own
  // polls stopped landing, so the self-isolation guard silences it.
  EXPECT_EQ(plane.frontend(0).evictions(), 0u);
}

TEST(ScaleOutFault, CrashedOwnerRejoinsAndReclaimsItsShard) {
  sim::Simulation simu;
  web::ClusterTestbed bed(simu, scaleout_cfg(2, 8, msec(60)));
  cluster::ScaleOutPlane& plane = *bed.plane();
  const int fe0_shard = plane.frontend(0).owned_count();
  ASSERT_GT(fe0_shard, 0);

  fault::FaultInjector inj(bed.fabric());
  fault::FaultPlan plan;
  plan.crash_for(plane.frontend(0).node().id, sim::TimePoint{msec(200).ns},
                 msec(200));
  inj.arm(plan);
  simu.run_for(msec(800));

  // Evicted while dead, rejoined on the first successful peer read
  // after recovery, and the ring's stable hash restored its old shard.
  EXPECT_TRUE(plane.membership().is_member(0));
  EXPECT_GE(plane.frontend(1).evictions(), 1u);
  EXPECT_GE(plane.frontend(0).rejoins(), 1u);
  EXPECT_EQ(plane.frontend(0).owned_count(), fe0_shard);
  for (int m = 0; m < 2; ++m) {
    for (int b = 0; b < 8; ++b) {
      EXPECT_EQ(plane.frontend(m).balancer().health_of(b),
                lb::BackendHealth::Healthy)
          << "frontend " << m << " backend " << b;
    }
  }
}

TEST(ScaleOutFault, FrozenFrontendKeepsMonitoringOverRdma) {
  // The paper's claim, applied to the plane itself: one-sided ops need
  // no host CPU at either end, so a FROZEN front end (inbound socket
  // packets parked at ingress) keeps polling its shard, keeps serving
  // its view MR, and keeps reading peers — nothing degrades, nobody is
  // evicted. Contrast ScaleOutFault.OwnerCrash*: death is a crash.
  sim::Simulation simu;
  web::ClusterTestbed bed(simu, scaleout_cfg(2, 8, msec(60)));
  cluster::ScaleOutPlane& plane = *bed.plane();
  simu.run_for(msec(200));
  const std::vector<std::uint64_t> before = plane.frontend(0).poll_counts();
  bed.fabric().inject_freeze(plane.frontend(0).node().id);
  simu.run_for(msec(200));
  bed.fabric().inject_unfreeze(plane.frontend(0).node().id);
  const std::vector<std::uint64_t> during = plane.frontend(0).poll_counts();
  simu.run_for(msec(100));

  EXPECT_TRUE(plane.membership().is_member(0));
  EXPECT_TRUE(plane.membership().is_member(1));
  EXPECT_EQ(plane.frontend(0).evictions() + plane.frontend(1).evictions(),
            0u);
  for (int b = 0; b < 8; ++b) {
    const std::size_t i = static_cast<std::size_t>(b);
    if (plane.owner_of(b) == 0) {
      // ~20 poll rounds fit the freeze window; all kept landing.
      EXPECT_GE(during[i], before[i] + 10) << "backend " << b;
    }
    for (int m = 0; m < 2; ++m) {
      EXPECT_EQ(plane.frontend(m).balancer().health_of(b),
                lb::BackendHealth::Healthy)
          << "frontend " << m << " backend " << b;
    }
  }
}

TEST(ScaleOutFault, StalledPollerIsEvictedOnStaleView) {
  // A hung monitoring PROCESS on a live host: the NIC keeps DMA-serving
  // the view MR (peer READs succeed), but published_at stops advancing.
  // Peers must detect staleness — first per back end (note_stale
  // strikes from the sweep), then of the publisher itself (stale-view
  // fail streak -> eviction) — and take the shard over.
  sim::Simulation simu;
  web::ClusterTestbed bed(simu, scaleout_cfg(2, 8, msec(60)));
  cluster::ScaleOutPlane& plane = *bed.plane();
  ASSERT_GT(plane.frontend(0).owned_count(), 0);
  simu.run_for(msec(200));
  plane.frontend(0).stall();
  const std::uint64_t stalled_round = plane.frontend(0).view().round;
  simu.run_for(msec(400));

  // The view really did stop being published...
  EXPECT_EQ(plane.frontend(0).view().round, stalled_round);
  // ...its reads kept succeeding (one-sided, no publisher CPU)...
  EXPECT_GT(plane.frontend(1).gossip_reads_ok(), 0u);
  // ...and the survivor detected the staleness and took over.
  EXPECT_GE(plane.frontend(1).stale_marks(), 1u);
  EXPECT_GE(plane.frontend(1).evictions(), 1u);
  EXPECT_FALSE(plane.membership().is_member(0));
  bool saw_stale_view = false;
  for (const std::string& line : plane.membership().log()) {
    if (line.find("stale view") != std::string::npos) saw_stale_view = true;
  }
  EXPECT_TRUE(saw_stale_view);
  for (int b = 0; b < 8; ++b) {
    EXPECT_EQ(plane.owner_of(b), 1);
    EXPECT_EQ(plane.frontend(1).balancer().health_of(b),
              lb::BackendHealth::Healthy);
  }
}

TEST(ScaleOutFault, RandomFrontendCrashPlanKeepsEveryBackendMonitored) {
  // The headline guarantee under a randomized fault plan: staggered
  // random crash windows keep killing owners mid-round, and still no
  // back end's freshest successful sample (across ALL front ends) ever
  // ages past the staleness bound. Detection (3 failed 10 ms gossip
  // reads + retry completions) plus the takeover poll round needs
  // ~65 ms worst-case, inside the 80 ms bound used here.
  constexpr int kFrontends = 3;
  constexpr int kBackends = 12;
  const sim::Duration staleness = msec(80);
  sim::Simulation simu;
  web::ClusterTestbed bed(simu, scaleout_cfg(kFrontends, kBackends,
                                             staleness));
  cluster::ScaleOutPlane& plane = *bed.plane();

  // Random victims and offsets, staggered so windows never overlap (a
  // second simultaneous front-end death is indistinguishable from a
  // partition at M=3 and out of scope for the bound).
  sim::Rng rng(2024);
  fault::FaultPlan plan;
  constexpr int kWindows = 4;
  for (int k = 0; k < kWindows; ++k) {
    const int victim = static_cast<int>(rng.uniform_int(0, kFrontends - 1));
    const auto start = msec(250 + 450 * k +
                            static_cast<std::int64_t>(rng.uniform(0.0, 100.0)));
    const auto dur =
        msec(100 + static_cast<std::int64_t>(rng.uniform(0.0, 100.0)));
    plan.crash_for(victim, sim::TimePoint{start.ns}, dur);
  }
  fault::FaultInjector inj(bed.fabric());
  inj.arm(plan);

  // Probe from a neutral (never-faulted) back-end node: every 5 ms,
  // the age of each back end's freshest OK sample across front ends.
  std::int64_t worst_gap_ns = 0;
  bed.backend(0).spawn("probe", [&](SimThread&) -> Program {
    for (;;) {
      co_await os::SleepFor{msec(5)};
      const sim::TimePoint now = simu.now();
      if (now.ns < msec(150).ns) continue;  // startup: first polls land
      for (int b = 0; b < kBackends; ++b) {
        std::int64_t newest = 0;
        for (int m = 0; m < kFrontends; ++m) {
          const auto& s = plane.frontend(m).balancer().last_sample(b);
          if (s.ok) newest = std::max(newest, s.retrieved_at.ns);
        }
        worst_gap_ns = std::max(worst_gap_ns, now.ns - newest);
      }
    }
  });
  simu.run_for(msec(2200));

  EXPECT_LE(worst_gap_ns, staleness.ns)
      << "a backend went unmonitored past the staleness bound";
  // Every crash was detected (ring rebalanced) and every victim healed
  // back in: full membership, every back end owned and freshly polled.
  std::uint64_t evictions = 0, takeovers = 0, rejoins = 0;
  for (int m = 0; m < kFrontends; ++m) {
    evictions += plane.frontend(m).evictions();
    takeovers += plane.frontend(m).takeovers();
    rejoins += plane.frontend(m).rejoins();
    EXPECT_TRUE(plane.membership().is_member(m));
  }
  EXPECT_GE(evictions, 1u);
  EXPECT_GE(takeovers, 1u);
  EXPECT_GE(rejoins, 1u);
  for (int b = 0; b < kBackends; ++b) {
    const int owner = plane.owner_of(b);
    ASSERT_GE(owner, 0);
    EXPECT_EQ(plane.frontend(owner).balancer().health_of(b),
              lb::BackendHealth::Healthy);
  }
}

// --- tenant storms composed with faults --------------------------------------
//
// Noisy-neighbor pressure is a fault-plane citizen: storms schedule
// through the same FaultPlan as crashes and lossy links, so these
// scenarios check the COMPOSITIONS — an aggressor that dies mid-storm,
// a link fault hiding inside congestion, and cache-thrash attribution.

/// A small monitored cluster with a dedicated aggressor node storming
/// the backends. Node ids: frontend 0, backends 1..kBackends, aggressor
/// kBackends+1 — so fault plans can target backends and the aggressor
/// independently.
struct TenantLbEnv {
  static constexpr int kBackends = 3;
  static constexpr net::TenantId kMonTenant = 1;
  static constexpr net::TenantId kHogTenant = 9;

  sim::Simulation simu;
  net::Fabric fabric;
  os::Node frontend{simu, {.name = "frontend"}};
  std::vector<std::unique_ptr<os::Node>> backends;
  std::unique_ptr<os::Node> aggressor;
  lb::LoadBalancer lb{lb::WeightConfig::for_scheme(Scheme::RdmaSync)};
  std::unique_ptr<workload::TenantStorm> storm;
  fault::FaultInjector injector;
  /// Per-backend health-ladder log, by backend index.
  std::vector<std::vector<std::string>> ladders;

  TenantLbEnv(net::FabricConfig fcfg, workload::TenantStormConfig scfg)
      : fabric(simu, fcfg), injector(fabric) {
    fabric.attach(frontend);
    ladders.resize(kBackends);
    MonitorConfig mcfg = fast_cfg(Scheme::RdmaSync);
    mcfg.tenant = kMonTenant;
    std::vector<workload::StormTarget> targets;
    for (int i = 0; i < kBackends; ++i) {
      os::NodeConfig ncfg;
      ncfg.name = "backend" + std::to_string(i);
      backends.push_back(std::make_unique<os::Node>(simu, ncfg));
      fabric.attach(*backends.back());
      lb.add_backend(std::make_unique<monitor::MonitorChannel>(
          fabric, frontend, *backends.back(), mcfg));
      targets.push_back(
          {backends.back()->id,
           fabric.nic(backends.back()->id)
               .register_mr(scfg.op_bytes, [] { return std::any{}; }, false,
                            nullptr, kHogTenant)});
    }
    aggressor = std::make_unique<os::Node>(simu, os::NodeConfig{.name = "agg"});
    fabric.attach(*aggressor);
    storm = std::make_unique<workload::TenantStorm>(fabric, *aggressor,
                                                    std::move(targets), scfg);
    workload::drive_storms(injector, {storm.get()});
    lb.on_health_change([this](int b, lb::BackendHealth h) {
      ladders[static_cast<std::size_t>(b)].push_back(lb::to_string(h));
    });
    lb.start(frontend, msec(10));
  }
};

TEST(TenantFault, AggressorCrashMidStormLetsVictimsRecover) {
  // No QoS: the storm legitimately buries the backends (fetches fail,
  // the detector demotes them) — then the AGGRESSOR crashes. Standing
  // queues drain at the victims' service rate and every backend must
  // climb back to Healthy; the dead aggressor's still-running posters
  // error-complete against their own dead NIC.
  workload::TenantStormConfig scfg =
      workload::TenantStormConfig::bandwidth_hog();
  scfg.tenant = TenantLbEnv::kHogTenant;
  scfg.max_outstanding = 256;
  scfg.post_period = usec(1);
  TenantLbEnv env({}, scfg);
  fault::FaultPlan plan;
  plan.storm_for(0, sim::TimePoint{msec(100).ns}, seconds(5));
  plan.crash_for(env.aggressor->id, sim::TimePoint{msec(500).ns}, seconds(5));
  env.injector.arm(plan);
  env.simu.run_for(seconds(2));

  // The storm really hurt: fetch failures and demotions happened.
  EXPECT_GT(env.lb.fetch_failures(), 0u);
  std::size_t demotions = 0;
  for (const auto& seq : env.ladders) demotions += seq.size();
  EXPECT_GT(demotions, 0u) << "storm never demoted anyone";
  // The crash really hit the aggressor: its posts error-complete.
  EXPECT_GT(env.storm->failed(), 0u);
  // And the victims recovered once the pressure source died.
  EXPECT_EQ(env.lb.alive_backends(), TenantLbEnv::kBackends);
  for (int i = 0; i < TenantLbEnv::kBackends; ++i) {
    EXPECT_EQ(env.lb.health_of(i), lb::BackendHealth::Healthy)
        << "backend " << i;
    ASSERT_FALSE(env.ladders[static_cast<std::size_t>(i)].empty());
    EXPECT_EQ(env.ladders[static_cast<std::size_t>(i)].back(), "healthy");
  }
}

TEST(TenantFault, LossyLinkUnderThrottledStormIsolatesTheFaultyBackend) {
  // QoS on: the rate-capped storm is background noise, and a total-loss
  // window on ONE backend's link must demote exactly that backend —
  // congestion may not smear the fault across its neighbours.
  net::FabricConfig fcfg;
  fcfg.qos.enabled = true;
  net::TenantQosSpec mon;
  mon.tenant = TenantLbEnv::kMonTenant;
  mon.weight = 8.0;
  fcfg.qos.tenants.push_back(mon);
  net::TenantQosSpec hog;
  hog.tenant = TenantLbEnv::kHogTenant;
  hog.weight = 1.0;
  hog.rate_bps = 50e6;
  hog.burst_bytes = (1u << 20) + 64;
  hog.queue_cap = 512;
  fcfg.qos.tenants.push_back(hog);

  workload::TenantStormConfig scfg =
      workload::TenantStormConfig::bandwidth_hog();
  scfg.tenant = TenantLbEnv::kHogTenant;
  scfg.max_outstanding = 256;
  scfg.post_period = usec(1);
  TenantLbEnv env(fcfg, scfg);
  const int victim = 1;
  fault::FaultPlan plan;
  plan.storm_for(0, sim::TimePoint{msec(100).ns}, seconds(3));
  plan.degrade_link_for(env.backends[victim]->id,
                        sim::TimePoint{msec(300).ns}, msec(400), msec(0),
                        /*loss=*/1.0);
  env.injector.arm(plan);
  env.simu.run_for(msec(1500));

  const auto& victim_seq = env.ladders[static_cast<std::size_t>(victim)];
  ASSERT_FALSE(victim_seq.empty()) << "blackout left no trace";
  EXPECT_EQ(victim_seq.front(), "suspect");
  EXPECT_EQ(victim_seq.back(), "healthy");  // recovered after restore
  for (int i = 0; i < TenantLbEnv::kBackends; ++i) {
    if (i == victim) continue;
    EXPECT_TRUE(env.ladders[static_cast<std::size_t>(i)].empty())
        << "congestion smeared onto backend " << i;
  }
  EXPECT_GT(env.storm->completed(), 0u);  // the noise was real
}

TEST(TenantFault, MrThrashEvictionsAreAttributedPerTenant) {
  // An MR-churning tenant on a bounded NIC context cache displaces the
  // monitoring plane's entries at the victim NIC. The cache must charge
  // the evictions to the EVICTED entry's tenant, so operators can see
  // whose state a thrasher destroyed — and monitoring itself must keep
  // succeeding (evictions cost reload latency, not correctness).
  sim::Simulation simu;
  net::FabricConfig fcfg;
  fcfg.nic_ctx_cache_entries = 32;
  net::Fabric fabric{simu, fcfg};
  os::Node frontend{simu, {.name = "frontend"}};
  os::Node backend{simu, {.name = "backend"}};
  os::Node aggressor{simu, {.name = "agg"}};
  fabric.attach(frontend);
  fabric.attach(backend);
  fabric.attach(aggressor);
  MonitorConfig mcfg = fast_cfg(Scheme::RdmaSync);
  mcfg.tenant = 1;
  monitor::MonitorChannel chan(fabric, frontend, backend, mcfg);

  workload::TenantStormConfig scfg = workload::TenantStormConfig::mr_thrash();
  scfg.tenant = 9;
  workload::TenantStorm storm(fabric, aggressor,
                              {workload::StormTarget{backend.id, {}}}, scfg);
  int ok_fetches = 0;
  frontend.spawn("mon", [&](SimThread& self) -> Program {
    for (;;) {
      co_await os::SleepFor{msec(5)};
      MonitorSample s;
      co_await chan.frontend().fetch(self, s);
      if (s.ok) ++ok_fetches;
    }
  });
  simu.at(sim::TimePoint{msec(50).ns}, [&] { storm.start(); });
  simu.run_for(msec(500));

  const net::Nic& bnic = fabric.nic(backend.id);
  EXPECT_GT(bnic.qpc_evictions_for(1), 0u)
      << "victim evictions not attributed to the monitoring tenant";
  EXPECT_GT(bnic.qpc_evictions_for(9), 0u)
      << "the thrasher's own churn should self-evict past the cache";
  EXPECT_GT(storm.posted(), 0u);
  EXPECT_GT(ok_fetches, 50) << "monitoring stopped succeeding under thrash";
}

// --- determinism -------------------------------------------------------------

TEST(Determinism, RetryScheduleReplaysExactly) {
  auto run = [] {
    Env env;
    monitor::MonitorChannel chan(env.fabric, env.frontend, env.backend,
                                 fast_cfg(Scheme::SocketSync));
    env.fabric.inject_link_fault(env.backend.id, usec(500), 0.5);
    std::string trace;
    env.frontend.spawn("mon", [&](SimThread& self) -> Program {
      for (int i = 0; i < 20; ++i) {
        co_await os::SleepFor{msec(10)};
        MonitorSample s;
        co_await chan.frontend().fetch(self, s);
        trace += sim::to_string(s.retrieved_at);
        trace += s.ok ? " ok " : " fail ";
        trace += std::to_string(s.attempts);
        trace += '\n';
      }
    });
    env.simu.run_for(seconds(2));
    return trace;
  };
  const std::string first = run();
  EXPECT_EQ(first, run());
  EXPECT_NE(first.find("fail"), std::string::npos);  // the loss actually bit
}

TEST(Determinism, ClusterRunWithRandomFaultPlanReplaysExactly) {
  auto run = [] {
    sim::Simulation simu;
    web::ClusterConfig cfg;
    cfg.backends = 3;
    cfg.scheme = Scheme::SocketSync;
    cfg.fetch_timeout = msec(10);
    cfg.fetch_retries = 1;
    cfg.retry_backoff = msec(2);
    cfg.seed = 4242;
    web::ClusterTestbed bed(simu, cfg);
    web::ClientGroupConfig ccfg;
    ccfg.threads_per_node = 4;
    web::ClientGroup& g =
        bed.add_clients(1, web::make_rubis_generator(), ccfg);

    sim::Rng fault_rng(99);
    fault::FaultPlan plan =
        fault::FaultPlan::random(fault_rng, bed.fabric().num_nodes(),
                                 seconds(2), /*pairs=*/4);
    fault::FaultInjector inj(bed.fabric());
    inj.arm(plan);
    simu.run_for(seconds(2));

    std::string out = plan.describe();
    out += "completed=" + std::to_string(g.stats().completed());
    out += " rejected=" + std::to_string(g.stats().rejected());
    out += " mean_ns=" + std::to_string(g.stats().overall().mean());
    out += " forwarded=" + std::to_string(bed.dispatcher().forwarded());
    out += " failed_over=" + std::to_string(bed.dispatcher().failed_over());
    out += " fetch_failures=" + std::to_string(bed.balancer().fetch_failures());
    for (int b = 0; b < cfg.backends; ++b) {
      out += ' ';
      out += lb::to_string(bed.balancer().health_of(b));
    }
    return out;
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace rdmamon
