#include <gtest/gtest.h>

#include <any>
#include <cstdlib>
#include <map>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "monitor/meta.hpp"
#include "monitor/monitor.hpp"
#include "monitor/scatter.hpp"
#include "net/fabric.hpp"
#include "net/verbs.hpp"
#include "os/node.hpp"
#include "sim/simulation.hpp"
#include "telemetry/export.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/span.hpp"

// Global allocation counter for the disabled-path no-allocation proof.
// gtest itself allocates, so tests bracket exactly the code under test.
namespace {
std::uint64_t g_allocs = 0;
}
void* operator new(std::size_t n) {
  ++g_allocs;
  void* p = std::malloc(n);
  if (!p) throw std::bad_alloc{};
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace rdmamon::telemetry {
namespace {

TEST(Labels, CanonicalIsSortedAndOrderIndependent) {
  Labels a{{"scheme", "RDMA-Sync"}, {"backend", "b0"}};
  Labels b{{"backend", "b0"}, {"scheme", "RDMA-Sync"}};
  EXPECT_EQ(a.canonical(), "backend=b0,scheme=RDMA-Sync");
  EXPECT_EQ(a.canonical(), b.canonical());
  EXPECT_TRUE(Labels{}.empty());
  EXPECT_EQ(Labels{}.canonical(), "");
}

TEST(Registry, SameNameAndLabelsResolveSameInstrument) {
  Registry reg;
  Counter& c1 = reg.counter("x.total", Labels{{"a", "1"}, {"b", "2"}});
  Counter& c2 = reg.counter("x.total", Labels{{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&c1, &c2);
  c1.inc(3);
  EXPECT_EQ(c2.value(), 3u);
  // Different labels -> different instrument.
  Counter& c3 = reg.counter("x.total", Labels{{"a", "9"}});
  EXPECT_NE(&c1, &c3);
  EXPECT_EQ(reg.instrument_count(), 2u);
}

TEST(Registry, KindsAreIndependentInstruments) {
  Registry reg;
  reg.counter("same.name").inc(1);
  reg.gauge("same.name").set(7.5);
  reg.histogram("same.name").observe(2.0);
  const Snapshot snap = reg.snapshot();
  // One entry per (name, labels, first-kind-wins) — creating a second kind
  // under the same key returns a distinct instrument slot.
  EXPECT_GE(reg.instrument_count(), 1u);
  ASSERT_NE(snap.find("same.name"), nullptr);
}

TEST(Registry, SnapshotIsDeterministicAcrossIdenticalRuns) {
  auto build = [] {
    Registry reg;
    reg.counter("z.last", Labels{{"n", "1"}}).inc(4);
    reg.counter("a.first").inc(2);
    reg.gauge("m.mid", Labels{{"n", "0"}}).set(1.5);
    reg.histogram("h.lat").observe(10.0);
    reg.histogram("h.lat").observe(1000.0);
    return to_json(reg.snapshot()).dump(2);
  };
  const std::string once = build();
  const std::string twice = build();
  EXPECT_EQ(once, twice);
  // Sorted export order: a.first before h.lat before m.mid before z.last.
  EXPECT_LT(once.find("a.first"), once.find("h.lat"));
  EXPECT_LT(once.find("h.lat"), once.find("m.mid"));
  EXPECT_LT(once.find("m.mid"), once.find("z.last"));
}

TEST(Registry, CollectorsRunAtSnapshotStart) {
  Registry reg;
  std::uint64_t component_counter = 0;
  const std::uint64_t id = reg.add_collector([&](Registry& r) {
    r.gauge("comp.level").set(static_cast<double>(component_counter));
  });
  component_counter = 42;
  const Snapshot s1 = reg.snapshot();
  ASSERT_NE(s1.find("comp.level"), nullptr);
  EXPECT_DOUBLE_EQ(s1.find("comp.level")->value, 42.0);
  component_counter = 43;
  const Snapshot s2 = reg.snapshot();
  EXPECT_DOUBLE_EQ(s2.find("comp.level")->value, 43.0);
  reg.remove_collector(id);
  component_counter = 99;
  const Snapshot s3 = reg.snapshot();
  EXPECT_DOUBLE_EQ(s3.find("comp.level")->value, 43.0);  // stale, not re-run
}

TEST(Registry, SnapshotExportsKernelSelfMonitoringGauges) {
  sim::Simulation simu;
  Registry reg;
  reg.install(simu);
  int fired = 0;
  simu.after(sim::Duration{1'000}, [&] { ++fired; });
  simu.after(sim::Duration{2'000}, [&] { ++fired; });
  // Two far-future timeouts cancelled before firing: heap-resident, so
  // they tombstone until the lazy sweep and must show up in the gauge.
  sim::EventHandle t1 = simu.after(sim::Duration{30'000'000'000ll}, [] {});
  sim::EventHandle t2 = simu.after(sim::Duration{40'000'000'000ll}, [] {});
  t1.cancel();
  t2.cancel();
  const Snapshot before = reg.snapshot();
  ASSERT_NE(before.find("sim_events_tombstoned"), nullptr);
  EXPECT_DOUBLE_EQ(before.find("sim_events_tombstoned")->value, 2.0);
  EXPECT_DOUBLE_EQ(before.find("sim_events_pending")->value, 2.0);

  simu.run_until(sim::TimePoint{5'000});
  EXPECT_EQ(fired, 2);
  // The final pop left no live event, which reaps every tombstone.
  const Snapshot after = reg.snapshot();
  ASSERT_NE(after.find("sim_events_executed"), nullptr);
  EXPECT_DOUBLE_EQ(after.find("sim_events_executed")->value, 2.0);
  EXPECT_DOUBLE_EQ(after.find("sim_events_pending")->value, 0.0);
  EXPECT_DOUBLE_EQ(after.find("sim_events_cancelled")->value, 2.0);
  EXPECT_DOUBLE_EQ(after.find("sim_events_tombstoned")->value, 0.0);
}

TEST(Registry, ScopedCollectorSurvivesEitherDestructionOrder) {
  if constexpr (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  // Collector outlives registry: release() must not touch the dead
  // registry because Registry's destructor un-installs itself first.
  sim::Simulation simu;
  auto holder = std::make_unique<ScopedCollector>();
  {
    Registry reg;
    reg.install(simu);
    holder->bind(simu, [](Registry& r) { r.gauge("g").set(1.0); });
    EXPECT_TRUE(holder->bound());
  }  // registry destroyed before collector
  holder.reset();  // must not crash

  // Registry outlives collector: normal removal path.
  Registry reg2;
  reg2.install(simu);
  {
    ScopedCollector sc;
    sc.bind(simu, [](Registry& r) { r.gauge("g2").set(2.0); });
  }
  const Snapshot snap = reg2.snapshot();
  EXPECT_EQ(snap.find("g2"), nullptr);  // removed before any snapshot
}

TEST(Registry, OfReturnsInstalledRegistryOrNull) {
  sim::Simulation simu;
  EXPECT_EQ(Registry::of(simu), nullptr);
  Registry reg;
  reg.install(simu);
  if constexpr (kEnabled) {
    EXPECT_EQ(Registry::of(simu), &reg);
  } else {
    EXPECT_EQ(Registry::of(simu), nullptr);
  }
}

TEST(Spans, NestingAndCauseLinking) {
  Registry reg;
  SpanTracer& tr = reg.spans();
  const SpanId fetch = tr.begin("monitor", "fetch");
  const SpanId attempt1 = tr.begin("monitor", "attempt", fetch);
  tr.end(attempt1, "timeout");
  const SpanId attempt2 = tr.begin("monitor", "attempt", fetch);
  tr.note(attempt2, "retry after backoff");
  tr.end(attempt2, "ok");
  tr.end(fetch, "ok");

  EXPECT_EQ(tr.open_count(), 0u);
  ASSERT_EQ(tr.finished().size(), 3u);
  const Span* a1 = tr.find_finished(attempt1);
  const Span* a2 = tr.find_finished(attempt2);
  const Span* f = tr.find_finished(fetch);
  ASSERT_NE(a1, nullptr);
  ASSERT_NE(a2, nullptr);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(a1->cause, fetch.id);
  EXPECT_EQ(a2->cause, fetch.id);
  EXPECT_EQ(f->cause, 0u);
  EXPECT_EQ(a1->outcome, "timeout");
  EXPECT_EQ(a2->outcome, "ok");
  ASSERT_EQ(a2->notes.size(), 1u);
  EXPECT_EQ(a2->notes[0], "retry after backoff");
}

TEST(Spans, BoundedRingDropsOldestFinished) {
  SpanTracer tr;
  tr.set_capacity(4);
  std::vector<SpanId> ids;
  for (int i = 0; i < 10; ++i) {
    const SpanId s = tr.begin("x", "s" + std::to_string(i));
    tr.end(s);
    ids.push_back(s);
  }
  EXPECT_EQ(tr.finished().size(), 4u);
  EXPECT_EQ(tr.started(), 10u);
  EXPECT_EQ(tr.dropped(), 6u);
  EXPECT_EQ(tr.find_finished(ids.front()), nullptr);  // evicted
  EXPECT_NE(tr.find_finished(ids.back()), nullptr);
  EXPECT_EQ(tr.finished().front().name, "s6");
}

TEST(Spans, EndOfUnknownIdIsNoop) {
  SpanTracer tr;
  tr.end(SpanId{9999});      // never started
  tr.note(SpanId{9999}, "x");
  EXPECT_EQ(tr.finished().size(), 0u);
  EXPECT_FALSE(SpanId{});
  EXPECT_TRUE(SpanId{1});
}

TEST(Spans, EventIsInstantAnnotatedSpan) {
  Registry reg;
  const SpanId e = reg.spans().event("fault", "crash", "node2 down");
  const Span* s = reg.spans().find_finished(e);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->begin.ns, s->end.ns);
  ASSERT_EQ(s->notes.size(), 1u);
  EXPECT_EQ(s->notes[0], "node2 down");
}

TEST(Spans, MirrorsEndsToSimTracer) {
  Registry reg;
  sim::Tracer tracer;
  std::vector<std::string> lines;
  tracer.enable(
      sim::TraceLevel::Debug, [&](const std::string& l) { lines.push_back(l); },
      [] { return sim::TimePoint{}; });
  reg.spans().mirror_to(&tracer);
  const SpanId s = reg.spans().begin("monitor", "fetch");
  reg.spans().end(s, "ok");
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines.back().find("fetch"), std::string::npos);
}

TEST(RecordHelpers, NullTolerant) {
  // The hot-path helpers must accept null instrument pointers (registry
  // absent) without crashing.
  add(nullptr);
  add(nullptr, 5);
  set(nullptr, 1.0);
  observe(static_cast<HistogramMetric*>(nullptr), 2.0);
  observe(static_cast<HistogramMetric*>(nullptr), sim::usec(3));
  EXPECT_FALSE(span_begin(nullptr, "c", "n"));
  span_end(nullptr, SpanId{1});
  span_event(nullptr, "c", "n", "note");
}

TEST(RecordHelpers, DisabledPathDoesNotAllocate) {
  // With null instruments the helpers are one branch — and in particular
  // must not build strings or touch the heap. This is the run-time half
  // of "zero-cost when disabled"; the compile-time half is kEnabled being
  // constexpr (checked below).
  Counter* c = nullptr;
  Gauge* g = nullptr;
  HistogramMetric* h = nullptr;
  Registry* r = nullptr;
  const std::uint64_t before = g_allocs;
  for (int i = 0; i < 1000; ++i) {
    add(c);
    set(g, static_cast<double>(i));
    observe(h, static_cast<double>(i));
    span_end(r, SpanId{}, "ok");
  }
  EXPECT_EQ(g_allocs, before);
  static_assert(kEnabled == (RDMAMON_TELEMETRY_ENABLED != 0),
                "kEnabled must be a compile-time constant");
}

TEST(Export, PrometheusTextShape) {
  Registry reg;
  reg.counter("monitor.fetch.total",
              Labels{{"scheme", "RDMA-Sync"}, {"backend", "b0"}})
      .inc(42);
  reg.gauge("lb.alive_backends").set(4);
  reg.histogram("monitor.fetch.latency_ns").observe(1500.0);
  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_NE(text.find("rdmamon_monitor_fetch_total"), std::string::npos);
  EXPECT_NE(text.find("backend=\"b0\""), std::string::npos);
  EXPECT_NE(text.find("scheme=\"RDMA-Sync\""), std::string::npos);
  EXPECT_NE(text.find("rdmamon_lb_alive_backends 4"), std::string::npos);
  EXPECT_NE(text.find("rdmamon_monitor_fetch_latency_ns_count"),
            std::string::npos);
  EXPECT_NE(text.find("rdmamon_monitor_fetch_latency_ns{quantile=\"0.99\"}"),
            std::string::npos);
}

TEST(Export, JsonRoundTripsThroughDump) {
  Registry reg;
  reg.counter("a.total").inc(7);
  const util::JsonValue doc = to_json(reg.snapshot());
  const std::string text = doc.dump(0);
  EXPECT_NE(text.find("\"a.total\""), std::string::npos);
  EXPECT_NE(text.find("\"metrics\""), std::string::npos);
}

TEST(Export, DashboardPrintsGroupedMetricsAndSpans) {
  Registry reg;
  reg.counter("net.verbs.posts", Labels{{"node", "fe"}}).inc(3);
  const SpanId s = reg.spans().begin("monitor", "fetch");
  reg.spans().end(s, "ok");
  std::ostringstream os;
  print_dashboard(os, reg.snapshot(), &reg.spans());
  const std::string out = os.str();
  EXPECT_NE(out.find("net.verbs.posts"), std::string::npos);
  EXPECT_NE(out.find("monitor/fetch"), std::string::npos);
}

TEST(Export, DashboardSectionsAreSortedAndStable) {
  // Snapshot test: sections in sorted order with 4-space-indented
  // entries, regardless of instrument registration order.
  Registry reg;
  reg.gauge("net.up").set(1);                                // [net]
  reg.counter("lb.pick", Labels{{"backend", "b0"}}).inc(2);  // [lb]
  std::ostringstream os;
  print_dashboard(os, reg.snapshot(), nullptr);
  const std::string out = os.str();
  const std::size_t body = out.find("  [");
  ASSERT_NE(body, std::string::npos);
  const std::string expected = std::string("  [lb]\n") +          //
                               "    lb.pick" + std::string(27, ' ') +
                               "{backend=b0} 2\n" +               //
                               "  [net]\n" +                      //
                               "    net.up" + std::string(28, ' ') + "1\n";
  EXPECT_EQ(out.substr(body), expected);
  // Deterministic: a second render is byte-identical.
  std::ostringstream os2;
  print_dashboard(os2, reg.snapshot(), nullptr);
  EXPECT_EQ(os.str(), os2.str());
}

TEST(Export, PrometheusEmitsHelpAndTypeOncePerMetric) {
  Registry reg;
  reg.counter("monitor.fetch", Labels{{"backend", "b0"}}).inc(1);
  reg.counter("monitor.fetch", Labels{{"backend", "b1"}}).inc(2);
  reg.histogram("lb.age_ns", Labels{{"backend", "b0"}}).observe(5.0);
  reg.histogram("lb.age_ns", Labels{{"backend", "b1"}}).observe(7.0);
  const std::string text = to_prometheus(reg.snapshot());
  auto count_of = [&text](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t p = text.find(needle); p != std::string::npos;
         p = text.find(needle, p + needle.size())) {
      ++n;
    }
    return n;
  };
  // One TYPE per family even with several label sets; scrapers reject
  // duplicates. Summaries declare the bare family name once.
  EXPECT_EQ(count_of("# TYPE rdmamon_monitor_fetch_total counter"), 1u);
  EXPECT_EQ(count_of("# HELP rdmamon_monitor_fetch_total"), 1u);
  EXPECT_EQ(count_of("# TYPE rdmamon_lb_age_ns summary"), 1u);
  EXPECT_EQ(count_of("rdmamon_monitor_fetch_total{"), 2u);
  // TYPE precedes the family's first sample.
  EXPECT_LT(text.find("# TYPE rdmamon_monitor_fetch_total"),
            text.find("rdmamon_monitor_fetch_total{"));
}

/// Minimal exposition-format line parser for the round-trip test:
/// unescapes one quoted label value (the inverse of prom_escape).
std::string prom_unescape(const std::string& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] == '\\' && i + 1 < v.size()) {
      const char c = v[++i];
      out += c == 'n' ? '\n' : c;  // \\ -> backslash, \" -> quote
    } else {
      out += v[i];
    }
  }
  return out;
}

TEST(Export, PrometheusRoundTripParsesAndUnescapes) {
  const std::string nasty = "quo\"te\\slash\nline";
  Registry reg;
  reg.counter("a.total", Labels{{"k", nasty}}).inc(3);
  reg.gauge("b.current").set(1.5);
  reg.histogram("c.lat_ns").observe(10.0);
  const std::string text = to_prometheus(reg.snapshot());

  // Parse every line: comments must be HELP/TYPE (or the header), and
  // every sample must be `name[{k="v",...}] value` with a declared TYPE
  // for its family and a numeric value.
  std::map<std::string, std::string> types;  // family -> type
  std::string parsed_label;
  std::size_t samples = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, what, fam, kind;
      ls >> hash >> what;
      if (what == "TYPE") {
        ls >> fam >> kind;
        EXPECT_EQ(types.count(fam), 0u) << "duplicate TYPE for " << fam;
        types[fam] = kind;
      }
      continue;
    }
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    char* end = nullptr;
    (void)std::strtod(line.c_str() + sp + 1, &end);
    EXPECT_EQ(*end, '\0') << "unparseable value in: " << line;
    std::string name = line.substr(0, sp);
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos) {
      // Extract the quoted value of the first label (escape-aware).
      const std::size_t q0 = name.find('"', brace);
      ASSERT_NE(q0, std::string::npos);
      std::size_t q1 = q0 + 1;
      while (q1 < name.size() &&
             !(name[q1] == '"' && name[q1 - 1] != '\\')) {
        ++q1;
      }
      if (name.compare(brace, 4, "{k=\"") == 0) {
        parsed_label = prom_unescape(name.substr(q0 + 1, q1 - q0 - 1));
      }
      name = name.substr(0, brace);
    }
    // The sample's family must have a TYPE: exact for plain metrics, the
    // base name for summary _count/_mean satellites.
    bool declared = types.count(name) > 0;
    for (const char* suffix : {"_count", "_mean"}) {
      const std::string s = suffix;
      if (!declared && name.size() > s.size() &&
          name.compare(name.size() - s.size(), s.size(), s) == 0) {
        declared = types.count(name.substr(0, name.size() - s.size())) > 0;
      }
    }
    EXPECT_TRUE(declared) << "sample before TYPE: " << name;
    ++samples;
  }
  EXPECT_GE(samples, 5u);  // counter + gauge + summary count/mean/quantiles
  // The nasty label value round-trips exactly.
  EXPECT_EQ(parsed_label, nasty);
}

// --- end-to-end: an instrumented run produces the expected metrics ----------

TEST(Integration, MonitorRunPopulatesRegistry) {
  if constexpr (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  sim::Simulation simu;
  Registry reg;
  reg.install(simu);
  net::Fabric fabric(simu, {});
  os::Node fe(simu, {.name = "fe"}), be(simu, {.name = "be"});
  fabric.attach(fe);
  fabric.attach(be);
  monitor::MonitorConfig mcfg;
  mcfg.scheme = monitor::Scheme::RdmaSync;
  monitor::MonitorChannel chan(fabric, fe, be, mcfg);
  int okay = 0;
  fe.spawn("mon", [&](os::SimThread& self) -> os::Program {
    for (int i = 0; i < 20; ++i) {
      monitor::MonitorSample s;
      co_await chan.frontend().fetch(self, s);
      if (s.ok) ++okay;
      co_await os::SleepFor{sim::msec(10)};
    }
  });
  simu.run_for(sim::seconds(1));
  ASSERT_GT(okay, 0);

  const Snapshot snap = reg.snapshot();
  const SnapshotEntry* ok_ctr =
      snap.find("monitor.fetch.outcome", "backend=be,result=ok,scheme=RDMA-Sync");
  ASSERT_NE(ok_ctr, nullptr);
  EXPECT_DOUBLE_EQ(ok_ctr->value, static_cast<double>(okay));
  const SnapshotEntry* lat =
      snap.find("monitor.fetch.latency_ns", "backend=be,scheme=RDMA-Sync");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->hist.count, static_cast<std::uint64_t>(okay));
  EXPECT_GT(lat->hist.p50, 0.0);
  // Verbs-layer instruments appeared too.
  EXPECT_NE(snap.find("net.nic.rdma_posted", "node=fe"), nullptr);
  // Fetch spans were recorded and closed.
  EXPECT_GT(reg.spans().finished().size(), 0u);
  EXPECT_EQ(reg.spans().open_count(), 0u);
}

TEST(Integration, IdenticalRunsYieldIdenticalExports) {
  auto run_once = [] {
    sim::Simulation simu;
    Registry reg;
    reg.install(simu);
    net::Fabric fabric(simu, {});
    os::Node fe(simu, {.name = "fe"}), be(simu, {.name = "be"});
    fabric.attach(fe);
    fabric.attach(be);
    monitor::MonitorConfig mcfg;
    mcfg.scheme = monitor::Scheme::SocketSync;
    monitor::MonitorChannel chan(fabric, fe, be, mcfg);
    fe.spawn("mon", [&](os::SimThread& self) -> os::Program {
      for (int i = 0; i < 10; ++i) {
        monitor::MonitorSample s;
        co_await chan.frontend().fetch(self, s);
        co_await os::SleepFor{sim::msec(5)};
      }
    });
    simu.run_for(sim::msec(200));
    return to_prometheus(reg.snapshot());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Integration, VerbsFastPathCountersExportDeterministically) {
  if constexpr (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  // A scatter plane on the verbs fast path (shared contexts, selective
  // signaling, CQ moderation, bounded NIC cache) must surface the new
  // counters — NIC context-cache hit/miss/eviction, unsignaled posts,
  // coalesced polls — in snapshots, the Prometheus export, and the
  // dashboard, identically on identical runs.
  auto run_once = [] {
    struct Out {
      std::string prom;
      std::string dash;
      double qpc_hits, qpc_misses, unsignaled, coalesced, retired;
    };
    sim::Simulation simu;
    Registry reg;
    reg.install(simu);
    net::FabricConfig fc;
    fc.nic_ctx_cache_entries = 4;
    net::Fabric fabric(simu, fc);
    os::Node fe(simu, {.name = "fe"});
    fabric.attach(fe);
    net::VerbsTuning vt;
    vt.signal_every = 4;
    vt.shared_contexts = 2;
    vt.cq_mod_count = 4;
    const auto pool = net::make_context_pool(fabric.nic(fe.id), vt);
    std::vector<std::unique_ptr<os::Node>> backends;
    std::vector<std::unique_ptr<monitor::MonitorChannel>> channels;
    monitor::MonitorConfig mcfg;
    mcfg.scheme = monitor::Scheme::RdmaSync;
    monitor::ScatterFetcher scatter;
    for (int b = 0; b < 8; ++b) {
      backends.push_back(std::make_unique<os::Node>(
          simu, os::NodeConfig{.name = "be" + std::to_string(b)}));
      fabric.attach(*backends.back());
      channels.push_back(std::make_unique<monitor::MonitorChannel>(
          fabric, fe, *backends.back(), mcfg,
          pool[static_cast<std::size_t>(b) % pool.size()]));
      scatter.add(channels.back()->frontend());
    }
    scatter.cq().bind_moderation(simu, vt.cq_mod_count, vt.cq_mod_period);
    fe.spawn("poller", [&](os::SimThread& self) -> os::Program {
      std::vector<monitor::MonitorSample> samples;
      for (int r = 0; r < 5; ++r) {
        co_await scatter.round_all(self, samples);
        co_await os::SleepFor{sim::msec(10)};
      }
    });
    simu.run_for(sim::msec(100));

    const Snapshot snap = reg.snapshot();
    auto value = [&snap](const char* name, const char* labels) {
      const SnapshotEntry* e = snap.find(name, labels);
      EXPECT_NE(e, nullptr) << name;
      return e != nullptr ? e->value : -1.0;
    };
    Out out;
    out.qpc_hits = value("net.nic.qpc_hits", "node=fe");
    out.qpc_misses = value("net.nic.qpc_misses", "node=fe");
    out.unsignaled = value("net.verbs.unsignaled_posted", "node=fe");
    out.coalesced = value("scatter.cq.coalesced_polls", "");
    out.retired = value("scatter.cq.unsignaled_retired", "");
    out.prom = to_prometheus(snap);
    std::ostringstream os;
    print_dashboard(os, snap, nullptr);
    out.dash = os.str();
    return out;
  };
  const auto once = run_once();
  // The fast path actually engaged: the 2-context pool stayed resident in
  // the 4-entry cache (misses only cold, then hits), most WRs went
  // unsignaled and retired via closers, and wakeups were coalesced.
  EXPECT_EQ(once.qpc_misses, 2.0);
  EXPECT_GT(once.qpc_hits, once.qpc_misses);
  EXPECT_GT(once.unsignaled, 0.0);
  EXPECT_GT(once.retired, 0.0);
  EXPECT_GT(once.coalesced, 0.0);
  // Prometheus naming mangles dots to underscores under the rdmamon_ ns.
  EXPECT_NE(once.prom.find("rdmamon_net_nic_qpc_hits"), std::string::npos);
  EXPECT_NE(once.prom.find("rdmamon_net_nic_qpc_misses"), std::string::npos);
  EXPECT_NE(once.prom.find("rdmamon_net_nic_qpc_evictions"),
            std::string::npos);
  EXPECT_NE(once.prom.find("rdmamon_net_verbs_unsignaled_posted"),
            std::string::npos);
  EXPECT_NE(once.prom.find("rdmamon_scatter_cq_coalesced_polls"),
            std::string::npos);
  EXPECT_NE(once.dash.find("net.nic.qpc_misses"), std::string::npos);
  EXPECT_NE(once.dash.find("scatter.cq.coalesced_polls"), std::string::npos);
  // Determinism: byte-identical exports on a second run.
  const auto twice = run_once();
  EXPECT_EQ(once.prom, twice.prom);
  EXPECT_EQ(once.dash, twice.dash);
}

// --- meta-monitoring: reading the monitor's own telemetry via RDMA ----------

TEST(Meta, SelfMonitorServesSnapshotThroughOneSidedRead) {
  sim::Simulation simu;
  Registry reg;
  reg.install(simu);
  net::Fabric fabric(simu, {});
  os::Node fe(simu, {.name = "frontend"}), reader(simu, {.name = "reader"});
  fabric.attach(fe);
  fabric.attach(reader);

  reg.counter("monitor.fetch.retries").inc(5);  // something to observe
  monitor::SelfMonitorConfig scfg;
  scfg.period = sim::msec(10);
  monitor::TelemetrySelfMonitor meta(fabric, fe, reg, scfg);

  bool got = false;
  Snapshot remote;
  reader.spawn("meta-reader", [&](os::SimThread& self) -> os::Program {
    co_await os::SleepFor{sim::msec(35)};  // a few publish periods
    net::CompletionQueue cq;
    net::QueuePair qp{fabric.nic(reader.id), meta.node_id(), cq};
    net::Completion c;
    co_await net::rdma_read_sync(self, qp, meta.mr_key(),
                                 meta.config().slot_bytes, c);
    if (c.status == net::WcStatus::Success) {
      remote = std::any_cast<Snapshot>(c.data);
      got = true;
    }
  });
  simu.run_for(sim::msec(100));

  EXPECT_GE(meta.published(), 3u);
  ASSERT_TRUE(got);
  const SnapshotEntry* e = remote.find("monitor.fetch.retries");
  ASSERT_NE(e, nullptr);
  EXPECT_DOUBLE_EQ(e->value, 5.0);
  // The publisher also counts its own refreshes through the registry.
  EXPECT_NE(remote.find("meta.published"), nullptr);
}

TEST(Meta, StopFreezesPublishedSnapshot) {
  sim::Simulation simu;
  Registry reg;
  reg.install(simu);
  net::Fabric fabric(simu, {});
  os::Node fe(simu, {.name = "frontend"});
  fabric.attach(fe);
  monitor::SelfMonitorConfig scfg;
  scfg.period = sim::msec(10);
  monitor::TelemetrySelfMonitor meta(fabric, fe, reg, scfg);
  simu.run_for(sim::msec(45));
  const std::uint64_t before = meta.published();
  EXPECT_GE(before, 3u);
  meta.stop();
  simu.run_for(sim::msec(50));
  EXPECT_EQ(meta.published(), before);  // frozen-host regime: region keeps
                                        // serving its last contents
}

}  // namespace
}  // namespace rdmamon::telemetry
