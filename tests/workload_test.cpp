#include <gtest/gtest.h>

#include "sim/random.hpp"
#include "workload/rubis.hpp"
#include "workload/zipf.hpp"

namespace rdmamon::workload {
namespace {

TEST(Rubis, DemandTableCoversAllClassesWithSaneMix) {
  const auto& d = rubis_demands();
  double mix = 0.0;
  for (const auto& q : d) {
    EXPECT_GT(q.php_cpu.ns, 0);
    EXPECT_GT(q.db_cpu.ns, 0);
    EXPECT_GT(q.reply_bytes, 0u);
    EXPECT_GT(q.mix, 0.0);
    mix += q.mix;
  }
  EXPECT_NEAR(mix, 1.0, 0.01);
}

TEST(Rubis, BrowseCategoriesIsTheHeaviestClass) {
  const auto& heavy = demand_of(RubisQuery::BrowseCategoriesInRegion);
  for (RubisQuery q : kAllRubisQueries) {
    if (q == RubisQuery::BrowseCategoriesInRegion) continue;
    const auto& d = demand_of(q);
    EXPECT_GT((heavy.php_cpu + heavy.db_cpu + heavy.db_io).ns,
              (d.php_cpu + d.db_cpu + d.db_io).ns)
        << to_string(q);
  }
}

TEST(Rubis, SampleQueryFollowsMix) {
  RubisWorkload wl;
  sim::Rng rng(123);
  std::array<int, kRubisQueryCount> counts{};
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(wl.sample_query(rng))];
  }
  const auto& d = rubis_demands();
  for (int i = 0; i < kRubisQueryCount; ++i) {
    const double freq = static_cast<double>(counts[static_cast<std::size_t>(i)]) / n;
    EXPECT_NEAR(freq, d[static_cast<std::size_t>(i)].mix, 0.01)
        << to_string(static_cast<RubisQuery>(i));
  }
}

TEST(Rubis, InstanceVariationIsBoundedAndPositive) {
  RubisWorkload wl;
  sim::Rng rng(7);
  const auto& base = demand_of(RubisQuery::Browse);
  for (int i = 0; i < 10'000; ++i) {
    const auto inst = wl.instance_of(RubisQuery::Browse, rng);
    EXPECT_GT(inst.php_cpu.ns, 0);
    // Scale factor is in [0.5, 2.5]: 0.5 + 0.5*min(exp, 4).
    EXPECT_GE(inst.php_cpu.ns, base.php_cpu.ns / 2 - 1);
    EXPECT_LE(inst.php_cpu.ns, base.php_cpu.ns * 5 / 2 + 1);
  }
}

TEST(Rubis, NamesAreStable) {
  EXPECT_STREQ(to_string(RubisQuery::Home), "Home");
  EXPECT_STREQ(to_string(RubisQuery::BrowseCategoriesInRegion),
               "BrowseCatgryReg");
}

TEST(ZipfTrace, DeterministicForSameSeed) {
  ZipfTraceConfig cfg;
  cfg.documents = 500;
  ZipfTrace a(cfg, 99), b(cfg, 99);
  sim::Rng r1(1), r2(1);
  for (int i = 0; i < 100; ++i) {
    const auto x = a.sample(r1);
    const auto y = b.sample(r2);
    EXPECT_EQ(x.doc_rank, y.doc_rank);
    EXPECT_EQ(x.bytes, y.bytes);
  }
}

TEST(ZipfTrace, PopularDocumentsAreCached) {
  ZipfTraceConfig cfg;
  cfg.documents = 2'000;
  ZipfTrace trace(cfg, 5);
  sim::Rng rng(6);
  int cached_top = 0, total_top = 0;
  for (int i = 0; i < 20'000; ++i) {
    const auto r = trace.sample(rng);
    if (r.doc_rank <= 10) {
      ++total_top;
      if (r.cached) ++cached_top;
    }
  }
  ASSERT_GT(total_top, 0);
  EXPECT_EQ(cached_top, total_top);  // the head of the ranking is cached
}

TEST(ZipfTrace, CachedRequestsAreCheapUncachedAreExpensive) {
  ZipfTraceConfig cfg;
  ZipfTrace trace(cfg, 11);
  sim::Rng rng(12);
  for (int i = 0; i < 5'000; ++i) {
    const auto r = trace.sample(rng);
    if (r.cached) {
      EXPECT_EQ(r.io_wait.ns, 0);
      EXPECT_LT(r.cpu_demand.ns, sim::msec(1).ns);
    } else {
      EXPECT_GE(r.io_wait.ns, cfg.disk_base.ns);
    }
  }
}

TEST(ZipfTrace, HigherAlphaMeansMoreCacheHits) {
  ZipfTraceConfig lo_cfg, hi_cfg;
  lo_cfg.alpha = 0.25;
  hi_cfg.alpha = 0.9;
  ZipfTrace lo(lo_cfg, 3), hi(hi_cfg, 3);
  // The analytic cached fraction must rise with alpha (Fig 7's driver).
  EXPECT_GT(hi.cached_request_fraction(),
            lo.cached_request_fraction() + 0.1);
  EXPECT_GT(lo.cached_request_fraction(), 0.0);
  EXPECT_LT(hi.cached_request_fraction(), 1.0);
}

TEST(ZipfTrace, AnalyticCacheFractionMatchesEmpirical) {
  ZipfTraceConfig cfg;
  cfg.alpha = 0.5;
  ZipfTrace trace(cfg, 21);
  sim::Rng rng(22);
  int cached = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (trace.sample(rng).cached) ++cached;
  }
  EXPECT_NEAR(static_cast<double>(cached) / n,
              trace.cached_request_fraction(), 0.01);
}

}  // namespace
}  // namespace rdmamon::workload
