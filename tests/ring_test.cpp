// Property tests of the consistent-hash ring the scale-out plane
// partitions polling with (cluster/ring): ownership is a partition,
// spread stays within a constant factor of N/M, and membership churn
// moves only the departed/arrived member's O(N/M) share.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "cluster/ring.hpp"

namespace rdmamon::cluster {
namespace {

std::vector<int> owners(const HashRing& ring, int n) {
  std::vector<int> out(static_cast<std::size_t>(n));
  for (int b = 0; b < n; ++b) out[static_cast<std::size_t>(b)] = ring.owner_of(b);
  return out;
}

std::map<int, int> shard_sizes(const HashRing& ring, int n) {
  std::map<int, int> sizes;
  for (int m : ring.members()) sizes[m] = 0;
  for (int b = 0; b < n; ++b) sizes[ring.owner_of(b)]++;
  return sizes;
}

TEST(Ring, EmptyRingOwnsNothing) {
  HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.owner_of(0), -1);
  EXPECT_EQ(ring.owner_of_key(12345u), -1);
}

TEST(Ring, AddRemoveAreIdempotentAndBumpEpoch) {
  HashRing ring;
  EXPECT_TRUE(ring.add(3));
  EXPECT_FALSE(ring.add(3));
  EXPECT_EQ(ring.epoch(), 1u);
  EXPECT_TRUE(ring.add(1));
  EXPECT_EQ(ring.epoch(), 2u);
  EXPECT_TRUE(ring.remove(3));
  EXPECT_FALSE(ring.remove(3));
  EXPECT_EQ(ring.epoch(), 3u);
  EXPECT_EQ(ring.size(), 1);
  EXPECT_TRUE(ring.contains(1));
  EXPECT_FALSE(ring.contains(3));
}

TEST(Ring, OwnershipIsAPartitionOverLiveMembers) {
  for (int m_count : {1, 2, 3, 5, 8}) {
    HashRing ring;
    for (int m = 0; m < m_count; ++m) ring.add(m);
    for (int n : {16, 64, 256}) {
      std::set<int> seen_owners;
      for (int b = 0; b < n; ++b) {
        const int o = ring.owner_of(b);
        ASSERT_GE(o, 0);
        ASSERT_LT(o, m_count);
        ASSERT_TRUE(ring.contains(o));
        seen_owners.insert(o);
      }
      // With 64 vnodes per member and N >= 8M, no member ends up with an
      // empty shard at these sizes (pinned by the fixed default salt;
      // at N close to M an empty shard is legitimately possible).
      if (n >= 8 * m_count) {
        EXPECT_EQ(static_cast<int>(seen_owners.size()), m_count)
            << "m=" << m_count << " n=" << n;
      }
    }
  }
}

TEST(Ring, SingleMemberOwnsEverything) {
  HashRing ring;
  ring.add(7);
  for (int b = 0; b < 256; ++b) EXPECT_EQ(ring.owner_of(b), 7);
}

TEST(Ring, SpreadStaysWithinBoundOfFairShare) {
  // The classic consistent-hashing spread property: with 64 vnodes the
  // largest shard stays within a small constant of N/M. The factor here
  // (2x) is what the default salt actually achieves across this sweep;
  // it is a regression pin, not a theoretical bound.
  for (int m_count : {2, 4, 8}) {
    HashRing ring;
    for (int m = 0; m < m_count; ++m) ring.add(m);
    for (int n : {64, 256}) {
      const auto sizes = shard_sizes(ring, n);
      const double fair = static_cast<double>(n) / m_count;
      for (const auto& [member, size] : sizes) {
        EXPECT_LE(size, static_cast<int>(2.0 * fair) + 1)
            << "member " << member << " m=" << m_count << " n=" << n;
      }
    }
  }
}

TEST(Ring, RemovalMovesOnlyTheDepartedShard) {
  constexpr int kMembers = 4;
  constexpr int kBackends = 256;
  HashRing ring;
  for (int m = 0; m < kMembers; ++m) ring.add(m);
  const std::vector<int> before = owners(ring, kBackends);
  ring.remove(2);
  const std::vector<int> after = owners(ring, kBackends);
  for (int b = 0; b < kBackends; ++b) {
    const std::size_t i = static_cast<std::size_t>(b);
    if (before[i] != 2) {
      // Minimal churn: a backend whose owner survives keeps it.
      EXPECT_EQ(after[i], before[i]) << "backend " << b;
    } else {
      EXPECT_NE(after[i], 2) << "backend " << b;
    }
  }
}

TEST(Ring, AdditionTakesOnlyItsOwnShare) {
  constexpr int kMembers = 4;
  constexpr int kBackends = 256;
  HashRing ring;
  for (int m = 0; m < kMembers; ++m) ring.add(m);
  const std::vector<int> before = owners(ring, kBackends);
  ring.add(kMembers);  // joiner
  const std::vector<int> after = owners(ring, kBackends);
  int moved = 0;
  for (int b = 0; b < kBackends; ++b) {
    const std::size_t i = static_cast<std::size_t>(b);
    if (after[i] != before[i]) {
      // Every move is INTO the joiner — nothing reshuffles among the
      // incumbents.
      EXPECT_EQ(after[i], kMembers) << "backend " << b;
      ++moved;
    }
  }
  // O(N/M) churn: the joiner picks up roughly its fair share and no
  // more than twice it (same pinned constant as the spread test).
  EXPECT_GT(moved, 0);
  EXPECT_LE(moved, 2 * kBackends / (kMembers + 1) + 1);
}

TEST(Ring, RemoveThenReAddRestoresOwnership) {
  HashRing ring;
  for (int m = 0; m < 4; ++m) ring.add(m);
  const std::vector<int> before = owners(ring, 128);
  ring.remove(1);
  ring.add(1);
  EXPECT_EQ(owners(ring, 128), before);
}

TEST(Ring, IndependentRingsWithSameMembershipAgree) {
  // The plane's core correctness claim: ownership is a pure function of
  // (config, membership), so rings built in different orders agree.
  HashRing a, b;
  a.add(0);
  a.add(1);
  a.add(2);
  b.add(2);
  b.add(0);
  b.add(1);
  EXPECT_EQ(owners(a, 256), owners(b, 256));
}

TEST(Ring, DifferentSaltsGiveDifferentLayouts) {
  RingConfig other;
  other.salt = 0x1234567890abcdefull;
  HashRing a, b(other);
  for (int m = 0; m < 4; ++m) {
    a.add(m);
    b.add(m);
  }
  EXPECT_NE(owners(a, 256), owners(b, 256));
}

}  // namespace
}  // namespace rdmamon::cluster
