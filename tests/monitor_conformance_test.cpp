// Cross-scheme behavioral contract: pull, push and adaptive monitoring
// are different TRANSPORTS for the same information, so — fed the same
// load trace — they must converge to the same view, respect the same
// staleness bound, and walk the Healthy/Suspect/Dead ladder through the
// same per-backend transitions under the same fault schedule. Anything
// scheme-specific (bytes on the wire, WHEN a transition fires) is
// explicitly out of contract; WHAT the dispatcher ends up believing is
// in it.
#include <gtest/gtest.h>

#include <algorithm>
#include <any>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "lb/balancer.hpp"
#include "monitor/adaptive.hpp"
#include "monitor/inbox.hpp"
#include "monitor/monitor.hpp"
#include "net/fabric.hpp"
#include "os/node.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "workload/tenantstorm.hpp"

namespace rdmamon {
namespace {

using monitor::FetchMode;
using monitor::MonitorStrategy;
using monitor::Scheme;
using sim::msec;
using sim::seconds;

/// One cluster under one refresh strategy. The seed drives only the LOAD
/// trace (toggler phase offsets), so two environments with the same seed
/// and different strategies see the same ground truth.
struct ConformanceEnv {
  sim::Simulation simu;
  net::Fabric fabric;
  os::Node frontend{simu, {.name = "fe"}};
  std::vector<std::unique_ptr<os::Node>> backends;
  lb::LoadBalancer lb{lb::WeightConfig::for_scheme(Scheme::RdmaSync)};
  std::unique_ptr<monitor::PushInbox> inbox;
  std::vector<std::unique_ptr<monitor::PushPublisher>> pubs;
  /// Per-backend health transition log ("suspect", "dead", ...). Indexed
  /// by backend so cross-backend interleaving (a timing artifact) cannot
  /// fail the comparison.
  std::vector<std::vector<std::string>> transitions;

  /// `fcfg` lets the tenant-pressure axis enable fabric QoS; the default
  /// keeps the historical fabric exactly.
  ConformanceEnv(MonitorStrategy strategy, int n, std::uint64_t seed,
                 sim::Duration toggle_phase = seconds(2),
                 net::FabricConfig fcfg = {})
      : fabric{simu, fcfg} {
    fabric.attach(frontend);
    transitions.resize(static_cast<std::size_t>(n));
    sim::Rng rng(seed);
    monitor::MonitorConfig mcfg;
    mcfg.scheme = Scheme::RdmaSync;
    // The monitoring plane is tenant 1 everywhere: inert without QoS,
    // a protected class with it.
    mcfg.tenant = 1;
    for (int i = 0; i < n; ++i) {
      os::NodeConfig cfg;
      cfg.name = "be" + std::to_string(i);
      backends.push_back(std::make_unique<os::Node>(simu, cfg));
      fabric.attach(*backends.back());
      lb.add_backend(std::make_unique<monitor::MonitorChannel>(
          fabric, frontend, *backends.back(), mcfg));
      const sim::Duration offset{rng.uniform_int(0, 2 * toggle_phase.ns)};
      backends.back()->spawn(
          "toggler", [toggle_phase, offset](os::SimThread&) -> os::Program {
            co_await os::SleepFor{offset};
            for (;;) {
              co_await os::Compute{toggle_phase};
              co_await os::SleepFor{toggle_phase};
            }
          });
    }
    lb.on_health_change([this](int b, lb::BackendHealth h) {
      transitions[static_cast<std::size_t>(b)].push_back(lb::to_string(h));
    });
    if (strategy != MonitorStrategy::Pull) {
      monitor::PushConfig pushcfg;
      inbox = std::make_unique<monitor::PushInbox>(fabric, frontend, n,
                                                   pushcfg.slot_bytes);
      lb::PushPollConfig pcfg;
      pcfg.strategy = strategy;
      pcfg.adaptive.push_heartbeat = pushcfg.max_interval;
      lb.enable_push(*inbox, pcfg);
      for (int i = 0; i < n; ++i) {
        pubs.push_back(std::make_unique<monitor::PushPublisher>(
            fabric, *backends[static_cast<std::size_t>(i)], pushcfg));
        pubs.back()->target(frontend.id, inbox->mr_key(), i);
      }
      lb.on_mode_change([this](std::size_t b, FetchMode m) {
        if (m == FetchMode::Pull) {
          pubs[b]->pause();
        } else {
          pubs[b]->resume();
        }
      });
      for (auto& p : pubs) p->start();
    }
    lb.start(frontend, msec(50));
    for (std::size_t b = 0; b < pubs.size(); ++b) {
      if (lb.fetch_mode(b) == FetchMode::Pull) pubs[b]->pause();
    }
  }

  double truth_index(int i) const {
    return lb::load_index(
        backends[static_cast<std::size_t>(i)]->procfs().snapshot(),
        lb::WeightConfig::for_scheme(Scheme::RdmaSync));
  }
  double view_index(int i) const {
    return lb::load_index(lb.last_sample(i).info,
                          lb::WeightConfig::for_scheme(Scheme::RdmaSync));
  }
};

constexpr MonitorStrategy kAllStrategies[] = {
    MonitorStrategy::Pull, MonitorStrategy::Push, MonitorStrategy::Adaptive};

// --- contract 1: same trace in, same converged view out ----------------------

class ConformanceP : public ::testing::TestWithParam<MonitorStrategy> {};

TEST_P(ConformanceP, ConvergedViewMatchesGroundTruth) {
  ConformanceEnv env(GetParam(), 4, /*seed=*/7);
  env.simu.run_for(seconds(3));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(env.lb.last_sample(i).ok) << "backend " << i;
    // The toggle phase is 2s and the slowest refresh path (heartbeat +
    // scan) is ~105ms, so away from a flip edge view and truth agree to
    // well under one threshold step. 0.15 gives flip-edge slack.
    EXPECT_NEAR(env.view_index(i), env.truth_index(i), 0.15)
        << "backend " << i;
  }
}

TEST_P(ConformanceP, StalenessBoundRespected) {
  ConformanceEnv env(GetParam(), 4, /*seed=*/11);
  // Probe between 1s and 3s, every 100ms: no sample may be older than the
  // worst refresh path of any scheme (pull round 50ms, push heartbeat
  // 100ms + scan 5ms) plus scheduling slack.
  const sim::Duration bound = msec(250);
  for (int k = 10; k <= 30; ++k) {
    env.simu.at(sim::TimePoint{} + msec(100) * k, [&env, bound] {
      for (int i = 0; i < 4; ++i) {
        const monitor::MonitorSample& s = env.lb.last_sample(i);
        ASSERT_TRUE(s.ok) << "backend " << i;
        EXPECT_LE((env.simu.now() - s.retrieved_at).ns, bound.ns)
            << "backend " << i;
      }
    });
  }
  env.simu.run_for(seconds(3) + msec(100));
}

TEST_P(ConformanceP, QuietClusterHasNoHealthTransitions) {
  ConformanceEnv env(GetParam(), 4, /*seed=*/3);
  env.simu.run_for(seconds(4));
  for (const auto& seq : env.transitions) {
    EXPECT_TRUE(seq.empty()) << "spurious transitions under "
                             << monitor::to_string(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, ConformanceP,
                         ::testing::ValuesIn(kAllStrategies),
                         [](const auto& info) {
                           return std::string(monitor::to_string(info.param));
                         });

// --- contract 2: identical ladder walks under the fault matrix ---------------

/// Runs one strategy under one fault plan and returns the per-backend
/// transition sequences.
std::vector<std::vector<std::string>> run_faulted(
    MonitorStrategy strategy, int n, const fault::FaultPlan& plan,
    sim::Duration horizon, std::uint64_t seed) {
  ConformanceEnv env(strategy, n, seed);
  fault::FaultInjector injector(env.fabric);
  injector.arm(plan);
  env.simu.run_for(horizon);
  return env.transitions;
}

/// Asserts identical per-backend ladders across the three strategies and
/// returns the (agreed) pull ladders so callers can assert non-vacuity —
/// an all-empty log would make the equality trivially true.
std::vector<std::vector<std::string>> expect_identical_ladders(
    int n, const fault::FaultPlan& plan, sim::Duration horizon,
    std::uint64_t seed) {
  const auto pull =
      run_faulted(MonitorStrategy::Pull, n, plan, horizon, seed);
  const auto push =
      run_faulted(MonitorStrategy::Push, n, plan, horizon, seed);
  const auto adaptive =
      run_faulted(MonitorStrategy::Adaptive, n, plan, horizon, seed);
  for (int i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(pull[idx], push[idx]) << "pull vs push, backend " << i;
    EXPECT_EQ(pull[idx], adaptive[idx]) << "pull vs adaptive, backend " << i;
  }
  return pull;
}

TEST(ConformanceFaults, BackendCrashWalksSameLadder) {
  // Crash long enough for Suspect AND Dead under every scheme, then
  // recover: expect suspect, dead, healthy — identically everywhere.
  // While crashed, the publisher keeps being scheduled and its WRITEs
  // error-complete at the dead initiator NIC (the crashed-initiator path).
  fault::FaultPlan plan;
  plan.crash_for(/*node=*/1, sim::TimePoint{} + seconds(1), seconds(2));
  const auto ladders = expect_identical_ladders(4, plan, seconds(6),
                                                /*seed=*/21);
  const std::vector<std::string> want = {"suspect", "dead", "healthy"};
  EXPECT_EQ(ladders[0], want);  // node 1 is backend index 0
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_TRUE(ladders[i].empty()) << "collateral transitions, backend " << i;
  }
}

TEST(ConformanceFaults, KernelFreezeIsInvisibleToOneSidedMonitoring) {
  // The paper's core claim: a hung kernel with a live NIC keeps serving
  // one-sided READs, and (in the push scheme) its report threads keep
  // running — no scheme may raise ANY transition.
  fault::FaultPlan plan;
  plan.freeze_for(/*node=*/2, sim::TimePoint{} + seconds(1), seconds(1));
  const sim::Duration horizon = seconds(4);
  for (const MonitorStrategy s : kAllStrategies) {
    const auto t = run_faulted(s, 4, plan, horizon, /*seed=*/21);
    for (const auto& seq : t) {
      EXPECT_TRUE(seq.empty())
          << "freeze visible under " << monitor::to_string(s);
    }
  }
}

TEST(ConformanceFaults, LinkBlackoutWalksSameLadder) {
  // Total loss on one back end's access link: pull fetches retry out,
  // pushes vanish (silence -> verification READs, which also retry out).
  // Same ladder either way, and recovery after restore.
  fault::FaultPlan plan;
  plan.degrade_link_for(/*node=*/1, sim::TimePoint{} + seconds(1),
                        seconds(2), msec(0), /*loss=*/1.0);
  const auto ladders = expect_identical_ladders(4, plan, seconds(6),
                                                /*seed=*/21);
  ASSERT_FALSE(ladders[0].empty()) << "blackout produced no transitions";
  EXPECT_EQ(ladders[0].front(), "suspect");
  EXPECT_EQ(ladders[0].back(), "healthy");  // recovered after restore
}

TEST(ConformanceFaults, RandomFaultMatrixWalksSameLadder) {
  // Seeded random crash/freeze/blackout windows against random back ends
  // (never the front end — a front-end fault is a different contract).
  const int n = 5;
  const sim::Duration horizon = seconds(8);
  for (const std::uint64_t seed : {101ull, 202ull, 303ull}) {
    sim::Rng rng(seed);
    fault::FaultPlan plan;
    for (int k = 0; k < 3; ++k) {
      const int node = 1 + static_cast<int>(rng.uniform_int(0, n - 1));
      const auto start =
          sim::TimePoint{} + msec(500 + 100 * rng.uniform_int(0, 40));
      const auto window = msec(600 + 100 * rng.uniform_int(0, 14));
      switch (rng.uniform_int(0, 2)) {
        case 0: plan.crash_for(node, start, window); break;
        case 1: plan.freeze_for(node, start, window); break;
        default:
          plan.degrade_link_for(node, start, window, msec(0), 1.0);
      }
    }
    expect_identical_ladders(n, plan, horizon, seed);
  }
}

// --- contract 3: the staleness contract under tenant pressure ----------------
//
// A noisy neighbor hammering the backends' NICs must not break the
// monitoring plane's staleness bound WHEN fabric QoS protects it — and,
// as the companion negative, the same storm with QoS off must visibly
// breach the bound (otherwise the positive test is vacuous).

constexpr net::TenantId kHogTenant = 9;

/// QoS policy for the pressure axis: the monitoring plane (tenant 1) is
/// a heavily weighted protected class; the hog gets weight 1 plus a
/// 50 MB/s token-bucket cap. The bucket is one op-footprint deep so the
/// cap really binds per op.
net::FabricConfig qos_fabric() {
  net::FabricConfig fcfg;
  fcfg.qos.enabled = true;
  net::TenantQosSpec mon;
  mon.tenant = 1;
  mon.weight = 8.0;
  fcfg.qos.tenants.push_back(mon);
  net::TenantQosSpec hog;
  hog.tenant = kHogTenant;
  hog.weight = 1.0;
  hog.rate_bps = 50e6;
  hog.burst_bytes = (1u << 20) + 64;
  hog.queue_cap = 512;
  fcfg.qos.tenants.push_back(hog);
  return fcfg;
}

/// A bandwidth-hog aggressor on its own node, READing 1 MiB regions on
/// every backend. One-sided ops serialize at the TARGET's DMA engine, so
/// the standing window buries exactly the queues the monitor's tiny
/// READs must cross. Driven through FaultPlan storm events so tests
/// schedule pressure windows alongside crash/loss faults declaratively.
struct StormRig {
  os::Node aggressor;
  fault::FaultInjector injector;
  std::vector<workload::StormTarget> targets;
  std::unique_ptr<workload::TenantStorm> storm;

  StormRig(ConformanceEnv& env, std::size_t max_outstanding)
      : aggressor(env.simu, {.name = "aggressor"}), injector(env.fabric) {
    env.fabric.attach(aggressor);
    workload::TenantStormConfig scfg =
        workload::TenantStormConfig::bandwidth_hog();
    scfg.tenant = kHogTenant;
    scfg.max_outstanding = max_outstanding;
    scfg.post_period = sim::usec(1);
    for (const auto& b : env.backends) {
      targets.push_back({b->id, env.fabric.nic(b->id).register_mr(
                                    scfg.op_bytes, [] { return std::any{}; },
                                    false, nullptr, kHogTenant)});
    }
    storm = std::make_unique<workload::TenantStorm>(env.fabric, aggressor,
                                                    targets, scfg);
    workload::drive_storms(injector, {storm.get()});
  }
};

class TenantPressureP : public ::testing::TestWithParam<MonitorStrategy> {};

TEST_P(TenantPressureP, StalenessBoundHoldsUnderStormWithQos) {
  // Same probe as StalenessBoundRespected, but with a hog storming the
  // backends from 1s to 3s. The hog's rate cap (applied at ITS initiator
  // NIC) keeps the victims' DMA queues shallow, so every scheme must
  // still meet the quiet-cluster bound.
  ConformanceEnv env(GetParam(), 4, /*seed=*/11, seconds(2), qos_fabric());
  StormRig rig(env, /*max_outstanding=*/256);
  fault::FaultPlan plan;
  plan.storm_for(0, sim::TimePoint{} + seconds(1), seconds(2));
  rig.injector.arm(plan);
  const sim::Duration bound = msec(250);
  for (int k = 12; k <= 30; ++k) {
    env.simu.at(sim::TimePoint{} + msec(100) * k, [&env, bound] {
      for (int i = 0; i < 4; ++i) {
        const monitor::MonitorSample& s = env.lb.last_sample(i);
        ASSERT_TRUE(s.ok) << "backend " << i;
        EXPECT_LE((env.simu.now() - s.retrieved_at).ns, bound.ns)
            << "backend " << i;
      }
    });
  }
  env.simu.run_for(seconds(3) + msec(100));
  // Non-vacuity: the hog really ran and really moved bytes.
  EXPECT_GT(rig.storm->completed(), 0u);
  // And nobody walked the health ladder over mere congestion.
  for (const auto& seq : env.transitions) EXPECT_TRUE(seq.empty());
}

TEST(ConformanceTenantPressure, PullStalenessBreachesWithoutQos) {
  // Companion negative: the identical storm with a deeper window and NO
  // arbiter buries the backends' DMA engines (~380 ops x ~0.85 ms per
  // backend is a ~320 ms standing queue), so monitor READs blow their
  // 200 ms fetch deadline and the freshest sample ages past the bound.
  ConformanceEnv env(MonitorStrategy::Pull, 4, /*seed=*/11);
  StormRig rig(env, /*max_outstanding=*/1536);
  fault::FaultPlan plan;
  plan.storm_for(0, sim::TimePoint{} + seconds(1), seconds(2));
  rig.injector.arm(plan);
  std::int64_t worst_age_ns = 0;
  for (int k = 15; k <= 30; ++k) {
    env.simu.at(sim::TimePoint{} + msec(100) * k, [&env, &worst_age_ns] {
      for (int i = 0; i < 4; ++i) {
        const monitor::MonitorSample& s = env.lb.last_sample(i);
        if (!s.ok) continue;
        worst_age_ns =
            std::max(worst_age_ns, (env.simu.now() - s.retrieved_at).ns);
      }
    });
  }
  env.simu.run_for(seconds(3) + msec(100));
  EXPECT_GT(worst_age_ns, msec(250).ns)
      << "unthrottled storm failed to breach the staleness bound";
  EXPECT_GT(env.lb.fetch_failures(), 0u);
  EXPECT_GT(rig.storm->completed(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, TenantPressureP,
                         ::testing::ValuesIn(kAllStrategies),
                         [](const auto& info) {
                           return std::string(monitor::to_string(info.param));
                         });

// --- contract 4: ladders stay identical when storms and faults compose -------

/// run_faulted, but under QoS and with a rate-capped hog storming the
/// backends for the whole fault window.
std::vector<std::vector<std::string>> run_storm_faulted(
    MonitorStrategy strategy, int n, const fault::FaultPlan& plan,
    sim::Duration horizon, std::uint64_t seed) {
  ConformanceEnv env(strategy, n, seed, seconds(2), qos_fabric());
  StormRig rig(env, /*max_outstanding=*/256);
  rig.injector.arm(plan);
  env.simu.run_for(horizon);
  return env.transitions;
}

TEST(ConformanceTenantPressure, LaddersIdenticalUnderStormAndFaultMatrix) {
  // Seeded random crash/freeze/blackout windows AGAINST a standing
  // (throttled) storm: congestion must not make the schemes disagree
  // about what the faults did.
  const int n = 4;
  const sim::Duration horizon = seconds(6);
  std::size_t total_transitions = 0;
  for (const std::uint64_t seed : {404ull, 505ull}) {
    sim::Rng rng(seed);
    fault::FaultPlan plan;
    plan.storm_for(0, sim::TimePoint{} + msec(500), seconds(4));
    for (int k = 0; k < 2; ++k) {
      const int node = 1 + static_cast<int>(rng.uniform_int(0, n - 1));
      const auto start =
          sim::TimePoint{} + msec(800 + 100 * rng.uniform_int(0, 20));
      const auto window = msec(600 + 100 * rng.uniform_int(0, 14));
      switch (rng.uniform_int(0, 2)) {
        case 0: plan.crash_for(node, start, window); break;
        case 1: plan.freeze_for(node, start, window); break;
        default:
          plan.degrade_link_for(node, start, window, msec(0), 1.0);
      }
    }
    const auto pull =
        run_storm_faulted(MonitorStrategy::Pull, n, plan, horizon, seed);
    const auto push =
        run_storm_faulted(MonitorStrategy::Push, n, plan, horizon, seed);
    const auto adaptive =
        run_storm_faulted(MonitorStrategy::Adaptive, n, plan, horizon, seed);
    for (int i = 0; i < n; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      EXPECT_EQ(pull[idx], push[idx])
          << "pull vs push, backend " << i << ", seed " << seed;
      EXPECT_EQ(pull[idx], adaptive[idx])
          << "pull vs adaptive, backend " << i << ", seed " << seed;
      total_transitions += pull[idx].size();
    }
  }
  EXPECT_GT(total_transitions, 0u) << "fault matrix produced no transitions";
}

}  // namespace
}  // namespace rdmamon
