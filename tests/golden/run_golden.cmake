# ctest driver for one golden-trace check: run the quick-mode bench with
# its JSON redirected into OUT_DIR, then diff FRESH against GOLDEN with
# check_golden.py. Invoked from tests/CMakeLists.txt; see check_golden.py
# for the regeneration workflow.
file(MAKE_DIRECTORY "${OUT_DIR}")
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env RDMAMON_BENCH_DIR=${OUT_DIR}
          ${BENCH} --quick
  RESULT_VARIABLE bench_rc
  OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench exited with ${bench_rc}")
endif()
execute_process(
  COMMAND ${PYTHON} ${CHECKER} ${GOLDEN} ${FRESH}
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "golden-trace check failed (${check_rc})")
endif()
