#!/usr/bin/env bash
# Regenerate the golden-trace JSONs after an INTENDED behaviour change.
# Run from the repo root; pass the build dir as $1 (default: build).
# Commit the refreshed goldens together with the change that moved them.
set -euo pipefail
cd "$(dirname "$0")/../.."
build="${1:-build}"

cmake --build "$build" --target bench_fig3_latency bench_fig5_accuracy \
  bench_scale_poll bench_verbs bench_qos
for b in fig3_latency fig5_accuracy scale_poll verbs qos; do
  RDMAMON_BENCH_DIR=tests/golden "./$build/bench/bench_$b" --quick >/dev/null
  echo "regenerated tests/golden/BENCH_$b.json"
done
