#!/usr/bin/env python3
"""Golden-trace check: compare a freshly produced BENCH_*.json against
the checked-in golden under tests/golden/.

The quick-mode figure benches are fully deterministic at their default
seed (the sim clock is virtual; no wall time leaks into the JSON), so
the pinned values catch any behavioural drift in the monitoring
schemes: scheme latencies (fig3) and load-accuracy deviation (fig5).
Floats are compared with a tiny relative tolerance so a compiler that
reorders an fp sum does not page someone, while real regressions --
which move these numbers by percents -- always fail.

To regenerate after an INTENDED behaviour change (one command, run from
the repo root; commit the diff together with the change that caused it):

    tests/golden/regen.sh [build-dir]    # default build dir: build

Usage: check_golden.py GOLDEN_JSON FRESH_JSON
"""

import json
import math
import sys

# Keys that may legitimately differ run-to-run (wall-clock measurements
# and the report-level provenance stamps added at write() time).
VOLATILE = {"wall_ms", "generated_unix_ms"}

REL_TOL = 1e-9
ABS_TOL = 1e-12


def diff(golden, fresh, path, errors):
    if isinstance(golden, dict) and isinstance(fresh, dict):
        for key in sorted(set(golden) | set(fresh)):
            if key in VOLATILE:
                continue
            sub = f"{path}.{key}" if path else key
            if key not in golden:
                errors.append(f"{sub}: unexpected key in fresh output")
            elif key not in fresh:
                errors.append(f"{sub}: missing from fresh output")
            else:
                diff(golden[key], fresh[key], sub, errors)
    elif isinstance(golden, list) and isinstance(fresh, list):
        if len(golden) != len(fresh):
            errors.append(
                f"{path}: length {len(fresh)} != golden {len(golden)}")
            return
        for i, (g, f) in enumerate(zip(golden, fresh)):
            diff(g, f, f"{path}[{i}]", errors)
    elif isinstance(golden, bool) or isinstance(fresh, bool):
        # bool is an int subclass; compare exactly and before numbers.
        if golden is not fresh:
            errors.append(f"{path}: {fresh!r} != golden {golden!r}")
    elif isinstance(golden, (int, float)) and isinstance(fresh, (int, float)):
        if not math.isclose(golden, fresh, rel_tol=REL_TOL, abs_tol=ABS_TOL):
            errors.append(f"{path}: {fresh!r} != golden {golden!r}")
    elif golden != fresh:
        errors.append(f"{path}: {fresh!r} != golden {golden!r}")


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    golden_path, fresh_path = sys.argv[1], sys.argv[2]
    with open(golden_path) as f:
        golden = json.load(f)
    with open(fresh_path) as f:
        fresh = json.load(f)
    errors = []
    diff(golden, fresh, "", errors)
    if errors:
        print(f"golden-trace mismatch vs {golden_path}:")
        for e in errors[:40]:
            print(f"  {e}")
        if len(errors) > 40:
            print(f"  ... and {len(errors) - 40} more")
        print("intended change? regenerate with: tests/golden/regen.sh")
        sys.exit(1)
    print(f"golden-trace OK: {fresh_path} matches {golden_path}")


if __name__ == "__main__":
    main()
