// Scale-out plane behavior: M front ends over one back-end set, polling
// partitioned by the consistent-hash ring, every front end seeing every
// back end through gossiped shard views (one-sided READs of peer view
// MRs), and ring rebalance on membership change. Fault-driven scenarios
// (owner crash mid-round, staleness strikes) live in fault_test.cpp.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "cluster/scaleout.hpp"
#include "monitor/scheme.hpp"
#include "sim/simulation.hpp"
#include "telemetry/export.hpp"
#include "telemetry/registry.hpp"
#include "web/cluster.hpp"

namespace rdmamon {
namespace {

using monitor::Scheme;
using sim::msec;
using sim::seconds;

/// Fast cadences so scale-out tests converge in simulated tenths of a
/// second: 10 ms polling and gossip, 60 ms staleness bound.
web::ClusterConfig scale_cfg(int frontends, int backends,
                             Scheme scheme = Scheme::RdmaSync) {
  web::ClusterConfig cfg;
  cfg.frontends = frontends;
  cfg.backends = backends;
  cfg.scheme = scheme;
  cfg.monitor_period = msec(10);
  cfg.lb_granularity = msec(10);
  cfg.fetch_timeout = msec(5);
  cfg.fetch_retries = 2;
  cfg.retry_backoff = msec(2);
  cfg.scaleout.gossip_period = msec(10);
  cfg.scaleout.read_timeout = msec(5);
  cfg.scaleout.staleness_bound = msec(60);
  return cfg;
}

TEST(ScaleOut, OwnershipPartitionsThePolling) {
  sim::Simulation simu;
  web::ClusterTestbed bed(simu, scale_cfg(3, 8));
  ASSERT_NE(bed.plane(), nullptr);
  simu.run_for(msec(500));

  cluster::ScaleOutPlane& plane = *bed.plane();
  for (int b = 0; b < plane.backend_count(); ++b) {
    const int owner = plane.owner_of(b);
    ASSERT_GE(owner, 0);
    for (int m = 0; m < plane.frontend_count(); ++m) {
      const std::uint64_t polls =
          plane.frontend(m).poll_counts()[static_cast<std::size_t>(b)];
      if (m == owner) {
        EXPECT_GT(polls, 10u) << "owner " << m << " backend " << b;
      } else {
        EXPECT_EQ(polls, 0u) << "non-owner " << m << " backend " << b;
      }
    }
  }
}

TEST(ScaleOut, EveryFrontendSeesEveryBackendThroughGossip) {
  sim::Simulation simu;
  web::ClusterTestbed bed(simu, scale_cfg(3, 8));
  simu.run_for(msec(500));

  cluster::ScaleOutPlane& plane = *bed.plane();
  for (int m = 0; m < plane.frontend_count(); ++m) {
    cluster::FrontendPlane& fp = plane.frontend(m);
    EXPECT_GT(fp.gossip_reads_ok(), 0u);
    EXPECT_EQ(fp.stale_marks(), 0u) << "healthy run should never go stale";
    for (int b = 0; b < plane.backend_count(); ++b) {
      EXPECT_TRUE(fp.balancer().last_sample(b).ok)
          << "frontend " << m << " backend " << b;
      EXPECT_EQ(fp.balancer().health_of(b), lb::BackendHealth::Healthy);
    }
    // The peer-view cache is bounded: nothing this front end learns
    // second-hand is older than the staleness bound.
    EXPECT_LE(fp.max_peer_view_age().ns,
              bed.config().scaleout.staleness_bound.ns);
  }
}

TEST(ScaleOut, SocketSchemesShareOneBackendDaemonSet) {
  // M front ends attach to ONE BackendMonitor per back end; each socket
  // bind spawns its own reporting thread, so both front ends' fetches
  // are answered. (The RDMA schemes share one registered MR the same
  // way — covered by the gossip test above.)
  sim::Simulation simu;
  web::ClusterTestbed bed(simu, scale_cfg(2, 4, Scheme::SocketAsync));
  simu.run_for(msec(500));

  cluster::ScaleOutPlane& plane = *bed.plane();
  for (int m = 0; m < 2; ++m) {
    for (int b = 0; b < 4; ++b) {
      EXPECT_TRUE(plane.frontend(m).balancer().last_sample(b).ok)
          << "frontend " << m << " backend " << b;
    }
  }
}

TEST(ScaleOut, GracefulLeaveRehomesTheShardToSurvivors) {
  sim::Simulation simu;
  web::ClusterTestbed bed(simu, scale_cfg(2, 8));
  cluster::ScaleOutPlane& plane = *bed.plane();

  simu.run_for(msec(200));
  std::vector<std::uint64_t> fe1_polls_before =
      plane.frontend(1).poll_counts();
  const std::uint64_t epoch_before = plane.membership().epoch();
  plane.frontend(0).leave("drain");
  ASSERT_EQ(plane.membership().epoch(), epoch_before + 1);

  const std::vector<std::uint64_t> fe0_at_leave =
      plane.frontend(0).poll_counts();
  simu.run_for(msec(300));

  // Every back end now belongs to the survivor, whose poll counters all
  // advance; the departed front end polls nothing further.
  for (int b = 0; b < 8; ++b) {
    EXPECT_EQ(plane.owner_of(b), 1);
    const std::size_t i = static_cast<std::size_t>(b);
    EXPECT_GT(plane.frontend(1).poll_counts()[i], fe1_polls_before[i]);
    EXPECT_EQ(plane.frontend(0).poll_counts()[i], fe0_at_leave[i]);
    EXPECT_EQ(plane.frontend(1).balancer().health_of(b),
              lb::BackendHealth::Healthy);
  }
  EXPECT_GE(plane.frontend(1).takeovers(), 1u);
}

TEST(ScaleOut, ExportsRingOwnershipAndPeerViewAgeGauges) {
  sim::Simulation simu;
  telemetry::Registry reg;
  reg.install(simu);
  web::ClusterTestbed bed(simu, scale_cfg(2, 8));
  simu.run_for(msec(300));

  int owned_total = 0;
  for (int m = 0; m < 2; ++m) {
    owned_total += bed.plane()->frontend(m).owned_count();
  }
  EXPECT_EQ(owned_total, 8);

  const std::string json = telemetry::to_json(reg.snapshot()).dump(2);
  EXPECT_NE(json.find("cluster.ring.owned"), std::string::npos);
  EXPECT_NE(json.find("cluster.peer_view.age_ns"), std::string::npos);
  EXPECT_NE(json.find("cluster.gossip.reads"), std::string::npos);
  // Per-front-end balancer series are label-disambiguated.
  EXPECT_NE(json.find("frontend=frontend0"), std::string::npos);
  EXPECT_NE(json.find("frontend=frontend1"), std::string::npos);
}

TEST(ScaleOut, SingleFrontendConfigUsesTheClassicTestbed) {
  sim::Simulation simu;
  web::ClusterTestbed bed(simu, web::ClusterConfig{});
  EXPECT_EQ(bed.plane(), nullptr);
  EXPECT_EQ(bed.frontend_count(), 1);
  EXPECT_EQ(bed.frontend().name(), "frontend");
}

}  // namespace
}  // namespace rdmamon
