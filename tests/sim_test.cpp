#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace rdmamon::sim {
namespace {

TEST(Time, ArithmeticAndConversions) {
  EXPECT_EQ((msec(3) + usec(500)).ns, 3'500'000);
  EXPECT_EQ((seconds(1) - msec(1)).ns, 999'000'000);
  EXPECT_DOUBLE_EQ(msec(250).seconds(), 0.25);
  EXPECT_DOUBLE_EQ(usec(1500).millis(), 1.5);
  TimePoint t{1000};
  EXPECT_EQ((t + usec(1)).ns, 2'000);
  EXPECT_EQ(((t + usec(1)) - t).ns, usec(1).ns);
}

TEST(Time, FractionalFactories) {
  EXPECT_EQ(from_millis(0.5).ns, 500'000);
  EXPECT_EQ(from_seconds(0.001).ns, 1'000'000);
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint{30}, [&] { order.push_back(3); });
  q.schedule(TimePoint{10}, [&] { order.push_back(1); });
  q.schedule(TimePoint{20}, [&] { order.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(TimePoint{100}, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.schedule(TimePoint{10}, [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  EventHandle h = q.schedule(TimePoint{10}, [] {});
  q.pop_and_run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash or corrupt
  EXPECT_TRUE(q.empty());
}

TEST(Simulation, RunUntilAdvancesClock) {
  Simulation s;
  int fired = 0;
  s.after(msec(5), [&] { ++fired; });
  s.after(msec(50), [&] { ++fired; });
  s.run_until(TimePoint{} + msec(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now().ns, msec(10).ns);
  s.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now().ns, msec(50).ns);
}

TEST(Simulation, RejectsPastScheduling) {
  Simulation s;
  s.after(msec(1), [] {});
  s.run();
  EXPECT_THROW(s.at(TimePoint{}, [] {}), std::logic_error);
  EXPECT_THROW(s.after(Duration{-5}, [] {}), std::logic_error);
}

TEST(Simulation, StopInsideCallback) {
  Simulation s;
  int fired = 0;
  s.after(msec(1), [&] {
    ++fired;
    s.stop();
  });
  s.after(msec(2), [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  s.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, NestedSchedulingFromCallbacks) {
  Simulation s;
  std::vector<std::int64_t> times;
  std::function<void(int)> chain = [&](int depth) {
    times.push_back(s.now().ns);
    if (depth < 4) s.after(usec(10), [&, depth] { chain(depth + 1); });
  };
  s.after(usec(0), [&] { chain(0); });
  s.run();
  ASSERT_EQ(times.size(), 5u);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_EQ(times[i], static_cast<std::int64_t>(i) * 10'000);
  }
}

TEST(Random, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Random, SplitStreamsDiffer) {
  Rng a(42);
  Rng child = a.split();
  bool any_diff = false;
  Rng b(42);
  Rng child2 = b.split();
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(child.uniform(), child2.uniform());  // reproducible
  }
  Rng c(42);
  for (int i = 0; i < 10; ++i) {
    if (child.uniform() != c.uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Random, UniformBounds) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const auto k = r.uniform_int(3, 9);
    EXPECT_GE(k, 3);
    EXPECT_LE(k, 9);
  }
}

TEST(Random, ExponentialMeanConverges) {
  Rng r(11);
  OnlineStats st;
  for (int i = 0; i < 200'000; ++i) st.add(r.exponential(5.0));
  EXPECT_NEAR(st.mean(), 5.0, 0.1);
}

TEST(Random, NormalMoments) {
  Rng r(13);
  OnlineStats st;
  for (int i = 0; i < 200'000; ++i) st.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(st.mean(), 10.0, 0.05);
  EXPECT_NEAR(st.stddev(), 2.0, 0.05);
}

TEST(Random, BoundedParetoStaysInBounds) {
  Rng r(17);
  for (int i = 0; i < 50'000; ++i) {
    const double v = r.bounded_pareto(1.2, 1'000.0, 1'000'000.0);
    EXPECT_GE(v, 1'000.0);
    EXPECT_LE(v, 1'000'000.0 * (1 + 1e-9));
  }
}

TEST(Zipf, PmfMatchesEmpiricalFrequencies) {
  const std::size_t n = 100;
  ZipfDistribution z(n, 0.8);
  Rng r(19);
  std::vector<int> counts(n + 1, 0);
  const int samples = 400'000;
  for (int i = 0; i < samples; ++i) ++counts[z.sample(r)];
  // Rank 1 should be the most popular and match pmf within a few percent.
  EXPECT_NEAR(static_cast<double>(counts[1]) / samples, z.pmf(1), 0.01);
  EXPECT_GT(counts[1], counts[50]);
  double total_pmf = 0;
  for (std::size_t i = 1; i <= n; ++i) total_pmf += z.pmf(i);
  EXPECT_NEAR(total_pmf, 1.0, 1e-9);
}

TEST(Zipf, HigherAlphaConcentratesMass) {
  ZipfDistribution lo(1000, 0.25), hi(1000, 0.9);
  EXPECT_GT(hi.pmf(1), lo.pmf(1));
}

TEST(Zipf, GuideTableSampleMatchesFirstCdfEntryContract) {
  // The default backend must return exactly the rank the original binary
  // search would: the first cdf entry >= u. Replay the uniform stream and
  // check every sample against std::lower_bound on the exposed CDF —
  // this is what keeps fig7 (and every ZipfTrace consumer) bit-identical.
  for (double alpha : {0.25, 0.8, 0.9}) {
    const ZipfDistribution z(1'000, alpha);
    Rng draws(91), replay(91);
    for (int i = 0; i < 50'000; ++i) {
      const double u = replay.uniform();
      const std::size_t want = static_cast<std::size_t>(
          std::lower_bound(z.cdf().begin(), z.cdf().end(), u) -
          z.cdf().begin()) + 1;
      ASSERT_EQ(z.sample(draws), want) << "alpha " << alpha << " u " << u;
    }
  }
}

TEST(Zipf, AliasMethodMatchesPmfStatistically) {
  // Walker alias draws a different stream, so it is pinned statistically:
  // empirical frequencies must track the exact pmf across the whole
  // support, head and tail alike.
  const std::size_t n = 200;
  ZipfDistribution z(n, 0.8, ZipfDistribution::Method::kAlias);
  EXPECT_EQ(z.method(), ZipfDistribution::Method::kAlias);
  Rng r(23);
  std::vector<int> counts(n + 1, 0);
  const int samples = 500'000;
  for (int i = 0; i < samples; ++i) {
    const std::size_t rank = z.sample(r);
    ASSERT_GE(rank, 1u);
    ASSERT_LE(rank, n);
    ++counts[rank];
  }
  for (std::size_t i = 1; i <= n; ++i) {
    const double expect = z.pmf(i) * samples;
    // ~5-sigma binomial envelope plus a small absolute floor.
    const double tol = 5.0 * std::sqrt(expect) + 3.0;
    EXPECT_NEAR(static_cast<double>(counts[i]), expect, tol) << "rank " << i;
  }
}

TEST(Stats, OnlineMeanVarianceMinMax) {
  OnlineStats st;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(v);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_DOUBLE_EQ(st.variance(), 4.0);
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
  EXPECT_EQ(st.count(), 8u);
}

TEST(Stats, MergeEqualsSequential) {
  OnlineStats a, b, all;
  Rng r(23);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.normal(0, 1);
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, HistogramPercentiles) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.percentile(0.5), 500.0, 500.0 * 0.10);
  EXPECT_NEAR(h.percentile(0.99), 990.0, 990.0 * 0.10);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), h.min());
}

TEST(Stats, HistogramPercentileEdges) {
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(1.0), 0.0);

  Histogram one;
  one.add(42.0);
  // Every quantile of a single sample is that sample (within the
  // log-bucket resolution, < ~1.6%).
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_NEAR(one.percentile(q), 42.0, 42.0 * 0.05) << "q=" << q;
  }

  Histogram zeros;  // nonnegative domain: zero must be representable
  for (int i = 0; i < 10; ++i) zeros.add(0.0);
  EXPECT_DOUBLE_EQ(zeros.min(), 0.0);
  EXPECT_LE(zeros.percentile(0.5), 1.0);

  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  // q=1 is the top bucket; q=0 the exact min; out-of-band q are clamped.
  EXPECT_GE(h.percentile(1.0), h.percentile(0.99));
  EXPECT_DOUBLE_EQ(h.percentile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.percentile(-0.5), h.percentile(0.0));
  EXPECT_DOUBLE_EQ(h.percentile(1.5), h.percentile(1.0));
}

TEST(Stats, OnlineStatsMergeEdges) {
  OnlineStats a;  // empty += empty
  a.merge(OnlineStats{});
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);

  OnlineStats b;  // empty += populated
  b.add(3.0);
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  EXPECT_DOUBLE_EQ(a.min(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);

  a.merge(OnlineStats{});  // populated += empty: unchanged
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  EXPECT_DOUBLE_EQ(a.variance(), 1.0);
}

TEST(Stats, HistogramMergeAndReset) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.add(10.0);
  for (int i = 0; i < 100; ++i) b.add(1000.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_GT(a.percentile(0.9), 500.0);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.percentile(0.5), 0.0);
}

TEST(Stats, TimeWeightedMean) {
  TimeWeighted tw;
  tw.set(TimePoint{0}, 0.0);
  tw.set(TimePoint{100}, 1.0);   // 0 for 100ns
  tw.set(TimePoint{300}, 0.5);   // 1 for 200ns
  // then 0.5 for 100ns until t=400
  EXPECT_NEAR(tw.mean_until(TimePoint{400}), (0 * 100 + 1 * 200 + 0.5 * 100) / 400.0, 1e-12);
  EXPECT_DOUBLE_EQ(tw.current(), 0.5);
}

TEST(Stats, TimeSeriesAggregates) {
  TimeSeries ts;
  ts.add(TimePoint{1}, 2.0);
  ts.add(TimePoint{2}, 6.0);
  EXPECT_DOUBLE_EQ(ts.value_mean(), 4.0);
  EXPECT_DOUBLE_EQ(ts.value_max(), 6.0);
  EXPECT_EQ(ts.size(), 2u);
}

TEST(Trace, RoutesThroughSinkWithTimestamp) {
  Simulation s;
  Tracer tr;
  std::vector<std::string> lines;
  tr.enable(
      TraceLevel::Info, [&](const std::string& l) { lines.push_back(l); },
      [&] { return s.now(); });
  tr.debug("x", "hidden");  // below level
  tr.info("net", "packet sent");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("[net]"), std::string::npos);
  EXPECT_NE(lines[0].find("packet sent"), std::string::npos);
  tr.disable();
  tr.warn("net", "dropped");
  EXPECT_EQ(lines.size(), 1u);
}

TEST(Trace, LazyOverloadSkipsMessageConstructionWhenSuppressed) {
  Simulation s;
  Tracer tr;
  std::vector<std::string> lines;
  int built = 0;
  auto make = [&] {
    ++built;
    return std::string("expensive message");
  };

  // Disabled tracer: the callable must never run.
  tr.debug("net", make);
  EXPECT_EQ(built, 0);

  tr.enable(
      TraceLevel::Info, [&](const std::string& l) { lines.push_back(l); },
      [&] { return s.now(); });
  tr.debug("net", make);  // below level: still not built
  EXPECT_EQ(built, 0);
  tr.info("net", make);  // emitted: built exactly once
  EXPECT_EQ(built, 1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("expensive message"), std::string::npos);
  tr.warn("net", make);  // warn >= info: emitted too
  EXPECT_EQ(built, 2);
  EXPECT_EQ(lines.size(), 2u);
}

TEST(Trace, WouldEmitRequiresLevelAndSink) {
  Simulation s;
  Tracer tr;
  EXPECT_FALSE(tr.would_emit(TraceLevel::Warn));  // no sink, level Off
  tr.enable(
      TraceLevel::Warn, [](const std::string&) {},
      [&] { return s.now(); });
  EXPECT_FALSE(tr.would_emit(TraceLevel::Info));
  EXPECT_TRUE(tr.would_emit(TraceLevel::Warn));
  tr.disable();
  EXPECT_FALSE(tr.would_emit(TraceLevel::Warn));
}

}  // namespace
}  // namespace rdmamon::sim
