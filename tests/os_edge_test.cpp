// Edge cases of the OS and net substrates: interrupt/kill interactions,
// subprogram teardown, zero-cost actions, wait-queue ordering, multicast
// injection, and multiple outstanding RDMA operations.
#include <gtest/gtest.h>

#include "net/fabric.hpp"
#include "net/nic.hpp"
#include "net/socket.hpp"
#include "net/verbs.hpp"
#include "os/node.hpp"
#include "os/wait.hpp"
#include "sim/simulation.hpp"

namespace rdmamon {
namespace {

using os::Program;
using os::SimThread;
using sim::msec;
using sim::seconds;
using sim::usec;

TEST(OsEdge, KillWhileRunningMidIrq) {
  sim::Simulation simu;
  os::NodeConfig cfg;
  cfg.cpus = 1;
  os::Node node(simu, cfg);
  SimThread* t = node.spawn("victim", [](SimThread&) -> Program {
    for (;;) co_await os::Compute{seconds(1)};
  });
  bool killed_in_irq = false;
  simu.after(msec(5), [&] {
    node.irq().raise(0, os::IrqType::Other, [&] {
      node.sched().kill(t);  // kill from interrupt context
      killed_in_irq = true;
    });
  });
  simu.run_for(msec(100));
  EXPECT_TRUE(killed_in_irq);
  EXPECT_EQ(t->state, os::ThreadState::Finished);
  EXPECT_EQ(node.stats().nr_running(), 0);
  // The CPU recovered and can run new work.
  bool ran = false;
  node.spawn("next", [&](SimThread&) -> Program {
    ran = true;
    co_return;
  });
  simu.run_for(msec(10));
  EXPECT_TRUE(ran);
}

TEST(OsEdge, KillBlockedThreadRemovesItFromWaitQueue) {
  sim::Simulation simu;
  os::Node node(simu, {.name = "n"});
  os::WaitQueue wq;
  SimThread* t = node.spawn("blocked", [&](SimThread&) -> Program {
    co_await os::WaitOn{&wq};
  });
  simu.run_for(msec(1));
  EXPECT_EQ(wq.size(), 1u);
  node.sched().kill(t);
  EXPECT_TRUE(wq.empty());
  wq.notify_all();  // must not touch the dead thread
  simu.run_for(msec(1));
  EXPECT_EQ(t->state, os::ThreadState::Finished);
}

TEST(OsEdge, ZeroAndNegativeComputeMakeProgress) {
  sim::Simulation simu;
  os::Node node(simu, {.name = "n"});
  int steps = 0;
  node.spawn("t", [&](SimThread&) -> Program {
    co_await os::Compute{sim::Duration{0}};
    ++steps;
    co_await os::Compute{sim::Duration{-5}};
    ++steps;
    co_await os::ComputeKernel{sim::Duration{0}};
    ++steps;
  });
  simu.run_for(msec(10));
  EXPECT_EQ(steps, 3);
  EXPECT_EQ(node.stats().nr_threads(), 0);
}

TEST(OsEdge, DeepSubprogramNesting) {
  sim::Simulation simu;
  os::Node node(simu, {.name = "n"});
  int depth_reached = 0;
  // Recursive nesting 32 levels deep, each doing a little work.
  std::function<Program(int)> nest = [&](int d) -> Program {
    co_await os::Compute{usec(1)};
    if (d < 32) {
      ++depth_reached;
      co_await nest(d + 1);
    }
  };
  node.spawn("t", [&](SimThread&) -> Program { co_await nest(0); });
  simu.run_for(msec(10));
  EXPECT_EQ(depth_reached, 32);
}

TEST(OsEdge, KillMidSubprogramDestroysAllFrames) {
  sim::Simulation simu;
  os::Node node(simu, {.name = "n"});
  // Track destruction via a sentinel living in the nested frame.
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  bool destroyed = false;
  auto inner = [&](SimThread&) -> Program {
    Sentinel s{&destroyed};
    for (;;) co_await os::Compute{msec(1)};
  };
  // Keep the callable alive for the thread's lifetime via the factory.
  SimThread* t = node.spawn("t", [&, inner](SimThread& self) -> Program {
    co_await inner(self);
  });
  simu.run_for(msec(5));
  EXPECT_FALSE(destroyed);
  node.sched().kill(t);
  // Frames are destroyed with the thread object at scheduler teardown;
  // killing only stops execution. Force teardown by ending the scope...
  // (the Node outlives this test scope, so check at least no further
  // progress happens and the kill left consistent state)
  simu.run_for(msec(5));
  EXPECT_EQ(t->state, os::ThreadState::Finished);
}

TEST(OsEdge, WaitQueueWakesInFifoOrder) {
  sim::Simulation simu;
  os::NodeConfig cfg;
  cfg.cpus = 1;
  cfg.context_switch_cost = {};
  os::Node node(simu, cfg);
  os::WaitQueue wq;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    node.spawn("w" + std::to_string(i), [&, i](SimThread&) -> Program {
      co_await os::SleepFor{msec(1 + i)};  // enqueue in known order
      co_await os::WaitOn{&wq};
      order.push_back(i);
    });
  }
  simu.run_for(msec(20));
  for (int k = 0; k < 4; ++k) {
    simu.after(msec(1), [&] { wq.notify_one(); });
    simu.run_for(msec(5));
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(NetEdge, MulticastInjectDeliversWithoutSenderSyscall) {
  sim::Simulation simu;
  net::Fabric fabric(simu, {});
  os::Node a(simu, {.name = "a"}), b(simu, {.name = "b"});
  fabric.attach(a);
  fabric.attach(b);
  net::Connection& conn = fabric.connect(a, b);
  int got = 0;
  b.spawn("rx", [&](SimThread& self) -> Program {
    net::Message m;
    co_await conn.end_b().recv(self, m);
    got = std::any_cast<int>(m.payload);
  });
  // Inject from event context: no sending thread at all.
  simu.after(msec(1), [&] {
    net::Message m;
    m.bytes = 128;
    m.payload = 77;
    conn.end_a().inject_tx(std::move(m));
  });
  simu.run_for(msec(10));
  EXPECT_EQ(got, 77);
}

TEST(NetEdge, MultipleOutstandingRdmaReadsAllComplete) {
  sim::Simulation simu;
  net::Fabric fabric(simu, {});
  os::Node a(simu, {.name = "a"}), b(simu, {.name = "b"});
  fabric.attach(a);
  fabric.attach(b);
  int value = 5;
  net::MrKey key =
      fabric.nic(1).register_mr(64, [&] { return std::any(value); });
  net::CompletionQueue cq;
  net::QueuePair qp(fabric.nic(0), 1, cq);
  // Post 8 reads back-to-back without waiting (pipelined).
  for (std::uint64_t i = 0; i < 8; ++i) qp.post_read(key, 64, i);
  simu.run_for(msec(1));
  EXPECT_EQ(cq.size(), 8u);
  std::vector<bool> seen(8, false);
  while (!cq.empty()) {
    const net::Completion c = cq.pop();
    EXPECT_EQ(c.status, net::WcStatus::Success);
    seen[c.wr_id] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(NetEdge, DmaEngineSerializesConcurrentReads) {
  sim::Simulation simu;
  net::FabricConfig fcfg;
  fcfg.rdma_dma_base = usec(10);  // big, to make serialization visible
  net::Fabric fabric(simu, fcfg);
  os::Node a(simu, {.name = "a"}), b(simu, {.name = "b"});
  fabric.attach(a);
  fabric.attach(b);
  net::MrKey key = fabric.nic(1).register_mr(64, [] { return std::any(0); });
  net::CompletionQueue cq;
  net::QueuePair qp(fabric.nic(0), 1, cq);
  std::vector<std::int64_t> completion_times;
  for (std::uint64_t i = 0; i < 4; ++i) qp.post_read(key, 64, i);
  while (completion_times.size() < 4) {
    simu.run_for(usec(1));
    while (!cq.empty()) {
      cq.pop();
      completion_times.push_back(simu.now().ns);
    }
  }
  // Completions are spaced by at least the DMA service time.
  for (std::size_t i = 1; i < completion_times.size(); ++i) {
    EXPECT_GE(completion_times[i] - completion_times[i - 1],
              usec(10).ns - 1000);
  }
}

TEST(NetEdge, SocketBacklogCountsUnreadMessages) {
  sim::Simulation simu;
  net::Fabric fabric(simu, {});
  os::Node a(simu, {.name = "a"}), b(simu, {.name = "b"});
  fabric.attach(a);
  fabric.attach(b);
  net::Connection& conn = fabric.connect(a, b);
  a.spawn("tx", [&](SimThread& self) -> Program {
    for (int i = 0; i < 5; ++i) co_await conn.end_a().send(self, 64, i);
  });
  simu.run_for(msec(10));  // nobody reads on b
  EXPECT_EQ(conn.end_b().rx_backlog(), 5u);
  EXPECT_TRUE(conn.end_b().has_data());
  EXPECT_FALSE(conn.end_a().has_data());
}

TEST(SimEdge, EventsAtIdenticalTimestampRunInScheduleOrderAcrossSources) {
  sim::Simulation simu;
  std::vector<int> order;
  simu.after(msec(1), [&] { order.push_back(1); });
  simu.at(sim::TimePoint{} + msec(1), [&] { order.push_back(2); });
  simu.after(msec(1), [&] { order.push_back(3); });
  simu.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace rdmamon
