// Determinism pins: the whole stack — RUBiS workload, monitoring,
// dispatch, telemetry, and the multi-front-end scale-out plane — is a
// pure function of its seed. Two runs at the same seed must export
// byte-identical telemetry snapshots AND span traces; a different seed
// must diverge (the equality check is not vacuous). This is the
// regression net under every golden-trace and bench comparison: if it
// breaks, someone introduced wall-clock, address-ordering, or unseeded
// randomness into the simulated path.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "sim/simulation.hpp"
#include "telemetry/export.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/slo.hpp"
#include "web/cluster.hpp"

namespace rdmamon {
namespace {

using sim::msec;
using sim::seconds;

struct TraceDump {
  std::string metrics;
  std::string spans;
  std::string alarms;
};

/// One complete RUBiS cluster run: M front ends, 4 back ends, 2 client
/// nodes of browsing-mix traffic, telemetry on, a staleness SLO with a
/// deliberately unreachable target (so alarm edges actually fire and the
/// log comparison is not vacuous), 1 simulated second.
TraceDump run_rubis(std::uint64_t seed, int frontends) {
  sim::Simulation simu;
  telemetry::Registry reg;
  reg.install(simu);
  telemetry::SloEngine slo;
  slo.install(reg);
  telemetry::SloSpec spec;
  spec.name = "lb.view_age";
  spec.metric = "worst backend view age (ns)";
  spec.target = 1e3;  // 1us: below any fetch latency, so every probed
                      // view age violates and edges are guaranteed
  spec.window = msec(500);
  spec.error_budget = 1.0;
  spec.min_count = 4;
  slo.add(spec);
  slo.arm_timer(simu, msec(50));

  web::ClusterConfig cfg;
  cfg.seed = seed;
  cfg.frontends = frontends;
  cfg.backends = 4;
  cfg.monitor_period = msec(10);
  cfg.lb_granularity = msec(10);
  cfg.scaleout.gossip_period = msec(10);
  web::ClusterTestbed bed(simu, cfg);
  bed.add_clients(2, web::make_rubis_generator());
  simu.run_for(seconds(1));

  return {telemetry::to_json(reg.snapshot()).dump(2),
          telemetry::spans_to_json(reg.spans()).dump(2),
          slo.log_json().dump(2)};
}

TEST(Determinism, SameSeedSameTelemetryAndSpans) {
  const TraceDump a = run_rubis(42, 1);
  const TraceDump b = run_rubis(42, 1);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.spans, b.spans);
  // The alarm log slides its windows on the simulated clock, so it must
  // replay byte-for-byte too — and non-vacuously (edges fired).
  EXPECT_EQ(a.alarms, b.alarms);
  EXPECT_NE(a.alarms.find("\"to\": \"breach\""), std::string::npos);
  // Sanity: the run actually produced telemetry worth comparing.
  EXPECT_NE(a.metrics.find("lb.pick"), std::string::npos);
  EXPECT_NE(a.metrics.find("web.response"), std::string::npos);
  EXPECT_GT(a.spans.size(), 2u);
}

TEST(Determinism, DifferentSeedDiverges) {
  const TraceDump a = run_rubis(42, 1);
  const TraceDump b = run_rubis(43, 1);
  EXPECT_NE(a.metrics, b.metrics);
}

TEST(Determinism, ScaleOutPlaneIsDeterministicToo) {
  // The multi-front-end plane adds gossip READs, ring arithmetic and
  // peer ingestion to the event stream — all of it must replay exactly.
  const TraceDump a = run_rubis(7, 4);
  const TraceDump b = run_rubis(7, 4);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.spans, b.spans);
  EXPECT_EQ(a.alarms, b.alarms);
  EXPECT_NE(a.metrics.find("cluster.ring.owned"), std::string::npos);
}

TEST(Determinism, ScaleOutDivergesAcrossSeeds) {
  const TraceDump a = run_rubis(7, 4);
  const TraceDump b = run_rubis(8, 4);
  EXPECT_NE(a.metrics, b.metrics);
}

}  // namespace
}  // namespace rdmamon
