#include <gtest/gtest.h>

#include <sstream>

#include "util/chart.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace rdmamon::util {
namespace {

TEST(Format, DurationUnits) {
  EXPECT_EQ(format_duration_ns(500), "500ns");
  EXPECT_EQ(format_duration_ns(1'500), "1.5us");
  EXPECT_EQ(format_duration_ns(12'000'000), "12ms");
  EXPECT_EQ(format_duration_ns(3'200'000'000ll), "3.2s");
}

TEST(Format, NegativeDuration) {
  EXPECT_EQ(format_duration_ns(-1'500), "-1.5us");
}

TEST(Format, Percent) { EXPECT_EQ(format_percent(0.425), "42.5%"); }

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(1536), "1.5KiB");
  EXPECT_EQ(format_bytes(3u << 20), "3.0MiB");
}

TEST(Format, DoubleTrimsZeros) {
  EXPECT_EQ(format_double(3.1400, 4), "3.14");
  EXPECT_EQ(format_double(10.0, 2), "10");
}

TEST(Format, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcdef", 4), "abcdef");
}

TEST(Table, RendersHeaderAndRows) {
  Table t;
  t.set_header({"Query", "Avg", "Max"});
  t.set_align(0, Align::Left);
  t.add_row({"Home", "3", "416"});
  t.add_row({"Browse", "3", "495"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("Query"), std::string::npos);
  EXPECT_NE(out.find("Browse"), std::string::npos);
  EXPECT_NE(out.find("495"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, SeparatorAndRaggedRows) {
  Table t;
  t.set_header({"a", "b"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2", "3", "4"});  // wider than header
  const std::string out = t.to_string();
  EXPECT_NE(out.find('4'), std::string::npos);
}

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row(std::vector<std::string>{"x", "y,z"});
  w.write_row(std::vector<double>{1.5, 2.0}, 1);
  EXPECT_EQ(os.str(), "x,\"y,z\"\n1.5,2.0\n");
}

TEST(Chart, RendersSeriesAndLegend) {
  AsciiChart c("Latency", {"1", "2", "4"});
  c.add_series({"sock", {10, 20, 40}});
  c.add_series({"rdma", {12, 12, 12}});
  const std::string out = c.render();
  EXPECT_NE(out.find("Latency"), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("sock"), std::string::npos);
  EXPECT_NE(out.find("rdma"), std::string::npos);
}

TEST(Chart, RejectsMismatchedSeries) {
  AsciiChart c("t", {"a", "b"});
  EXPECT_THROW(c.add_series({"s", {1.0}}), std::invalid_argument);
}

TEST(Chart, FixedRangeClamps) {
  AsciiChart c("t", {"a"});
  c.set_y_range(0, 1);
  c.add_series({"s", {100.0}});  // above range: clamped to top row
  EXPECT_FALSE(c.render().empty());
}

}  // namespace
}  // namespace rdmamon::util
