#include <gtest/gtest.h>

#include <any>
#include <memory>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "net/nic.hpp"
#include "net/socket.hpp"
#include "net/verbs.hpp"
#include "os/node.hpp"
#include "sim/simulation.hpp"

namespace rdmamon::net {
namespace {

using os::Compute;
using os::NodeConfig;
using os::Program;
using os::SimThread;
using os::SleepFor;
using sim::msec;
using sim::seconds;
using sim::usec;

struct TwoNodes {
  sim::Simulation simu;
  FabricConfig fcfg;
  Fabric fabric;
  os::Node a, b;

  explicit TwoNodes(NodeConfig ncfg = {}, FabricConfig fc = {})
      : fcfg(fc), fabric(simu, fc), a(simu, ncfg), b(simu, ncfg) {
    fabric.attach(a);
    fabric.attach(b);
  }
};

TEST(Fabric, AssignsNodeIds) {
  TwoNodes env;
  EXPECT_EQ(env.a.id, 0);
  EXPECT_EQ(env.b.id, 1);
  EXPECT_EQ(env.fabric.num_nodes(), 2);
}

TEST(Fabric, ConnectRequiresAttachedNodes) {
  sim::Simulation simu;
  Fabric fabric(simu, {});
  os::Node n1(simu, {}), n2(simu, {});
  EXPECT_THROW(fabric.connect(n1, n2), std::logic_error);
}

TEST(Fabric, ConnectionBumpsConnectionCounters) {
  TwoNodes env;
  EXPECT_EQ(env.a.stats().connections(), 0);
  env.fabric.connect(env.a, env.b);
  EXPECT_EQ(env.a.stats().connections(), 1);
  EXPECT_EQ(env.b.stats().connections(), 1);
}

TEST(Socket, RoundTripDeliversPayload) {
  TwoNodes env;
  Connection& conn = env.fabric.connect(env.a, env.b);
  std::string got;
  std::int64_t rtt = -1;
  // Echo server on b.
  env.b.spawn("server", [&](SimThread& self) -> Program {
    Message req;
    co_await conn.end_b().recv(self, req);
    co_await conn.end_b().send(self, 64,
                               std::any_cast<std::string>(req.payload));
  });
  env.a.spawn("client", [&](SimThread& self) -> Program {
    const sim::TimePoint t0 = env.simu.now();
    co_await conn.end_a().send(self, 64, std::string("hello"));
    Message rep;
    co_await conn.end_a().recv(self, rep);
    got = std::any_cast<std::string>(rep.payload);
    rtt = (env.simu.now() - t0).ns;
  });
  env.simu.run_for(seconds(1));
  EXPECT_EQ(got, "hello");
  ASSERT_GT(rtt, 0);
  // Unloaded RTT should be tens of microseconds (IPoIB-era).
  EXPECT_GT(rtt, usec(20).ns);
  EXPECT_LT(rtt, usec(200).ns);
}

TEST(Socket, ManyMessagesArriveInOrder) {
  TwoNodes env;
  Connection& conn = env.fabric.connect(env.a, env.b);
  std::vector<int> received;
  env.b.spawn("rx", [&](SimThread& self) -> Program {
    for (int i = 0; i < 20; ++i) {
      Message m;
      co_await conn.end_b().recv(self, m);
      received.push_back(std::any_cast<int>(m.payload));
    }
  });
  env.a.spawn("tx", [&](SimThread& self) -> Program {
    for (int i = 0; i < 20; ++i) {
      co_await conn.end_a().send(self, 256, i);
    }
  });
  env.simu.run_for(seconds(1));
  ASSERT_EQ(received.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(received[static_cast<size_t>(i)], i);
}

TEST(Socket, ReceivePathCountsBytesAndPackets) {
  TwoNodes env;
  Connection& conn = env.fabric.connect(env.a, env.b);
  env.a.spawn("tx", [&](SimThread& self) -> Program {
    co_await conn.end_a().send(self, 1000, 1);
  });
  env.b.spawn("rx", [&](SimThread& self) -> Program {
    Message m;
    co_await conn.end_b().recv(self, m);
  });
  env.simu.run_for(msec(10));
  EXPECT_EQ(env.fabric.nic(0).tx_packets(), 1u);
  EXPECT_EQ(env.fabric.nic(1).rx_packets(), 1u);
  EXPECT_GT(env.b.stats().net_rate(env.simu.now()), 0.0);
}

TEST(Rdma, ReadReturnsValueAtDmaInstant) {
  TwoNodes env;
  int counter = 7;
  MrKey key = env.fabric.nic(1).register_mr(
      128, [&counter] { return std::any(counter); });
  CompletionQueue cq;
  QueuePair qp(env.fabric.nic(0), 1, cq);
  Completion out;
  std::int64_t latency = -1;
  env.a.spawn("reader", [&](SimThread& self) -> Program {
    const sim::TimePoint t0 = env.simu.now();
    co_await rdma_read_sync(self, qp, key, 128, out);
    latency = (env.simu.now() - t0).ns;
  });
  env.simu.run_for(msec(10));
  EXPECT_EQ(out.status, WcStatus::Success);
  EXPECT_EQ(std::any_cast<int>(out.data), 7);
  // One-sided READ is single-digit microseconds, far below socket RTT.
  EXPECT_GT(latency, usec(2).ns);
  EXPECT_LT(latency, usec(30).ns);
}

TEST(Rdma, ReadSamplesCurrentNotStaleValue) {
  TwoNodes env;
  int counter = 0;
  MrKey key = env.fabric.nic(1).register_mr(
      64, [&counter] { return std::any(counter); });
  CompletionQueue cq;
  QueuePair qp(env.fabric.nic(0), 1, cq);
  // The target value changes at 5ms; a read issued at 10ms must see it.
  env.simu.after(msec(5), [&] { counter = 42; });
  Completion out;
  env.a.spawn("reader", [&](SimThread& self) -> Program {
    co_await SleepFor{msec(10)};
    co_await rdma_read_sync(self, qp, key, 64, out);
  });
  env.simu.run_for(msec(20));
  EXPECT_EQ(std::any_cast<int>(out.data), 42);
}

TEST(Rdma, WriteToReadOnlyRegionFailsWithProtectionError) {
  TwoNodes env;
  int kernel_value = 1;
  MrKey key = env.fabric.nic(1).register_mr(
      64, [&] { return std::any(kernel_value); },
      /*remote_writable=*/false);
  CompletionQueue cq;
  QueuePair qp(env.fabric.nic(0), 1, cq);
  Completion out;
  env.a.spawn("writer", [&](SimThread& self) -> Program {
    co_await rdma_write_sync(self, qp, key, std::any(99), 64, out);
  });
  env.simu.run_for(msec(10));
  EXPECT_EQ(out.status, WcStatus::ProtectionError);
  EXPECT_EQ(kernel_value, 1);  // unchanged: region is read-only
}

TEST(Rdma, WriteToWritableRegionApplies) {
  TwoNodes env;
  int value = 1;
  MrKey key = env.fabric.nic(1).register_mr(
      64, [&] { return std::any(value); },
      /*remote_writable=*/true,
      [&](const std::any& v) { value = std::any_cast<int>(v); });
  CompletionQueue cq;
  QueuePair qp(env.fabric.nic(0), 1, cq);
  Completion out;
  env.a.spawn("writer", [&](SimThread& self) -> Program {
    co_await rdma_write_sync(self, qp, key, std::any(99), 64, out);
  });
  env.simu.run_for(msec(10));
  EXPECT_EQ(out.status, WcStatus::Success);
  EXPECT_EQ(value, 99);
}

TEST(Rdma, WriteCompletesInvalidKeyWhenTargetMrDereggedMidFlight) {
  // The push plane's shutdown race: a WRITE is posted, then the target
  // inbox MR is torn down before the DMA instant. The rkey must be
  // resolved when the DMA lands, not when the WR was posted — the writer
  // gets InvalidKey and the (dead) region is never mutated.
  TwoNodes env;
  int value = 1;
  MrKey key = env.fabric.nic(1).register_mr(
      64, [&] { return std::any(value); },
      /*remote_writable=*/true,
      [&](const std::any& v) { value = std::any_cast<int>(v); });
  CompletionQueue cq;
  QueuePair qp(env.fabric.nic(0), 1, cq);
  const std::uint64_t wr = cq.alloc_wr_id();
  qp.post_write(key, std::any(99), 64, wr);
  ASSERT_TRUE(env.fabric.nic(1).deregister_mr(key));  // before the DMA lands
  env.simu.run_for(msec(10));
  Completion out;
  ASSERT_TRUE(cq.try_pop(wr, out));
  EXPECT_EQ(out.status, WcStatus::InvalidKey);
  EXPECT_EQ(value, 1);  // the dead region was never written
}

TEST(Rdma, ForgottenWriteCompletionIsDroppedAsStale) {
  // A consumer that gives up on a WRITE WR (publisher retarget, shutdown)
  // calls forget(); the late completion must be swallowed by the CQ, not
  // delivered to whoever reuses the id space. Previously only READ WRs
  // exercised this path.
  TwoNodes env;
  int value = 1;
  MrKey key = env.fabric.nic(1).register_mr(
      64, [&] { return std::any(value); },
      /*remote_writable=*/true,
      [&](const std::any& v) { value = std::any_cast<int>(v); });
  CompletionQueue cq;
  QueuePair qp(env.fabric.nic(0), 1, cq);
  const std::uint64_t wr = cq.alloc_wr_id();
  qp.post_write(key, std::any(42), 64, wr);
  cq.forget(wr);  // abandon before the completion arrives
  env.simu.run_for(msec(10));
  Completion out;
  EXPECT_FALSE(cq.try_pop(wr, out));  // never delivered
  EXPECT_EQ(cq.forgets(), 1u);
  EXPECT_EQ(cq.stale_dropped(), 1u);
  EXPECT_EQ(value, 42);  // the WRITE itself still landed — only the
                         // completion was abandoned, not the data
}

TEST(Rdma, ForgetAfterDeliveryIsNotStale) {
  // forget() on a WR whose completion was already popped must not count
  // future completions of OTHER WRs as stale (id-keyed, not positional).
  TwoNodes env;
  int value = 0;
  MrKey key = env.fabric.nic(1).register_mr(
      64, [&] { return std::any(value); },
      /*remote_writable=*/true,
      [&](const std::any& v) { value = std::any_cast<int>(v); });
  CompletionQueue cq;
  QueuePair qp(env.fabric.nic(0), 1, cq);
  const std::uint64_t w1 = cq.alloc_wr_id();
  qp.post_write(key, std::any(1), 64, w1);
  env.simu.run_for(msec(5));
  Completion out;
  ASSERT_TRUE(cq.try_pop(w1, out));
  EXPECT_EQ(out.status, WcStatus::Success);
  cq.forget(w1);  // late forget of an already-delivered WR: harmless
  const std::uint64_t w2 = cq.alloc_wr_id();
  qp.post_write(key, std::any(2), 64, w2);
  env.simu.run_for(msec(5));
  ASSERT_TRUE(cq.try_pop(w2, out));  // w2 must still be delivered
  EXPECT_EQ(out.status, WcStatus::Success);
  EXPECT_EQ(value, 2);
}

TEST(Rdma, InvalidKeyCompletesWithError) {
  TwoNodes env;
  CompletionQueue cq;
  QueuePair qp(env.fabric.nic(0), 1, cq);
  Completion out;
  env.a.spawn("reader", [&](SimThread& self) -> Program {
    co_await rdma_read_sync(self, qp, MrKey{9999}, 64, out);
  });
  env.simu.run_for(msec(10));
  EXPECT_EQ(out.status, WcStatus::InvalidKey);
}

TEST(Rdma, LatencyUnaffectedByTargetCpuLoad) {
  // The paper's headline micro-benchmark property (Fig 3, RDMA half).
  auto measure = [](int hogs) {
    TwoNodes env;
    for (int i = 0; i < hogs; ++i) {
      env.b.spawn("hog" + std::to_string(i), [](SimThread&) -> Program {
        for (;;) co_await Compute{seconds(10)};
      });
    }
    MrKey key =
        env.fabric.nic(1).register_mr(128, [] { return std::any(1); });
    CompletionQueue cq;
    QueuePair qp(env.fabric.nic(0), 1, cq);
    double total = 0;
    int n = 0;
    env.a.spawn("reader", [&](SimThread& self) -> Program {
      for (int i = 0; i < 50; ++i) {
        co_await SleepFor{msec(10)};
        Completion out;
        const sim::TimePoint t0 = env.simu.now();
        co_await rdma_read_sync(self, qp, key, 128, out);
        total += (env.simu.now() - t0).seconds();
        ++n;
      }
    });
    env.simu.run_for(seconds(2));
    return total / n;
  };
  const double unloaded = measure(0);
  const double loaded = measure(16);
  EXPECT_NEAR(loaded, unloaded, unloaded * 0.05);
}

TEST(Socket, LatencyDegradesWithTargetCpuLoad) {
  // The other half of Fig 3: socket ping-pong RTT inflates when the
  // server node is saturated with runnable threads.
  auto measure = [](int hogs) {
    TwoNodes env;
    Connection& conn = env.fabric.connect(env.a, env.b);
    for (int i = 0; i < hogs; ++i) {
      env.b.spawn("hog" + std::to_string(i), [](SimThread&) -> Program {
        for (;;) co_await Compute{seconds(10)};
      });
    }
    env.b.spawn("echo", [&](SimThread& self) -> Program {
      for (;;) {
        Message m;
        co_await conn.end_b().recv(self, m);
        co_await conn.end_b().send(self, 64, 0);
      }
    });
    double total = 0;
    int n = 0;
    env.a.spawn("client", [&](SimThread& self) -> Program {
      for (int i = 0; i < 20; ++i) {
        co_await SleepFor{msec(20)};
        const sim::TimePoint t0 = env.simu.now();
        co_await conn.end_a().send(self, 64, 0);
        Message rep;
        co_await conn.end_a().recv(self, rep);
        total += (env.simu.now() - t0).seconds();
        ++n;
      }
    });
    env.simu.run_for(seconds(2));
    return total / n;
  };
  const double unloaded = measure(0);
  const double loaded = measure(8);
  EXPECT_GT(loaded, unloaded * 3);
}

// --- verbs fast path: selective signaling, windows, moderation ---------------

TEST(SelectiveSignaling, UnsignaledSuccessesRetireViaTheCloser) {
  // signal-every-4 over 8 READs: every completion is still delivered to
  // the consumer (the shadow buffer surfaces unsignaled successes when a
  // closer proves them retired), but only 2 CQEs were generated.
  TwoNodes env;
  MrKey key = env.fabric.nic(1).register_mr(64, [] { return std::any(5); });
  CompletionQueue cq;
  auto ctx = std::make_shared<QpContext>(env.fabric.nic(0),
                                         /*signal_every=*/4);
  QueuePair qp(env.fabric.nic(0), 1, cq, ctx);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(cq.alloc_wr_id());
  for (const std::uint64_t id : ids) {
    qp.post_read(key, 64, id, /*force_signal=*/false);
  }
  env.simu.run_for(msec(10));
  ASSERT_EQ(cq.size(), 8u);
  Completion c;
  for (const std::uint64_t id : ids) {
    ASSERT_TRUE(cq.try_pop(id, c));
    EXPECT_EQ(c.status, WcStatus::Success);
    EXPECT_EQ(std::any_cast<int>(c.data), 5);
  }
  EXPECT_EQ(cq.cqes_signaled(), 2u);       // seq 4 and seq 8
  EXPECT_EQ(cq.unsignaled_retired(), 6u);  // proven by the two closers
  EXPECT_EQ(ctx->unsignaled_posted(), 6u);
  EXPECT_EQ(env.fabric.nic(0).unsignaled_posted(), 6u);
  EXPECT_EQ(cq.shadowed(), 0u);
}

TEST(SelectiveSignaling, UnsignaledErrorSurfacesImmediately) {
  // An unsignaled WR that FAILS must not wait for a closer: error
  // completions are always generated (real RC flushes the queue).
  TwoNodes env;
  CompletionQueue cq;
  auto ctx = std::make_shared<QpContext>(env.fabric.nic(0),
                                         /*signal_every=*/8);
  QueuePair qp(env.fabric.nic(0), 1, cq, ctx);
  const std::uint64_t wr = cq.alloc_wr_id();
  qp.post_read(MrKey{4242}, 64, wr, /*force_signal=*/false);  // bad rkey
  env.simu.run_for(msec(10));
  Completion c;
  ASSERT_TRUE(cq.try_pop(wr, c));  // no closer was ever posted
  EXPECT_EQ(c.status, WcStatus::InvalidKey);
  EXPECT_EQ(cq.shadowed(), 0u);
}

TEST(SelectiveSignaling, ForgetReclaimsAShadowedUnsignaledWr) {
  // The leak regression: a WR posted unsignaled SUCCEEDS (held in the
  // shadow buffer awaiting a closer) and is then abandoned. forget()
  // must reclaim the shadow slot right away — not at the next closer,
  // and the id must never ghost-surface afterwards.
  TwoNodes env;
  MrKey key = env.fabric.nic(1).register_mr(64, [] { return std::any(1); });
  CompletionQueue cq;
  auto ctx = std::make_shared<QpContext>(env.fabric.nic(0),
                                         /*signal_every=*/16);
  QueuePair qp(env.fabric.nic(0), 1, cq, ctx);
  const std::uint64_t wr = cq.alloc_wr_id();
  qp.post_read(key, 64, wr, /*force_signal=*/false);
  env.simu.run_for(msec(5));  // success landed: shadowed, no CQE
  EXPECT_EQ(cq.shadowed(), 1u);
  EXPECT_TRUE(cq.empty());
  cq.forget(wr);
  EXPECT_EQ(cq.shadowed(), 0u);  // reclaimed now
  EXPECT_EQ(cq.stale_dropped(), 1u);
  const std::uint64_t closer = cq.alloc_wr_id();
  qp.post_read(key, 64, closer, /*force_signal=*/true);
  env.simu.run_for(msec(5));
  Completion c;
  EXPECT_FALSE(cq.try_pop(wr, c));  // the forgotten WR never surfaces
  ASSERT_TRUE(cq.try_pop(closer, c));
  EXPECT_EQ(c.status, WcStatus::Success);
  EXPECT_EQ(cq.shadowed(), 0u);
}

TEST(InflightWindow, PostsBeyondTheWindowDeferAndDrain) {
  TwoNodes env;
  MrKey key = env.fabric.nic(1).register_mr(64, [] { return std::any(2); });
  CompletionQueue cq;
  auto ctx = std::make_shared<QpContext>(env.fabric.nic(0),
                                         /*signal_every=*/1,
                                         /*send_depth=*/2);
  QueuePair qp(env.fabric.nic(0), 1, cq, ctx);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(cq.alloc_wr_id());
  for (const std::uint64_t id : ids) qp.post_read(key, 64, id);
  EXPECT_EQ(ctx->inflight(), 2u);  // window full, the rest queued
  EXPECT_EQ(ctx->deferred_pending(), 4u);
  env.simu.run_for(msec(10));
  EXPECT_EQ(ctx->inflight(), 0u);
  EXPECT_EQ(ctx->deferred_pending(), 0u);
  EXPECT_EQ(ctx->deferred_total(), 4u);
  Completion c;
  for (const std::uint64_t id : ids) {
    ASSERT_TRUE(cq.try_pop(id, c));
    EXPECT_EQ(c.status, WcStatus::Success);
  }
}

TEST(CqModeration, BatchesNotificationsPerCount) {
  // cq_mod 4 over 8 completions: the consumer is woken twice, each wakeup
  // draining a 4-completion batch.
  TwoNodes env;
  MrKey key = env.fabric.nic(1).register_mr(64, [] { return std::any(3); });
  CompletionQueue cq;
  cq.bind_moderation(env.simu, /*count=*/4, /*period=*/msec(1));
  QueuePair qp(env.fabric.nic(0), 1, cq);
  int wakeups = 0;
  env.a.spawn("reaper", [&](SimThread& self) -> Program {
    std::size_t drained = 0;
    while (drained < 8) {
      co_await os::WaitOn{&cq.wait_queue()};
      ++wakeups;
      while (!cq.empty()) {
        cq.pop();
        ++drained;
      }
    }
  });
  for (int i = 0; i < 8; ++i) qp.post_read(key, 64, cq.alloc_wr_id());
  env.simu.run_for(msec(20));
  EXPECT_EQ(wakeups, 2);
  EXPECT_EQ(cq.notifies(), 2u);
  EXPECT_EQ(cq.coalesced_polls(), 2u);
}

TEST(CqModeration, PeriodTimerFlushesAPartialBatch) {
  // Fewer completions than the batch count: the period timer must flush
  // them, or the consumer would wait for completions that never come.
  TwoNodes env;
  MrKey key = env.fabric.nic(1).register_mr(64, [] { return std::any(4); });
  CompletionQueue cq;
  cq.bind_moderation(env.simu, /*count=*/8, sim::usec(16));
  QueuePair qp(env.fabric.nic(0), 1, cq);
  bool woke = false;
  env.a.spawn("reaper", [&](SimThread& self) -> Program {
    co_await os::WaitOn{&cq.wait_queue()};
    woke = true;
  });
  for (int i = 0; i < 3; ++i) qp.post_read(key, 64, cq.alloc_wr_id());
  env.simu.run_for(msec(10));
  EXPECT_TRUE(woke);
  EXPECT_EQ(cq.size(), 3u);
  EXPECT_EQ(cq.notifies(), 1u);
}

TEST(VerbsTuning, ContextPoolSizeAndPolicyFollowTuning) {
  TwoNodes env;
  VerbsTuning t;
  EXPECT_TRUE(make_context_pool(env.fabric.nic(0), t).empty());
  t.shared_contexts = 3;
  t.signal_every = 4;
  t.send_depth = 8;
  const auto pool = make_context_pool(env.fabric.nic(0), t);
  ASSERT_EQ(pool.size(), 3u);
  for (const auto& c : pool) {
    EXPECT_EQ(c->signal_every(), 4);
    EXPECT_EQ(c->send_depth(), 8u);
  }
  EXPECT_NE(pool[0]->ctx_id(), pool[1]->ctx_id());
  EXPECT_NE(pool[1]->ctx_id(), pool[2]->ctx_id());
}

// --- bounded NIC context cache ------------------------------------------------

TEST(NicCtxCache, UnboundedByDefaultCountsNothing) {
  TwoNodes env;  // FabricConfig default: nic_ctx_cache_entries = 0
  MrKey key = env.fabric.nic(1).register_mr(64, [] { return std::any(1); });
  CompletionQueue cq;
  QueuePair qp(env.fabric.nic(0), 1, cq);
  for (int i = 0; i < 4; ++i) qp.post_read(key, 64, cq.alloc_wr_id());
  env.simu.run_for(msec(10));
  for (const int n : {0, 1}) {
    EXPECT_EQ(env.fabric.nic(n).qpc_hits(), 0u);
    EXPECT_EQ(env.fabric.nic(n).qpc_misses(), 0u);
    EXPECT_EQ(env.fabric.nic(n).qpc_evictions(), 0u);
  }
}

TEST(NicCtxCache, AlternatingDedicatedContextsThrashABoundedCache) {
  // Two dedicated contexts ping-pong over a 1-entry cache: every post
  // misses and evicts the other. The target side holds one MR entry that
  // misses once and then hits.
  FabricConfig fc;
  fc.nic_ctx_cache_entries = 1;
  TwoNodes env({}, fc);
  MrKey key = env.fabric.nic(1).register_mr(64, [] { return std::any(1); });
  CompletionQueue cq;
  QueuePair qp1(env.fabric.nic(0), 1, cq);
  QueuePair qp2(env.fabric.nic(0), 1, cq);
  for (int i = 0; i < 4; ++i) {
    qp1.post_read(key, 64, cq.alloc_wr_id());
    qp2.post_read(key, 64, cq.alloc_wr_id());
  }
  env.simu.run_for(msec(10));
  EXPECT_EQ(env.fabric.nic(0).qpc_misses(), 8u);
  EXPECT_EQ(env.fabric.nic(0).qpc_hits(), 0u);
  EXPECT_EQ(env.fabric.nic(0).qpc_evictions(), 7u);
  EXPECT_EQ(env.fabric.nic(1).qpc_misses(), 1u);
  EXPECT_EQ(env.fabric.nic(1).qpc_hits(), 7u);
  EXPECT_EQ(env.fabric.nic(1).qpc_evictions(), 0u);
}

TEST(NicCtxCache, SharedContextTurnsThrashIntoHits) {
  // Same cache, same posting pattern — but both QPs multiplex one
  // context, so the single entry stays resident.
  FabricConfig fc;
  fc.nic_ctx_cache_entries = 1;
  TwoNodes env({}, fc);
  MrKey key = env.fabric.nic(1).register_mr(64, [] { return std::any(1); });
  CompletionQueue cq;
  auto ctx = std::make_shared<QpContext>(env.fabric.nic(0));
  QueuePair qp1(env.fabric.nic(0), 1, cq, ctx);
  QueuePair qp2(env.fabric.nic(0), 1, cq, ctx);
  for (int i = 0; i < 4; ++i) {
    qp1.post_read(key, 64, cq.alloc_wr_id());
    qp2.post_read(key, 64, cq.alloc_wr_id());
  }
  env.simu.run_for(msec(10));
  EXPECT_EQ(env.fabric.nic(0).qpc_misses(), 1u);
  EXPECT_EQ(env.fabric.nic(0).qpc_hits(), 7u);
  EXPECT_EQ(env.fabric.nic(0).qpc_evictions(), 0u);
}

TEST(NicCtxCache, MissPenaltyDelaysTheRead) {
  // Cold bounded cache: the first READ pays one QPC fetch at the
  // initiator plus one MR fetch at the target.
  auto measure = [](int cache_entries) {
    FabricConfig fc;
    fc.nic_ctx_cache_entries = cache_entries;
    TwoNodes env({}, fc);
    MrKey key =
        env.fabric.nic(1).register_mr(64, [] { return std::any(1); });
    CompletionQueue cq;
    QueuePair qp(env.fabric.nic(0), 1, cq);
    std::int64_t latency = -1;
    env.a.spawn("reader", [&](SimThread& self) -> Program {
      Completion out;
      const sim::TimePoint t0 = env.simu.now();
      co_await rdma_read_sync(self, qp, key, 64, out);
      latency = (env.simu.now() - t0).ns;
    });
    env.simu.run_for(msec(10));
    return latency;
  };
  const std::int64_t unbounded = measure(0);
  const std::int64_t bounded = measure(64);
  ASSERT_GT(unbounded, 0);
  EXPECT_EQ(bounded - unbounded, 2 * FabricConfig{}.nic_ctx_miss_penalty.ns);
}

TEST(Nic, TxSerializesAtLinkBandwidth) {
  FabricConfig fc;
  fc.bandwidth_bps = 1e9;  // 1 GB/s for round numbers
  TwoNodes env({}, fc);
  Connection& conn = env.fabric.connect(env.a, env.b);
  std::vector<std::int64_t> arrivals;
  env.b.spawn("rx", [&](SimThread& self) -> Program {
    for (int i = 0; i < 2; ++i) {
      Message m;
      co_await conn.end_b().recv(self, m);
      arrivals.push_back(env.simu.now().ns);
    }
  });
  env.a.spawn("tx", [&](SimThread& self) -> Program {
    // Two 1MB messages back to back: second must arrive ~1ms later.
    co_await conn.end_a().send(self, 1'000'000, 0);
    co_await conn.end_a().send(self, 1'000'000, 1);
  });
  env.simu.run_for(seconds(1));
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_GT(arrivals[1] - arrivals[0], msec(1).ns / 2);
}

}  // namespace
}  // namespace rdmamon::net
