// Staleness SLO engine + flight recorder + RDMA-readable alarms.
//
// Covers the freshness plane end to end: bounded flight rings and their
// merged time-ordered dumps, edge-triggered alarm semantics (one record
// per transition, deterministic budget refill on the simulated clock,
// byte-identical logs), probe polling, the timer, the AlarmMonitor MR
// publication — and the acceptance scenario: kill a push publisher's
// node, watch "lb.view_age" breach within one window, read the alarm
// from another node with a one-sided RDMA READ, and validate the
// post-mortem flight dump it left behind.
#include <gtest/gtest.h>

#include <any>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "lb/balancer.hpp"
#include "monitor/alarm.hpp"
#include "monitor/inbox.hpp"
#include "monitor/monitor.hpp"
#include "net/fabric.hpp"
#include "net/verbs.hpp"
#include "os/node.hpp"
#include "sim/simulation.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/slo.hpp"

namespace rdmamon {
namespace {

using sim::msec;
using sim::seconds;
using telemetry::AlarmState;
using telemetry::AlarmView;
using telemetry::FlightRecorder;
using telemetry::FlightRing;
using telemetry::SloEngine;
using telemetry::SloSpec;

sim::TimePoint tp(std::int64_t ms) { return sim::TimePoint{} + msec(ms); }

/// Every `"t_ns": <v>` inside the events array of a dump string, in
/// document order (util::JsonValue has no const readers, so dump
/// validation goes through the rendered text).
std::vector<std::int64_t> event_times(const std::string& dump) {
  std::vector<std::int64_t> out;
  const std::string key = "\"t_ns\": ";
  for (std::size_t pos = dump.find(key); pos != std::string::npos;
       pos = dump.find(key, pos + key.size())) {
    out.push_back(std::strtoll(dump.c_str() + pos + key.size(), nullptr, 10));
  }
  return out;
}

// --- flight recorder ---------------------------------------------------------

TEST(FlightRing, BoundedOverwriteKeepsNewestAndCountsDrops) {
  FlightRecorder rec;
  FlightRing* r = rec.ring("x", 4);
  for (int i = 0; i < 10; ++i) r->record_at(tp(i), "e", i);
  EXPECT_EQ(r->capacity(), 4u);
  EXPECT_EQ(r->size(), 4u);
  EXPECT_EQ(r->recorded(), 10u);
  EXPECT_EQ(r->dropped(), 6u);
  const std::vector<telemetry::FlightEvent> evs = r->events();
  ASSERT_EQ(evs.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(evs[static_cast<std::size_t>(i)].a, 6 + i);  // oldest first
  }
  // Same subsystem name returns the same ring; the creation capacity
  // sticks.
  EXPECT_EQ(rec.ring("x", 999), r);
  EXPECT_EQ(r->capacity(), 4u);
}

TEST(FlightRing, DisabledRecorderDropsEverything) {
  FlightRecorder rec;
  FlightRing* r = rec.ring("x", 4);
  rec.set_enabled(false);
  r->record_at(tp(1), "e");
  telemetry::fr_record(r, "e2");
  EXPECT_EQ(r->recorded(), 0u);
  EXPECT_EQ(r->size(), 0u);
  rec.set_enabled(true);
  r->record_at(tp(2), "e3");
  EXPECT_EQ(r->recorded(), 1u);
}

TEST(FlightRecorder, NullRingHelpersAreNoOps) {
  telemetry::fr_record(nullptr, "e", 1, 2, 3.0);  // must not crash
  telemetry::fr_record_at(nullptr, tp(1), "e");
}

TEST(FlightRecorder, MergedDumpIsTimeOrderedAcrossRings) {
  FlightRecorder rec;
  FlightRing* a = rec.ring("aaa", 8);
  FlightRing* b = rec.ring("bbb", 8);
  // Interleaved stamps, including a same-instant tie across rings: the
  // global sequence number must break it in record order.
  a->record_at(tp(5), "a1");
  b->record_at(tp(1), "b1");
  a->record_at(tp(3), "a2");
  b->record_at(tp(3), "b2");
  const std::string doc = rec.dump("unit").dump(2);
  EXPECT_NE(doc.find("\"reason\": \"unit\""), std::string::npos);
  const std::vector<std::int64_t> ts = event_times(doc);
  ASSERT_EQ(ts.size(), 4u);
  for (std::size_t i = 1; i < ts.size(); ++i) EXPECT_LE(ts[i - 1], ts[i]);
  // The same-instant pair keeps record order: a2 (recorded first) before b2.
  EXPECT_LT(doc.find("\"kind\": \"a2\""), doc.find("\"kind\": \"b2\""));
  // Per-ring accounting is present, in name order.
  EXPECT_LT(doc.find("\"name\": \"aaa\""), doc.find("\"name\": \"bbb\""));
}

TEST(FlightRecorder, PostmortemWritesFileOnlyWhenDirConfigured) {
  ::unsetenv("RDMAMON_FLIGHT_DIR");
  FlightRecorder rec;
  rec.ring("r", 4)->record_at(tp(1), "boom", 7);
  EXPECT_EQ(rec.postmortem("nowhere"), "");  // always-on default: no disk

  const std::string dir = ::testing::TempDir() + "slo_test_pm";
  std::filesystem::create_directories(dir);
  rec.set_postmortem_dir(dir);
  const std::string path = rec.postmortem("slo lb.view_age");
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("flight_slo_lb_view_age_0.json"), std::string::npos);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("\"reason\": \"slo lb.view_age\""),
            std::string::npos);
  EXPECT_NE(ss.str().find("\"kind\": \"boom\""), std::string::npos);
  // Repeated triggers never clobber earlier dumps.
  const std::string path2 = rec.postmortem("slo lb.view_age");
  EXPECT_NE(path2.find("_1.json"), std::string::npos);
}

// --- SLO engine: edge semantics ----------------------------------------------

SloSpec age_spec(double target, double budget = 1.0,
                 std::size_t min_count = 4) {
  SloSpec spec;
  spec.name = "age";
  spec.metric = "test view age";
  spec.target = target;
  spec.window = msec(500);
  spec.error_budget = budget;
  spec.warn_fraction = 0.5;
  spec.min_count = min_count;
  return spec;
}

TEST(SloEngine, EdgeFiresExactlyOncePerTransition) {
  SloEngine eng;
  SloEngine::Stream* s = eng.add(age_spec(/*target=*/100.0));
  // Healthy observations: state stays Ok, nothing logged.
  for (int i = 0; i < 4; ++i) eng.observe(s, 50.0, tp(i * 10));
  eng.evaluate(tp(40));
  EXPECT_EQ(eng.state(s), AlarmState::Ok);
  EXPECT_TRUE(eng.log().empty());

  // All-violating window (the old healthy points slid out): one Breach
  // edge, and ONLY one — re-evaluating in the breached state is silent.
  for (int i = 0; i < 4; ++i) eng.observe(s, 500.0, tp(600 + i * 20));
  eng.evaluate(tp(700));
  EXPECT_EQ(eng.state(s), AlarmState::Breach);
  ASSERT_EQ(eng.log().size(), 1u);
  EXPECT_EQ(eng.log()[0].from, AlarmState::Ok);
  EXPECT_EQ(eng.log()[0].to, AlarmState::Breach);
  EXPECT_DOUBLE_EQ(eng.log()[0].consumed, 1.0);
  eng.evaluate(tp(710));
  eng.evaluate(tp(720));
  EXPECT_EQ(eng.log().size(), 1u);

  // Budget refill is purely clock-driven: once the violating points age
  // out of the window and healthy ones replace them, exactly one
  // recovery edge fires.
  for (int i = 0; i < 8; ++i) eng.observe(s, 10.0, tp(1300 + i * 10));
  eng.evaluate(tp(1400));
  EXPECT_EQ(eng.state(s), AlarmState::Ok);
  ASSERT_EQ(eng.log().size(), 2u);
  EXPECT_EQ(eng.log()[1].from, AlarmState::Breach);
  EXPECT_EQ(eng.log()[1].to, AlarmState::Ok);
  eng.evaluate(tp(1450));
  EXPECT_EQ(eng.log().size(), 2u);
}

TEST(SloEngine, WarnLadderBeforeBreach) {
  SloEngine eng;
  // budget 0.5: consumed = 2x the violating fraction, so 25% violating
  // arms BreachWarn (consumed 0.5) and 50% violating breaches.
  SloEngine::Stream* s = eng.add(age_spec(100.0, /*budget=*/0.5));
  for (int i = 0; i < 3; ++i) eng.observe(s, 50.0, tp(i * 10));
  eng.observe(s, 500.0, tp(30));
  eng.evaluate(tp(40));
  EXPECT_EQ(eng.state(s), AlarmState::BreachWarn);
  eng.observe(s, 500.0, tp(50));
  eng.observe(s, 500.0, tp(60));
  eng.evaluate(tp(70));
  EXPECT_EQ(eng.state(s), AlarmState::Breach);
  ASSERT_EQ(eng.log().size(), 2u);
  EXPECT_EQ(eng.log()[0].to, AlarmState::BreachWarn);
  EXPECT_EQ(eng.log()[1].to, AlarmState::Breach);
}

TEST(SloEngine, MinCountHoldsJudgement) {
  SloEngine eng;
  SloEngine::Stream* s = eng.add(age_spec(100.0, 1.0, /*min_count=*/8));
  for (int i = 0; i < 7; ++i) eng.observe(s, 500.0, tp(i * 10));
  eng.evaluate(tp(80));
  // 100% violating but below the evidence floor: no state change.
  EXPECT_EQ(eng.state(s), AlarmState::Ok);
  EXPECT_TRUE(eng.log().empty());
  eng.observe(s, 500.0, tp(90));
  eng.evaluate(tp(100));
  EXPECT_EQ(eng.state(s), AlarmState::Breach);
}

TEST(SloEngine, ProbesArePolledAtEvaluate) {
  SloEngine eng;
  SloSpec spec = age_spec(100.0, 1.0, /*min_count=*/2);
  spec.window = msec(100);
  SloEngine::Stream* s = eng.add(spec);
  double gauge = 50.0;
  const std::uint64_t id = eng.add_probe(s, [&gauge] { return gauge; });
  eng.evaluate(tp(0));
  EXPECT_EQ(eng.state(s), AlarmState::Ok);
  gauge = 500.0;
  // Two polls after the healthy point slid out: a pure-violating window.
  eng.evaluate(tp(200));
  eng.evaluate(tp(210));
  EXPECT_EQ(eng.state(s), AlarmState::Breach);
  eng.remove_probe(id);
  const std::size_t n_log = eng.log().size();
  eng.evaluate(tp(220));
  EXPECT_EQ(eng.log().size(), n_log);  // no probe, no new evidence
}

TEST(SloEngine, AlarmLogJsonIsByteIdenticalAcrossRuns) {
  const auto run = [] {
    SloEngine eng;
    SloEngine::Stream* s = eng.add(age_spec(100.0));
    for (int i = 0; i < 4; ++i) eng.observe(s, 500.0, tp(10 + i * 10));
    eng.evaluate(tp(50));
    for (int i = 0; i < 8; ++i) eng.observe(s, 1.0, tp(700 + i * 10));
    eng.evaluate(tp(800));
    return eng.log_json().dump(2);
  };
  const std::string a = run();
  EXPECT_EQ(a, run());
  EXPECT_NE(a.find("\"to\": \"breach\""), std::string::npos);
  EXPECT_NE(a.find("\"to\": \"ok\""), std::string::npos);
}

TEST(SloEngine, ViewSummarisesWorstStateInSpecOrder) {
  SloEngine eng;
  SloEngine::Stream* ok = eng.add(age_spec(100.0));
  SloSpec second = age_spec(100.0);
  second.name = "age2";
  SloEngine::Stream* bad = eng.add(second);
  for (int i = 0; i < 4; ++i) eng.observe(bad, 500.0, tp(i * 10));
  eng.evaluate(tp(40));
  AlarmView v = eng.view();
  EXPECT_EQ(v.worst, AlarmState::Breach);
  ASSERT_EQ(v.entries.size(), 2u);
  EXPECT_EQ(v.entries[0].name, "age");
  EXPECT_EQ(v.entries[0].state, AlarmState::Ok);
  EXPECT_EQ(v.entries[1].name, "age2");
  EXPECT_EQ(v.entries[1].state, AlarmState::Breach);
  EXPECT_EQ(v.entries[1].edges, 1u);
  const std::uint64_t ver = v.version;
  EXPECT_EQ(eng.view().version, ver + 1);  // readers can detect motion
  EXPECT_EQ(eng.spec(ok).name, "age");
}

TEST(SloEngine, TimerEvaluatesOnSimulatedClock) {
  sim::Simulation simu;
  telemetry::Registry reg;
  reg.install(simu);
  SloEngine eng;
  eng.install(reg);
  SloSpec spec = age_spec(100.0, 1.0, /*min_count=*/2);
  SloEngine::Stream* s = eng.add(spec);
  eng.add_probe(s, [] { return 500.0; });  // permanently violating
  eng.arm_timer(simu, msec(10));
  simu.run_for(msec(100));
  EXPECT_EQ(eng.state(s), AlarmState::Breach);
  ASSERT_EQ(eng.log().size(), 1u);
  // The edge is mirrored into registry counters and the "slo" flight ring.
  EXPECT_EQ(reg.counter("slo.edges", {{"slo", "age"}}).value(), 1u);
  EXPECT_EQ(reg.counter("slo.breach", {{"slo", "age"}}).value(), 1u);
  EXPECT_GE(reg.recorder().ring("slo")->recorded(), 1u);
  eng.disarm_timer();
}

// --- AlarmMonitor: the MR-published alarm ------------------------------------

TEST(AlarmMonitor, AlarmReadableViaOneSidedRead) {
  sim::Simulation simu;
  telemetry::Registry reg;
  reg.install(simu);
  SloEngine eng;
  eng.install(reg);
  SloSpec spec = age_spec(100.0, 1.0, /*min_count=*/2);
  spec.name = "lb.view_age";
  SloEngine::Stream* s = eng.add(spec);
  eng.add_probe(s, [] { return 500.0; });
  eng.arm_timer(simu, msec(10));

  net::Fabric fabric(simu, {});
  os::Node fe(simu, {.name = "frontend"}), reader(simu, {.name = "reader"});
  fabric.attach(fe);
  fabric.attach(reader);
  monitor::AlarmMonitorConfig acfg;
  acfg.period = msec(10);
  monitor::AlarmMonitor alarms(fabric, fe, eng, acfg);

  bool got = false;
  AlarmView remote;
  reader.spawn("alarm-reader", [&](os::SimThread& self) -> os::Program {
    co_await os::SleepFor{msec(60)};
    net::CompletionQueue cq;
    net::QueuePair qp{fabric.nic(reader.id), alarms.node_id(), cq};
    net::Completion c;
    co_await net::rdma_read_sync(self, qp, alarms.mr_key(),
                                 alarms.config().slot_bytes, c);
    if (c.status == net::WcStatus::Success) {
      remote = std::any_cast<AlarmView>(c.data);
      got = true;
    }
  });
  simu.run_for(msec(120));

  EXPECT_GE(alarms.published(), 3u);
  ASSERT_TRUE(got);
  EXPECT_EQ(remote.worst, AlarmState::Breach);
  ASSERT_EQ(remote.entries.size(), 1u);
  EXPECT_EQ(remote.entries[0].name, "lb.view_age");
  EXPECT_EQ(remote.entries[0].state, AlarmState::Breach);
  EXPECT_GT(remote.version, 0u);
}

TEST(AlarmMonitor, EdgeRepublishesWithoutWaitingForPeriod) {
  sim::Simulation simu;
  telemetry::Registry reg;
  reg.install(simu);
  SloEngine eng;
  eng.install(reg);
  SloSpec spec = age_spec(100.0, 1.0, /*min_count=*/2);
  SloEngine::Stream* s = eng.add(spec);

  net::Fabric fabric(simu, {});
  os::Node fe(simu, {.name = "frontend"});
  fabric.attach(fe);
  monitor::AlarmMonitorConfig acfg;
  acfg.period = seconds(10);  // heartbeat far beyond the run: only the
                              // edge hook can refresh the slot in time
  monitor::AlarmMonitor alarms(fabric, fe, eng, acfg);

  simu.at(tp(50), [&] {
    eng.observe(s, 500.0, simu.now());
    eng.observe(s, 500.0, simu.now());
    eng.evaluate(simu.now());
  });
  simu.run_for(msec(100));
  EXPECT_EQ(alarms.latest().worst, AlarmState::Breach);
  EXPECT_GE(alarms.published(), 2u);  // initial heartbeat + the edge
}

// --- acceptance: frozen publisher -> breach -> remote read -> post-mortem ----

TEST(FreshnessAlarm, DeadPublisherBreachesSloAndLeavesFlightDump) {
  ::unsetenv("RDMAMON_FLIGHT_DIR");
  const std::string dir = ::testing::TempDir() + "slo_accept_pm";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  sim::Simulation simu;
  telemetry::Registry reg;
  reg.install(simu);
  reg.recorder().set_postmortem_dir(dir);
  SloEngine slo;
  slo.install(reg);
  // p100 view age <= 150ms over a 500ms window: any sustained staleness
  // must breach within one window of the first violating probe.
  SloSpec spec;
  spec.name = "lb.view_age";
  spec.metric = "worst backend view age (ns)";
  spec.target = 150e6;
  spec.window = msec(500);
  spec.error_budget = 1.0;
  spec.warn_fraction = 0.5;
  spec.min_count = 4;
  slo.add(spec);
  slo.arm_timer(simu, msec(50));

  net::Fabric fabric(simu, {});
  os::Node fe(simu, {.name = "fe"}), reader(simu, {.name = "reader"});
  fabric.attach(fe);
  fabric.attach(reader);
  lb::LoadBalancer lb(lb::WeightConfig{});
  monitor::MonitorConfig mcfg;
  mcfg.scheme = monitor::Scheme::RdmaSync;
  std::vector<std::unique_ptr<os::Node>> backends;
  const int n = 4;
  for (int i = 0; i < n; ++i) {
    backends.push_back(std::make_unique<os::Node>(
        simu, os::NodeConfig{.name = "be" + std::to_string(i)}));
    fabric.attach(*backends.back());
    lb.add_backend(std::make_unique<monitor::MonitorChannel>(
        fabric, fe, *backends.back(), mcfg));
  }
  monitor::PushConfig pushcfg;
  monitor::PushInbox inbox(fabric, fe, n, pushcfg.slot_bytes);
  lb::PushPollConfig pcfg;
  pcfg.strategy = monitor::MonitorStrategy::Push;
  lb.enable_push(inbox, pcfg);
  std::vector<std::unique_ptr<monitor::PushPublisher>> pubs;
  for (int i = 0; i < n; ++i) {
    pubs.push_back(std::make_unique<monitor::PushPublisher>(
        fabric, *backends[static_cast<std::size_t>(i)], pushcfg));
    pubs.back()->target(fe.id, inbox.mr_key(), i);
    pubs.back()->start();
  }
  lb.start(fe, msec(50));
  monitor::AlarmMonitor alarms(fabric, fe, slo);

  // The breach instant, captured at the edge.
  sim::TimePoint breach_at{-1};
  slo.on_edge([&](const telemetry::AlarmRecord& r) {
    if (r.to == AlarmState::Breach && breach_at.ns < 0) breach_at = r.at;
  });

  // t=1s: back end 2's node dies. Its publisher stops pushing AND the
  // silence-verification READs fail, so the front end's view of it only
  // ages — the regime the staleness SLO exists for.
  const sim::TimePoint kill = tp(1000);
  fault::FaultInjector inj(fabric);
  fault::FaultPlan plan;
  plan.crash(backends[2]->id, kill);
  inj.arm(plan);

  // A remote operator asks "is that front end's view stale?" late in the
  // run — one-sided, zero cost on the possibly-wedged front end.
  bool got = false;
  AlarmView remote;
  reader.spawn("operator", [&](os::SimThread& self) -> os::Program {
    co_await os::SleepFor{msec(2200)};
    net::CompletionQueue cq;
    net::QueuePair qp{fabric.nic(reader.id), alarms.node_id(), cq};
    net::Completion c;
    co_await net::rdma_read_sync(self, qp, alarms.mr_key(),
                                 alarms.config().slot_bytes, c);
    if (c.status == net::WcStatus::Success) {
      remote = std::any_cast<AlarmView>(c.data);
      got = true;
    }
  });
  simu.run_for(msec(2500));

  // Breach within one window of the staleness crossing the target: ages
  // exceed 150ms at kill+150ms; every probe after that violates, so the
  // breach must land by kill + target + window (+ one probe period).
  ASSERT_GE(breach_at.ns, 0) << "SLO never breached";
  EXPECT_GT(breach_at, kill);
  EXPECT_LE(breach_at.ns, (kill + msec(150) + msec(500) + msec(50)).ns);

  // The remote read saw the breach.
  ASSERT_TRUE(got);
  EXPECT_EQ(remote.worst, AlarmState::Breach);

  // The breach edge dumped a post-mortem: merged, time-ordered, and
  // naming the rings that recorded the lead-up (the crash dumped one
  // too — flight_crash_* — which is its own feature, not this check).
  std::string pm;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().filename().string().rfind("flight_slo_lb_view_age", 0) == 0) {
      pm = e.path().string();
    }
  }
  ASSERT_FALSE(pm.empty()) << "no slo post-mortem in " << dir;
  std::ifstream in(pm);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  EXPECT_NE(doc.find("\"reason\": \"slo_lb.view_age\""), std::string::npos);
  EXPECT_NE(doc.find("\"ring\": \"slo\""), std::string::npos);
  EXPECT_NE(doc.find("\"kind\": \"alarm\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"fault\""), std::string::npos);
  const std::vector<std::int64_t> ts = event_times(doc);
  ASSERT_GE(ts.size(), 2u);
  for (std::size_t i = 1; i < ts.size(); ++i) EXPECT_LE(ts[i - 1], ts[i]);
}

}  // namespace
}  // namespace rdmamon
