// Property tests for the push plane's two invariant-bearing pieces:
//
//  1. The inbox seqlock. The writer is a remote DMA engine — no locks, no
//     ordering promises beyond what the stamps encode — so the reader's
//     safety rests entirely on scan()'s discipline: a torn image is never
//     consumed, and the consumed view never travels back in time, under
//     ANY interleaving of good, torn and replayed writes. Random traces
//     are checked against an exact reference model of the scan contract.
//
//  2. The adaptive controller. Mode decisions must be a pure function of
//     the event trace (determinism — two controllers fed the same events
//     agree switch for switch) and flap-free by construction (per-backend
//     switch count bounded by min_dwell) under random traces.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "monitor/adaptive.hpp"
#include "monitor/inbox.hpp"
#include "net/fabric.hpp"
#include "os/node.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"

namespace rdmamon {
namespace {

using monitor::AdaptiveConfig;
using monitor::AdaptiveController;
using monitor::FetchMode;
using monitor::InboxSlot;
using monitor::MonitorSample;
using monitor::PushInbox;
using sim::msec;
using sim::seconds;

// --- 1. seqlock scan properties ----------------------------------------------

struct InboxEnv {
  sim::Simulation simu;
  net::Fabric fabric{simu, {}};
  os::Node frontend{simu, {.name = "fe"}};
  PushInbox inbox;

  explicit InboxEnv(int slots) : inbox((fabric.attach(frontend), fabric),
                                       frontend, slots) {}
};

/// Builds a slot image whose payload encodes its own sequence number, so a
/// consumed sample can be checked against the stamp it claimed.
InboxSlot image(std::uint64_t seq, bool torn = false, bool heartbeat = false) {
  InboxSlot s;
  s.seq = seq;
  s.seq_check = torn ? seq - 1 : seq;
  s.heartbeat = heartbeat;
  s.info.nr_running = static_cast<int>(seq);
  return s;
}

TEST(SeqlockProperty, RandomInterleavingsNeverTearOrTimeTravel) {
  // Random mix of good writes, torn writes, replays and scans, checked
  // move for move against a reference model of the scan contract. The
  // load-bearing clauses: Fresh is returned iff untorn AND strictly newer
  // than the consumed watermark; only Fresh advances the watermark; a
  // consumed payload always matches its stamp; consumed stamps strictly
  // increase (no time travel).
  for (const std::uint64_t trace_seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    InboxEnv env(1);
    sim::Rng rng(trace_seed);
    std::uint64_t next_seq = 1;      // the writer's next stamp
    std::uint64_t slot_seq = 0;      // stamp currently lying in the slot
    bool slot_torn = false;
    bool written = false;            // any image planted yet?
    std::uint64_t consumed = 0;      // reference consumed watermark
    std::uint64_t last_value = 0;    // last payload accepted as Fresh
    for (int step = 0; step < 2000; ++step) {
      switch (rng.uniform_int(0, 3)) {
        case 0:  // good write
          env.inbox.poke(0, image(next_seq));
          slot_seq = next_seq++;
          slot_torn = false;
          written = true;
          break;
        case 1:  // torn write (scan raced the DMA)
          env.inbox.poke(0, image(next_seq, /*torn=*/true));
          slot_seq = next_seq++;
          slot_torn = true;
          written = true;
          break;
        case 2: {  // replayed/reordered old write
          const std::uint64_t old =
              static_cast<std::uint64_t>(rng.uniform_int(
                  1, static_cast<std::int64_t>(next_seq)));
          env.inbox.poke(0, image(old));
          slot_seq = old;
          slot_torn = false;
          written = true;
          break;
        }
        default: {  // scan
          MonitorSample out;
          const auto got = env.inbox.scan(0, out);
          PushInbox::ScanResult want;
          if (!written) {
            want = PushInbox::ScanResult::Empty;
          } else if (slot_torn) {
            want = PushInbox::ScanResult::Torn;
          } else if (slot_seq < consumed) {
            want = PushInbox::ScanResult::Regressed;
          } else if (slot_seq == consumed) {
            want = PushInbox::ScanResult::Unchanged;
          } else {
            want = PushInbox::ScanResult::Fresh;
          }
          ASSERT_EQ(got, want)
              << "step " << step << " seed " << trace_seed << ": expected "
              << PushInbox::to_string(want) << " got "
              << PushInbox::to_string(got);
          if (got == PushInbox::ScanResult::Fresh) {
            ASSERT_TRUE(out.ok);
            const auto value = static_cast<std::uint64_t>(out.info.nr_running);
            // Payload matches the stamp that was consumed...
            EXPECT_EQ(value, slot_seq);
            // ...and the view moved strictly forward.
            EXPECT_GT(value, last_value) << "view travelled back in time";
            last_value = value;
            consumed = slot_seq;
          }
        }
      }
    }
    // The trace above must actually have exercised every branch.
    EXPECT_GT(env.inbox.fresh(), 0u);
    EXPECT_GT(env.inbox.torn(), 0u);
    EXPECT_GT(env.inbox.regressed(), 0u);
  }
}

TEST(SeqlockProperty, TornImageRecoversOnNextGoodWrite) {
  // A torn scan must not poison the slot: the very next untorn write with
  // a newer stamp is consumed normally.
  InboxEnv env(1);
  MonitorSample out;
  env.inbox.poke(0, image(5, /*torn=*/true));
  EXPECT_EQ(env.inbox.scan(0, out), PushInbox::ScanResult::Torn);
  env.inbox.poke(0, image(5));
  EXPECT_EQ(env.inbox.scan(0, out), PushInbox::ScanResult::Fresh);
  EXPECT_EQ(out.info.nr_running, 5);
}

TEST(SeqlockProperty, SlotsAreIndependent) {
  // A torn or replayed image in one slot never affects another slot's
  // watermark — the per-backend isolation the per-slot layout buys.
  InboxEnv env(3);
  MonitorSample out;
  env.inbox.poke(0, image(7));
  env.inbox.poke(1, image(2, /*torn=*/true));
  EXPECT_EQ(env.inbox.scan(0, out), PushInbox::ScanResult::Fresh);
  EXPECT_EQ(env.inbox.scan(1, out), PushInbox::ScanResult::Torn);
  EXPECT_EQ(env.inbox.scan(2, out), PushInbox::ScanResult::Empty);
  env.inbox.poke(1, image(2));
  EXPECT_EQ(env.inbox.scan(1, out), PushInbox::ScanResult::Fresh);
  EXPECT_EQ(out.info.nr_running, 2);
}

// --- 2. adaptive controller properties ---------------------------------------

/// One randomly generated controller event. Times are explicit so the
/// same trace can be replayed into any number of controllers.
struct TraceEvent {
  enum Kind { PullSample, PushFresh, Tick } kind;
  sim::TimePoint at;
  std::size_t backend;
  os::LoadSnapshot info;       // PullSample
  bool heartbeat = false;      // PushFresh
  sim::Duration staleness{};   // PushFresh
};

/// Random but replayable trace: per-backend events every few ms over the
/// horizon, a tick at every epoch boundary. Time alternates between QUIET
/// 2s phases (repeated identical samples, heartbeat pushes: χ ≈ 0, push
/// is the cheap mode) and BUSY phases (load jumps, change pushes: χ high,
/// pull is), so a working controller provably flips modes both ways.
std::vector<TraceEvent> random_trace(std::uint64_t seed,
                                     const AdaptiveConfig& cfg, int backends,
                                     sim::Duration horizon) {
  sim::Rng rng(seed);
  std::vector<TraceEvent> trace;
  sim::TimePoint now{};
  sim::TimePoint next_tick = now + cfg.epoch;
  const sim::TimePoint end = now + horizon;
  const std::int64_t phase_ns = seconds(2).ns;
  while (now < end) {
    now += msec(1 + rng.uniform_int(0, 9));
    while (next_tick <= now) {
      trace.push_back({TraceEvent::Tick, next_tick, 0, {}, false, {}});
      next_tick += cfg.epoch;
    }
    const bool busy = (now.ns / phase_ns) % 2 == 1;
    TraceEvent e;
    e.at = now;
    e.backend = static_cast<std::size_t>(rng.uniform_int(0, backends - 1));
    if (rng.uniform_int(0, 1) == 0) {
      e.kind = TraceEvent::PullSample;
      e.info.nr_running = busy ? static_cast<int>(rng.uniform_int(0, 8)) : 0;
      e.info.cpu_load =
          busy ? 0.1 * static_cast<double>(rng.uniform_int(0, 10)) : 0.0;
    } else {
      e.kind = TraceEvent::PushFresh;
      e.heartbeat = !busy;
      e.staleness = msec(rng.uniform_int(1, 40));
    }
    trace.push_back(e);
  }
  return trace;
}

using SwitchLog = std::vector<std::tuple<std::size_t, FetchMode>>;

SwitchLog replay(AdaptiveController& ctl, const std::vector<TraceEvent>& t) {
  SwitchLog log;
  ctl.on_switch([&log](std::size_t i, FetchMode m) { log.emplace_back(i, m); });
  for (const TraceEvent& e : t) {
    switch (e.kind) {
      case TraceEvent::PullSample: ctl.on_pull_sample(e.backend, e.info); break;
      case TraceEvent::PushFresh:
        ctl.on_push_fresh(e.backend, e.heartbeat, e.staleness);
        break;
      case TraceEvent::Tick: ctl.tick(e.at); break;
    }
  }
  return log;
}

TEST(AdaptiveProperty, DecisionsAreDeterministic) {
  // Two controllers, same config, same event trace: identical switch
  // sequences, switch for switch. Decisions must depend on nothing but
  // the trace (no wall clock, no global state).
  AdaptiveConfig cfg;
  for (const std::uint64_t seed : {11ull, 22ull, 33ull, 44ull}) {
    const auto trace = random_trace(seed, cfg, 4, seconds(10));
    AdaptiveController a(cfg, 4);
    AdaptiveController b(cfg, 4);
    const SwitchLog la = replay(a, trace);
    const SwitchLog lb = replay(b, trace);
    EXPECT_EQ(la, lb) << "seed " << seed;
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(a.mode(i), b.mode(i)) << "seed " << seed << " backend " << i;
    }
    // The traces are built to actually flip modes; a vacuously empty log
    // would make determinism trivially true.
    if (seed == 11ull) {
      EXPECT_GT(la.size(), 0u);
    }
  }
}

TEST(AdaptiveProperty, SwitchRateIsBoundedByMinDwell) {
  // The hard flap bound: min_dwell is a floor between one backend's
  // switches, so over a horizon H a backend can switch at most
  // 1 + H/min_dwell times — whatever the trace does.
  AdaptiveConfig cfg;
  const sim::Duration horizon = seconds(10);
  const std::uint64_t bound =
      1 + static_cast<std::uint64_t>(horizon.ns / cfg.min_dwell.ns);
  for (const std::uint64_t seed : {7ull, 77ull, 777ull}) {
    const auto trace = random_trace(seed, cfg, 4, horizon);
    AdaptiveController ctl(cfg, 4);
    replay(ctl, trace);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_LE(ctl.switches(i), bound)
          << "backend " << i << " flapped (seed " << seed << ")";
    }
  }
}

TEST(AdaptiveProperty, AdversarialTraceCannotForceFlapping) {
  // Worst-case input: χ alternating between zero and huge every single
  // epoch, i.e. the trace a naive controller would chase. The dwell
  // filter must hold the switch count at the min_dwell bound.
  AdaptiveConfig cfg;
  AdaptiveController ctl(cfg, 1);
  sim::TimePoint now{};
  const sim::Duration horizon = seconds(10);
  os::LoadSnapshot quiet;      // identical samples: zero change rate
  bool busy_epoch = false;
  int runq = 0;
  const sim::TimePoint end = now + horizon;
  while (now < end) {
    now += cfg.epoch;
    if (busy_epoch) {
      // Many threshold-crossing pull samples / change pushes this epoch.
      for (int k = 0; k < 10; ++k) {
        os::LoadSnapshot s;
        s.nr_running = (runq = (runq + 4) % 8);
        ctl.on_pull_sample(0, s);
        ctl.on_push_fresh(0, /*heartbeat=*/false, msec(5));
      }
    } else {
      ctl.on_pull_sample(0, quiet);
      ctl.on_push_fresh(0, /*heartbeat=*/true, msec(5));
    }
    busy_epoch = !busy_epoch;
    ctl.tick(now);
  }
  const std::uint64_t bound =
      1 + static_cast<std::uint64_t>(horizon.ns / cfg.min_dwell.ns);
  EXPECT_LE(ctl.switches(0), bound);
}

}  // namespace
}  // namespace rdmamon
