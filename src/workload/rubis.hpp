// RUBiS auction workload model: the eight query classes of the paper's
// Table 1 with per-class PHP/MySQL service demands and a browsing mix.
// Demands are calibrated so that unloaded per-class response times land in
// the few-millisecond range the paper reports.
#pragma once

#include <array>
#include <cstdint>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace rdmamon::workload {

enum class RubisQuery : int {
  Home = 0,
  Browse,
  BrowseRegions,
  BrowseCategoriesInRegion,
  SearchItemsInRegion,
  PutBidAuth,
  Sell,
  AboutMe,
};
constexpr int kRubisQueryCount = 8;

inline constexpr std::array<RubisQuery, kRubisQueryCount> kAllRubisQueries = {
    RubisQuery::Home,
    RubisQuery::Browse,
    RubisQuery::BrowseRegions,
    RubisQuery::BrowseCategoriesInRegion,
    RubisQuery::SearchItemsInRegion,
    RubisQuery::PutBidAuth,
    RubisQuery::Sell,
    RubisQuery::AboutMe,
};

const char* to_string(RubisQuery q);

/// Per-class service demands at the back end.
struct RubisDemand {
  sim::Duration php_cpu{};   ///< Apache/PHP CPU burst
  sim::Duration db_cpu{};    ///< MySQL CPU burst
  sim::Duration db_io{};     ///< MySQL I/O wait (no CPU)
  std::size_t reply_bytes = 0;
  double mix = 0.0;          ///< probability in the browsing mix
};

/// The calibrated demand table (see rubis.cpp for the numbers).
const std::array<RubisDemand, kRubisQueryCount>& rubis_demands();

/// Demand of one class.
const RubisDemand& demand_of(RubisQuery q);

/// Samples queries according to the browsing mix, with per-request
/// exponential variation around the mean demands (dynamic pages vary).
class RubisWorkload {
 public:
  RubisWorkload();

  RubisQuery sample_query(sim::Rng& rng) const;

  /// Resolved demands for one request instance of class `q` (mean demands
  /// scaled by an exponential factor, capped to avoid absurd outliers).
  struct Instance {
    RubisQuery query;
    sim::Duration php_cpu;
    sim::Duration db_cpu;
    sim::Duration db_io;
    std::size_t reply_bytes;
  };
  Instance sample_instance(sim::Rng& rng) const;
  Instance instance_of(RubisQuery q, sim::Rng& rng) const;

 private:
  std::array<double, kRubisQueryCount> cum_mix_{};
};

}  // namespace rdmamon::workload
