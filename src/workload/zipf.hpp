// Zipf-popularity static-content trace (the paper's second co-hosted web
// service, Section 5.2.1). Popularity follows Zipf(alpha); document sizes
// are heavy-tailed; the most popular documents fit the in-memory cache.
// Low alpha spreads requests across uncached documents, making per-request
// cost divergent — exactly the regime where fine-grained monitoring pays.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace rdmamon::workload {

struct ZipfTraceConfig {
  std::size_t documents = 20'000;
  double alpha = 0.5;
  /// Server-side cache: documents are cached in popularity order until
  /// this budget is exhausted. The default corpus (~250 MB) is several
  /// times the cache so the hit ratio actually depends on alpha.
  std::uint64_t cache_bytes = 64ull << 20;
  /// Bounded-Pareto document sizes.
  double size_shape = 1.2;
  double min_bytes = 2'048;
  double max_bytes = 2'097'152;  // 2 MiB
  /// Request parse + header cost.
  sim::Duration base_cpu = sim::usec(200);
  /// Serving from memory: per-byte copy cost.
  double mem_ns_per_byte = 0.05;
  /// Serving from disk: seek + transfer (I/O wait, does not burn CPU).
  sim::Duration disk_base = sim::msec(5);
  double disk_ns_per_byte = 25.0;  // ~40 MB/s 2006-era disk
};

/// One sampled static request with its resolved service demands.
struct StaticRequest {
  std::size_t doc_rank = 0;  ///< 1-based popularity rank
  std::size_t bytes = 0;
  bool cached = false;
  sim::Duration cpu_demand{};  ///< CPU burst at the server
  sim::Duration io_wait{};     ///< disk wait (no CPU)
};

class ZipfTrace {
 public:
  /// Builds the document set deterministically from `seed`.
  ZipfTrace(ZipfTraceConfig cfg, std::uint64_t seed);

  /// Samples one request.
  StaticRequest sample(sim::Rng& rng) const;

  /// Fraction of *requests* (probability mass) served from cache.
  double cached_request_fraction() const;

  std::size_t documents() const { return sizes_.size(); }
  double alpha() const { return cfg_.alpha; }
  const ZipfTraceConfig& config() const { return cfg_; }

 private:
  ZipfTraceConfig cfg_;
  sim::ZipfDistribution zipf_;
  std::vector<std::uint32_t> sizes_;  // by popularity rank (1-based -> idx 0)
  std::vector<bool> cached_;
};

}  // namespace rdmamon::workload
