#include "workload/zipf.hpp"

namespace rdmamon::workload {

ZipfTrace::ZipfTrace(ZipfTraceConfig cfg, std::uint64_t seed)
    : cfg_(cfg), zipf_(cfg.documents, cfg.alpha) {
  sim::Rng rng(seed);
  sizes_.reserve(cfg_.documents);
  for (std::size_t i = 0; i < cfg_.documents; ++i) {
    sizes_.push_back(static_cast<std::uint32_t>(
        rng.bounded_pareto(cfg_.size_shape, cfg_.min_bytes, cfg_.max_bytes)));
  }
  // Cache the most popular documents until the budget runs out.
  cached_.assign(cfg_.documents, false);
  std::uint64_t used = 0;
  for (std::size_t i = 0; i < cfg_.documents; ++i) {
    if (used + sizes_[i] > cfg_.cache_bytes) break;
    used += sizes_[i];
    cached_[i] = true;
  }
}

StaticRequest ZipfTrace::sample(sim::Rng& rng) const {
  StaticRequest r;
  r.doc_rank = zipf_.sample(rng);
  const std::size_t idx = r.doc_rank - 1;
  r.bytes = sizes_[idx];
  r.cached = cached_[idx];
  const double b = static_cast<double>(r.bytes);
  if (r.cached) {
    r.cpu_demand = cfg_.base_cpu +
                   sim::nsec(static_cast<std::int64_t>(b *
                                                       cfg_.mem_ns_per_byte));
    r.io_wait = {};
  } else {
    r.cpu_demand = cfg_.base_cpu;
    r.io_wait = cfg_.disk_base +
                sim::nsec(static_cast<std::int64_t>(b *
                                                    cfg_.disk_ns_per_byte));
  }
  return r;
}

double ZipfTrace::cached_request_fraction() const {
  double mass = 0.0;
  for (std::size_t i = 0; i < cached_.size(); ++i) {
    if (cached_[i]) mass += zipf_.pmf(i + 1);
  }
  return mass;
}

}  // namespace rdmamon::workload
