#include "workload/rubis.hpp"

#include <algorithm>

namespace rdmamon::workload {

const char* to_string(RubisQuery q) {
  switch (q) {
    case RubisQuery::Home: return "Home";
    case RubisQuery::Browse: return "Browse";
    case RubisQuery::BrowseRegions: return "BrowseRegions";
    case RubisQuery::BrowseCategoriesInRegion: return "BrowseCatgryReg";
    case RubisQuery::SearchItemsInRegion: return "SearchItemsReg";
    case RubisQuery::PutBidAuth: return "PutBidAuth";
    case RubisQuery::Sell: return "Sell";
    case RubisQuery::AboutMe: return "About Me (auth)";
  }
  return "?";
}

const std::array<RubisDemand, kRubisQueryCount>& rubis_demands() {
  using sim::msec;
  using sim::usec;
  // Calibrated so unloaded responses match Table 1's RDMA-Sync column
  // (avg 2-16 ms): Home/Browse/PutBid/AboutMe are light, BrowseRegions
  // mid-weight, BrowseCategoriesInRegion the heavy region join.
  static const std::array<RubisDemand, kRubisQueryCount> table = {{
      // php_cpu      db_cpu      db_io       reply    mix
      {usec(800), usec(600), usec(900), 4'096, 0.16},    // Home
      {usec(900), usec(800), usec(700), 8'192, 0.22},    // Browse
      {usec(1'400), usec(1'600), msec(1), 12'288, 0.14}, // BrowseRegions
      {usec(3'500), usec(6'000), msec(5), 16'384, 0.08}, // BrowseCatgryReg
      {usec(1'100), usec(1'300), usec(900), 12'288, 0.16}, // SearchItemsReg
      {usec(900), usec(800), usec(600), 2'048, 0.10},    // PutBidAuth
      {usec(800), usec(700), usec(500), 2'048, 0.06},    // Sell
      {usec(900), usec(700), usec(600), 6'144, 0.08},    // About Me
  }};
  return table;
}

const RubisDemand& demand_of(RubisQuery q) {
  return rubis_demands()[static_cast<std::size_t>(q)];
}

RubisWorkload::RubisWorkload() {
  double acc = 0.0;
  const auto& d = rubis_demands();
  for (int i = 0; i < kRubisQueryCount; ++i) {
    acc += d[static_cast<std::size_t>(i)].mix;
    cum_mix_[static_cast<std::size_t>(i)] = acc;
  }
  // Normalise in case the mix does not sum exactly to 1.
  for (auto& c : cum_mix_) c /= acc;
}

RubisQuery RubisWorkload::sample_query(sim::Rng& rng) const {
  const double u = rng.uniform();
  for (int i = 0; i < kRubisQueryCount; ++i) {
    if (u <= cum_mix_[static_cast<std::size_t>(i)]) {
      return static_cast<RubisQuery>(i);
    }
  }
  return RubisQuery::AboutMe;
}

RubisWorkload::Instance RubisWorkload::instance_of(RubisQuery q,
                                                   sim::Rng& rng) const {
  const RubisDemand& d = demand_of(q);
  // Dynamic pages vary: exponential factor with mean 1, capped at 3x
  // (dynamic-page cost spread without drowning load-balancing effects in
  // single-request tails).
  const double f = std::min(rng.exponential(1.0), 3.0);
  auto scale = [f](sim::Duration v) {
    return sim::nsec(static_cast<std::int64_t>(
        static_cast<double>(v.ns) * (0.5 + 0.5 * f)));
  };
  Instance inst;
  inst.query = q;
  inst.php_cpu = scale(d.php_cpu);
  inst.db_cpu = scale(d.db_cpu);
  inst.db_io = scale(d.db_io);
  inst.reply_bytes = d.reply_bytes;
  return inst;
}

RubisWorkload::Instance RubisWorkload::sample_instance(sim::Rng& rng) const {
  return instance_of(sample_query(rng), rng);
}

}  // namespace rdmamon::workload
