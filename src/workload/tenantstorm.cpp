#include "workload/tenantstorm.hpp"

#include <any>
#include <string>
#include <utility>

namespace rdmamon::workload {

const char* to_string(StormKind k) {
  switch (k) {
    case StormKind::ReadStorm: return "read-storm";
    case StormKind::BandwidthHog: return "bandwidth-hog";
    case StormKind::CqFlood: return "cq-flood";
    case StormKind::MrThrash: return "mr-thrash";
  }
  return "?";
}

TenantStormConfig TenantStormConfig::read_storm() {
  TenantStormConfig c;
  c.kind = StormKind::ReadStorm;
  c.contexts = 8;
  c.op_bytes = 32 * 1024;
  c.max_outstanding = 256;
  c.post_period = sim::usec(5);
  return c;
}

TenantStormConfig TenantStormConfig::bandwidth_hog() {
  TenantStormConfig c;
  c.kind = StormKind::BandwidthHog;
  c.contexts = 4;
  c.op_bytes = 1 << 20;
  c.max_outstanding = 512;
  c.post_period = sim::usec(2);
  c.burst = 64;
  return c;
}

TenantStormConfig TenantStormConfig::cq_flood() {
  TenantStormConfig c;
  c.kind = StormKind::CqFlood;
  c.contexts = 8;
  c.op_bytes = 16;
  c.max_outstanding = 1024;
  c.post_period = sim::nsec(500);
  c.burst = 32;
  return c;
}

TenantStormConfig TenantStormConfig::mr_thrash() {
  TenantStormConfig c;
  c.kind = StormKind::MrThrash;
  c.contexts = 16;
  c.op_bytes = 256;
  c.max_outstanding = 128;
  c.post_period = sim::usec(2);
  c.mr_pool = 64;
  return c;
}

TenantStorm::TenantStorm(net::Fabric& fabric, os::Node& home,
                         std::vector<StormTarget> targets,
                         TenantStormConfig cfg)
    : fabric_(&fabric), home_(&home), targets_(std::move(targets)), cfg_(cfg) {
  // Contexts are created once and survive stop()/start() cycles, so a
  // restarted storm reuses the same NIC context-cache identities (like a
  // process that went quiet, not a reconnect).
  for (int i = 0; i < cfg_.contexts; ++i) {
    auto ctx = std::make_shared<net::QpContext>(fabric_->nic(home_->id));
    ctx->set_tenant(cfg_.tenant);
    ctxs_.push_back(std::move(ctx));
  }
  pools_.resize(targets_.size());
}

TenantStorm::~TenantStorm() { stop(); }

void TenantStorm::start() {
  if (running_) return;
  running_ = true;
  const std::string tag = "storm" + std::to_string(cfg_.tenant);
  for (int i = 0; i < cfg_.contexts; ++i) {
    threads_.push_back(
        home_->spawn(tag + "-post" + std::to_string(i),
                     [this, i](os::SimThread& t) { return poster_body(t, i); }));
  }
  threads_.push_back(home_->spawn(
      tag + "-drain", [this](os::SimThread& t) { return drain_body(t); }));
}

void TenantStorm::stop() {
  if (!running_) return;
  running_ = false;
  for (auto* t : threads_) home_->sched().kill(t);
  threads_.clear();
}

void TenantStorm::post_one(int idx, std::size_t& rr) {
  const std::size_t ti = rr++ % targets_.size();
  const StormTarget& tgt = targets_[ti];
  net::MrKey mr = tgt.mr;
  if (cfg_.kind == StormKind::MrThrash) {
    // Churn: retire the oldest region of this tenant's pool on the target
    // NIC and register a fresh one, then READ it. Every new rkey is a
    // fresh MR-cache entry at the target, so a bounded NIC context cache
    // keeps inserting — and keeps evicting other tenants' entries.
    net::Nic& tnic = fabric_->nic(tgt.node);
    auto& pool = pools_[ti];
    if (static_cast<int>(pool.size()) >= cfg_.mr_pool) {
      tnic.deregister_mr(pool.front());
      pool.erase(pool.begin());
    }
    mr = tnic.register_mr(cfg_.op_bytes, [] { return std::any{}; }, false,
                          nullptr, cfg_.tenant);
    pool.push_back(mr);
  }
  const std::uint64_t wr_id = cq_.alloc_wr_id();
  ctxs_[static_cast<std::size_t>(idx)]->post_read(tgt.node, mr, cfg_.op_bytes,
                                                  wr_id, cq_, true);
  ++posted_;
  ++outstanding_;
}

os::Program TenantStorm::poster_body(os::SimThread& self, int idx) {
  (void)self;
  // Stagger start targets so `contexts` posters spread over the victims
  // instead of marching in lockstep.
  std::size_t rr = static_cast<std::size_t>(idx);
  for (;;) {
    while (outstanding_ >= cfg_.max_outstanding) {
      co_await os::WaitOn{&window_wq_};
    }
    // One doorbell rings in a whole WR list (the RDMAbox-style batch the
    // verbs layer models too), up to the window.
    co_await os::Compute{net::kDoorbellCost};
    for (int b = 0; b < cfg_.burst && outstanding_ < cfg_.max_outstanding;
         ++b) {
      post_one(idx, rr);
    }
    co_await os::SleepFor{cfg_.post_period};
  }
}

os::Program TenantStorm::drain_body(os::SimThread& self) {
  (void)self;
  for (;;) {
    while (!cq_.empty()) {
      const net::Completion c = cq_.pop();
      if (c.status == net::WcStatus::Success) {
        ++completed_;
        bytes_completed_ += cfg_.op_bytes;
      } else {
        ++failed_;
      }
      // Guard against stop()/start() races: WRs posted by a previous
      // incarnation may still land after counters were mid-window.
      if (outstanding_ > 0) --outstanding_;
    }
    window_wq_.notify_all();
    co_await os::WaitOn{&cq_.wait_queue()};
  }
}

void drive_storms(fault::FaultInjector& injector,
                  std::vector<TenantStorm*> storms) {
  injector.set_storm_hook(
      [storms = std::move(storms)](const fault::FaultEvent& e) {
        if (e.storm < 0 || e.storm >= static_cast<int>(storms.size())) return;
        TenantStorm* s = storms[static_cast<std::size_t>(e.storm)];
        if (s == nullptr) return;
        if (e.kind == fault::FaultKind::StormStart) {
          s->start();
        } else if (e.kind == fault::FaultKind::StormStop) {
          s->stop();
        }
      });
}

}  // namespace rdmamon::workload
