#include "workload/synthetic.hpp"

#include <any>

namespace rdmamon::workload {

namespace {

os::Program bg_worker_body(os::SimThread& self, net::Socket* sock,
                           BackgroundLoadConfig cfg) {
  for (;;) {
    co_await os::Compute{cfg.compute_slice};
    // Fire a burst, then drain the echoes; the returning burst exercises
    // the node's receive path (IRQ, softirq, wakeups). With burst == 0
    // the thread is a pure compute hog.
    for (int i = 0; i < cfg.burst; ++i) {
      co_await sock->send(self, cfg.message_bytes, std::any{});
    }
    for (int i = 0; i < cfg.burst; ++i) {
      net::Message m;
      co_await sock->recv(self, m);
    }
    co_await os::SleepFor{cfg.think};
  }
}

os::Program bg_echo_body(os::SimThread& self, net::Socket* sock,
                         std::size_t bytes) {
  for (;;) {
    net::Message m;
    co_await sock->recv(self, m);
    co_await sock->send(self, bytes, std::any{});
  }
}

os::Program fp_app_body(os::SimThread& self, sim::Duration batch,
                        sim::OnlineStats* delays) {
  sim::Simulation& simu = self.node().simu();
  for (;;) {
    const sim::TimePoint t0 = simu.now();
    co_await os::Compute{batch};
    const sim::Duration took = simu.now() - t0;
    delays->add(static_cast<double>((took - batch).ns) /
                static_cast<double>(batch.ns));
  }
}

}  // namespace

BackgroundLoad::BackgroundLoad(net::Fabric& fabric, os::Node& node,
                               os::Node& peer, BackgroundLoadConfig cfg)
    : cfg_(cfg), node_(&node), peer_(&peer) {
  for (int i = 0; i < cfg_.threads; ++i) {
    if (cfg_.burst <= 0) {
      // Pure compute hog: no connection, no echo thread.
      workers_.push_back(node.spawn(
          "bg" + std::to_string(i), [cfg](os::SimThread& t) {
            return bg_worker_body(t, nullptr, cfg);
          }));
      continue;
    }
    net::Connection& conn = fabric.connect(node, peer);
    workers_.push_back(node.spawn(
        "bg" + std::to_string(i),
        [sock = &conn.end_a(), cfg](os::SimThread& t) {
          return bg_worker_body(t, sock, cfg);
        }));
    echoes_.push_back(peer.spawn(
        "bg-echo" + std::to_string(i),
        [sock = &conn.end_b(), bytes = cfg.message_bytes](os::SimThread& t) {
          return bg_echo_body(t, sock, bytes);
        }));
  }
}

void BackgroundLoad::stop() {
  for (auto* t : workers_) node_->sched().kill(t);
  for (auto* t : echoes_) peer_->sched().kill(t);
  workers_.clear();
  echoes_.clear();
}

DisturbanceGenerator::DisturbanceGenerator(net::Fabric& fabric,
                                           std::vector<os::Node*> targets,
                                           os::Node& echo_peer,
                                           DisturbanceConfig cfg,
                                           sim::Rng rng)
    : fabric_(&fabric), targets_(std::move(targets)), echo_peer_(&echo_peer),
      cfg_(cfg), rng_(rng) {
  schedule_next();
}

DisturbanceGenerator::~DisturbanceGenerator() { stop_all(); }

void DisturbanceGenerator::stop_all() {
  for (auto& load : active_) load->stop();
  active_.clear();
}

void DisturbanceGenerator::schedule_next() {
  const auto gap = sim::nsec(static_cast<std::int64_t>(rng_.exponential(
      static_cast<double>(cfg_.mean_interval.ns))));
  fabric_->simu().after(gap, [this] { fire(); });
}

void DisturbanceGenerator::fire() {
  stop_all();
  const std::uint64_t gen = ++generation_;
  const auto idx = static_cast<std::size_t>(rng_.uniform_int(
      0, static_cast<std::int64_t>(targets_.size()) - 1));
  os::Node* victim = targets_[idx];
  ++events_;
  // The co-hosted job ramps up in stages of compute+comm threads.
  for (int stage = 0; stage < cfg_.stages; ++stage) {
    fabric_->simu().after(cfg_.stage_interval * stage,
                          [this, gen, victim] {
                            if (generation_ != gen) return;
                            active_.push_back(std::make_unique<BackgroundLoad>(
                                *fabric_, *victim, *echo_peer_, cfg_.stage));
                          });
  }
  fabric_->simu().after(cfg_.duration, [this, gen] {
    if (generation_ == gen) stop_all();
  });
  schedule_next();
}

FloatingPointApp::FloatingPointApp(os::Node& node, sim::Duration batch,
                                   int threads)
    : node_(&node), batch_(batch) {
  const int n = threads > 0 ? threads : node.config().cpus;
  for (int i = 0; i < n; ++i) {
    threads_.push_back(
        node.spawn("fp-app" + std::to_string(i), [this](os::SimThread& t) {
          return fp_app_body(t, batch_, &delays_);
        }));
  }
}

double FloatingPointApp::normalized_delay() const { return delays_.mean(); }

void FloatingPointApp::stop() {
  for (auto* t : threads_) node_->sched().kill(t);
  threads_.clear();
}

}  // namespace rdmamon::workload
