// Synthetic load generators: the "background computation and communication
// operations" of the paper's Fig 3 latency experiment, and the
// floating-point application of the Fig 4 granularity experiment.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "net/socket.hpp"
#include "os/node.hpp"
#include "sim/stats.hpp"
#include "sim/random.hpp"

namespace rdmamon::workload {

/// Background computation + communication threads on one node, each
/// ping-ponging message bursts with an echo peer on another node. The
/// echo replies keep the node's network receive path (IRQ + softirq) busy
/// while the compute slices keep its run queue populated.
struct BackgroundLoadConfig {
  int threads = 8;
  sim::Duration compute_slice = sim::msec(4);
  int burst = 8;                      ///< messages per exchange
  std::size_t message_bytes = 8192;
  sim::Duration think = sim::msec(1);
};

class BackgroundLoad {
 public:
  /// Spawns cfg.threads worker threads on `node`, each with a dedicated
  /// connection to an echo thread on `peer`.
  BackgroundLoad(net::Fabric& fabric, os::Node& node, os::Node& peer,
                 BackgroundLoadConfig cfg);

  /// Kills all generator and echo threads.
  void stop();

  int threads() const { return cfg_.threads; }

 private:
  BackgroundLoadConfig cfg_;
  std::vector<os::SimThread*> workers_;
  std::vector<os::SimThread*> echoes_;
  os::Node* node_;
  os::Node* peer_;
};

/// Shared-environment disturbances: at random intervals, a random target
/// node receives a burst of co-hosted activity (compute + network chatter
/// with a neighbour) for a bounded duration — backups, batch jobs, other
/// tenants. These are the transient hotspots the application-level
/// experiments (Table 1, Figs 7-9) need fine-grained monitoring to route
/// around; they also load the victim's receive path, which is what slows
/// socket-based monitoring of exactly the node whose state matters most.
struct DisturbanceConfig {
  sim::Duration mean_interval = sim::msec(1100);  ///< exp-distributed gap
  /// Lifetime of one disturbance, first stage to teardown.
  sim::Duration duration = sim::msec(900);
  /// The job ramps up: `stage.threads` compute+communication threads join
  /// every `stage_interval` (batch jobs spin up gradually) — fresh
  /// monitors can evacuate the victim before the ramp peaks, stale ones
  /// cannot. The threads block on their own traffic frequently, so like
  /// real 2.4-era interactive tasks they are never preemptable by woken
  /// web workers or monitor threads: everything on the victim waits its
  /// FIFO turn behind them (the Fig 3 mechanism, applied app-side).
  int stages = 5;
  sim::Duration stage_interval = sim::msec(100);
  BackgroundLoadConfig stage{
      .threads = 2,
      .compute_slice = sim::msec(4),
      .burst = 16,
      .message_bytes = 8192,
      .think = sim::msec(1),
  };
};

class DisturbanceGenerator {
 public:
  /// Targets are disturbed one at a time; `echo_peer` is the remote end
  /// of each burst's traffic (e.g. a storage/backup node) — an otherwise
  /// idle node, so echo replies come back fast and concentrated, loading
  /// the victim's receive path the way Fig 3's background load does.
  DisturbanceGenerator(net::Fabric& fabric, std::vector<os::Node*> targets,
                       os::Node& echo_peer, DisturbanceConfig cfg,
                       sim::Rng rng);
  ~DisturbanceGenerator();

  std::uint64_t events() const { return events_; }

 private:
  void schedule_next();
  void fire();

  void stop_all();

  net::Fabric* fabric_;
  std::vector<os::Node*> targets_;
  os::Node* echo_peer_;
  DisturbanceConfig cfg_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<BackgroundLoad>> active_;
  std::uint64_t generation_ = 0;  ///< guards stale stage/stop events
  std::uint64_t events_ = 0;
};

/// The Fig 4 application: runs fixed-size floating-point batches back to
/// back and measures how much longer each takes than the ideal, i.e. the
/// perturbation caused by whatever else runs on the node.
class FloatingPointApp {
 public:
  /// `batch` is the ideal per-batch compute time. `threads` <= 0 spawns
  /// one app thread per CPU (so monitoring activity anywhere on the node
  /// perturbs the measurement, as on the paper's dual-Xeon servers).
  FloatingPointApp(os::Node& node, sim::Duration batch, int threads = 0);

  /// Mean normalised delay: (measured - ideal) / ideal, over all batches
  /// completed so far. 0 means the app ran undisturbed.
  double normalized_delay() const;

  std::uint64_t batches() const { return delays_.count(); }
  void stop();

 private:
  os::Node* node_;
  sim::Duration batch_;
  sim::OnlineStats delays_;  // per-batch normalised delay samples
  std::vector<os::SimThread*> threads_;
};

}  // namespace rdmamon::workload
