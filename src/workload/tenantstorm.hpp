// Tenant-tagged hostile traffic generators (the noisy neighbors). Each
// storm is a family of poster threads on a home node hammering one-sided
// ops at a set of target MRs, with every WR stamped with the storm's
// TenantId so fabric QoS can arbitrate it and cache evictions can be
// attributed to it. Four presets cover the classic attack surfaces:
//
//  - ReadStorm:     many mid-size READs; queues work on the victims'
//                   DMA engines and the shared links.
//  - BandwidthHog:  few huge READs; saturates bandwidth and builds
//                   standing DMA queues that bury a monitor's tiny READs.
//  - CqFlood:       max-rate tiny signaled READs; pure op-rate/CQE
//                   pressure (per-op DMA base cost dominates).
//  - MrThrash:      register/deregister churn over a pool of regions
//                   while READing them round-robin — displaces victims'
//                   QP/MR entries from the bounded NIC context cache.
//
// Storms post through real verbs QpContexts (the tenant tag rides the
// contexts and WRs, exercising the same path monitoring uses) with an
// open-loop outstanding window: posting is paced but does NOT wait for
// completions until the window fills, which is what builds the standing
// queues a closed-loop generator never could.
//
// Storms start/stop via FaultPlan StormStart/StormStop events (see
// drive_storms), so noisy-neighbor pressure composes with crashes and
// lossy links in one declarative schedule.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/fault.hpp"
#include "net/fabric.hpp"
#include "net/nic.hpp"
#include "net/verbs.hpp"
#include "os/node.hpp"
#include "os/program.hpp"
#include "os/wait.hpp"

namespace rdmamon::workload {

enum class StormKind { ReadStorm, BandwidthHog, CqFlood, MrThrash };
const char* to_string(StormKind k);

/// One target of a storm: a registered MR on some node's NIC.
struct StormTarget {
  int node = -1;
  net::MrKey mr{};
};

struct TenantStormConfig {
  net::TenantId tenant = 9;
  StormKind kind = StormKind::ReadStorm;
  /// Poster threads, each with its own QpContext (cache-churn fan-out).
  int contexts = 4;
  /// READ size per op.
  std::size_t op_bytes = 32 * 1024;
  /// Open-loop cap: total WRs in flight across the storm. The window is
  /// what builds standing target queues; size it to the damage wanted.
  std::size_t max_outstanding = 256;
  /// Pacing between posting rounds of one poster thread.
  sim::Duration post_period = sim::usec(5);
  /// WRs posted back-to-back per round (one doorbell, WR-list style).
  /// Scheduler wakeups are tick-granular, so per-op posting could never
  /// keep a deep outstanding window full; bursts can.
  int burst = 16;
  /// MrThrash only: regions cycled per target (sized past the NIC cache
  /// so every touch misses).
  int mr_pool = 64;

  // Characteristic presets (tenant/targets still the caller's choice).
  static TenantStormConfig read_storm();
  static TenantStormConfig bandwidth_hog();
  static TenantStormConfig cq_flood();
  static TenantStormConfig mr_thrash();
};

class TenantStorm {
 public:
  /// The storm rotates over `targets` round-robin. MrThrash uses only the
  /// `node` of each target: it registers (and churns) its own MR pools on
  /// those nodes' NICs instead of reading a fixed region.
  TenantStorm(net::Fabric& fabric, os::Node& home,
              std::vector<StormTarget> targets, TenantStormConfig cfg);
  ~TenantStorm();

  TenantStorm(const TenantStorm&) = delete;
  TenantStorm& operator=(const TenantStorm&) = delete;

  /// Spawns the poster/drain threads. Idempotent while running. Safe to
  /// call mid-simulation (the StormStart path).
  void start();
  /// Kills the threads. Already-posted WRs complete normally and keep
  /// draining the window, so a stopped storm's pressure decays at the
  /// victims' service rate — exactly like a real aggressor dying.
  void stop();
  bool running() const { return running_; }

  net::TenantId tenant() const { return cfg_.tenant; }
  const TenantStormConfig& config() const { return cfg_; }

  // --- counters -------------------------------------------------------------
  std::uint64_t posted() const { return posted_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t failed() const { return failed_; }
  std::uint64_t bytes_completed() const { return bytes_completed_; }
  std::size_t outstanding() const { return outstanding_; }

 private:
  os::Program poster_body(os::SimThread& self, int idx);
  os::Program drain_body(os::SimThread& self);
  void post_one(int idx, std::size_t& rr);
  void handle(net::Completion c);

  net::Fabric* fabric_;
  os::Node* home_;
  std::vector<StormTarget> targets_;
  TenantStormConfig cfg_;
  bool running_ = false;
  std::size_t outstanding_ = 0;
  std::uint64_t posted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t bytes_completed_ = 0;
  std::vector<os::SimThread*> threads_;
  std::vector<std::shared_ptr<net::QpContext>> ctxs_;
  net::CompletionQueue cq_;
  os::WaitQueue window_wq_;  ///< posters block here when the window fills
  /// MrThrash: per-target pools of this tenant's registered regions.
  std::vector<std::vector<net::MrKey>> pools_;
};

/// Wires a FaultInjector's StormStart/StormStop events to generators:
/// event storm id i starts/stops storms[i]. Out-of-range ids are inert.
/// The storms must outlive the injector's armed plans.
void drive_storms(fault::FaultInjector& injector,
                  std::vector<TenantStorm*> storms);

}  // namespace rdmamon::workload
