// Admission control on top of the load index: the paper's motivating
// use-case ("several systems rely on the cluster resource usage
// information for admission control of requests"). A request is admitted
// only if the least-loaded back end's index is below the threshold —
// stale or inaccurate load data admits requests the cluster cannot
// actually absorb (or rejects ones it could).
#pragma once

#include <cstdint>

namespace rdmamon::lb {

class LoadBalancer;

class AdmissionController {
 public:
  /// `threshold` is compared against the picked back end's load index.
  explicit AdmissionController(double threshold) : threshold_(threshold) {}

  /// Decides for the given back-end pick; counts the outcome.
  bool admit(double picked_load_index) {
    const bool ok = picked_load_index < threshold_;
    ++(ok ? admitted_ : rejected_);
    return ok;
  }

  double threshold() const { return threshold_; }
  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t rejected() const { return rejected_; }

 private:
  double threshold_;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace rdmamon::lb
