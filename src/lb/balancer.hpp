// WebSphere-style weighted load balancing (Section 5.2.1): CPU, memory,
// network and connection load indices are combined into one scalar; the
// dispatcher forwards each request to the least-loaded back end. The
// e-RDMA-Sync scheme additionally penalises back ends with pending
// interrupts (hidden load the classic indices miss).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "monitor/adaptive.hpp"
#include "monitor/inbox.hpp"
#include "monitor/monitor.hpp"
#include "monitor/scatter.hpp"
#include "monitor/scheme.hpp"
#include "os/node.hpp"
#include "sim/time.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/slo.hpp"

namespace rdmamon::lb {

/// Weights of the combined load index.
struct WeightConfig {
  double w_cpu = 0.30;
  double w_mem = 0.10;
  double w_net = 0.10;
  double w_conn = 0.10;
  /// Weight of the instantaneous run-queue length (nr_running). This is
  /// the fastest-moving component of the index — the signal whose
  /// staleness separates the schemes (the utilisation EMA is smoothed by
  /// construction, run-queue length is not).
  double w_runq = 0.50;
  /// Added per pending interrupt (e-RDMA-Sync only; 0 elsewhere).
  double irq_penalty = 0.0;
  /// Normalisers.
  double net_capacity_bps = 1.25e9;
  int conn_capacity = 128;
  int runq_capacity = 8;  ///< runnable threads considered "saturated"

  /// A server whose index reaches this is treated as overloaded and gets
  /// zero weight (unless every server is overloaded) — the WebSphere
  /// behaviour of taking a hot server out of rotation entirely.
  double overload_cutoff = 0.75;

  /// Defaults for a scheme: e-RDMA-Sync turns the IRQ term on.
  static WeightConfig for_scheme(monitor::Scheme s) {
    WeightConfig w;
    if (s == monitor::Scheme::ERdmaSync) w.irq_penalty = 0.15;
    return w;
  }
};

/// Scalar load index of one snapshot (higher = more loaded).
double load_index(const os::LoadSnapshot& info, const WeightConfig& w);

/// Failure-detector state of one back end, driven purely by monitoring
/// fetch outcomes (the only signal the front end has).
enum class BackendHealth {
  Healthy,  ///< fetches succeeding
  Suspect,  ///< >= suspect_after consecutive failures; still dispatched
  Dead,     ///< >= dead_after consecutive failures; out of rotation
};

inline const char* to_string(BackendHealth h) {
  switch (h) {
    case BackendHealth::Healthy: return "healthy";
    case BackendHealth::Suspect: return "suspect";
    case BackendHealth::Dead: return "dead";
  }
  return "?";
}

/// Thresholds of the consecutive-failure detector.
struct HealthConfig {
  int suspect_after = 1;  ///< consecutive failures before Suspect
  int dead_after = 3;     ///< consecutive failures before Dead
  int readmit_after = 2;  ///< consecutive successes to re-admit a Dead one
  /// A Dead back end is probed only every this many poll rounds: each
  /// probe costs a full fetch_timeout, so probing every round would let
  /// one dead server slow the whole poll loop. <= 1 probes every round.
  int dead_probe_every = 8;
};

/// How the poller refreshes the back-end samples each round.
enum class PollMode {
  /// Scatter-gather: all fetches of a round issued concurrently through
  /// the ScatterFetcher (RDMA: one batched multi-READ post; sockets: one
  /// in-flight request per connection). Per-backend staleness is
  /// independent of N.
  Scatter,
  /// Legacy sequential sweep: one blocking fetch after another, so a slow
  /// or dead back end delays every later one (round time grows O(N)).
  Sequential,
};

inline const char* to_string(PollMode m) {
  return m == PollMode::Scatter ? "scatter" : "sequential";
}

/// Configuration of the push/adaptive refresh strategy (enable_push).
struct PushPollConfig {
  monitor::MonitorStrategy strategy = monitor::MonitorStrategy::Push;
  /// Inbox silence that triggers a verification READ for a push-mode back
  /// end: must exceed the publisher's max_interval (heartbeat) plus
  /// transport and scheduling slack, or healthy back ends get needlessly
  /// verified. Silence shorter than this is neutral — it neither feeds
  /// nor resets the failure detector.
  sim::Duration silence_bound = sim::msec(150);
  /// Front-end CPU cost of scanning one inbox slot (a local memory read
  /// plus the seqlock checks; no doorbell, no wire).
  sim::Duration scan_cost = sim::nsec(150);
  /// Cadence of the dedicated inbox scanner thread. The scan is a local
  /// memory sweep, so it can run far faster than the wire poll rounds —
  /// this is where the push scheme's freshness advantage comes from: a
  /// pushed change reaches the view within ~scan_period instead of
  /// waiting out the poll granularity. Zero disables the thread (slots
  /// are then consumed only by the per-round pre-pass).
  sim::Duration scan_period = sim::msec(5);
  /// Controller tuning; used only when strategy == Adaptive. pull_period
  /// is overridden with the balancer's granularity at start().
  monitor::AdaptiveConfig adaptive;
};

/// One dispatch decision, kept in a bounded ring for post-mortems: who
/// was picked, on a view of what age, refreshed via which path, and why.
/// `via` and `reason` are static string literals — the ring never
/// allocates per pick.
struct DispatchRecord {
  sim::TimePoint at{};
  int backend = -1;
  /// now - the view's /proc sampling instant (the information age the
  /// decision was actually made on); -1ns when the winner had no view yet.
  sim::Duration view_age{-1};
  const char* via = "none";    ///< "pull" / "push" / "gossip" / "none"
  const char* reason = "wrr";  ///< "wrr" | "fallback" (no weighted pick)
  double weight = 0.0;         ///< winner's smooth-WRR weight
};

/// Tracks the latest monitoring sample per back end and picks the least
/// loaded. A poller thread on the front-end node refreshes the samples
/// every `granularity` — through the configured scheme, so the data is
/// exactly as fresh (or stale, or costly) as that scheme makes it.
/// Every fetch in the round arms (and on success cancels) a deadline
/// timer; those land on the event queue's near-future wheel, so the
/// fine granularities the paper argues for (Fig 9) scale to hundreds of
/// back ends without the simulator's timer plumbing becoming the cost.
class LoadBalancer {
 public:
  explicit LoadBalancer(WeightConfig weights) : weights_(weights) {}
  ~LoadBalancer();

  /// Registers a back end via its monitoring channel.
  void add_backend(std::unique_ptr<monitor::MonitorChannel> channel);

  /// Replaces the failure-detector thresholds (before or after start).
  void set_health_config(HealthConfig hc) { health_cfg_ = hc; }

  /// Selects the poll strategy (default Scatter). Call before start().
  void set_poll_mode(PollMode m) { poll_mode_ = m; }
  PollMode poll_mode() const { return poll_mode_; }

  /// Verbs-layer tuning for the scatter engine's completion channel:
  /// cq_mod_count/period moderate consumer wakeups on the shared CQ (the
  /// signal-every-k and context-sharing halves live with the channels —
  /// see net::make_context_pool). Call before start(); the defaults keep
  /// the historical one-notify-per-completion behaviour.
  void set_verbs_tuning(net::VerbsTuning t) { verbs_ = t; }
  const net::VerbsTuning& verbs_tuning() const { return verbs_; }

  // --- push / adaptive strategy (monitor/inbox.hpp) ------------------------
  /// Enables the push-based refresh path: back end i's publisher targets
  /// slot i of `inbox` (which must have >= backends() slots and belong to
  /// the front-end node passed to start()). Push-mode back ends are
  /// refreshed by scanning their slot; a slot silent beyond
  /// cfg.silence_bound falls back to a verification READ through the
  /// back end's normal channel, and only that fetch's outcome drives the
  /// health ladder. Strategy Adaptive instantiates the per-backend
  /// controller at start(). Call after add_backend, before start();
  /// `inbox` must outlive the balancer.
  void enable_push(monitor::PushInbox& inbox, PushPollConfig cfg);

  /// Refresh mode of back end `i` this round (Pull when push is disabled
  /// or the adaptive controller says so).
  monitor::FetchMode fetch_mode(std::size_t i) const;

  /// Observer of adaptive mode switches (strategy Adaptive only; runs
  /// inside the poller). The wiring layer uses this to pause a back
  /// end's publisher while it is pull-mode and resume it on the way
  /// back. Call before start().
  void on_mode_change(std::function<void(std::size_t, monitor::FetchMode)> cb) {
    mode_cbs_.push_back(std::move(cb));
  }

  /// The adaptive controller (null unless strategy == Adaptive and
  /// start() has run).
  const monitor::AdaptiveController* adaptive() const {
    return adaptive_.get();
  }
  monitor::PushInbox* push_inbox() { return push_inbox_; }

  /// Fresh inbox images applied / verification READs triggered by silence.
  std::uint64_t push_fresh() const { return push_fresh_; }
  std::uint64_t push_verifications() const { return push_verifications_; }

  // --- scale-out hooks (src/cluster) ---------------------------------------
  /// Restricts the poller to back ends the predicate accepts — the
  /// scale-out plane's shard ownership filter. Re-evaluated every round,
  /// so a ring rebalance takes effect at the next poll with no rewiring.
  /// Back ends filtered out keep their samples/health state; feed them
  /// through ingest_peer_sample / note_stale instead.
  void set_poll_filter(std::function<bool(std::size_t)> f) {
    poll_filter_ = std::move(f);
  }

  /// Observer invoked (inside the poller) after each round's samples have
  /// been applied, with the round's target indices.
  void on_round(std::function<void(const std::vector<std::size_t>&)> cb) {
    round_cbs_.push_back(std::move(cb));
  }

  /// Merges a sample another front-end's poller retrieved (gossiped via a
  /// peer-view READ) as if this balancer had fetched it: updates the
  /// load sample and drives the same Healthy/Suspect/Dead detector.
  /// Only the local fetch-latency statistic is left untouched.
  void ingest_peer_sample(std::size_t i, const monitor::MonitorSample& s);

  /// Counts one staleness strike against back end `i`: the peer-view
  /// entry covering it exceeded the staleness bound, which is a
  /// monitoring failure exactly like a timed-out fetch, and feeds the
  /// same consecutive-failure HealthConfig thresholds.
  void note_stale(std::size_t i);

  /// Resets back end `i`'s failure detector to Healthy (zeroed streaks),
  /// firing health callbacks if the state changes. Used on shard
  /// takeover: the new owner starts with a clean detector so the
  /// dead-probe cadence cannot throttle its first polls.
  void reset_health(std::size_t i);

  /// Labels this balancer's telemetry instruments with {frontend=<name>}
  /// so M balancers sharing one registry stay distinguishable. Empty
  /// (default) keeps the historical unlabelled names. Call before start().
  void set_telemetry_instance(std::string name) {
    telemetry_instance_ = std::move(name);
  }

  /// Spawns the front-end poller thread. Call once after add_backend.
  void start(os::Node& frontend, sim::Duration granularity);

  /// The poller spawned by start() (null before). The scale-out plane's
  /// stall() kills it to model a hung monitoring process.
  os::SimThread* poller_thread() { return poller_thread_; }

  /// Picks the next back end by smooth weighted round-robin over
  /// per-server weights w_i = max(floor, 1 - load_index_i), the WebSphere
  /// behaviour the paper references: servers reporting low load receive
  /// proportionally more requests; a server whose (fresh) index spikes is
  /// avoided almost entirely until it recovers. Stale indices keep
  /// feeding the hotspot — the failure mode fine-grained monitoring fixes.
  int pick();

  int backends() const { return static_cast<int>(channels_.size()); }
  double index_of(int backend) const;
  const monitor::MonitorSample& last_sample(int backend) const {
    return samples_[static_cast<std::size_t>(backend)];
  }
  const WeightConfig& weights() const { return weights_; }

  // --- failure detection ---------------------------------------------------
  BackendHealth health_of(int backend) const {
    return health_[static_cast<std::size_t>(backend)].state;
  }
  /// Back ends currently in rotation (not Dead).
  int alive_backends() const;
  /// Total failed fetches seen by the poller.
  std::uint64_t fetch_failures() const { return fetch_failures_; }
  /// Registers an observer of health transitions (several may register;
  /// e.g. the dispatcher's failover hook). Runs inside the poller.
  void on_health_change(std::function<void(int, BackendHealth)> cb) {
    health_cbs_.push_back(std::move(cb));
  }
  const HealthConfig& health_config() const { return health_cfg_; }

  /// Mean observed refresh latency (monitoring fetch) per back end.
  const sim::OnlineStats& fetch_latency_ns() const { return fetch_lat_; }

  // --- information-age lineage ---------------------------------------------
  /// Recent dispatch decisions, oldest first (bounded; see
  /// set_dispatch_log_capacity). Every pick() appends one record once
  /// start() has bound a clock.
  const std::deque<DispatchRecord>& dispatch_log() const {
    return dispatch_log_;
  }
  void set_dispatch_log_capacity(std::size_t cap) {
    dispatch_log_cap_ = cap;
    while (dispatch_log_.size() > dispatch_log_cap_) {
      dispatch_log_.pop_front();
    }
  }

  /// Age of back end `i`'s current view (now - its /proc sampling
  /// instant), or a negative duration when no view exists yet. This is
  /// what the "lb.view_age" SLO probe reports the worst case of.
  sim::Duration view_age(std::size_t i) const;

 private:
  struct Health {
    BackendHealth state = BackendHealth::Healthy;
    int fail_streak = 0;
    int success_streak = 0;
  };

  /// Which refresh path produced a back end's current view — the
  /// "scheme" dimension of the lineage histograms ("push"/"gossip", or
  /// the channel's wire scheme name for pull).
  enum class ViewSource : std::uint8_t { Pull = 0, Push = 1, Gossip = 2 };
  static constexpr std::size_t kViewSources = 3;

  /// Lazily-resolved per-{backend, source} lineage instruments.
  struct LineageCell {
    telemetry::HistogramMetric* consume = nullptr;
    telemetry::HistogramMetric* dispatch = nullptr;
  };
  LineageCell& lineage_cell(std::size_t i, ViewSource src);
  const char* source_label(std::size_t i, ViewSource src) const;

  os::Program poller_body(os::SimThread& self, sim::Duration granularity);
  /// Push-strategy pre-pass of one round: scans the inbox slots of
  /// push-mode targets, applies Fresh images, and rewrites `targets` to
  /// the subset still needing a wire fetch (pull-mode + silence
  /// verifications). Returns the number of slots scanned (CPU cost is
  /// charged by the caller).
  std::size_t push_prepass(std::vector<std::size_t>& targets,
                           sim::TimePoint now);
  /// Dedicated inbox scanner (push_cfg_.scan_period > 0): sweeps every
  /// push-mode slot far more often than the wire polls run, so pushed
  /// changes reach the view at memory-read latency. Verification and the
  /// failure ladder stay with the per-round pre-pass.
  os::Program scanner_body(os::SimThread& self);
  /// Consumes one Fresh scan result: counters, adaptive evidence,
  /// telemetry, then apply_sample. Shared by pre-pass and scanner.
  void consume_push_fresh(std::size_t i, const monitor::MonitorSample& s,
                          bool heartbeat);
  void record_fetch(std::size_t i, bool ok);
  void apply_sample(std::size_t i, const monitor::MonitorSample& s,
                    bool local = true, ViewSource src = ViewSource::Pull);
  /// Targets of poll round `round`: every live back end, plus the Dead
  /// ones on the dead-probe cadence.
  std::vector<std::size_t> poll_targets(std::uint64_t round) const;

  WeightConfig weights_;
  HealthConfig health_cfg_;
  PollMode poll_mode_ = PollMode::Scatter;
  net::VerbsTuning verbs_;  ///< CQ moderation for the scatter channel
  std::function<bool(std::size_t)> poll_filter_;  ///< shard ownership
  std::vector<std::function<void(const std::vector<std::size_t>&)>>
      round_cbs_;
  std::string telemetry_instance_;  ///< "" = unlabelled instruments
  os::SimThread* poller_thread_ = nullptr;
  os::SimThread* scanner_thread_ = nullptr;
  std::vector<std::unique_ptr<monitor::MonitorChannel>> channels_;
  std::vector<monitor::MonitorSample> samples_;
  std::vector<Health> health_;
  std::vector<double> wrr_credit_;  // smooth weighted-RR state
  std::vector<std::function<void(int, BackendHealth)>> health_cbs_;
  std::uint64_t fetch_failures_ = 0;
  sim::OnlineStats fetch_lat_;
  monitor::ScatterFetcher scatter_;  ///< joined at start()
  std::vector<monitor::MonitorSample> round_buf_;
  // Push / adaptive strategy state (enable_push).
  monitor::PushInbox* push_inbox_ = nullptr;  ///< not owned
  PushPollConfig push_cfg_;
  std::unique_ptr<monitor::AdaptiveController> adaptive_;
  std::vector<std::function<void(std::size_t, monitor::FetchMode)>> mode_cbs_;
  std::uint64_t push_fresh_ = 0;
  std::uint64_t push_verifications_ = 0;
  // Information-age lineage (tentpole of the freshness plane): per-view
  // provenance, per-{backend, source} age histograms, the dispatch ring,
  // and the SLO streams fed from pick(). The SloEngine (when one is
  // installed on the registry) must outlive this balancer — probes are
  // removed in the destructor.
  sim::Simulation* simu_ = nullptr;  ///< bound at start(); clock for pick()
  std::vector<ViewSource> view_src_;  ///< provenance of samples_[i]
  std::vector<std::array<LineageCell, kViewSources>> lineage_;
  std::deque<DispatchRecord> dispatch_log_;
  std::size_t dispatch_log_cap_ = 256;
  telemetry::SloEngine* slo_ = nullptr;
  telemetry::SloEngine::Stream* s_view_age_ = nullptr;
  std::vector<std::uint64_t> slo_probes_;
  telemetry::FlightRing* fr_ = nullptr;  ///< "lb" ring: health + mode edges
  // Telemetry instruments, resolved in start() (null when disabled / no
  // registry installed on the front end's simulation).
  telemetry::Registry* reg_ = nullptr;
  std::vector<telemetry::Counter*> m_pick_;  ///< per-backend dispatch counts
  telemetry::HistogramMetric* m_pick_weight_ = nullptr;
  telemetry::Counter* m_to_healthy_ = nullptr;
  telemetry::Counter* m_to_suspect_ = nullptr;
  telemetry::Counter* m_to_dead_ = nullptr;
  telemetry::Counter* m_push_fresh_ = nullptr;
  telemetry::Counter* m_push_verify_ = nullptr;
  telemetry::HistogramMetric* m_push_staleness_ = nullptr;
  telemetry::ScopedCollector collector_;  ///< alive count + failure total
};

}  // namespace rdmamon::lb
