#include "lb/balancer.hpp"

#include <algorithm>
#include <cassert>

namespace rdmamon::lb {

double load_index(const os::LoadSnapshot& info, const WeightConfig& w) {
  const double net =
      std::min(info.net_rate / w.net_capacity_bps, 1.0);
  const double conn = std::min(
      static_cast<double>(info.connections) / w.conn_capacity, 1.0);
  const double runq = std::min(
      static_cast<double>(info.nr_running) / w.runq_capacity, 1.0);
  double idx = w.w_cpu * info.cpu_load + w.w_mem * info.mem_load +
               w.w_net * net + w.w_conn * conn + w.w_runq * runq;
  if (w.irq_penalty > 0.0) {
    // Ordinary traffic keeps a pending interrupt or two in flight on a
    // busy server; pressure beyond that indicates hidden load (deferred
    // protocol work, interrupt storms) before it ever shows up in the
    // run-queue or utilisation numbers.
    const int excess = info.irq_pending_total() - 2;
    if (excess > 0) idx += w.irq_penalty * excess;
  }
  return idx;
}

void LoadBalancer::add_backend(
    std::unique_ptr<monitor::MonitorChannel> channel) {
  channels_.push_back(std::move(channel));
  samples_.emplace_back();
  health_.emplace_back();
  wrr_credit_.push_back(0.0);
  view_src_.push_back(ViewSource::Pull);
  lineage_.emplace_back();
}

LoadBalancer::~LoadBalancer() {
  // The SloEngine outlives the balancer by contract (installed before
  // wiring, like the registry); the probes capture `this` and must go.
  if (slo_ != nullptr) {
    for (std::uint64_t id : slo_probes_) slo_->remove_probe(id);
  }
}

const char* LoadBalancer::source_label(std::size_t i, ViewSource src) const {
  switch (src) {
    case ViewSource::Push: return "push";
    case ViewSource::Gossip: return "gossip";
    case ViewSource::Pull: break;
  }
  return monitor::to_string(channels_[i]->frontend().scheme());
}

LoadBalancer::LineageCell& LoadBalancer::lineage_cell(std::size_t i,
                                                      ViewSource src) {
  LineageCell& cell = lineage_[i][static_cast<std::size_t>(src)];
  if (reg_ != nullptr && cell.consume == nullptr) {
    telemetry::Labels labels{
        {"backend", channels_[i]->backend().node().name()},
        {"scheme", source_label(i, src)}};
    if (!telemetry_instance_.empty()) {
      labels.add("frontend", telemetry_instance_);
    }
    cell.consume = &reg_->histogram("lb.age_at_consume_ns", labels);
    cell.dispatch = &reg_->histogram("lb.age_at_dispatch_ns", labels);
  }
  return cell;
}

sim::Duration LoadBalancer::view_age(std::size_t i) const {
  if (simu_ == nullptr || !samples_[i].ok) return sim::Duration{-1};
  return simu_->now() - samples_[i].info.computed_at;
}

int LoadBalancer::alive_backends() const {
  int n = 0;
  for (const Health& h : health_) {
    if (h.state != BackendHealth::Dead) ++n;
  }
  return n;
}

void LoadBalancer::record_fetch(std::size_t i, bool ok) {
  Health& h = health_[i];
  const BackendHealth before = h.state;
  if (ok) {
    h.fail_streak = 0;
    ++h.success_streak;
    // A Suspect recovers on the first good fetch; a Dead back end must
    // prove itself for readmit_after fetches (flap damping).
    if (h.state == BackendHealth::Suspect ||
        (h.state == BackendHealth::Dead &&
         h.success_streak >= health_cfg_.readmit_after)) {
      h.state = BackendHealth::Healthy;
    }
  } else {
    ++fetch_failures_;
    h.success_streak = 0;
    ++h.fail_streak;
    if (h.fail_streak >= health_cfg_.dead_after) {
      h.state = BackendHealth::Dead;
    } else if (h.state == BackendHealth::Healthy &&
               h.fail_streak >= health_cfg_.suspect_after) {
      h.state = BackendHealth::Suspect;
    }
  }
  if (h.state != before) {
    if (reg_ != nullptr) {
      telemetry::add(h.state == BackendHealth::Healthy ? m_to_healthy_
                     : h.state == BackendHealth::Suspect
                         ? m_to_suspect_
                         : m_to_dead_);
      // Timestamped transition record in the span stream.
      telemetry::span_event(reg_, "lb", "health",
                            channels_[i]->backend().node().name() + ": " +
                                to_string(before) + " -> " +
                                to_string(h.state));
    }
    telemetry::fr_record(fr_, "health", static_cast<std::int64_t>(i),
                         static_cast<std::int64_t>(h.state));
    for (const auto& cb : health_cbs_) cb(static_cast<int>(i), h.state);
  }
}

void LoadBalancer::apply_sample(std::size_t i,
                                const monitor::MonitorSample& s,
                                bool local, ViewSource src) {
  record_fetch(i, s.ok);
  if (s.ok) {
    samples_[i] = s;
    view_src_[i] = src;
    // The fetch-latency statistic measures THIS front end's monitoring
    // path; a gossiped sample rode a peer's fetch plus a view READ, so
    // folding its latency in would pollute the metric.
    if (local) fetch_lat_.add(static_cast<double>(s.latency().ns));
    // Lineage: the sample's information age at the instant the view
    // absorbed it (retrieved_at - the /proc sampling instant).
    if (reg_ != nullptr) {
      telemetry::observe(lineage_cell(i, src).consume, s.staleness());
    }
  }
}

void LoadBalancer::ingest_peer_sample(std::size_t i,
                                      const monitor::MonitorSample& s) {
  apply_sample(i, s, /*local=*/false, ViewSource::Gossip);
}

void LoadBalancer::note_stale(std::size_t i) { record_fetch(i, false); }

void LoadBalancer::reset_health(std::size_t i) {
  Health& h = health_[i];
  const BackendHealth before = h.state;
  h = Health{};
  if (before != BackendHealth::Healthy) {
    if (reg_ != nullptr) {
      telemetry::add(m_to_healthy_);
      telemetry::span_event(reg_, "lb", "health",
                            channels_[i]->backend().node().name() +
                                ": reset " + to_string(before) +
                                " -> healthy (shard takeover)");
    }
    telemetry::fr_record(fr_, "health", static_cast<std::int64_t>(i),
                         static_cast<std::int64_t>(BackendHealth::Healthy));
    for (const auto& cb : health_cbs_) {
      cb(static_cast<int>(i), BackendHealth::Healthy);
    }
  }
}

void LoadBalancer::enable_push(monitor::PushInbox& inbox,
                               PushPollConfig cfg) {
  assert(inbox.slots() >= backends() &&
         "inbox needs one slot per registered back end");
  push_inbox_ = &inbox;
  push_cfg_ = cfg;
}

monitor::FetchMode LoadBalancer::fetch_mode(std::size_t i) const {
  if (push_inbox_ == nullptr ||
      push_cfg_.strategy == monitor::MonitorStrategy::Pull) {
    return monitor::FetchMode::Pull;
  }
  if (push_cfg_.strategy == monitor::MonitorStrategy::Push) {
    return monitor::FetchMode::Push;
  }
  return adaptive_ ? adaptive_->mode(i) : push_cfg_.adaptive.initial;
}

std::size_t LoadBalancer::push_prepass(std::vector<std::size_t>& targets,
                                       sim::TimePoint now) {
  std::vector<std::size_t> pulls;
  pulls.reserve(targets.size());
  std::size_t scanned = 0;
  for (std::size_t i : targets) {
    if (fetch_mode(i) == monitor::FetchMode::Pull) {
      pulls.push_back(i);
      continue;
    }
    ++scanned;
    monitor::MonitorSample s;
    bool heartbeat = false;
    const monitor::PushInbox::ScanResult r =
        push_inbox_->scan(static_cast<int>(i), s, &heartbeat);
    if (r == monitor::PushInbox::ScanResult::Fresh) {
      consume_push_fresh(i, s, heartbeat);
      continue;
    }
    // Empty / Unchanged / Torn / Regressed: no view update. Recent
    // silence is neutral — a healthy back end with a flat load pushes
    // only heartbeats, and the detector must not count the quiet rounds
    // in between as failures. Silence past the bound means the heartbeat
    // missed: verify with a READ through the normal channel, and let THAT
    // outcome drive the ladder — push silence alone never kills a back
    // end (it could be a torn slot or a lost single write).
    if (now - push_inbox_->last_fresh(static_cast<int>(i)) >=
        push_cfg_.silence_bound) {
      ++push_verifications_;
      if (reg_ != nullptr) telemetry::add(m_push_verify_);
      pulls.push_back(i);
    }
  }
  targets = std::move(pulls);
  return scanned;
}

void LoadBalancer::consume_push_fresh(std::size_t i,
                                      const monitor::MonitorSample& s,
                                      bool heartbeat) {
  ++push_fresh_;
  if (adaptive_) adaptive_->on_push_fresh(i, heartbeat, s.staleness());
  if (reg_ != nullptr) {
    telemetry::add(m_push_fresh_);
    telemetry::observe(m_push_staleness_, s.staleness());
  }
  apply_sample(i, s, /*local=*/true, ViewSource::Push);
}

os::Program LoadBalancer::scanner_body(os::SimThread& self) {
  for (;;) {
    co_await os::SleepFor{push_cfg_.scan_period};
    std::size_t scanned = 0;
    for (std::size_t i = 0; i < channels_.size(); ++i) {
      if (poll_filter_ && !poll_filter_(i)) continue;  // not our shard
      if (fetch_mode(i) != monitor::FetchMode::Push) continue;
      ++scanned;
      monitor::MonitorSample s;
      bool heartbeat = false;
      if (push_inbox_->scan(static_cast<int>(i), s, &heartbeat) ==
          monitor::PushInbox::ScanResult::Fresh) {
        consume_push_fresh(i, s, heartbeat);
      }
    }
    if (scanned > 0) {
      co_await os::Compute{push_cfg_.scan_cost *
                           static_cast<std::int64_t>(scanned)};
    }
  }
  (void)self;
}

std::vector<std::size_t> LoadBalancer::poll_targets(
    std::uint64_t round) const {
  const int every = health_cfg_.dead_probe_every;
  const bool probe_dead =
      every <= 1 || round % static_cast<std::uint64_t>(every) == 0;
  std::vector<std::size_t> targets;
  targets.reserve(channels_.size());
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    if (poll_filter_ && !poll_filter_(i)) continue;  // not our shard
    if (probe_dead || health_[i].state != BackendHealth::Dead) {
      targets.push_back(i);
    }
  }
  return targets;
}

void LoadBalancer::start(os::Node& frontend, sim::Duration granularity) {
  // Join every monitor to the scatter engine's shared completion channel.
  // Harmless for Sequential mode: the blocking fetch path demuxes by
  // wr_id off the same CQ.
  for (auto& ch : channels_) scatter_.add(ch->frontend());
  if (verbs_.cq_mod_count > 1) {
    scatter_.cq().bind_moderation(frontend.simu(), verbs_.cq_mod_count,
                                  verbs_.cq_mod_period);
  }
  if (push_inbox_ != nullptr &&
      push_cfg_.strategy == monitor::MonitorStrategy::Adaptive) {
    // The pull side of the controller's cost model is by definition this
    // balancer's own poll cadence.
    push_cfg_.adaptive.pull_period = granularity;
    adaptive_ = std::make_unique<monitor::AdaptiveController>(
        push_cfg_.adaptive, backends());
    for (auto& cb : mode_cbs_) adaptive_->on_switch(cb);
    // Flight-record every mode switch (fr_ is resolved below, before the
    // simulation runs; the callback reads it at fire time).
    adaptive_->on_switch([this](std::size_t i, monitor::FetchMode m) {
      telemetry::fr_record(fr_, "mode", static_cast<std::int64_t>(i),
                           m == monitor::FetchMode::Push ? 1 : 0);
    });
  }
  simu_ = &frontend.simu();
  reg_ = telemetry::Registry::of(frontend.simu());
  if (reg_ != nullptr) {
    // When several balancers share one registry (scale-out plane), each
    // labels its instruments with its front-end name; the single-balancer
    // default keeps the historical unlabelled series byte-identical.
    auto labelled = [this](telemetry::Labels base) {
      if (!telemetry_instance_.empty()) {
        base.add("frontend", telemetry_instance_);
      }
      return base;
    };
    m_pick_.resize(channels_.size(), nullptr);
    for (std::size_t i = 0; i < channels_.size(); ++i) {
      m_pick_[i] = &reg_->counter(
          "lb.pick",
          labelled({{"backend", channels_[i]->backend().node().name()}}));
    }
    m_pick_weight_ = &reg_->histogram("lb.pick.weight", labelled({}));
    auto transition = [&](const char* to) -> telemetry::Counter& {
      return reg_->counter("lb.health.transitions", labelled({{"to", to}}));
    };
    m_to_healthy_ = &transition("healthy");
    m_to_suspect_ = &transition("suspect");
    m_to_dead_ = &transition("dead");
    if (push_inbox_ != nullptr) {
      m_push_fresh_ = &reg_->counter("lb.push.fresh", labelled({}));
      m_push_verify_ = &reg_->counter("lb.push.verifications", labelled({}));
      m_push_staleness_ =
          &reg_->histogram("lb.push.staleness_ns", labelled({}));
    }
    collector_.bind(frontend.simu(), [this, labelled](telemetry::Registry& reg) {
      reg.gauge("lb.alive_backends", labelled({}))
          .set(static_cast<double>(alive_backends()));
      reg.gauge("lb.fetch_failures", labelled({}))
          .set(static_cast<double>(fetch_failures_));
      if (adaptive_) {
        reg.gauge("lb.adaptive.switches", labelled({}))
            .set(static_cast<double>(adaptive_->total_switches()));
      }
    });
    fr_ = reg_->recorder().ring("lb");
    // Freshness SLOs: feed streams the operator declared (an undeclared
    // stream resolves to null and the balancer stays silent about it).
    slo_ = reg_->slo();
    if (slo_ != nullptr) {
      s_view_age_ = slo_->find("lb.view_age");
      if (s_view_age_ != nullptr) {
        // Worst current view age across our shard — a gauge-style probe,
        // so the SLO keeps degrading while a frozen publisher says
        // nothing (the silence IS the signal).
        slo_probes_.push_back(slo_->add_probe(s_view_age_, [this] {
          double worst = 0.0;
          for (std::size_t i = 0; i < channels_.size(); ++i) {
            if (poll_filter_ && !poll_filter_(i)) continue;
            const sim::Duration a = view_age(i);
            if (a.ns > 0) worst = std::max(worst, static_cast<double>(a.ns));
          }
          return worst;
        }));
      }
      if (telemetry::SloEngine::Stream* silence =
              slo_->find("lb.scan_silence");
          silence != nullptr && push_inbox_ != nullptr) {
        slo_probes_.push_back(slo_->add_probe(silence, [this] {
          double worst = 0.0;
          const sim::TimePoint now = simu_->now();
          for (std::size_t i = 0; i < channels_.size(); ++i) {
            if (poll_filter_ && !poll_filter_(i)) continue;
            if (fetch_mode(i) != monitor::FetchMode::Push) continue;
            const sim::Duration d =
                now - push_inbox_->last_fresh(static_cast<int>(i));
            worst = std::max(worst, static_cast<double>(d.ns));
          }
          return worst;
        }));
      }
    }
  }
  poller_thread_ =
      frontend.spawn("lb-poller", [this, granularity](os::SimThread& t) {
        return poller_body(t, granularity);
      });
  if (push_inbox_ != nullptr &&
      push_cfg_.strategy != monitor::MonitorStrategy::Pull &&
      push_cfg_.scan_period.ns > 0) {
    scanner_thread_ = frontend.spawn(
        "lb-scanner", [this](os::SimThread& t) { return scanner_body(t); });
  }
}

os::Program LoadBalancer::poller_body(os::SimThread& self,
                                      sim::Duration granularity) {
  // One poll round every `granularity`. Scatter mode issues the round's
  // fetches concurrently, so per-backend staleness tracks the slowest
  // single fetch instead of the sum; Sequential keeps the paper's
  // original sweep, where a slow (loaded socket scheme) or dead back end
  // delays every later one — a real effect we deliberately keep
  // available for comparison.
  // Dead back ends still get probed — a fetch succeeding again is the
  // failure detector's only recovery signal — but only on the
  // dead-probe cadence, so a corpse does not cost a fetch_timeout per
  // round.
  // With push enabled, each round starts with a free-ish local pre-pass:
  // push-mode back ends are refreshed from their inbox slots, and only
  // pull-mode ones plus silence verifications go to the wire.
  sim::Simulation& simu = self.node().simu();
  for (std::uint64_t round = 0;; ++round) {
    std::vector<std::size_t> targets = poll_targets(round);
    if (push_inbox_ != nullptr) {
      const std::size_t scanned = push_prepass(targets, simu.now());
      if (scanned > 0) {
        co_await os::Compute{push_cfg_.scan_cost *
                             static_cast<std::int64_t>(scanned)};
      }
    }
    if (poll_mode_ == PollMode::Scatter) {
      co_await scatter_.round(self, targets, round_buf_);
      for (std::size_t i : targets) {
        apply_sample(i, round_buf_[i]);
        if (adaptive_ && round_buf_[i].ok) {
          adaptive_->on_pull_sample(i, round_buf_[i].info);
        }
      }
    } else {
      for (std::size_t i : targets) {
        monitor::MonitorSample s;
        co_await channels_[i]->frontend().fetch(self, s);
        apply_sample(i, s);
        if (adaptive_ && s.ok) adaptive_->on_pull_sample(i, s.info);
      }
    }
    for (const auto& cb : round_cbs_) cb(targets);
    if (adaptive_) adaptive_->tick(simu.now());
    co_await os::SleepFor{granularity};
  }
}

int LoadBalancer::pick() {
  assert(!channels_.empty());
  const int n = backends();
  // Smooth weighted round-robin (nginx-style): every pick adds each
  // server's weight to its credit, the highest credit wins and pays back
  // the total. Deterministic, spreads proportionally, avoids dog-piling.
  constexpr double kFloor = 0.02;
  // Dead back ends leave the rotation entirely — unless every back end is
  // dead, in which case routing somewhere beats dropping on the floor.
  const bool any_alive = alive_backends() > 0;
  auto in_rotation = [&](int i) {
    return !any_alive || health_of(i) != BackendHealth::Dead;
  };
  double total = 0.0;
  int winner = -1;
  double winner_w = 0.0;
  bool any_ok = false;
  for (int i = 0; i < n; ++i) {
    if (in_rotation(i) && index_of(i) < weights_.overload_cutoff) {
      any_ok = true;
      break;
    }
  }
  for (int i = 0; i < n; ++i) {
    const double idx = index_of(i);
    // Overloaded servers leave the rotation while at least one healthy
    // server remains; Suspect ones keep only the floor weight.
    double w;
    if (!in_rotation(i)) {
      w = 0.0;
    } else if (any_ok && idx >= weights_.overload_cutoff) {
      w = 0.0;
    } else if (health_of(i) == BackendHealth::Suspect) {
      w = kFloor;
    } else {
      w = std::max(kFloor, 1.0 - idx);
    }
    wrr_credit_[static_cast<std::size_t>(i)] += w;
    total += w;
    if (w > 0.0 &&
        (winner < 0 || wrr_credit_[static_cast<std::size_t>(i)] >
                           wrr_credit_[static_cast<std::size_t>(winner)])) {
      winner = i;
      winner_w = w;
    }
  }
  const char* reason = winner < 0 ? "fallback" : "wrr";
  if (winner < 0) winner = 0;
  wrr_credit_[static_cast<std::size_t>(winner)] -= total;
  if (reg_ != nullptr) {
    telemetry::add(m_pick_[static_cast<std::size_t>(winner)]);
    telemetry::observe(m_pick_weight_, winner_w);
  }
  // Lineage at the decision point: how old was the information this
  // dispatch was actually made on, and through which path did it arrive.
  if (simu_ != nullptr) {
    const std::size_t wi = static_cast<std::size_t>(winner);
    DispatchRecord rec;
    rec.at = simu_->now();
    rec.backend = winner;
    rec.weight = winner_w;
    rec.reason = reason;
    if (samples_[wi].ok) {
      rec.view_age = rec.at - samples_[wi].info.computed_at;
      rec.via = source_label(wi, view_src_[wi]);
      if (reg_ != nullptr) {
        telemetry::observe(lineage_cell(wi, view_src_[wi]).dispatch,
                           rec.view_age);
      }
      if (slo_ != nullptr && s_view_age_ != nullptr) {
        slo_->observe(s_view_age_, static_cast<double>(rec.view_age.ns),
                      rec.at);
      }
    }
    dispatch_log_.push_back(rec);
    if (dispatch_log_.size() > dispatch_log_cap_) dispatch_log_.pop_front();
  }
  return winner;
}

double LoadBalancer::index_of(int backend) const {
  const auto& s = samples_[static_cast<std::size_t>(backend)];
  if (!s.ok) return 0.0;  // no data yet: assume idle
  return load_index(s.info, weights_);
}

}  // namespace rdmamon::lb
