// Front-end request dispatcher: relays client requests to the back end the
// LoadBalancer picks, and routes replies back. One forwarder thread per
// client connection, one reply-router thread per back-end connection.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "lb/admission.hpp"
#include "lb/balancer.hpp"
#include "net/fabric.hpp"
#include "net/socket.hpp"
#include "os/node.hpp"
#include "web/request.hpp"
#include "web/server.hpp"

namespace rdmamon::lb {

struct DispatcherConfig {
  /// CPU spent routing one request (parse + table ops).
  sim::Duration dispatch_cpu = sim::usec(15);
  /// When non-empty, the exported lb.dispatch.* gauges carry a
  /// {frontend=<name>} label, keeping M dispatchers on one registry
  /// apart (scale-out plane). Empty keeps the historical unlabelled
  /// series.
  std::string telemetry_instance;
};

class Dispatcher {
 public:
  Dispatcher(net::Fabric& fabric, os::Node& frontend, LoadBalancer& lb,
             DispatcherConfig cfg = {});

  /// Connects the dispatcher to a back-end web server (also makes the
  /// server listen on the new connection).
  void add_backend(web::WebServer& server);

  /// Creates a connection from `client_node` to the dispatcher; returns
  /// the client-side endpoint to send Requests on.
  net::Socket& add_client(os::Node& client_node);

  /// Optional admission control (owned by caller; nullptr = admit all).
  void set_admission(AdmissionController* adm) { admission_ = adm; }

  /// Wires the balancer's failure detector to this dispatcher: when a
  /// back end goes Dead, every request still pending on it is answered
  /// with a rejection so clients unblock (instead of waiting on a reply
  /// that will never come). New requests avoid it via LoadBalancer::pick.
  void enable_failover();

  /// Rejects (and forgets) every pending request routed to `backend`.
  /// Returns how many were failed over.
  std::size_t fail_pending_to(int backend);

  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t rejected() const { return rejected_; }
  /// Pending requests answered with a rejection by failover.
  std::uint64_t failed_over() const { return failed_over_; }
  /// Requests currently awaiting a back-end reply.
  std::size_t pending() const { return pending_.size(); }
  /// Requests forwarded to each back end (balance quality metric).
  const std::vector<std::uint64_t>& per_backend() const {
    return per_backend_;
  }

 private:
  struct PendingEntry {
    net::Socket* client = nullptr;  ///< where the reply must go
    int backend = -1;               ///< who we are waiting on
  };

  os::Program forwarder_body(os::SimThread& self, net::Socket* from_client);
  os::Program router_body(os::SimThread& self, net::Socket* from_backend);

  net::Fabric* fabric_;
  os::Node* frontend_;
  LoadBalancer* lb_;
  DispatcherConfig cfg_;
  AdmissionController* admission_ = nullptr;

  std::vector<net::Socket*> backend_socks_;
  std::unordered_map<std::uint64_t, PendingEntry> pending_;  // id -> route
  std::vector<std::uint64_t> per_backend_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t failed_over_ = 0;
  /// Publishes the routing totals above at snapshot time.
  telemetry::ScopedCollector collector_;
};

}  // namespace rdmamon::lb
