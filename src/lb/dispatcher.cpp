#include "lb/dispatcher.hpp"

#include <any>

namespace rdmamon::lb {

Dispatcher::Dispatcher(net::Fabric& fabric, os::Node& frontend,
                       LoadBalancer& lb, DispatcherConfig cfg)
    : fabric_(&fabric), frontend_(&frontend), lb_(&lb), cfg_(cfg) {}

void Dispatcher::add_backend(web::WebServer& server) {
  net::Connection& conn = fabric_->connect(*frontend_, server.node());
  backend_socks_.push_back(&conn.end_a());
  per_backend_.push_back(0);
  server.listen(conn.end_b());
  frontend_->spawn("disp-router" + std::to_string(backend_socks_.size()),
                   [this, sock = &conn.end_a()](os::SimThread& t) {
                     return router_body(t, sock);
                   });
}

net::Socket& Dispatcher::add_client(os::Node& client_node) {
  net::Connection& conn = fabric_->connect(client_node, *frontend_);
  frontend_->spawn("disp-fwd" + std::to_string(pending_.size()),
                   [this, sock = &conn.end_b()](os::SimThread& t) {
                     return forwarder_body(t, sock);
                   });
  return conn.end_a();
}

os::Program Dispatcher::forwarder_body(os::SimThread& self,
                                       net::Socket* from_client) {
  for (;;) {
    net::Message m;
    co_await from_client->recv(self, m);
    web::Request req = std::any_cast<web::Request>(m.payload);
    co_await os::Compute{cfg_.dispatch_cpu};
    const int backend = lb_->pick();
    if (admission_ != nullptr &&
        !admission_->admit(lb_->index_of(backend))) {
      ++rejected_;
      web::Reply rej;
      rej.id = req.id;
      rej.query_class = req.query_class;
      rej.rejected = true;
      co_await from_client->send(self, 256, rej);
      continue;
    }
    pending_[req.id] = from_client;
    ++forwarded_;
    ++per_backend_[static_cast<std::size_t>(backend)];
    co_await backend_socks_[static_cast<std::size_t>(backend)]->send(
        self, req.request_bytes, req);
  }
}

os::Program Dispatcher::router_body(os::SimThread& self,
                                    net::Socket* from_backend) {
  for (;;) {
    net::Message m;
    co_await from_backend->recv(self, m);
    const web::Reply reply = std::any_cast<web::Reply>(m.payload);
    auto it = pending_.find(reply.id);
    if (it == pending_.end()) continue;  // duplicate/late; drop
    net::Socket* to_client = it->second;
    pending_.erase(it);
    co_await to_client->send(self, m.bytes, reply);
  }
}

}  // namespace rdmamon::lb
