#include "lb/dispatcher.hpp"

#include <any>

namespace rdmamon::lb {

Dispatcher::Dispatcher(net::Fabric& fabric, os::Node& frontend,
                       LoadBalancer& lb, DispatcherConfig cfg)
    : fabric_(&fabric), frontend_(&frontend), lb_(&lb), cfg_(cfg) {
  collector_.bind(frontend.simu(), [this](telemetry::Registry& reg) {
    telemetry::Labels l;
    if (!cfg_.telemetry_instance.empty()) {
      l.add("frontend", cfg_.telemetry_instance);
    }
    reg.gauge("lb.dispatch.forwarded", l).set(static_cast<double>(forwarded_));
    reg.gauge("lb.dispatch.rejected", l).set(static_cast<double>(rejected_));
    reg.gauge("lb.dispatch.failed_over", l)
        .set(static_cast<double>(failed_over_));
    reg.gauge("lb.dispatch.pending", l)
        .set(static_cast<double>(pending_.size()));
  });
}

void Dispatcher::add_backend(web::WebServer& server) {
  net::Connection& conn = fabric_->connect(*frontend_, server.node());
  backend_socks_.push_back(&conn.end_a());
  per_backend_.push_back(0);
  server.listen(conn.end_b());
  frontend_->spawn("disp-router" + std::to_string(backend_socks_.size()),
                   [this, sock = &conn.end_a()](os::SimThread& t) {
                     return router_body(t, sock);
                   });
}

void Dispatcher::enable_failover() {
  lb_->on_health_change([this](int backend, BackendHealth h) {
    if (h == BackendHealth::Dead) fail_pending_to(backend);
  });
}

std::size_t Dispatcher::fail_pending_to(int backend) {
  std::size_t failed = 0;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.backend != backend) {
      ++it;
      continue;
    }
    // Answer from the front end directly (no back-end involved). The
    // injected reply skips the forwarder thread's send cost: failover is
    // a control-plane action taken inside the poller, not a data-plane
    // hop worth modelling.
    web::Reply rej;
    rej.id = it->first;
    rej.rejected = true;
    net::Message m;
    m.bytes = 256;
    m.payload = rej;
    it->second.client->inject_tx(std::move(m));
    ++failed_over_;
    ++failed;
    it = pending_.erase(it);
  }
  return failed;
}

net::Socket& Dispatcher::add_client(os::Node& client_node) {
  net::Connection& conn = fabric_->connect(client_node, *frontend_);
  frontend_->spawn("disp-fwd" + std::to_string(pending_.size()),
                   [this, sock = &conn.end_b()](os::SimThread& t) {
                     return forwarder_body(t, sock);
                   });
  return conn.end_a();
}

os::Program Dispatcher::forwarder_body(os::SimThread& self,
                                       net::Socket* from_client) {
  for (;;) {
    net::Message m;
    co_await from_client->recv(self, m);
    web::Request req = std::any_cast<web::Request>(m.payload);
    co_await os::Compute{cfg_.dispatch_cpu};
    const int backend = lb_->pick();
    if (admission_ != nullptr &&
        !admission_->admit(lb_->index_of(backend))) {
      ++rejected_;
      web::Reply rej;
      rej.id = req.id;
      rej.query_class = req.query_class;
      rej.rejected = true;
      co_await from_client->send(self, 256, rej);
      continue;
    }
    pending_[req.id] = PendingEntry{from_client, backend};
    ++forwarded_;
    ++per_backend_[static_cast<std::size_t>(backend)];
    co_await backend_socks_[static_cast<std::size_t>(backend)]->send(
        self, req.request_bytes, req);
  }
}

os::Program Dispatcher::router_body(os::SimThread& self,
                                    net::Socket* from_backend) {
  for (;;) {
    net::Message m;
    co_await from_backend->recv(self, m);
    const web::Reply reply = std::any_cast<web::Reply>(m.payload);
    auto it = pending_.find(reply.id);
    if (it == pending_.end()) continue;  // duplicate/late/failed-over; drop
    net::Socket* to_client = it->second.client;
    pending_.erase(it);
    co_await to_client->send(self, m.bytes, reply);
  }
}

}  // namespace rdmamon::lb
