// A Ganglia-like distributed monitoring substrate (Section 5.2.2): gmond
// daemons on every node keep a metric store and gossip metric updates to
// their peers; gmetric injects arbitrary user metrics. The paper plugs its
// fine-grained monitoring schemes into gmetric — the scheme fetches a back
// end's load at a fine threshold and publishes it cluster-wide.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "monitor/monitor.hpp"
#include "monitor/scatter.hpp"
#include "net/fabric.hpp"
#include "net/socket.hpp"
#include "os/node.hpp"

namespace rdmamon::ganglia {

struct GangliaConfig {
  /// gmond's own coarse collection period (CPU/mem/... of its host).
  sim::Duration collect_period = sim::seconds(5);
  /// Size of one metric update packet on the wire.
  std::size_t metric_packet_bytes = 128;
};

struct MetricValue {
  double value = 0.0;
  sim::TimePoint updated{};
};

/// Metric update on the wire.
struct MetricPacket {
  std::string host;
  std::string name;
  double value = 0.0;
};

/// One gmond daemon: local metric store + gossip to peers. The collection
/// thread reads the host's /proc at collect_period and publishes the
/// default metrics (cpu, mem, net, procs).
class GmondDaemon {
 public:
  GmondDaemon(net::Fabric& fabric, os::Node& node, GangliaConfig cfg);

  GmondDaemon(const GmondDaemon&) = delete;
  GmondDaemon& operator=(const GmondDaemon&) = delete;

  /// Connects this daemon with a peer (bidirectional gossip).
  void peer_with(GmondDaemon& other);

  /// gmetric entry point: stores locally and enqueues gossip to every
  /// peer (the publishing thread pays the send costs).
  void publish(const std::string& name, double value);

  /// Looks up a metric by (host, name); nullptr if unknown.
  const MetricValue* lookup(const std::string& host,
                            const std::string& name) const;

  std::size_t metric_count() const { return store_.size(); }
  os::Node& node() { return *node_; }
  const std::string& host_name() const { return node_->config().name; }

 private:
  os::Program collect_body(os::SimThread& self);
  os::Program gossip_body(os::SimThread& self);
  os::Program peer_rx_body(os::SimThread& self, net::Socket* sock);
  void store(const std::string& host, const std::string& name, double value);

  net::Fabric* fabric_;
  os::Node* node_;
  GangliaConfig cfg_;
  std::map<std::pair<std::string, std::string>, MetricValue> store_;
  std::vector<net::Socket*> peers_;
  std::deque<MetricPacket> outbox_;
  os::WaitQueue outbox_wq_;
};

/// Builds a full-mesh gmond deployment over the given nodes.
class GangliaCluster {
 public:
  GangliaCluster(net::Fabric& fabric, std::vector<os::Node*> nodes,
                 GangliaConfig cfg = {});

  GmondDaemon& daemon(int idx) { return *daemons_[static_cast<std::size_t>(idx)]; }
  int size() const { return static_cast<int>(daemons_.size()); }

 private:
  std::vector<std::unique_ptr<GmondDaemon>> daemons_;
};

/// The paper's gmetric integration: a front-end agent fetches one back
/// end's load through a monitoring scheme every `threshold`, and publishes
/// it into Ganglia via the local gmond (at a capped publish rate so the
/// gossip fabric is not the bottleneck; the *fetch* path carries the
/// scheme's full fine-grained footprint).
class GmetricAgent {
 public:
  GmetricAgent(net::Fabric& fabric, GmondDaemon& local_gmond,
               os::Node& frontend, os::Node& backend,
               monitor::MonitorConfig mcfg, sim::Duration threshold,
               sim::Duration publish_period = sim::seconds(1));

  std::uint64_t fetches() const { return fetches_; }
  const std::string& metric_name() const { return metric_name_; }

 private:
  os::Program agent_body(os::SimThread& self);

  GmondDaemon* gmond_;
  std::unique_ptr<monitor::MonitorChannel> channel_;
  /// Single-target engine: the agent shares the issue/complete fetch path
  /// (and its timeout/retry semantics) with the scatter-mode balancer.
  monitor::ScatterFetcher scatter_;
  std::vector<monitor::MonitorSample> round_buf_;
  sim::Duration threshold_;
  sim::Duration publish_period_;
  std::string metric_name_;
  std::uint64_t fetches_ = 0;
};

}  // namespace rdmamon::ganglia
