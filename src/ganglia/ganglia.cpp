#include "ganglia/ganglia.hpp"

#include <any>

namespace rdmamon::ganglia {

GmondDaemon::GmondDaemon(net::Fabric& fabric, os::Node& node,
                         GangliaConfig cfg)
    : fabric_(&fabric), node_(&node), cfg_(cfg) {
  node_->spawn("gmond-collect",
               [this](os::SimThread& t) { return collect_body(t); });
  node_->spawn("gmond-gossip",
               [this](os::SimThread& t) { return gossip_body(t); });
}

void GmondDaemon::peer_with(GmondDaemon& other) {
  net::Connection& conn = fabric_->connect(*node_, *other.node_);
  peers_.push_back(&conn.end_a());
  other.peers_.push_back(&conn.end_b());
  node_->spawn("gmond-rx",
               [this, sock = &conn.end_a()](os::SimThread& t) {
                 return peer_rx_body(t, sock);
               });
  other.node_->spawn("gmond-rx",
                     [o = &other, sock = &conn.end_b()](os::SimThread& t) {
                       return o->peer_rx_body(t, sock);
                     });
}

void GmondDaemon::publish(const std::string& name, double value) {
  store(host_name(), name, value);
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    outbox_.push_back(MetricPacket{host_name(), name, value});
  }
  // Tag each queued packet with its destination by position: simpler to
  // keep (packet, peer) pairs aligned since we push one per peer in order.
  outbox_wq_.notify_one();
}

void GmondDaemon::store(const std::string& host, const std::string& name,
                        double value) {
  store_[{host, name}] = MetricValue{value, node_->simu().now()};
}

const MetricValue* GmondDaemon::lookup(const std::string& host,
                                       const std::string& name) const {
  auto it = store_.find({host, name});
  return it == store_.end() ? nullptr : &it->second;
}

os::Program GmondDaemon::collect_body(os::SimThread& self) {
  for (;;) {
    co_await os::SleepFor{cfg_.collect_period};
    co_await os::ComputeKernel{node_->procfs().read_cost()};
    const os::LoadSnapshot snap = node_->procfs().snapshot();
    publish("cpu_load", snap.cpu_load);
    publish("mem_load", snap.mem_load);
    publish("net_rate", snap.net_rate);
    publish("proc_run", snap.nr_running);
  }
  (void)self;
}

os::Program GmondDaemon::gossip_body(os::SimThread& self) {
  // Drains the outbox: packets were enqueued one per peer, in peer order.
  std::size_t next_peer = 0;
  for (;;) {
    while (outbox_.empty()) co_await os::WaitOn{&outbox_wq_};
    MetricPacket pkt = std::move(outbox_.front());
    outbox_.pop_front();
    if (!peers_.empty()) {
      net::Socket* peer = peers_[next_peer % peers_.size()];
      ++next_peer;
      co_await peer->send(self, cfg_.metric_packet_bytes, pkt);
    }
  }
}

os::Program GmondDaemon::peer_rx_body(os::SimThread& self,
                                      net::Socket* sock) {
  for (;;) {
    net::Message m;
    co_await sock->recv(self, m);
    const MetricPacket pkt = std::any_cast<MetricPacket>(m.payload);
    store(pkt.host, pkt.name, pkt.value);
  }
}

GangliaCluster::GangliaCluster(net::Fabric& fabric,
                               std::vector<os::Node*> nodes,
                               GangliaConfig cfg) {
  for (os::Node* n : nodes) {
    daemons_.push_back(std::make_unique<GmondDaemon>(fabric, *n, cfg));
  }
  for (std::size_t i = 0; i < daemons_.size(); ++i) {
    for (std::size_t j = i + 1; j < daemons_.size(); ++j) {
      daemons_[i]->peer_with(*daemons_[j]);
    }
  }
}

GmetricAgent::GmetricAgent(net::Fabric& fabric, GmondDaemon& local_gmond,
                           os::Node& frontend, os::Node& backend,
                           monitor::MonitorConfig mcfg,
                           sim::Duration threshold,
                           sim::Duration publish_period)
    : gmond_(&local_gmond), threshold_(threshold),
      publish_period_(publish_period),
      metric_name_("fg_load_" + backend.config().name) {
  channel_ = std::make_unique<monitor::MonitorChannel>(fabric, frontend,
                                                       backend, mcfg);
  scatter_.add(channel_->frontend());
  frontend.spawn("gmetric-agent",
                 [this](os::SimThread& t) { return agent_body(t); });
}

os::Program GmetricAgent::agent_body(os::SimThread& self) {
  sim::Simulation& simu = self.node().simu();
  sim::TimePoint last_publish{};
  for (;;) {
    co_await scatter_.round_all(self, round_buf_);
    const monitor::MonitorSample& s = round_buf_[0];
    ++fetches_;
    if (s.ok && simu.now() - last_publish >= publish_period_) {
      last_publish = simu.now();
      gmond_->publish(metric_name_, s.info.cpu_load);
    }
    co_await os::SleepFor{threshold_};
  }
}

}  // namespace rdmamon::ganglia
