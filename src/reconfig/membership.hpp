// Front-end group membership: the reconfiguration plane's answer to
// "who is polling what" when M front-ends share one cluster. Membership
// owns the consistent-hash ring (src/cluster/ring); front-end joins,
// graceful leaves, and observed deaths all flow through here, and every
// change notifies the subscribed front-end planes so ownership filters
// are recomputed before their next poll round.
//
// This object is the deterministic, in-simulation stand-in for the
// external coordination service (etcd/ZooKeeper) a production deployment
// would use: any front-end may report an unreachable peer, the removal
// is applied once (reports are idempotent), and all observers see the
// same ring because there IS one ring. Partition-tolerant consensus is
// explicitly out of scope — the paper's testbed and ours share a single
// non-partitioning switch.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/ring.hpp"

namespace rdmamon::reconfig {

class FrontendMembership {
 public:
  explicit FrontendMembership(cluster::RingConfig rc = {}) : ring_(rc) {}

  FrontendMembership(const FrontendMembership&) = delete;
  FrontendMembership& operator=(const FrontendMembership&) = delete;

  /// Adds front-end `id` (join or re-join after recovery). Idempotent;
  /// true if membership actually changed.
  bool join(int id, const std::string& reason = "join");

  /// Removes front-end `id` (graceful leave, or a peer reporting it
  /// unreachable/stale). Idempotent; true if membership changed.
  bool leave(int id, const std::string& reason = "leave");

  bool is_member(int id) const { return ring_.contains(id); }
  int members() const { return ring_.size(); }
  const cluster::HashRing& ring() const { return ring_; }
  int owner_of(int backend) const { return ring_.owner_of(backend); }
  std::uint64_t epoch() const { return ring_.epoch(); }

  /// Subscribes to every membership change. Callbacks run synchronously
  /// inside join()/leave() — i.e. inside whichever simulated thread
  /// reported the change — and must not mutate membership re-entrantly.
  void on_change(std::function<void()> cb) {
    callbacks_.push_back(std::move(cb));
  }

  /// One line per applied change ("join 2 (recovered)", ...), in
  /// application order — the run's membership trace, for tests and logs.
  const std::vector<std::string>& log() const { return log_; }

 private:
  void notify(const char* what, int id, const std::string& reason);

  cluster::HashRing ring_;
  std::vector<std::function<void()>> callbacks_;
  std::vector<std::string> log_;
};

}  // namespace rdmamon::reconfig
