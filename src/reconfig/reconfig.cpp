#include "reconfig/reconfig.hpp"

#include <any>
#include <cassert>
#include <limits>

#include "lb/balancer.hpp"

namespace rdmamon::reconfig {

RoleRegion::RoleRegion(net::Fabric& fabric, os::Node& node, Role initial)
    : node_(&node), role_(initial) {
  key_ = fabric.nic(node.id).register_mr(
      sizeof(int), [this] { return std::any(static_cast<int>(role_)); },
      /*remote_writable=*/true, [this](const std::any& v) {
        const Role next = static_cast<Role>(std::any_cast<int>(v));
        if (next != role_) {
          role_ = next;
          if (on_change_) on_change_(role_);
        }
      });
}

ReconfigManager::ReconfigManager(net::Fabric& fabric, os::Node& frontend,
                                 ReconfigConfig cfg)
    : fabric_(&fabric), frontend_(&frontend), cfg_(cfg) {}

void ReconfigManager::add_backend(RoleRegion& region) {
  regions_.push_back(&region);
  channels_.push_back(std::make_unique<monitor::MonitorChannel>(
      *fabric_, *frontend_, region.node(), cfg_.monitor));
  samples_.emplace_back();
  fail_streak_.push_back(0);
}

int ReconfigManager::dead_nodes() const {
  int n = 0;
  for (std::size_t i = 0; i < fail_streak_.size(); ++i) {
    if (believed_dead(static_cast<int>(i))) ++n;
  }
  return n;
}

void ReconfigManager::start() {
  for (auto& ch : channels_) scatter_.add(ch->frontend());
  frontend_->spawn("reconfig-mgr",
                   [this](os::SimThread& t) { return manager_body(t); });
}

int ReconfigManager::nodes_in(Role r) const {
  int n = 0;
  for (const auto* reg : regions_) {
    if (reg->role() == r) ++n;
  }
  return n;
}

double ReconfigManager::pool_load(Role r) const {
  double sum = 0;
  int n = 0;
  lb::WeightConfig w;
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i]->role() != r) continue;
    if (!samples_[i].ok) continue;
    sum += lb::load_index(samples_[i].info, w);
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

os::Program ReconfigManager::manager_body(os::SimThread& self) {
  sim::Simulation& simu = self.node().simu();
  for (;;) {
    // Refresh every back end's load through the configured scheme — one
    // scatter round, so a dead back end costs a fetch_timeout once per
    // round instead of stalling the sweep. A back end failing dead_after
    // fetches in a row loses its vote: its stale load no longer weighs on
    // pool decisions and it cannot be picked for a role flip until it
    // answers again.
    co_await scatter_.round_all(self, round_buf_);
    for (std::size_t i = 0; i < channels_.size(); ++i) {
      const monitor::MonitorSample& s = round_buf_[i];
      if (s.ok) {
        samples_[i] = s;
        fail_streak_[i] = 0;
      } else {
        ++fetch_failures_;
        ++fail_streak_[i];
        if (fail_streak_[i] >= cfg_.dead_after) samples_[i].ok = false;
      }
    }

    const double load_a = pool_load(Role::ServiceA);
    const double load_b = pool_load(Role::ServiceB);
    const double gap = load_a - load_b;
    const bool cooled =
        (simu.now() - last_reconfig_) >= cfg_.cooldown;
    if (cooled && std::abs(gap) >= cfg_.imbalance_threshold) {
      const Role cool = gap > 0 ? Role::ServiceB : Role::ServiceA;
      const Role hot = gap > 0 ? Role::ServiceA : Role::ServiceB;
      if (nodes_in(cool) > cfg_.min_nodes_per_service) {
        // Move the least-loaded node of the cool pool to the hot pool.
        lb::WeightConfig w;
        int pick = -1;
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < regions_.size(); ++i) {
          if (regions_[i]->role() != cool || !samples_[i].ok) continue;
          const double idx = lb::load_index(samples_[i].info, w);
          if (idx < best) {
            best = idx;
            pick = static_cast<int>(i);
          }
        }
        if (pick >= 0) {
          // One-sided role flip: an RDMA WRITE into the back end's
          // registered role word. No back-end thread is involved.
          net::QueuePair qp(
              fabric_->nic(frontend_->id),
              regions_[static_cast<std::size_t>(pick)]->node().id, cq_);
          net::Completion c;
          co_await net::rdma_write_sync(
              self, qp, regions_[static_cast<std::size_t>(pick)]->mr_key(),
              std::any(static_cast<int>(hot)), sizeof(int), c);
          if (c.status == net::WcStatus::Success) {
            ++reconfigs_;
            last_reconfig_ = simu.now();
          }
        }
      }
    }
    co_await os::SleepFor{cfg_.check_period};
  }
}

}  // namespace rdmamon::reconfig
