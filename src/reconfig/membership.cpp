#include "reconfig/membership.hpp"

namespace rdmamon::reconfig {

bool FrontendMembership::join(int id, const std::string& reason) {
  if (!ring_.add(id)) return false;
  notify("join", id, reason);
  return true;
}

bool FrontendMembership::leave(int id, const std::string& reason) {
  if (!ring_.remove(id)) return false;
  notify("leave", id, reason);
  return true;
}

void FrontendMembership::notify(const char* what, int id,
                                const std::string& reason) {
  log_.push_back(std::string(what) + " " + std::to_string(id) + " (" +
                 reason + ")");
  for (const auto& cb : callbacks_) cb();
}

}  // namespace rdmamon::reconfig
