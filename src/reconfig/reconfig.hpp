// Dynamic reconfiguration of a shared data-center — the paper's stated
// future work ("we plan to extend the knowledge gained in this study to
// implement a full-fledged reconfiguration module coupled with accurate
// resource monitoring", Section 7; built the way the authors' companion
// work [9] uses remote memory operations).
//
// A cluster hosts two services; each back end carries a *role* word
// registered as a remote-writable memory region. A reconfiguration
// manager on the front end watches both service pools through a
// monitoring scheme and, when the load gap crosses a threshold, flips an
// idle-ish node's role with a one-sided RDMA WRITE — no back-end daemon,
// no interrupt, exactly like the monitoring path itself.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "monitor/monitor.hpp"
#include "monitor/scatter.hpp"
#include "net/fabric.hpp"
#include "net/nic.hpp"
#include "net/verbs.hpp"
#include "os/node.hpp"

namespace rdmamon::reconfig {

/// Which hosted service a back end currently works for.
enum class Role : int { ServiceA = 0, ServiceB = 1 };

inline const char* to_string(Role r) {
  return r == Role::ServiceA ? "A" : "B";
}

/// Back-end side: the role word, registered remote-writable so the
/// manager can flip it with a one-sided WRITE. Local readers (the
/// dispatcher's routing table refresh, the server app) see it instantly.
class RoleRegion {
 public:
  RoleRegion(net::Fabric& fabric, os::Node& node, Role initial);

  Role role() const { return role_; }
  net::MrKey mr_key() const { return key_; }
  os::Node& node() { return *node_; }

  /// Observer invoked on every remote role change (e.g. to drain queues).
  void on_change(std::function<void(Role)> cb) { on_change_ = std::move(cb); }

 private:
  os::Node* node_;
  Role role_;
  net::MrKey key_;
  std::function<void(Role)> on_change_;
};

struct ReconfigConfig {
  monitor::MonitorConfig monitor{};         ///< scheme used for pool load
  sim::Duration check_period = sim::msec(100);
  /// Reassign a node when |loadA - loadB| exceeds this.
  double imbalance_threshold = 0.25;
  /// Minimum time between two reconfigurations (hysteresis).
  sim::Duration cooldown = sim::msec(500);
  /// Keep at least this many nodes in each service.
  int min_nodes_per_service = 1;
  /// Consecutive fetch failures before a back end is treated as dead:
  /// its last-known load stops counting toward pool loads and it is
  /// never picked for a role flip (failover).
  int dead_after = 3;
};

/// Front-end manager: monitors every back end, computes per-service mean
/// load, and migrates the least-loaded node of the hot service's
/// counterpart... i.e. moves a node from the cool pool to the hot pool.
class ReconfigManager {
 public:
  ReconfigManager(net::Fabric& fabric, os::Node& frontend,
                  ReconfigConfig cfg);

  /// Registers a back end with its role region. Call before start().
  void add_backend(RoleRegion& region);

  /// Spawns the manager thread.
  void start();

  /// Current role of backend i, as the manager believes it to be.
  Role role_of(int i) const {
    return regions_[static_cast<std::size_t>(i)]->role();
  }
  int nodes_in(Role r) const;
  std::uint64_t reconfigurations() const { return reconfigs_; }
  double pool_load(Role r) const;

  /// Failure visibility: monitoring fetches that came back failed, and
  /// how many back ends the manager currently believes dead.
  std::uint64_t fetch_failures() const { return fetch_failures_; }
  bool believed_dead(int i) const {
    return fail_streak_[static_cast<std::size_t>(i)] >= cfg_.dead_after;
  }
  int dead_nodes() const;

 private:
  os::Program manager_body(os::SimThread& self);

  net::Fabric* fabric_;
  os::Node* frontend_;
  ReconfigConfig cfg_;
  std::vector<RoleRegion*> regions_;
  std::vector<std::unique_ptr<monitor::MonitorChannel>> channels_;
  std::vector<monitor::MonitorSample> samples_;
  std::vector<int> fail_streak_;
  monitor::ScatterFetcher scatter_;  ///< joined at start()
  std::vector<monitor::MonitorSample> round_buf_;
  /// Separate CQ for the one-sided role-flip WRITEs: those use the plain
  /// blocking pop path and must not interleave with the scatter engine's
  /// wr_id-demuxed monitoring completions.
  net::CompletionQueue cq_;
  std::uint64_t reconfigs_ = 0;
  std::uint64_t fetch_failures_ = 0;
  sim::TimePoint last_reconfig_{};
};

}  // namespace rdmamon::reconfig
