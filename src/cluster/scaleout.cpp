#include "cluster/scaleout.hpp"

#include <algorithm>
#include <any>
#include <cassert>

namespace rdmamon::cluster {

FrontendPlane::FrontendPlane(ScaleOutPlane& plane, os::Node& node, int id,
                             lb::WeightConfig weights)
    : plane_(&plane), node_(&node), id_(id), lb_(weights) {}

void FrontendPlane::leave(const std::string& reason) {
  wants_membership_ = false;
  plane_->membership().leave(id_, reason);
}

void FrontendPlane::rejoin(const std::string& reason) {
  wants_membership_ = true;
  plane_->membership().join(id_, reason);
}

void FrontendPlane::stall() {
  if (lb_.poller_thread() != nullptr) node_->sched().kill(lb_.poller_thread());
  if (gossip_thread_ != nullptr) node_->sched().kill(gossip_thread_);
}

int FrontendPlane::owned_count() const {
  int n = 0;
  for (int b = 0; b < plane_->backend_count(); ++b) {
    if (plane_->membership().owner_of(b) == id_) ++n;
  }
  return n;
}

sim::Duration FrontendPlane::max_peer_view_age() const {
  const sim::TimePoint now = node_->simu().now();
  sim::Duration worst{0};
  for (int b = 0; b < plane_->backend_count(); ++b) {
    if (plane_->membership().owner_of(b) == id_) continue;
    const sim::Duration age = now - last_seen_[static_cast<std::size_t>(b)];
    if (age.ns > worst.ns) worst = age;
  }
  return worst;
}

void FrontendPlane::wire(sim::Duration granularity) {
  const int n = plane_->backend_count();
  const sim::TimePoint now = node_->simu().now();
  view_.frontend = id_;
  view_.entries.resize(static_cast<std::size_t>(n));
  polls_.assign(static_cast<std::size_t>(n), 0);
  last_seen_.assign(static_cast<std::size_t>(n), now);
  last_strike_.assign(static_cast<std::size_t>(n), now);
  owned_by_.assign(static_cast<std::size_t>(n), -1);
  last_round_end_ = now;
  last_local_ok_ = now;

  // One channel per back end against the SHARED BackendMonitor: the
  // back end runs one daemon set however many front ends watch it.
  // With verbs.shared_contexts > 0 the channels multiplex over a small
  // DCT-style context pool (round-robin) instead of holding N dedicated
  // NIC contexts each — the footprint a bounded QPC cache can hold.
  const std::vector<std::shared_ptr<net::QpContext>> pool =
      net::make_context_pool(plane_->fabric().nic(node_->id),
                             plane_->config().verbs);
  for (int b = 0; b < n; ++b) {
    std::shared_ptr<net::QpContext> ctx =
        pool.empty() ? nullptr : pool[static_cast<std::size_t>(b) % pool.size()];
    lb_.add_backend(std::make_unique<monitor::MonitorChannel>(
        plane_->fabric(), *node_, plane_->backend_monitor(b),
        std::move(ctx)));
  }
  lb_.set_verbs_tuning(plane_->config().verbs);
  lb_.set_telemetry_instance(node_->name());
  lb_.set_poll_filter([this](std::size_t b) {
    return plane_->membership().owner_of(static_cast<int>(b)) == id_;
  });
  if (plane_->push_enabled()) {
    // One inbox slot per back end, addressed by back-end index — every
    // front end registers the full N slots so a shard can migrate to it
    // without re-registration, only publisher retargeting.
    inbox_ = std::make_unique<monitor::PushInbox>(
        plane_->fabric(), *node_, n, plane_->config().publisher.slot_bytes);
    lb_.enable_push(*inbox_, plane_->config().push);
    lb_.on_mode_change([this](std::size_t b, monitor::FetchMode m) {
      plane_->on_owner_mode(static_cast<int>(b), id_, m);
    });
  }
  lb_.on_round(
      [this](const std::vector<std::size_t>& targets) { on_round(targets); });

  // The published view: a registered region whose reader callback
  // samples view_ at the DMA service instant — TelemetrySelfMonitor's
  // publish pattern with the shard view as payload. No publisher thread
  // is needed because on_round() refreshes view_ in place; a host whose
  // poller stalls stops refreshing while its NIC keeps serving, which
  // is exactly the stale-view signal peers key on.
  view_mr_ = plane_->fabric().nic(node_->id).register_mr(
      plane_->config().view_bytes, [this] { return std::any(view_); });

  // One QP per peer front end, completing into our own gossip CQ.
  peer_qps_.resize(static_cast<std::size_t>(plane_->frontend_count()));
  peer_fail_.assign(static_cast<std::size_t>(plane_->frontend_count()), 0);
  for (int p = 0; p < plane_->frontend_count(); ++p) {
    if (p == id_) continue;
    peer_qps_[static_cast<std::size_t>(p)] = std::make_unique<net::QueuePair>(
        plane_->fabric().nic(node_->id), plane_->frontend(p).node().id,
        gossip_cq_);
  }

  // Baseline ownership snapshot (membership was bootstrapped already).
  for (int b = 0; b < n; ++b) {
    owned_by_[static_cast<std::size_t>(b)] = plane_->membership().owner_of(b);
  }
  view_.membership_epoch = plane_->membership().epoch();

  reg_ = telemetry::Registry::of(node_->simu());
  if (reg_ != nullptr) {
    const telemetry::Labels by_fe{{"frontend", node_->name()}};
    auto read_counter = [&](const char* result) -> telemetry::Counter& {
      telemetry::Labels l = by_fe;
      l.add("result", result);
      return reg_->counter("cluster.gossip.reads", l);
    };
    m_gossip_ok_ = &read_counter("ok");
    m_gossip_fail_ = &read_counter("failed");
    m_stale_ = &reg_->counter("cluster.stale_marks", by_fe);
    m_evict_ = &reg_->counter("cluster.evictions", by_fe);
    collector_.bind(node_->simu(), [this](telemetry::Registry& reg) {
      const telemetry::Labels l{{"frontend", node_->name()}};
      reg.gauge("cluster.ring.owned", l)
          .set(static_cast<double>(owned_count()));
      reg.gauge("cluster.peer_view.age_ns", l)
          .set(static_cast<double>(max_peer_view_age().ns));
      reg.gauge("cluster.membership.epoch", l)
          .set(static_cast<double>(plane_->membership().epoch()));
    });
    fr_ = reg_->recorder().ring("gossip." + node_->name(), 256);
    slo_ = reg_->slo();
    if (slo_ != nullptr) {
      s_peer_age_ = slo_->find("cluster.peer_view_age");
    }
  }

  lb_.start(*node_, granularity);
  gossip_thread_ = node_->spawn(
      "gossip", [this](os::SimThread& t) { return gossip_body(t); });
}

void FrontendPlane::on_round(const std::vector<std::size_t>& targets) {
  const sim::TimePoint now = node_->simu().now();
  for (std::size_t i : targets) {
    ++polls_[i];
    ViewEntry& e = view_.entries[i];
    e.sample = lb_.last_sample(static_cast<int>(i));
    e.health = lb_.health_of(static_cast<int>(i));
    e.sampled_at = now;
    e.valid = true;
    last_seen_[i] = now;
    last_strike_[i] = now;
    // A sample retrieved since the previous round ended is proof this
    // round reached its back end — the connectivity signal the
    // self-isolation guard keys on.
    if (e.sample.ok && e.sample.retrieved_at > last_round_end_) {
      last_local_ok_ = now;
    }
  }
  last_round_end_ = now;
  view_.round += 1;
  view_.published_at = now;
  view_.membership_epoch = plane_->membership().epoch();
}

void FrontendPlane::on_membership_change() {
  for (int b = 0; b < plane_->backend_count(); ++b) {
    const std::size_t i = static_cast<std::size_t>(b);
    const int owner = plane_->membership().owner_of(b);
    if (owner == id_ && owned_by_[i] != id_) {
      // Shard takeover: start with a clean failure detector so the
      // dead-probe cadence cannot throttle the first takeover polls,
      // and restart the staleness clock (we are about to poll it).
      lb_.reset_health(i);
      last_strike_[i] = node_->simu().now();
      ++takeovers_;
    }
    if (owner != id_ && owned_by_[i] == id_) {
      view_.entries[i].valid = false;  // stop vouching for a lost shard
    }
    owned_by_[i] = owner;
  }
  view_.membership_epoch = plane_->membership().epoch();
}

bool FrontendPlane::may_evict() const {
  // Evicting a peer is trustworthy only while our own shard polls are
  // landing: if nothing is reachable, WE are the isolated one. The
  // evidence must be fresher than the gossip detection window
  // ((peer_dead_after - 1) periods): a front end whose own network just
  // died must lose eviction rights BEFORE its failure streak against an
  // innocent peer can mature, else two partitioned front ends at M=2
  // evict each other (split-brain). An empty shard (possible but
  // vanishingly rare with 64 vnodes) has no local signal, so it is
  // allowed to report — someone must, and a partitioned empty-shard
  // front end can do no harm to polling anyway.
  if (owned_count() == 0) return true;
  const ScaleOutConfig& cfg = plane_->config();
  const std::int64_t guard =
      std::min((cfg.peer_dead_after - 1) * cfg.gossip_period.ns,
               cfg.staleness_bound.ns);
  const sim::Duration since = node_->simu().now() - last_local_ok_;
  return since.ns < guard;
}

void FrontendPlane::process_view(const ShardView& v) {
  reconfig::FrontendMembership& mem = plane_->membership();
  for (std::size_t i = 0; i < v.entries.size() && i < last_seen_.size();
       ++i) {
    const ViewEntry& e = v.entries[i];
    if (!e.valid) continue;
    if (mem.owner_of(static_cast<int>(i)) == id_) continue;  // ours: local wins
    if (e.sampled_at.ns <= last_seen_[i].ns) continue;  // already ingested
    last_seen_[i] = e.sampled_at;
    last_strike_[i] = e.sampled_at;
    if (e.health == lb::BackendHealth::Healthy && e.sample.ok) {
      lb_.ingest_peer_sample(i, e.sample);
    } else {
      // The owner observed failures; mirror one strike per fresh view so
      // our detector converges toward the owner's verdict.
      lb_.note_stale(i);
    }
  }
}

os::Program FrontendPlane::gossip_body(os::SimThread& self) {
  const ScaleOutConfig& cfg = plane_->config();
  sim::Simulation& simu = node_->simu();
  for (;;) {
    co_await os::SleepFor{cfg.gossip_period};
    reconfig::FrontendMembership& mem = plane_->membership();
    // Snapshot: eviction below mutates the member list mid-loop.
    const std::vector<int> members = mem.ring().members();
    for (int peer : members) {
      if (peer == id_ || !mem.is_member(peer)) continue;
      FrontendPlane& fp = plane_->frontend(peer);
      net::QueuePair& qp = *peer_qps_[static_cast<std::size_t>(peer)];
      net::Completion c;
      bool completed = false;
      co_await net::rdma_read_sync_until(
          self, qp, fp.view_mr_key(), cfg.view_bytes,
          gossip_cq_.alloc_wr_id(), simu.now() + cfg.read_timeout, c,
          completed);
      const bool read_ok =
          completed && c.status == net::WcStatus::Success;
      bool fresh = false;
      if (read_ok) {
        const auto v = std::any_cast<ShardView>(c.data);
        ++gossip_ok_;
        telemetry::add(m_gossip_ok_);
        process_view(v);
        // A crashed host fails the READ outright; a host whose poller
        // stalled keeps DMA-serving a view whose published_at no
        // longer advances.
        const sim::Duration view_age = simu.now() - v.published_at;
        fresh = view_age.ns <= cfg.staleness_bound.ns;
        // Lineage: the peer view's age at the gossip consume instant —
        // the SLO stream the "gossip peer-view age" target watches.
        if (slo_ != nullptr && s_peer_age_ != nullptr) {
          slo_->observe(s_peer_age_, static_cast<double>(view_age.ns));
        }
        if (wants_membership_ && !mem.is_member(id_)) {
          // We were evicted (crash, freeze, or partition) but can read
          // members again: rejoin and take our shard back.
          ++rejoins_;
          mem.join(id_, "recovered");
          telemetry::span_event(reg_, "cluster", "membership",
                                node_->name() + ": rejoined");
          telemetry::fr_record(fr_, "rejoin", id_);
        }
      } else {
        ++gossip_fail_;
        telemetry::add(m_gossip_fail_);
      }
      std::size_t pi = static_cast<std::size_t>(peer);
      peer_fail_[pi] = fresh ? 0 : peer_fail_[pi] + 1;
      if (peer_fail_[pi] >= cfg.peer_dead_after && may_evict() &&
          mem.is_member(id_)) {
        peer_fail_[pi] = 0;
        ++evictions_;
        telemetry::add(m_evict_);
        telemetry::fr_record(fr_, "evict", peer, read_ok ? 1 : 0);
        telemetry::span_event(
            reg_, "cluster", "membership",
            node_->name() + ": evicting " + fp.node().name() +
                (read_ok ? " (stale view)" : " (unreachable)"));
        mem.leave(peer, read_ok ? "stale view" : "unreachable");
      }
    }
    // Staleness sweep over foreign shards: a back end nobody has shown
    // us recently takes one strike per bound elapsed — the "no back end
    // unmonitored past the bound" guarantee's enforcement point.
    const sim::TimePoint now = simu.now();
    for (std::size_t i = 0; i < last_seen_.size(); ++i) {
      if (mem.owner_of(static_cast<int>(i)) == id_) continue;
      const sim::TimePoint basis =
          last_strike_[i].ns > last_seen_[i].ns ? last_strike_[i]
                                                : last_seen_[i];
      if ((now - basis).ns > cfg.staleness_bound.ns) {
        last_strike_[i] = now;
        ++stale_marks_;
        telemetry::add(m_stale_);
        telemetry::fr_record(fr_, "stale-mark", static_cast<std::int64_t>(i));
        lb_.note_stale(i);
      }
    }
  }
}

ScaleOutPlane::ScaleOutPlane(net::Fabric& fabric, ScaleOutConfig cfg,
                             monitor::MonitorConfig mcfg)
    : fabric_(&fabric), cfg_(cfg), mcfg_(mcfg), membership_(cfg.ring) {}

ScaleOutPlane::~ScaleOutPlane() = default;

int ScaleOutPlane::add_backend(os::Node& node) {
  assert(!started_ && "add_backend before start()");
  backend_monitors_.push_back(
      std::make_unique<monitor::BackendMonitor>(*fabric_, node, mcfg_));
  return static_cast<int>(backend_monitors_.size()) - 1;
}

FrontendPlane& ScaleOutPlane::add_frontend(os::Node& node,
                                           lb::WeightConfig weights) {
  assert(!started_ && "add_frontend before start()");
  const int id = static_cast<int>(frontends_.size());
  frontends_.push_back(
      std::make_unique<FrontendPlane>(*this, node, id, weights));
  return *frontends_.back();
}

void ScaleOutPlane::start(sim::Duration granularity) {
  assert(!started_ && "start() is one-shot");
  started_ = true;
  // Bootstrap joins happen before the change subscription: initial
  // membership is setup, not churn.
  for (auto& fp : frontends_) membership_.join(fp->id(), "bootstrap");
  membership_.on_change([this] {
    for (auto& fp : frontends_) fp->on_membership_change();
    // Publishers chase ring ownership: a shard's new owner starts
    // receiving its back ends' pushes from their next trigger on.
    retarget_publishers();
  });
  for (auto& fp : frontends_) fp->wire(granularity);
  if (push_enabled()) {
    for (auto& bm : backend_monitors_) {
      publishers_.push_back(std::make_unique<monitor::PushPublisher>(
          *fabric_, bm->node(), cfg_.publisher));
    }
    retarget_publishers();
    for (auto& p : publishers_) p->start();
  }
}

void ScaleOutPlane::on_owner_mode(int b, int frontend_id,
                                  monitor::FetchMode m) {
  if (static_cast<std::size_t>(b) >= publishers_.size()) return;
  if (membership_.owner_of(b) != frontend_id) return;  // not the owner: stale
  if (m == monitor::FetchMode::Pull) {
    publishers_[static_cast<std::size_t>(b)]->pause();
  } else {
    publishers_[static_cast<std::size_t>(b)]->resume();
  }
}

void ScaleOutPlane::retarget_publishers() {
  for (std::size_t b = 0; b < publishers_.size(); ++b) {
    const int owner = membership_.owner_of(static_cast<int>(b));
    if (owner < 0) continue;  // empty ring: publishers keep the old aim
    FrontendPlane& fp = frontend(owner);
    if (fp.inbox_ == nullptr) continue;
    publishers_[b]->target(fp.node().id, fp.inbox_->mr_key(),
                           static_cast<int>(b));
    // The new owner's current mode decides whether the publisher runs.
    if (fp.lb_.fetch_mode(b) == monitor::FetchMode::Pull) {
      publishers_[b]->pause();
    } else {
      publishers_[b]->resume();
    }
  }
}

}  // namespace rdmamon::cluster
