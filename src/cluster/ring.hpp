// Consistent-hash ring partitioning polling responsibility across M
// front-ends. Each member contributes `vnodes` points on a 64-bit ring;
// a backend is owned by the member whose point follows the backend's key
// clockwise. The classic guarantees hold and are pinned by property
// tests (tests/ring_test.cpp):
//
//  - partition: every backend is owned by exactly one live member;
//  - spread: with enough virtual nodes, shard sizes stay within a small
//    factor of N/M;
//  - minimal churn: adding/removing one member moves only the O(N/M)
//    keys adjacent to that member's points — everything else keeps its
//    owner, so a front-end join/leave re-homes one shard, not the world.
//
// Everything is a pure function of (salt, vnodes, membership): no RNG,
// no clock, so two rings built by different front-ends from the same
// membership agree on every owner — the property the scale-out plane's
// "each backend polled by exactly one owner" claim rests on.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace rdmamon::cluster {

struct RingConfig {
  /// Virtual nodes per member. More vnodes = better spread, larger
  /// (still tiny) ring; 64 keeps max shard within ~1.5x of N/M for the
  /// cluster sizes we sweep.
  int vnodes = 64;
  /// Hash-stream salt: lets disjoint rings in one process disagree.
  std::uint64_t salt = 0x7c5f3a1e9b4d2c81ull;
};

class HashRing {
 public:
  explicit HashRing(RingConfig cfg = {}) : cfg_(cfg) {}

  /// Adds a member; false (and no change) if already present.
  bool add(int member);
  /// Removes a member; false (and no change) if absent.
  bool remove(int member);
  bool contains(int member) const;

  int size() const { return static_cast<int>(members_.size()); }
  bool empty() const { return members_.empty(); }
  /// Ascending member ids.
  const std::vector<int>& members() const { return members_; }

  /// Owner of backend `backend_id`; -1 on an empty ring.
  int owner_of(int backend_id) const;
  /// Owner of an arbitrary pre-hashed key; -1 on an empty ring.
  int owner_of_key(std::uint64_t key) const;

  /// Bumped on every successful add/remove (a cheap membership version).
  std::uint64_t epoch() const { return epoch_; }

  /// splitmix64 finalizer: the ring's avalanche primitive, exposed so
  /// callers hashing their own keys share the distribution.
  static std::uint64_t mix64(std::uint64_t x);

  const RingConfig& config() const { return cfg_; }

 private:
  std::uint64_t point_hash(int member, int replica) const;

  RingConfig cfg_;
  /// Sorted (point hash, member): the ring itself.
  std::vector<std::pair<std::uint64_t, int>> points_;
  std::vector<int> members_;  ///< sorted
  std::uint64_t epoch_ = 0;
};

}  // namespace rdmamon::cluster
