#include "cluster/ring.hpp"

#include <algorithm>

namespace rdmamon::cluster {

std::uint64_t HashRing::mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t HashRing::point_hash(int member, int replica) const {
  // Two mixing rounds decorrelate (member, replica) lattices; the salt
  // keeps independent rings from sharing point layouts.
  const std::uint64_t m = static_cast<std::uint64_t>(member) + 1;
  const std::uint64_t r = static_cast<std::uint64_t>(replica);
  return mix64(cfg_.salt ^ mix64(m * 0x100000001b3ull + r));
}

bool HashRing::add(int member) {
  if (contains(member)) return false;
  members_.insert(std::lower_bound(members_.begin(), members_.end(), member),
                  member);
  for (int r = 0; r < cfg_.vnodes; ++r) {
    const std::pair<std::uint64_t, int> pt{point_hash(member, r), member};
    points_.insert(std::lower_bound(points_.begin(), points_.end(), pt), pt);
  }
  ++epoch_;
  return true;
}

bool HashRing::remove(int member) {
  const auto it = std::lower_bound(members_.begin(), members_.end(), member);
  if (it == members_.end() || *it != member) return false;
  members_.erase(it);
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [member](const auto& p) {
                                 return p.second == member;
                               }),
                points_.end());
  ++epoch_;
  return true;
}

bool HashRing::contains(int member) const {
  return std::binary_search(members_.begin(), members_.end(), member);
}

int HashRing::owner_of(int backend_id) const {
  return owner_of_key(
      mix64(cfg_.salt ^ (static_cast<std::uint64_t>(backend_id) + 0x51ed2701ull)));
}

int HashRing::owner_of_key(std::uint64_t key) const {
  if (points_.empty()) return -1;
  // First point at or after the key, wrapping to the ring's start. The
  // pair comparison is (hash, member): equal hashes (vanishingly rare)
  // tie-break by member id, identically on every ring replica.
  const auto it = std::lower_bound(points_.begin(), points_.end(),
                                   std::pair<std::uint64_t, int>{key, -1});
  return it == points_.end() ? points_.front().second : it->second;
}

}  // namespace rdmamon::cluster
