// Multi-front-end scale-out plane: M LoadBalancer front-ends share one
// back-end set. Polling responsibility is partitioned by the consistent
// hash ring (cluster/ring) through reconfig::FrontendMembership, so each
// back end is polled by exactly ONE owner; every front end still sees
// all N back ends because each owner publishes its shard's load view
// into a registered MR that peers RDMA-READ one-sided — the same
// publish pattern as monitor::TelemetrySelfMonitor, with a ShardView as
// the "load information". The gossip READs cost the publisher no CPU,
// so the view stays readable even off a saturated or frozen owner.
//
// Failure handling composes three existing mechanisms:
//  - a peer whose view READs error-complete (crashed host) or whose
//    published_at stops advancing (a stalled publisher whose NIC still
//    DMA-serves the last content) accrues a fail streak and is evicted
//    from the ring via membership.leave — every survivor's ownership
//    filter is recomputed before its next poll round. Note the fault
//    model: inject_freeze parks inbound SOCKET packets only, while
//    one-sided ops bypass the host CPU at both ends — a frozen front
//    end keeps monitoring unimpaired under the RDMA schemes (the
//    paper's core claim), so "the owner died" means inject_crash;
//  - a peer-view entry older than the staleness bound counts a strike
//    against that BACK END through LoadBalancer::note_stale, feeding
//    the existing HealthConfig Suspect/Dead thresholds;
//  - a front end that takes over a shard resets the detector of its new
//    back ends (LoadBalancer::reset_health) so dead-probe throttling
//    cannot delay the takeover polls.
//
// Self-isolation guard: a front end only evicts peers while its OWN
// shard polls are succeeding (or it owns nothing) — if everything looks
// dead, the sane conclusion is that WE are the partitioned one, so we
// hold our tongue until connectivity proves otherwise. A front end that
// finds itself evicted rejoins on its first successful peer read.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/ring.hpp"
#include "lb/balancer.hpp"
#include "monitor/monitor.hpp"
#include "net/fabric.hpp"
#include "net/verbs.hpp"
#include "os/node.hpp"
#include "reconfig/membership.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/slo.hpp"

namespace rdmamon::cluster {

/// One back end's entry in a front end's published shard view.
struct ViewEntry {
  monitor::MonitorSample sample;  ///< owner's last good sample
  lb::BackendHealth health = lb::BackendHealth::Healthy;
  sim::TimePoint sampled_at{};  ///< when the owner last polled it
  bool valid = false;           ///< covered by the publisher's shard
};

/// What one front end publishes through its registered view MR. Peers
/// sample it at the DMA instant (MemoryRegion reader callback), so a
/// publisher whose poller has stalled keeps serving its last content —
/// published_at stops advancing, which is what peers key on.
struct ShardView {
  int frontend = -1;
  std::uint64_t round = 0;  ///< poll rounds folded into this view
  std::uint64_t membership_epoch = 0;
  sim::TimePoint published_at{};
  std::vector<ViewEntry> entries;  ///< size N; valid marks owned ones
};

/// PushPollConfig whose strategy is Pull (enable_push's own default is
/// Push, which is right for direct users but not for the plane default).
inline lb::PushPollConfig pull_only_push_config() {
  lb::PushPollConfig p;
  p.strategy = monitor::MonitorStrategy::Pull;
  return p;
}

struct ScaleOutConfig {
  /// Gossip period: each front end READs every peer's view this often.
  sim::Duration gossip_period = sim::msec(25);
  /// Deadline of one peer-view READ.
  sim::Duration read_timeout = sim::msec(10);
  /// A non-owned back end unseen for longer than this takes a staleness
  /// strike per bound elapsed; a peer whose published view is older than
  /// this counts as failed even when the READ itself succeeds.
  sim::Duration staleness_bound = sim::msec(200);
  /// Consecutive failed/stale view reads before a peer is evicted.
  /// (peer_dead_after - 1) * gossip_period is also the freshness an
  /// evictor's own-shard evidence must show (FrontendPlane::may_evict);
  /// keep the balancer's poll round shorter than that window or no
  /// front end can ever evict.
  int peer_dead_after = 3;
  /// Wire size of the view region (charged per gossip READ).
  std::size_t view_bytes = 4096;
  RingConfig ring;

  /// Verbs-layer tuning applied to every front end's monitoring channels
  /// and scatter CQ: signal-every-k, inflight windows, DCT-style shared
  /// contexts, CQ notification moderation (net::VerbsTuning). Defaults
  /// reproduce the historical one-context-per-channel, signal-everything
  /// behaviour byte-for-byte.
  net::VerbsTuning verbs;

  /// Refresh strategy (monitor/inbox.hpp). The default Pull keeps the
  /// plane on classic polling — no inboxes, no publishers, behaviour
  /// byte-identical to before push existed. Push/Adaptive gives every
  /// front end an N-slot inbox and every back end one publisher aimed at
  /// its CURRENT ring owner's inbox (slot index = back-end index).
  lb::PushPollConfig push = pull_only_push_config();
  /// Publisher trigger tuning, shared by all back ends.
  monitor::PushConfig publisher;
};

class ScaleOutPlane;

/// One front end's half of the plane: its balancer (poll-filtered to
/// its shard), its published view, and its gossip loop.
class FrontendPlane {
 public:
  FrontendPlane(ScaleOutPlane& plane, os::Node& node, int id,
                lb::WeightConfig weights);

  FrontendPlane(const FrontendPlane&) = delete;
  FrontendPlane& operator=(const FrontendPlane&) = delete;

  lb::LoadBalancer& balancer() { return lb_; }
  os::Node& node() { return *node_; }
  int id() const { return id_; }

  /// The view peers READ (also the MR's logical content right now).
  const ShardView& view() const { return view_; }
  net::MrKey view_mr_key() const { return view_mr_; }

  /// This front end's push inbox (null under strategy Pull).
  monitor::PushInbox* inbox() { return inbox_.get(); }

  /// Graceful departure (drain, maintenance): leaves the ring AND stops
  /// the gossip loop from auto-rejoining. Peers take the shard over at
  /// their next poll round. Distinct from being evicted: an evicted
  /// front end still wants membership and rejoins on its first
  /// successful peer read.
  void leave(const std::string& reason = "drain");
  /// Re-enters after a graceful leave().
  void rejoin(const std::string& reason = "rejoin");

  /// Kills this front end's poller and gossip threads in place: the
  /// host stays attached and its NIC keeps DMA-serving the view MR, but
  /// published_at stops advancing. Models a hung monitoring process
  /// (SIGSTOP, livelock) — which inject_freeze cannot express, since a
  /// frozen node's threads keep being scheduled — and is the trigger
  /// for the peers' stale-view eviction path.
  void stall();

  /// Back ends this front end currently owns on the ring.
  int owned_count() const;
  /// Oldest "last seen" of any back end owned by OTHER members (how far
  /// behind this front end's picture of foreign shards is). Zero when
  /// every back end is ours.
  sim::Duration max_peer_view_age() const;

  // --- counters (for tests and the scale bench) ---------------------------
  const std::vector<std::uint64_t>& poll_counts() const { return polls_; }
  std::uint64_t gossip_reads_ok() const { return gossip_ok_; }
  std::uint64_t gossip_reads_failed() const { return gossip_fail_; }
  std::uint64_t stale_marks() const { return stale_marks_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t takeovers() const { return takeovers_; }
  std::uint64_t rejoins() const { return rejoins_; }

 private:
  friend class ScaleOutPlane;

  /// Called by ScaleOutPlane::start: channels, filter, view MR, gossip.
  void wire(sim::Duration granularity);
  void on_round(const std::vector<std::size_t>& targets);
  void on_membership_change();
  os::Program gossip_body(os::SimThread& self);
  void process_view(const ShardView& v);
  bool may_evict() const;

  ScaleOutPlane* plane_;
  os::Node* node_;
  int id_;
  lb::LoadBalancer lb_;
  bool wants_membership_ = true;  ///< false after a graceful leave()

  ShardView view_;
  net::MrKey view_mr_{};
  std::unique_ptr<monitor::PushInbox> inbox_;  ///< strategy != Pull only
  sim::TimePoint last_round_end_{};  ///< previous poll round's finish
  sim::TimePoint last_local_ok_{};   ///< last successful OWN-shard fetch

  os::SimThread* gossip_thread_ = nullptr;
  net::CompletionQueue gossip_cq_;
  std::vector<std::unique_ptr<net::QueuePair>> peer_qps_;  ///< by peer id
  std::vector<int> peer_fail_;            ///< consecutive bad view reads
  std::vector<int> owned_by_;             ///< last seen owner per back end
  std::vector<sim::TimePoint> last_seen_;  ///< per back end, any source
  std::vector<sim::TimePoint> last_strike_;

  std::vector<std::uint64_t> polls_;
  std::uint64_t gossip_ok_ = 0;
  std::uint64_t gossip_fail_ = 0;
  std::uint64_t stale_marks_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t takeovers_ = 0;
  std::uint64_t rejoins_ = 0;

  telemetry::Registry* reg_ = nullptr;
  telemetry::Counter* m_gossip_ok_ = nullptr;
  telemetry::Counter* m_gossip_fail_ = nullptr;
  telemetry::Counter* m_stale_ = nullptr;
  telemetry::Counter* m_evict_ = nullptr;
  telemetry::ScopedCollector collector_;
  /// Freshness SLO stream for gossiped peer views (fed when the operator
  /// declared "cluster.peer_view_age"), and the membership flight ring.
  telemetry::SloEngine* slo_ = nullptr;
  telemetry::SloEngine::Stream* s_peer_age_ = nullptr;
  telemetry::FlightRing* fr_ = nullptr;
};

/// The whole plane: shared back-end monitors, the membership ring, and
/// one FrontendPlane per front end. Wiring order: add_backend /
/// add_frontend freely, configure each FrontendPlane's balancer, then
/// start() once.
class ScaleOutPlane {
 public:
  ScaleOutPlane(net::Fabric& fabric, ScaleOutConfig cfg,
                monitor::MonitorConfig mcfg);
  ~ScaleOutPlane();

  ScaleOutPlane(const ScaleOutPlane&) = delete;
  ScaleOutPlane& operator=(const ScaleOutPlane&) = delete;

  /// Registers a back end: creates its ONE shared BackendMonitor (one
  /// daemon set / one registered MR total, however many front ends
  /// attach). Returns the back-end index.
  int add_backend(os::Node& node);

  /// Registers a front end; its id is the creation index.
  FrontendPlane& add_frontend(os::Node& node, lb::WeightConfig weights);

  /// Bootstraps membership (all front ends join), wires every front
  /// end's channels against the shared back-end monitors, and starts
  /// the balancer pollers and gossip loops.
  void start(sim::Duration granularity);

  int backend_count() const {
    return static_cast<int>(backend_monitors_.size());
  }
  int frontend_count() const { return static_cast<int>(frontends_.size()); }
  FrontendPlane& frontend(int i) {
    return *frontends_[static_cast<std::size_t>(i)];
  }
  monitor::BackendMonitor& backend_monitor(int i) {
    return *backend_monitors_[static_cast<std::size_t>(i)];
  }
  reconfig::FrontendMembership& membership() { return membership_; }
  int owner_of(int backend) const { return membership_.owner_of(backend); }

  bool push_enabled() const {
    return cfg_.push.strategy != monitor::MonitorStrategy::Pull;
  }
  /// Back end `b`'s publisher (started by start(); strategy != Pull only).
  monitor::PushPublisher& publisher(int b) {
    return *publishers_[static_cast<std::size_t>(b)];
  }

  net::Fabric& fabric() { return *fabric_; }
  const ScaleOutConfig& config() const { return cfg_; }
  const monitor::MonitorConfig& monitor_config() const { return mcfg_; }

 private:
  friend class FrontendPlane;

  /// Adaptive mode switch observed by `frontend`'s balancer for back end
  /// `b`: pause the publisher while the owner pulls, resume when it goes
  /// back to push. Ignored unless `frontend` currently owns `b`.
  void on_owner_mode(int b, int frontend, monitor::FetchMode m);

  /// Re-aims every publisher at its back end's current ring owner.
  /// Runs inside the membership change hook — omniscient wiring (the
  /// real protocol would gossip the new owner's inbox rkey to the back
  /// ends; the plane already knows it), same simplification as the
  /// plane's direct channel wiring. A publisher whose owner is unchanged
  /// is untouched (PushPublisher::target no-ops on an identical target).
  void retarget_publishers();

  net::Fabric* fabric_;
  ScaleOutConfig cfg_;
  monitor::MonitorConfig mcfg_;
  reconfig::FrontendMembership membership_;
  std::vector<std::unique_ptr<monitor::BackendMonitor>> backend_monitors_;
  std::vector<std::unique_ptr<monitor::PushPublisher>> publishers_;
  std::vector<std::unique_ptr<FrontendPlane>> frontends_;
  bool started_ = false;
};

}  // namespace rdmamon::cluster
