#include "telemetry/registry.hpp"

#include <algorithm>

namespace rdmamon::telemetry {

Labels::Labels(
    std::initializer_list<std::pair<std::string, std::string>> kv) {
  for (const auto& p : kv) kv_.push_back(p);
  std::sort(kv_.begin(), kv_.end());
}

Labels& Labels::add(std::string key, std::string value) {
  kv_.emplace_back(std::move(key), std::move(value));
  std::sort(kv_.begin(), kv_.end());
  return *this;
}

std::string Labels::canonical() const {
  std::string out;
  for (const auto& [k, v] : kv_) {
    if (!out.empty()) out += ',';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

const SnapshotEntry* Snapshot::find(std::string_view name,
                                    std::string_view labels) const {
  for (const SnapshotEntry& e : entries) {
    if (e.name == name && (labels.empty() || e.labels == labels)) return &e;
  }
  return nullptr;
}

Registry::~Registry() {
  if (simu_ && simu_->telemetry() == this) simu_->set_telemetry(nullptr);
}

void Registry::install(sim::Simulation& simu) {
  simu_ = &simu;
  simu.set_telemetry(this);
  spans_.bind_clock([s = &simu] { return s->now(); });
  recorder_.bind_clock([s = &simu] { return s->now(); });
}

Registry::Instrument& Registry::resolve(std::string_view name,
                                        const Labels& labels,
                                        SnapshotEntry::Kind kind) {
  auto key = std::make_pair(std::string(name), labels.canonical());
  auto it = instruments_.find(key);
  if (it == instruments_.end()) {
    Instrument inst;
    inst.kind = kind;
    it = instruments_.emplace(std::move(key), std::move(inst)).first;
  }
  // A key can be asked for under several kinds (first-wins for export);
  // the histogram slot is heap-backed, so materialise it on demand.
  if (kind == SnapshotEntry::Kind::Histogram && !it->second.hist) {
    it->second.hist = std::make_unique<HistogramMetric>();
  }
  return it->second;
}

Counter& Registry::counter(std::string_view name, const Labels& labels) {
  return resolve(name, labels, SnapshotEntry::Kind::Counter).counter;
}

Gauge& Registry::gauge(std::string_view name, const Labels& labels) {
  return resolve(name, labels, SnapshotEntry::Kind::Gauge).gauge;
}

HistogramMetric& Registry::histogram(std::string_view name,
                                     const Labels& labels) {
  return *resolve(name, labels, SnapshotEntry::Kind::Histogram).hist;
}

std::uint64_t Registry::add_collector(std::function<void(Registry&)> fn) {
  const std::uint64_t id = next_collector_id_++;
  collectors_.emplace_back(id, std::move(fn));
  return id;
}

void Registry::remove_collector(std::uint64_t id) {
  std::erase_if(collectors_, [id](const auto& c) { return c.first == id; });
}

void ScopedCollector::bind(sim::Simulation& simu,
                           std::function<void(Registry&)> fn) {
  release();
  Registry* reg = Registry::of(simu);
  if (reg == nullptr) return;
  simu_ = &simu;
  reg_ = reg;
  id_ = reg->add_collector(std::move(fn));
}

void ScopedCollector::release() {
  if (reg_ != nullptr && simu_ != nullptr && Registry::of(*simu_) == reg_) {
    reg_->remove_collector(id_);
  }
  simu_ = nullptr;
  reg_ = nullptr;
  id_ = 0;
}

Snapshot Registry::snapshot() {
  if (simu_ != nullptr) {
    // DES-kernel self-monitoring: published here, not on the event hot
    // path, so instrumenting the queue costs nothing per event.
    // sim_events_tombstoned tracks cancelled events still occupying pool
    // slots ahead of the lazy sweep — the price of O(1) cancellation.
    gauge("sim_events_executed").set(
        static_cast<double>(simu_->events_executed()));
    gauge("sim_events_pending").set(
        static_cast<double>(simu_->events_pending()));
    gauge("sim_events_cancelled").set(
        static_cast<double>(simu_->events_cancelled()));
    gauge("sim_events_tombstoned").set(
        static_cast<double>(simu_->events_tombstoned()));
  }
  if (recorder_.total_recorded() > 0) {
    // Flight-recorder self-accounting, published only once something was
    // recorded so recorder-free runs keep their exact snapshot shape.
    std::uint64_t dropped = 0;
    for (const FlightRing* r : recorder_.rings()) dropped += r->dropped();
    gauge("telemetry.flight.recorded").set(
        static_cast<double>(recorder_.total_recorded()));
    gauge("telemetry.flight.dropped").set(static_cast<double>(dropped));
  }
  for (const auto& [id, fn] : collectors_) fn(*this);
  Snapshot snap;
  snap.at = now();
  snap.entries.reserve(instruments_.size());
  for (const auto& [key, inst] : instruments_) {
    SnapshotEntry e;
    e.name = key.first;
    e.labels = key.second;
    e.kind = inst.kind;
    switch (inst.kind) {
      case SnapshotEntry::Kind::Counter:
        e.value = static_cast<double>(inst.counter.value());
        break;
      case SnapshotEntry::Kind::Gauge:
        e.value = inst.gauge.value();
        break;
      case SnapshotEntry::Kind::Histogram: {
        const sim::Histogram& h = inst.hist->histogram();
        e.hist.count = h.count();
        e.hist.mean = h.mean();
        e.hist.min = h.min();
        e.hist.max = h.max();
        e.hist.p50 = h.percentile(0.50);
        e.hist.p90 = h.percentile(0.90);
        e.hist.p99 = h.percentile(0.99);
        e.value = static_cast<double>(e.hist.count);
        break;
      }
    }
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

}  // namespace rdmamon::telemetry
