// Staleness SLO engine (ROADMAP item 4's alarm path): declarative
// per-metric freshness targets with sliding-window error-budget
// accounting and edge-triggered Ok -> BreachWarn -> Breach alarms.
//
// Model: an SLO owns a *stream* of (instant, value) observations — view
// ages at dispatch, scan-silence durations, gossip peer-view ages. An
// observation VIOLATES when its value exceeds `target`. Over a sliding
// `window`, the violating fraction is compared against `error_budget`:
//
//   consumed = (violations / observations) / error_budget
//   consumed >= 1.0            -> Breach
//   consumed >= warn_fraction  -> BreachWarn
//   otherwise                  -> Ok
//
// With error_budget = 0.01 and target = 250ms this is exactly "p99 view
// age <= 250ms": the budget IS the quantile. The window slides on the
// simulated clock, so budgets refill deterministically and same-seed runs
// produce byte-identical alarm logs.
//
// Transitions are EDGE-triggered: one AlarmRecord (and one callback
// round, one flight-recorder event, one telemetry counter tick) per state
// change, never per evaluation. A Breach edge also triggers a flight
// recorder post-mortem — the dump exists by the time anyone reads the
// alarm.
//
// Streams are fed two ways: components push observations into streams
// they find by name (a stream the operator never declared is simply
// absent, and the component's lookup returns null), and gauge-style
// *probes* (e.g. "current worst view age") are polled at every
// evaluate(). Evaluation is explicit or timer-driven via arm_timer().
//
// Alarm state is summarised into an AlarmView — a flat value a
// monitor::AlarmMonitor publishes into a registered MR so peers can
// one-sided RDMA-READ "is that front end's view stale?" with zero
// target-CPU cost: the paper's own mechanism, aimed at the monitor.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/time.hpp"
#include "util/json.hpp"

namespace rdmamon::telemetry {

class Registry;
class FlightRing;

enum class AlarmState { Ok, BreachWarn, Breach };
const char* to_string(AlarmState s);

/// One declarative SLO.
struct SloSpec {
  std::string name;         ///< e.g. "lb.view_age" — stream lookup key
  std::string metric;       ///< human description of what is observed
  double target = 0.0;      ///< violation threshold on the observed value
  sim::Duration window = sim::msec(500);  ///< sliding evaluation window
  double error_budget = 0.01;  ///< allowed violating fraction in window
  double warn_fraction = 0.5;  ///< consumed fraction that arms BreachWarn
  std::size_t min_count = 8;   ///< observations required before judging
};

/// One alarm transition (the alarm log entry).
struct AlarmRecord {
  sim::TimePoint at{};
  std::string slo;
  AlarmState from = AlarmState::Ok;
  AlarmState to = AlarmState::Ok;
  double consumed = 0.0;  ///< budget consumed fraction at the edge
};

/// Flat alarm summary for MR publication (copied whole into the slot).
struct AlarmEntry {
  std::string name;
  AlarmState state = AlarmState::Ok;
  double consumed = 0.0;
  sim::TimePoint since{};       ///< instant of the last transition
  std::uint64_t edges = 0;      ///< total transitions so far
};
struct AlarmView {
  sim::TimePoint published_at{};
  std::uint64_t version = 0;    ///< bumped every build (readers detect motion)
  AlarmState worst = AlarmState::Ok;
  std::vector<AlarmEntry> entries;  ///< spec order == registration order
};

class SloEngine {
 public:
  /// One SLO's live accounting. Opaque to callers; obtained from add() /
  /// find() and passed to observe(). Pointers are stable for the
  /// engine's lifetime.
  struct Stream;

  SloEngine();  // out of line: members need the Stream definition
  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;
  ~SloEngine();

  /// Binds the clock (standalone use; install() does this for you).
  void bind_clock(std::function<sim::TimePoint()> now) {
    now_ = std::move(now);
  }

  /// Attaches this engine to `reg`: clock from the registry, alarm edges
  /// mirrored to the registry's flight recorder + span tracer + an
  /// "slo.edges" counter, Breach edges trigger recorder post-mortems,
  /// and components wired afterwards find the engine via Registry::slo().
  void install(Registry& reg);

  Stream* add(SloSpec spec);
  Stream* find(std::string_view name);
  const SloSpec& spec(const Stream* s) const;

  /// Feeds one observation (explicit-time overload for tests).
  void observe(Stream* s, double value);
  void observe(Stream* s, double value, sim::TimePoint at);

  /// Registers a gauge-style probe polled at every evaluate(); returns an
  /// id for remove_probe (component destructors MUST remove theirs).
  std::uint64_t add_probe(Stream* s, std::function<double()> fn);
  void remove_probe(std::uint64_t id);

  /// Polls probes, slides every window, applies edge transitions.
  void evaluate();
  void evaluate(sim::TimePoint at);

  /// Self-rescheduling periodic evaluate() on the simulation queue.
  /// The engine must outlive the simulation run (or call disarm_timer).
  void arm_timer(sim::Simulation& simu, sim::Duration period);
  void disarm_timer() { timer_armed_ = false; }

  AlarmState state(const Stream* s) const;
  double consumed(const Stream* s) const;

  /// The append-only alarm log (every edge, in order).
  const std::vector<AlarmRecord>& log() const { return log_; }
  /// Deterministic JSON rendering of the log (byte-identical across
  /// same-seed runs — determinism_test pins this).
  util::JsonValue log_json() const;

  /// Edge callbacks (fired once per transition, after the log append).
  std::uint64_t on_edge(std::function<void(const AlarmRecord&)> fn);
  void remove_on_edge(std::uint64_t id);

  /// Builds the flat MR-publishable summary (bumps `version`).
  AlarmView view();

  std::size_t stream_count() const { return streams_.size(); }

 private:
  sim::TimePoint now() const { return now_ ? now_() : sim::TimePoint{}; }
  void slide(Stream& s, sim::TimePoint at);
  void transition(Stream& s, sim::TimePoint at);
  void tick(sim::Simulation& simu, sim::Duration period);

  std::function<sim::TimePoint()> now_;
  Registry* reg_ = nullptr;
  FlightRing* fr_ = nullptr;
  std::vector<std::unique_ptr<Stream>> streams_;
  struct Probe {
    std::uint64_t id;
    Stream* stream;
    std::function<double()> fn;
  };
  std::vector<Probe> probes_;
  std::uint64_t next_probe_id_ = 1;
  std::vector<AlarmRecord> log_;
  std::vector<std::pair<std::uint64_t, std::function<void(const AlarmRecord&)>>>
      edge_cbs_;
  std::uint64_t next_cb_id_ = 1;
  std::uint64_t view_version_ = 0;
  bool timer_armed_ = false;
};

}  // namespace rdmamon::telemetry
