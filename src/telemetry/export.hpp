// Snapshot export: Prometheus-style text exposition and a JSON document
// (via util::JsonValue), plus a span dump. Pure functions of a Snapshot,
// so exports are as deterministic as the run that produced them.
#pragma once

#include <iosfwd>
#include <string>

#include "telemetry/registry.hpp"
#include "util/json.hpp"

namespace rdmamon::telemetry {

/// Prometheus text exposition format:
///   rdmamon_monitor_fetch_total{scheme="RDMA-Sync",backend="b0"} 42
/// Metric names are the registry names with '.' -> '_' and an "rdmamon_"
/// prefix; histograms emit _count/_sum-less summary gauges (p50/p90/p99),
/// which is what our scrapeless file-dump consumers actually read.
std::string to_prometheus(const Snapshot& snap);

/// JSON document: {"at_ns": ..., "metrics": [{name, labels, kind, ...}]}.
util::JsonValue to_json(const Snapshot& snap);

/// JSON array of finished spans (id, cause, component, name, begin/end ns,
/// outcome, notes), oldest first.
util::JsonValue spans_to_json(const SpanTracer& spans);

/// Writes `text` to `path`, returning false (and leaving a partial file
/// possibly behind) on I/O failure.
bool write_file(const std::string& path, const std::string& text);

/// Human-oriented dashboard: metrics grouped by name with aligned values,
/// plus the most recent spans — what the examples print.
void print_dashboard(std::ostream& os, const Snapshot& snap,
                     const SpanTracer* spans = nullptr,
                     std::size_t max_spans = 12);

}  // namespace rdmamon::telemetry
