#include "telemetry/recorder.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>

namespace rdmamon::telemetry {

void FlightRing::record(const char* kind, std::int64_t a, std::int64_t b,
                        double x) {
  record_at(owner_ != nullptr ? owner_->now() : sim::TimePoint{}, kind, a, b,
            x);
}

void FlightRing::record_at(sim::TimePoint at, const char* kind,
                           std::int64_t a, std::int64_t b, double x) {
  if (owner_ == nullptr || !owner_->enabled() || buf_.empty()) return;
  FlightEvent& e = buf_[head_];
  if (size_ == buf_.size()) {
    ++dropped_;  // overwriting the oldest surviving event
  } else {
    ++size_;
  }
  e.at = at;
  e.seq = ++owner_->seq_;
  e.kind = kind;
  e.a = a;
  e.b = b;
  e.x = x;
  head_ = (head_ + 1) % buf_.size();
  ++recorded_;
}

std::vector<FlightEvent> FlightRing::events() const {
  std::vector<FlightEvent> out;
  out.reserve(size_);
  // Oldest surviving event sits at head_ when full, else at 0.
  const std::size_t start = size_ == buf_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(buf_[(start + i) % buf_.size()]);
  }
  return out;
}

FlightRing* FlightRecorder::ring(std::string_view subsystem,
                                 std::size_t capacity) {
  auto it = rings_.find(subsystem);
  if (it == rings_.end()) {
    auto r = std::make_unique<FlightRing>();
    r->owner_ = this;
    r->name_ = std::string(subsystem);
    r->buf_.resize(capacity == 0 ? 1 : capacity);
    it = rings_.emplace(r->name_, std::move(r)).first;
  }
  return it->second.get();
}

std::vector<const FlightRing*> FlightRecorder::rings() const {
  std::vector<const FlightRing*> out;
  out.reserve(rings_.size());
  for (const auto& [name, ring] : rings_) out.push_back(ring.get());
  return out;
}

util::JsonValue FlightRecorder::dump(std::string_view reason) const {
  util::JsonValue doc = util::JsonValue::object();
  doc["reason"] = std::string(reason);
  doc["at_ns"] = static_cast<std::int64_t>(now().ns);
  util::JsonValue& ring_arr = doc["rings"];
  ring_arr = util::JsonValue::array();

  struct Tagged {
    const FlightRing* ring;
    FlightEvent ev;
  };
  std::vector<Tagged> merged;
  for (const auto& [name, ring] : rings_) {
    util::JsonValue r = util::JsonValue::object();
    r["name"] = name;
    r["capacity"] = static_cast<std::uint64_t>(ring->capacity());
    r["recorded"] = ring->recorded();
    r["dropped"] = ring->dropped();
    ring_arr.push_back(std::move(r));
    for (const FlightEvent& ev : ring->events()) {
      merged.push_back({ring.get(), ev});
    }
  }
  std::sort(merged.begin(), merged.end(), [](const Tagged& l, const Tagged& r) {
    if (l.ev.at.ns != r.ev.at.ns) return l.ev.at.ns < r.ev.at.ns;
    return l.ev.seq < r.ev.seq;
  });

  util::JsonValue& events = doc["events"];
  events = util::JsonValue::array();
  for (const Tagged& t : merged) {
    util::JsonValue e = util::JsonValue::object();
    e["t_ns"] = static_cast<std::int64_t>(t.ev.at.ns);
    e["seq"] = t.ev.seq;
    e["ring"] = t.ring->name();
    e["kind"] = std::string(t.ev.kind);
    if (t.ev.a != 0) e["a"] = t.ev.a;
    if (t.ev.b != 0) e["b"] = t.ev.b;
    if (t.ev.x != 0.0) e["x"] = t.ev.x;
    events.push_back(std::move(e));
  }
  return doc;
}

std::string FlightRecorder::postmortem(std::string_view reason) {
  std::string dir = dir_;
  if (dir.empty()) {
    const char* env = std::getenv("RDMAMON_FLIGHT_DIR");
    if (env != nullptr) dir = env;
  }
  if (dir.empty()) return "";
  std::string slug;
  for (char c : reason) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    slug += ok ? c : '_';
  }
  const std::string path =
      dir + "/flight_" + slug + "_" + std::to_string(dumps_++) + ".json";
  std::ofstream os(path, std::ios::trunc);
  if (!os) return "";
  os << dump(reason).dump(2) << "\n";
  return os ? path : "";
}

void FlightRecorder::clear() {
  for (auto& [name, ring] : rings_) {
    ring->head_ = 0;
    ring->size_ = 0;
    ring->recorded_ = 0;
    ring->dropped_ = 0;
  }
}

}  // namespace rdmamon::telemetry
