#include "telemetry/slo.hpp"

#include <algorithm>

#include "telemetry/recorder.hpp"
#include "telemetry/registry.hpp"

namespace rdmamon::telemetry {

const char* to_string(AlarmState s) {
  switch (s) {
    case AlarmState::Ok: return "ok";
    case AlarmState::BreachWarn: return "breach-warn";
    case AlarmState::Breach: return "breach";
  }
  return "?";
}

/// Live accounting for one SLO: the windowed observation deque plus the
/// current alarm state.
struct SloEngine::Stream {
  SloSpec spec;
  int index = 0;  ///< registration order (flight-event tag)
  std::deque<std::pair<sim::TimePoint, bool>> obs;  ///< (at, violating)
  std::size_t violations = 0;
  double consumed = 0.0;
  AlarmState state = AlarmState::Ok;
  sim::TimePoint since{};
  std::uint64_t edges = 0;
  Counter* edge_counter = nullptr;    ///< "slo.edges"{slo=...}
  Counter* breach_counter = nullptr;  ///< "slo.breach"{slo=...}
};

SloEngine::SloEngine() = default;

SloEngine::~SloEngine() {
  timer_armed_ = false;
}

void SloEngine::install(Registry& reg) {
  reg_ = &reg;
  now_ = [r = &reg] { return r->now(); };
  fr_ = reg.recorder().ring("slo", 256);
  reg.set_slo(this);
}

SloEngine::Stream* SloEngine::add(SloSpec spec) {
  auto s = std::make_unique<Stream>();
  s->spec = std::move(spec);
  s->index = static_cast<int>(streams_.size());
  s->since = now();
  streams_.push_back(std::move(s));
  return streams_.back().get();
}

SloEngine::Stream* SloEngine::find(std::string_view name) {
  for (auto& s : streams_) {
    if (s->spec.name == name) return s.get();
  }
  return nullptr;
}

const SloSpec& SloEngine::spec(const Stream* s) const { return s->spec; }

void SloEngine::observe(Stream* s, double value) { observe(s, value, now()); }

void SloEngine::observe(Stream* s, double value, sim::TimePoint at) {
  if (s == nullptr) return;
  s->obs.emplace_back(at, value > s->spec.target);
  if (s->obs.back().second) ++s->violations;
  slide(*s, at);
}

std::uint64_t SloEngine::add_probe(Stream* s, std::function<double()> fn) {
  const std::uint64_t id = next_probe_id_++;
  probes_.push_back({id, s, std::move(fn)});
  return id;
}

void SloEngine::remove_probe(std::uint64_t id) {
  probes_.erase(std::remove_if(probes_.begin(), probes_.end(),
                               [id](const Probe& p) { return p.id == id; }),
                probes_.end());
}

void SloEngine::slide(Stream& s, sim::TimePoint at) {
  while (!s.obs.empty() && at.ns - s.obs.front().first.ns > s.spec.window.ns) {
    if (s.obs.front().second) --s.violations;
    s.obs.pop_front();
  }
}

void SloEngine::transition(Stream& s, sim::TimePoint at) {
  slide(s, at);
  const std::size_t n = s.obs.size();
  const double budget = s.spec.error_budget > 0.0 ? s.spec.error_budget : 1.0;
  s.consumed =
      n == 0 ? 0.0
             : (static_cast<double>(s.violations) / static_cast<double>(n)) /
                   budget;
  if (n < s.spec.min_count) return;  // not enough evidence to change state

  AlarmState next = AlarmState::Ok;
  if (s.consumed >= 1.0) {
    next = AlarmState::Breach;
  } else if (s.consumed >= s.spec.warn_fraction) {
    next = AlarmState::BreachWarn;
  }
  if (next == s.state) return;

  const AlarmRecord rec{at, s.spec.name, s.state, next, s.consumed};
  s.state = next;
  s.since = at;
  ++s.edges;
  log_.push_back(rec);

  if (reg_ != nullptr) {
    if (s.edge_counter == nullptr) {
      s.edge_counter = &reg_->counter("slo.edges", {{"slo", s.spec.name}});
      s.breach_counter = &reg_->counter("slo.breach", {{"slo", s.spec.name}});
    }
    s.edge_counter->inc();
    if (next == AlarmState::Breach) s.breach_counter->inc();
    span_event(reg_, "slo", "alarm",
               s.spec.name + ":" + to_string(rec.from) + "->" +
                   to_string(rec.to));
  }
  fr_record_at(fr_, at, "alarm", s.index, static_cast<std::int64_t>(next),
               s.consumed);
  for (auto& [id, fn] : edge_cbs_) fn(rec);
  if (next == AlarmState::Breach && reg_ != nullptr) {
    // The post-mortem is the alarm's payload: dump history at the edge,
    // while the ring still holds the lead-up.
    reg_->recorder().postmortem("slo_" + s.spec.name);
  }
}

void SloEngine::evaluate() { evaluate(now()); }

void SloEngine::evaluate(sim::TimePoint at) {
  for (Probe& p : probes_) {
    if (p.stream != nullptr) observe(p.stream, p.fn(), at);
  }
  for (auto& s : streams_) transition(*s, at);
}

void SloEngine::arm_timer(sim::Simulation& simu, sim::Duration period) {
  timer_armed_ = true;
  tick(simu, period);
}

void SloEngine::tick(sim::Simulation& simu, sim::Duration period) {
  simu.after(period, [this, &simu, period] {
    if (!timer_armed_) return;
    evaluate();
    tick(simu, period);
  });
}

AlarmState SloEngine::state(const Stream* s) const { return s->state; }

double SloEngine::consumed(const Stream* s) const { return s->consumed; }

util::JsonValue SloEngine::log_json() const {
  util::JsonValue arr = util::JsonValue::array();
  for (const AlarmRecord& r : log_) {
    util::JsonValue e = util::JsonValue::object();
    e["t_ns"] = static_cast<std::int64_t>(r.at.ns);
    e["slo"] = r.slo;
    e["from"] = to_string(r.from);
    e["to"] = to_string(r.to);
    e["consumed"] = r.consumed;
    arr.push_back(std::move(e));
  }
  return arr;
}

std::uint64_t SloEngine::on_edge(std::function<void(const AlarmRecord&)> fn) {
  const std::uint64_t id = next_cb_id_++;
  edge_cbs_.emplace_back(id, std::move(fn));
  return id;
}

void SloEngine::remove_on_edge(std::uint64_t id) {
  edge_cbs_.erase(std::remove_if(edge_cbs_.begin(), edge_cbs_.end(),
                                 [id](const auto& p) { return p.first == id; }),
                  edge_cbs_.end());
}

AlarmView SloEngine::view() {
  AlarmView v;
  v.published_at = now();
  v.version = ++view_version_;
  for (const auto& s : streams_) {
    AlarmEntry e;
    e.name = s->spec.name;
    e.state = s->state;
    e.consumed = s->consumed;
    e.since = s->since;
    e.edges = s->edges;
    if (static_cast<int>(e.state) > static_cast<int>(v.worst)) {
      v.worst = e.state;
    }
    v.entries.push_back(std::move(e));
  }
  return v;
}

}  // namespace rdmamon::telemetry
