#include "telemetry/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "util/format.hpp"

namespace rdmamon::telemetry {

namespace {

std::string prom_name(const std::string& name) {
  std::string out = "rdmamon_";
  for (char c : name) out += (c == '.' || c == '-') ? '_' : c;
  return out;
}

/// Prometheus label-value escaping: backslash, double quote and newline
/// must be escaped inside the quoted value (exposition format spec).
std::string prom_escape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// `{k1="v1",k2="v2"}` from the canonical label string ("" -> "").
/// Values are escaped at emission; keys are registry-controlled
/// identifiers and pass through.
std::string prom_labels(const std::string& canonical,
                        const std::string& extra = "") {
  if (canonical.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  std::string key, val;
  bool in_key = true;
  auto flush = [&] {
    if (key.empty()) return;
    if (!first) out += ',';
    first = false;
    out += key + "=\"" + prom_escape(val) + "\"";
    key.clear();
    val.clear();
  };
  for (char c : canonical) {
    if (c == '=' && in_key) {
      in_key = false;
    } else if (c == ',') {
      flush();
      in_key = true;
    } else {
      (in_key ? key : val) += c;
    }
  }
  flush();
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

/// HELP text escaping: backslash and newline (spec; no quote escaping).
std::string help_escape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string num(double v) {
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

const char* kind_str(SnapshotEntry::Kind k) {
  switch (k) {
    case SnapshotEntry::Kind::Counter: return "counter";
    case SnapshotEntry::Kind::Gauge: return "gauge";
    case SnapshotEntry::Kind::Histogram: return "histogram";
  }
  return "?";
}

}  // namespace

std::string to_prometheus(const Snapshot& snap) {
  std::string out;
  out += "# rdmamon telemetry snapshot at t=" + std::to_string(snap.at.ns) +
         "ns\n";
  // Snapshot entries arrive sorted by (name, labels), so every label set
  // of one metric is contiguous: emit HELP/TYPE once per metric name (a
  // repeated TYPE line for the same name is a parse error in real
  // scrapers), then the samples.
  std::string last_name;
  for (const SnapshotEntry& e : snap.entries) {
    const std::string name = prom_name(e.name);
    const bool first_of_name = e.name != last_name;
    last_name = e.name;
    switch (e.kind) {
      case SnapshotEntry::Kind::Counter:
        if (first_of_name) {
          out += "# HELP " + name + "_total rdmamon counter " +
                 help_escape(e.name) + "\n";
          out += "# TYPE " + name + "_total counter\n";
        }
        out += name + "_total" + prom_labels(e.labels) + " " + num(e.value) +
               "\n";
        break;
      case SnapshotEntry::Kind::Gauge:
        if (first_of_name) {
          out += "# HELP " + name + " rdmamon gauge " + help_escape(e.name) +
                 "\n";
          out += "# TYPE " + name + " gauge\n";
        }
        out += name + prom_labels(e.labels) + " " + num(e.value) + "\n";
        break;
      case SnapshotEntry::Kind::Histogram: {
        if (first_of_name) {
          out += "# HELP " + name + " rdmamon histogram summary " +
                 help_escape(e.name) + "\n";
          out += "# TYPE " + name + " summary\n";
        }
        out += name + "_count" + prom_labels(e.labels) + " " +
               num(static_cast<double>(e.hist.count)) + "\n";
        out += name + "_mean" + prom_labels(e.labels) + " " +
               num(e.hist.mean) + "\n";
        const std::pair<const char*, double> qs[] = {
            {"0.5", e.hist.p50}, {"0.9", e.hist.p90}, {"0.99", e.hist.p99}};
        for (const auto& [q, v] : qs) {
          out += name +
                 prom_labels(e.labels,
                             std::string("quantile=\"") + q + "\"") +
                 " " + num(v) + "\n";
        }
        break;
      }
    }
  }
  return out;
}

util::JsonValue to_json(const Snapshot& snap) {
  util::JsonValue doc = util::JsonValue::object();
  doc["at_ns"] = static_cast<std::int64_t>(snap.at.ns);
  util::JsonValue& metrics = doc["metrics"];
  metrics = util::JsonValue::array();
  for (const SnapshotEntry& e : snap.entries) {
    util::JsonValue m = util::JsonValue::object();
    m["name"] = e.name;
    if (!e.labels.empty()) m["labels"] = e.labels;
    m["kind"] = kind_str(e.kind);
    if (e.kind == SnapshotEntry::Kind::Histogram) {
      m["count"] = e.hist.count;
      m["mean"] = e.hist.mean;
      m["min"] = e.hist.min;
      m["max"] = e.hist.max;
      m["p50"] = e.hist.p50;
      m["p90"] = e.hist.p90;
      m["p99"] = e.hist.p99;
    } else {
      m["value"] = e.value;
    }
    metrics.push_back(std::move(m));
  }
  return doc;
}

util::JsonValue spans_to_json(const SpanTracer& spans) {
  util::JsonValue arr = util::JsonValue::array();
  for (const Span& s : spans.finished()) {
    util::JsonValue j = util::JsonValue::object();
    j["id"] = s.id;
    if (s.cause != 0) j["cause"] = s.cause;
    j["component"] = s.component;
    j["name"] = s.name;
    j["begin_ns"] = static_cast<std::int64_t>(s.begin.ns);
    j["end_ns"] = static_cast<std::int64_t>(s.end.ns);
    j["outcome"] = s.outcome;
    if (!s.notes.empty()) {
      util::JsonValue& notes = j["notes"];
      notes = util::JsonValue::array();
      for (const std::string& n : s.notes) notes.push_back(n);
    }
    arr.push_back(std::move(j));
  }
  return arr;
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  os << text;
  return static_cast<bool>(os);
}

void print_dashboard(std::ostream& os, const Snapshot& snap,
                     const SpanTracer* spans, std::size_t max_spans) {
  os << "-- telemetry @ t=" << sim::to_string(snap.at) << " ("
     << snap.entries.size() << " instruments) --\n";
  // Group into sections by the name's first '.'-component. Entries are
  // pre-sorted by (name, labels), but different instrument KINDS sharing
  // a prefix used to interleave their section headers; sorting section
  // keys explicitly keeps the rendering deterministic regardless of how
  // entries arrive.
  std::map<std::string, std::vector<const SnapshotEntry*>> sections;
  for (const SnapshotEntry& e : snap.entries) {
    const std::size_t dot = e.name.find('.');
    sections[dot == std::string::npos ? e.name.substr(0, e.name.find('_'))
                                      : e.name.substr(0, dot)]
        .push_back(&e);
  }
  for (const auto& [section, entries] : sections) {
    os << "  [" << section << "]\n";
    for (const SnapshotEntry* ep : entries) {
      const SnapshotEntry& e = *ep;
      os << "    " << util::pad_right(e.name, 34);
      if (!e.labels.empty()) os << "{" << e.labels << "} ";
      switch (e.kind) {
        case SnapshotEntry::Kind::Counter:
          os << num(e.value);
          break;
        case SnapshotEntry::Kind::Gauge:
          os << num(e.value);
          break;
        case SnapshotEntry::Kind::Histogram:
          os << "n=" << e.hist.count << " mean=" << num(e.hist.mean)
             << " p50=" << num(e.hist.p50) << " p99=" << num(e.hist.p99);
          break;
      }
      os << '\n';
    }
  }
  if (spans != nullptr && !spans->finished().empty()) {
    os << "  -- last spans --\n";
    const auto& fin = spans->finished();
    const std::size_t n = std::min(max_spans, fin.size());
    for (std::size_t i = fin.size() - n; i < fin.size(); ++i) {
      const Span& s = fin[i];
      os << "  #" << s.id;
      if (s.cause != 0) os << "<-#" << s.cause;
      os << " " << s.component << "/" << s.name << " " << s.outcome << " "
         << sim::to_string(s.duration());
      for (const std::string& note : s.notes) os << " {" << note << "}";
      os << '\n';
    }
  }
}

}  // namespace rdmamon::telemetry
