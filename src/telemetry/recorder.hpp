// Always-on flight recorder: fixed-size per-subsystem event rings cheap
// enough to leave enabled in every run, dumped as one merged,
// time-ordered JSON post-mortem when something goes wrong (an SLO alarm
// fires, a FaultInjector crash lands, or a test asserts).
//
// Design constraints mirror the registry's:
//
//  1. ZERO perturbation: recording never charges simulated CPU or touches
//     the event queue.
//  2. Zero allocation on the hot path: rings are preallocated vectors of
//     POD events; `kind` is a static string literal (callers pass
//     compile-time constants), so record() is a handful of stores.
//  3. Bounded: each ring overwrites its oldest event when full and counts
//     the overwrite, so a week-long run costs the same memory as a short
//     one and the dump says how much history it lost.
//  4. Deterministic: a global sequence number breaks same-instant ties,
//     so the merged dump of a seeded run is byte-identical across runs.
//
// Components cache a FlightRing* at wiring time (exactly like instrument
// pointers) and record through the null-tolerant fr_record helpers.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"
#include "util/json.hpp"

#ifndef RDMAMON_TELEMETRY_ENABLED
#define RDMAMON_TELEMETRY_ENABLED 1
#endif

namespace rdmamon::telemetry {

class FlightRecorder;

/// One recorded event. `a`, `b` and `x` are kind-specific scalars (node
/// ids, slot indices, byte counts, ages) — the dump labels them
/// generically and tools/flightdump.py knows the common kinds.
struct FlightEvent {
  sim::TimePoint at{};
  std::uint64_t seq = 0;    ///< global order tiebreak for same-instant events
  const char* kind = "";    ///< static string literal, e.g. "read.post"
  std::int64_t a = 0;
  std::int64_t b = 0;
  double x = 0.0;
};

/// One subsystem's bounded ring. Obtained from FlightRecorder::ring() at
/// wiring time; recording into it never allocates.
class FlightRing {
 public:
  /// Records at the recorder's bound clock instant.
  void record(const char* kind, std::int64_t a = 0, std::int64_t b = 0,
              double x = 0.0);
  /// Records with an explicit timestamp (completion paths that carry
  /// their own stamp).
  void record_at(sim::TimePoint at, const char* kind, std::int64_t a = 0,
                 std::int64_t b = 0, double x = 0.0);

  const std::string& name() const { return name_; }
  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const { return size_; }
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const { return dropped_; }

  /// Events oldest-first (test/dump convenience; copies).
  std::vector<FlightEvent> events() const;

 private:
  friend class FlightRecorder;
  FlightRecorder* owner_ = nullptr;
  std::string name_;
  std::vector<FlightEvent> buf_;
  std::size_t head_ = 0;  ///< next write position
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

/// The per-run recorder: owns every subsystem ring, merges them into one
/// time-ordered post-mortem document. One lives inside each
/// telemetry::Registry (Registry::recorder()).
class FlightRecorder {
 public:
  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Clock source; bound by Registry::install.
  void bind_clock(std::function<sim::TimePoint()> now) {
    now_ = std::move(now);
  }

  /// Master switch. Disabled rings drop events (counted nowhere — the
  /// point is measuring the recorder's own overhead against zero).
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Lookup-or-create the ring for `subsystem`. `capacity` applies only
  /// on creation. Returned pointer is stable for the recorder's lifetime.
  FlightRing* ring(std::string_view subsystem, std::size_t capacity = 512);

  /// Rings in name order (deterministic).
  std::vector<const FlightRing*> rings() const;

  std::uint64_t total_recorded() const { return seq_; }

  /// Merged dump: every ring's surviving events, sorted by (time, seq),
  /// plus per-ring loss accounting. `reason` says why the dump happened.
  util::JsonValue dump(std::string_view reason) const;

  /// Where post-mortems land. Resolution order: this setter, then the
  /// RDMAMON_FLIGHT_DIR environment variable; empty -> post-mortems are
  /// skipped (the always-on default costs nothing on disk).
  void set_postmortem_dir(std::string dir) { dir_ = std::move(dir); }

  /// Writes dump(reason) to `<dir>/flight_<reason>_<n>.json` (reason
  /// sanitised, n = per-run dump counter so repeated triggers never
  /// clobber). Returns the path written, or "" when no directory is
  /// configured or the write failed.
  std::string postmortem(std::string_view reason);

  /// Drops all events (not the rings) — test isolation.
  void clear();

 private:
  friend class FlightRing;
  sim::TimePoint now() const { return now_ ? now_() : sim::TimePoint{}; }

  std::function<sim::TimePoint()> now_;
  bool enabled_ = true;
  std::uint64_t seq_ = 0;
  // Sorted by name: ring listing and dump section order is deterministic.
  std::map<std::string, std::unique_ptr<FlightRing>, std::less<>> rings_;
  std::string dir_;
  std::uint64_t dumps_ = 0;
};

// --- hot-path record helpers (null-tolerant, compile-out capable) ----------

inline void fr_record(FlightRing* r, const char* kind, std::int64_t a = 0,
                      std::int64_t b = 0, double x = 0.0) noexcept {
#if RDMAMON_TELEMETRY_ENABLED
  if (r) r->record(kind, a, b, x);
#else
  (void)r; (void)kind; (void)a; (void)b; (void)x;
#endif
}

inline void fr_record_at(FlightRing* r, sim::TimePoint at, const char* kind,
                         std::int64_t a = 0, std::int64_t b = 0,
                         double x = 0.0) noexcept {
#if RDMAMON_TELEMETRY_ENABLED
  if (r) r->record_at(at, kind, a, b, x);
#else
  (void)r; (void)at; (void)kind; (void)a; (void)b; (void)x;
#endif
}

}  // namespace rdmamon::telemetry
