#include "telemetry/span.hpp"

namespace rdmamon::telemetry {

void SpanTracer::set_capacity(std::size_t cap) {
  capacity_ = cap;
  while (finished_.size() > capacity_) {
    finished_.pop_front();
    ++dropped_;
  }
}

SpanId SpanTracer::begin(std::string_view component, std::string_view name,
                         SpanId cause) {
  Span s;
  s.id = next_id_++;
  s.cause = cause.id;
  s.component = component;
  s.name = name;
  s.begin = now();
  ++started_;
  const std::uint64_t id = s.id;
  open_.emplace(id, std::move(s));
  return SpanId{id};
}

void SpanTracer::note(SpanId id, std::string text) {
  auto it = open_.find(id.id);
  if (it != open_.end()) it->second.notes.push_back(std::move(text));
}

void SpanTracer::end(SpanId id, std::string_view outcome) {
  auto it = open_.find(id.id);
  if (it == open_.end()) return;
  Span s = std::move(it->second);
  open_.erase(it);
  s.end = now();
  s.outcome = outcome;
  if (tracer_) {
    // Lazy mirror: the line is only built when the tracer would emit it.
    tracer_->debug("span", [&s] {
      std::string line = s.component;
      line += '/';
      line += s.name;
      line += " #";
      line += std::to_string(s.id);
      if (s.cause != 0) {
        line += "<-#";
        line += std::to_string(s.cause);
      }
      line += ' ';
      line += s.outcome;
      line += ' ';
      line += sim::to_string(s.duration());
      for (const std::string& n : s.notes) {
        line += " {";
        line += n;
        line += '}';
      }
      return line;
    });
  }
  finished_.push_back(std::move(s));
  if (finished_.size() > capacity_) {
    finished_.pop_front();
    ++dropped_;
  }
}

SpanId SpanTracer::event(std::string_view component, std::string_view name,
                         std::string note_text, SpanId cause) {
  const SpanId id = begin(component, name, cause);
  if (!note_text.empty()) note(id, std::move(note_text));
  end(id, "event");
  return id;
}

const Span* SpanTracer::find_finished(SpanId id) const {
  for (const Span& s : finished_) {
    if (s.id == id.id) return &s;
  }
  return nullptr;
}

void SpanTracer::clear() {
  open_.clear();
  finished_.clear();
  started_ = 0;
  dropped_ = 0;
}

}  // namespace rdmamon::telemetry
