// The telemetry plane's metrics registry: labelled counters, gauges and
// log-bucketed histograms (reusing sim::Histogram / sim::OnlineStats),
// plus the span tracer, bound to one simulation run.
//
// Design constraints, in order:
//
//  1. ZERO perturbation of the modelled system. Instruments never charge
//     simulated CPU or touch the event queue — recording a metric is a
//     wall-clock-only cost, so figure shapes (Figs 3-6) cannot move.
//  2. Zero-cost when disabled. Components cache instrument POINTERS at
//     wiring time; when no registry is installed the pointers stay null
//     and the inline record helpers below reduce to one branch — and when
//     the library is compiled with RDMAMON_TELEMETRY_ENABLED=0 they are
//     `if constexpr`-eliminated entirely (compile-time-checkable fast
//     path; see telemetry::kEnabled).
//  3. Lock-cheap. The simulator is single-threaded by construction, so
//     "lock-cheap" here is "lock-free": instruments are plain fields.
//  4. Deterministic export. Snapshots iterate a sorted instrument map, so
//     two runs with the same seed produce byte-identical dumps.
//
// Usage:
//   sim::Simulation simu;
//   telemetry::Registry reg;
//   reg.install(simu);                   // BEFORE wiring fabric/monitors
//   ... build and run the system ...
//   telemetry::Snapshot snap = reg.snapshot();
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/span.hpp"

#ifndef RDMAMON_TELEMETRY_ENABLED
#define RDMAMON_TELEMETRY_ENABLED 1
#endif

namespace rdmamon::telemetry {

class SloEngine;

/// Compile-time master switch. Building with
/// -DRDMAMON_TELEMETRY_ENABLED=0 turns every record helper into a
/// provable no-op (static_assert-checkable: `if constexpr` on this).
inline constexpr bool kEnabled = RDMAMON_TELEMETRY_ENABLED != 0;

/// Instrument labels: sorted key=value pairs. Construction sorts, so
/// {a=1,b=2} and {b=2,a=1} name the same instrument.
class Labels {
 public:
  Labels() = default;
  Labels(std::initializer_list<std::pair<std::string, std::string>> kv);

  Labels& add(std::string key, std::string value);

  const std::vector<std::pair<std::string, std::string>>& pairs() const {
    return kv_;
  }
  bool empty() const { return kv_.empty(); }

  /// Canonical `k1=v1,k2=v2` rendering (registry key + export format).
  std::string canonical() const;

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_ += n; }
  std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

/// Last-write-wins numeric level.
class Gauge {
 public:
  void set(double v) { v_ = v; }
  void add(double d) { v_ += d; }
  double value() const { return v_; }

 private:
  double v_ = 0.0;
};

/// Log-bucketed distribution (sim::Histogram layout: percentile error
/// under ~1.6%).
class HistogramMetric {
 public:
  void observe(double v) { h_.add(v); }
  void observe(sim::Duration d) { h_.add(d); }
  const sim::Histogram& histogram() const { return h_; }

 private:
  sim::Histogram h_;
};

/// Flattened percentile summary of one histogram at snapshot time.
struct HistogramSummary {
  std::uint64_t count = 0;
  double mean = 0.0, min = 0.0, max = 0.0;
  double p50 = 0.0, p90 = 0.0, p99 = 0.0;
};

/// One exported instrument value.
struct SnapshotEntry {
  enum class Kind { Counter, Gauge, Histogram };
  std::string name;
  std::string labels;  ///< canonical `k=v,...` ("" when unlabelled)
  Kind kind = Kind::Counter;
  double value = 0.0;       ///< counter / gauge
  HistogramSummary hist;    ///< histogram
};

/// A point-in-time, deterministic dump of every instrument.
struct Snapshot {
  sim::TimePoint at{};
  std::vector<SnapshotEntry> entries;

  /// First entry matching name (+ canonical labels, if non-empty);
  /// nullptr when absent. Linear scan — test/export convenience.
  const SnapshotEntry* find(std::string_view name,
                            std::string_view labels = "") const;
};

/// The metrics registry. One per simulation run; components resolve
/// instruments once at wiring time and record through the inline helpers.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;
  ~Registry();

  /// Binds this registry to `simu`: instruments timestamp from its clock
  /// and components wired afterwards find it via Registry::of.
  void install(sim::Simulation& simu);

  /// The registry installed on `simu`, or nullptr (telemetry off).
  /// Compiled out (always nullptr) when kEnabled is false.
  static Registry* of(sim::Simulation& simu) {
    if constexpr (kEnabled) {
      return simu.telemetry();
    } else {
      (void)simu;
      return nullptr;
    }
  }

  /// Instrument lookup-or-create. Same (name, labels) -> same instrument.
  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  HistogramMetric& histogram(std::string_view name, const Labels& labels = {});

  /// Registers a collect hook run at the START of every snapshot();
  /// collectors typically publish gauges from component-owned counters
  /// (e.g. NIC packet counts) so hot paths need no double bookkeeping.
  /// The callback must outlive the registry or be removed with the
  /// returned id via remove_collector (component destructors do this).
  std::uint64_t add_collector(std::function<void(Registry&)> fn);
  void remove_collector(std::uint64_t id);

  /// The span tracer sharing this registry's clock.
  SpanTracer& spans() { return spans_; }
  const SpanTracer& spans() const { return spans_; }

  /// The always-on flight recorder sharing this registry's clock.
  /// Components cache FlightRing pointers from it at wiring time.
  FlightRecorder& recorder() { return recorder_; }
  const FlightRecorder& recorder() const { return recorder_; }

  /// The SLO engine attached via SloEngine::install(), or nullptr (no
  /// SLOs declared). Components look up streams here and feed them.
  SloEngine* slo() { return slo_; }
  void set_slo(SloEngine* engine) { slo_ = engine; }

  /// Runs collectors, then flattens every instrument, sorted by
  /// (name, labels) — byte-deterministic for a deterministic run.
  Snapshot snapshot();

  std::size_t instrument_count() const { return instruments_.size(); }
  sim::TimePoint now() const { return simu_ ? simu_->now() : sim::TimePoint{}; }

 private:
  struct Instrument {
    SnapshotEntry::Kind kind;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<HistogramMetric> hist;
  };

  Instrument& resolve(std::string_view name, const Labels& labels,
                      SnapshotEntry::Kind kind);

  sim::Simulation* simu_ = nullptr;
  // Keyed by (name, canonical labels): map iteration order IS the
  // deterministic export order.
  std::map<std::pair<std::string, std::string>, Instrument> instruments_;
  std::vector<std::pair<std::uint64_t, std::function<void(Registry&)>>>
      collectors_;
  std::uint64_t next_collector_id_ = 1;
  SpanTracer spans_;
  FlightRecorder recorder_;
  SloEngine* slo_ = nullptr;
};

/// RAII collector registration, safe under either destruction order:
/// removal is skipped when the registry already un-installed itself from
/// the simulation (Registry's destructor clears the hook).
class ScopedCollector {
 public:
  ScopedCollector() = default;
  ScopedCollector(const ScopedCollector&) = delete;
  ScopedCollector& operator=(const ScopedCollector&) = delete;
  ~ScopedCollector() { release(); }

  /// Registers `fn` on the registry installed on `simu` (no-op when
  /// telemetry is off). May be re-bound; the previous hook is released.
  void bind(sim::Simulation& simu, std::function<void(Registry&)> fn);
  void release();

  bool bound() const { return reg_ != nullptr; }

 private:
  sim::Simulation* simu_ = nullptr;
  Registry* reg_ = nullptr;
  std::uint64_t id_ = 0;
};

// --- hot-path record helpers -----------------------------------------------
// All tolerate null instrument pointers (telemetry off) and compile to
// nothing when kEnabled is false.

inline void add(Counter* c, std::uint64_t n = 1) noexcept {
  if constexpr (kEnabled) {
    if (c) c->inc(n);
  } else {
    (void)c;
    (void)n;
  }
}

inline void set(Gauge* g, double v) noexcept {
  if constexpr (kEnabled) {
    if (g) g->set(v);
  } else {
    (void)g;
    (void)v;
  }
}

inline void observe(HistogramMetric* h, double v) noexcept {
  if constexpr (kEnabled) {
    if (h) h->observe(v);
  } else {
    (void)h;
    (void)v;
  }
}

inline void observe(HistogramMetric* h, sim::Duration d) noexcept {
  observe(h, static_cast<double>(d.ns));
}

// --- span helpers (null-registry tolerant) ---------------------------------

inline SpanId span_begin(Registry* r, std::string_view component,
                         std::string_view name, SpanId cause = {}) {
  if constexpr (kEnabled) {
    return r ? r->spans().begin(component, name, cause) : SpanId{};
  } else {
    (void)r;
    (void)component;
    (void)name;
    (void)cause;
    return SpanId{};
  }
}

inline void span_end(Registry* r, SpanId id, std::string_view outcome = "ok") {
  if constexpr (kEnabled) {
    if (r && id) r->spans().end(id, outcome);
  } else {
    (void)r;
    (void)id;
    (void)outcome;
  }
}

/// Instantaneous annotated span (fault events, health transitions).
inline void span_event(Registry* r, std::string_view component,
                       std::string_view name, std::string note,
                       SpanId cause = {}) {
  if constexpr (kEnabled) {
    if (r) r->spans().event(component, name, std::move(note), cause);
  } else {
    (void)r;
    (void)component;
    (void)name;
    (void)note;
    (void)cause;
  }
}

}  // namespace rdmamon::telemetry
