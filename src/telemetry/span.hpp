// Span tracing for the monitoring plane itself: begin/end pairs on the
// simulated clock with cause-linking (a retry attempt points at the fetch
// that spawned it; a scatter slot points at its round). Layered on
// sim::Tracer: when a tracer is bound, span ends emit one debug line
// through it — built lazily, so an unbound or disabled tracer costs one
// branch.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace rdmamon::telemetry {

/// Opaque span handle. id 0 = "no span" (telemetry off / dropped).
struct SpanId {
  std::uint64_t id = 0;
  explicit operator bool() const { return id != 0; }
};

/// One finished (or still-open) span.
struct Span {
  std::uint64_t id = 0;
  std::uint64_t cause = 0;  ///< parent/causing span id; 0 = root
  std::string component;    ///< "monitor", "scatter", "fault", ...
  std::string name;         ///< "fetch", "round", "attempt", ...
  sim::TimePoint begin{};
  sim::TimePoint end{};
  std::string outcome;      ///< "" while open; "ok"/"timeout"/... when done
  std::vector<std::string> notes;

  sim::Duration duration() const { return end - begin; }
};

/// Records spans into a bounded ring of finished spans (oldest dropped
/// first, so long runs stay bounded); open spans live in a side table
/// until end() is called.
class SpanTracer {
 public:
  /// Clock source (bound by Registry::install) and optional Tracer to
  /// mirror span ends into.
  void bind_clock(std::function<sim::TimePoint()> now) {
    now_ = std::move(now);
  }
  void mirror_to(sim::Tracer* tracer) { tracer_ = tracer; }

  /// Finished spans kept (default 4096); older ones are dropped.
  void set_capacity(std::size_t cap);

  SpanId begin(std::string_view component, std::string_view name,
               SpanId cause = {});
  /// Attaches a free-form note to an open span. No-op for unknown ids.
  void note(SpanId id, std::string text);
  /// Closes a span with `outcome`; moves it to the finished ring. No-op
  /// for unknown ids (e.g. a span evicted by capacity pressure).
  void end(SpanId id, std::string_view outcome = "ok");

  /// begin+note+end at one instant (point events: faults, transitions).
  SpanId event(std::string_view component, std::string_view name,
               std::string note_text, SpanId cause = {});

  const std::deque<Span>& finished() const { return finished_; }
  std::size_t open_count() const { return open_.size(); }
  std::uint64_t started() const { return started_; }
  std::uint64_t dropped() const { return dropped_; }

  /// Finished span with this id, or nullptr (test convenience).
  const Span* find_finished(SpanId id) const;

  void clear();

 private:
  sim::TimePoint now() const { return now_ ? now_() : sim::TimePoint{}; }

  std::function<sim::TimePoint()> now_;
  sim::Tracer* tracer_ = nullptr;
  std::size_t capacity_ = 4096;
  std::uint64_t next_id_ = 1;
  std::uint64_t started_ = 0;
  std::uint64_t dropped_ = 0;
  std::unordered_map<std::uint64_t, Span> open_;
  std::deque<Span> finished_;
};

}  // namespace rdmamon::telemetry
