#include "util/csv.hpp"

#include <cstdio>
#include <ostream>

namespace rdmamon::util {

std::string csv_escape(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    os_ << csv_escape(cells[i]);
  }
  os_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& cells, int digits) {
  char buf[64];
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    std::snprintf(buf, sizeof(buf), "%.*f", digits, cells[i]);
    os_ << buf;
  }
  os_ << '\n';
}

}  // namespace rdmamon::util
