#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/format.hpp"

namespace rdmamon::util {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
  aligns_.assign(header_.size(), Align::Right);
}

void Table::set_align(std::size_t col, Align align) {
  if (col >= aligns_.size()) aligns_.resize(col + 1, Align::Right);
  aligns_[col] = align;
}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(Row{std::move(row), false});
}

void Table::add_separator() { rows_.push_back(Row{{}, true}); }

void Table::print(std::ostream& os) const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());
  std::vector<std::size_t> widths(ncols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_)
    if (!r.separator) widen(r.cells);

  auto hline = [&] {
    os << '+';
    for (std::size_t i = 0; i < ncols; ++i)
      os << std::string(widths[i] + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string cell = i < cells.size() ? cells[i] : "";
      const Align a = i < aligns_.size() ? aligns_[i] : Align::Right;
      os << ' '
         << (a == Align::Left ? pad_right(cell, widths[i])
                              : pad_left(cell, widths[i]))
         << " |";
    }
    os << '\n';
  };

  hline();
  if (!header_.empty()) {
    emit(header_);
    hline();
  }
  for (const auto& r : rows_) {
    if (r.separator) {
      hline();
    } else {
      emit(r.cells);
    }
  }
  hline();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace rdmamon::util
