#include "util/chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/format.hpp"

namespace rdmamon::util {

namespace {
// Marker characters assigned to series in order of addition.
constexpr char kMarkers[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};
}  // namespace

AsciiChart::AsciiChart(std::string title, std::vector<std::string> x_labels)
    : title_(std::move(title)), x_labels_(std::move(x_labels)) {}

void AsciiChart::add_series(Series s) {
  if (s.ys.size() != x_labels_.size()) {
    throw std::invalid_argument("AsciiChart: series size != x label count");
  }
  series_.push_back(std::move(s));
}

void AsciiChart::set_height(int rows) { height_ = std::max(rows, 4); }

void AsciiChart::set_y_range(double lo, double hi) {
  fixed_range_ = true;
  y_lo_ = lo;
  y_hi_ = hi;
}

std::string AsciiChart::render() const {
  const std::size_t ncols = x_labels_.size();
  // Column width: widest label + 1 padding, at least 3.
  std::size_t colw = 3;
  for (const auto& l : x_labels_) colw = std::max(colw, l.size() + 1);

  double lo = 0.0, hi = 1.0;
  if (fixed_range_) {
    lo = y_lo_;
    hi = y_hi_;
  } else {
    lo = 0.0;
    hi = 0.0;
    bool any = false;
    for (const auto& s : series_) {
      for (double y : s.ys) {
        if (std::isnan(y)) continue;
        lo = any ? std::min(lo, y) : std::min(0.0, y);
        hi = any ? std::max(hi, y) : y;
        any = true;
      }
    }
    if (!any) hi = 1.0;
    if (hi == lo) hi = lo + 1.0;
  }

  const int h = height_;
  // grid[row][col] marker; row 0 = top.
  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(ncols * colw, ' '));
  for (std::size_t si = 0; si < series_.size(); ++si) {
    const char mark = kMarkers[si % sizeof(kMarkers)];
    for (std::size_t c = 0; c < ncols; ++c) {
      const double y = series_[si].ys[c];
      if (std::isnan(y)) continue;
      double frac = (y - lo) / (hi - lo);
      frac = std::clamp(frac, 0.0, 1.0);
      const int row = static_cast<int>(
          std::lround((1.0 - frac) * static_cast<double>(h - 1)));
      grid[static_cast<std::size_t>(row)][c * colw + colw / 2] = mark;
    }
  }

  std::ostringstream os;
  if (!title_.empty()) os << title_ << '\n';
  const std::size_t axisw = 10;
  for (int r = 0; r < h; ++r) {
    std::string label;
    // Put numeric labels on top, middle and bottom rows.
    if (r == 0) {
      label = format_double(hi, 2);
    } else if (r == h - 1) {
      label = format_double(lo, 2);
    } else if (r == h / 2) {
      label = format_double(lo + (hi - lo) * 0.5, 2);
    }
    os << pad_left(label, axisw) << " |" << grid[static_cast<std::size_t>(r)]
       << '\n';
  }
  os << pad_left("", axisw) << " +" << std::string(ncols * colw, '-') << '\n';
  os << pad_left("", axisw) << "  ";
  for (const auto& l : x_labels_) os << pad_right(l, colw);
  os << '\n';
  os << pad_left("", axisw) << "  legend:";
  for (std::size_t si = 0; si < series_.size(); ++si) {
    os << ' ' << kMarkers[si % sizeof(kMarkers)] << '=' << series_[si].name;
  }
  os << '\n';
  return os.str();
}

}  // namespace rdmamon::util
