// ASCII chart rendering: the bench binaries reproduce the paper's *figures*
// as terminal line/bar charts in addition to numeric tables.
#pragma once

#include <string>
#include <vector>

namespace rdmamon::util {

/// One named series of (x, y) samples for an AsciiChart.
struct Series {
  std::string name;
  std::vector<double> ys;  ///< one value per x-label (NaN = missing)
};

/// Renders multiple series against shared categorical x labels as a
/// fixed-height ASCII chart with a y-axis scale and a legend, e.g.:
///
///   120 |            C
///       |        C
///    60 |    C  s
///       | Cs s
///     0 +-----------------
///         1   4   16  64
///
/// Each series gets a distinct marker character. When two series collide on
/// a cell the later-added one wins (documented, deterministic).
class AsciiChart {
 public:
  AsciiChart(std::string title, std::vector<std::string> x_labels);

  /// Adds a series; `ys.size()` must equal the number of x labels.
  void add_series(Series s);

  /// Sets chart body height in rows (default 16, min 4).
  void set_height(int rows);

  /// Forces the y range; by default it spans [min(0,data), max(data)].
  void set_y_range(double lo, double hi);

  /// Renders the chart (title, body, x labels, legend) to a string.
  std::string render() const;

 private:
  std::string title_;
  std::vector<std::string> x_labels_;
  std::vector<Series> series_;
  int height_ = 16;
  bool fixed_range_ = false;
  double y_lo_ = 0.0, y_hi_ = 1.0;
};

}  // namespace rdmamon::util
