// Tiny CSV writer so every bench can optionally dump machine-readable
// series next to its ASCII output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rdmamon::util {

/// Streams rows of comma-separated values with RFC-4180-ish quoting.
/// The writer does not own the stream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  /// Writes one row; cells containing commas, quotes or newlines are quoted.
  void write_row(const std::vector<std::string>& cells);

  /// Convenience: writes a row of doubles with `digits` decimals.
  void write_row(const std::vector<double>& cells, int digits = 6);

 private:
  std::ostream& os_;
};

/// Quotes one CSV cell if needed (exposed for tests).
std::string csv_escape(const std::string& cell);

}  // namespace rdmamon::util
