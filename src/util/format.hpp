// Formatting helpers shared by tables, charts, benches and examples.
#pragma once

#include <cstdint>
#include <string>

namespace rdmamon::util {

/// Formats a nanosecond duration with an auto-selected unit
/// (e.g. "1.50us", "12.0ms", "3.2s"). Keeps three significant digits.
std::string format_duration_ns(std::int64_t ns);

/// Formats `value` as a percentage string with one decimal ("42.5%").
std::string format_percent(double fraction);

/// Formats a byte count with binary units ("1.5KiB", "3.0MiB").
std::string format_bytes(std::uint64_t bytes);

/// Formats a double with `digits` significant decimal places, trimming
/// trailing zeros ("3.14", "10").
std::string format_double(double value, int digits = 3);

/// Left-pads `s` with spaces to width `w` (no-op if already wider).
std::string pad_left(const std::string& s, std::size_t w);

/// Right-pads `s` with spaces to width `w`.
std::string pad_right(const std::string& s, std::size_t w);

}  // namespace rdmamon::util
