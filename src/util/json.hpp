// Minimal JSON document builder + writer. Enough for machine-readable
// bench reports and telemetry snapshots: objects keep insertion order so
// emitted files are deterministic and diff-friendly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace rdmamon::util {

/// A JSON value: null, bool, number, string, array or object. Built
/// imperatively (`v["key"] = 3.5; v["rows"].push_back(...)`) and written
/// with `dump()`. Object keys keep insertion order.
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;
  JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
  JsonValue(double d) : kind_(Kind::Number), num_(d) {}
  JsonValue(int i) : kind_(Kind::Number), num_(i) {}
  JsonValue(std::int64_t i) : kind_(Kind::Number), num_(static_cast<double>(i)) {}
  JsonValue(std::uint64_t u) : kind_(Kind::Number), num_(static_cast<double>(u)) {}
  JsonValue(const char* s) : kind_(Kind::String), str_(s) {}
  JsonValue(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }

  /// Object access; creates the member (and coerces a Null value to an
  /// object) if absent.
  JsonValue& operator[](const std::string& key);

  /// Array append; coerces a Null value to an array.
  JsonValue& push_back(JsonValue v);

  std::size_t size() const {
    return kind_ == Kind::Array ? items_.size() : members_.size();
  }

  /// Serialises with `indent` spaces per level (0 = compact single line).
  std::string dump(int indent = 2) const;

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> items_;                               // Array
  std::vector<std::pair<std::string, JsonValue>> members_;     // Object
};

/// Escapes a string for inclusion in a JSON document (adds no quotes).
std::string json_escape(const std::string& s);

}  // namespace rdmamon::util
