#include "util/format.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace rdmamon::util {

namespace {

std::string trim_zeros(std::string s) {
  if (s.find('.') == std::string::npos) return s;
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

}  // namespace

std::string format_duration_ns(std::int64_t ns) {
  const bool neg = ns < 0;
  double v = static_cast<double>(neg ? -ns : ns);
  const char* unit = "ns";
  if (v >= 1e9) {
    v /= 1e9;
    unit = "s";
  } else if (v >= 1e6) {
    v /= 1e6;
    unit = "ms";
  } else if (v >= 1e3) {
    v /= 1e3;
    unit = "us";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g%s", v, unit);
  std::string out = buf;
  return neg ? "-" + out : out;
}

std::string format_percent(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> units = {"B", "KiB", "MiB",
                                                       "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  std::size_t u = 0;
  while (v >= 1024.0 && u + 1 < units.size()) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%llu%s",
                  static_cast<unsigned long long>(bytes), units[u]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, units[u]);
  }
  return buf;
}

std::string format_double(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return trim_zeros(buf);
}

std::string pad_left(const std::string& s, std::size_t w) {
  if (s.size() >= w) return s;
  return std::string(w - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t w) {
  if (s.size() >= w) return s;
  return s + std::string(w - s.size(), ' ');
}

}  // namespace rdmamon::util
