// ASCII table printer used by the benchmark harness to reproduce the
// paper's tables in a terminal-friendly format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rdmamon::util {

/// Column alignment inside a Table.
enum class Align { Left, Right };

/// A simple text table: add a header once, then rows; `print` sizes each
/// column to its widest cell. Used by every bench binary so the reproduced
/// tables/figures share one look.
class Table {
 public:
  /// Sets the header row. Resets alignment to Right for all columns.
  void set_header(std::vector<std::string> header);

  /// Overrides the alignment of column `col` (default Right).
  void set_align(std::size_t col, Align align);

  /// Appends a data row; may have fewer cells than the header.
  void add_row(std::vector<std::string> row);

  /// Inserts a horizontal separator line before the next row.
  void add_separator();

  /// Renders the table to `os`.
  void print(std::ostream& os) const;

  /// Renders the table to a string (for tests).
  std::string to_string() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

}  // namespace rdmamon::util
