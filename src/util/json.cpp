#include "util/json.hpp"

#include <cmath>
#include <cstdio>

namespace rdmamon::util {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string format_number(double d) {
  if (!std::isfinite(d)) return "null";  // JSON has no inf/nan
  // Integers print without a fraction so counters stay exact-looking.
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", d);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", d);
  return buf;
}

}  // namespace

JsonValue& JsonValue::operator[](const std::string& key) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  for (auto& [k, v] : members_) {
    if (k == key) return v;
  }
  members_.emplace_back(key, JsonValue{});
  return members_.back().second;
}

JsonValue& JsonValue::push_back(JsonValue v) {
  if (kind_ == Kind::Null) kind_ = Kind::Array;
  items_.push_back(std::move(v));
  return items_.back();
}

void JsonValue::write(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent) *
                            static_cast<std::size_t>(depth + 1),
                        ' ');
  const std::string close_pad(
      static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Number: out += format_number(num_); break;
    case Kind::String:
      out += '"';
      out += json_escape(str_);
      out += '"';
      break;
    case Kind::Array: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (indent > 0) out += pad;
        items_[i].write(out, indent, depth + 1);
        if (i + 1 < items_.size()) out += ',';
        out += nl;
      }
      if (indent > 0) out += close_pad;
      out += ']';
      break;
    }
    case Kind::Object: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (indent > 0) out += pad;
        out += '"';
        out += json_escape(members_[i].first);
        out += indent > 0 ? "\": " : "\":";
        members_[i].second.write(out, indent, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += nl;
      }
      if (indent > 0) out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

}  // namespace rdmamon::util
