// Per-backend push-vs-pull mode selection (the tentpole's hybrid). The
// controller watches two signals per backend and per decision epoch:
//
//  - the observed change rate χ (significant load movements per second:
//    non-heartbeat pushes consumed while in push mode, threshold-crossing
//    samples while in pull mode), from which it projects the push scheme's
//    fabric cost  push_Bps = push_bytes · (χ + 1/heartbeat);
//  - the pull scheme's fixed cost  pull_Bps = pull_bytes / poll period,
//    plus the observed worst staleness, which can veto push outright when
//    a staleness SLO is configured.
//
// It switches a backend only when the other mode is cheaper by the
// hysteresis factor for `dwell_epochs` consecutive epochs AND `min_dwell`
// has elapsed since that backend's last switch — so the switch rate is
// bounded by 1/min_dwell per backend by construction (the flap-freedom
// the property suite asserts). Everything runs on the simulated clock
// from simulated events: decisions are deterministic and never read the
// telemetry plane (which may be compiled out).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "os/procfs.hpp"
#include "sim/time.hpp"

namespace rdmamon::monitor {

/// How a balancer refreshes one backend's sample.
enum class FetchMode { Pull, Push };

/// Scheme selection for a push-capable balancer.
enum class MonitorStrategy {
  Pull,      ///< classic polling only (the paper's schemes)
  Push,      ///< inbox scanning only, READ verification on silence
  Adaptive,  ///< per-backend controller picks Pull or Push
};

const char* to_string(FetchMode m);
const char* to_string(MonitorStrategy s);

struct AdaptiveConfig {
  /// Decision epoch: rates are measured and compared once per epoch.
  sim::Duration epoch = sim::msec(100);
  /// The candidate mode must be cheaper by this factor to be preferred.
  double hysteresis = 1.3;
  /// Consecutive epochs the candidate must stay preferred.
  int dwell_epochs = 2;
  /// Floor between switches of one backend (the hard flap bound).
  sim::Duration min_dwell = sim::msec(500);
  /// change_delta() threshold counted as "the load moved" in pull mode —
  /// keep equal to PushConfig::change_threshold so both modes estimate
  /// the same χ.
  double change_threshold = 0.05;
  /// Wire bytes of one pull fetch (request + reply) and one push WRITE
  /// (request+payload + ack) — the cost model's per-op constants.
  std::size_t pull_bytes = 32 + 256;
  std::size_t push_bytes = 32 + 256 + 32;
  /// The balancer's poll granularity (pull cost denominator).
  sim::Duration pull_period = sim::msec(50);
  /// The publisher's heartbeat ceiling (push cost floor).
  sim::Duration push_heartbeat = sim::msec(100);
  /// Worst observed push-path staleness above this forces Pull for the
  /// backend regardless of bytes. 0 disables the veto.
  sim::Duration staleness_slo{};
  /// Mode every backend starts in.
  FetchMode initial = FetchMode::Pull;
};

class AdaptiveController {
 public:
  AdaptiveController(AdaptiveConfig cfg, int backends);

  FetchMode mode(std::size_t i) const { return st_[i].mode; }
  const AdaptiveConfig& config() const { return cfg_; }

  /// Observer of committed mode switches (runs inside tick()). The
  /// balancer forwards these so publishers can be paused/resumed.
  void on_switch(std::function<void(std::size_t, FetchMode)> cb) {
    switch_cbs_.push_back(std::move(cb));
  }

  // --- event feed (called by the balancer's poller) -------------------------
  /// A pull fetch of backend `i` succeeded with `info`.
  void on_pull_sample(std::size_t i, const os::LoadSnapshot& info);
  /// A Fresh inbox image of backend `i` was consumed.
  void on_push_fresh(std::size_t i, bool heartbeat, sim::Duration staleness);

  /// Epoch driver: call once per poll round with the simulated now.
  /// Processes a decision epoch when one has elapsed.
  void tick(sim::TimePoint now);

  // --- introspection --------------------------------------------------------
  std::uint64_t switches(std::size_t i) const { return st_[i].switches; }
  std::uint64_t total_switches() const;
  /// Last epoch's projected costs for backend `i` (bytes/sec).
  double est_push_bps(std::size_t i) const { return st_[i].est_push_bps; }
  double est_pull_bps() const;

 private:
  struct State {
    FetchMode mode = FetchMode::Pull;
    // Current-epoch accumulators.
    std::uint64_t pull_samples = 0;
    std::uint64_t pull_changes = 0;
    std::uint64_t push_fresh = 0;       ///< non-heartbeat
    std::uint64_t push_heartbeats = 0;
    sim::Duration worst_staleness{};
    bool has_prev = false;
    os::LoadSnapshot prev;              ///< last pulled snapshot (χ in pull mode)
    // Decision state.
    FetchMode candidate = FetchMode::Pull;
    int candidate_epochs = 0;
    sim::TimePoint last_switch{};
    std::uint64_t switches = 0;
    double est_push_bps = 0.0;
  };

  void decide(std::size_t i, sim::TimePoint now, double epoch_sec);

  AdaptiveConfig cfg_;
  std::vector<State> st_;
  std::vector<std::function<void(std::size_t, FetchMode)>> switch_cbs_;
  bool epoch_armed_ = false;
  sim::TimePoint epoch_start_{};
};

}  // namespace rdmamon::monitor
