// Meta-monitoring: the monitoring plane applied to ITSELF. The front end
// publishes its own telemetry snapshot into a registered memory region on
// its NIC, refreshed by a publisher thread every `period` — exactly the
// paper's RDMA-Async scheme, with the front end in the back-end role and
// the telemetry snapshot as the "load information". Any node can then
// fetch the front end's health (fetch outcome counters, staleness
// percentiles, dispatcher totals, ...) with a one-sided READ that costs
// the front end no CPU — so the monitor stays observable even when the
// front end's host is saturated or its kernel is frozen.
#pragma once

#include <cstdint>

#include "net/fabric.hpp"
#include "net/verbs.hpp"
#include "os/node.hpp"
#include "telemetry/registry.hpp"

namespace rdmamon::monitor {

struct SelfMonitorConfig {
  /// Publisher refresh period (the scheme's T).
  sim::Duration period = sim::msec(50);
  /// Registered-region size: what a wire-format snapshot would occupy.
  /// Remote READs of the region are charged for this many bytes.
  std::size_t slot_bytes = 4096;
  /// CPU charged per refresh (snapshot walk + serialisation into the
  /// registered buffer). The telemetry registry itself never charges
  /// simulated time; the PUBLISHER is a real thread doing real work,
  /// like any RDMA-Async back-end calc thread.
  sim::Duration publish_cost = sim::usec(5);
};

/// Publishes a registry's snapshot through a registered MR on `owner`'s
/// NIC. Readers on other nodes READ it one-sided:
///
///   net::QueuePair qp{fabric.nic(reader.id), meta.node_id(), cq};
///   co_await net::rdma_read_sync(self, qp, meta.mr_key(),
///                                meta.config().slot_bytes, c);
///   auto snap = std::any_cast<telemetry::Snapshot>(c.data);
class TelemetrySelfMonitor {
 public:
  TelemetrySelfMonitor(net::Fabric& fabric, os::Node& owner,
                       telemetry::Registry& reg,
                       SelfMonitorConfig cfg = {});

  TelemetrySelfMonitor(const TelemetrySelfMonitor&) = delete;
  TelemetrySelfMonitor& operator=(const TelemetrySelfMonitor&) = delete;

  /// The rkey remote readers target.
  net::MrKey mr_key() const { return mr_key_; }
  /// The node whose NIC serves the region.
  int node_id() const { return owner_->id; }
  const SelfMonitorConfig& config() const { return cfg_; }

  /// Refreshes published so far.
  std::uint64_t published() const { return published_; }
  /// The snapshot currently in the registered region (what a remote READ
  /// arriving now would sample).
  const telemetry::Snapshot& latest() const { return slot_; }

  /// Kills the publisher thread (the region keeps serving its last
  /// contents — the frozen-host regime).
  void stop();

 private:
  os::Program publisher_body(os::SimThread& self);

  os::Node* owner_;
  telemetry::Registry* reg_;
  SelfMonitorConfig cfg_;
  telemetry::Snapshot slot_;  ///< the registered region's logical content
  net::MrKey mr_key_{};
  std::uint64_t published_ = 0;
  os::SimThread* publisher_ = nullptr;
};

}  // namespace rdmamon::monitor
