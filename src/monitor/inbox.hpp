// Push-based monitoring over one-sided RDMA WRITE (ROADMAP item 1): the
// pull model inverted. Each back end WRITEs its load snapshot into its own
// slot of a front-end-registered inbox region; the front end only *scans
// local memory* — no doorbell, no wire round-trip, no back-end reporting
// daemon serving requests.
//
// The trade RFP (PAPERS.md) quantifies: an in-bound READ costs the front
// end a full fabric round-trip per backend per poll whether or not
// anything changed; an out-bound WRITE costs fabric bytes only when the
// *back end* decides the value moved. Below the poll rate's change rate,
// push wins on fabric bytes; above it, pull's fixed budget wins. The
// AdaptiveController (adaptive.hpp) switches per backend on that signal.
//
// Torn/stale-write defence: the writer is a remote DMA engine with no
// locks, so the slot uses a seqlock-style double stamp — `seq` at the
// head, `seq_check` at the tail of the slot image. A reader accepts a slot
// only when both match (untorn) AND the sequence advanced past the last
// consumed one (no time travel from reordered or replayed writes).
#pragma once

#include <any>
#include <cstdint>
#include <optional>
#include <vector>

#include "monitor/monitor.hpp"
#include "net/fabric.hpp"
#include "net/nic.hpp"
#include "net/verbs.hpp"
#include "os/node.hpp"
#include "telemetry/recorder.hpp"

namespace rdmamon::monitor {

/// Normalised magnitude of the difference between two snapshots: the max
/// over the load-index components, each scaled to [0,1] with the same
/// capacities the balancer's index uses. This is the shared "did the load
/// move" yardstick of the push trigger (publisher side) and the adaptive
/// controller's change-rate estimate (front-end side) — both sides must
/// agree on it or the controller mispredicts push traffic.
double change_delta(const os::LoadSnapshot& a, const os::LoadSnapshot& b);

/// One inbox slot as it lies in the front end's registered region.
struct InboxSlot {
  std::uint64_t seq = 0;  ///< seqlock head stamp
  os::LoadSnapshot info;
  sim::TimePoint pushed_at{};  ///< back-end clock at WRITE post
  bool heartbeat = false;      ///< pushed by the max_interval timer, not a change
  std::uint64_t seq_check = 0; ///< seqlock tail stamp; == seq when untorn
};

/// Payload of one inbox WRITE: which slot, and its full new image. The
/// writer callback overwrites the slot blindly — the raw-memory semantics
/// of a real RDMA WRITE; all validation is reader-side.
struct InboxWrite {
  int slot = -1;
  InboxSlot value;
};

/// Front-end side: one remote-writable MR holding N slots, plus the
/// scanning discipline (seqlock check + consumed-sequence tracking).
class PushInbox {
 public:
  PushInbox(net::Fabric& fabric, os::Node& frontend, int slots,
            std::size_t slot_bytes = 256);

  net::MrKey mr_key() const { return key_; }
  int slots() const { return static_cast<int>(slots_.size()); }
  std::size_t slot_bytes() const { return slot_bytes_; }
  os::Node& node() { return *frontend_; }

  /// What one scan of a slot observed.
  enum class ScanResult {
    Empty,      ///< never written
    Unchanged,  ///< no new sequence since the last consuming scan
    Fresh,      ///< new, untorn image consumed; `out` filled
    Torn,       ///< seq != seq_check: write raced the scan; discarded
    Regressed,  ///< sequence went backwards (reordered/replayed write)
  };
  static const char* to_string(ScanResult r);

  /// Scans slot `i`. On Fresh, `out` is a successful MonitorSample whose
  /// retrieved_at is now (the scan instant) — staleness then measures the
  /// push pipeline end to end, exactly like a fetched sample would — and
  /// `heartbeat` (if non-null) says whether the image was timer-pushed
  /// rather than change-pushed (the adaptive change-rate estimate needs
  /// the distinction). Torn and Regressed images are never consumed: the
  /// slot's consumed sequence only advances on Fresh, so a later good
  /// write still lands.
  ScanResult scan(int i, MonitorSample& out, bool* heartbeat = nullptr);

  /// Simulated instant of the last Fresh consumption of slot `i` (the
  /// inbox creation time before any). Silence — now minus this exceeding
  /// the publisher's heartbeat bound — is the balancer's cue to fall back
  /// to a verification READ before advancing the health ladder.
  sim::TimePoint last_fresh(int i) const { return last_fresh_[static_cast<std::size_t>(i)]; }

  /// Tears down the MR (front-end shutdown / shard handoff). WRITEs
  /// already in flight complete at the writer with InvalidKey — the
  /// dereg-vs-late-completion path net_test pins down.
  void deregister();
  bool deregistered() const { return deregistered_; }

  // --- introspection --------------------------------------------------------
  std::uint64_t writes_applied() const { return writes_applied_; }
  std::uint64_t fresh() const { return fresh_; }
  std::uint64_t torn() const { return torn_; }
  std::uint64_t regressed() const { return regressed_; }

  /// Test hook: plants a raw slot image (e.g. a deliberately torn one —
  /// the fault the seqlock exists for, which the in-order simulated fabric
  /// never produces on its own).
  void poke(int i, const InboxSlot& s) { slots_[static_cast<std::size_t>(i)] = s; }

 private:
  os::Node* frontend_;
  net::Nic* nic_;
  net::MrKey key_{};
  std::size_t slot_bytes_;
  bool deregistered_ = false;
  std::vector<InboxSlot> slots_;
  std::vector<std::uint64_t> consumed_;   ///< last consumed seq per slot
  std::vector<sim::TimePoint> last_fresh_;
  std::uint64_t writes_applied_ = 0;
  std::uint64_t fresh_ = 0;
  std::uint64_t torn_ = 0;
  std::uint64_t regressed_ = 0;
  /// Flight ring for consumed/rejected slot images ("inbox.<frontend>");
  /// Empty/Unchanged scans are NOT recorded — they would drown the
  /// interesting history at scanner rates.
  telemetry::FlightRing* fr_ = nullptr;
};

/// Push-trigger tuning (back-end side).
struct PushConfig {
  /// How often the publisher daemon wakes to sample /proc and decide.
  sim::Duration check_period = sim::msec(5);
  /// Floor between change-triggered pushes (burst damping).
  sim::Duration min_interval = sim::msec(5);
  /// Heartbeat ceiling: a push goes out at least this often even with no
  /// change, so inbox silence is a bounded-delay death signal.
  sim::Duration max_interval = sim::msec(100);
  /// change_delta() vs the last pushed snapshot that triggers a push.
  double change_threshold = 0.05;
  /// Slot image size on the wire.
  std::size_t slot_bytes = 256;
};

/// Back-end side: a daemon that samples /proc every check_period and
/// RDMA-WRITEs the snapshot into its inbox slot when it moved by more than
/// change_threshold (rate-limited by min_interval) or the max_interval
/// heartbeat is due. At most one WRITE in flight, so sequence numbers
/// arrive in order on the in-order RC fabric.
///
/// Failure semantics mirror the pull schemes': a crashed peer (or this
/// node itself crashed — the crashed-initiator case) error-completes the
/// WRITE with RetryExceeded after the retry timeout; the publisher absorbs
/// the error, drops its change baseline (so the next decision pushes
/// unconditionally) and keeps going. InvalidKey (inbox deregistered, e.g.
/// mid shard handoff) is counted separately and handled the same way —
/// retargeting installs the new inbox.
class PushPublisher {
 public:
  PushPublisher(net::Fabric& fabric, os::Node& backend, PushConfig cfg);

  /// Points this publisher at `slot` of the inbox keyed `inbox_key` on
  /// `frontend_node`. May be called again later (shard migration): the
  /// next decision pushes to the new owner unconditionally.
  void target(int frontend_node, net::MrKey inbox_key, int slot);

  /// Spawns the publisher daemon (idempotent).
  void start();
  /// Kills the daemon (tear-down).
  void stop();

  /// Quiesces pushing without killing the daemon — the adaptive
  /// controller's "this back end is in pull mode now" signal (delivered
  /// by the same omniscient wiring as target(); a real cluster would
  /// carry it in a control message). The daemon keeps reaping
  /// completions; resume() drops the baseline so data flows again on the
  /// very next check.
  void pause() { paused_ = true; }
  void resume() {
    if (!paused_) return;
    paused_ = false;
    has_baseline_ = false;
  }
  bool paused() const { return paused_; }

  os::Node& node() { return *backend_; }
  const PushConfig& config() const { return cfg_; }
  int slot() const { return slot_; }

  // --- introspection --------------------------------------------------------
  std::uint64_t pushes() const { return pushes_; }
  std::uint64_t heartbeats() const { return heartbeats_; }
  std::uint64_t errors() const { return errors_; }
  std::uint64_t invalid_key() const { return invalid_key_; }
  std::uint64_t retargets() const { return retargets_; }

 private:
  os::Program body(os::SimThread& self);

  net::Fabric* fabric_;
  os::Node* backend_;
  PushConfig cfg_;
  net::CompletionQueue cq_;
  std::optional<net::QueuePair> qp_;
  int target_node_ = -1;
  net::MrKey inbox_key_{};
  int slot_ = -1;
  os::SimThread* thread_ = nullptr;
  std::uint64_t seq_ = 0;
  bool paused_ = false;
  bool in_flight_ = false;
  bool has_baseline_ = false;
  bool has_pushed_ = false;
  os::LoadSnapshot baseline_;
  sim::TimePoint last_push_{};
  std::uint64_t pushes_ = 0;
  std::uint64_t heartbeats_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t invalid_key_ = 0;
  std::uint64_t retargets_ = 0;
};

}  // namespace rdmamon::monitor
