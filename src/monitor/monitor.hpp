// The monitoring service itself: back-end side (daemons / registered
// regions per scheme) and front-end side (the fetch primitive). This is
// the paper's primary contribution, built on the os/net substrates.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "monitor/scheme.hpp"
#include "net/fabric.hpp"
#include "net/nic.hpp"
#include "net/socket.hpp"
#include "net/verbs.hpp"
#include "os/node.hpp"
#include "os/procfs.hpp"
#include "telemetry/registry.hpp"

namespace rdmamon::monitor {

/// Tuning for one monitoring channel.
struct MonitorConfig {
  Scheme scheme = Scheme::RdmaSync;
  /// T: the async schemes' back-end update period (the paper uses 50 ms
  /// unless stated otherwise).
  sim::Duration period = sim::msec(50);
  std::size_t request_bytes = 64;   ///< socket load-request size
  std::size_t reply_bytes = 256;    ///< load-info record size on the wire

  /// Failure handling: one fetch attempt that has not completed after
  /// this long is abandoned (FetchError::Timeout). <= 0 disables the
  /// deadline (pre-fault behaviour: wait forever). The default is far
  /// above any healthy-path latency so fault-free experiments are
  /// unaffected.
  sim::Duration fetch_timeout = sim::msec(200);
  /// Extra attempts after a failed first one (bounded retry).
  int fetch_retries = 2;
  /// Backoff before retry k (1-based) is retry_backoff * 2^(k-1) —
  /// deterministic exponential backoff, no jitter, so runs replay.
  sim::Duration retry_backoff = sim::msec(2);

  /// Tenant identity of the monitoring plane itself: stamped on the
  /// channel's QP contexts and registered regions so fabric QoS can
  /// protect (or account) monitoring traffic like any other tenant's.
  /// Default 0: the system plane, exempt from per-tenant specs.
  net::TenantId tenant = 0;
};

/// Why a fetch came back without data.
enum class FetchError {
  None,       ///< ok == true
  Timeout,    ///< no reply/completion within fetch_timeout (all attempts)
  Transport,  ///< the fabric error-completed the op (dead peer, loss)
};

inline const char* to_string(FetchError e) {
  switch (e) {
    case FetchError::None: return "none";
    case FetchError::Timeout: return "timeout";
    case FetchError::Transport: return "transport";
  }
  return "?";
}

/// One load reading obtained by the front end, with the timing needed for
/// the latency/staleness/accuracy analyses.
struct MonitorSample {
  os::LoadSnapshot info;
  sim::TimePoint requested_at{};
  sim::TimePoint retrieved_at{};
  bool ok = false;
  FetchError error = FetchError::None;  ///< set when ok == false
  int attempts = 0;  ///< fetch attempts spent (1 on the happy path)

  /// Front-end observed fetch latency.
  sim::Duration latency() const { return retrieved_at - requested_at; }
  /// Age of the data at retrieval (asynchrony + transport delay).
  sim::Duration staleness() const {
    return retrieved_at - info.computed_at;
  }
};

/// Back-end half: spawns the scheme's daemon threads (if any) and/or
/// registers the scheme's memory region on the back-end NIC.
class BackendMonitor {
 public:
  BackendMonitor(net::Fabric& fabric, os::Node& backend, MonitorConfig cfg);
  ~BackendMonitor();

  BackendMonitor(const BackendMonitor&) = delete;
  BackendMonitor& operator=(const BackendMonitor&) = delete;

  /// Socket schemes: attaches a server endpoint and spawns a reporting
  /// thread serving requests from it. Must be called before the
  /// simulation runs. May be called once per monitoring front end — a
  /// back end shared by M front-ends serves M connections with M
  /// reporting threads, exactly how a real per-connection accept loop
  /// would scale.
  void bind_socket(net::Socket& server_end);

  /// RDMA schemes: the rkey the front end reads.
  net::MrKey mr_key() const { return mr_key_; }

  /// Kills the back-end daemon threads (tear-down in sweep experiments).
  void stop();

  os::Node& node() { return backend_; }
  const MonitorConfig& config() const { return cfg_; }

 private:
  net::Fabric& fabric_;
  os::Node& backend_;
  MonitorConfig cfg_;
  os::LoadSnapshot slot_;  ///< user-space shared location (async schemes)
  net::MrKey mr_key_{};
  os::SimThread* calc_thread_ = nullptr;
  std::vector<os::SimThread*> report_threads_;  ///< one per bound socket
};

/// Front-end half: issues fetches against one back end.
///
/// The fetch path is an async issue/complete split: issue() (or
/// prepare_read() + a batched post) starts one bounded attempt without
/// waiting, peek() checks non-blockingly whether it resolved, complete()
/// consumes the resolution (paying receive-side costs), and abandon()
/// gives up on an attempt past its deadline. The classic blocking fetch()
/// is a thin wrapper over these halves, so sequential and scatter-gather
/// callers share one set of per-attempt semantics.
class FrontendMonitor {
 public:
  /// One in-flight fetch attempt created by issue()/prepare_read().
  struct FetchOp {
    std::uint64_t wr_id = 0;     ///< RDMA: CQ demux key (CQ-unique)
    sim::TimePoint deadline{};   ///< this attempt's give-up instant
  };

  /// Non-blocking resolution state of an attempt.
  enum class OpStatus {
    Pending,    ///< nothing arrived yet
    Ok,         ///< reply/completion ready for complete()
    Transport,  ///< RDMA error completion ready for complete()
  };

  /// `client_end` is required for socket schemes, ignored for RDMA ones.
  /// `ctx` (RDMA only) posts this monitor's READs through a shared
  /// QpContext (DCT-style multiplexing + signal-every-k; see
  /// net::VerbsTuning); null keeps a dedicated per-channel context.
  FrontendMonitor(net::Fabric& fabric, os::Node& frontend,
                  BackendMonitor& backend, net::Socket* client_end,
                  std::shared_ptr<net::QpContext> ctx = nullptr);

  /// Subprogram: one load fetch; fills `out`. Socket schemes do a
  /// request/response over the monitoring connection; RDMA schemes do a
  /// one-sided READ (kernel region for *-Sync, user region for Async).
  ///
  /// Failure-resilient: each attempt is bounded by cfg.fetch_timeout and
  /// retried up to cfg.fetch_retries times with exponential backoff, so
  /// the subprogram ALWAYS resolves — `out.ok` plus `out.error` say how.
  os::Program fetch(os::SimThread& self, MonitorSample& out);

  // --- issue/complete halves (the scatter engine's interface) -----------

  /// Subprogram: issues one attempt, paying the issue-side CPU costs
  /// (doorbell for RDMA; request send — after flushing stale replies —
  /// for sockets) and returns without waiting.
  os::Program issue(os::SimThread& self, FetchOp& op, sim::TimePoint deadline);

  /// RDMA only: readies an attempt for a merged multi-READ post. Allocates
  /// the wr_id and fills the batch entry; the caller posts the batch via
  /// net::post_read_batch, paying one doorbell for many attempts.
  net::ReadBatchEntry prepare_read(FetchOp& op, sim::TimePoint deadline);

  /// Non-blocking: has this attempt resolved?
  OpStatus peek(const FetchOp& op) const;

  /// Subprogram: consumes a resolved attempt (peek() != Pending), paying
  /// the receive-side costs (socket recv syscall + copy; RDMA completions
  /// are free to reap). Fills out.ok / out.error / out.info — never
  /// retrieved_at or attempts, which belong to the retry loop driving it.
  os::Program complete(os::SimThread& self, FetchOp& op, MonitorSample& out,
                       OpStatus status);

  /// Abandons an attempt past its deadline. RDMA: the wr_id is forgotten
  /// at the CQ, which discards the late completion centrally. Sockets: a
  /// late reply stays queued and is flushed by the next issue().
  void abandon(FetchOp& op);

  /// Wait channel that is notified whenever an attempt of this monitor
  /// may have resolved (the bound CQ for RDMA, the socket rx queue for
  /// socket schemes). Spurious wakeups possible; re-peek after waking.
  os::WaitQueue& completion_wait_queue();

  /// Joins a shared completion channel (a scatter engine's CQ): RDMA QPs
  /// re-point their completions at `shared`; socket replies additionally
  /// notify `shared`'s wait queue. Call with no attempt in flight.
  void bind_completion_channel(net::CompletionQueue& shared);

  /// Telemetry: records one resolved fetch (latency/staleness histograms,
  /// outcome + retry counters, labeled by scheme and back-end node). The
  /// retry loop in fetch() calls this; scatter rounds call it per slot so
  /// both drivers feed the same instruments. No-op without a registry.
  void record_sample(const MonitorSample& s);

  bool is_rdma_transport() const { return qp_.has_value(); }
  const MonitorConfig& config() const { return backend_->config(); }
  Scheme scheme() const { return backend_->config().scheme; }
  int backend_node_id() const { return backend_->node().id; }

  /// Ground truth at this instant, straight from the back end's kernel
  /// (the paper's fine-grained kernel module). For accuracy analysis only.
  os::LoadSnapshot ground_truth() const {
    return backend_->node().procfs().snapshot();
  }

 private:
  /// Waits (with a deadline timer) until the attempt resolves or expires;
  /// sets out.ok / out.error. The blocking half of fetch().
  os::Program await_resolution(os::SimThread& self, FetchOp& op,
                               MonitorSample& out);

  /// Caches instrument pointers on first use (no-op without a registry).
  void resolve_metrics();

  BackendMonitor* backend_;
  os::Node* frontend_;
  net::Socket* sock_ = nullptr;
  net::CompletionQueue own_cq_;
  net::CompletionQueue* cq_ = &own_cq_;  ///< shared CQ once engine-bound
  std::optional<net::QueuePair> qp_;
  // Telemetry instruments (null when disabled / no registry installed).
  bool metrics_resolved_ = false;
  telemetry::Registry* reg_ = nullptr;
  telemetry::HistogramMetric* m_latency_ = nullptr;
  telemetry::HistogramMetric* m_staleness_ = nullptr;
  telemetry::HistogramMetric* m_attempts_ = nullptr;
  telemetry::Counter* m_ok_ = nullptr;
  telemetry::Counter* m_timeout_ = nullptr;
  telemetry::Counter* m_transport_ = nullptr;
  telemetry::Counter* m_retries_ = nullptr;
  telemetry::Counter* m_backoff_waits_ = nullptr;
};

/// Convenience bundle: wires a complete monitoring channel (connection for
/// socket schemes, QP/MR for RDMA) between a front-end and a back-end node.
class MonitorChannel {
 public:
  /// Creates the back-end half too (single-front-end wiring). `ctx`
  /// optionally shares a verbs context across channels (RDMA only).
  MonitorChannel(net::Fabric& fabric, os::Node& frontend, os::Node& backend,
                 MonitorConfig cfg,
                 std::shared_ptr<net::QpContext> ctx = nullptr);

  /// Attaches a new front end to an EXISTING back-end monitor (scale-out
  /// wiring: M front-ends share one daemon set / one registered MR per
  /// back end instead of instantiating M of them). Socket schemes get
  /// their own connection and reporting thread; RDMA schemes just a QP
  /// against the shared MR. `shared` must outlive this channel.
  MonitorChannel(net::Fabric& fabric, os::Node& frontend,
                 BackendMonitor& shared,
                 std::shared_ptr<net::QpContext> ctx = nullptr);

  FrontendMonitor& frontend() { return *frontend_monitor_; }
  BackendMonitor& backend() { return *backend_monitor_; }

 private:
  std::unique_ptr<BackendMonitor> owned_backend_;  ///< null when shared
  BackendMonitor* backend_monitor_ = nullptr;
  net::Connection* conn_ = nullptr;  // owned by the fabric
  std::unique_ptr<FrontendMonitor> frontend_monitor_;
};

}  // namespace rdmamon::monitor
