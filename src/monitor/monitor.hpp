// The monitoring service itself: back-end side (daemons / registered
// regions per scheme) and front-end side (the fetch primitive). This is
// the paper's primary contribution, built on the os/net substrates.
#pragma once

#include <memory>
#include <optional>

#include "monitor/scheme.hpp"
#include "net/fabric.hpp"
#include "net/nic.hpp"
#include "net/socket.hpp"
#include "net/verbs.hpp"
#include "os/node.hpp"
#include "os/procfs.hpp"

namespace rdmamon::monitor {

/// Tuning for one monitoring channel.
struct MonitorConfig {
  Scheme scheme = Scheme::RdmaSync;
  /// T: the async schemes' back-end update period (the paper uses 50 ms
  /// unless stated otherwise).
  sim::Duration period = sim::msec(50);
  std::size_t request_bytes = 64;   ///< socket load-request size
  std::size_t reply_bytes = 256;    ///< load-info record size on the wire

  /// Failure handling: one fetch attempt that has not completed after
  /// this long is abandoned (FetchError::Timeout). <= 0 disables the
  /// deadline (pre-fault behaviour: wait forever). The default is far
  /// above any healthy-path latency so fault-free experiments are
  /// unaffected.
  sim::Duration fetch_timeout = sim::msec(200);
  /// Extra attempts after a failed first one (bounded retry).
  int fetch_retries = 2;
  /// Backoff before retry k (1-based) is retry_backoff * 2^(k-1) —
  /// deterministic exponential backoff, no jitter, so runs replay.
  sim::Duration retry_backoff = sim::msec(2);
};

/// Why a fetch came back without data.
enum class FetchError {
  None,       ///< ok == true
  Timeout,    ///< no reply/completion within fetch_timeout (all attempts)
  Transport,  ///< the fabric error-completed the op (dead peer, loss)
};

inline const char* to_string(FetchError e) {
  switch (e) {
    case FetchError::None: return "none";
    case FetchError::Timeout: return "timeout";
    case FetchError::Transport: return "transport";
  }
  return "?";
}

/// One load reading obtained by the front end, with the timing needed for
/// the latency/staleness/accuracy analyses.
struct MonitorSample {
  os::LoadSnapshot info;
  sim::TimePoint requested_at{};
  sim::TimePoint retrieved_at{};
  bool ok = false;
  FetchError error = FetchError::None;  ///< set when ok == false
  int attempts = 0;  ///< fetch attempts spent (1 on the happy path)

  /// Front-end observed fetch latency.
  sim::Duration latency() const { return retrieved_at - requested_at; }
  /// Age of the data at retrieval (asynchrony + transport delay).
  sim::Duration staleness() const {
    return retrieved_at - info.computed_at;
  }
};

/// Back-end half: spawns the scheme's daemon threads (if any) and/or
/// registers the scheme's memory region on the back-end NIC.
class BackendMonitor {
 public:
  BackendMonitor(net::Fabric& fabric, os::Node& backend, MonitorConfig cfg);
  ~BackendMonitor();

  BackendMonitor(const BackendMonitor&) = delete;
  BackendMonitor& operator=(const BackendMonitor&) = delete;

  /// Socket schemes: attaches the server endpoint the reporting thread
  /// serves requests from. Must be called before the simulation runs.
  void bind_socket(net::Socket& server_end);

  /// RDMA schemes: the rkey the front end reads.
  net::MrKey mr_key() const { return mr_key_; }

  /// Kills the back-end daemon threads (tear-down in sweep experiments).
  void stop();

  os::Node& node() { return backend_; }
  const MonitorConfig& config() const { return cfg_; }

 private:
  net::Fabric& fabric_;
  os::Node& backend_;
  MonitorConfig cfg_;
  os::LoadSnapshot slot_;  ///< user-space shared location (async schemes)
  net::MrKey mr_key_{};
  os::SimThread* calc_thread_ = nullptr;
  os::SimThread* report_thread_ = nullptr;
};

/// Front-end half: issues fetches against one back end.
class FrontendMonitor {
 public:
  /// `client_end` is required for socket schemes, ignored for RDMA ones.
  FrontendMonitor(net::Fabric& fabric, os::Node& frontend,
                  BackendMonitor& backend, net::Socket* client_end);

  /// Subprogram: one load fetch; fills `out`. Socket schemes do a
  /// request/response over the monitoring connection; RDMA schemes do a
  /// one-sided READ (kernel region for *-Sync, user region for Async).
  ///
  /// Failure-resilient: each attempt is bounded by cfg.fetch_timeout and
  /// retried up to cfg.fetch_retries times with exponential backoff, so
  /// the subprogram ALWAYS resolves — `out.ok` plus `out.error` say how.
  os::Program fetch(os::SimThread& self, MonitorSample& out);

  Scheme scheme() const { return backend_->config().scheme; }
  int backend_node_id() const { return backend_->node().id; }

  /// Ground truth at this instant, straight from the back end's kernel
  /// (the paper's fine-grained kernel module). For accuracy analysis only.
  os::LoadSnapshot ground_truth() const {
    return backend_->node().procfs().snapshot();
  }

 private:
  /// One bounded attempt; sets out.ok / out.error (never retrieved_at).
  os::Program fetch_once(os::SimThread& self, MonitorSample& out,
                         sim::TimePoint deadline);

  BackendMonitor* backend_;
  net::Socket* sock_ = nullptr;
  net::CompletionQueue cq_;
  std::optional<net::QueuePair> qp_;
  std::uint64_t next_wr_id_ = 1;  ///< matches completions to attempts
};

/// Convenience bundle: wires a complete monitoring channel (connection for
/// socket schemes, QP/MR for RDMA) between a front-end and a back-end node.
class MonitorChannel {
 public:
  MonitorChannel(net::Fabric& fabric, os::Node& frontend, os::Node& backend,
                 MonitorConfig cfg);

  FrontendMonitor& frontend() { return *frontend_monitor_; }
  BackendMonitor& backend() { return *backend_monitor_; }

 private:
  std::unique_ptr<BackendMonitor> backend_monitor_;
  net::Connection* conn_ = nullptr;  // owned by the fabric
  std::unique_ptr<FrontendMonitor> frontend_monitor_;
};

}  // namespace rdmamon::monitor
