#include "monitor/push.hpp"

#include <any>

#include "net/nic.hpp"

namespace rdmamon::monitor {

MulticastSubscriber::MulticastSubscriber(os::Node& frontend, net::Socket& rx_end) {
  frontend.spawn("push-sub", [this, sock = &rx_end](os::SimThread& t) {
    return rx_body(t, sock);
  });
}

MonitorSample MulticastSubscriber::last(sim::TimePoint now) const {
  MonitorSample s;
  s.info = info_;
  s.ok = has_;
  // Reading the local copy is free; both request and retrieval collapse
  // to "now", and staleness comes entirely from the push pipeline.
  s.requested_at = now;
  s.retrieved_at = now;
  return s;
}

os::Program MulticastSubscriber::rx_body(os::SimThread& self, net::Socket* sock) {
  for (;;) {
    net::Message m;
    co_await sock->recv(self, m);
    info_ = std::any_cast<os::LoadSnapshot>(m.payload);
    received_ = self.node().simu().now();
    has_ = true;
    ++updates_;
  }
}

MulticastPublisher::MulticastPublisher(net::Fabric& fabric, os::Node& backend,
                             MulticastConfig cfg)
    : fabric_(&fabric), backend_(&backend), cfg_(cfg) {}

MulticastSubscriber& MulticastPublisher::subscribe(os::Node& frontend) {
  net::Connection& conn = fabric_->connect(*backend_, frontend);
  subscriber_ends_.push_back(&conn.end_a());
  subscribers_.push_back(
      std::make_unique<MulticastSubscriber>(frontend, conn.end_b()));
  return *subscribers_.back();
}

void MulticastPublisher::start() {
  backend_->spawn("push-pub",
                  [this](os::SimThread& t) { return publisher_body(t); });
}

os::Program MulticastPublisher::publisher_body(os::SimThread& self) {
  for (;;) {
    co_await os::ComputeKernel{backend_->procfs().read_cost()};
    const os::LoadSnapshot snap = backend_->procfs().snapshot();
    // Hardware multicast: one send syscall, the switch replicates. We pay
    // the syscall/copy once and give each subscriber its own wire copy.
    if (!subscriber_ends_.empty()) {
      co_await subscriber_ends_.front()->send(self, cfg_.packet_bytes, snap);
      for (std::size_t i = 1; i < subscriber_ends_.size(); ++i) {
        // Replicated by the switch: no extra syscall cost, direct TX.
        net::Socket* s = subscriber_ends_[i];
        net::Message m;
        m.src_node = backend_->id;
        m.dst_node = s->remote_node_id();
        m.bytes = cfg_.packet_bytes;
        m.payload = snap;
        s->inject_tx(std::move(m));
      }
      ++pushes_;
    }
    co_await os::SleepFor{cfg_.period};
  }
}

}  // namespace rdmamon::monitor
