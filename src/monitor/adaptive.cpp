#include "monitor/adaptive.hpp"

#include "monitor/inbox.hpp"

namespace rdmamon::monitor {

const char* to_string(FetchMode m) {
  return m == FetchMode::Pull ? "pull" : "push";
}

const char* to_string(MonitorStrategy s) {
  switch (s) {
    case MonitorStrategy::Pull: return "pull";
    case MonitorStrategy::Push: return "push";
    case MonitorStrategy::Adaptive: return "adaptive";
  }
  return "?";
}

AdaptiveController::AdaptiveController(AdaptiveConfig cfg, int backends)
    : cfg_(cfg), st_(static_cast<std::size_t>(backends)) {
  for (State& s : st_) {
    s.mode = cfg_.initial;
    s.candidate = cfg_.initial;
  }
}

void AdaptiveController::on_pull_sample(std::size_t i,
                                        const os::LoadSnapshot& info) {
  State& s = st_[i];
  ++s.pull_samples;
  if (s.has_prev && change_delta(info, s.prev) >= cfg_.change_threshold) {
    ++s.pull_changes;
  }
  s.prev = info;
  s.has_prev = true;
}

void AdaptiveController::on_push_fresh(std::size_t i, bool heartbeat,
                                       sim::Duration staleness) {
  State& s = st_[i];
  if (heartbeat) {
    ++s.push_heartbeats;
  } else {
    ++s.push_fresh;
  }
  if (staleness > s.worst_staleness) s.worst_staleness = staleness;
}

double AdaptiveController::est_pull_bps() const {
  return static_cast<double>(cfg_.pull_bytes) / cfg_.pull_period.seconds();
}

void AdaptiveController::decide(std::size_t i, sim::TimePoint now,
                                double epoch_sec) {
  State& s = st_[i];
  // χ: significant load movements per second, from whichever mode's
  // evidence this epoch produced. Pull-mode polls undersample fast
  // flapping, but they undersample the push cost projection and the
  // actual push traffic identically — the comparison stays fair.
  double chi = 0.0;
  if (s.mode == FetchMode::Push) {
    chi = static_cast<double>(s.push_fresh) / epoch_sec;
  } else {
    chi = static_cast<double>(s.pull_changes) / epoch_sec;
  }
  const double push_bps =
      static_cast<double>(cfg_.push_bytes) *
      (chi + 1.0 / cfg_.push_heartbeat.seconds());
  const double pull_bps = est_pull_bps();
  s.est_push_bps = push_bps;

  FetchMode desired = s.mode;
  if (push_bps * cfg_.hysteresis < pull_bps) {
    desired = FetchMode::Push;
  } else if (pull_bps * cfg_.hysteresis < push_bps) {
    desired = FetchMode::Pull;
  }
  // Staleness veto: push whose pipeline lags the SLO is wrong no matter
  // how cheap it is.
  if (cfg_.staleness_slo.ns > 0 && s.mode == FetchMode::Push &&
      s.worst_staleness > cfg_.staleness_slo) {
    desired = FetchMode::Pull;
  }

  if (desired != s.mode) {
    if (desired == s.candidate) {
      ++s.candidate_epochs;
    } else {
      s.candidate = desired;
      s.candidate_epochs = 1;
    }
    const bool dwelt = s.switches == 0 || now - s.last_switch >= cfg_.min_dwell;
    if (s.candidate_epochs >= cfg_.dwell_epochs && dwelt) {
      s.mode = desired;
      s.last_switch = now;
      ++s.switches;
      s.candidate_epochs = 0;
      for (const auto& cb : switch_cbs_) cb(i, desired);
    }
  } else {
    s.candidate = s.mode;
    s.candidate_epochs = 0;
  }

  // Reset the epoch accumulators (prev pulled snapshot persists — χ in
  // pull mode needs cross-epoch continuity).
  s.pull_samples = 0;
  s.pull_changes = 0;
  s.push_fresh = 0;
  s.push_heartbeats = 0;
  s.worst_staleness = sim::Duration{};
}

void AdaptiveController::tick(sim::TimePoint now) {
  if (!epoch_armed_) {
    epoch_armed_ = true;
    epoch_start_ = now;
    return;
  }
  if (now - epoch_start_ < cfg_.epoch) return;
  const double epoch_sec = (now - epoch_start_).seconds();
  for (std::size_t i = 0; i < st_.size(); ++i) decide(i, now, epoch_sec);
  epoch_start_ = now;
}

std::uint64_t AdaptiveController::total_switches() const {
  std::uint64_t n = 0;
  for (const State& s : st_) n += s.switches;
  return n;
}

}  // namespace rdmamon::monitor
