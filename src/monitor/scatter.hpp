// Scatter-gather monitoring engine: one round fetches from MANY back ends
// concurrently instead of one after another. Attempts are issued through
// FrontendMonitor's issue/complete halves — RDMA targets as ONE merged
// multi-READ post (single doorbell, shared-CQ demux by wr_id), socket
// targets as one in-flight request per connection — and completions are
// gathered as they land. Per-target timeout, bounded retry and exponential
// backoff are preserved exactly, so a scatter round reaches the same
// per-target verdicts as the sequential path; only the calendar time
// shrinks from O(N) to roughly the slowest single target.
#pragma once

#include <cstddef>
#include <vector>

#include "monitor/monitor.hpp"
#include "net/verbs.hpp"

namespace rdmamon::monitor {

/// Drives concurrent bounded fetches over a fixed set of monitors. All
/// monitors joined via add() share this engine's completion channel (CQ
/// for RDMA, rx watcher for sockets), so ONE waiter hears about every
/// resolution.
class ScatterFetcher {
 public:
  ScatterFetcher() = default;
  ScatterFetcher(const ScatterFetcher&) = delete;
  ScatterFetcher& operator=(const ScatterFetcher&) = delete;

  /// Joins a monitor to the engine (re-points its completions at the
  /// shared channel). Call before the simulation runs fetches; returns the
  /// target's index.
  std::size_t add(FrontendMonitor& m);

  /// Subprogram: one scatter round over the targets listed in `which`
  /// (indices from add()). Fills out[i] for each i in `which`; `out` is
  /// resized to size() if smaller. Every listed target resolves (ok, or
  /// error with attempts spent) before the round returns.
  os::Program round(os::SimThread& self, const std::vector<std::size_t>& which,
                    std::vector<MonitorSample>& out);

  /// Subprogram: scatter round over every target.
  os::Program round_all(os::SimThread& self, std::vector<MonitorSample>& out);

  std::size_t size() const { return targets_.size(); }
  FrontendMonitor& target(std::size_t i) { return *targets_[i]; }
  net::CompletionQueue& cq() { return cq_; }

 private:
  /// Caches instrument pointers and binds the CQ collector on the first
  /// round (no-op without a registry).
  void resolve_metrics(sim::Simulation& simu);

  std::vector<FrontendMonitor*> targets_;
  net::CompletionQueue cq_;  ///< shared completion channel (+ wait queue)
  // Telemetry instruments (null when disabled / no registry installed).
  bool metrics_resolved_ = false;
  telemetry::Registry* reg_ = nullptr;
  telemetry::Counter* m_rounds_ = nullptr;
  telemetry::Counter* m_ok_ = nullptr;
  telemetry::Counter* m_timeout_ = nullptr;
  telemetry::Counter* m_transport_ = nullptr;
  telemetry::HistogramMetric* m_round_slots_ = nullptr;
  telemetry::HistogramMetric* m_wave_width_ = nullptr;
  telemetry::HistogramMetric* m_retries_ = nullptr;
  telemetry::ScopedCollector collector_;  ///< exports the shared CQ counters
};

}  // namespace rdmamon::monitor
