// Accuracy bookkeeping for the Fig 5 experiments: deviation of reported
// load values from the kernel ground truth at the moment of retrieval.
#pragma once

#include <cstdlib>

#include "monitor/monitor.hpp"
#include "sim/stats.hpp"

namespace rdmamon::monitor {

/// Accumulates |reported - truth| for the two Fig 5 metrics.
class AccuracyTracker {
 public:
  /// Records one sample against the ground truth taken at retrieval time.
  void record(const MonitorSample& sample, const os::LoadSnapshot& truth) {
    if (!sample.ok) return;
    nr_running_dev_.add(
        std::abs(sample.info.nr_running - truth.nr_running));
    cpu_load_dev_.add(std::abs(sample.info.cpu_load - truth.cpu_load));
    staleness_ms_.add(sample.staleness().millis());
    latency_ms_.add(sample.latency().millis());
  }

  /// Mean absolute deviation of the reported runnable-thread count (Fig 5a).
  const sim::OnlineStats& nr_running_deviation() const {
    return nr_running_dev_;
  }
  /// Mean absolute deviation of the reported CPU load (Fig 5b).
  const sim::OnlineStats& cpu_load_deviation() const {
    return cpu_load_dev_;
  }
  const sim::OnlineStats& staleness_ms() const { return staleness_ms_; }
  const sim::OnlineStats& latency_ms() const { return latency_ms_; }

 private:
  sim::OnlineStats nr_running_dev_;
  sim::OnlineStats cpu_load_dev_;
  sim::OnlineStats staleness_ms_;
  sim::OnlineStats latency_ms_;
};

}  // namespace rdmamon::monitor
