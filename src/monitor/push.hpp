// The Section 6 alternative the paper discusses and rejects: the back end
// *pushes* its status to a group of front-end dispatchers using hardware
// multicast. Scalable, but it uses channel semantics — a back-end thread
// must run to send, and every front end pays receive processing — so "such
// solutions are not completely one-sided, removing some of the benefits of
// our design". Implemented here to quantify that trade-off (see
// bench_ablation).
//
// Distinct from the one-sided RDMA-WRITE push scheme (monitor/inbox.hpp):
// that one keeps the receive side passive (the back end DMA-writes into a
// front-end-registered inbox slot), so only the *sender* needs a thread.
#pragma once

#include <memory>
#include <vector>

#include "monitor/monitor.hpp"
#include "net/fabric.hpp"
#include "net/socket.hpp"
#include "os/node.hpp"

namespace rdmamon::monitor {

struct MulticastConfig {
  /// Push period (the multicast analogue of the async schemes' T).
  sim::Duration period = sim::msec(50);
  std::size_t packet_bytes = 256;
};

/// Front-end side: keeps the last pushed snapshot; reading it is free and
/// instantaneous (it is already local), but its age is bounded only by the
/// push period plus transport and scheduling delays on BOTH sides.
class MulticastSubscriber {
 public:
  MulticastSubscriber(os::Node& frontend, net::Socket& rx_end);

  bool has_data() const { return has_; }
  /// Last received snapshot, stamped with its local arrival time.
  MonitorSample last(sim::TimePoint now) const;
  std::uint64_t updates() const { return updates_; }

 private:
  os::Program rx_body(os::SimThread& self, net::Socket* sock);

  bool has_ = false;
  os::LoadSnapshot info_;
  sim::TimePoint received_{};
  std::uint64_t updates_ = 0;
};

/// Back-end side: a daemon thread reads /proc every period and multicasts
/// the snapshot to all subscribers in one NIC transmit.
class MulticastPublisher {
 public:
  MulticastPublisher(net::Fabric& fabric, os::Node& backend,
                     MulticastConfig cfg);

  /// Subscribes a front end; returns its subscriber handle.
  MulticastSubscriber& subscribe(os::Node& frontend);

  /// Spawns the publisher daemon. Call after all subscriptions.
  void start();

  std::uint64_t pushes() const { return pushes_; }
  os::Node& node() { return *backend_; }

 private:
  os::Program publisher_body(os::SimThread& self);

  net::Fabric* fabric_;
  os::Node* backend_;
  MulticastConfig cfg_;
  std::vector<net::Socket*> subscriber_ends_;  // backend-side endpoints
  std::vector<std::unique_ptr<MulticastSubscriber>> subscribers_;
  std::uint64_t pushes_ = 0;
};

}  // namespace rdmamon::monitor
