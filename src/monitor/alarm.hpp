// Alarm publication: the SLO engine's alarm summary served through a
// registered MR, so "is that front end's view stale?" is itself a
// one-sided RDMA READ — zero CPU on the (possibly unhealthy) target,
// exactly the property the paper argues for and the regime where an
// alarm matters most. Same shape as TelemetrySelfMonitor: a publisher
// thread refreshes the slot; remote readers sample it at the DMA
// instant.
//
//   net::QueuePair qp{fabric.nic(reader.id), alarms.node_id(), cq};
//   co_await net::rdma_read_sync(self, qp, alarms.mr_key(),
//                                alarms.config().slot_bytes, c);
//   auto view = std::any_cast<telemetry::AlarmView>(c.data);
//
// The publisher also refreshes IMMEDIATELY on every alarm edge (via
// SloEngine::on_edge), so the window in which a remote reader sees a
// pre-breach view is one edge-to-publish copy, not a full period.
#pragma once

#include <cstdint>

#include "net/fabric.hpp"
#include "net/verbs.hpp"
#include "os/node.hpp"
#include "telemetry/slo.hpp"

namespace rdmamon::monitor {

struct AlarmMonitorConfig {
  /// Periodic refresh of the published view (background heartbeat; the
  /// edge hook republishes out-of-band).
  sim::Duration period = sim::msec(50);
  /// Registered-region size: the wire image of an AlarmView. Remote
  /// READs are charged for this many bytes.
  std::size_t slot_bytes = 512;
  /// CPU charged per publish (view build + copy into the region).
  sim::Duration publish_cost = sim::usec(2);
};

class AlarmMonitor {
 public:
  AlarmMonitor(net::Fabric& fabric, os::Node& owner,
               telemetry::SloEngine& engine, AlarmMonitorConfig cfg = {});
  ~AlarmMonitor();

  AlarmMonitor(const AlarmMonitor&) = delete;
  AlarmMonitor& operator=(const AlarmMonitor&) = delete;

  /// The rkey remote readers target.
  net::MrKey mr_key() const { return mr_key_; }
  /// The node whose NIC serves the region.
  int node_id() const { return owner_->id; }
  const AlarmMonitorConfig& config() const { return cfg_; }

  /// Publishes so far (periodic + edge-triggered).
  std::uint64_t published() const { return published_; }
  /// The view currently in the registered region.
  const telemetry::AlarmView& latest() const { return slot_; }

  /// Kills the publisher (the region keeps serving its last contents —
  /// the frozen-host regime the alarm exists for).
  void stop();

 private:
  os::Program publisher_body(os::SimThread& self);
  void publish_now();

  os::Node* owner_;
  telemetry::SloEngine* engine_;
  AlarmMonitorConfig cfg_;
  telemetry::AlarmView slot_;  ///< the registered region's logical content
  net::MrKey mr_key_{};
  std::uint64_t published_ = 0;
  std::uint64_t edge_hook_ = 0;
  os::SimThread* publisher_ = nullptr;
};

}  // namespace rdmamon::monitor
