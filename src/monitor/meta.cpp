#include "monitor/meta.hpp"

#include <any>

#include "net/nic.hpp"
#include "os/thread.hpp"

namespace rdmamon::monitor {

TelemetrySelfMonitor::TelemetrySelfMonitor(net::Fabric& fabric,
                                           os::Node& owner,
                                           telemetry::Registry& reg,
                                           SelfMonitorConfig cfg)
    : owner_(&owner), reg_(&reg), cfg_(cfg) {
  // The remote READ samples the slot at the DMA instant, like every other
  // registered region: readers see the last PUBLISHED snapshot, not a
  // fresh one (that asynchrony is the scheme's defining trade-off).
  mr_key_ = fabric.nic(owner.id).register_mr(
      cfg_.slot_bytes, [slot = &slot_] { return std::any(*slot); });
  publisher_ = owner.spawn("telemetry-pub", [this](os::SimThread& t) {
    return publisher_body(t);
  });
}

os::Program TelemetrySelfMonitor::publisher_body(os::SimThread& self) {
  for (;;) {
    co_await os::Compute{cfg_.publish_cost};
    slot_ = reg_->snapshot();
    ++published_;
    // The publisher is itself observable through the plane it feeds.
    reg_->counter("meta.published").inc();
    co_await os::SleepFor{cfg_.period};
  }
  (void)self;
}

void TelemetrySelfMonitor::stop() {
  if (publisher_ != nullptr) owner_->sched().kill(publisher_);
  publisher_ = nullptr;
}

}  // namespace rdmamon::monitor
