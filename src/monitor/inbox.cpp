#include "monitor/inbox.hpp"

#include <algorithm>
#include <cassert>

namespace rdmamon::monitor {

double change_delta(const os::LoadSnapshot& a, const os::LoadSnapshot& b) {
  // Same capacities the balancer's load index normalises with: a delta of
  // 0.05 here moves the index by at most ~0.05 — the threshold is in
  // "index units" on both sides of the wire.
  constexpr double kNetCapacity = 1.25e9;
  constexpr double kConnCapacity = 128.0;
  constexpr double kRunqCapacity = 8.0;
  double d = std::abs(a.cpu_load - b.cpu_load);
  d = std::max(d, std::abs(a.mem_load - b.mem_load));
  d = std::max(d, std::abs(a.net_rate - b.net_rate) / kNetCapacity);
  d = std::max(d, std::abs(static_cast<double>(a.connections - b.connections)) /
                      kConnCapacity);
  d = std::max(d, std::abs(static_cast<double>(a.nr_running - b.nr_running)) /
                      kRunqCapacity);
  return d;
}

// --- PushInbox ----------------------------------------------------------------

PushInbox::PushInbox(net::Fabric& fabric, os::Node& frontend, int slots,
                     std::size_t slot_bytes)
    : frontend_(&frontend),
      nic_(&fabric.nic(frontend.id)),
      slot_bytes_(slot_bytes),
      slots_(static_cast<std::size_t>(slots)),
      consumed_(static_cast<std::size_t>(slots), 0),
      last_fresh_(static_cast<std::size_t>(slots),
                  fabric.simu().now()) {
  // One region for all N slots; the writer overwrites the addressed slot
  // blindly (raw-memory WRITE semantics — no validation at the target).
  key_ = nic_->register_mr(
      slot_bytes_ * static_cast<std::size_t>(slots),
      /*reader=*/nullptr,
      /*remote_writable=*/true, [this](const std::any& v) {
        const auto& w = std::any_cast<const InboxWrite&>(v);
        if (w.slot < 0 || w.slot >= this->slots()) return;  // out of bounds: dropped
        slots_[static_cast<std::size_t>(w.slot)] = w.value;
        ++writes_applied_;
      });
  if (telemetry::Registry* reg =
          telemetry::Registry::of(fabric.simu())) {
    fr_ = reg->recorder().ring("inbox." + frontend.name());
  }
}

const char* PushInbox::to_string(ScanResult r) {
  switch (r) {
    case ScanResult::Empty: return "empty";
    case ScanResult::Unchanged: return "unchanged";
    case ScanResult::Fresh: return "fresh";
    case ScanResult::Torn: return "torn";
    case ScanResult::Regressed: return "regressed";
  }
  return "?";
}

PushInbox::ScanResult PushInbox::scan(int i, MonitorSample& out,
                                      bool* heartbeat) {
  const auto idx = static_cast<std::size_t>(i);
  const InboxSlot& s = slots_[idx];
  if (s.seq == 0 && s.seq_check == 0) return ScanResult::Empty;
  if (s.seq != s.seq_check) {
    // Seqlock mismatch: the image is half of one write and half of
    // another. Never consume it — and do not advance the consumed
    // sequence, so the completing write is still picked up next scan.
    ++torn_;
    telemetry::fr_record(fr_, "scan.torn", i,
                         static_cast<std::int64_t>(s.seq));
    return ScanResult::Torn;
  }
  if (s.seq < consumed_[idx]) {
    // A write from the past landed after a newer one was consumed
    // (replay/reorder). Consuming it would make the view travel back in
    // time; the consumed watermark makes this impossible by construction.
    ++regressed_;
    telemetry::fr_record(fr_, "scan.regressed", i,
                         static_cast<std::int64_t>(s.seq));
    return ScanResult::Regressed;
  }
  if (s.seq == consumed_[idx]) return ScanResult::Unchanged;
  consumed_[idx] = s.seq;
  const sim::TimePoint now = frontend_->simu().now();
  last_fresh_[idx] = now;
  ++fresh_;
  out = MonitorSample{};
  out.info = s.info;
  out.requested_at = now;  // a scan has no request phase
  out.retrieved_at = now;
  out.ok = true;
  out.error = FetchError::None;
  out.attempts = 1;
  if (heartbeat != nullptr) *heartbeat = s.heartbeat;
  // x = the image's information age at consume (the lineage signal).
  telemetry::fr_record(fr_, s.heartbeat ? "scan.heartbeat" : "scan.fresh", i,
                       static_cast<std::int64_t>(s.seq),
                       static_cast<double>((now - s.info.computed_at).ns));
  return ScanResult::Fresh;
}

void PushInbox::deregister() {
  if (deregistered_) return;
  nic_->deregister_mr(key_);
  deregistered_ = true;
}

// --- PushPublisher ------------------------------------------------------------

PushPublisher::PushPublisher(net::Fabric& fabric, os::Node& backend,
                             PushConfig cfg)
    : fabric_(&fabric), backend_(&backend), cfg_(cfg) {}

void PushPublisher::target(int frontend_node, net::MrKey inbox_key,
                           int slot) {
  if (frontend_node == target_node_ && inbox_key.key == inbox_key_.key &&
      slot == slot_) {
    return;  // same target: keep the baseline, no gratuitous re-push
  }
  if (target_node_ >= 0) ++retargets_;
  target_node_ = frontend_node;
  inbox_key_ = inbox_key;
  slot_ = slot;
  // A new owner starts from an empty slot: drop the baseline so the next
  // decision pushes unconditionally instead of waiting for a change or
  // the heartbeat. A WRITE still in flight to the old owner completes
  // into the same CQ and is reaped normally.
  has_baseline_ = false;
  if (!qp_ || qp_->remote_node() != frontend_node) {
    qp_.emplace(fabric_->nic(backend_->id), frontend_node, cq_);
  }
}

void PushPublisher::start() {
  if (thread_ != nullptr) return;
  // Kernel thread: the reporter models an in-kernel module (like the
  // registered-MR side of the pull schemes), so it is excluded from the
  // user nr_running it reports — otherwise every wakeup of the reporter
  // flips the run-queue signal by one and the monitor mostly measures
  // itself. Its collection time still shows up in cpu_load as kernel
  // busy, which is the honest part of the overhead.
  thread_ = backend_->spawn(
      "push-pub", [this](os::SimThread& t) { return body(t); },
      {.kernel_thread = true});
}

void PushPublisher::stop() {
  if (thread_ == nullptr) return;
  backend_->sched().kill(thread_);
  thread_ = nullptr;
}

os::Program PushPublisher::body(os::SimThread& self) {
  sim::Simulation& simu = backend_->simu();
  for (;;) {
    co_await os::SleepFor{cfg_.check_period};
    // Reap completions first (free, like any CQ poll). An error clears
    // the change baseline: whatever we thought the front end knows, it
    // may not, so the next decision pushes unconditionally — the push
    // scheme's analogue of the pull path's bounded retry.
    while (!cq_.empty()) {
      net::Completion c = cq_.pop();
      in_flight_ = false;
      if (c.status != net::WcStatus::Success) {
        ++errors_;
        if (c.status == net::WcStatus::InvalidKey) ++invalid_key_;
        has_baseline_ = false;
      }
    }
    if (target_node_ < 0 || in_flight_ || paused_) continue;
    // Collecting the snapshot walks the same task lists the /proc read
    // does; running in-kernel skips the trap but not the walk, so the
    // full read cost is charged (as kernel time).
    co_await os::ComputeKernel{backend_->procfs().read_cost()};
    const os::LoadSnapshot snap = backend_->procfs().snapshot();
    const sim::TimePoint now = simu.now();
    const bool heartbeat_due =
        !has_pushed_ || now - last_push_ >= cfg_.max_interval;
    const bool changed =
        !has_baseline_ ||
        change_delta(snap, baseline_) >= cfg_.change_threshold;
    const bool min_ok =
        !has_pushed_ || now - last_push_ >= cfg_.min_interval;
    const bool change_push = changed && min_ok;
    if (!change_push && !heartbeat_due) continue;
    ++seq_;
    InboxSlot image;
    image.seq = seq_;
    image.info = snap;
    image.pushed_at = now;
    image.heartbeat = !change_push;
    image.seq_check = seq_;
    co_await os::Compute{net::kDoorbellCost};
    qp_->post_write(inbox_key_, std::any(InboxWrite{slot_, image}),
                    cfg_.slot_bytes, cq_.alloc_wr_id());
    in_flight_ = true;
    has_pushed_ = true;
    last_push_ = now;
    baseline_ = snap;
    has_baseline_ = true;
    ++pushes_;
    if (image.heartbeat) ++heartbeats_;
  }
  (void)self;
}

}  // namespace rdmamon::monitor
