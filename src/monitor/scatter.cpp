#include "monitor/scatter.hpp"

#include <limits>

namespace rdmamon::monitor {

namespace {

constexpr sim::TimePoint kNever{std::numeric_limits<std::int64_t>::max()};

sim::TimePoint attempt_deadline(const MonitorConfig& cfg,
                                sim::TimePoint now) {
  return cfg.fetch_timeout.ns > 0 ? now + cfg.fetch_timeout : kNever;
}

}  // namespace

void ScatterFetcher::resolve_metrics(sim::Simulation& simu) {
  metrics_resolved_ = true;
  reg_ = telemetry::Registry::of(simu);
  if (reg_ == nullptr) return;
  m_rounds_ = &reg_->counter("scatter.rounds");
  auto outcome = [&](const char* result) -> telemetry::Counter& {
    return reg_->counter("scatter.outcome",
                         telemetry::Labels{{"result", result}});
  };
  m_ok_ = &outcome("ok");
  m_timeout_ = &outcome("timeout");
  m_transport_ = &outcome("transport");
  m_round_slots_ = &reg_->histogram("scatter.round_slots");
  m_wave_width_ = &reg_->histogram("scatter.wave_width");
  m_retries_ = &reg_->histogram("scatter.retries_per_slot");
  collector_.bind(simu, [this](telemetry::Registry& reg) {
    reg.gauge("scatter.cq.pushed")
        .set(static_cast<double>(cq_.completions_pushed()));
    reg.gauge("scatter.cq.forgets").set(static_cast<double>(cq_.forgets()));
    reg.gauge("scatter.cq.stale_dropped")
        .set(static_cast<double>(cq_.stale_dropped()));
    reg.gauge("scatter.cq.signaled")
        .set(static_cast<double>(cq_.cqes_signaled()));
    reg.gauge("scatter.cq.unsignaled_retired")
        .set(static_cast<double>(cq_.unsignaled_retired()));
    reg.gauge("scatter.cq.notifies").set(static_cast<double>(cq_.notifies()));
    reg.gauge("scatter.cq.coalesced_polls")
        .set(static_cast<double>(cq_.coalesced_polls()));
  });
}

std::size_t ScatterFetcher::add(FrontendMonitor& m) {
  m.bind_completion_channel(cq_);
  targets_.push_back(&m);
  return targets_.size() - 1;
}

os::Program ScatterFetcher::round(os::SimThread& self,
                                  const std::vector<std::size_t>& which,
                                  std::vector<MonitorSample>& out) {
  // Per-target attempt state machine: Issue -> Wait -> (Done | Backoff),
  // Backoff -> Issue. The round ends when every slot is Done.
  enum class State { Issue, Wait, Backoff, Done };
  struct Slot {
    FrontendMonitor* mon = nullptr;
    MonitorSample* out = nullptr;
    FrontendMonitor::FetchOp op;
    State state = State::Issue;
    int attempt = 0;
    sim::Duration backoff{};
    sim::TimePoint resume_at{};  ///< Backoff: when to re-issue
  };

  sim::Simulation& simu = self.node().simu();
  if (out.size() < targets_.size()) out.resize(targets_.size());
  if (!metrics_resolved_) resolve_metrics(simu);
  const telemetry::SpanId round_span =
      telemetry::span_begin(reg_, "scatter", "round");
  telemetry::add(m_rounds_);
  telemetry::observe(m_round_slots_, static_cast<double>(which.size()));

  std::vector<Slot> slots;
  slots.reserve(which.size());
  for (std::size_t i : which) {
    Slot s;
    s.mon = targets_[i];
    s.out = &out[i];
    *s.out = MonitorSample{};
    s.out->requested_at = simu.now();
    s.backoff = s.mon->config().retry_backoff;
    slots.push_back(s);
  }

  // Telemetry: one slot reached its verdict (ok or exhausted).
  auto slot_done = [this](const Slot& s) {
    s.mon->record_sample(*s.out);
    telemetry::add(s.out->ok
                       ? m_ok_
                       : (s.out->error == FetchError::Timeout ? m_timeout_
                                                              : m_transport_));
    telemetry::observe(m_retries_, static_cast<double>(s.attempt - 1));
  };

  // A failed attempt either retries (after backoff) or finishes the slot.
  auto fail = [&simu, &slot_done](Slot& s, FetchError err) {
    s.out->ok = false;
    s.out->error = err;
    if (s.attempt > s.mon->config().fetch_retries) {
      s.state = State::Done;
      s.out->retrieved_at = simu.now();
      slot_done(s);
    } else {
      s.state = State::Backoff;
      s.resume_at = simu.now() + s.backoff;
      s.backoff = s.backoff * 2;
    }
  };

  std::vector<net::ReadBatchEntry> batch;
  for (;;) {
    // Issue wave: every Issue slot starts one bounded attempt. RDMA
    // attempts merge into a single multi-READ post (one doorbell for the
    // lot); socket attempts go out one per connection.
    batch.clear();
    std::size_t wave = 0;
    for (Slot& s : slots) {
      if (s.state != State::Issue) continue;
      s.out->attempts = ++s.attempt;
      ++wave;
      const sim::TimePoint dl = attempt_deadline(s.mon->config(), simu.now());
      if (s.mon->is_rdma_transport()) {
        batch.push_back(s.mon->prepare_read(s.op, dl));
      } else {
        co_await s.mon->issue(self, s.op, dl);
      }
      s.state = State::Wait;
    }
    co_await net::post_read_batch(self, batch);
    if (wave > 0) {
      telemetry::observe(m_wave_width_, static_cast<double>(wave));
    }

    // Gather wave: reap whatever resolved, time out whatever expired.
    bool all_done = true;
    bool any_issue = false;
    sim::TimePoint next_wake = kNever;
    for (Slot& s : slots) {
      if (s.state == State::Wait) {
        const FrontendMonitor::OpStatus st = s.mon->peek(s.op);
        if (st == FrontendMonitor::OpStatus::Ok) {
          co_await s.mon->complete(self, s.op, *s.out, st);
          s.state = State::Done;
          s.out->retrieved_at = simu.now();
          slot_done(s);
        } else if (st == FrontendMonitor::OpStatus::Transport) {
          co_await s.mon->complete(self, s.op, *s.out, st);
          fail(s, FetchError::Transport);
        } else if (simu.now() >= s.op.deadline) {
          s.mon->abandon(s.op);
          fail(s, FetchError::Timeout);
        }
      }
      if (s.state == State::Backoff && simu.now() >= s.resume_at) {
        s.state = State::Issue;
      }
      switch (s.state) {
        case State::Done: break;
        case State::Issue:
          all_done = false;
          any_issue = true;
          break;
        case State::Wait:
          all_done = false;
          if (s.op.deadline.ns < next_wake.ns) next_wake = s.op.deadline;
          break;
        case State::Backoff:
          all_done = false;
          if (s.resume_at.ns < next_wake.ns) next_wake = s.resume_at;
          break;
      }
    }
    if (all_done) break;
    if (any_issue) continue;  // a backoff just expired: issue immediately

    // Park on the shared channel until something resolves, with a timer at
    // the earliest deadline/backoff expiry (spurious-wakeup discipline:
    // the next loop iteration re-checks everything). The timer is re-armed
    // and cancelled once per wave; both ends are O(1) on the near-future
    // wheel, so wide rounds do not tax the event queue.
    sim::EventHandle timer;
    if (next_wake.ns != kNever.ns && simu.now() < next_wake) {
      timer = simu.at(next_wake, [this] { cq_.wait_queue().notify_all(); });
    }
    if (simu.now() < next_wake) {
      co_await os::WaitOn{&cq_.wait_queue()};
    }
    timer.cancel();
  }
  telemetry::span_end(reg_, round_span);
}

os::Program ScatterFetcher::round_all(os::SimThread& self,
                                      std::vector<MonitorSample>& out) {
  std::vector<std::size_t> all(targets_.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  co_await round(self, all, out);
}

}  // namespace rdmamon::monitor
