#include "monitor/alarm.hpp"

#include <any>

#include "net/nic.hpp"
#include "os/thread.hpp"

namespace rdmamon::monitor {

AlarmMonitor::AlarmMonitor(net::Fabric& fabric, os::Node& owner,
                           telemetry::SloEngine& engine,
                           AlarmMonitorConfig cfg)
    : owner_(&owner), engine_(&engine), cfg_(cfg) {
  mr_key_ = fabric.nic(owner.id).register_mr(
      cfg_.slot_bytes, [slot = &slot_] { return std::any(*slot); });
  // Edge-triggered out-of-band refresh: runs synchronously inside the
  // engine's evaluate (event context, no thread to charge), so the copy
  // is uncharged — edges are rare by construction and the periodic
  // publisher still pays the modelled cost for the steady state.
  edge_hook_ = engine.on_edge([this](const telemetry::AlarmRecord&) {
    publish_now();
  });
  publisher_ = owner.spawn("alarm-pub", [this](os::SimThread& t) {
    return publisher_body(t);
  });
}

AlarmMonitor::~AlarmMonitor() {
  if (engine_ != nullptr) engine_->remove_on_edge(edge_hook_);
  stop();
}

os::Program AlarmMonitor::publisher_body(os::SimThread& self) {
  for (;;) {
    co_await os::Compute{cfg_.publish_cost};
    publish_now();
    co_await os::SleepFor{cfg_.period};
  }
  (void)self;
}

void AlarmMonitor::publish_now() {
  slot_ = engine_->view();
  ++published_;
}

void AlarmMonitor::stop() {
  if (publisher_ != nullptr) owner_->sched().kill(publisher_);
  publisher_ = nullptr;
}

}  // namespace rdmamon::monitor
