// The five resource-monitoring schemes the paper compares (Section 3).
#pragma once

#include <array>
#include <string>

namespace rdmamon::monitor {

enum class Scheme {
  SocketAsync,  ///< 2 back-end threads: load-calculating (period T) + reporting
  SocketSync,   ///< 1 back-end thread: reads /proc per request
  RdmaAsync,    ///< back-end thread updates a registered user buffer every T
  RdmaSync,     ///< RDMA READ of registered kernel memory; no back-end thread
  ERdmaSync,    ///< RdmaSync + pending-interrupt info used in load balancing
};

inline constexpr std::array<Scheme, 5> kAllSchemes = {
    Scheme::SocketAsync, Scheme::SocketSync, Scheme::RdmaAsync,
    Scheme::RdmaSync, Scheme::ERdmaSync};

/// The four transport-distinct schemes (e-RDMA-Sync shares RdmaSync's
/// transport; it differs only in how the balancer uses the data).
inline constexpr std::array<Scheme, 4> kTransportSchemes = {
    Scheme::SocketAsync, Scheme::SocketSync, Scheme::RdmaAsync,
    Scheme::RdmaSync};

inline const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::SocketAsync: return "Socket-Async";
    case Scheme::SocketSync: return "Socket-Sync";
    case Scheme::RdmaAsync: return "RDMA-Async";
    case Scheme::RdmaSync: return "RDMA-Sync";
    case Scheme::ERdmaSync: return "e-RDMA-Sync";
  }
  return "?";
}

/// True for schemes whose transport is one-sided RDMA READ.
inline bool is_rdma(Scheme s) {
  return s == Scheme::RdmaAsync || s == Scheme::RdmaSync ||
         s == Scheme::ERdmaSync;
}

/// True for schemes that need a periodic load-calculating thread on the
/// back-end (everything except RDMA-Sync / e-RDMA-Sync).
inline bool has_calc_thread(Scheme s) {
  return s == Scheme::SocketAsync || s == Scheme::RdmaAsync;
}

/// True for schemes that need a request-serving thread on the back-end.
inline bool has_report_thread(Scheme s) {
  return s == Scheme::SocketAsync || s == Scheme::SocketSync;
}

/// True when the fetched snapshot is exact at retrieval (kernel-direct).
inline bool is_kernel_direct(Scheme s) {
  return s == Scheme::RdmaSync || s == Scheme::ERdmaSync;
}

}  // namespace rdmamon::monitor
