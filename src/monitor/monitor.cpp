#include "monitor/monitor.hpp"

#include <any>
#include <cassert>
#include <limits>

namespace rdmamon::monitor {

namespace {

/// Load-calculating thread (Fig 1a / 2a, steps 1-4): read /proc, copy the
/// result to the shared location, sleep T, repeat.
os::Program calc_thread_body(os::SimThread& self, os::Node* node,
                             os::LoadSnapshot* slot, sim::Duration period) {
  for (;;) {
    co_await os::ComputeKernel{node->procfs().read_cost()};
    *slot = node->procfs().snapshot();
    // Copying into the known memory location / registered region.
    co_await os::Compute{sim::usec(1)};
    co_await os::SleepFor{period};
  }
  (void)self;
}

/// Load-reporting thread for Socket-Async (Fig 1a, steps a-c): serve each
/// request from the shared location without touching /proc.
os::Program report_async_body(os::SimThread& self, net::Socket* sock,
                              os::LoadSnapshot* slot,
                              std::size_t reply_bytes) {
  for (;;) {
    net::Message req;
    co_await sock->recv(self, req);
    co_await os::Compute{sim::usec(1)};  // read the known memory location
    co_await sock->send(self, reply_bytes, *slot);
  }
}

/// Socket-Sync back-end thread (Fig 1b): compute fresh load per request.
os::Program report_sync_body(os::SimThread& self, os::Node* node,
                             net::Socket* sock, std::size_t reply_bytes) {
  for (;;) {
    net::Message req;
    co_await sock->recv(self, req);
    co_await os::ComputeKernel{node->procfs().read_cost()};
    co_await sock->send(self, reply_bytes, node->procfs().snapshot());
  }
}

}  // namespace

BackendMonitor::BackendMonitor(net::Fabric& fabric, os::Node& backend,
                               MonitorConfig cfg)
    : fabric_(fabric), backend_(backend), cfg_(cfg) {
  if (has_calc_thread(cfg_.scheme)) {
    calc_thread_ = backend_.spawn(
        "mon-calc", [this](os::SimThread& t) {
          return calc_thread_body(t, &backend_, &slot_, cfg_.period);
        });
  }
  if (is_rdma(cfg_.scheme)) {
    net::Nic& nic = fabric_.nic(backend_.id);
    if (is_kernel_direct(cfg_.scheme)) {
      // RDMA-Sync / e-RDMA-Sync: register the kernel statistics pages;
      // a remote READ samples them at the DMA instant with zero back-end
      // CPU involvement — including the transient irq_stat state that a
      // synchronized /proc read can never observe. Read-only, per the
      // paper's security argument.
      mr_key_ = nic.register_mr(cfg_.reply_bytes,
                                [node = &backend_] {
                                  return std::any(node->procfs().snapshot_dma());
                                },
                                false, nullptr, cfg_.tenant);
    } else {
      // RDMA-Async: register the user-space slot the calc thread updates.
      mr_key_ = nic.register_mr(cfg_.reply_bytes,
                                [slot = &slot_] { return std::any(*slot); },
                                false, nullptr, cfg_.tenant);
    }
  }
}

BackendMonitor::~BackendMonitor() = default;

void BackendMonitor::bind_socket(net::Socket& server_end) {
  assert(has_report_thread(cfg_.scheme));
  if (cfg_.scheme == Scheme::SocketAsync) {
    report_threads_.push_back(backend_.spawn(
        "mon-report", [this, sock = &server_end](os::SimThread& t) {
          return report_async_body(t, sock, &slot_, cfg_.reply_bytes);
        }));
  } else {
    report_threads_.push_back(backend_.spawn(
        "mon-report", [this, sock = &server_end](os::SimThread& t) {
          return report_sync_body(t, &backend_, sock, cfg_.reply_bytes);
        }));
  }
}

void BackendMonitor::stop() {
  if (calc_thread_) backend_.sched().kill(calc_thread_);
  for (os::SimThread* t : report_threads_) backend_.sched().kill(t);
  calc_thread_ = nullptr;
  report_threads_.clear();
}

FrontendMonitor::FrontendMonitor(net::Fabric& fabric, os::Node& frontend,
                                 BackendMonitor& backend,
                                 net::Socket* client_end,
                                 std::shared_ptr<net::QpContext> ctx)
    : backend_(&backend), frontend_(&frontend), sock_(client_end) {
  if (is_rdma(backend.config().scheme)) {
    qp_.emplace(fabric.nic(frontend.id), backend.node().id, *cq_,
                std::move(ctx));
    // Monitoring READs carry the plane's tenant tag so fabric QoS can
    // weight them against noisy neighbors (0 = untagged system plane).
    if (backend.config().tenant != 0) qp_->set_tenant(backend.config().tenant);
  } else {
    assert(client_end != nullptr &&
           "socket schemes need the monitoring connection's client end");
  }
}

void FrontendMonitor::resolve_metrics() {
  metrics_resolved_ = true;
  reg_ = telemetry::Registry::of(frontend_->simu());
  if (reg_ == nullptr) return;
  telemetry::Labels by_chan{{"scheme", to_string(scheme())},
                            {"backend", backend_->node().name()}};
  m_latency_ = &reg_->histogram("monitor.fetch.latency_ns", by_chan);
  m_staleness_ = &reg_->histogram("monitor.fetch.staleness_ns", by_chan);
  m_attempts_ = &reg_->histogram("monitor.fetch.attempts", by_chan);
  auto outcome = [&](const char* result) -> telemetry::Counter& {
    telemetry::Labels l = by_chan;
    l.add("result", result);
    return reg_->counter("monitor.fetch.outcome", l);
  };
  m_ok_ = &outcome("ok");
  m_timeout_ = &outcome("timeout");
  m_transport_ = &outcome("transport");
  m_retries_ = &reg_->counter("monitor.fetch.retries", by_chan);
  m_backoff_waits_ = &reg_->counter("monitor.backoff_waits", by_chan);
}

void FrontendMonitor::record_sample(const MonitorSample& s) {
  if constexpr (!telemetry::kEnabled) return;
  if (!metrics_resolved_) resolve_metrics();
  if (reg_ == nullptr) return;
  telemetry::add(s.ok ? m_ok_
                      : (s.error == FetchError::Timeout ? m_timeout_
                                                        : m_transport_));
  telemetry::observe(m_attempts_, static_cast<double>(s.attempts));
  if (s.attempts > 1) {
    telemetry::add(m_retries_, static_cast<std::uint64_t>(s.attempts - 1));
  }
  if (!s.ok) return;  // latency/staleness are meaningful on success only
  telemetry::observe(m_latency_, s.latency());
  telemetry::observe(m_staleness_, s.staleness());
}

os::Program FrontendMonitor::fetch(os::SimThread& self, MonitorSample& out) {
  out = MonitorSample{};
  sim::Simulation& simu = self.node().simu();
  out.requested_at = simu.now();
  const MonitorConfig& cfg = backend_->config();
  if (!metrics_resolved_) resolve_metrics();
  const telemetry::SpanId fetch_span =
      telemetry::span_begin(reg_, "monitor", "fetch");
  sim::Duration backoff = cfg.retry_backoff;
  for (int attempt = 0;; ++attempt) {
    out.attempts = attempt + 1;
    const sim::TimePoint deadline =
        cfg.fetch_timeout.ns > 0
            ? simu.now() + cfg.fetch_timeout
            : sim::TimePoint{std::numeric_limits<std::int64_t>::max()};
    out.ok = false;
    FetchOp op;
    // Each bounded attempt is a child span cause-linked to the fetch.
    const telemetry::SpanId attempt_span =
        telemetry::span_begin(reg_, "monitor", "attempt", fetch_span);
    co_await issue(self, op, deadline);
    co_await await_resolution(self, op, out);
    telemetry::span_end(reg_, attempt_span,
                        out.ok ? "ok" : to_string(out.error));
    if (out.ok || attempt >= cfg.fetch_retries) break;
    telemetry::add(m_backoff_waits_);
    co_await os::SleepFor{backoff};
    backoff = backoff * 2;
  }
  out.retrieved_at = simu.now();
  telemetry::span_end(reg_, fetch_span, out.ok ? "ok" : to_string(out.error));
  record_sample(out);
}

os::Program FrontendMonitor::issue(os::SimThread& self, FetchOp& op,
                                   sim::TimePoint deadline) {
  const MonitorConfig& cfg = backend_->config();
  op.deadline = deadline;
  if (qp_) {
    op.wr_id = cq_->alloc_wr_id();
    co_await os::Compute{net::kDoorbellCost};
    qp_->post_read(backend_->mr_key(), cfg.reply_bytes, op.wr_id);
  } else {
    // The monitoring protocol carries no sequence numbers, so a reply to
    // an abandoned earlier request may still be queued: flush before
    // asking again (at worst we answer with a marginally older reading).
    sock_->drain_rx();
    co_await sock_->send(self, cfg.request_bytes, std::any{});
  }
}

net::ReadBatchEntry FrontendMonitor::prepare_read(FetchOp& op,
                                                  sim::TimePoint deadline) {
  assert(qp_.has_value() && "prepare_read is RDMA-only");
  op.deadline = deadline;
  op.wr_id = cq_->alloc_wr_id();
  return net::ReadBatchEntry{&*qp_, backend_->mr_key(),
                             backend_->config().reply_bytes, op.wr_id};
}

FrontendMonitor::OpStatus FrontendMonitor::peek(const FetchOp& op) const {
  if (qp_) {
    const net::Completion* c = cq_->find(op.wr_id);
    if (c == nullptr) return OpStatus::Pending;
    return c->status == net::WcStatus::Success ? OpStatus::Ok
                                               : OpStatus::Transport;
  }
  return sock_->has_data() ? OpStatus::Ok : OpStatus::Pending;
}

os::Program FrontendMonitor::complete(os::SimThread& self, FetchOp& op,
                                      MonitorSample& out, OpStatus status) {
  assert(status != OpStatus::Pending && "complete() requires a resolution");
  if (qp_) {
    net::Completion c;
    const bool got = cq_->try_pop(op.wr_id, c);
    assert(got && "peek() said resolved but the completion is gone");
    (void)got;
    if (c.status != net::WcStatus::Success) {
      out.ok = false;
      out.error = FetchError::Transport;
    } else {
      out.info = std::any_cast<os::LoadSnapshot>(c.data);
      out.ok = true;
      out.error = FetchError::None;
    }
    co_return;  // reaping a completion costs no simulated CPU
  }
  net::Message reply;
  co_await sock_->recv_ready(self, reply);
  out.info = std::any_cast<os::LoadSnapshot>(reply.payload);
  out.ok = true;
  out.error = FetchError::None;
  (void)status;
}

void FrontendMonitor::abandon(FetchOp& op) {
  // Sockets need nothing: a late reply stays queued and the next issue()
  // flushes it (drain_rx).
  if (qp_) cq_->forget(op.wr_id);
}

os::WaitQueue& FrontendMonitor::completion_wait_queue() {
  return qp_ ? cq_->wait_queue() : sock_->rx_wait_queue();
}

void FrontendMonitor::bind_completion_channel(net::CompletionQueue& shared) {
  if (qp_) {
    qp_->bind_cq(shared);
    cq_ = &shared;
  } else {
    sock_->add_rx_watcher(&shared.wait_queue());
  }
}

os::Program FrontendMonitor::await_resolution(os::SimThread& self,
                                              FetchOp& op,
                                              MonitorSample& out) {
  sim::Simulation& simu = self.node().simu();
  os::WaitQueue& wq = completion_wait_queue();
  // The deadline is a timer that spuriously wakes the completion waiter;
  // the re-peek then notices the expired clock (the documented wait-queue
  // discipline). A resolution already queued wins even past the deadline,
  // matching recv_until / rdma_read_sync_until. This armed-then-cancelled
  // guard is the kernel's hottest cancel pattern (bench_engine's
  // schedule_cancel mix); the wheel unlinks it in O(1) with no tombstone.
  sim::EventHandle timer;
  if (simu.now() < op.deadline && peek(op) == OpStatus::Pending) {
    timer = simu.at(op.deadline, [&wq] { wq.notify_all(); });
  }
  for (;;) {
    const OpStatus st = peek(op);
    if (st != OpStatus::Pending) {
      co_await complete(self, op, out, st);
      break;
    }
    if (simu.now() >= op.deadline) {
      abandon(op);
      out.ok = false;
      out.error = FetchError::Timeout;
      break;
    }
    co_await os::WaitOn{&wq};
  }
  timer.cancel();
}

MonitorChannel::MonitorChannel(net::Fabric& fabric, os::Node& frontend,
                               os::Node& backend, MonitorConfig cfg,
                               std::shared_ptr<net::QpContext> ctx) {
  owned_backend_ = std::make_unique<BackendMonitor>(fabric, backend, cfg);
  backend_monitor_ = owned_backend_.get();
  net::Socket* client_end = nullptr;
  if (!is_rdma(cfg.scheme)) {
    conn_ = &fabric.connect(frontend, backend);
    backend_monitor_->bind_socket(conn_->end_b());
    client_end = &conn_->end_a();
  }
  frontend_monitor_ = std::make_unique<FrontendMonitor>(
      fabric, frontend, *backend_monitor_, client_end, std::move(ctx));
}

MonitorChannel::MonitorChannel(net::Fabric& fabric, os::Node& frontend,
                               BackendMonitor& shared,
                               std::shared_ptr<net::QpContext> ctx)
    : backend_monitor_(&shared) {
  net::Socket* client_end = nullptr;
  if (!is_rdma(shared.config().scheme)) {
    conn_ = &fabric.connect(frontend, shared.node());
    backend_monitor_->bind_socket(conn_->end_b());
    client_end = &conn_->end_a();
  }
  frontend_monitor_ = std::make_unique<FrontendMonitor>(
      fabric, frontend, *backend_monitor_, client_end, std::move(ctx));
}

}  // namespace rdmamon::monitor
