#include "fault/fault.hpp"

#include <algorithm>

#include "telemetry/registry.hpp"
#include "util/format.hpp"

namespace rdmamon::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::NodeCrash: return "crash";
    case FaultKind::NodeRecover: return "recover";
    case FaultKind::NodeFreeze: return "freeze";
    case FaultKind::NodeUnfreeze: return "unfreeze";
    case FaultKind::LinkDegrade: return "link-degrade";
    case FaultKind::LinkRestore: return "link-restore";
    case FaultKind::StormStart: return "storm-start";
    case FaultKind::StormStop: return "storm-stop";
  }
  return "?";
}

FaultPlan& FaultPlan::add(FaultEvent e) {
  events_.push_back(e);
  return *this;
}

FaultPlan& FaultPlan::crash(int node, sim::TimePoint at) {
  return add({at, FaultKind::NodeCrash, node, {}, 0.0});
}

FaultPlan& FaultPlan::recover(int node, sim::TimePoint at) {
  return add({at, FaultKind::NodeRecover, node, {}, 0.0});
}

FaultPlan& FaultPlan::crash_for(int node, sim::TimePoint at,
                                sim::Duration down_for) {
  return crash(node, at).recover(node, at + down_for);
}

FaultPlan& FaultPlan::freeze(int node, sim::TimePoint at) {
  return add({at, FaultKind::NodeFreeze, node, {}, 0.0});
}

FaultPlan& FaultPlan::unfreeze(int node, sim::TimePoint at) {
  return add({at, FaultKind::NodeUnfreeze, node, {}, 0.0});
}

FaultPlan& FaultPlan::freeze_for(int node, sim::TimePoint at,
                                 sim::Duration hung_for) {
  return freeze(node, at).unfreeze(node, at + hung_for);
}

FaultPlan& FaultPlan::degrade_link(int node, sim::TimePoint at,
                                   sim::Duration extra_latency, double loss) {
  return add({at, FaultKind::LinkDegrade, node, extra_latency, loss});
}

FaultPlan& FaultPlan::restore_link(int node, sim::TimePoint at) {
  return add({at, FaultKind::LinkRestore, node, {}, 0.0});
}

FaultPlan& FaultPlan::degrade_link_for(int node, sim::TimePoint at,
                                       sim::Duration window,
                                       sim::Duration extra_latency,
                                       double loss) {
  return degrade_link(node, at, extra_latency, loss)
      .restore_link(node, at + window);
}

FaultPlan& FaultPlan::storm_start(int storm, sim::TimePoint at) {
  FaultEvent e{at, FaultKind::StormStart, -1, {}, 0.0};
  e.storm = storm;
  return add(e);
}

FaultPlan& FaultPlan::storm_stop(int storm, sim::TimePoint at) {
  FaultEvent e{at, FaultKind::StormStop, -1, {}, 0.0};
  e.storm = storm;
  return add(e);
}

FaultPlan& FaultPlan::storm_for(int storm, sim::TimePoint at,
                                sim::Duration window) {
  return storm_start(storm, at).storm_stop(storm, at + window);
}

std::string FaultPlan::describe() const {
  std::string out;
  for (const FaultEvent& e : events_) {
    out += sim::to_string(e.at);
    if (e.kind == FaultKind::StormStart || e.kind == FaultKind::StormStop) {
      out += " storm";
      out += std::to_string(e.storm);
    } else {
      out += " node";
      out += std::to_string(e.node);
    }
    out += ' ';
    out += to_string(e.kind);
    if (e.kind == FaultKind::LinkDegrade) {
      out += " +";
      out += sim::to_string(e.extra_latency);
      out += " loss=";
      out += util::format_double(e.loss, 3);
    }
    out += '\n';
  }
  return out;
}

FaultPlan FaultPlan::random(sim::Rng& rng, int num_nodes,
                            sim::Duration horizon, int pairs) {
  FaultPlan plan;
  for (int p = 0; p < pairs; ++p) {
    const int node =
        static_cast<int>(rng.uniform_int(0, std::max(0, num_nodes - 1)));
    const auto start = sim::nsec(static_cast<std::int64_t>(
        rng.uniform(0.0, 0.7 * static_cast<double>(horizon.ns))));
    const auto max_window = 0.95 * static_cast<double>(horizon.ns) -
                            static_cast<double>(start.ns);
    const auto window = sim::nsec(static_cast<std::int64_t>(rng.uniform(
        0.05 * static_cast<double>(horizon.ns), max_window)));
    const sim::TimePoint at{start.ns};
    switch (rng.uniform_int(0, 2)) {
      case 0:
        plan.crash_for(node, at, window);
        break;
      case 1:
        plan.freeze_for(node, at, window);
        break;
      default: {
        const auto extra = sim::usec(
            static_cast<std::int64_t>(rng.uniform(50.0, 2000.0)));
        const double loss = rng.uniform(0.0, 0.5);
        plan.degrade_link_for(node, at, window, extra, loss);
        break;
      }
    }
  }
  return plan;
}

void FaultInjector::apply(const FaultEvent& e) {
  switch (e.kind) {
    case FaultKind::NodeCrash:
      fabric_->inject_crash(e.node);
      break;
    case FaultKind::NodeRecover:
      fabric_->inject_recover(e.node);
      break;
    case FaultKind::NodeFreeze:
      fabric_->inject_freeze(e.node);
      break;
    case FaultKind::NodeUnfreeze:
      fabric_->inject_unfreeze(e.node);
      break;
    case FaultKind::LinkDegrade:
      fabric_->inject_link_fault(e.node, e.extra_latency, e.loss);
      break;
    case FaultKind::LinkRestore:
      fabric_->clear_link_fault(e.node);
      break;
    case FaultKind::StormStart:
    case FaultKind::StormStop:
      // The fabric is untouched: the damage is real tenant traffic,
      // generated by whatever the storm hook starts/stops.
      if (storm_hook_) storm_hook_(e);
      break;
  }
  ++injected_;
  log_.push_back(e);
  const bool is_storm =
      e.kind == FaultKind::StormStart || e.kind == FaultKind::StormStop;
  const std::string subject = is_storm ? "storm" + std::to_string(e.storm)
                                       : "node" + std::to_string(e.node);
  telemetry::Registry* reg = telemetry::Registry::of(fabric_->simu());
  if (reg != nullptr) {
    reg->counter("fault.injected", telemetry::Labels{{"kind", to_string(e.kind)}})
        .inc();
    // Annotated, timestamped record in the span stream so fault windows
    // can be correlated with fetch/dispatch behaviour.
    telemetry::span_event(reg, "fault", to_string(e.kind), subject);
    // Flight-record the fault, and on a crash dump a post-mortem: the
    // merged rings show exactly what the monitoring plane was doing in
    // the lead-up to the kill.
    reg->recorder()
        .ring("fault", 128)
        ->record(to_string(e.kind), is_storm ? e.storm : e.node,
                 static_cast<std::int64_t>(e.kind));
    if (e.kind == FaultKind::NodeCrash) {
      reg->recorder().postmortem("crash_node" + std::to_string(e.node));
    }
  }
}

void FaultInjector::arm(const FaultPlan& plan) {
  sim::Simulation& simu = fabric_->simu();
  for (const FaultEvent& e : plan.events()) {
    const sim::TimePoint when = std::max(e.at, simu.now());
    simu.at(when, [this, e] { apply(e); });
  }
}

}  // namespace rdmamon::fault
