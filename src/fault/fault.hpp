// Deterministic fault injection for the simulated cluster.
//
// A FaultPlan is a declarative schedule of fault events — node crashes,
// kernel freezes (host hung, NIC still DMA-able: the regime where the
// paper's one-sided monitoring keeps working), access-link degradation,
// and the matching recoveries. A FaultInjector arms the plan against a
// net::Fabric on the simulation clock; the fabric's fault hooks
// (inject_crash & friends) do the actual damage. Everything is driven by
// seeded RNGs and the event queue's deterministic tie-breaking, so a run
// with the same seed and plan replays byte-for-byte.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace rdmamon::fault {

enum class FaultKind {
  NodeCrash,    ///< host + NIC die; packets to/from it vanish
  NodeRecover,  ///< crashed node answers again
  NodeFreeze,   ///< kernel hangs; NIC DMA engine keeps serving
  NodeUnfreeze, ///< hung kernel resumes (queued packets burst in)
  LinkDegrade,  ///< access link gains latency and a loss probability
  LinkRestore,  ///< access link back to nominal
  StormStart,   ///< tenant traffic storm begins (see workload::TenantStorm)
  StormStop,    ///< tenant traffic storm ends
};

const char* to_string(FaultKind k);

/// One scheduled fault. `extra_latency`/`loss` are meaningful only for
/// LinkDegrade; `storm` only for StormStart/StormStop (the id the
/// injector's storm hook dispatches on — see set_storm_hook).
struct FaultEvent {
  sim::TimePoint at{};
  FaultKind kind = FaultKind::NodeCrash;
  int node = -1;
  sim::Duration extra_latency{};
  double loss = 0.0;
  int storm = -1;
};

/// Builder for a schedule of fault events. Order of insertion breaks
/// same-instant ties (the event queue fires them in insertion order).
class FaultPlan {
 public:
  FaultPlan& crash(int node, sim::TimePoint at);
  FaultPlan& recover(int node, sim::TimePoint at);
  /// Crash at `at`, recover at `at + down_for`.
  FaultPlan& crash_for(int node, sim::TimePoint at, sim::Duration down_for);

  FaultPlan& freeze(int node, sim::TimePoint at);
  FaultPlan& unfreeze(int node, sim::TimePoint at);
  FaultPlan& freeze_for(int node, sim::TimePoint at, sim::Duration hung_for);

  FaultPlan& degrade_link(int node, sim::TimePoint at,
                          sim::Duration extra_latency, double loss);
  FaultPlan& restore_link(int node, sim::TimePoint at);
  FaultPlan& degrade_link_for(int node, sim::TimePoint at,
                              sim::Duration window,
                              sim::Duration extra_latency, double loss);

  /// Tenant traffic storms ride the same schedule, so noisy-neighbor
  /// pressure composes with crashes and lossy links in one plan. The
  /// `storm` id names a generator registered with the injector's storm
  /// hook (workload::drive_storms).
  FaultPlan& storm_start(int storm, sim::TimePoint at);
  FaultPlan& storm_stop(int storm, sim::TimePoint at);
  FaultPlan& storm_for(int storm, sim::TimePoint at, sim::Duration window);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// One line per event, for logs and golden-output determinism checks.
  std::string describe() const;

  /// Draws a reproducible random plan: `pairs` fault windows, each
  /// targeting a node in [0, num_nodes), starting inside the first 70% of
  /// `horizon` and recovering before 95% of it — so every injected fault
  /// also exercises the recovery path within the run.
  static FaultPlan random(sim::Rng& rng, int num_nodes,
                          sim::Duration horizon, int pairs = 6);

 private:
  FaultPlan& add(FaultEvent e);
  std::vector<FaultEvent> events_;
};

/// Replays FaultPlans against one fabric.
class FaultInjector {
 public:
  explicit FaultInjector(net::Fabric& fabric) : fabric_(&fabric) {}

  /// Schedules every event of `plan` on the fabric's simulation clock
  /// (events not in the future fire on the next queue pop). May be called
  /// several times; plans accumulate.
  void arm(const FaultPlan& plan);

  /// Applies one event immediately (test convenience).
  void apply(const FaultEvent& e);

  /// Installs the dispatcher for StormStart/StormStop events (the fault
  /// plane knows nothing of workload generators; workload::drive_storms
  /// installs a hook that routes by FaultEvent::storm). Storm events
  /// applied with no hook installed are logged but otherwise inert.
  void set_storm_hook(std::function<void(const FaultEvent&)> hook) {
    storm_hook_ = std::move(hook);
  }

  /// Events applied so far.
  std::uint64_t injected() const { return injected_; }
  /// Applied events in application order (the run's fault trace).
  const std::vector<FaultEvent>& log() const { return log_; }

 private:
  net::Fabric* fabric_;
  std::uint64_t injected_ = 0;
  std::vector<FaultEvent> log_;
  std::function<void(const FaultEvent&)> storm_hook_;
};

}  // namespace rdmamon::fault
