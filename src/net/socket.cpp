#include "net/socket.hpp"

#include "net/fabric.hpp"
#include "net/nic.hpp"

namespace rdmamon::net {

namespace {

sim::Duration copy_cost(const FabricConfig& cfg, std::size_t bytes) {
  return sim::nsec(static_cast<std::int64_t>(
      static_cast<double>(bytes) * cfg.socket_copy_per_byte_ns));
}

}  // namespace

os::Program Socket::send(os::SimThread& self, std::size_t bytes,
                         std::any payload) {
  const FabricConfig& cfg = fabric_->config();
  // Syscall trap + protocol + copy, charged as system time.
  co_await os::ComputeKernel{cfg.socket_send_cost + copy_cost(cfg, bytes)};
  Message m;
  m.src_node = local_->id;
  m.dst_node = remote_node_;
  m.conn = conn_;
  m.dst_side = remote_side_;
  m.bytes = bytes;
  m.payload = std::move(payload);
  fabric_->nic(local_->id).tx(std::move(m));
  (void)self;
}

void Socket::inject_tx(Message m) {
  m.src_node = local_->id;
  m.dst_node = remote_node_;
  m.conn = conn_;
  m.dst_side = remote_side_;
  fabric_->nic(local_->id).tx(std::move(m));
}

os::Program Socket::recv(os::SimThread& self, Message& out) {
  while (rx_.empty()) co_await os::WaitOn{&rx_wq_};
  out = std::move(rx_.front());
  rx_.pop_front();
  const FabricConfig& cfg = fabric_->config();
  co_await os::ComputeKernel{cfg.socket_recv_cost +
                             copy_cost(cfg, out.bytes)};
  (void)self;
}

Connection::Connection(Fabric& fabric, os::Node& a, os::Node& b,
                       std::uint64_t id)
    : id_(id) {
  a_.local_ = &a;
  a_.fabric_ = &fabric;
  a_.remote_node_ = b.id;
  a_.conn_ = id;
  a_.remote_side_ = 1;
  b_.local_ = &b;
  b_.fabric_ = &fabric;
  b_.remote_node_ = a.id;
  b_.conn_ = id;
  b_.remote_side_ = 0;
  a.stats().on_connection_opened();
  b.stats().on_connection_opened();
}

Connection::~Connection() {
  a_.local_->stats().on_connection_closed();
  b_.local_->stats().on_connection_closed();
}

}  // namespace rdmamon::net
