#include "net/socket.hpp"

#include <cassert>

#include "net/fabric.hpp"
#include "net/nic.hpp"

namespace rdmamon::net {

namespace {

sim::Duration copy_cost(const FabricConfig& cfg, std::size_t bytes) {
  return sim::nsec(static_cast<std::int64_t>(
      static_cast<double>(bytes) * cfg.socket_copy_per_byte_ns));
}

}  // namespace

void Socket::resolve_metrics() {
  metrics_resolved_ = true;
  if (fabric_ == nullptr || local_ == nullptr) return;
  telemetry::Registry* reg = telemetry::Registry::of(fabric_->simu());
  if (reg == nullptr) return;
  const telemetry::Labels by_node{{"node", local_->name()}};
  tx_msgs_ = &reg->counter("net.socket.tx_msgs", by_node);
  tx_bytes_ = &reg->counter("net.socket.tx_bytes", by_node);
  rx_msgs_ = &reg->counter("net.socket.rx_msgs", by_node);
  rx_bytes_ = &reg->counter("net.socket.rx_bytes", by_node);
  watcher_wakeups_ = &reg->counter("net.socket.watcher_wakeups", by_node);
}

os::Program Socket::send(os::SimThread& self, std::size_t bytes,
                         std::any payload) {
  if (!metrics_resolved_) resolve_metrics();
  telemetry::add(tx_msgs_);
  telemetry::add(tx_bytes_, bytes);
  const FabricConfig& cfg = fabric_->config();
  // Syscall trap + protocol + copy, charged as system time.
  co_await os::ComputeKernel{cfg.socket_send_cost + copy_cost(cfg, bytes)};
  Message m;
  m.src_node = local_->id;
  m.dst_node = remote_node_;
  m.conn = conn_;
  m.dst_side = remote_side_;
  m.bytes = bytes;
  m.payload = std::move(payload);
  fabric_->nic(local_->id).tx(std::move(m));
  (void)self;
}

void Socket::inject_tx(Message m) {
  if (!metrics_resolved_) resolve_metrics();
  telemetry::add(tx_msgs_);
  telemetry::add(tx_bytes_, m.bytes);
  m.src_node = local_->id;
  m.dst_node = remote_node_;
  m.conn = conn_;
  m.dst_side = remote_side_;
  fabric_->nic(local_->id).tx(std::move(m));
}

os::Program Socket::recv(os::SimThread& self, Message& out) {
  while (rx_.empty()) co_await os::WaitOn{&rx_wq_};
  out = std::move(rx_.front());
  rx_.pop_front();
  const FabricConfig& cfg = fabric_->config();
  co_await os::ComputeKernel{cfg.socket_recv_cost +
                             copy_cost(cfg, out.bytes)};
  (void)self;
}

os::Program Socket::recv_until(os::SimThread& self, Message& out,
                               sim::TimePoint deadline, bool& ok) {
  ok = false;
  sim::Simulation& simu = fabric_->simu();
  // The deadline is a timer that spuriously wakes this socket's waiters;
  // the standard predicate re-check then notices the expired clock.
  // Cancelling an unexpired deadline is O(1) (eager wheel unlink), so
  // every recv may arm one without a per-message allocation or sweep.
  sim::EventHandle timer;
  if (rx_.empty() && simu.now() < deadline) {
    timer = simu.at(deadline, [this] { rx_wq_.notify_all(); });
  }
  while (rx_.empty() && simu.now() < deadline) {
    co_await os::WaitOn{&rx_wq_};
  }
  timer.cancel();
  if (rx_.empty()) co_return;
  out = std::move(rx_.front());
  rx_.pop_front();
  const FabricConfig& cfg = fabric_->config();
  co_await os::ComputeKernel{cfg.socket_recv_cost +
                             copy_cost(cfg, out.bytes)};
  ok = true;
  (void)self;
}

os::Program Socket::recv_ready(os::SimThread& self, Message& out) {
  assert(!rx_.empty() && "recv_ready requires has_data()");
  out = std::move(rx_.front());
  rx_.pop_front();
  const FabricConfig& cfg = fabric_->config();
  co_await os::ComputeKernel{cfg.socket_recv_cost +
                             copy_cost(cfg, out.bytes)};
  (void)self;
}

std::size_t Socket::drain_rx() {
  const std::size_t n = rx_.size();
  rx_.clear();
  return n;
}

Connection::Connection(Fabric& fabric, os::Node& a, os::Node& b,
                       std::uint64_t id)
    : id_(id) {
  a_.local_ = &a;
  a_.fabric_ = &fabric;
  a_.remote_node_ = b.id;
  a_.conn_ = id;
  a_.remote_side_ = 1;
  b_.local_ = &b;
  b_.fabric_ = &fabric;
  b_.remote_node_ = a.id;
  b_.conn_ = id;
  b_.remote_side_ = 0;
  a.stats().on_connection_opened();
  b.stats().on_connection_opened();
}

// Connections live exactly as long as the fabric (there is no mid-run
// disconnect), and the endpoint nodes are caller-owned — they may already
// be destroyed when the fabric tears down, so the destructor must not
// touch them to decrement connection counters.
Connection::~Connection() = default;

}  // namespace rdmamon::net
