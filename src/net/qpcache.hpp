// Bounded NIC connection-context cache (the "ICM cache" of a real HCA):
// the NIC keeps QP and MR contexts in a small on-chip SRAM backed by host
// memory. While the working set fits, every post/DMA hits on-chip state;
// once a front end talks to more connections than the cache holds, each
// post first fetches the evicted context over PCIe — the RDMAvisor
// observation of why one dedicated RC QP per peer collapses at datacenter
// scale, and why DCT-style shared contexts restore flat cost.
//
// Entries carry the owning tenant so evictions can be attributed: an
// MR-thrash storm that churns the cache shows up as evictions charged to
// the VICTIM tenants whose entries it displaced — the noisy-neighbor
// fingerprint the multi-tenant tests assert on.
//
// This class is only the replacement policy + accounting; the miss
// penalty and its serialisation are charged by net::Nic.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <unordered_map>

#include "net/qos.hpp"

namespace rdmamon::net {

/// LRU set of context keys with hit/miss/eviction accounting. Keys are an
/// opaque 64-bit space; net::Nic namespaces QP contexts and MR entries
/// into disjoint halves of it (one unified cache, like the real ICM).
class NicCtxCache {
 public:
  explicit NicCtxCache(std::size_t capacity) : cap_(capacity) {}

  /// Touches `key`: true on hit (entry moved to MRU), false on miss (the
  /// entry is brought in owned by `owner`, evicting the LRU entry when
  /// full — the eviction is charged to the DISPLACED entry's owner).
  bool access(std::uint64_t key, TenantId owner = 0);

  /// Drops `key` (context destroyed, e.g. an MR deregistration). Not an
  /// eviction — the entry is invalid, not displaced. False if absent.
  bool erase(std::uint64_t key);

  std::size_t capacity() const { return cap_; }
  std::size_t size() const { return pos_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  /// Evictions whose displaced entry belonged to `owner`.
  std::uint64_t evictions_for(TenantId owner) const;

 private:
  struct Entry {
    std::uint64_t key = 0;
    TenantId owner = 0;
  };

  std::size_t cap_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> pos_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::map<TenantId, std::uint64_t> evictions_by_;
};

}  // namespace rdmamon::net
