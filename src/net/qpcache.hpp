// Bounded NIC connection-context cache (the "ICM cache" of a real HCA):
// the NIC keeps QP and MR contexts in a small on-chip SRAM backed by host
// memory. While the working set fits, every post/DMA hits on-chip state;
// once a front end talks to more connections than the cache holds, each
// post first fetches the evicted context over PCIe — the RDMAvisor
// observation of why one dedicated RC QP per peer collapses at datacenter
// scale, and why DCT-style shared contexts restore flat cost.
//
// This class is only the replacement policy + accounting; the miss
// penalty and its serialisation are charged by net::Nic.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

namespace rdmamon::net {

/// LRU set of context keys with hit/miss/eviction accounting. Keys are an
/// opaque 64-bit space; net::Nic namespaces QP contexts and MR entries
/// into disjoint halves of it (one unified cache, like the real ICM).
class NicCtxCache {
 public:
  explicit NicCtxCache(std::size_t capacity) : cap_(capacity) {}

  /// Touches `key`: true on hit (entry moved to MRU), false on miss (the
  /// entry is brought in, evicting the LRU entry when full).
  bool access(std::uint64_t key);

  /// Drops `key` (context destroyed, e.g. an MR deregistration). Not an
  /// eviction — the entry is invalid, not displaced. False if absent.
  bool erase(std::uint64_t key);

  std::size_t capacity() const { return cap_; }
  std::size_t size() const { return pos_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  std::size_t cap_;
  std::list<std::uint64_t> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> pos_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace rdmamon::net
