#include "net/fabric.hpp"

#include <cassert>
#include <stdexcept>

#include "net/nic.hpp"
#include "net/socket.hpp"
#include "os/node.hpp"

namespace rdmamon::net {

Fabric::Fabric(sim::Simulation& simu, FabricConfig cfg)
    : simu_(simu), cfg_(cfg) {}

Fabric::~Fabric() = default;

Nic& Fabric::attach(os::Node& node) {
  node.id = static_cast<int>(nodes_.size());
  nodes_.push_back(&node);
  nics_.push_back(std::make_unique<Nic>(*this, node));
  return *nics_.back();
}

Nic& Fabric::nic(int node_id) {
  return *nics_.at(static_cast<std::size_t>(node_id));
}

os::Node& Fabric::node(int node_id) {
  return *nodes_.at(static_cast<std::size_t>(node_id));
}

Connection& Fabric::connect(os::Node& a, os::Node& b) {
  if (a.id < 0 || b.id < 0) {
    throw std::logic_error("Fabric::connect: attach both nodes first");
  }
  conns_.push_back(std::make_unique<Connection>(
      *this, a, b, static_cast<std::uint64_t>(conns_.size())));
  return *conns_.back();
}

void Fabric::ship(Message msg) {
  // Propagation through the non-blocking switch.
  simu_.after(cfg_.prop_latency, [this, msg = std::move(msg)] {
    nic(msg.dst_node).rx(msg);
  });
}

void Fabric::deliver_to_socket(const Message& msg) {
  Connection& c = *conns_.at(static_cast<std::size_t>(msg.conn));
  c.endpoint(msg.dst_side).deliver(msg);
}

}  // namespace rdmamon::net
