#include "net/fabric.hpp"

#include <cassert>
#include <stdexcept>

#include "net/nic.hpp"
#include "net/socket.hpp"
#include "os/node.hpp"

namespace rdmamon::net {

Fabric::Fabric(sim::Simulation& simu, FabricConfig cfg)
    : simu_(simu), cfg_(cfg), fault_rng_(cfg.fault_seed) {}

Fabric::~Fabric() = default;

Nic& Fabric::attach(os::Node& node) {
  node.id = static_cast<int>(nodes_.size());
  nodes_.push_back(&node);
  nics_.push_back(std::make_unique<Nic>(*this, node));
  faults_.emplace_back();
  frozen_rx_.emplace_back();
  return *nics_.back();
}

Nic& Fabric::nic(int node_id) {
  return *nics_.at(static_cast<std::size_t>(node_id));
}

os::Node& Fabric::node(int node_id) {
  return *nodes_.at(static_cast<std::size_t>(node_id));
}

Connection& Fabric::connect(os::Node& a, os::Node& b) {
  if (a.id < 0 || b.id < 0) {
    throw std::logic_error("Fabric::connect: attach both nodes first");
  }
  conns_.push_back(std::make_unique<Connection>(
      *this, a, b, static_cast<std::uint64_t>(conns_.size())));
  return *conns_.back();
}

void Fabric::ship(Message msg) {
  // A packet to or from a crashed node never makes it onto the wire; a
  // degraded link may eat it. Loss is sampled at ship time so the RNG
  // consumption order is a deterministic function of traffic order.
  if (fault_at(msg.src_node).crashed || fault_at(msg.dst_node).crashed) {
    return;
  }
  if (sample_link_drop(msg.src_node, msg.dst_node)) return;
  // Propagation through the non-blocking switch (plus degradation).
  const sim::Duration lat =
      cfg_.prop_latency + link_extra(msg.src_node, msg.dst_node);
  simu_.after(lat, [this, msg = std::move(msg)] {
    NodeFaultState& f = fault_at(msg.dst_node);
    if (f.crashed) return;  // died while the packet was in flight
    if (f.frozen) {
      // Host hung: the packet waits at the ingress port until unfreeze.
      frozen_rx_[static_cast<std::size_t>(msg.dst_node)].push_back(msg);
      return;
    }
    nic(msg.dst_node).rx(msg);
  });
}

// --- fault-injection hooks ----------------------------------------------------

NodeFaultState& Fabric::fault_at(int node_id) {
  return faults_.at(static_cast<std::size_t>(node_id));
}

const NodeFaultState& Fabric::fault_state(int node_id) const {
  return faults_.at(static_cast<std::size_t>(node_id));
}

void Fabric::inject_crash(int node_id) {
  fault_at(node_id).crashed = true;
  // Packets parked at a frozen ingress die with the node.
  frozen_rx_[static_cast<std::size_t>(node_id)].clear();
}

void Fabric::inject_recover(int node_id) { fault_at(node_id).crashed = false; }

void Fabric::inject_freeze(int node_id) { fault_at(node_id).frozen = true; }

void Fabric::inject_unfreeze(int node_id) {
  NodeFaultState& f = fault_at(node_id);
  if (!f.frozen) return;
  f.frozen = false;
  // The backlog bursts into the receive path at the unfreeze instant —
  // the post-hang interrupt storm a real host sees.
  auto& held = frozen_rx_[static_cast<std::size_t>(node_id)];
  for (Message& m : held) nic(node_id).rx(std::move(m));
  held.clear();
}

void Fabric::inject_link_fault(int node_id, sim::Duration extra_latency,
                               double loss) {
  NodeFaultState& f = fault_at(node_id);
  f.link_extra_latency = extra_latency;
  f.link_loss = loss;
}

void Fabric::clear_link_fault(int node_id) {
  inject_link_fault(node_id, {}, 0.0);
}

sim::Duration Fabric::link_extra(int src, int dst) const {
  return fault_state(src).link_extra_latency +
         fault_state(dst).link_extra_latency;
}

bool Fabric::sample_link_drop(int src, int dst) {
  const double loss = fault_state(src).link_loss + fault_state(dst).link_loss;
  if (loss <= 0.0) return false;  // healthy path: no RNG consumed
  return fault_rng_.chance(loss);
}

void Fabric::deliver_to_socket(const Message& msg) {
  Connection& c = *conns_.at(static_cast<std::size_t>(msg.conn));
  c.endpoint(msg.dst_side).deliver(msg);
}

}  // namespace rdmamon::net
