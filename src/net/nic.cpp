#include "net/nic.hpp"

#include <utility>

namespace rdmamon::net {

Nic::Nic(Fabric& fabric, os::Node& node) : fabric_(fabric), node_(node) {
  if (fabric.config().nic_ctx_cache_entries > 0) {
    ctx_cache_ =
        std::make_unique<NicCtxCache>(fabric.config().nic_ctx_cache_entries);
  }
  if (fabric.config().qos.enabled) {
    arbiter_ = std::make_unique<TenantArbiter>(
        fabric.simu(), fabric.config().qos, fabric.config().bandwidth_bps);
  }
  // Snapshot-time export of the NIC's always-on introspection counters;
  // a no-op bind when no registry is installed.
  collector_.bind(fabric.simu(), [this](telemetry::Registry& reg) {
    const telemetry::Labels by_node{{"node", node_.name()}};
    reg.gauge("net.nic.tx_packets", by_node)
        .set(static_cast<double>(tx_packets_));
    reg.gauge("net.nic.rx_packets", by_node)
        .set(static_cast<double>(rx_packets_));
    reg.gauge("net.nic.rx_deferred", by_node)
        .set(static_cast<double>(rx_deferred_));
    reg.gauge("net.nic.rdma_served", by_node)
        .set(static_cast<double>(rdma_served_));
    reg.gauge("net.nic.rdma_posted", by_node)
        .set(static_cast<double>(rdma_posted_));
    reg.gauge("net.nic.rdma_wire_bytes", by_node)
        .set(static_cast<double>(rdma_wire_bytes_));
    reg.gauge("net.nic.qpc_hits", by_node)
        .set(static_cast<double>(qpc_hits()));
    reg.gauge("net.nic.qpc_misses", by_node)
        .set(static_cast<double>(qpc_misses()));
    reg.gauge("net.nic.qpc_evictions", by_node)
        .set(static_cast<double>(qpc_evictions()));
    reg.gauge("net.verbs.unsignaled_posted", by_node)
        .set(static_cast<double>(unsignaled_posted_));
    if (arbiter_ != nullptr) {
      // Per-tenant QoS counters, iterated in ascending tenant order so
      // snapshots are deterministic.
      for (const TenantId t : arbiter_->tenants()) {
        const TenantArbiter::Stats s = arbiter_->stats(t);
        telemetry::Labels l = by_node;
        l.add("tenant", std::to_string(t));
        reg.gauge("net.qos.admitted", l).set(static_cast<double>(s.admitted));
        reg.gauge("net.qos.deferred", l).set(static_cast<double>(s.deferred));
        reg.gauge("net.qos.dropped", l).set(static_cast<double>(s.dropped));
        reg.gauge("net.qos.admitted_bytes", l)
            .set(static_cast<double>(s.admitted_bytes));
        reg.gauge("net.qos.queue_depth", l)
            .set(static_cast<double>(s.queue_depth));
      }
    }
  });
  if (telemetry::Registry* reg = telemetry::Registry::of(fabric.simu())) {
    fr_ = reg->recorder().ring("net." + node.name());
  }
}

// --- two-sided ----------------------------------------------------------------

void Nic::tx(Message msg) {
  ++tx_packets_;
  sim::Simulation& simu = fabric_.simu();
  node_.stats().on_net_bytes(msg.bytes, simu.now());
  // FIFO serialisation on the TX link.
  const sim::TimePoint start =
      tx_busy_ > simu.now() ? tx_busy_ : simu.now();
  const sim::Duration ser = sim::nsec(static_cast<std::int64_t>(
      static_cast<double>(msg.bytes) / fabric_.config().bandwidth_bps * 1e9));
  tx_busy_ = start + ser;
  simu.at(tx_busy_, [this, msg = std::move(msg)] { fabric_.ship(msg); });
}

int Nic::pick_rx_cpu() {
  const int fixed = fabric_.config().rx_irq_cpu;
  const int ncpus = node_.config().cpus;
  if (fixed >= 0 && fixed < ncpus) return fixed;
  rr_cpu_ = (rr_cpu_ + 1) % ncpus;
  return rr_cpu_;
}

void Nic::rx(Message msg) {
  ++rx_packets_;
  sim::Simulation& simu = fabric_.simu();
  node_.stats().on_net_bytes(msg.bytes, simu.now());
  const int cpu = pick_rx_cpu();
  os::IrqController& irq = node_.irq();
  const os::NodeConfig& ncfg = node_.config();
  // Keep-up heuristic: protocol processing runs inline in IRQ context
  // while the receive path is keeping up (short HW queue, empty softirq
  // backlog); otherwise only the ack runs in the handler and the packet is
  // deferred to ksoftirqd — which competes with runnable threads.
  const bool inline_ok =
      irq.softirq_backlog(cpu) == 0 &&
      irq.pending_hard(cpu, os::IrqType::NetRx) < ncfg.rx_inline_budget;
  if (inline_ok) {
    irq.raise(
        cpu, os::IrqType::NetRx,
        [this, msg] { fabric_.deliver_to_socket(msg); },
        /*extra_cost=*/ncfg.softirq_packet_cost);
  } else {
    ++rx_deferred_;
    irq.raise(cpu, os::IrqType::NetRx, [this, cpu, msg,
                                        cost = ncfg.softirq_packet_cost] {
      node_.irq().raise_softirq(
          cpu, os::SoftirqItem{
                   cost, [this, msg] { fabric_.deliver_to_socket(msg); }});
    });
  }
}

// --- one-sided ------------------------------------------------------------------

namespace {

/// Transport-level failure: the RC state machine retransmits until the
/// retry budget is spent, then flushes the WR with RetryExceeded. The
/// initiator always gets a completion — nothing hangs on a dead peer.
void fail_after_retries(Fabric& fabric, Completion c,
                        std::function<void(Completion)> done) {
  c.status = WcStatus::RetryExceeded;
  fabric.simu().after(fabric.config().rdma_retry_timeout,
                      [&fabric, c = std::move(c),
                       done = std::move(done)]() mutable {
                        c.completed = fabric.simu().now();
                        done(std::move(c));
                      });
}

}  // namespace

MrKey Nic::register_mr(std::size_t bytes, std::function<std::any()> reader,
                       bool remote_writable,
                       std::function<void(const std::any&)> writer,
                       TenantId tenant) {
  MemoryRegion mr;
  mr.rkey = next_rkey_++;
  mr.bytes = bytes;
  mr.remote_writable = remote_writable;
  mr.tenant = tenant;
  mr.reader = std::move(reader);
  mr.writer = std::move(writer);
  const MrKey key{mr.rkey};
  regions_.emplace(mr.rkey, std::move(mr));
  return key;
}

bool Nic::deregister_mr(MrKey key) {
  if (ctx_cache_) ctx_cache_->erase(kMrKeyBit | key.key);
  return regions_.erase(key.key) > 0;
}

sim::Duration Nic::charge_qpc(std::uint64_t ctx_id, TenantId tenant) {
  if (ctx_cache_ == nullptr || ctx_id == 0) return sim::Duration{};
  if (ctx_cache_->access(kQpcKey | ctx_id, tenant)) return sim::Duration{};
  // Miss: the context is fetched from host memory through the NIC's one
  // fetch engine — concurrent misses queue behind each other, so a post
  // burst over more contexts than the cache holds collapses into a
  // serial context-reload train (the RDMAvisor thrash regime).
  sim::Simulation& simu = fabric_.simu();
  const sim::TimePoint start =
      ctx_fetch_busy_ > simu.now() ? ctx_fetch_busy_ : simu.now();
  ctx_fetch_busy_ = start + fabric_.config().nic_ctx_miss_penalty;
  return ctx_fetch_busy_ - simu.now();
}

sim::Duration Nic::charge_mr(std::uint32_t rkey) {
  if (ctx_cache_ == nullptr) return sim::Duration{};
  // The MR entry is owned by the region's registering tenant (the region
  // may already be gone — the rkey resolves later — in which case the
  // entry is charged to the system plane).
  auto it = regions_.find(rkey);
  const TenantId owner = it != regions_.end() ? it->second.tenant : 0;
  if (ctx_cache_->access(kMrKeyBit | rkey, owner)) return sim::Duration{};
  // MR entry miss stalls the (already serialised) DMA engine while the
  // entry is fetched; the caller adds this to the service time.
  return fabric_.config().nic_ctx_miss_penalty;
}

void Nic::rdma_read(int target_node, MrKey rkey, std::size_t len,
                    std::uint64_t wr_id,
                    std::function<void(Completion)> done,
                    std::uint64_t ctx_id, TenantId tenant) {
  ++rdma_posted_;
  if (fr_ != nullptr) {
    // Flight-record the post and wrap `done` so every completion path
    // (success, retry-exceeded, invalid key) lands exactly one event with
    // the completion's own timestamp.
    fr_->record("read.post", target_node, static_cast<std::int64_t>(wr_id),
                static_cast<double>(len));
    done = [fr = fr_, done = std::move(done)](Completion c) mutable {
      fr->record_at(c.completed, "read.comp", static_cast<std::int64_t>(c.status),
                    static_cast<std::int64_t>(c.wr_id),
                    static_cast<double>((c.completed - c.posted).ns));
      done(std::move(c));
    };
  }
  sim::Simulation& simu = fabric_.simu();
  const FabricConfig& cfg = fabric_.config();
  rdma_wire_bytes_ += cfg.rdma_request_bytes + len;
  Completion c;
  c.wr_id = wr_id;
  c.posted = simu.now();
  if (arbiter_ != nullptr) {
    // Fabric QoS: the op's full wire footprint passes the per-tenant
    // token bucket + WFQ arbiter before the wire logic runs. A queue-cap
    // refusal drops the WR; the RC layer error-completes it exactly like
    // a retry-budget exhaustion.
    const std::size_t footprint = cfg.rdma_request_bytes + len;
    Completion drop = c;
    if (!arbiter_->submit(
            tenant, footprint,
            [this, target_node, rkey, len, c, done, ctx_id, tenant]() mutable {
              start_read(target_node, rkey, len, std::move(c), std::move(done),
                         ctx_id, tenant);
            })) {
      fail_after_retries(fabric_, std::move(drop), std::move(done));
    }
    return;
  }
  start_read(target_node, rkey, len, std::move(c), std::move(done), ctx_id,
             tenant);
}

void Nic::start_read(int target_node, MrKey rkey, std::size_t len,
                     Completion c, std::function<void(Completion)> done,
                     std::uint64_t ctx_id, TenantId tenant) {
  sim::Simulation& simu = fabric_.simu();
  const FabricConfig& cfg = fabric_.config();
  // Dead host at EITHER end or lost request packet: the op can never
  // succeed. The initiator-side check mirrors the socket path (a crashed
  // node's packets vanish both ways) — without it a crashed front end
  // would keep one-sided monitoring through its own NIC.
  if (fabric_.fault_state(node_id()).crashed ||
      fabric_.fault_state(target_node).crashed ||
      fabric_.sample_link_drop(node_id(), target_node)) {
    fail_after_retries(fabric_, std::move(c), std::move(done));
    return;
  }
  // QP-context cache touch at the initiator: an evicted context delays
  // the request by the (serialised) fetch penalty before it reaches the
  // wire. Zero with the default unbounded cache.
  const sim::Duration qpc_delay = charge_qpc(ctx_id, tenant);
  // Request packet to the target NIC.
  const sim::Duration req = qpc_delay +
                            cfg.wire_delay(cfg.rdma_request_bytes) +
                            fabric_.link_extra(node_id(), target_node);
  Nic& target = fabric_.nic(target_node);
  simu.after(req, [&target, this, rkey, len, c,
                   done = std::move(done)]() mutable {
    sim::Simulation& s = fabric_.simu();
    const FabricConfig& fc = fabric_.config();
    if (fabric_.fault_state(target.node_id()).crashed) {
      // Died while the request was in flight. NOTE: a *frozen* target
      // still serves the read — the DMA engine needs no host CPU, the
      // property the paper's RDMA-Sync scheme exploits.
      fail_after_retries(fabric_, std::move(c), std::move(done));
      return;
    }
    // DMA engine serialisation at the target NIC (an MR-entry cache miss
    // stalls the engine for the fetch).
    const sim::TimePoint start =
        target.dma_busy_ > s.now() ? target.dma_busy_ : s.now();
    const sim::Duration service =
        target.charge_mr(rkey.key) + fc.rdma_dma_base +
        sim::nsec(static_cast<std::int64_t>(
            static_cast<double>(len) * fc.rdma_dma_per_byte_ns));
    target.dma_busy_ = start + service;
    s.at(target.dma_busy_, [&target, this, rkey, len, c,
                            done = std::move(done)]() mutable {
      ++target.rdma_served_;
      // Resolve the rkey only now: a region deregistered while the request
      // was on the wire (or queued behind the DMA engine) must fail with
      // InvalidKey, exactly like a write — never read through a stale entry.
      auto it = target.regions_.find(rkey.key);
      if (it == target.regions_.end()) {
        c.status = WcStatus::InvalidKey;
      } else if (it->second.reader) {
        // THE key semantic: the content is sampled at the DMA instant.
        c.data = it->second.reader();
      }
      // Response back to the initiator (may die on a lossy return path,
      // or find either host dead meanwhile).
      if (fabric_.fault_state(target.node_id()).crashed ||
          fabric_.fault_state(node_id()).crashed ||
          fabric_.sample_link_drop(target.node_id(), node_id())) {
        fail_after_retries(fabric_, std::move(c), std::move(done));
        return;
      }
      const sim::Duration resp =
          fabric_.config().wire_delay(len) +
          fabric_.link_extra(target.node_id(), node_id());
      fabric_.simu().after(resp, [this, c = std::move(c),
                                  done = std::move(done)]() mutable {
        c.completed = fabric_.simu().now();
        done(std::move(c));
      });
    });
  });
}

void Nic::rdma_write(int target_node, MrKey rkey, std::any value,
                     std::size_t len, std::uint64_t wr_id,
                     std::function<void(Completion)> done,
                     std::uint64_t ctx_id, TenantId tenant) {
  ++rdma_posted_;
  if (fr_ != nullptr) {
    fr_->record("write.post", target_node, static_cast<std::int64_t>(wr_id),
                static_cast<double>(len));
    done = [fr = fr_, done = std::move(done)](Completion c) mutable {
      fr->record_at(c.completed, "write.comp",
                    static_cast<std::int64_t>(c.status),
                    static_cast<std::int64_t>(c.wr_id),
                    static_cast<double>((c.completed - c.posted).ns));
      done(std::move(c));
    };
  }
  sim::Simulation& simu = fabric_.simu();
  const FabricConfig& cfg = fabric_.config();
  rdma_wire_bytes_ += 2 * cfg.rdma_request_bytes + len;
  Completion c;
  c.wr_id = wr_id;
  c.posted = simu.now();
  if (arbiter_ != nullptr) {
    const std::size_t footprint = 2 * cfg.rdma_request_bytes + len;
    Completion drop = c;
    if (!arbiter_->submit(
            tenant, footprint,
            [this, target_node, rkey, value, len, c, done, ctx_id,
             tenant]() mutable {
              start_write(target_node, rkey, std::move(value), len,
                          std::move(c), std::move(done), ctx_id, tenant);
            })) {
      fail_after_retries(fabric_, std::move(drop), std::move(done));
    }
    return;
  }
  start_write(target_node, rkey, std::move(value), len, std::move(c),
              std::move(done), ctx_id, tenant);
}

void Nic::start_write(int target_node, MrKey rkey, std::any value,
                      std::size_t len, Completion c,
                      std::function<void(Completion)> done,
                      std::uint64_t ctx_id, TenantId tenant) {
  sim::Simulation& simu = fabric_.simu();
  const FabricConfig& cfg = fabric_.config();
  if (fabric_.fault_state(node_id()).crashed ||
      fabric_.fault_state(target_node).crashed ||
      fabric_.sample_link_drop(node_id(), target_node)) {
    fail_after_retries(fabric_, std::move(c), std::move(done));
    return;
  }
  // Write carries the payload with the request.
  const sim::Duration req = charge_qpc(ctx_id, tenant) +
                            cfg.wire_delay(cfg.rdma_request_bytes + len) +
                            fabric_.link_extra(node_id(), target_node);
  Nic& target = fabric_.nic(target_node);
  simu.after(req, [&target, this, rkey, len, c, value = std::move(value),
                   done = std::move(done)]() mutable {
    sim::Simulation& s = fabric_.simu();
    const FabricConfig& fc = fabric_.config();
    if (fabric_.fault_state(target.node_id()).crashed) {
      fail_after_retries(fabric_, std::move(c), std::move(done));
      return;
    }
    const sim::TimePoint start =
        target.dma_busy_ > s.now() ? target.dma_busy_ : s.now();
    const sim::Duration service =
        target.charge_mr(rkey.key) + fc.rdma_dma_base +
        sim::nsec(static_cast<std::int64_t>(
            static_cast<double>(len) * fc.rdma_dma_per_byte_ns));
    target.dma_busy_ = start + service;
    s.at(target.dma_busy_, [&target, this, rkey, c, value = std::move(value),
                            done = std::move(done)]() mutable {
      ++target.rdma_served_;
      auto it = target.regions_.find(rkey.key);
      if (it == target.regions_.end()) {
        c.status = WcStatus::InvalidKey;
      } else if (!it->second.remote_writable) {
        // Read-only exposure: the paper's defence for exporting kernel
        // memory. The write is discarded.
        c.status = WcStatus::ProtectionError;
      } else if (it->second.writer) {
        it->second.writer(value);
      }
      // Ack back to the initiator (small).
      if (fabric_.fault_state(target.node_id()).crashed ||
          fabric_.fault_state(node_id()).crashed ||
          fabric_.sample_link_drop(target.node_id(), node_id())) {
        fail_after_retries(fabric_, std::move(c), std::move(done));
        return;
      }
      const sim::Duration resp =
          fabric_.config().wire_delay(fabric_.config().rdma_request_bytes) +
          fabric_.link_extra(target.node_id(), node_id());
      fabric_.simu().after(resp, [this, c = std::move(c),
                                  done = std::move(done)]() mutable {
        c.completed = fabric_.simu().now();
        done(std::move(c));
      });
    });
  });
}

}  // namespace rdmamon::net
