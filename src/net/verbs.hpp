// ibverbs-style one-sided primitives: memory regions, RC queue pairs and
// completion queues. The semantics the paper exploits are preserved:
//
//  - RDMA READ is serviced entirely by the target NIC's DMA engine; no
//    target thread runs, no interrupt fires, no scheduler is involved.
//  - The value returned is the registered region's content *at the DMA
//    service instant* (a reader callback samples it then).
//  - Regions registered read-only reject remote writes with a protection
//    error — the paper's Section 6 security argument.
#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <functional>

#include "os/program.hpp"
#include "os/wait.hpp"
#include "sim/time.hpp"

namespace rdmamon::net {

class Nic;

/// Remote key naming a registered memory region on some node's NIC.
struct MrKey {
  std::uint32_t key = 0;
};

/// Registered memory region. `reader` snapshots the region's logical
/// content; for writable regions `writer` applies a remote write.
struct MemoryRegion {
  std::uint32_t rkey = 0;
  std::size_t bytes = 0;
  bool remote_writable = false;
  std::function<std::any()> reader;
  std::function<void(const std::any&)> writer;
};

enum class WcStatus {
  Success,
  ProtectionError,  ///< write to a read-only region
  InvalidKey,       ///< no such rkey at the target
  RetryExceeded,    ///< RC retransmit budget spent (lost packet / dead peer)
};

/// Work completion delivered to the initiator's CQ.
struct Completion {
  std::uint64_t wr_id = 0;
  WcStatus status = WcStatus::Success;
  std::any data;              ///< READ: the fetched snapshot
  sim::TimePoint posted{};    ///< when the WR was posted
  sim::TimePoint completed{}; ///< when the completion arrived
};

/// Completion queue with a blocking wait channel. A real verbs consumer
/// would poll; blocking on the wait queue models the same latency without
/// burning simulated front-end CPU (documented simplification).
class CompletionQueue {
 public:
  void push(Completion c) {
    q_.push_back(std::move(c));
    wq_.notify_all();
  }
  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }
  Completion pop() {
    Completion c = std::move(q_.front());
    q_.pop_front();
    return c;
  }
  os::WaitQueue& wait_queue() { return wq_; }

 private:
  std::deque<Completion> q_;
  os::WaitQueue wq_;
};

/// Reliable-connected queue pair from a local NIC to a remote node.
class QueuePair {
 public:
  QueuePair(Nic& local, int remote_node, CompletionQueue& cq)
      : local_(&local), remote_node_(remote_node), cq_(&cq) {}

  /// Posts a one-sided READ of `len` bytes from the remote region `rkey`.
  /// Completion (with the sampled data) lands in the CQ.
  void post_read(MrKey rkey, std::size_t len, std::uint64_t wr_id);

  /// Posts a one-sided WRITE of `value` to the remote region `rkey`.
  void post_write(MrKey rkey, std::any value, std::size_t len,
                  std::uint64_t wr_id);

  int remote_node() const { return remote_node_; }
  CompletionQueue& cq() { return *cq_; }

 private:
  Nic* local_;
  int remote_node_;
  CompletionQueue* cq_;
};

/// Subprogram: pays the WR post cost, posts a READ and blocks until its
/// completion arrives, storing it in `out`. The canonical front-end
/// monitoring primitive.
os::Program rdma_read_sync(os::SimThread& self, QueuePair& qp, MrKey rkey,
                           std::size_t len, Completion& out);

/// Subprogram: same for WRITE (used by tests and the reconfiguration
/// example; completes with ProtectionError on read-only regions).
os::Program rdma_write_sync(os::SimThread& self, QueuePair& qp, MrKey rkey,
                            std::any value, std::size_t len, Completion& out);

/// Deadline-aware variant of rdma_read_sync: posts the READ with `wr_id`
/// and waits for ITS completion until `deadline`. On timeout `ok` stays
/// false and the WR is abandoned — its completion (the fabric always
/// produces one, possibly RetryExceeded) arrives later and is discarded by
/// the wr_id match of a subsequent call on the same CQ.
os::Program rdma_read_sync_until(os::SimThread& self, QueuePair& qp,
                                 MrKey rkey, std::size_t len,
                                 std::uint64_t wr_id, sim::TimePoint deadline,
                                 Completion& out, bool& ok);

}  // namespace rdmamon::net
