// ibverbs-style one-sided primitives: memory regions, RC queue pairs and
// completion queues. The semantics the paper exploits are preserved:
//
//  - RDMA READ is serviced entirely by the target NIC's DMA engine; no
//    target thread runs, no interrupt fires, no scheduler is involved.
//  - The value returned is the registered region's content *at the DMA
//    service instant* (a reader callback samples it then).
//  - Regions registered read-only reject remote writes with a protection
//    error — the paper's Section 6 security argument.
#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_set>
#include <vector>

#include "os/program.hpp"
#include "os/wait.hpp"
#include "sim/time.hpp"

namespace rdmamon::net {

class Nic;

/// User-space cost of ringing the doorbell for one post (or one merged
/// batch of posts — the RDMAbox-style amortisation the scatter engine
/// exploits).
inline constexpr sim::Duration kDoorbellCost = sim::nsec(300);

/// Remote key naming a registered memory region on some node's NIC.
struct MrKey {
  std::uint32_t key = 0;
};

/// Registered memory region. `reader` snapshots the region's logical
/// content; for writable regions `writer` applies a remote write.
struct MemoryRegion {
  std::uint32_t rkey = 0;
  std::size_t bytes = 0;
  bool remote_writable = false;
  std::function<std::any()> reader;
  std::function<void(const std::any&)> writer;
};

enum class WcStatus {
  Success,
  ProtectionError,  ///< write to a read-only region
  InvalidKey,       ///< no such rkey at the target
  RetryExceeded,    ///< RC retransmit budget spent (lost packet / dead peer)
};

/// Work completion delivered to the initiator's CQ.
struct Completion {
  std::uint64_t wr_id = 0;
  WcStatus status = WcStatus::Success;
  std::any data;              ///< READ: the fetched snapshot
  sim::TimePoint posted{};    ///< when the WR was posted
  sim::TimePoint completed{}; ///< when the completion arrived
};

/// Completion queue with a blocking wait channel. A real verbs consumer
/// would poll; blocking on the wait queue models the same latency without
/// burning simulated front-end CPU (documented simplification).
///
/// Several QPs may share one CQ (the scatter engine's shared-CQ demux):
/// consumers match completions by wr_id, with ids handed out by
/// alloc_wr_id() so they are unique per CQ. Stale-completion handling is
/// centralized here — a consumer that gives up on a WR calls forget() and
/// the CQ drops that completion whether it is already queued or still in
/// flight, so no caller ever needs its own discard loop.
class CompletionQueue {
 public:
  void push(Completion c) {
    ++pushed_;
    if (forgotten_.erase(c.wr_id) > 0) {
      ++stale_dropped_;  // abandoned WR: drop on arrival
      return;
    }
    q_.push_back(std::move(c));
    wq_.notify_all();
  }
  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }
  Completion pop() {
    Completion c = std::move(q_.front());
    q_.pop_front();
    return c;
  }

  /// Monotonic work-request id source. A CQ shared by many QPs hands out
  /// CQ-unique ids, so one drain loop can demux all consumers' completions
  /// by wr_id alone.
  std::uint64_t alloc_wr_id() { return next_wr_id_++; }

  /// Non-destructive lookup: the queued completion with this wr_id, or
  /// nullptr if it has not arrived. The pointer is valid until the queue
  /// is next modified.
  const Completion* find(std::uint64_t wr_id) const;

  /// Filtered pop: removes and returns the completion matching `wr_id`,
  /// leaving other consumers' completions queued. False if not arrived.
  bool try_pop(std::uint64_t wr_id, Completion& out);

  /// Abandons a WR (e.g. its deadline passed): a queued completion with
  /// this id is dropped now; one still in flight is dropped when it lands.
  /// The RC fabric always produces exactly one completion per WR, so every
  /// forgotten id is eventually reclaimed.
  void forget(std::uint64_t wr_id);

  os::WaitQueue& wait_queue() { return wq_; }

  // --- introspection (exported through the telemetry plane) ----------------
  /// Completions delivered by the fabric (including ones dropped stale).
  std::uint64_t completions_pushed() const { return pushed_; }
  /// forget() calls (attempts abandoned past their deadline).
  std::uint64_t forgets() const { return forgets_; }
  /// Forgotten-WR completions discarded (on arrival or already queued).
  std::uint64_t stale_dropped() const { return stale_dropped_; }

 private:
  std::deque<Completion> q_;
  std::unordered_set<std::uint64_t> forgotten_;
  std::uint64_t next_wr_id_ = 1;
  std::uint64_t pushed_ = 0;
  std::uint64_t forgets_ = 0;
  std::uint64_t stale_dropped_ = 0;
  os::WaitQueue wq_;
};

/// One work request of a multi-READ post (see QueuePair::post_read_batch).
struct ReadWr {
  MrKey rkey;
  std::size_t len = 0;
  std::uint64_t wr_id = 0;
};

/// Reliable-connected queue pair from a local NIC to a remote node.
class QueuePair {
 public:
  QueuePair(Nic& local, int remote_node, CompletionQueue& cq)
      : local_(&local), remote_node_(remote_node), cq_(&cq) {}

  /// Posts a one-sided READ of `len` bytes from the remote region `rkey`.
  /// Completion (with the sampled data) lands in the CQ.
  void post_read(MrKey rkey, std::size_t len, std::uint64_t wr_id);

  /// Posts a chain of READs as one work-request list: every WR is handed
  /// to the NIC back-to-back and the caller pays a single doorbell cost
  /// for the whole chain (charged by the posting subprogram, not here).
  void post_read_batch(const std::vector<ReadWr>& wrs);

  /// Posts a one-sided WRITE of `value` to the remote region `rkey`.
  void post_write(MrKey rkey, std::any value, std::size_t len,
                  std::uint64_t wr_id);

  /// Re-points this QP's completions at another CQ (e.g. an engine's
  /// shared CQ). Must not be called with WRs in flight.
  void bind_cq(CompletionQueue& cq) { cq_ = &cq; }

  int remote_node() const { return remote_node_; }
  CompletionQueue& cq() { return *cq_; }

 private:
  Nic* local_;
  int remote_node_;
  CompletionQueue* cq_;
};

/// One entry of a cross-QP scatter batch: a READ on some QP. The QPs may
/// target different remote nodes; sharing one CQ lets a single gatherer
/// drain all their completions.
struct ReadBatchEntry {
  QueuePair* qp = nullptr;
  MrKey rkey;
  std::size_t len = 0;
  std::uint64_t wr_id = 0;
};

/// Subprogram: posts every READ in `batch` back-to-back, charging ONE
/// doorbell cost for the lot — the WR-merging trick (RDMAbox) that makes a
/// scatter round's issue phase O(1) in doorbells instead of O(N).
os::Program post_read_batch(os::SimThread& self,
                            const std::vector<ReadBatchEntry>& batch);

/// Subprogram: pays the WR post cost, posts a READ and blocks until its
/// completion arrives, storing it in `out`. The canonical front-end
/// monitoring primitive.
os::Program rdma_read_sync(os::SimThread& self, QueuePair& qp, MrKey rkey,
                           std::size_t len, Completion& out);

/// Subprogram: same for WRITE (used by tests and the reconfiguration
/// example; completes with ProtectionError on read-only regions).
os::Program rdma_write_sync(os::SimThread& self, QueuePair& qp, MrKey rkey,
                            std::any value, std::size_t len, Completion& out);

/// Deadline-aware variant of rdma_read_sync: posts the READ with `wr_id`
/// and waits for ITS completion until `deadline`. On timeout `ok` stays
/// false and the WR is abandoned via CompletionQueue::forget — the CQ
/// drops its completion (the fabric always produces one, possibly
/// RetryExceeded) whenever it lands.
os::Program rdma_read_sync_until(os::SimThread& self, QueuePair& qp,
                                 MrKey rkey, std::size_t len,
                                 std::uint64_t wr_id, sim::TimePoint deadline,
                                 Completion& out, bool& ok);

}  // namespace rdmamon::net
