// ibverbs-style one-sided primitives: memory regions, RC queue pairs and
// completion queues. The semantics the paper exploits are preserved:
//
//  - RDMA READ is serviced entirely by the target NIC's DMA engine; no
//    target thread runs, no interrupt fires, no scheduler is involved.
//  - The value returned is the registered region's content *at the DMA
//    service instant* (a reader callback samples it then).
//  - Regions registered read-only reject remote writes with a protection
//    error — the paper's Section 6 security argument.
//
// On top of the basic primitives sits the verbs fast path used at scale
// (rdmaperf's -cq_mod / -tx knobs, RDMAvisor's shared connections):
//
//  - selective signaling: a QpContext posting with signal_every = k marks
//    only every k-th WR signaled; an unsignaled WR that SUCCEEDS raises no
//    CQE (its data still lands) and is proven complete by the next
//    signaled/error completion on the same context (RC ordering). Error
//    completions always surface immediately.
//  - completion coalescing: a CQ bound to a moderation config batches its
//    wait-queue notifications (count or period, errors flush), so one
//    consumer wakeup drains many completions.
//  - inflight windows: a QpContext with send_depth > 0 defers posts past
//    the window and drains them as completions free slots (backpressure
//    instead of unbounded send queues).
//  - shared contexts: many QueuePairs may post through ONE QpContext
//    (DCT-style multiplexing) so a front end watching thousands of back
//    ends occupies a handful of NIC context-cache entries instead of
//    thrashing it (see net/qpcache.hpp).
#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/qos.hpp"
#include "os/program.hpp"
#include "os/wait.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace rdmamon::net {

class Nic;

/// User-space cost of ringing the doorbell for one post (or one merged
/// batch of posts — the RDMAbox-style amortisation the scatter engine
/// exploits).
inline constexpr sim::Duration kDoorbellCost = sim::nsec(300);

/// Verbs fast-path knobs, carried from ClusterConfig / ScaleOutConfig down
/// to the wiring that creates contexts and CQs. The defaults reproduce the
/// historical behaviour exactly: every WR signaled, every completion
/// notified immediately, unbounded send queues, one dedicated context per
/// QueuePair.
struct VerbsTuning {
  /// Signal every k-th WR (rdmaperf -cq_mod). 1 = all signaled.
  int signal_every = 1;
  /// Per-context inflight window (rdmaperf -tx). 0 = unbounded.
  std::size_t send_depth = 0;
  /// DCT-style shared contexts per front end: monitoring QPs round-robin
  /// over this many QpContexts instead of each owning one. 0 = dedicated.
  int shared_contexts = 0;
  /// CQ notification moderation: wake the consumer only per this many
  /// surfaced completions (1 = immediate)...
  int cq_mod_count = 1;
  /// ...or when this much time passed since the first held notification.
  sim::Duration cq_mod_period = sim::usec(16);
};

/// Remote key naming a registered memory region on some node's NIC.
struct MrKey {
  std::uint32_t key = 0;
};

/// Registered memory region. `reader` snapshots the region's logical
/// content; for writable regions `writer` applies a remote write.
struct MemoryRegion {
  std::uint32_t rkey = 0;
  std::size_t bytes = 0;
  bool remote_writable = false;
  /// Registering tenant: the owner a cached MR entry's eviction is
  /// attributed to (0 = system plane).
  TenantId tenant = 0;
  std::function<std::any()> reader;
  std::function<void(const std::any&)> writer;
};

enum class WcStatus {
  Success,
  ProtectionError,  ///< write to a read-only region
  InvalidKey,       ///< no such rkey at the target
  RetryExceeded,    ///< RC retransmit budget spent (lost packet / dead peer)
};

/// Work completion delivered to the initiator's CQ.
struct Completion {
  std::uint64_t wr_id = 0;
  WcStatus status = WcStatus::Success;
  std::any data;              ///< READ: the fetched snapshot
  sim::TimePoint posted{};    ///< when the WR was posted
  sim::TimePoint completed{}; ///< when the completion arrived
};

/// Completion queue with a blocking wait channel. A real verbs consumer
/// would poll; blocking on the wait queue models the same latency without
/// burning simulated front-end CPU (documented simplification).
///
/// Several QPs may share one CQ (the scatter engine's shared-CQ demux):
/// consumers match completions by wr_id, with ids handed out by
/// alloc_wr_id() so they are unique per CQ. Stale-completion handling is
/// centralized here — a consumer that gives up on a WR calls forget() and
/// the CQ drops that completion whether it is already queued, still in
/// flight, or held unsignaled in a context's shadow buffer, so no caller
/// ever needs its own discard loop.
///
/// Selective signaling: QpContexts deliver through deliver(), which holds
/// an unsignaled SUCCESS in a per-context shadow buffer (no CQE, no
/// notification) until a later signaled or error completion on the same
/// context proves — by RC in-order execution — that it retired; then the
/// shadowed data surfaces for the consumer in post order. Errors always
/// surface immediately. Consumers are unaffected: find/try_pop/pop see
/// surfaced completions only.
class CompletionQueue {
 public:
  CompletionQueue() = default;
  ~CompletionQueue();
  CompletionQueue(const CompletionQueue&) = delete;
  CompletionQueue& operator=(const CompletionQueue&) = delete;

  /// Context-free delivery (always signaled). Kept for direct users; the
  /// QueuePair path goes through deliver().
  void push(Completion c);

  /// Delivery from a QpContext: `seq` is the WR's per-context post
  /// sequence, `signaled` whether it carries a CQE.
  void deliver(std::uint64_t ctx, std::uint64_t seq, bool signaled,
               Completion c);

  /// Enables notification moderation (VerbsTuning::cq_mod_*): wait-queue
  /// wakeups are batched per `count` surfaced completions, with a timer
  /// flushing a partial batch after `period`. Errors flush immediately.
  /// Call before completions flow; `simu` drives the flush timer.
  void bind_moderation(sim::Simulation& simu, int count, sim::Duration period);

  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }
  Completion pop() {
    Completion c = std::move(q_.front());
    q_.pop_front();
    return c;
  }

  /// Monotonic work-request id source. A CQ shared by many QPs hands out
  /// CQ-unique ids, so one drain loop can demux all consumers' completions
  /// by wr_id alone.
  std::uint64_t alloc_wr_id() { return next_wr_id_++; }

  /// Non-destructive lookup: the queued completion with this wr_id, or
  /// nullptr if it has not arrived. The pointer is valid until the queue
  /// is next modified.
  const Completion* find(std::uint64_t wr_id) const;

  /// Filtered pop: removes and returns the completion matching `wr_id`,
  /// leaving other consumers' completions queued. False if not arrived.
  bool try_pop(std::uint64_t wr_id, Completion& out);

  /// Abandons a WR (e.g. its deadline passed): a queued completion with
  /// this id is dropped now; one held unsignaled in a shadow buffer is
  /// reclaimed now; one still in flight is dropped when it lands. The RC
  /// fabric always produces exactly one completion per WR, so every
  /// forgotten id is eventually reclaimed — including unsignaled WRs
  /// abandoned mid-window, which must not leak their shadow slot.
  void forget(std::uint64_t wr_id);

  os::WaitQueue& wait_queue() { return wq_; }

  // --- introspection (exported through the telemetry plane) ----------------
  /// Completions delivered by the fabric (including ones dropped stale and
  /// unsignaled ones held in shadow).
  std::uint64_t completions_pushed() const { return pushed_; }
  /// forget() calls (attempts abandoned past their deadline).
  std::uint64_t forgets() const { return forgets_; }
  /// Forgotten-WR completions discarded (on arrival, queued, or shadowed).
  std::uint64_t stale_dropped() const { return stale_dropped_; }
  /// CQEs that surfaced carrying a signal (the ~N/k of a moderated round).
  std::uint64_t cqes_signaled() const { return cqes_signaled_; }
  /// Unsignaled successes retired via a later closer's CQE.
  std::uint64_t unsignaled_retired() const { return unsignaled_retired_; }
  /// Wait-queue notification batches fired.
  std::uint64_t notifies() const { return notifies_; }
  /// Notification batches that covered more than one completion — polls
  /// the consumer saved relative to signal-everything.
  std::uint64_t coalesced_polls() const { return coalesced_polls_; }
  /// Unsignaled successes currently held awaiting a closer.
  std::size_t shadowed() const { return shadow_count_; }

 private:
  struct Shadowed {
    std::uint64_t seq = 0;
    Completion c;
  };
  struct CtxState {
    std::deque<Shadowed> shadow;     ///< unsignaled successes, post order
    std::uint64_t released_upto = 0; ///< every seq below is proven retired
  };

  /// Surfaces earlier shadowed successes of `st` proven complete by a CQE
  /// with sequence `upto` (exclusive).
  void release_shadows(CtxState& st, std::uint64_t upto);
  /// One completion surfaced into q_: apply the notification policy.
  void note_surfaced(bool urgent);
  void fire_notify();

  std::deque<Completion> q_;
  std::unordered_set<std::uint64_t> forgotten_;
  std::unordered_map<std::uint64_t, CtxState> ctxs_;
  std::uint64_t next_wr_id_ = 1;
  std::uint64_t pushed_ = 0;
  std::uint64_t forgets_ = 0;
  std::uint64_t stale_dropped_ = 0;
  std::uint64_t cqes_signaled_ = 0;
  std::uint64_t unsignaled_retired_ = 0;
  std::uint64_t notifies_ = 0;
  std::uint64_t coalesced_polls_ = 0;
  std::size_t shadow_count_ = 0;
  // Notification moderation (bind_moderation; defaults = immediate).
  sim::Simulation* simu_ = nullptr;
  int mod_count_ = 1;
  sim::Duration mod_period_{};
  sim::EventHandle mod_timer_;
  bool mod_timer_armed_ = false;
  int since_fire_ = 0;  ///< surfaced completions since the last wakeup
  os::WaitQueue wq_;
};

/// NIC-resident connection context: the send queue a QueuePair posts
/// through, carrying the signal-every-k policy, the inflight window, and
/// the identity the NIC's context cache is keyed on. One per QueuePair by
/// default (dedicated RC); share one across many QueuePairs for DCT-style
/// multiplexing. Always hold via shared_ptr (completions keep it alive).
class QpContext : public std::enable_shared_from_this<QpContext> {
 public:
  explicit QpContext(Nic& local, int signal_every = 1,
                     std::size_t send_depth = 0);

  /// Posts a READ through this context to `target_node`, completing into
  /// `cq`. `force_signal` overrides the every-k policy (chain closers,
  /// solitary posts a consumer synchronously waits on).
  void post_read(int target_node, MrKey rkey, std::size_t len,
                 std::uint64_t wr_id, CompletionQueue& cq, bool force_signal);

  /// Posts a WRITE. Writes are always signaled (the publishers that use
  /// them are completion-driven) but share the inflight window.
  void post_write(int target_node, MrKey rkey, std::any value,
                  std::size_t len, std::uint64_t wr_id, CompletionQueue& cq);

  /// NIC context-cache identity (nonzero; allocated by the local NIC).
  std::uint64_t ctx_id() const { return ctx_id_; }
  int signal_every() const { return signal_every_; }
  std::size_t send_depth() const { return send_depth_; }

  /// Tenant identity stamped on every WR this context posts (fabric QoS
  /// arbitration + context-cache eviction attribution). Default 0: the
  /// system plane.
  void set_tenant(TenantId t) { tenant_ = t; }
  TenantId tenant() const { return tenant_; }

  // --- introspection --------------------------------------------------------
  std::size_t inflight() const { return inflight_; }
  std::size_t deferred_pending() const { return deferred_.size(); }
  std::uint64_t unsignaled_posted() const { return unsignaled_; }
  /// Posts that hit the window and waited for a free slot.
  std::uint64_t deferred_total() const { return deferred_total_; }

 private:
  struct Pending {
    bool is_write = false;
    int target = -1;
    MrKey rkey;
    std::size_t len = 0;
    std::uint64_t wr_id = 0;
    CompletionQueue* cq = nullptr;
    bool force_signal = true;
    std::any value;  ///< writes only
  };

  void submit(Pending p);
  void launch(Pending p);

  Nic* local_;
  std::uint64_t ctx_id_;
  int signal_every_;
  std::size_t send_depth_;
  TenantId tenant_ = 0;
  std::uint64_t seq_ = 0;      ///< per-context post sequence (launch order)
  std::size_t inflight_ = 0;
  std::deque<Pending> deferred_;
  std::uint64_t unsignaled_ = 0;
  std::uint64_t deferred_total_ = 0;
};

/// One work request of a multi-READ post (see QueuePair::post_read_batch).
struct ReadWr {
  MrKey rkey;
  std::size_t len = 0;
  std::uint64_t wr_id = 0;
};

/// Reliable-connected queue pair from a local NIC to a remote node. Posts
/// flow through its QpContext — a private one by default, or a shared one
/// passed at construction (DCT-style multiplexing; the context's NIC must
/// be the same `local`).
class QueuePair {
 public:
  QueuePair(Nic& local, int remote_node, CompletionQueue& cq,
            std::shared_ptr<QpContext> ctx = nullptr);

  /// Posts a one-sided READ of `len` bytes from the remote region `rkey`.
  /// Completion (with the sampled data) lands in the CQ. `force_signal`
  /// defaults true: a solitary post must carry its own CQE or a waiting
  /// consumer would hang; batched posts pass false and let the context's
  /// signal-every-k policy decide (the batch closer is forced).
  void post_read(MrKey rkey, std::size_t len, std::uint64_t wr_id,
                 bool force_signal = true);

  /// Posts a chain of READs as one work-request list: every WR is handed
  /// to the NIC back-to-back and the caller pays a single doorbell cost
  /// for the whole chain (charged by the posting subprogram, not here).
  /// The chain's last WR is force-signaled; the rest follow the context's
  /// signaling policy.
  void post_read_batch(const std::vector<ReadWr>& wrs);

  /// Posts a one-sided WRITE of `value` to the remote region `rkey`.
  void post_write(MrKey rkey, std::any value, std::size_t len,
                  std::uint64_t wr_id);

  /// Re-points this QP's completions at another CQ (e.g. an engine's
  /// shared CQ). Must not be called with WRs in flight.
  void bind_cq(CompletionQueue& cq) { cq_ = &cq; }

  /// Convenience: stamps this QP's context with a tenant identity (a
  /// shared context is stamped for all its QPs — they belong to one
  /// tenant by construction in DCT-style wiring).
  void set_tenant(TenantId t) { ctx_->set_tenant(t); }

  int remote_node() const { return remote_node_; }
  CompletionQueue& cq() { return *cq_; }
  QpContext& context() { return *ctx_; }
  const QpContext& context() const { return *ctx_; }
  const std::shared_ptr<QpContext>& context_ptr() const { return ctx_; }

 private:
  int remote_node_;
  CompletionQueue* cq_;
  std::shared_ptr<QpContext> ctx_;
};

/// Builds a pool of `tuning.shared_contexts` contexts on `nic` for
/// DCT-style multiplexed wiring (assign QueuePair i the context
/// pool[i % size]). Empty when shared_contexts <= 0 — dedicated mode.
std::vector<std::shared_ptr<QpContext>> make_context_pool(
    Nic& nic, const VerbsTuning& tuning);

/// One entry of a cross-QP scatter batch: a READ on some QP. The QPs may
/// target different remote nodes; sharing one CQ lets a single gatherer
/// drain all their completions.
struct ReadBatchEntry {
  QueuePair* qp = nullptr;
  MrKey rkey;
  std::size_t len = 0;
  std::uint64_t wr_id = 0;
};

/// Subprogram: posts every READ in `batch` back-to-back, charging ONE
/// doorbell cost for the lot — the WR-merging trick (RDMAbox) that makes a
/// scatter round's issue phase O(1) in doorbells instead of O(N). The
/// last WR of each distinct QpContext in the batch is force-signaled so
/// every context's chain closes with a CQE; the rest follow the contexts'
/// signal-every-k policy — a round of N READs over shared contexts
/// retires with ~N/k CQEs.
os::Program post_read_batch(os::SimThread& self,
                            const std::vector<ReadBatchEntry>& batch);

/// Subprogram: pays the WR post cost, posts a READ and blocks until its
/// completion arrives, storing it in `out`. The canonical front-end
/// monitoring primitive.
os::Program rdma_read_sync(os::SimThread& self, QueuePair& qp, MrKey rkey,
                           std::size_t len, Completion& out);

/// Subprogram: same for WRITE (used by tests and the reconfiguration
/// example; completes with ProtectionError on read-only regions).
os::Program rdma_write_sync(os::SimThread& self, QueuePair& qp, MrKey rkey,
                            std::any value, std::size_t len, Completion& out);

/// Deadline-aware variant of rdma_read_sync: posts the READ with `wr_id`
/// and waits for ITS completion until `deadline`. On timeout `ok` stays
/// false and the WR is abandoned via CompletionQueue::forget — the CQ
/// drops its completion (the fabric always produces one, possibly
/// RetryExceeded) whenever it lands.
os::Program rdma_read_sync_until(os::SimThread& self, QueuePair& qp,
                                 MrKey rkey, std::size_t len,
                                 std::uint64_t wr_id, sim::TimePoint deadline,
                                 Completion& out, bool& ok);

}  // namespace rdmamon::net
