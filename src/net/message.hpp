// Wire messages for the two-sided (socket) transport.
#pragma once

#include <any>
#include <cstddef>
#include <cstdint>

namespace rdmamon::net {

/// A datagram-ish unit travelling the fabric. `payload` carries typed
/// application data (request descriptors, LoadSnapshots, ...); `bytes` is
/// what timing/bandwidth models use.
struct Message {
  int src_node = -1;
  int dst_node = -1;
  std::uint64_t conn = 0;  ///< connection id (assigned by the Fabric)
  int dst_side = 0;        ///< receiving endpoint within the connection
  std::size_t bytes = 0;
  std::any payload;
};

}  // namespace rdmamon::net
