// The cluster interconnect: a non-blocking switch connecting every node's
// NIC (the paper's InfiniScale switch + InfiniHost HCAs), plus the
// connection registry for the socket layer.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/message.hpp"
#include "net/qos.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace rdmamon::os {
class Node;
}

namespace rdmamon::net {

class Nic;
class Connection;

/// Interconnect timing/behaviour knobs. Defaults approximate a 4x IB fabric
/// of the paper's era: ~1.25 GB/s links, microsecond-scale switch+wire
/// latency, RDMA READ service a few microseconds.
struct FabricConfig {
  /// One-way propagation (wire + switch) latency.
  sim::Duration prop_latency = sim::usec(1);

  /// Link bandwidth in bytes/second (serialisation on the TX link).
  double bandwidth_bps = 1.25e9;

  /// Target-NIC DMA engine: fixed service cost per RDMA op...
  sim::Duration rdma_dma_base = sim::usec(3);
  /// ...plus per-byte cost of reading/writing host memory.
  double rdma_dma_per_byte_ns = 0.8;

  /// User-space cost of posting a work request (doorbell write).
  sim::Duration rdma_post_cost = sim::nsec(300);

  /// Socket path kernel costs (IPoIB-era protocol stack).
  sim::Duration socket_send_cost = sim::usec(8);
  sim::Duration socket_recv_cost = sim::usec(4);
  /// Per-byte copy cost for socket send/recv.
  double socket_copy_per_byte_ns = 0.2;

  /// Size of the RDMA READ request packet on the wire.
  std::size_t rdma_request_bytes = 32;

  /// RC transport failure budget: an op whose packet is lost or whose
  /// target is dead error-completes (RetryExceeded) after this long —
  /// retry_cnt x local ACK timeout collapsed into one figure.
  sim::Duration rdma_retry_timeout = sim::msec(4);

  /// Bounded NIC connection-context cache (QP contexts at the initiator,
  /// MR entries at the target — the HCA's ICM cache, see net/qpcache.hpp).
  /// 0 keeps the cache unbounded and entirely un-modelled (no penalty, no
  /// accounting): the historical behaviour, and the default so existing
  /// experiments replay byte-identically. Set to the on-chip entry count
  /// to model RDMAvisor-style context thrash at high connection fan-out.
  std::size_t nic_ctx_cache_entries = 0;
  /// Cost of fetching one evicted context from host memory on a miss.
  /// QP-context fetches serialise on the NIC's single fetch engine (the
  /// thrash is a queueing collapse, not just an additive tax); MR fetches
  /// stall the already-serialised DMA engine.
  sim::Duration nic_ctx_miss_penalty = sim::nsec(450);

  /// Per-tenant fabric QoS (token-bucket rate caps + weighted fair
  /// queueing at every NIC's one-sided tx path; see net/qos.hpp).
  /// Disabled by default: no arbiter is built and all one-sided posts
  /// take the historical path byte-identically.
  QosConfig qos;

  /// Seed of the link-loss sampling stream (runs replay bit-for-bit).
  std::uint64_t fault_seed = 0x8d0fb18a12c5e3a7ull;

  /// CPU that takes NetRx interrupts (-1 = round robin). The paper-era
  /// default routes the HCA's interrupts to the second CPU.
  int rx_irq_cpu = 1;

  sim::Duration wire_delay(std::size_t bytes) const {
    return prop_latency +
           sim::nsec(static_cast<std::int64_t>(
               static_cast<double>(bytes) / bandwidth_bps * 1e9));
  }
};

/// Injected fault status of one node (driven by fault::FaultInjector).
/// Crash kills host *and* NIC; freeze hangs the host (no interrupt
/// servicing, so no two-sided progress) while the NIC keeps DMA-ing —
/// the regime where the paper's one-sided monitoring claim bites. Link
/// degradation adds one-way latency and a per-packet loss probability on
/// the node's access link.
struct NodeFaultState {
  bool crashed = false;
  bool frozen = false;
  sim::Duration link_extra_latency{};
  double link_loss = 0.0;
};

/// Owns the NICs and the message-in-flight bookkeeping. Nodes are created
/// by the caller (they carry their own OS config) and attached here.
class Fabric {
 public:
  Fabric(sim::Simulation& simu, FabricConfig cfg);
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Creates a NIC for `node` and assigns node.id. Returns the NIC.
  Nic& attach(os::Node& node);

  Nic& nic(int node_id);
  os::Node& node(int node_id);
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  /// Establishes a socket connection between two attached nodes.
  /// Setup handshake latency is not modelled (connections are created
  /// during experiment wiring); both nodes' connection counters bump.
  Connection& connect(os::Node& a, os::Node& b);

  /// Ships a two-sided message: propagation delay, then the destination
  /// NIC's receive path (called by Nic after TX serialisation).
  void ship(Message msg);

  /// Routes a delivered message to its connection endpoint (called by the
  /// destination NIC once protocol processing has been paid).
  void deliver_to_socket(const Message& msg);

  sim::Simulation& simu() { return simu_; }
  const FabricConfig& config() const { return cfg_; }

  // --- fault-injection hooks (see src/fault) -------------------------------
  /// Node dies whole: in-flight and future packets to/from it vanish,
  /// RDMA ops against it error-complete after the retry budget.
  void inject_crash(int node_id);
  /// Node comes back (threads/NIC state survive — the simulator models
  /// reachability, not reboot).
  void inject_recover(int node_id);
  /// Hung kernel: inbound packets queue at the switch port (no interrupt
  /// servicing), but the NIC's DMA engine keeps serving one-sided ops.
  void inject_freeze(int node_id);
  /// Un-hang: queued inbound packets burst into the receive path.
  void inject_unfreeze(int node_id);
  /// Degrades the node's access link: `extra_latency` one-way, `loss`
  /// drop probability per packet (also applied to RDMA request/response).
  void inject_link_fault(int node_id, sim::Duration extra_latency,
                         double loss);
  void clear_link_fault(int node_id);

  const NodeFaultState& fault_state(int node_id) const;
  /// Extra one-way latency on src->dst (both endpoints' access links).
  sim::Duration link_extra(int src, int dst) const;
  /// Samples the loss process for one packet on src->dst (advances the
  /// fault RNG; deterministic for a fixed fault_seed and call sequence).
  bool sample_link_drop(int src, int dst);

 private:
  NodeFaultState& fault_at(int node_id);

  sim::Simulation& simu_;
  FabricConfig cfg_;
  std::vector<os::Node*> nodes_;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::vector<NodeFaultState> faults_;
  std::vector<std::vector<Message>> frozen_rx_;  ///< held while frozen
  sim::Rng fault_rng_;
};

}  // namespace rdmamon::net
