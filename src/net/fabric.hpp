// The cluster interconnect: a non-blocking switch connecting every node's
// NIC (the paper's InfiniScale switch + InfiniHost HCAs), plus the
// connection registry for the socket layer.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/message.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace rdmamon::os {
class Node;
}

namespace rdmamon::net {

class Nic;
class Connection;

/// Interconnect timing/behaviour knobs. Defaults approximate a 4x IB fabric
/// of the paper's era: ~1.25 GB/s links, microsecond-scale switch+wire
/// latency, RDMA READ service a few microseconds.
struct FabricConfig {
  /// One-way propagation (wire + switch) latency.
  sim::Duration prop_latency = sim::usec(1);

  /// Link bandwidth in bytes/second (serialisation on the TX link).
  double bandwidth_bps = 1.25e9;

  /// Target-NIC DMA engine: fixed service cost per RDMA op...
  sim::Duration rdma_dma_base = sim::usec(3);
  /// ...plus per-byte cost of reading/writing host memory.
  double rdma_dma_per_byte_ns = 0.8;

  /// User-space cost of posting a work request (doorbell write).
  sim::Duration rdma_post_cost = sim::nsec(300);

  /// Socket path kernel costs (IPoIB-era protocol stack).
  sim::Duration socket_send_cost = sim::usec(8);
  sim::Duration socket_recv_cost = sim::usec(4);
  /// Per-byte copy cost for socket send/recv.
  double socket_copy_per_byte_ns = 0.2;

  /// Size of the RDMA READ request packet on the wire.
  std::size_t rdma_request_bytes = 32;

  /// CPU that takes NetRx interrupts (-1 = round robin). The paper-era
  /// default routes the HCA's interrupts to the second CPU.
  int rx_irq_cpu = 1;

  sim::Duration wire_delay(std::size_t bytes) const {
    return prop_latency +
           sim::nsec(static_cast<std::int64_t>(
               static_cast<double>(bytes) / bandwidth_bps * 1e9));
  }
};

/// Owns the NICs and the message-in-flight bookkeeping. Nodes are created
/// by the caller (they carry their own OS config) and attached here.
class Fabric {
 public:
  Fabric(sim::Simulation& simu, FabricConfig cfg);
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Creates a NIC for `node` and assigns node.id. Returns the NIC.
  Nic& attach(os::Node& node);

  Nic& nic(int node_id);
  os::Node& node(int node_id);
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  /// Establishes a socket connection between two attached nodes.
  /// Setup handshake latency is not modelled (connections are created
  /// during experiment wiring); both nodes' connection counters bump.
  Connection& connect(os::Node& a, os::Node& b);

  /// Ships a two-sided message: propagation delay, then the destination
  /// NIC's receive path (called by Nic after TX serialisation).
  void ship(Message msg);

  /// Routes a delivered message to its connection endpoint (called by the
  /// destination NIC once protocol processing has been paid).
  void deliver_to_socket(const Message& msg);

  sim::Simulation& simu() { return simu_; }
  const FabricConfig& config() const { return cfg_; }

 private:
  sim::Simulation& simu_;
  FabricConfig cfg_;
  std::vector<os::Node*> nodes_;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::vector<std::unique_ptr<Connection>> conns_;
};

}  // namespace rdmamon::net
