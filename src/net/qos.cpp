#include "net/qos.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rdmamon::net {

TenantArbiter::TenantArbiter(sim::Simulation& simu, const QosConfig& cfg,
                             double engine_bps)
    : simu_(simu), cfg_(cfg), engine_bps_(engine_bps) {}

TenantArbiter::TenantState& TenantArbiter::state_of(TenantId t) {
  auto it = ts_.find(t);
  if (it != ts_.end()) return it->second;
  TenantState st;
  const TenantQosSpec* spec = cfg_.find(t);
  st.weight = spec != nullptr ? spec->weight : cfg_.default_weight;
  if (st.weight <= 0.0) st.weight = cfg_.default_weight;
  st.rate_bps = spec != nullptr ? spec->rate_bps : 0.0;
  st.burst = spec != nullptr ? static_cast<double>(spec->burst_bytes) : 0.0;
  // A rated tenant needs a usable bucket; a zero depth would charge zero
  // tokens per op and void the cap entirely.
  if (st.rate_bps > 0.0 && st.burst <= 0.0) st.burst = 256.0 * 1024.0;
  st.cap = spec != nullptr && spec->queue_cap > 0 ? spec->queue_cap
                                                  : cfg_.default_queue_cap;
  // A fresh tenant starts with a full bucket: the first burst is free,
  // the long-run rate is what the bucket bounds.
  st.tokens = st.burst;
  st.last_refill = simu_.now();
  return ts_.emplace(t, std::move(st)).first->second;
}

void TenantArbiter::refill(TenantState& st, sim::TimePoint now) {
  if (st.rate_bps <= 0.0) return;
  const double dt_s =
      static_cast<double>((now - st.last_refill).ns) * 1e-9;
  st.tokens = std::min(st.burst, st.tokens + dt_s * st.rate_bps);
  st.last_refill = now;
}

void TenantArbiter::note(std::uint64_t seq, TenantId t, std::size_t bytes,
                         const char* verdict) {
  ++decisions_;
  if (trace_lines_ >= cfg_.trace_limit) return;
  ++trace_lines_;
  trace_ += std::to_string(seq);
  trace_ += " t=";
  trace_ += std::to_string(simu_.now().ns);
  trace_ += " tenant=";
  trace_ += std::to_string(t);
  trace_ += " bytes=";
  trace_ += std::to_string(bytes);
  trace_ += ' ';
  trace_ += verdict;
  trace_ += '\n';
}

bool TenantArbiter::submit(TenantId tenant, std::size_t bytes,
                          std::function<void()> grant) {
  TenantState& st = state_of(tenant);
  ++st.stats.submitted;
  const std::uint64_t seq = seq_++;
  if (st.q.size() >= st.cap) {
    ++st.stats.dropped;
    note(seq, tenant, bytes, "drop");
    return false;
  }
  Op op;
  op.seq = seq;
  op.bytes = bytes;
  // SFQ tagging: the op's virtual start is where the tenant's previous
  // op virtually finished, clamped up to the system virtual time — an
  // idle tenant resumes at "now" and never banks credit.
  op.start_tag = std::max(vtime_, st.vfinish);
  st.vfinish = op.start_tag + static_cast<double>(bytes) / st.weight;
  op.enqueued = simu_.now();
  op.grant = std::move(grant);
  st.q.push_back(std::move(op));
  pump();
  return true;
}

void TenantArbiter::pump() {
  if (busy_) return;
  const sim::TimePoint now = simu_.now();
  TenantState* best = nullptr;
  TenantId best_id = 0;
  sim::TimePoint earliest{std::numeric_limits<std::int64_t>::max()};
  bool any_queued = false;
  for (auto& [id, st] : ts_) {
    if (st.q.empty()) continue;
    any_queued = true;
    refill(st, now);
    const Op& head = st.q.front();
    // An op is charged at most one bucket depth: an op larger than the
    // bucket admits on a full bucket and drains it, so its long-run rate
    // is still ~rate_bps instead of being unpassable forever.
    const double charge =
        std::min(static_cast<double>(head.bytes), st.burst);
    if (st.rate_bps > 0.0 && st.tokens < charge) {
      // Token-short: compute when the bucket will cover the head op and
      // keep looking — rate limiting is deliberately non-work-conserving.
      const double need = charge - st.tokens;
      const auto wait_ns = static_cast<std::int64_t>(
          std::ceil(need / st.rate_bps * 1e9));
      const sim::TimePoint eligible{now.ns + std::max<std::int64_t>(wait_ns, 1)};
      if (eligible < earliest) earliest = eligible;
      continue;
    }
    if (best == nullptr ||
        head.start_tag < best->q.front().start_tag ||
        (head.start_tag == best->q.front().start_tag &&
         head.seq < best->q.front().seq)) {
      best = &st;
      best_id = id;
    }
  }
  if (best != nullptr) {
    Op op = std::move(best->q.front());
    best->q.pop_front();
    if (best->rate_bps > 0.0) {
      best->tokens -=
          std::min(static_cast<double>(op.bytes), best->burst);
    }
    vtime_ = std::max(vtime_, op.start_tag);
    ++best->stats.admitted;
    best->stats.admitted_bytes += op.bytes;
    if (now > op.enqueued) ++best->stats.deferred;
    note(op.seq, best_id, op.bytes, "admit");
    // Occupy the tx engine for the op's serialisation; the op's own
    // downstream latency is charged by the NIC as before, so an
    // uncontended post sees zero added delay.
    const auto ser_ns = static_cast<std::int64_t>(
        std::ceil(static_cast<double>(op.bytes) / engine_bps_ * 1e9));
    busy_ = true;
    simu_.after(sim::nsec(ser_ns), [this] {
      busy_ = false;
      pump();
    });
    op.grant();
    return;
  }
  if (any_queued) {
    // Everything queued is token-short: wake when the first head becomes
    // eligible (re-arming only if it moved the deadline earlier).
    if (!timer_armed_ || earliest < timer_at_) {
      timer_.cancel();
      timer_at_ = earliest;
      timer_armed_ = true;
      timer_ = simu_.at(earliest, [this] {
        timer_armed_ = false;
        pump();
      });
    }
  }
}

TenantArbiter::Stats TenantArbiter::stats(TenantId t) const {
  auto it = ts_.find(t);
  if (it == ts_.end()) return Stats{};
  Stats s = it->second.stats;
  s.queue_depth = it->second.q.size();
  return s;
}

std::vector<TenantId> TenantArbiter::tenants() const {
  std::vector<TenantId> out;
  out.reserve(ts_.size());
  for (const auto& [id, st] : ts_) out.push_back(id);
  return out;
}

}  // namespace rdmamon::net
