// The simulated network adapter. Two personalities, matching the paper's
// two transports:
//
//  - channel semantics (two-sided): TX serialisation, then at the receiver
//    an interrupt + protocol processing, inline in IRQ context when the
//    receive path is keeping up and deferred to ksoftirqd when it is not
//    (the load-coupling that makes socket monitoring degrade, Fig 3);
//
//  - memory semantics (one-sided): registered memory regions served by the
//    NIC's DMA engine with zero host-CPU involvement.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/fabric.hpp"
#include "net/message.hpp"
#include "net/verbs.hpp"
#include "os/node.hpp"
#include "telemetry/registry.hpp"

namespace rdmamon::net {

class Nic {
 public:
  Nic(Fabric& fabric, os::Node& node);

  os::Node& node() { return node_; }
  int node_id() const { return node_.id; }

  // --- two-sided -----------------------------------------------------------
  /// Transmits a message: serialises on the TX link (FIFO at link
  /// bandwidth), then hands it to the fabric. The caller has already paid
  /// the send syscall cost.
  void tx(Message msg);

  /// Receive path entry (called by the Fabric on arrival): raises a NetRx
  /// interrupt; protocol processing happens inline in handler context when
  /// the backlog is small, otherwise via ksoftirqd.
  void rx(Message msg);

  // --- one-sided -----------------------------------------------------------
  /// Registers a memory region; `reader` is sampled at DMA time.
  /// Read-only unless `remote_writable`.
  MrKey register_mr(std::size_t bytes, std::function<std::any()> reader,
                    bool remote_writable = false,
                    std::function<void(const std::any&)> writer = nullptr);

  /// Invalidates an rkey. In-flight ops that reach the DMA engine after the
  /// deregistration complete with InvalidKey — the rkey is resolved at the
  /// DMA instant, never cached across the wire delay. Returns false if the
  /// key was unknown (double-dereg is a caller bug but must not crash).
  bool deregister_mr(MrKey key);

  /// Initiator-side one-sided READ: request packet to the target NIC, DMA
  /// service there (no target CPU), response back, then `done` runs at the
  /// initiator with the completion.
  void rdma_read(int target_node, MrKey rkey, std::size_t len,
                 std::uint64_t wr_id, std::function<void(Completion)> done);

  /// Initiator-side one-sided WRITE. Rejected with ProtectionError when the
  /// target region is not remote_writable.
  void rdma_write(int target_node, MrKey rkey, std::any value,
                  std::size_t len, std::uint64_t wr_id,
                  std::function<void(Completion)> done);

  // --- introspection ---------------------------------------------------------
  std::uint64_t tx_packets() const { return tx_packets_; }
  std::uint64_t rx_packets() const { return rx_packets_; }
  std::uint64_t rx_deferred() const { return rx_deferred_; }
  std::uint64_t rdma_ops_served() const { return rdma_served_; }
  std::uint64_t rdma_ops_posted() const { return rdma_posted_; }
  /// Wire bytes of one-sided ops THIS node initiated (request + payload +
  /// ack/response), charged at post time — retried-and-failed ops consumed
  /// the fabric too. The freshness-per-fabric-byte analyses read this:
  /// front-end NICs accumulate pull (READ) bytes, back-end NICs push
  /// (WRITE) bytes.
  std::uint64_t rdma_wire_bytes() const { return rdma_wire_bytes_; }

 private:
  friend class Fabric;

  /// CPU chosen for the next NetRx interrupt (config fixed or round-robin).
  int pick_rx_cpu();

  Fabric& fabric_;
  os::Node& node_;
  std::unordered_map<std::uint32_t, MemoryRegion> regions_;
  std::uint32_t next_rkey_ = 1;
  sim::TimePoint tx_busy_{};
  sim::TimePoint dma_busy_{};
  int rr_cpu_ = 0;
  std::uint64_t tx_packets_ = 0;
  std::uint64_t rx_packets_ = 0;
  std::uint64_t rx_deferred_ = 0;
  std::uint64_t rdma_served_ = 0;
  std::uint64_t rdma_posted_ = 0;
  std::uint64_t rdma_wire_bytes_ = 0;
  /// Publishes the counters above as gauges at snapshot time, so the
  /// hot packet paths need no extra bookkeeping.
  telemetry::ScopedCollector collector_;
  /// Flight-recorder ring for this NIC's verbs posts/completions
  /// ("net.<node>"); null when no registry is installed.
  telemetry::FlightRing* fr_ = nullptr;
};

}  // namespace rdmamon::net
