// The simulated network adapter. Two personalities, matching the paper's
// two transports:
//
//  - channel semantics (two-sided): TX serialisation, then at the receiver
//    an interrupt + protocol processing, inline in IRQ context when the
//    receive path is keeping up and deferred to ksoftirqd when it is not
//    (the load-coupling that makes socket monitoring degrade, Fig 3);
//
//  - memory semantics (one-sided): registered memory regions served by the
//    NIC's DMA engine with zero host-CPU involvement.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include <memory>

#include "net/fabric.hpp"
#include "net/message.hpp"
#include "net/qpcache.hpp"
#include "net/verbs.hpp"
#include "os/node.hpp"
#include "telemetry/registry.hpp"

namespace rdmamon::net {

class Nic {
 public:
  Nic(Fabric& fabric, os::Node& node);

  os::Node& node() { return node_; }
  int node_id() const { return node_.id; }

  // --- two-sided -----------------------------------------------------------
  /// Transmits a message: serialises on the TX link (FIFO at link
  /// bandwidth), then hands it to the fabric. The caller has already paid
  /// the send syscall cost.
  void tx(Message msg);

  /// Receive path entry (called by the Fabric on arrival): raises a NetRx
  /// interrupt; protocol processing happens inline in handler context when
  /// the backlog is small, otherwise via ksoftirqd.
  void rx(Message msg);

  // --- one-sided -----------------------------------------------------------
  /// Registers a memory region; `reader` is sampled at DMA time.
  /// Read-only unless `remote_writable`. `tenant` is the owner a cached
  /// MR entry's eviction is attributed to (0 = system plane).
  MrKey register_mr(std::size_t bytes, std::function<std::any()> reader,
                    bool remote_writable = false,
                    std::function<void(const std::any&)> writer = nullptr,
                    TenantId tenant = 0);

  /// Invalidates an rkey. In-flight ops that reach the DMA engine after the
  /// deregistration complete with InvalidKey — the rkey is resolved at the
  /// DMA instant, never cached across the wire delay. Returns false if the
  /// key was unknown (double-dereg is a caller bug but must not crash).
  bool deregister_mr(MrKey key);

  /// Initiator-side one-sided READ: request packet to the target NIC, DMA
  /// service there (no target CPU), response back, then `done` runs at the
  /// initiator with the completion. `ctx_id` names the posting QpContext
  /// for the context-cache model (0 = uncontexted, never charged); with a
  /// bounded cache configured, a QP-context miss delays the request by the
  /// fetch penalty, serialised on the NIC's single fetch engine, and an MR
  /// miss at the target stalls its DMA engine by the same penalty.
  ///
  /// `tenant` tags the WR for fabric QoS: with FabricConfig::qos enabled
  /// the op passes this NIC's per-tenant token-bucket + WFQ arbiter
  /// before reaching the wire (and may be DROPPED at the tenant's queue
  /// cap, error-completing with RetryExceeded). With QoS disabled the
  /// tag is inert and the path is byte-identical to history.
  void rdma_read(int target_node, MrKey rkey, std::size_t len,
                 std::uint64_t wr_id, std::function<void(Completion)> done,
                 std::uint64_t ctx_id = 0, TenantId tenant = 0);

  /// Initiator-side one-sided WRITE. Rejected with ProtectionError when the
  /// target region is not remote_writable.
  void rdma_write(int target_node, MrKey rkey, std::any value,
                  std::size_t len, std::uint64_t wr_id,
                  std::function<void(Completion)> done,
                  std::uint64_t ctx_id = 0, TenantId tenant = 0);

  /// Allocates a NIC-unique QpContext identity (context-cache key space).
  std::uint64_t alloc_ctx_id() { return next_ctx_id_++; }

  /// Bookkeeping hook for QpContext: one WR posted unsignaled.
  void count_unsignaled() { ++unsignaled_posted_; }

  // --- introspection ---------------------------------------------------------
  std::uint64_t tx_packets() const { return tx_packets_; }
  std::uint64_t rx_packets() const { return rx_packets_; }
  std::uint64_t rx_deferred() const { return rx_deferred_; }
  std::uint64_t rdma_ops_served() const { return rdma_served_; }
  std::uint64_t rdma_ops_posted() const { return rdma_posted_; }
  /// Wire bytes of one-sided ops THIS node initiated (request + payload +
  /// ack/response), charged at post time — retried-and-failed ops consumed
  /// the fabric too. The freshness-per-fabric-byte analyses read this:
  /// front-end NICs accumulate pull (READ) bytes, back-end NICs push
  /// (WRITE) bytes.
  std::uint64_t rdma_wire_bytes() const { return rdma_wire_bytes_; }
  /// WRs posted through this NIC's contexts without a CQE request.
  std::uint64_t unsignaled_posted() const { return unsignaled_posted_; }
  /// Context-cache accounting (all zero while the cache is unbounded —
  /// FabricConfig::nic_ctx_cache_entries == 0).
  std::uint64_t qpc_hits() const { return ctx_cache_ ? ctx_cache_->hits() : 0; }
  std::uint64_t qpc_misses() const {
    return ctx_cache_ ? ctx_cache_->misses() : 0;
  }
  std::uint64_t qpc_evictions() const {
    return ctx_cache_ ? ctx_cache_->evictions() : 0;
  }
  /// Context-cache evictions whose displaced entry belonged to `tenant`
  /// (the noisy-neighbor attribution the MR-thrash tests assert on).
  std::uint64_t qpc_evictions_for(TenantId tenant) const {
    return ctx_cache_ ? ctx_cache_->evictions_for(tenant) : 0;
  }

  /// The per-tenant QoS arbiter on this NIC's one-sided tx path; null
  /// unless FabricConfig::qos.enabled.
  const TenantArbiter* arbiter() const { return arbiter_.get(); }

 private:
  friend class Fabric;

  /// Context-cache key namespaces: one unified cache holds QP contexts
  /// (initiator side) and MR entries (target side), like the real ICM.
  static constexpr std::uint64_t kQpcKey = 1ull << 63;
  static constexpr std::uint64_t kMrKeyBit = 1ull << 62;

  /// Touches the initiator-side QP context `ctx_id`; on a miss returns
  /// the delay until the single context-fetch engine has brought it in
  /// (serialised across concurrent misses — the thrash regime).
  sim::Duration charge_qpc(std::uint64_t ctx_id, TenantId tenant);
  /// Touches the target-side MR entry; on a miss returns the penalty to
  /// add to the DMA service time (the DMA engine already serialises).
  sim::Duration charge_mr(std::uint32_t rkey);

  /// The wire half of rdma_read/rdma_write, entered directly (QoS off)
  /// or as the arbiter's grant continuation (QoS on): fault checks,
  /// context-cache charge, request leg, target DMA, response leg.
  void start_read(int target_node, MrKey rkey, std::size_t len, Completion c,
                  std::function<void(Completion)> done, std::uint64_t ctx_id,
                  TenantId tenant);
  void start_write(int target_node, MrKey rkey, std::any value,
                   std::size_t len, Completion c,
                   std::function<void(Completion)> done, std::uint64_t ctx_id,
                   TenantId tenant);

  /// CPU chosen for the next NetRx interrupt (config fixed or round-robin).
  int pick_rx_cpu();

  Fabric& fabric_;
  os::Node& node_;
  std::unordered_map<std::uint32_t, MemoryRegion> regions_;
  std::uint32_t next_rkey_ = 1;
  std::uint64_t next_ctx_id_ = 1;
  sim::TimePoint tx_busy_{};
  sim::TimePoint dma_busy_{};
  sim::TimePoint ctx_fetch_busy_{};
  /// Bounded connection-context cache; null when unbounded (default).
  std::unique_ptr<NicCtxCache> ctx_cache_;
  /// Per-tenant QoS arbiter; null when FabricConfig::qos is disabled.
  std::unique_ptr<TenantArbiter> arbiter_;
  int rr_cpu_ = 0;
  std::uint64_t tx_packets_ = 0;
  std::uint64_t rx_packets_ = 0;
  std::uint64_t rx_deferred_ = 0;
  std::uint64_t rdma_served_ = 0;
  std::uint64_t rdma_posted_ = 0;
  std::uint64_t rdma_wire_bytes_ = 0;
  std::uint64_t unsignaled_posted_ = 0;
  /// Publishes the counters above as gauges at snapshot time, so the
  /// hot packet paths need no extra bookkeeping.
  telemetry::ScopedCollector collector_;
  /// Flight-recorder ring for this NIC's verbs posts/completions
  /// ("net.<node>"); null when no registry is installed.
  telemetry::FlightRing* fr_ = nullptr;
};

}  // namespace rdmamon::net
