#include "net/qpcache.hpp"

namespace rdmamon::net {

bool NicCtxCache::access(std::uint64_t key, TenantId owner) {
  auto it = pos_.find(key);
  if (it != pos_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  ++misses_;
  if (cap_ > 0 && pos_.size() >= cap_) {
    ++evictions_;
    ++evictions_by_[lru_.back().owner];
    pos_.erase(lru_.back().key);
    lru_.pop_back();
  }
  lru_.push_front(Entry{key, owner});
  pos_.emplace(key, lru_.begin());
  return false;
}

bool NicCtxCache::erase(std::uint64_t key) {
  auto it = pos_.find(key);
  if (it == pos_.end()) return false;
  lru_.erase(it->second);
  pos_.erase(it);
  return true;
}

std::uint64_t NicCtxCache::evictions_for(TenantId owner) const {
  auto it = evictions_by_.find(owner);
  return it == evictions_by_.end() ? 0 : it->second;
}

}  // namespace rdmamon::net
