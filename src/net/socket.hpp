// Two-sided stream sockets over channel semantics (the paper's IPoIB
// baseline transport). Message-oriented: each send() delivers one Message
// at the peer after TX serialisation, wire, interrupt and protocol costs —
// plus whatever run-queue delay the receiving thread suffers.
#pragma once

#include <any>
#include <deque>
#include <vector>

#include "net/message.hpp"
#include "os/node.hpp"
#include "os/program.hpp"
#include "os/wait.hpp"
#include "telemetry/registry.hpp"

namespace rdmamon::net {

class Fabric;
class Connection;

/// One endpoint of a Connection.
class Socket {
 public:
  /// Subprogram: pays the send syscall + copy cost, then transmits `bytes`
  /// carrying `payload` to the peer endpoint.
  os::Program send(os::SimThread& self, std::size_t bytes, std::any payload);

  /// Subprogram: blocks until a message is available, pays the recv
  /// syscall + copy cost, and stores the message in `out`.
  os::Program recv(os::SimThread& self, Message& out);

  /// Subprogram: like recv, but gives up at `deadline` (SO_RCVTIMEO). On
  /// timeout `ok` stays false, `out` is untouched, and no recv cost is
  /// charged. A message already queued is delivered even past deadline.
  os::Program recv_until(os::SimThread& self, Message& out,
                         sim::TimePoint deadline, bool& ok);

  /// Subprogram: non-blocking receive. Requires has_data(); pops the head
  /// message and pays the recv syscall + copy cost. Issue/complete engines
  /// use this to consume a reply they already know has arrived.
  os::Program recv_ready(os::SimThread& self, Message& out);

  /// Discards every queued inbound message, returning how many were
  /// dropped. Protocols without sequence numbers (the monitoring
  /// request/response) use this to flush replies to abandoned requests.
  std::size_t drain_rx();

  /// Transmits a prepared message WITHOUT charging the sender's syscall
  /// cost — used for switch-replicated multicast copies, where the host
  /// pays for one send and the fabric fans it out. Routing fields are
  /// filled from this endpoint.
  void inject_tx(Message m);

  /// Non-blocking check.
  bool has_data() const { return !rx_.empty(); }
  std::size_t rx_backlog() const { return rx_.size(); }

  /// The wait queue notified on every delivery — the select()-style wait
  /// point for consumers that multiplex this socket with other channels.
  os::WaitQueue& rx_wait_queue() { return rx_wq_; }

  /// Registers an additional wait queue to notify on delivery (epoll-ish):
  /// a scatter engine parks on its shared completion channel and hears
  /// about socket replies through this without per-socket waiter threads.
  void add_rx_watcher(os::WaitQueue* wq) { rx_watchers_.push_back(wq); }

  os::Node& local_node() { return *local_; }
  int remote_node_id() const { return remote_node_; }

  /// Delivery from the NIC receive path (protocol cost already paid).
  void deliver(Message m) {
    if (!metrics_resolved_) resolve_metrics();
    telemetry::add(rx_msgs_);
    telemetry::add(rx_bytes_, m.bytes);
    rx_.push_back(std::move(m));
    rx_wq_.notify_one();
    for (os::WaitQueue* wq : rx_watchers_) {
      telemetry::add(watcher_wakeups_);
      wq->notify_all();
    }
  }

 private:
  friend class Connection;

  /// Caches per-node instrument pointers on first traffic (no-ops forever
  /// when no registry is installed at that point — install before traffic).
  void resolve_metrics();

  os::Node* local_ = nullptr;
  Fabric* fabric_ = nullptr;
  int remote_node_ = -1;
  std::uint64_t conn_ = 0;
  int remote_side_ = 0;  ///< which endpoint of the connection the peer is
  std::deque<Message> rx_;
  os::WaitQueue rx_wq_;
  std::vector<os::WaitQueue*> rx_watchers_;
  bool metrics_resolved_ = false;
  telemetry::Counter* tx_msgs_ = nullptr;
  telemetry::Counter* tx_bytes_ = nullptr;
  telemetry::Counter* rx_msgs_ = nullptr;
  telemetry::Counter* rx_bytes_ = nullptr;
  telemetry::Counter* watcher_wakeups_ = nullptr;
};

/// A bidirectional connection between two nodes; owns its two endpoints.
class Connection {
 public:
  Connection(Fabric& fabric, os::Node& a, os::Node& b, std::uint64_t id);
  ~Connection();

  Socket& end_a() { return a_; }
  Socket& end_b() { return b_; }
  Socket& endpoint(int side) { return side == 0 ? a_ : b_; }
  std::uint64_t id() const { return id_; }

 private:
  std::uint64_t id_;
  Socket a_, b_;
};

}  // namespace rdmamon::net
