// Per-tenant fabric QoS at the NIC's one-sided tx path (ROADMAP item 4's
// defence half). The noisy-neighbor papers show co-located tenants
// exhausting shared NIC/fabric resources; real HCAs answer with per-SL
// rate limiters and weighted arbitration between send queues. We model
// that pair:
//
//  - a token bucket per tenant caps the tenant's admitted wire bytes per
//    second (burst-tolerant, long-run rate bound);
//  - a start-time-fair weighted arbiter (SFQ) orders token-eligible ops
//    from different tenants onto the NIC's tx engine, so a tenant's
//    share of a contended NIC degrades gracefully with its weight
//    instead of collapsing under a neighbour's flood.
//
// Ops are metered by their total fabric footprint (request + payload +
// ack — the same accounting as Nic::rdma_wire_bytes), because that is
// the resource a one-sided flood actually exhausts: a READ's bytes
// arrive on the response path, but they are the tenant's bytes all the
// same. An op that exceeds its tenant's queue cap is DROPPED (the NIC
// refuses the WR; the RC layer error-completes it), which bounds the
// arbiter's state under an unbounded aggressor.
//
// Everything is deterministic: no RNG, decisions ordered by (virtual
// start tag, global post sequence), timers on the simulation clock.
// With QosConfig::enabled false (the default) no arbiter exists at all
// and the fabric behaves byte-identically to every earlier experiment.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace rdmamon::net {

/// Tenant identity carried on QP contexts and individual WRs. 0 is the
/// untenanted/system plane: it participates in arbitration like any
/// other tenant (default weight, no rate cap) so legacy callers need no
/// special-casing.
using TenantId = std::uint32_t;

/// Per-tenant QoS parameters (absent tenants get the config defaults).
struct TenantQosSpec {
  TenantId tenant = 0;
  /// WFQ weight: relative share of a contended tx engine.
  double weight = 1.0;
  /// Token-bucket rate in wire bytes/second. 0 = uncapped.
  double rate_bps = 0.0;
  /// Bucket depth: bytes that may burst past the rate. Also the maximum
  /// token charge per op — an op bigger than the bucket admits on a full
  /// bucket and drains it (long-run rate stays ~rate_bps), instead of
  /// being forever inadmissible.
  std::size_t burst_bytes = 256 * 1024;
  /// Max ops queued at the arbiter before new ones are dropped.
  /// 0 = use QosConfig::default_queue_cap.
  std::size_t queue_cap = 0;
};

/// FabricConfig::qos. Disabled by default: no arbiter is built and the
/// one-sided post path is exactly the historical one.
struct QosConfig {
  bool enabled = false;
  double default_weight = 1.0;
  std::size_t default_queue_cap = 1024;
  /// Decision-trace retention (admit/defer/drop lines kept for the
  /// determinism checks); older decisions are only counted.
  std::size_t trace_limit = 4096;
  std::vector<TenantQosSpec> tenants;

  const TenantQosSpec* find(TenantId t) const {
    for (const TenantQosSpec& s : tenants) {
      if (s.tenant == t) return &s;
    }
    return nullptr;
  }
};

/// The per-NIC arbiter. Nic::rdma_read/rdma_write submit their wire-byte
/// footprint plus a continuation; the continuation runs (synchronously
/// when uncontended) once the op wins arbitration. The tx engine then
/// stays occupied for bytes/engine_bps before the next op is picked.
class TenantArbiter {
 public:
  /// Per-tenant accounting, exported as net.qos.* gauges by the NIC.
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    /// Admitted ops that had to wait (engine busy or tokens short).
    std::uint64_t deferred = 0;
    /// Ops refused at the queue cap (error-completed by the caller).
    std::uint64_t dropped = 0;
    std::uint64_t admitted_bytes = 0;
    /// Current arbiter queue occupancy (sampled at stats() time).
    std::size_t queue_depth = 0;
  };

  TenantArbiter(sim::Simulation& simu, const QosConfig& cfg,
                double engine_bps);

  /// Submits one op of `bytes` wire footprint for `tenant`. Returns false
  /// when the tenant's queue is full — the op is dropped and `grant` is
  /// destroyed unrun. Otherwise `grant` runs at admission (possibly
  /// before submit returns).
  bool submit(TenantId tenant, std::size_t bytes, std::function<void()> grant);

  /// Snapshot of one tenant's counters (zeroes for a never-seen tenant).
  Stats stats(TenantId t) const;
  /// Tenants that have submitted at least one op, ascending.
  std::vector<TenantId> tenants() const;

  /// Total admit/defer/drop decisions taken.
  std::uint64_t decisions() const { return decisions_; }
  /// The bounded decision trace: one "seq at tenant bytes verdict" line
  /// per decision, byte-identical across same-seed runs.
  const std::string& trace() const { return trace_; }

 private:
  struct Op {
    std::uint64_t seq = 0;
    std::size_t bytes = 0;
    double start_tag = 0.0;
    sim::TimePoint enqueued{};
    std::function<void()> grant;
  };
  struct TenantState {
    double weight = 1.0;
    double rate_bps = 0.0;
    double burst = 0.0;
    std::size_t cap = 0;
    double tokens = 0.0;
    sim::TimePoint last_refill{};
    double vfinish = 0.0;  ///< virtual finish of the tenant's last-tagged op
    std::deque<Op> q;  ///< FIFO within the tenant (no reordering)
    Stats stats;
  };

  TenantState& state_of(TenantId t);
  void refill(TenantState& st, sim::TimePoint now);
  void pump();
  void note(std::uint64_t seq, TenantId t, std::size_t bytes,
            const char* verdict);

  sim::Simulation& simu_;
  QosConfig cfg_;
  double engine_bps_;
  /// Ordered by tenant id: deterministic iteration for arbitration
  /// tie-breaks and telemetry export.
  std::map<TenantId, TenantState> ts_;
  double vtime_ = 0.0;  ///< SFQ virtual time (start tag in service)
  bool busy_ = false;
  std::uint64_t seq_ = 0;
  std::uint64_t decisions_ = 0;
  std::string trace_;
  std::size_t trace_lines_ = 0;
  sim::EventHandle timer_;
  bool timer_armed_ = false;
  sim::TimePoint timer_at_{};
};

}  // namespace rdmamon::net
