#include "net/verbs.hpp"

#include "net/nic.hpp"
#include "os/node.hpp"
#include "os/thread.hpp"

namespace rdmamon::net {

void QueuePair::post_read(MrKey rkey, std::size_t len, std::uint64_t wr_id) {
  local_->rdma_read(remote_node_, rkey, len, wr_id,
                    [cq = cq_](Completion c) { cq->push(std::move(c)); });
}

void QueuePair::post_write(MrKey rkey, std::any value, std::size_t len,
                           std::uint64_t wr_id) {
  local_->rdma_write(remote_node_, rkey, std::move(value), len, wr_id,
                     [cq = cq_](Completion c) { cq->push(std::move(c)); });
}

os::Program rdma_read_sync(os::SimThread& self, QueuePair& qp, MrKey rkey,
                           std::size_t len, Completion& out) {
  // Doorbell: a cheap user-space MMIO write.
  co_await os::Compute{sim::nsec(300)};
  qp.post_read(rkey, len, /*wr_id=*/0);
  CompletionQueue& cq = qp.cq();
  while (cq.empty()) co_await os::WaitOn{&cq.wait_queue()};
  out = cq.pop();
  (void)self;
}

os::Program rdma_read_sync_until(os::SimThread& self, QueuePair& qp,
                                 MrKey rkey, std::size_t len,
                                 std::uint64_t wr_id, sim::TimePoint deadline,
                                 Completion& out, bool& ok) {
  ok = false;
  co_await os::Compute{sim::nsec(300)};
  qp.post_read(rkey, len, wr_id);
  CompletionQueue& cq = qp.cq();
  sim::Simulation& simu = self.node().simu();
  // The deadline is modelled as a timer that spuriously wakes the CQ
  // waiter; the waiter re-checks the clock (the documented wait-queue
  // discipline), so no scheduler surgery is needed.
  sim::EventHandle timer;
  if (simu.now() < deadline) {
    timer = simu.at(deadline, [&cq] { cq.wait_queue().notify_all(); });
  }
  for (;;) {
    while (!cq.empty()) {
      Completion c = cq.pop();
      if (c.wr_id == wr_id) {
        out = std::move(c);
        ok = true;
        break;
      }
      // Stale completion of an abandoned (timed-out) WR: discard.
    }
    if (ok || simu.now() >= deadline) break;
    co_await os::WaitOn{&cq.wait_queue()};
  }
  timer.cancel();
}

os::Program rdma_write_sync(os::SimThread& self, QueuePair& qp, MrKey rkey,
                            std::any value, std::size_t len,
                            Completion& out) {
  co_await os::Compute{sim::nsec(300)};
  qp.post_write(rkey, std::move(value), len, /*wr_id=*/0);
  CompletionQueue& cq = qp.cq();
  while (cq.empty()) co_await os::WaitOn{&cq.wait_queue()};
  out = cq.pop();
  (void)self;
}

}  // namespace rdmamon::net
