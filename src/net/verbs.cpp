#include "net/verbs.hpp"

#include "net/nic.hpp"
#include "os/node.hpp"
#include "os/thread.hpp"
#include "telemetry/registry.hpp"

namespace rdmamon::net {

namespace {

/// Telemetry: one doorbell rung by `self`, covering `wrs` work requests
/// (the scatter engine's merged posts make this ratio interesting).
/// Wall-clock-only bookkeeping; charges no simulated time.
void count_doorbell(os::SimThread& self, std::size_t wrs) {
  telemetry::Registry* reg = telemetry::Registry::of(self.node().simu());
  if (reg == nullptr) return;
  const telemetry::Labels by_node{{"node", self.node().name()}};
  reg->counter("net.doorbells", by_node).inc();
  reg->counter("net.posts", by_node).inc(wrs);
  reg->histogram("net.doorbell.wrs", by_node)
      .observe(static_cast<double>(wrs));
}

}  // namespace

const Completion* CompletionQueue::find(std::uint64_t wr_id) const {
  for (const Completion& c : q_) {
    if (c.wr_id == wr_id) return &c;
  }
  return nullptr;
}

bool CompletionQueue::try_pop(std::uint64_t wr_id, Completion& out) {
  for (auto it = q_.begin(); it != q_.end(); ++it) {
    if (it->wr_id == wr_id) {
      out = std::move(*it);
      q_.erase(it);
      return true;
    }
  }
  return false;
}

void CompletionQueue::forget(std::uint64_t wr_id) {
  ++forgets_;
  for (auto it = q_.begin(); it != q_.end(); ++it) {
    if (it->wr_id == wr_id) {
      q_.erase(it);  // already landed: reclaim immediately
      ++stale_dropped_;
      return;
    }
  }
  forgotten_.insert(wr_id);  // still in flight: drop at push()
}

void QueuePair::post_read(MrKey rkey, std::size_t len, std::uint64_t wr_id) {
  local_->rdma_read(remote_node_, rkey, len, wr_id,
                    [cq = cq_](Completion c) { cq->push(std::move(c)); });
}

void QueuePair::post_read_batch(const std::vector<ReadWr>& wrs) {
  for (const ReadWr& wr : wrs) post_read(wr.rkey, wr.len, wr.wr_id);
}

void QueuePair::post_write(MrKey rkey, std::any value, std::size_t len,
                           std::uint64_t wr_id) {
  local_->rdma_write(remote_node_, rkey, std::move(value), len, wr_id,
                     [cq = cq_](Completion c) { cq->push(std::move(c)); });
}

os::Program post_read_batch(os::SimThread& self,
                            const std::vector<ReadBatchEntry>& batch) {
  if (batch.empty()) co_return;
  // One doorbell for the whole chain; the posts themselves are pointer
  // writes into the send queue(s), free at this resolution.
  co_await os::Compute{kDoorbellCost};
  count_doorbell(self, batch.size());
  for (const ReadBatchEntry& e : batch) {
    e.qp->post_read(e.rkey, e.len, e.wr_id);
  }
}

os::Program rdma_read_sync(os::SimThread& self, QueuePair& qp, MrKey rkey,
                           std::size_t len, Completion& out) {
  // Doorbell: a cheap user-space MMIO write.
  co_await os::Compute{kDoorbellCost};
  count_doorbell(self, 1);
  qp.post_read(rkey, len, /*wr_id=*/0);
  CompletionQueue& cq = qp.cq();
  while (cq.empty()) co_await os::WaitOn{&cq.wait_queue()};
  out = cq.pop();
}

os::Program rdma_read_sync_until(os::SimThread& self, QueuePair& qp,
                                 MrKey rkey, std::size_t len,
                                 std::uint64_t wr_id, sim::TimePoint deadline,
                                 Completion& out, bool& ok) {
  ok = false;
  co_await os::Compute{kDoorbellCost};
  count_doorbell(self, 1);
  qp.post_read(rkey, len, wr_id);
  CompletionQueue& cq = qp.cq();
  sim::Simulation& simu = self.node().simu();
  // The deadline is modelled as a timer that spuriously wakes the CQ
  // waiter; the waiter re-checks the clock (the documented wait-queue
  // discipline), so no scheduler surgery is needed. On the common path
  // the READ completes first and the cancel below unlinks the
  // wheel-resident timer in O(1), recycling its pool slot — arming a
  // guard per post costs no allocation and leaves no tombstone behind.
  sim::EventHandle timer;
  if (simu.now() < deadline) {
    timer = simu.at(deadline, [&cq] { cq.wait_queue().notify_all(); });
  }
  for (;;) {
    if (cq.try_pop(wr_id, out)) {
      ok = true;
      break;
    }
    if (simu.now() >= deadline) {
      cq.forget(wr_id);  // the CQ discards the late completion on arrival
      break;
    }
    co_await os::WaitOn{&cq.wait_queue()};
  }
  timer.cancel();
}

os::Program rdma_write_sync(os::SimThread& self, QueuePair& qp, MrKey rkey,
                            std::any value, std::size_t len,
                            Completion& out) {
  co_await os::Compute{kDoorbellCost};
  count_doorbell(self, 1);
  qp.post_write(rkey, std::move(value), len, /*wr_id=*/0);
  CompletionQueue& cq = qp.cq();
  while (cq.empty()) co_await os::WaitOn{&cq.wait_queue()};
  out = cq.pop();
}

}  // namespace rdmamon::net
