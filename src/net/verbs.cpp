#include "net/verbs.hpp"

#include <utility>

#include "net/nic.hpp"
#include "os/node.hpp"
#include "os/thread.hpp"
#include "telemetry/registry.hpp"

namespace rdmamon::net {

namespace {

/// Telemetry: one doorbell rung by `self`, covering `wrs` work requests
/// (the scatter engine's merged posts make this ratio interesting).
/// Wall-clock-only bookkeeping; charges no simulated time.
void count_doorbell(os::SimThread& self, std::size_t wrs) {
  telemetry::Registry* reg = telemetry::Registry::of(self.node().simu());
  if (reg == nullptr) return;
  const telemetry::Labels by_node{{"node", self.node().name()}};
  reg->counter("net.doorbells", by_node).inc();
  reg->counter("net.posts", by_node).inc(wrs);
  reg->histogram("net.doorbell.wrs", by_node)
      .observe(static_cast<double>(wrs));
}

}  // namespace

// --- CompletionQueue ----------------------------------------------------------

CompletionQueue::~CompletionQueue() { mod_timer_.cancel(); }

void CompletionQueue::bind_moderation(sim::Simulation& simu, int count,
                                      sim::Duration period) {
  simu_ = &simu;
  mod_count_ = count < 1 ? 1 : count;
  mod_period_ = period;
}

void CompletionQueue::push(Completion c) {
  ++pushed_;
  if (forgotten_.erase(c.wr_id) > 0) {
    ++stale_dropped_;  // abandoned WR: drop on arrival
    return;
  }
  const bool urgent = c.status != WcStatus::Success;
  ++cqes_signaled_;
  q_.push_back(std::move(c));
  note_surfaced(urgent);
}

void CompletionQueue::deliver(std::uint64_t ctx, std::uint64_t seq,
                              bool signaled, Completion c) {
  ++pushed_;
  const bool error = c.status != WcStatus::Success;
  CtxState& st = ctxs_[ctx];
  if (signaled || error) {
    // This CQE proves every earlier WR on the context retired (RC
    // in-order execution): surface the shadowed successes first, in post
    // order, then the CQE itself. Error CQEs are always generated, so an
    // unsignaled WR that fails surfaces here too.
    release_shadows(st, seq);
    if (st.released_upto < seq + 1) st.released_upto = seq + 1;
    if (forgotten_.erase(c.wr_id) > 0) {
      ++stale_dropped_;
      return;
    }
    if (signaled) ++cqes_signaled_;
    q_.push_back(std::move(c));
    note_surfaced(error);
    return;
  }
  // Unsignaled success: no CQE. The data landed; the consumer learns of it
  // when a closer proves the context's queue drained past it.
  if (forgotten_.erase(c.wr_id) > 0) {
    ++stale_dropped_;  // abandoned before arrival: never shadowed
    return;
  }
  if (seq < st.released_upto) {
    // A later closer already proved this seq done (completions of a
    // shared multi-target context can arrive out of post order): the
    // consumer may be waiting on it, surface immediately.
    ++unsignaled_retired_;
    q_.push_back(std::move(c));
    note_surfaced(false);
    return;
  }
  st.shadow.push_back(Shadowed{seq, std::move(c)});
  ++shadow_count_;
}

void CompletionQueue::release_shadows(CtxState& st, std::uint64_t upto) {
  for (auto it = st.shadow.begin(); it != st.shadow.end();) {
    if (it->seq >= upto) {
      ++it;
      continue;
    }
    --shadow_count_;
    if (forgotten_.erase(it->c.wr_id) > 0) {
      ++stale_dropped_;
    } else {
      ++unsignaled_retired_;
      q_.push_back(std::move(it->c));
      note_surfaced(false);
    }
    it = st.shadow.erase(it);
  }
}

void CompletionQueue::note_surfaced(bool urgent) {
  ++since_fire_;
  if (mod_count_ <= 1 || urgent || simu_ == nullptr ||
      since_fire_ >= mod_count_) {
    fire_notify();
    return;
  }
  if (!mod_timer_armed_) {
    mod_timer_armed_ = true;
    mod_timer_ = simu_->after(mod_period_, [this] {
      mod_timer_armed_ = false;
      if (since_fire_ > 0) fire_notify();
    });
  }
}

void CompletionQueue::fire_notify() {
  ++notifies_;
  if (since_fire_ > 1) ++coalesced_polls_;
  since_fire_ = 0;
  if (mod_timer_armed_) {
    mod_timer_.cancel();
    mod_timer_armed_ = false;
  }
  wq_.notify_all();
}

const Completion* CompletionQueue::find(std::uint64_t wr_id) const {
  for (const Completion& c : q_) {
    if (c.wr_id == wr_id) return &c;
  }
  return nullptr;
}

bool CompletionQueue::try_pop(std::uint64_t wr_id, Completion& out) {
  for (auto it = q_.begin(); it != q_.end(); ++it) {
    if (it->wr_id == wr_id) {
      out = std::move(*it);
      q_.erase(it);
      return true;
    }
  }
  return false;
}

void CompletionQueue::forget(std::uint64_t wr_id) {
  ++forgets_;
  for (auto it = q_.begin(); it != q_.end(); ++it) {
    if (it->wr_id == wr_id) {
      q_.erase(it);  // already landed: reclaim immediately
      ++stale_dropped_;
      return;
    }
  }
  // An unsignaled success abandoned mid-window sits in its context's
  // shadow buffer, not in q_ — reclaim it there or its slot would leak
  // until (and past) the closer, and the wr_id would ghost-surface.
  for (auto& [ctx, st] : ctxs_) {
    for (auto it = st.shadow.begin(); it != st.shadow.end(); ++it) {
      if (it->c.wr_id == wr_id) {
        st.shadow.erase(it);
        --shadow_count_;
        ++stale_dropped_;
        return;
      }
    }
  }
  forgotten_.insert(wr_id);  // still in flight: drop at delivery
}

// --- QpContext ----------------------------------------------------------------

QpContext::QpContext(Nic& local, int signal_every, std::size_t send_depth)
    : local_(&local),
      ctx_id_(local.alloc_ctx_id()),
      signal_every_(signal_every < 1 ? 1 : signal_every),
      send_depth_(send_depth) {}

void QpContext::post_read(int target_node, MrKey rkey, std::size_t len,
                          std::uint64_t wr_id, CompletionQueue& cq,
                          bool force_signal) {
  Pending p;
  p.target = target_node;
  p.rkey = rkey;
  p.len = len;
  p.wr_id = wr_id;
  p.cq = &cq;
  p.force_signal = force_signal;
  submit(std::move(p));
}

void QpContext::post_write(int target_node, MrKey rkey, std::any value,
                           std::size_t len, std::uint64_t wr_id,
                           CompletionQueue& cq) {
  Pending p;
  p.is_write = true;
  p.target = target_node;
  p.rkey = rkey;
  p.len = len;
  p.wr_id = wr_id;
  p.cq = &cq;
  p.value = std::move(value);
  submit(std::move(p));
}

void QpContext::submit(Pending p) {
  if (send_depth_ > 0 && inflight_ >= send_depth_) {
    // Window full: the post waits in FIFO order for a completion to free
    // a slot — bounded send queues instead of unbounded NIC state.
    ++deferred_total_;
    deferred_.push_back(std::move(p));
    return;
  }
  launch(std::move(p));
}

void QpContext::launch(Pending p) {
  ++inflight_;
  const std::uint64_t seq = seq_++;
  const bool signaled = p.is_write || p.force_signal || signal_every_ <= 1 ||
                        ((seq + 1) % static_cast<std::uint64_t>(
                                         signal_every_) == 0);
  if (!signaled) {
    ++unsignaled_;
    local_->count_unsignaled();
  }
  // The completion callback keeps the context alive (shared ownership):
  // a pool handed out by make_context_pool may be dropped by the wiring
  // layer while WRs are still in flight.
  auto done = [self = shared_from_this(), cq = p.cq, seq,
               signaled](Completion c) {
    --self->inflight_;
    if (!self->deferred_.empty() &&
        (self->send_depth_ == 0 || self->inflight_ < self->send_depth_)) {
      Pending next = std::move(self->deferred_.front());
      self->deferred_.pop_front();
      self->launch(std::move(next));
    }
    cq->deliver(self->ctx_id_, seq, signaled, std::move(c));
  };
  if (p.is_write) {
    local_->rdma_write(p.target, p.rkey, std::move(p.value), p.len, p.wr_id,
                       std::move(done), ctx_id_, tenant_);
  } else {
    local_->rdma_read(p.target, p.rkey, p.len, p.wr_id, std::move(done),
                      ctx_id_, tenant_);
  }
}

// --- QueuePair ----------------------------------------------------------------

QueuePair::QueuePair(Nic& local, int remote_node, CompletionQueue& cq,
                     std::shared_ptr<QpContext> ctx)
    : remote_node_(remote_node),
      cq_(&cq),
      ctx_(ctx ? std::move(ctx) : std::make_shared<QpContext>(local)) {}

void QueuePair::post_read(MrKey rkey, std::size_t len, std::uint64_t wr_id,
                          bool force_signal) {
  ctx_->post_read(remote_node_, rkey, len, wr_id, *cq_, force_signal);
}

void QueuePair::post_read_batch(const std::vector<ReadWr>& wrs) {
  for (std::size_t i = 0; i < wrs.size(); ++i) {
    post_read(wrs[i].rkey, wrs[i].len, wrs[i].wr_id,
              /*force_signal=*/i + 1 == wrs.size());
  }
}

void QueuePair::post_write(MrKey rkey, std::any value, std::size_t len,
                           std::uint64_t wr_id) {
  ctx_->post_write(remote_node_, rkey, std::move(value), len, wr_id, *cq_);
}

std::vector<std::shared_ptr<QpContext>> make_context_pool(
    Nic& nic, const VerbsTuning& tuning) {
  std::vector<std::shared_ptr<QpContext>> pool;
  for (int i = 0; i < tuning.shared_contexts; ++i) {
    pool.push_back(std::make_shared<QpContext>(nic, tuning.signal_every,
                                               tuning.send_depth));
  }
  return pool;
}

// --- posting subprograms ------------------------------------------------------

os::Program post_read_batch(os::SimThread& self,
                            const std::vector<ReadBatchEntry>& batch) {
  if (batch.empty()) co_return;
  // One doorbell for the whole chain; the posts themselves are pointer
  // writes into the send queue(s), free at this resolution.
  co_await os::Compute{kDoorbellCost};
  count_doorbell(self, batch.size());
  // Close every context's chain: the LAST WR posted through each distinct
  // QpContext is force-signaled, so a signal-every-k context never ends a
  // burst with an unprovable unsignaled tail. With dedicated contexts
  // (defaults) every entry is its context's last — all signaled, the
  // historical behaviour.
  std::unordered_map<const QpContext*, std::size_t> last;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    last[&batch[i].qp->context()] = i;
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const ReadBatchEntry& e = batch[i];
    e.qp->post_read(e.rkey, e.len, e.wr_id,
                    /*force_signal=*/last[&e.qp->context()] == i);
  }
}

os::Program rdma_read_sync(os::SimThread& self, QueuePair& qp, MrKey rkey,
                           std::size_t len, Completion& out) {
  // Doorbell: a cheap user-space MMIO write.
  co_await os::Compute{kDoorbellCost};
  count_doorbell(self, 1);
  qp.post_read(rkey, len, /*wr_id=*/0);
  CompletionQueue& cq = qp.cq();
  while (cq.empty()) co_await os::WaitOn{&cq.wait_queue()};
  out = cq.pop();
}

os::Program rdma_read_sync_until(os::SimThread& self, QueuePair& qp,
                                 MrKey rkey, std::size_t len,
                                 std::uint64_t wr_id, sim::TimePoint deadline,
                                 Completion& out, bool& ok) {
  ok = false;
  co_await os::Compute{kDoorbellCost};
  count_doorbell(self, 1);
  qp.post_read(rkey, len, wr_id);
  CompletionQueue& cq = qp.cq();
  sim::Simulation& simu = self.node().simu();
  // The deadline is modelled as a timer that spuriously wakes the CQ
  // waiter; the waiter re-checks the clock (the documented wait-queue
  // discipline), so no scheduler surgery is needed. On the common path
  // the READ completes first and the cancel below unlinks the
  // wheel-resident timer in O(1), recycling its pool slot — arming a
  // guard per post costs no allocation and leaves no tombstone behind.
  sim::EventHandle timer;
  if (simu.now() < deadline) {
    timer = simu.at(deadline, [&cq] { cq.wait_queue().notify_all(); });
  }
  for (;;) {
    if (cq.try_pop(wr_id, out)) {
      ok = true;
      break;
    }
    if (simu.now() >= deadline) {
      cq.forget(wr_id);  // the CQ discards the late completion on arrival
      break;
    }
    co_await os::WaitOn{&cq.wait_queue()};
  }
  timer.cancel();
}

os::Program rdma_write_sync(os::SimThread& self, QueuePair& qp, MrKey rkey,
                            std::any value, std::size_t len,
                            Completion& out) {
  co_await os::Compute{kDoorbellCost};
  count_doorbell(self, 1);
  qp.post_write(rkey, std::move(value), len, /*wr_id=*/0);
  CompletionQueue& cq = qp.cq();
  while (cq.empty()) co_await os::WaitOn{&cq.wait_queue()};
  out = cq.pop();
}

}  // namespace rdmamon::net
