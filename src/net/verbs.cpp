#include "net/verbs.hpp"

#include "net/nic.hpp"

namespace rdmamon::net {

void QueuePair::post_read(MrKey rkey, std::size_t len, std::uint64_t wr_id) {
  local_->rdma_read(remote_node_, rkey, len, wr_id,
                    [cq = cq_](Completion c) { cq->push(std::move(c)); });
}

void QueuePair::post_write(MrKey rkey, std::any value, std::size_t len,
                           std::uint64_t wr_id) {
  local_->rdma_write(remote_node_, rkey, std::move(value), len, wr_id,
                     [cq = cq_](Completion c) { cq->push(std::move(c)); });
}

os::Program rdma_read_sync(os::SimThread& self, QueuePair& qp, MrKey rkey,
                           std::size_t len, Completion& out) {
  // Doorbell: a cheap user-space MMIO write.
  co_await os::Compute{sim::nsec(300)};
  qp.post_read(rkey, len, /*wr_id=*/0);
  CompletionQueue& cq = qp.cq();
  while (cq.empty()) co_await os::WaitOn{&cq.wait_queue()};
  out = cq.pop();
  (void)self;
}

os::Program rdma_write_sync(os::SimThread& self, QueuePair& qp, MrKey rkey,
                            std::any value, std::size_t len,
                            Completion& out) {
  co_await os::Compute{sim::nsec(300)};
  qp.post_write(rkey, std::move(value), len, /*wr_id=*/0);
  CompletionQueue& cq = qp.cq();
  while (cq.empty()) co_await os::WaitOn{&cq.wait_queue()};
  out = cq.pop();
  (void)self;
}

}  // namespace rdmamon::net
