#include "sim/trace.hpp"

#include <iostream>

namespace rdmamon::sim {

void Tracer::enable(TraceLevel level, Sink sink,
                    std::function<TimePoint()> now) {
  level_ = level;
  sink_ = std::move(sink);
  now_ = std::move(now);
}

void Tracer::enable_stderr(TraceLevel level, std::function<TimePoint()> now) {
  enable(
      level, [](const std::string& line) { std::cerr << line << '\n'; },
      std::move(now));
}

void Tracer::emit(TraceLevel level, const std::string& component,
                  const std::string& msg) {
  if (!enabled(level) || !sink_) return;
  std::string line = "(t=";
  line += now_ ? to_string(now_()) : std::string("?");
  line += ") [";
  line += component;
  line += "] ";
  line += msg;
  sink_(line);
}

}  // namespace rdmamon::sim
