#include "sim/time.hpp"

#include "util/format.hpp"

namespace rdmamon::sim {

std::string to_string(Duration d) { return util::format_duration_ns(d.ns); }

std::string to_string(TimePoint t) { return util::format_duration_ns(t.ns); }

}  // namespace rdmamon::sim
