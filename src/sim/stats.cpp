#include "sim/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rdmamon::sim {

void OnlineStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += o.m2_ + delta * delta * na * nb / nt;
  n_ += o.n_;
  sum_ += o.sum_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

Histogram::Histogram() : buckets_(kBuckets, 0) {}

int Histogram::bucket_of(double v) {
  if (v < 1.0) return 0;
  const double l = std::log2(v);
  int b = static_cast<int>(l * kSubBuckets);
  return std::clamp(b, 0, kBuckets - 1);
}

void Histogram::add(double v) {
  if (v < 0.0) v = 0.0;
  ++buckets_[static_cast<std::size_t>(bucket_of(v))];
  ++n_;
  stats_.add(v);
}

double Histogram::percentile(double q) const {
  if (n_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(n_ - 1));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[static_cast<std::size_t>(b)];
    if (seen > target) {
      // Representative value: geometric midpoint of the bucket.
      const double lo = std::exp2(static_cast<double>(b) / kSubBuckets);
      const double hi = std::exp2(static_cast<double>(b + 1) / kSubBuckets);
      const double mid = b == 0 ? 0.5 : std::sqrt(lo * hi);
      return std::clamp(mid, stats_.min(), stats_.max());
    }
  }
  return stats_.max();
}

void Histogram::merge(const Histogram& o) {
  for (int b = 0; b < kBuckets; ++b)
    buckets_[static_cast<std::size_t>(b)] +=
        o.buckets_[static_cast<std::size_t>(b)];
  n_ += o.n_;
  stats_.merge(o.stats_);
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  n_ = 0;
  stats_ = OnlineStats{};
}

void TimeWeighted::set(TimePoint t, double v) {
  if (!started_) {
    started_ = true;
    start_ = last_ = t;
    cur_ = v;
    return;
  }
  assert(t >= last_);
  weighted_sum_ += cur_ * static_cast<double>((t - last_).ns);
  last_ = t;
  cur_ = v;
}

double TimeWeighted::mean_until(TimePoint t) const {
  if (!started_ || t <= start_) return 0.0;
  double ws = weighted_sum_;
  if (t > last_) ws += cur_ * static_cast<double>((t - last_).ns);
  return ws / static_cast<double>((t - start_).ns);
}

double TimeSeries::value_mean() const {
  if (pts_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& p : pts_) s += p.v;
  return s / static_cast<double>(pts_.size());
}

double TimeSeries::value_max() const {
  double m = 0.0;
  for (const auto& p : pts_) m = std::max(m, p.v);
  return m;
}

}  // namespace rdmamon::sim
