// Small-buffer-optimized, move-only callable: the event queue's callback
// type. `std::function` heap-allocates every capture over ~16 bytes and
// drags in copy machinery the simulator never uses; InlineFn stores up to
// kInlineBytes of captures in place (enough for every hot-path lambda in
// src/os and src/net) and falls back to one heap box only for oversized
// cold-path captures. Moving an InlineFn moves the wrapped callable —
// no refcounts, no atomics, no allocation.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace rdmamon::sim {

class InlineFn {
 public:
  /// Inline capture budget. Sized so `[this, &x, a few scalars]` and a
  /// moved-in std::function both fit; measured against the schedulers'
  /// and NICs' actual lambdas (see bench_engine's alloc counter).
  static constexpr std::size_t kInlineBytes = 48;

  InlineFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): callback sink
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = &boxed_ops<Fn>;
    }
  }

  InlineFn(InlineFn&& other) noexcept : ops_(other.ops_) {
    if (ops_) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_) {
        ops_->relocate(other.storage_, storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  /// Destroys the wrapped callable (if any); *this becomes empty.
  void reset() noexcept {
    if (ops_) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  /// Invokes the wrapped callable. Precondition: *this is non-empty.
  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True when the wrapped callable lives in the inline buffer (no heap).
  bool is_inline() const noexcept { return ops_ != nullptr && ops_->inlined; }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* src, void* dst) noexcept;  // move + destroy src
    void (*destroy)(void*) noexcept;
    bool inlined;
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      [](void* src, void* dst) noexcept {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) noexcept { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); },
      true};

  template <typename Fn>
  static constexpr Ops boxed_ops = {
      [](void* p) { (**reinterpret_cast<Fn**>(p))(); },
      [](void* src, void* dst) noexcept {
        *reinterpret_cast<Fn**>(dst) = *reinterpret_cast<Fn**>(src);
      },
      [](void* p) noexcept { delete *reinterpret_cast<Fn**>(p); },
      false};

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
};

}  // namespace rdmamon::sim
