// Measurement plumbing: online moments, latency histograms with
// percentiles, and time-weighted series. Everything the benches report
// flows through these.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace rdmamon::sim {

/// Welford online mean/variance plus min/max. O(1) memory.
class OnlineStats {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const OnlineStats& o);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Log-bucketed histogram for nonnegative values (latencies in ns, queue
/// lengths, ...). ~90 buckets per decade-of-2 layout: value v lands in
/// bucket floor(log2(v) * kSubBuckets). Percentile error < ~1.6%.
class Histogram {
 public:
  Histogram();

  void add(double v);
  void add(Duration d) { add(static_cast<double>(d.ns)); }

  std::uint64_t count() const { return n_; }
  double min() const { return stats_.min(); }
  double max() const { return stats_.max(); }
  double mean() const { return stats_.mean(); }

  /// Value at quantile q in [0, 1]; 0 when empty.
  double percentile(double q) const;

  /// Merges another histogram (same layout by construction).
  void merge(const Histogram& o);

  /// Clears all samples.
  void reset();

 private:
  static constexpr int kSubBuckets = 8;  // per power of two
  static constexpr int kBuckets = 64 * kSubBuckets;
  static int bucket_of(double v);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t n_ = 0;
  OnlineStats stats_;
};

/// Piecewise-constant signal sampled at change points; computes
/// time-weighted averages (e.g. average run-queue length over a window).
class TimeWeighted {
 public:
  /// Records that the signal took value `v` starting at time `t`.
  /// Times must be non-decreasing.
  void set(TimePoint t, double v);

  /// Closes the signal at time `t` and returns the time-weighted mean
  /// over [first set, t]. Returns 0 if fewer than one segment.
  double mean_until(TimePoint t) const;

  double current() const { return cur_; }
  bool started() const { return started_; }

 private:
  bool started_ = false;
  TimePoint start_{}, last_{};
  double cur_ = 0.0;
  double weighted_sum_ = 0.0;
};

/// A labelled (time, value) series for figure output.
struct SeriesPoint {
  TimePoint t;
  double v;
};

class TimeSeries {
 public:
  void add(TimePoint t, double v) { pts_.push_back({t, v}); }
  const std::vector<SeriesPoint>& points() const { return pts_; }
  std::size_t size() const { return pts_.size(); }
  bool empty() const { return pts_.empty(); }

  /// Mean of the raw values (unweighted).
  double value_mean() const;

  /// Max of the raw values (0 if empty).
  double value_max() const;

 private:
  std::vector<SeriesPoint> pts_;
};

}  // namespace rdmamon::sim
