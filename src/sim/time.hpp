// Strongly-typed simulated time. The whole simulator runs on a 64-bit
// nanosecond clock; nothing ever reads the wall clock, so runs are
// reproducible bit-for-bit given the same seed.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace rdmamon::sim {

/// A span of simulated time in nanoseconds. Arithmetic is saturating-free
/// plain int64: experiments never get near the ~292-year range.
struct Duration {
  std::int64_t ns = 0;

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return {ns + o.ns}; }
  constexpr Duration operator-(Duration o) const { return {ns - o.ns}; }
  constexpr Duration operator*(std::int64_t k) const { return {ns * k}; }
  constexpr Duration operator/(std::int64_t k) const { return {ns / k}; }
  constexpr Duration& operator+=(Duration o) {
    ns += o.ns;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    ns -= o.ns;
    return *this;
  }

  constexpr double seconds() const { return static_cast<double>(ns) / 1e9; }
  constexpr double millis() const { return static_cast<double>(ns) / 1e6; }
  constexpr double micros() const { return static_cast<double>(ns) / 1e3; }
};

/// An absolute instant on the simulated clock (ns since simulation start).
struct TimePoint {
  std::int64_t ns = 0;

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return {ns + d.ns}; }
  constexpr TimePoint operator-(Duration d) const { return {ns - d.ns}; }
  constexpr Duration operator-(TimePoint o) const { return {ns - o.ns}; }
  constexpr TimePoint& operator+=(Duration d) {
    ns += d.ns;
    return *this;
  }

  constexpr double seconds() const { return static_cast<double>(ns) / 1e9; }
  constexpr double millis() const { return static_cast<double>(ns) / 1e6; }
};

/// Duration factories. `sim::msec(50)` reads like the paper's "T = 50 ms".
constexpr Duration nsec(std::int64_t v) { return {v}; }
constexpr Duration usec(std::int64_t v) { return {v * 1'000}; }
constexpr Duration msec(std::int64_t v) { return {v * 1'000'000}; }
constexpr Duration seconds(std::int64_t v) { return {v * 1'000'000'000}; }

/// Builds a Duration from fractional seconds / milliseconds.
constexpr Duration from_seconds(double s) {
  return {static_cast<std::int64_t>(s * 1e9)};
}
constexpr Duration from_millis(double ms) {
  return {static_cast<std::int64_t>(ms * 1e6)};
}

/// Human-readable rendering ("12.5ms"); defined in terms of util formatting.
std::string to_string(Duration d);
std::string to_string(TimePoint t);

}  // namespace rdmamon::sim
