// Simulation context: clock + event queue + run loop. Every model object
// holds a reference to one Simulation and schedules work through it.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace rdmamon::telemetry {
class Registry;
}

namespace rdmamon::sim {

/// Top-level simulation driver.
///
/// Usage:
///   Simulation simu;
///   simu.after(msec(10), [&]{ ... });
///   simu.run_for(seconds(5));
class Simulation {
 public:
  /// Current simulated time.
  TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `when`. Throws std::logic_error if
  /// `when` is in the past — a model bug we'd rather catch loudly.
  /// `fn` is a sim::InlineFn: captures up to ~48 bytes are stored in
  /// place, so the steady-state hot path performs no heap allocation.
  EventHandle at(TimePoint when, EventQueue::Callback fn) {
    if (when < now_) {
      throw std::logic_error("Simulation::at: scheduling into the past");
    }
    return queue_.schedule(when, std::move(fn));
  }

  /// Schedules `fn` after a relative delay (>= 0).
  EventHandle after(Duration delay, EventQueue::Callback fn) {
    if (delay.ns < 0) {
      throw std::logic_error("Simulation::after: negative delay");
    }
    return queue_.schedule(now_ + delay, std::move(fn));
  }

  /// Runs until the queue drains or `stop()` is called.
  void run();

  /// Runs events with timestamp <= `deadline`, then sets now() = deadline
  /// (even if the queue drained earlier). Cleared `stop()` flag applies.
  void run_until(TimePoint deadline);

  /// Convenience: run_until(now() + d).
  void run_for(Duration d) { run_until(now_ + d); }

  /// Requests the current run()/run_until() to return after the in-flight
  /// event completes. Safe to call from inside an event callback.
  void stop() { stop_requested_ = true; }

  /// Number of events executed since construction. Cancelled events are
  /// "forgotten": they never execute and are excluded here — see
  /// events_cancelled() for how much scheduled work was abandoned.
  std::uint64_t events_executed() const { return queue_.executed(); }

  /// Number of live events currently scheduled.
  std::size_t events_pending() const { return queue_.size(); }

  /// Total events ever cancelled before firing.
  std::uint64_t events_cancelled() const { return queue_.cancelled_total(); }

  /// Cancelled events awaiting the queue's lazy sweep (tombstones still
  /// occupying pool slots). Exported as the `sim_events_tombstoned`
  /// telemetry gauge when a registry is installed.
  std::size_t events_tombstoned() const { return queue_.cancelled_pending(); }

  /// Telemetry hook: the installed metrics registry, or nullptr when the
  /// run is un-instrumented (the default — components must treat null as
  /// "telemetry off"). The pointer is opaque here: sim never dereferences
  /// it, so the sim layer carries no dependency on the telemetry library.
  /// Install via telemetry::Registry::install BEFORE wiring the system —
  /// components resolve their instruments at construction time.
  telemetry::Registry* telemetry() const { return telemetry_; }
  void set_telemetry(telemetry::Registry* reg) { telemetry_ = reg; }

 private:
  EventQueue queue_;
  TimePoint now_{};
  bool stop_requested_ = false;
  telemetry::Registry* telemetry_ = nullptr;
};

}  // namespace rdmamon::sim
