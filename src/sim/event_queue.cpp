#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace rdmamon::sim {

void EventHandle::cancel() {
  if (queue_) queue_->do_cancel(slot_, gen_);
}

bool EventHandle::pending() const {
  return queue_ != nullptr && queue_->is_pending(slot_, gen_);
}

EventQueue::EventQueue() = default;

std::uint32_t EventQueue::alloc_node() {
  if (free_head_ == kNil) {
    const std::uint32_t base =
        static_cast<std::uint32_t>(slabs_.size() * kSlabNodes);
    slabs_.push_back(std::make_unique<Node[]>(kSlabNodes));
    // Chain the fresh slab onto the free list, last node first so
    // allocation order is ascending (friendlier to the cache).
    for (std::size_t i = kSlabNodes; i-- > 0;) {
      Node& n = slabs_.back()[i];
      n.next = free_head_;
      free_head_ = base + static_cast<std::uint32_t>(i);
    }
  }
  const std::uint32_t idx = free_head_;
  free_head_ = node(idx).next;
  return idx;
}

void EventQueue::free_node(std::uint32_t idx) {
  Node& n = node(idx);
  ++n.gen;  // every outstanding handle to this slot goes inert
  n.fn.reset();
  n.cancelled = false;
  n.where = Where::Free;
  n.prev = kNil;
  n.next = free_head_;
  free_head_ = idx;
}

void EventQueue::wheel_link(std::uint32_t idx, int level, std::uint32_t slot) {
  Node& n = node(idx);
  n.where = Where::Wheel;
  n.wheel_slot = static_cast<std::uint16_t>((level << kSlotBits) | slot);
  n.next = kNil;
  Slot& s = wheel_[level][slot];
  n.prev = s.tail;
  if (s.tail == kNil) {
    s.head = idx;
    occupied_[level][slot >> 6] |= 1ull << (slot & 63);
  } else {
    node(s.tail).next = idx;
  }
  s.tail = idx;
  ++wheel_live_;
}

void EventQueue::wheel_unlink(std::uint32_t idx) {
  Node& n = node(idx);
  const int level = n.wheel_slot >> kSlotBits;
  const std::uint32_t slot = n.wheel_slot & kSlotMask;
  Slot& s = wheel_[level][slot];
  if (n.prev != kNil) {
    node(n.prev).next = n.next;
  } else {
    s.head = n.next;
  }
  if (n.next != kNil) {
    node(n.next).prev = n.prev;
  } else {
    s.tail = n.prev;
  }
  if (s.head == kNil) occupied_[level][slot >> 6] &= ~(1ull << (slot & 63));
  --wheel_live_;
}

void EventQueue::place(std::uint32_t idx) {
  Node& n = node(idx);
  const std::int64_t w = n.when.ns;
  if (w < horizon_ns_) {
    // Already inside the drained window (scheduling at now() after the
    // wheel cursor passed): insert directly into the sorted run-list.
    n.where = Where::Ready;
    const Key k{w, n.seq, idx};
    ready_.insert(std::lower_bound(ready_.begin() +
                                       static_cast<std::ptrdiff_t>(head_),
                                   ready_.end(), k),
                  k);
    return;
  }
  const std::uint64_t wt = static_cast<std::uint64_t>(w) >> kTickBits;
  const std::uint64_t ht =
      static_cast<std::uint64_t>(horizon_ns_) >> kTickBits;
  if ((wt >> kSlotBits) == (ht >> kSlotBits)) {
    wheel_link(idx, 0, static_cast<std::uint32_t>(wt & kSlotMask));
  } else if ((wt >> (2 * kSlotBits)) == (ht >> (2 * kSlotBits))) {
    wheel_link(idx, 1,
               static_cast<std::uint32_t>((wt >> kSlotBits) & kSlotMask));
  } else if ((wt >> (3 * kSlotBits)) == (ht >> (3 * kSlotBits))) {
    wheel_link(idx, 2,
               static_cast<std::uint32_t>((wt >> (2 * kSlotBits)) & kSlotMask));
  } else {
    n.where = Where::Heap;
    heap_.push(Key{w, n.seq, idx});
  }
}

void EventQueue::cascade(int level, std::uint32_t slot) {
  Slot& s = wheel_[level][slot];
  std::uint32_t cur = s.head;
  s.head = s.tail = kNil;
  occupied_[level][slot >> 6] &= ~(1ull << (slot & 63));
  while (cur != kNil) {
    const std::uint32_t next = node(cur).next;
    --wheel_live_;
    place(cur);  // re-bins into a lower level (or L0) under the new horizon
    cur = next;
  }
}

void EventQueue::drain_heap_until(std::int64_t end_ns) {
  while (!heap_.empty() && heap_.top().when_ns < end_ns) {
    const Key k = heap_.top();
    heap_.pop();
    Node& n = node(k.idx);
    if (n.cancelled) {
      --tombstoned_;
      free_node(k.idx);
    } else {
      n.where = Where::Ready;
      ready_.push_back(k);
    }
  }
}

void EventQueue::advance_horizon(std::int64_t new_ns) {
  assert(new_ns >= horizon_ns_);
  const std::uint64_t old_ht =
      static_cast<std::uint64_t>(horizon_ns_) >> kTickBits;
  const std::uint64_t new_ht = static_cast<std::uint64_t>(new_ns) >> kTickBits;
  horizon_ns_ = new_ns;
  if (wheel_live_ == 0) return;
  // Cascade the slot the horizon just entered, coarsest level first (the
  // L2 cascade may feed the L1 slot cascaded next). Skipping this would
  // let a later schedule drop events straight into L0 and fire them ahead
  // of earlier events still parked in the entered slot.
  if ((old_ht >> (2 * kSlotBits)) != (new_ht >> (2 * kSlotBits))) {
    const std::uint32_t s2 =
        static_cast<std::uint32_t>((new_ht >> (2 * kSlotBits)) & kSlotMask);
    if ((occupied_[2][s2 >> 6] >> (s2 & 63)) & 1) cascade(2, s2);
  }
  if ((old_ht >> kSlotBits) != (new_ht >> kSlotBits)) {
    const std::uint32_t s1 =
        static_cast<std::uint32_t>((new_ht >> kSlotBits) & kSlotMask);
    if ((occupied_[1][s1 >> 6] >> (s1 & 63)) & 1) cascade(1, s1);
  }
}

namespace {
/// Smallest set bit index >= `from` in a 256-bit bitmap, or -1.
int next_occupied_bit(const std::uint64_t* words, std::uint32_t from) {
  if (from >= 256) return -1;
  std::uint32_t word = from >> 6;
  std::uint64_t bits = words[word] & (~0ull << (from & 63));
  for (;;) {
    if (bits != 0) {
      return static_cast<int>(word * 64 +
                              static_cast<std::uint32_t>(std::countr_zero(bits)));
    }
    if (++word == 4) return -1;
    bits = words[word];
  }
}
}  // namespace

void EventQueue::refill_ready() {
  // One progress step: move at least one event into ready_, or cascade a
  // coarser wheel slot one level down. Caller (peek_ready) loops.
  constexpr std::int64_t kTick = 1ll << kTickBits;
  if (wheel_live_ == 0) {
    // Everything pending is far-future: drain the overflow heap's next
    // 1-tick window. The horizon may jump arbitrarily far forward here —
    // safe, because no wheel level holds anything to skip over.
    assert(!heap_.empty());
    const std::int64_t end =
        ((heap_.top().when_ns >> kTickBits) + 1) << kTickBits;
    advance_horizon(std::max(horizon_ns_, end));
    drain_heap_until(end);
    return;
  }
  const std::uint64_t ht =
      static_cast<std::uint64_t>(horizon_ns_) >> kTickBits;

  // Level 0: earliest occupied slot in the current rotation. Placement
  // guarantees no L0 event sits below the horizon's slot index.
  const int s0 = next_occupied_bit(occupied_[0],
                                   static_cast<std::uint32_t>(ht & kSlotMask));
  if (s0 >= 0) {
    const std::int64_t slot_start = static_cast<std::int64_t>(
        ((ht & ~static_cast<std::uint64_t>(kSlotMask)) |
         static_cast<std::uint64_t>(s0))
        << kTickBits);
    if (!heap_.empty() && heap_.top().when_ns < slot_start) {
      const std::int64_t end =
          ((heap_.top().when_ns >> kTickBits) + 1) << kTickBits;
      advance_horizon(end);  // end <= slot_start: no wheel event skipped
      drain_heap_until(end);
      std::sort(ready_.begin() + static_cast<std::ptrdiff_t>(head_),
                ready_.end());
      return;
    }
    // Detach the slot's chain BEFORE moving the horizon: when the drain
    // window crosses an L1 group boundary, advance_horizon cascades the
    // next group's events down — possibly into this very L0 slot index
    // (next rotation), which must not join the batch drained now.
    Slot& s = wheel_[0][s0];
    std::uint32_t cur = s.head;
    s.head = s.tail = kNil;
    occupied_[0][static_cast<std::uint32_t>(s0) >> 6] &=
        ~(1ull << (s0 & 63));
    advance_horizon(slot_start + kTick);
    while (cur != kNil) {
      Node& n = node(cur);
      const std::uint32_t next = n.next;
      --wheel_live_;
      n.where = Where::Ready;
      ready_.push_back(Key{n.when.ns, n.seq, cur});
      cur = next;
    }
    // Heap entries ripening inside this same window join the batch, then
    // one sort restores the global (when, seq) order.
    drain_heap_until(horizon_ns_);
    std::sort(ready_.begin() + static_cast<std::ptrdiff_t>(head_),
              ready_.end());
    return;
  }

  // Level 1+: find the next occupied coarse slot and push it one level
  // down. advance_horizon keeps the entered slot cascaded, so the scan
  // could start past the current index; the inclusive scan stays as a
  // cheap safety net.
  for (int level = 1; level < kLevels; ++level) {
    const std::uint32_t cur_idx = static_cast<std::uint32_t>(
        (ht >> (level * kSlotBits)) & kSlotMask);
    const int sl = next_occupied_bit(occupied_[level], cur_idx);
    if (sl < 0) continue;
    const std::uint64_t group = ht >> (level * kSlotBits);
    const std::int64_t slot_start = static_cast<std::int64_t>(
        ((group & ~static_cast<std::uint64_t>(kSlotMask)) |
         static_cast<std::uint64_t>(sl))
        << (kTickBits + level * kSlotBits));
    if (slot_start > horizon_ns_ && !heap_.empty() &&
        heap_.top().when_ns < slot_start) {
      const std::int64_t end =
          ((heap_.top().when_ns >> kTickBits) + 1) << kTickBits;
      advance_horizon(end);
      drain_heap_until(end);
      std::sort(ready_.begin() + static_cast<std::ptrdiff_t>(head_),
                ready_.end());
      return;
    }
    advance_horizon(std::max(horizon_ns_, slot_start));
    cascade(level, static_cast<std::uint32_t>(sl));
    return;
  }
  assert(false && "wheel_live_ > 0 but no occupied slot found");
}

void EventQueue::purge_dead() {
  if (live_ != 0 || tombstoned_ == 0) return;
  // No live event left anywhere, so every ready/heap entry is a
  // tombstone (wheel cancels free eagerly and never tombstone).
  for (std::size_t i = head_; i < ready_.size(); ++i) {
    free_node(ready_[i].idx);
  }
  ready_.clear();
  head_ = 0;
  while (!heap_.empty()) {
    free_node(heap_.top().idx);
    heap_.pop();
  }
  tombstoned_ = 0;
}

bool EventQueue::peek_ready() {
  for (;;) {
    while (head_ < ready_.size()) {
      const Key k = ready_[head_];
      Node& n = node(k.idx);
      if (!n.cancelled) return true;
      --tombstoned_;  // lazy sweep of a cancelled ready entry
      free_node(k.idx);
      ++head_;
    }
    ready_.clear();
    head_ = 0;
    if (wheel_live_ == 0 && heap_.empty()) return false;
    refill_ready();
  }
}

EventHandle EventQueue::schedule(TimePoint when, Callback fn) {
  const std::uint32_t idx = alloc_node();
  Node& n = node(idx);
  n.when = when;
  n.seq = next_seq_++;
  n.cancelled = false;
  n.fn = std::move(fn);
  ++live_;
  place(idx);
  return EventHandle{this, idx, n.gen};
}

void EventQueue::do_cancel(std::uint32_t slot, std::uint32_t gen) {
  Node& n = node(slot);
  if (n.gen != gen || n.where == Where::Free || n.cancelled) return;
  n.cancelled = true;
  ++cancelled_total_;
  --live_;
  if (n.where == Where::Wheel) {
    // O(1) eager unlink: the doubly-linked slot list needs no sweep.
    wheel_unlink(slot);
    free_node(slot);
  } else {
    // Ready- or heap-resident: tombstone now, reap at pop time.
    ++tombstoned_;
  }
  purge_dead();
}

bool EventQueue::is_pending(std::uint32_t slot, std::uint32_t gen) const {
  const Node& n = node(slot);
  return n.gen == gen && n.where != Where::Free && !n.cancelled;
}

TimePoint EventQueue::next_time() {
  const bool found = peek_ready();
  assert(found);
  (void)found;
  return node(ready_[head_].idx).when;
}

TimePoint EventQueue::pop_and_run() {
  const bool found = peek_ready();
  assert(found);
  (void)found;
  const Key k = ready_[head_++];
  Node& n = node(k.idx);
  const TimePoint when = n.when;
  InlineFn fn = std::move(n.fn);
  // Free before invoking: the slot's generation advances, so the fired
  // event's handles go inert even while its callback runs (and the slot
  // is immediately reusable by events the callback schedules).
  free_node(k.idx);
  --live_;
  ++executed_;
  purge_dead();
  fn();
  return when;
}

}  // namespace rdmamon::sim
