#include "sim/event_queue.hpp"

#include <cassert>

namespace rdmamon::sim {

void EventHandle::cancel() {
  if (state_ && !state_->fired) state_->cancelled = true;
}

bool EventHandle::pending() const {
  return state_ && !state_->fired && !state_->cancelled;
}

EventHandle EventQueue::schedule(TimePoint when, Callback fn) {
  auto state = std::make_shared<EventHandle::State>();
  heap_.push(Entry{when, next_seq_++, std::move(fn), state});
  ++live_;
  return EventHandle{std::move(state)};
}

void EventQueue::drop_dead() const {
  // heap_/live_ are mutable: discarding cancelled entries does not change
  // the queue's observable (live-event) state.
  while (!heap_.empty() && heap_.top().state->cancelled) {
    heap_.pop();
    --live_;
  }
}

bool EventQueue::empty() const {
  drop_dead();
  return heap_.empty();
}

TimePoint EventQueue::next_time() const {
  drop_dead();
  assert(!heap_.empty());
  return heap_.top().when;
}

TimePoint EventQueue::pop_and_run() {
  drop_dead();
  assert(!heap_.empty());
  Entry e = heap_.top();
  heap_.pop();
  --live_;
  e.state->fired = true;
  ++executed_;
  e.fn();
  return e.when;
}

}  // namespace rdmamon::sim
