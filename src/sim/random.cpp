#include "sim/random.hpp"

#include <cassert>
#include <cmath>

namespace rdmamon::sim {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Xoshiro256 Xoshiro256::split() {
  // Seed a child engine from our own stream; adequate decorrelation for
  // simulation purposes.
  return Xoshiro256(next() ^ 0xD2B74407B1CE6E93ull);
}

double Rng::uniform() {
  // 53-bit mantissa trick for a uniform double in [0, 1).
  return static_cast<double>(eng_.next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(eng_.next());
  // Modulo bias is negligible for our ranges (<< 2^64), accepted here.
  return lo + static_cast<std::int64_t>(eng_.next() % range);
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

double Rng::bounded_pareto(double alpha, double lo, double hi) {
  assert(alpha > 0.0 && lo > 0.0 && hi > lo);
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

ZipfDistribution::ZipfDistribution(std::size_t n, double alpha, Method method)
    : alpha_(alpha), method_(method), cdf_(n) {
  assert(n > 0);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
  cdf_.back() = 1.0;  // guard against rounding
  if (method_ == Method::kAlias) {
    build_alias();
  } else {
    build_guide();
  }
}

void ZipfDistribution::build_guide() {
  // guide_[k] = first index whose cdf reaches k/G. For u in
  // [k/G, (k+1)/G) the answer lies in [guide_[k], guide_[k+1]], an O(1)
  // expected window, found by the same first-cdf->=u scan the original
  // binary search implemented — identical result for identical u.
  const std::size_t g = cdf_.size();
  guide_.resize(g + 1);
  std::size_t i = 0;
  for (std::size_t k = 0; k <= g; ++k) {
    const double threshold = static_cast<double>(k) / static_cast<double>(g);
    while (i < cdf_.size() - 1 && cdf_[i] < threshold) ++i;
    guide_[k] = static_cast<std::uint32_t>(i);
  }
}

void ZipfDistribution::build_alias() {
  // Vose's alias construction: every column holds its own rank with
  // probability alias_prob_[k], the aliased rank otherwise.
  const std::size_t n = cdf_.size();
  alias_prob_.resize(n);
  alias_.resize(n);
  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small, large;
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = pmf(i + 1) * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(
        static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    const std::uint32_t l = large.back();
    small.pop_back();
    large.pop_back();
    alias_prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (const std::uint32_t i : large) {
    alias_prob_[i] = 1.0;
    alias_[i] = i;
  }
  for (const std::uint32_t i : small) {  // numerical leftovers: treat as 1
    alias_prob_[i] = 1.0;
    alias_[i] = i;
  }
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  if (method_ == Method::kAlias) {
    const double scaled = u * static_cast<double>(cdf_.size());
    std::size_t k = static_cast<std::size_t>(scaled);
    if (k >= cdf_.size()) k = cdf_.size() - 1;  // u -> 1.0 edge
    const double frac = scaled - static_cast<double>(k);
    return (frac < alias_prob_[k] ? k : alias_[k]) + 1;
  }
  // Guide-table-narrowed scan for the first cdf_[i] >= u: same contract
  // (and same returned rank) as the original full binary search.
  const std::size_t g = guide_.size() - 1;
  std::size_t k = static_cast<std::size_t>(u * static_cast<double>(g));
  if (k >= g) k = g - 1;
  std::size_t i = guide_[k];
  while (cdf_[i] < u) ++i;
  return i + 1;
}

double ZipfDistribution::pmf(std::size_t rank) const {
  assert(rank >= 1 && rank <= cdf_.size());
  const double hi = cdf_[rank - 1];
  const double lo = rank >= 2 ? cdf_[rank - 2] : 0.0;
  return hi - lo;
}

}  // namespace rdmamon::sim
