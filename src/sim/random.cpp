#include "sim/random.hpp"

#include <cassert>
#include <cmath>

namespace rdmamon::sim {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Xoshiro256 Xoshiro256::split() {
  // Seed a child engine from our own stream; adequate decorrelation for
  // simulation purposes.
  return Xoshiro256(next() ^ 0xD2B74407B1CE6E93ull);
}

double Rng::uniform() {
  // 53-bit mantissa trick for a uniform double in [0, 1).
  return static_cast<double>(eng_.next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(eng_.next());
  // Modulo bias is negligible for our ranges (<< 2^64), accepted here.
  return lo + static_cast<std::int64_t>(eng_.next() % range);
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

double Rng::bounded_pareto(double alpha, double lo, double hi) {
  assert(alpha > 0.0 && lo > 0.0 && hi > lo);
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

ZipfDistribution::ZipfDistribution(std::size_t n, double alpha)
    : alpha_(alpha), cdf_(n) {
  assert(n > 0);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform();
  // Binary search for the first cdf_[i] >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + 1;
}

double ZipfDistribution::pmf(std::size_t rank) const {
  assert(rank >= 1 && rank <= cdf_.size());
  const double hi = cdf_[rank - 1];
  const double lo = rank >= 2 ? cdf_[rank - 2] : 0.0;
  return hi - lo;
}

}  // namespace rdmamon::sim
