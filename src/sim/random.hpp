// Deterministic random-number machinery: a fast engine plus the
// distributions the workloads need (exponential inter-arrivals, Zipf
// popularity, Pareto document sizes, ...). Only seeded engines, never
// std::random_device, so every experiment replays exactly.
#pragma once

#include <cstdint>
#include <vector>

namespace rdmamon::sim {

/// SplitMix64: used to expand a single user seed into engine state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// Xoshiro256++ engine. Satisfies UniformRandomBitGenerator so it can be
/// plugged into <random> distributions, though we ship our own below.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Derives an independent stream (for giving each model component its
  /// own engine without correlated sequences).
  Xoshiro256 split();

 private:
  std::uint64_t s_[4];
};

/// Random helpers bound to one engine. Cheap to copy.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : eng_(seed) {}
  explicit Rng(Xoshiro256 eng) : eng_(eng) {}

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential variate with the given mean (> 0).
  double exponential(double mean);

  /// Normal variate (Box-Muller, one value per call).
  double normal(double mean, double stddev);

  /// Bounded Pareto variate in [lo, hi] with shape alpha (> 0) — used for
  /// heavy-tailed web-document sizes.
  double bounded_pareto(double alpha, double lo, double hi);

  /// True with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Derives an independent child Rng.
  Rng split() { return Rng(eng_.split()); }

  Xoshiro256& engine() { return eng_; }

 private:
  Xoshiro256 eng_;
};

/// Zipf(alpha) over ranks 1..n: P(rank i) proportional to 1/i^alpha.
/// The paper sweeps alpha in [0.25, 0.9].
///
/// Two sampling backends behind one API:
///  - kInverseCdf (default): inversion against the precomputed CDF,
///    accelerated by a guide table that narrows "first cdf_[i] >= u" to a
///    handful of entries — O(1) expected, and bit-for-bit the same rank
///    per uniform draw as the original binary search, so every figure
///    driven by ZipfTrace replays exactly.
///  - kAlias: Walker/Vose alias table, O(1) worst-case. Draws a
///    *different* (equally valid) rank stream for the same seed, so it is
///    opt-in for synthetic load generators, never for the paper figures.
/// Both backends consume exactly one uniform() per sample.
class ZipfDistribution {
 public:
  enum class Method { kInverseCdf, kAlias };

  ZipfDistribution(std::size_t n, double alpha,
                   Method method = Method::kInverseCdf);

  /// Samples a rank in [1, n].
  std::size_t sample(Rng& rng) const;

  /// Probability mass of rank i (1-based).
  double pmf(std::size_t rank) const;

  std::size_t size() const { return cdf_.size(); }
  double alpha() const { return alpha_; }
  Method method() const { return method_; }

  /// The internal CDF (cdf()[i] = P(rank <= i+1)). Exposed so tests can
  /// pin sample() to the exact "first cdf entry >= u" contract.
  const std::vector<double>& cdf() const { return cdf_; }

 private:
  void build_guide();
  void build_alias();

  double alpha_;
  Method method_;
  std::vector<double> cdf_;      // cdf_[i] = P(rank <= i+1)
  std::vector<std::uint32_t> guide_;  // guide_[k] = first i: cdf_[i] >= k/G
  std::vector<double> alias_prob_;    // Vose: stay-probability per column
  std::vector<std::uint32_t> alias_;  // Vose: overflow target per column
};

}  // namespace rdmamon::sim
