// Cancellable time-ordered event queue: the heart of the DES kernel.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace rdmamon::sim {

/// Handle to a scheduled event; lets the owner cancel it before it fires.
/// Copyable; all copies refer to the same event. A default-constructed
/// handle refers to nothing and is inert.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent.
  void cancel();

  /// True if the event is still scheduled (not fired, not cancelled).
  bool pending() const;

 private:
  friend class EventQueue;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

/// Min-heap of (time, insertion-sequence) ordered callbacks. Ties at the
/// same timestamp fire in insertion order, which keeps runs deterministic.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` to fire at absolute time `when`. `when` may equal the
  /// current pop time (fires after already-popped events at that instant)
  /// but must never be in the past relative to the last popped event; the
  /// Simulation wrapper enforces that.
  EventHandle schedule(TimePoint when, Callback fn);

  /// True if no live (non-cancelled) event remains.
  bool empty() const;

  /// Timestamp of the earliest live event; undefined when empty().
  TimePoint next_time() const;

  /// Pops and runs the earliest live event; returns its timestamp.
  /// Precondition: !empty().
  TimePoint pop_and_run();

  /// Number of live events currently queued.
  std::size_t size() const { return live_; }

  /// Total events ever executed (for stats / micro-benchmarks).
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void drop_dead() const;

  // mutable: empty()/next_time() lazily discard cancelled heads.
  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  mutable std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace rdmamon::sim
