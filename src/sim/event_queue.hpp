// Cancellable time-ordered event queue: the heart of the DES kernel.
//
// Zero-allocation steady state. Event records are slab-pooled intrusive
// nodes recycled through a free list — scheduling an event performs no
// heap allocation once the pool is warm (callbacks that fit InlineFn's
// inline buffer included). Handles are plain {slot, generation} values,
// so cancel()/pending() need no refcounting.
//
// Near-future events — the NIC/socket delays, scheduler quanta and retry
// backoffs that dominate every run — live in a 3-level hierarchical timer
// wheel (1.024us ticks, 256 slots per level, ~17.6s total span) with
// per-level occupancy bitmaps; only far-future events overflow into a
// binary heap. Scheduling and cancellation are O(1): a wheel-resident
// event unlinks from its slot list immediately, while heap- and
// ready-resident events are tombstoned and lazily swept at pop time
// (observable via cancelled_pending() and the `sim_events_tombstoned`
// telemetry gauge).
//
// Ordering is exactly the seed kernel's: events fire by (time, insertion
// sequence), so ties at one timestamp fire in insertion order and every
// simulated figure is bit-identical to the heap-only implementation.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "sim/inline_fn.hpp"
#include "sim/time.hpp"

namespace rdmamon::sim {

class EventQueue;

/// Handle to a scheduled event; lets the owner cancel it before it fires.
/// Copyable; all copies refer to the same event. A default-constructed
/// handle refers to nothing and is inert. A handle is a {slot, generation}
/// ticket into the queue's node pool: once the event fires or is
/// cancelled the slot's generation advances and every outstanding copy
/// goes inert automatically. Handles must not outlive their EventQueue.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent, O(1).
  void cancel();

  /// True if the event is still scheduled (not fired, not cancelled).
  bool pending() const;

 private:
  friend class EventQueue;
  EventHandle(EventQueue* q, std::uint32_t slot, std::uint32_t gen)
      : queue_(q), slot_(slot), gen_(gen) {}
  EventQueue* queue_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// Timer-wheel + overflow-heap event queue. Ties at the same timestamp
/// fire in insertion order, which keeps runs deterministic.
class EventQueue {
 public:
  using Callback = InlineFn;

  EventQueue();

  /// Schedules `fn` to fire at absolute time `when`. `when` may equal the
  /// current pop time (fires after already-popped events at that instant)
  /// but must never be in the past relative to the last popped event; the
  /// Simulation wrapper enforces that.
  EventHandle schedule(TimePoint when, Callback fn);

  /// True if no live (non-cancelled) event remains.
  bool empty() const { return live_ == 0; }

  /// Timestamp of the earliest live event; undefined when empty().
  /// Non-const: peeking sweeps tombstones and advances the wheel cursor
  /// (observable only through cancelled_pending()).
  TimePoint next_time();

  /// Pops and runs the earliest live event; returns its timestamp.
  /// Precondition: !empty().
  TimePoint pop_and_run();

  /// Number of live events currently queued (cancelled events leave this
  /// count immediately, even while their tombstone awaits the lazy sweep).
  std::size_t size() const { return live_; }

  /// Total events ever executed. Cancelled events are never counted here:
  /// a schedule/cancel pair (the timeout-armed-but-never-hit pattern) is
  /// "forgotten" work, visible only through cancelled_total().
  std::uint64_t executed() const { return executed_; }

  /// Cancelled entries still occupying a pool slot until the lazy sweep
  /// reaps them (heap- or ready-resident tombstones). Wheel-resident
  /// events unlink eagerly and never appear here. Exported as the
  /// `sim_events_tombstoned` telemetry gauge.
  std::size_t cancelled_pending() const { return tombstoned_; }

  /// Total cancellations ever observed (fired events cannot be cancelled).
  std::uint64_t cancelled_total() const { return cancelled_total_; }

  /// Pool capacity in nodes (allocated slabs x slab size) — growth stops
  /// once the peak live+tombstoned population has been seen: the
  /// zero-allocation-steady-state invariant checked by bench_engine.
  std::size_t pool_capacity() const { return kSlabNodes * slabs_.size(); }

 private:
  friend class EventHandle;

  // --- geometry -------------------------------------------------------------
  static constexpr int kTickBits = 10;  ///< 1 tick = 1.024us
  static constexpr int kSlotBits = 8;   ///< 256 slots per level
  static constexpr int kLevels = 3;     ///< spans ~17.6s; beyond -> heap
  static constexpr std::uint32_t kSlotsPerLevel = 1u << kSlotBits;
  static constexpr std::uint32_t kSlotMask = kSlotsPerLevel - 1;
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::size_t kSlabNodes = 256;  ///< pool slab granularity

  enum class Where : std::uint8_t { Free, Wheel, Ready, Heap };

  struct Node {
    TimePoint when{};
    std::uint64_t seq = 0;
    std::uint32_t gen = 0;
    std::uint32_t next = kNil;  ///< slot list / free list link
    std::uint32_t prev = kNil;  ///< slot list back link
    std::uint16_t wheel_slot = 0;  ///< level<<kSlotBits | slot, when in wheel
    Where where = Where::Free;
    bool cancelled = false;
    InlineFn fn;
  };

  /// (when, seq, node) key for the ready run-list and the overflow heap.
  struct Key {
    std::int64_t when_ns;
    std::uint64_t seq;
    std::uint32_t idx;
    bool operator<(const Key& o) const {
      return when_ns != o.when_ns ? when_ns < o.when_ns : seq < o.seq;
    }
  };
  struct KeyLater {  // max-heap adapter -> min-heap
    bool operator()(const Key& a, const Key& b) const { return b < a; }
  };

  Node& node(std::uint32_t idx) {
    return slabs_[idx >> 8][idx & 255];
  }
  const Node& node(std::uint32_t idx) const {
    return slabs_[idx >> 8][idx & 255];
  }

  std::uint32_t alloc_node();
  void free_node(std::uint32_t idx);

  void place(std::uint32_t idx);           ///< into wheel, heap or ready
  void wheel_link(std::uint32_t idx, int level, std::uint32_t slot);
  void wheel_unlink(std::uint32_t idx);
  void cascade(int level, std::uint32_t slot);  ///< redistribute one slot

  /// Moves the horizon forward. Whenever it enters a new L1/L2 group the
  /// group's own slot cascades immediately, maintaining the invariant
  /// that the slots covering the horizon's position are always empty —
  /// otherwise events scheduled into L0 afterwards would mask (and fire
  /// before) earlier events still parked one level up.
  void advance_horizon(std::int64_t new_ns);

  /// Ensures ready_ holds the earliest live event at its head (sweeping
  /// tombstones, cascading wheel levels and draining the overflow heap as
  /// needed). Returns false when no live event exists.
  bool peek_ready();
  void refill_ready();
  void drain_heap_until(std::int64_t end_ns);

  /// When the last live event goes away, every remaining ready/heap entry
  /// is a tombstone: reap them all so cancelled_pending() returns to zero
  /// and an idle queue holds no pool slots hostage.
  void purge_dead();

  void do_cancel(std::uint32_t slot, std::uint32_t gen);
  bool is_pending(std::uint32_t slot, std::uint32_t gen) const;

  // --- node pool ------------------------------------------------------------
  std::vector<std::unique_ptr<Node[]>> slabs_;
  std::uint32_t free_head_ = kNil;

  // --- timer wheel ----------------------------------------------------------
  struct Slot {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };
  Slot wheel_[kLevels][kSlotsPerLevel];
  std::uint64_t occupied_[kLevels][kSlotsPerLevel / 64] = {};
  std::size_t wheel_live_ = 0;   ///< nodes resident in any wheel level
  std::int64_t horizon_ns_ = 0;  ///< all events < horizon are in ready_

  // --- ready run-list and far-future overflow -------------------------------
  std::vector<Key> ready_;   ///< sorted (when, seq); head_ indexes the front
  std::size_t head_ = 0;
  std::priority_queue<Key, std::vector<Key>, KeyLater> heap_;

  // --- counters -------------------------------------------------------------
  std::size_t live_ = 0;
  std::size_t tombstoned_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_total_ = 0;
};

}  // namespace rdmamon::sim
