// Lightweight component-tagged tracing. Disabled by default; tests and
// debugging sessions can route it to stderr or capture it in memory.
//
// Hot paths should use the LAZY overloads — pass a callable that builds
// the message instead of the message itself, so a disabled tracer pays a
// single level check and never constructs a std::string:
//
//   trace.debug("net", [&] { return "posted wr " + std::to_string(id); });
#pragma once

#include <functional>
#include <string>
#include <type_traits>

#include "sim/time.hpp"

namespace rdmamon::sim {

/// Severity levels, lowest to highest.
enum class TraceLevel { Debug = 0, Info = 1, Warn = 2, Off = 3 };

/// A trace sink bound to a simulation clock. Components call
/// `trace.info("net", "...")`; the sink sees "(t=12.5ms) [net] ...".
class Tracer {
 public:
  using Sink = std::function<void(const std::string& line)>;

  /// Constructs a disabled tracer (level Off, no sink).
  Tracer() = default;

  /// Enables output at `level` through `sink`. The `now` callback supplies
  /// timestamps (usually bound to Simulation::now).
  void enable(TraceLevel level, Sink sink, std::function<TimePoint()> now);

  /// Routes output to stderr (convenience for debugging).
  void enable_stderr(TraceLevel level, std::function<TimePoint()> now);

  void disable() { level_ = TraceLevel::Off; }

  bool enabled(TraceLevel level) const { return level >= level_; }

  /// True when a message at `level` would actually reach the sink — the
  /// guard the lazy overloads use before building anything.
  bool would_emit(TraceLevel level) const {
    return enabled(level) && static_cast<bool>(sink_);
  }

  void debug(const std::string& component, const std::string& msg) {
    emit(TraceLevel::Debug, component, msg);
  }
  void info(const std::string& component, const std::string& msg) {
    emit(TraceLevel::Info, component, msg);
  }
  void warn(const std::string& component, const std::string& msg) {
    emit(TraceLevel::Warn, component, msg);
  }

  /// Lazy variants: `make_msg` is only invoked when the message will be
  /// emitted, so disabled tracing costs one branch, not a string build.
  template <typename F>
    requires std::is_invocable_r_v<std::string, F>
  void debug(const std::string& component, F&& make_msg) {
    if (would_emit(TraceLevel::Debug)) {
      emit(TraceLevel::Debug, component, std::forward<F>(make_msg)());
    }
  }
  template <typename F>
    requires std::is_invocable_r_v<std::string, F>
  void info(const std::string& component, F&& make_msg) {
    if (would_emit(TraceLevel::Info)) {
      emit(TraceLevel::Info, component, std::forward<F>(make_msg)());
    }
  }
  template <typename F>
    requires std::is_invocable_r_v<std::string, F>
  void warn(const std::string& component, F&& make_msg) {
    if (would_emit(TraceLevel::Warn)) {
      emit(TraceLevel::Warn, component, std::forward<F>(make_msg)());
    }
  }

 private:
  void emit(TraceLevel level, const std::string& component,
            const std::string& msg);

  TraceLevel level_ = TraceLevel::Off;
  Sink sink_;
  std::function<TimePoint()> now_;
};

}  // namespace rdmamon::sim
