#include "sim/simulation.hpp"

namespace rdmamon::sim {

void Simulation::run() {
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    // Advance the clock BEFORE running the callback so that event bodies
    // observe now() == their own timestamp.
    now_ = queue_.next_time();
    queue_.pop_and_run();
  }
}

void Simulation::run_until(TimePoint deadline) {
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_ &&
         queue_.next_time() <= deadline) {
    now_ = queue_.next_time();
    queue_.pop_and_run();
  }
  if (!stop_requested_ && now_ < deadline) now_ = deadline;
}

}  // namespace rdmamon::sim
