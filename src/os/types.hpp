// Shared identifiers and configuration for the simulated operating system.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace rdmamon::os {

using ThreadId = std::uint32_t;
using CpuId = int;

/// Thread lifecycle states (mirrors a classic Unix scheduler).
enum class ThreadState {
  Ready,     ///< runnable, waiting in the run queue
  Running,   ///< on a CPU
  Sleeping,  ///< timer sleep
  Blocked,   ///< waiting on a WaitQueue
  Finished,  ///< exited
};

/// Static priority levels, lower value = scheduled first. All application
/// and kernel-helper threads default to Normal; the scheduler's
/// "interactive" heuristic (not priority) is what differentiates sleepers
/// from CPU hogs, like the 2.4-era goodness() bonus.
enum class Priority : int {
  High = 0,    ///< reserved (e.g. latency-critical kernel work)
  Normal = 1,  ///< default for everything, including ksoftirqd
  Low = 2,     ///< nice'd background work
};
constexpr int kPriorityLevels = 3;

/// Hardware interrupt sources tracked in irq_stat.
enum class IrqType : int {
  Timer = 0,
  NetRx = 1,
  NetTx = 2,
  Other = 3,
};
constexpr int kIrqTypes = 4;

/// Per-node OS tuning knobs. Defaults approximate the paper's testbed
/// (dual 2.4 GHz Xeon, RedHat 9 / Linux 2.4-era behaviour).
struct NodeConfig {
  std::string name = "node";
  int cpus = 2;

  /// Scheduler timer frequency; sleep wakeups round up to 1/hz boundaries.
  /// The paper notes reporting resolution is bounded by this (Section 3).
  int hz = 1000;

  /// Round-robin timeslice for threads of equal priority.
  sim::Duration quantum = sim::msec(10);

  /// Cost of a context switch, charged as system time on dispatch.
  sim::Duration context_switch_cost = sim::usec(3);

  /// Kernel time to service one /proc load-snapshot read (trap + kernel
  /// walks task lists and counters). Dominates monitoring overhead.
  sim::Duration proc_read_cost = sim::usec(150);

  /// Additional /proc read cost per live thread (the task-list walk).
  sim::Duration proc_read_cost_per_thread = sim::usec(6);

  /// Hardware IRQ handler entry/exit cost.
  sim::Duration irq_handler_cost = sim::usec(2);

  /// Per-packet protocol processing cost (the IPoIB receive path of the
  /// paper's era was expensive: IP-over-IB encapsulation on a 2.4 stack).
  sim::Duration softirq_packet_cost = sim::usec(6);

  /// Packets processed inline in hard-IRQ context before deferring the
  /// rest to ksoftirqd (the receive-livelock / NAPI-budget knob that makes
  /// socket monitoring latency grow with load, Fig 3).
  int rx_inline_budget = 4;

  /// ksoftirqd drains at most this many packets before yielding.
  int softirq_batch = 16;

  /// Window of the continuous-time EMA used for CPU utilisation.
  sim::Duration load_window = sim::msec(100);

  /// Total simulated RAM (for the memory component of the load index).
  std::uint64_t memory_bytes = 1ull << 30;  // 1 GB, as in the paper

  /// When true, fire a periodic timer interrupt on CPU 0 every tick
  /// (visible in irq_stat, Fig 6). Off by default: quantum/sleep handling
  /// is event-driven and does not need it, and it adds hz events/second.
  bool timer_irq = false;

  sim::Duration tick() const {
    return sim::nsec(1'000'000'000ll / hz);
  }
};

}  // namespace rdmamon::os
