// Thread bodies as C++20 coroutines.
//
// A Program is a resumable routine that co_awaits os::Action values (the
// scheduler executes them) and other Programs (subroutine composition):
//
//   Program worker(SimThread& self) {
//     for (;;) {
//       co_await Compute{sim::usec(120)};
//       co_await SleepFor{sim::msec(10)};
//       co_await handle_request(self, req);   // nested Program
//     }
//   }
//
// Nested programs run on the owning thread's frame stack: the scheduler
// always resumes the innermost frame; when it finishes, its parent resumes.
// Return values flow through captured references (Programs return void).
#pragma once

#include <coroutine>
#include <cstdlib>
#include <utility>

#include "os/action.hpp"

namespace rdmamon::os {

class SimThread;
class Program;

struct ProgramPromise {
  /// The thread whose frame stack this coroutine runs on; set when the
  /// program is attached (root) or awaited (child).
  SimThread* thread = nullptr;

  /// Set when the coroutine suspends on an Action.
  Action pending{YieldCpu{}};
  bool has_pending = false;

  Program get_return_object();
  std::suspend_always initial_suspend() noexcept { return {}; }
  std::suspend_always final_suspend() noexcept { return {}; }
  void return_void() {}
  void unhandled_exception() { std::abort(); }

  struct ActionAwaiter {
    ProgramPromise* p;
    Action a;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<>) noexcept {
      p->pending = a;
      p->has_pending = true;
    }
    void await_resume() const noexcept {}
  };

  struct ProgramAwaiter;  // defined after Program below

  ActionAwaiter await_transform(Action a) { return {this, std::move(a)}; }
  ActionAwaiter await_transform(Compute a) { return {this, Action(a)}; }
  ActionAwaiter await_transform(ComputeKernel a) { return {this, Action(a)}; }
  ActionAwaiter await_transform(SleepFor a) { return {this, Action(a)}; }
  ActionAwaiter await_transform(SleepUntil a) { return {this, Action(a)}; }
  ActionAwaiter await_transform(WaitOn a) { return {this, Action(a)}; }
  ActionAwaiter await_transform(YieldCpu a) { return {this, Action(a)}; }
  ActionAwaiter await_transform(ExitThread a) { return {this, Action(a)}; }
  ProgramAwaiter await_transform(Program&& p);
};

class Program {
 public:
  using promise_type = ProgramPromise;
  using Handle = std::coroutine_handle<promise_type>;

  Program() = default;
  explicit Program(Handle h) : h_(h) {}
  Program(Program&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Program& operator=(Program&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;
  ~Program() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }
  Handle handle() const { return h_; }
  promise_type& promise() const { return h_.promise(); }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  Handle h_{};
};

inline Program ProgramPromise::get_return_object() {
  return Program(Program::Handle::from_promise(*this));
}

/// Awaiting a Program pushes it onto the owning thread's frame stack and
/// keeps the child frame alive for the duration of the co_await.
struct ProgramPromise::ProgramAwaiter {
  ProgramPromise* parent;
  Program child;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>) noexcept;  // in thread.cpp
  void await_resume() const noexcept {}
};

inline ProgramPromise::ProgramAwaiter ProgramPromise::await_transform(
    Program&& p) {
  return ProgramAwaiter{this, std::move(p)};
}

}  // namespace rdmamon::os
