// The kernel's resource-usage bookkeeping: per-CPU utilisation, run-queue
// length, thread counts, memory, network and connection counters. This is
// the "kernel memory" that the RDMA-Sync scheme registers and reads
// remotely, and the ground truth every accuracy experiment compares against.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "os/types.hpp"
#include "sim/time.hpp"

namespace rdmamon::os {

/// What a CPU is doing at an instant (for time accounting).
enum class CpuState { Idle = 0, User = 1, Kernel = 2, Irq = 3 };

/// One CPU's cumulative time accounting plus a continuous-time EMA of
/// "busy" used as the instantaneous utilisation signal.
class CpuAccounting {
 public:
  explicit CpuAccounting(sim::Duration ema_window);

  /// Records a state transition at time `t`.
  void set_state(CpuState s, sim::TimePoint t);

  /// Utilisation in [0,1]: EMA of busy (non-idle) with the configured
  /// window, evaluated at time `t` without mutating state.
  double utilization(sim::TimePoint t) const;

  CpuState state() const { return state_; }
  sim::Duration user() const { return user_; }
  sim::Duration system() const { return system_; }
  sim::Duration irq() const { return irq_; }
  sim::Duration idle() const { return idle_; }
  sim::Duration busy() const { return user_ + system_ + irq_; }

 private:
  double decay(sim::Duration dt) const;

  sim::Duration window_;
  CpuState state_ = CpuState::Idle;
  sim::TimePoint last_{};
  double ema_ = 0.0;  // utilisation EMA as of last_
  sim::Duration user_{}, system_{}, irq_{}, idle_{};
};

/// Node-wide kernel statistics. Everything is instantaneous ("as the
/// kernel sees it right now"); staleness is introduced only by how each
/// monitoring scheme transports the values.
class KernelStats {
 public:
  KernelStats(int cpus, sim::Duration ema_window,
              std::uint64_t memory_bytes);

  // --- CPU ---------------------------------------------------------------
  void set_cpu_state(CpuId cpu, CpuState s, sim::TimePoint t);
  double cpu_utilization(CpuId cpu, sim::TimePoint t) const;
  /// Mean utilisation across CPUs.
  double cpu_load(sim::TimePoint t) const;
  const CpuAccounting& cpu(CpuId id) const {
    return cpus_[static_cast<std::size_t>(id)];
  }
  int num_cpus() const { return static_cast<int>(cpus_.size()); }

  // --- threads / run queue ------------------------------------------------
  void on_thread_created(bool kernel);
  void on_thread_exited(bool kernel);
  void on_thread_runnable(bool kernel);     ///< entered ready or running
  void on_thread_unrunnable(bool kernel);   ///< blocked / slept / exited
  /// Linux nr_running: runnable user threads (what Fig 5a reports).
  int nr_running() const { return nr_running_user_; }
  /// Total live user threads.
  int nr_threads() const { return nr_threads_user_; }

  // --- memory --------------------------------------------------------------
  void alloc_memory(std::uint64_t bytes);
  void free_memory(std::uint64_t bytes);
  std::uint64_t memory_used() const { return mem_used_; }
  std::uint64_t memory_total() const { return mem_total_; }
  double memory_load() const {
    return static_cast<double>(mem_used_) / static_cast<double>(mem_total_);
  }

  // --- network ---------------------------------------------------------------
  /// Called by the NIC on every packet; maintains a byte-rate EMA.
  void on_net_bytes(std::uint64_t bytes, sim::TimePoint t);
  /// Bytes/second EMA at time `t`.
  double net_rate(sim::TimePoint t) const;

  // --- connections -------------------------------------------------------
  void on_connection_opened() { ++connections_; }
  void on_connection_closed() { --connections_; }
  int connections() const { return connections_; }

 private:
  std::vector<CpuAccounting> cpus_;
  sim::Duration window_;

  int nr_running_user_ = 0;
  int nr_running_kernel_ = 0;
  int nr_threads_user_ = 0;
  int nr_threads_kernel_ = 0;

  std::uint64_t mem_total_;
  std::uint64_t mem_used_ = 0;

  double net_rate_ema_ = 0.0;  // bytes/sec as of net_last_
  sim::TimePoint net_last_{};

  int connections_ = 0;
};

}  // namespace rdmamon::os
