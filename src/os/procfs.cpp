#include "os/procfs.hpp"

#include "os/node.hpp"

namespace rdmamon::os {

sim::Duration ProcFs::read_cost() const {
  // The task-list walk scales with the number of live threads.
  return node_.config().proc_read_cost +
         node_.config().proc_read_cost_per_thread *
             node_.stats().nr_threads();
}

LoadSnapshot ProcFs::base_snapshot() const {
  const sim::TimePoint now = node_.simu().now();
  const KernelStats& st = node_.stats();
  LoadSnapshot s;
  s.computed_at = now;
  s.cpu_load = st.cpu_load(now);
  s.nr_running = st.nr_running();
  s.nr_threads = st.nr_threads();
  s.mem_load = st.memory_load();
  s.net_rate = st.net_rate(now);
  s.connections = st.connections();
  s.irq_pending.assign(static_cast<std::size_t>(st.num_cpus()), 0);
  return s;
}

LoadSnapshot ProcFs::snapshot() const {
  LoadSnapshot s = base_snapshot();
  // Synchronized read: handlers have drained; only arrivals during the
  // ~2us copy-out window show up.
  for (int c = 0; c < node_.stats().num_cpus(); ++c) {
    s.irq_pending[static_cast<std::size_t>(c)] =
        node_.irq().raised_within(c, sim::usec(2));
  }
  return s;
}

LoadSnapshot ProcFs::snapshot_dma() const {
  LoadSnapshot s = base_snapshot();
  for (int c = 0; c < node_.stats().num_cpus(); ++c) {
    s.irq_pending[static_cast<std::size_t>(c)] =
        node_.irq().pending_dma_view(c);
  }
  return s;
}

}  // namespace rdmamon::os
